# The verify target is the tier-1 gate: CI runs it, and it is the
# command to run before sending a change.

.PHONY: verify build test test-race bench rpsweep fmt-check vet

verify: build test

build:
	go build ./...

test:
	go test ./...

# test-race reruns the suite under the race detector; the simulator is
# single-threaded by design, so a report here means shared state leaked
# between a test's goroutines (parallel subtests, fuzz workers).
test-race:
	go test -race ./...

# bench runs every benchmark exactly once as a perf-path smoke test:
# a panic or regression in the hot simulation loops breaks the build
# without paying for a full statistical benchmarking run. The momsim
# invocations smoke the non-blocking memory pipeline (-mshr 8), the
# stream prefetcher riding it (-mshr 16 -pf 8), and the history row
# predictor under prefetch traffic (-rp history -pf 8) on the
# full-size gsmencode stream, paths the Go benchmarks do not cross.
bench:
	go test -run '^$$' -bench . -benchtime 1x ./...
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 8
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 16 -pf 8
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 16 -rp history -pf 8

# rpsweep regenerates the full-size per-bank row-policy matrix
# (EXPERIMENTS.md's reference table): open/close/timer/history ×
# demand-only and prefetch traffic on the streaming kernels.
rpsweep:
	go run ./cmd/momexp -rpsweep -q

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...
