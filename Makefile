# The verify target is the tier-1 gate: CI runs it, and it is the
# command to run before sending a change.

.PHONY: verify build test fmt-check vet

verify: build test

build:
	go build ./...

test:
	go test ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...
