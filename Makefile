# The verify target is the tier-1 gate: CI runs it, and it is the
# command to run before sending a change.

.PHONY: verify build test test-race bench wheel rpsweep ifsweep vasweep enginebench cpisweep stats trace tenants fmt-check vet

# J is the sweep parallelism the sweep targets pass to momexp; override
# with `make rpsweep J=1` to force a serial run.
J ?= $(shell nproc)

verify: build test

build:
	go build ./...

test:
	go test ./...

# test-race reruns the suite under the race detector; the simulator is
# single-threaded by design, so a report here means shared state leaked
# between a test's goroutines (parallel subtests, fuzz workers).
test-race:
	go test -race ./...

# bench runs every benchmark exactly once as a perf-path smoke test:
# a panic or regression in the hot simulation loops breaks the build
# without paying for a full statistical benchmarking run. The momsim
# invocations smoke the non-blocking memory pipeline (-mshr 8), the
# stream prefetcher riding it (-mshr 16 -pf 8), and the history row
# predictor under prefetch traffic (-rp history -pf 8) on the
# full-size gsmencode stream, paths the Go benchmarks do not cross.
bench:
	go test -run '^$$' -bench . -benchtime 1x ./...
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 8
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 16 -pf 8
	go run ./cmd/momsim -bench gsmencode -isa mom3d -mem vcache3d -dram sdram -mshr 16 -rp history -pf 8

# stats smokes the observability layer end to end: a tiny run with the
# registry exporter on, then the pretty-printed snapshot so a reader
# can eyeball every registered name.
stats:
	go run ./cmd/momsim -bench gsmencode -dram sdram -mshr 8 -pf 4 -statsjson /tmp/momsim_stats.json
	@python3 -m json.tool /tmp/momsim_stats.json 2>/dev/null || cat /tmp/momsim_stats.json

# trace smokes the cycle-stamped event tracer under the race detector:
# the emitting hot paths and the ring buffer must stay race-free with
# the exporter attached, and the emitted file must be Chrome-loadable
# JSON (the momsim tests parse one back; this exercises the full-size
# binary path).
trace:
	go test -race -run 'TestTracer|TestResolveObservability' ./internal/stats/ ./cmd/momsim/
	go test -race -count=1 -run 'TestTraceParseBackWheelTenants|TestTraceRingWrapMonotonic' ./internal/tenant/
	go run -race ./cmd/momsim -bench gsmencode -dram sdram -mshr 8 -pf 4 -trace /tmp/momsim_trace.json -tracebuf 65536
	@python3 -c "import json; d=json.load(open('/tmp/momsim_trace.json')); print('trace OK:', len(d['traceEvents']), 'events')"

# wheel runs the wheel-vs-step equivalence suite under the race
# detector: the engine data structures, the golden-table and
# per-feature bit-identity tests in internal/core, the multi-tenant
# lockstep equivalence, and the sweep-level parallel/serial and
# wheel/step byte-identity checks.
wheel:
	go test -race -count=1 \
		-run 'TestRing|TestQueue|TestWheelMatchesStep|MatchesSerial|TestIFSweepWheelMatchesStep' \
		./internal/engine/ ./internal/core/ ./internal/tenant/ ./internal/experiments/

# rpsweep regenerates the full-size per-bank row-policy matrix
# (EXPERIMENTS.md's reference table): open/close/timer/history ×
# demand-only and prefetch traffic on the streaming kernels, on the
# event-wheel engine with cells sharded across the host's CPUs.
rpsweep:
	go run ./cmd/momexp -rpsweep -engine wheel -j $(J) -q

# ifsweep regenerates the multi-tenant interference matrix
# (EXPERIMENTS.md's reference table): every tenant mix solo, shared
# under plain FR-FCFS, and shared under QoS credit scheduling.
ifsweep:
	go run ./cmd/momexp -ifsweep -engine wheel -j $(J) -q

# vasweep regenerates the placement-policy × kernel-mix matrix under
# address translation (EXPERIMENTS.md's reference table): every
# interference mix under first-fit, page coloring and co-location on
# the banked part, where each 4 KiB page maps wholly to one channel.
vasweep:
	go run ./cmd/momexp -vasweep -engine wheel -j $(J) -q

# enginebench measures wheel-vs-step host throughput on the full-size
# motionsearch HBM rows and the golden matrix, writing BENCH_PR8.json.
enginebench:
	go run ./cmd/momexp -enginebench BENCH_PR8.json -q

# cpisweep regenerates the CPI-stack cycle-attribution table
# (EXPERIMENTS.md's reference table) over the extended full-size suite
# and the backend ladder, writing BENCH_PR10.json; every row's buckets
# are asserted to sum to its cycle count before rendering.
cpisweep:
	go run ./cmd/momexp -cpisweep BENCH_PR10.json -engine wheel -q

# tenants smokes the multi-requestor front end under the race detector:
# two motionsearch instances in lockstep on one shared QoS-scheduled
# part, with the per-tenant registry exporter on. The lockstep group and
# the sharded stat paths must stay race-free, and the export must carry
# both tenants' shards.
tenants:
	go run -race ./cmd/momsim -bench motionsearch -isa mom3d -mem vcache3d \
		-dram sdram -tenants 2 -qos -statsjson /tmp/momsim_tenants.json
	@python3 -c "import json; d=json.load(open('/tmp/momsim_tenants.json')); \
		names=list(d['counters'])+list(d['gauges'])+list(d['histograms']); \
		assert any(n.startswith('tenant.0.') for n in names), 'tenant 0 shard missing'; \
		assert any(n.startswith('tenant.1.dram.') for n in names), 'tenant 1 dram shard missing'; \
		print('tenants OK:', sum(n.startswith('tenant.') for n in names), 'per-tenant stat names')"

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...
