package repro

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its artifact from scratch (trace generation + cycle
// simulation) and reports the figure's headline quantity as a custom
// metric, so `go test -bench=.` is the full reproduction run.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
	"repro/internal/vreg"
)

func newRunner() *experiments.Runner { return experiments.NewRunner() }

func BenchmarkTable1VectorLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(newRunner())
		for _, r := range rows {
			if r.Bench == "gsmencode" {
				b.ReportMetric(r.D3Dim3, "gsm-dim3")
			}
		}
	}
}

func BenchmarkTable2Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3Areas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := vreg.MOM3D().TotalWT()
		if total != 4_646_464 {
			b.Fatalf("Table 3 area regression: %d", total)
		}
	}
	b.ReportMetric(vreg.Normalized(vreg.MOM3D())[0], "norm-area")
}

func BenchmarkTable4L2Activity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(newRunner())
		var vc, d3 float64
		for _, r := range rows {
			vc += float64(r.VectorCache)
			d3 += float64(r.VC3D)
		}
		b.ReportMetric(100*(1-d3/vc), "%activity-cut")
	}
}

func BenchmarkFigure3Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure3(newRunner())
		b.ReportMetric(seriesMean(f, "MOM vector cache"), "vc-slowdown")
	}
}

func BenchmarkFigure6Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure6(newRunner())
		b.ReportMetric(seriesMean(f, "MOM+3D vcache"), "3d-words/access")
	}
}

func BenchmarkFigure7TrafficReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure7(newRunner())
		b.ReportMetric(seriesMean(f, "traffic reduction"), "%traffic-cut")
	}
}

func BenchmarkFigure9Slowdowns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure9(newRunner())
		b.ReportMetric(seriesMean(f, "MOM+3D vcache"), "3d-slowdown")
		b.ReportMetric(seriesMean(f, "MOM vector cache"), "vc-slowdown")
	}
}

func BenchmarkFigure10LatencyRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure10(newRunner())
		b.ReportMetric(seriesMean(f, "MOM @60"), "mom@60")
		b.ReportMetric(seriesMean(f, "MOM+3D @60"), "mom3d@60")
	}
}

func BenchmarkFigure11Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure11(newRunner())
		b.ReportMetric(seriesMean(f, "MOM vector cache"), "vc-watts")
		b.ReportMetric(seriesMean(f, "MOM+3D vcache"), "3d-watts")
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.ComputeHeadline(newRunner())
		b.ReportMetric(h.AvgSpeedupPct, "%speedup")
		b.ReportMetric(h.AvgL2PowerSavePct, "%l2-power-save")
	}
}

// Component micro-benchmarks: simulator and trace-generation throughput.

func BenchmarkTraceGeneration(b *testing.B) {
	bm := kernels.GSMEncode(kernels.DefaultGSMEncConfig())
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		st := trace.NewStats()
		bm.Run(kernels.MOM3D, st)
		n = st.Total
	}
	b.ReportMetric(float64(n), "instructions")
}

func BenchmarkCycleSimulator(b *testing.B) {
	bm := kernels.GSMEncode(kernels.DefaultGSMEncConfig())
	tr := &trace.Trace{}
	bm.Run(kernels.MOM3D, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := core.NewMemSystem(core.MemVectorCache3D, vmem.DefaultTiming(), 4, false)
		st := core.Simulate(core.MOMCore(), ms, tr.Insts)
		b.ReportMetric(float64(st.Cycles), "cycles")
	}
}

func seriesMean(f *experiments.Figure, name string) float64 {
	for _, s := range f.Series {
		if s.Name != name {
			continue
		}
		var sum float64
		for _, v := range s.Values {
			sum += v
		}
		return sum / float64(len(s.Values))
	}
	return 0
}
