package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/kernels"
	"repro/internal/vmem"
)

// options mirrors the command-line flags; resolve validates them into a
// runnable configuration so flag handling is testable without flag.Parse.
type options struct {
	Bench  string
	ISA    string
	Mem    string
	DRAM   string
	DMap   string
	DSched string
	DProf  string
	RP     string
	DChan  int
	DWQ    int
	DWQL   int
	DWQI   int
	DWin   int
	MSHR   int
	PF     int
	PFD    int
	PFQ    int
	L2Lat  int64
	MemLat int64
	Gshare bool

	// Observability outputs: Trace writes a Chrome trace-event JSON
	// file (TraceBuf sizes the event ring; 0 = default), StatsJSON
	// writes the registry snapshot.
	Trace     string
	StatsJSON string
	TraceBuf  int
}

// defaultOptions matches the flag defaults.
func defaultOptions() options {
	return options{
		Bench: "mpeg2encode", ISA: "mom3d", Mem: "vcache3d",
		DRAM: "fixed", DMap: "line", DSched: "frfcfs", DProf: "ddr", RP: "open",
		L2Lat: 20, MemLat: 100,
	}
}

// runConfig is everything one simulation needs.
type runConfig struct {
	Bench   kernels.Benchmark
	Variant kernels.Variant
	Core    core.Config
	MemKind core.MemKind
	Timing  vmem.Timing

	Trace     string // Chrome trace-event JSON output path ("" = off)
	StatsJSON string // registry-snapshot JSON output path ("" = off)
	TraceBuf  int    // trace ring capacity in events (0 = default)
}

// resolve validates the options, building the benchmark, processor,
// memory-system and DRAM-backend configuration or reporting which flag
// value is unknown.
func resolve(o options) (runConfig, error) {
	var rc runConfig
	bm, ok := kernels.ByName(o.Bench)
	if !ok {
		return rc, fmt.Errorf("unknown benchmark %q (mpeg2encode, mpeg2decode, jpegencode, jpegdecode, gsmencode, motionsearch)", o.Bench)
	}
	variant, cfg, err := parseISA(o.ISA)
	if err != nil {
		return rc, err
	}
	memKind, err := parseMem(o.Mem)
	if err != nil {
		return rc, err
	}
	rp, err := policy.Parse(o.RP)
	if err != nil {
		return rc, err
	}
	knobs := dram.Knobs{Channels: o.DChan, WQDrain: o.DWQ, Window: o.DWin,
		WQLow: o.DWQL, WQIdle: int64(o.DWQI), MSHRs: o.MSHR,
		PFStreams: o.PF, PFDegree: o.PFD, PFQ: o.PFQ, RP: rp}
	backend, err := dram.BuildOpts(o.DRAM, o.DMap, o.DSched, o.DProf, knobs, o.MemLat)
	if err != nil {
		return rc, err
	}
	if memKind == core.MemIdeal && o.MSHR != 0 {
		return rc, fmt.Errorf("-mshr needs a cache hierarchy; it has no effect with -mem ideal")
	}
	if memKind == core.MemIdeal && o.PF != 0 {
		return rc, fmt.Errorf("-pf needs a cache hierarchy; it has no effect with -mem ideal")
	}
	if o.TraceBuf < 0 {
		return rc, fmt.Errorf("-tracebuf must not be negative (got %d)", o.TraceBuf)
	}
	if o.TraceBuf > 0 && o.Trace == "" {
		return rc, fmt.Errorf("-tracebuf sizes the -trace event ring; it has no effect without -trace")
	}
	if o.Trace != "" && o.Trace == o.StatsJSON {
		return rc, fmt.Errorf("-trace and -statsjson both write %q; pick distinct files", o.Trace)
	}
	cfg.UseGshare = o.Gshare
	rc.Bench = bm
	rc.Variant = variant
	rc.Core = cfg
	rc.MemKind = memKind
	rc.Timing = vmem.Timing{L2Latency: o.L2Lat, MemLatency: o.MemLat, Backend: backend,
		MSHRs: o.MSHR, PFStreams: o.PF, PFDegree: o.PFD}
	rc.Trace, rc.StatsJSON, rc.TraceBuf = o.Trace, o.StatsJSON, o.TraceBuf
	return rc, nil
}

func parseISA(s string) (kernels.Variant, core.Config, error) {
	switch strings.ToLower(s) {
	case "mmx":
		return kernels.MMX, core.MMXCore(), nil
	case "mom":
		return kernels.MOM, core.MOMCore(), nil
	case "mom3d", "mom+3d":
		return kernels.MOM3D, core.MOMCore(), nil
	}
	return 0, core.Config{}, fmt.Errorf("unknown ISA %q (mmx, mom, mom3d)", s)
}

func parseMem(s string) (core.MemKind, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MemIdeal, nil
	case "multibanked", "mb":
		return core.MemMultiBanked, nil
	case "vcache", "vectorcache":
		return core.MemVectorCache, nil
	case "vcache3d", "vcache+3d":
		return core.MemVectorCache3D, nil
	}
	return 0, fmt.Errorf("unknown memory system %q (ideal, multibanked, vcache, vcache3d)", s)
}
