package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// options mirrors the command-line flags; resolve validates them into a
// runnable configuration so flag handling is testable without flag.Parse.
type options struct {
	Bench  string
	ISA    string
	Mem    string
	DRAM   string
	DMap   string
	DSched string
	DProf  string
	RP     string
	DChan  int
	DWQ    int
	DWQL   int
	DWQI   int
	DWin   int
	MSHR   int
	PF     int
	PFD    int
	PFQ    int
	PFDec  int
	L2Lat  int64
	MemLat int64
	Gshare bool
	Engine string // simulation engine: step (per-cycle oracle) or wheel

	// Multi-tenant front end: Tenants runs that many instances of the
	// kernel trace through one shared L2/MSHR/DRAM (1 = the classic
	// single-requestor simulator); QoS turns on per-tenant credit
	// scheduling in the sdram channel scheduler.
	Tenants int
	QoS     bool

	// VA turns on per-requestor virtual address translation and names
	// the physical placement policy: first, color, colo ("" = off).
	VA string

	// Observability outputs: Trace writes a Chrome trace-event JSON
	// file (TraceBuf sizes the event ring; 0 = default), StatsJSON
	// writes the registry snapshot, CPIStack prints the cycle
	// attribution report, and Sample/SampleJSON record a per-interval
	// time series of every registered counter.
	Trace      string
	StatsJSON  string
	TraceBuf   int
	CPIStack   bool
	Sample     int64
	SampleJSON string
}

// defaultOptions matches the flag defaults.
func defaultOptions() options {
	return options{
		Bench: "mpeg2encode", ISA: "mom3d", Mem: "vcache3d",
		DRAM: "fixed", DMap: "line", DSched: "frfcfs", DProf: "ddr", RP: "open",
		L2Lat: 20, MemLat: 100, Tenants: 1,
	}
}

// runConfig is everything one simulation needs.
type runConfig struct {
	Bench   kernels.Benchmark
	Variant kernels.Variant
	Core    core.Config
	MemKind core.MemKind
	Timing  vmem.Timing
	Tenants int         // concurrent requestors (1 = single-requestor path)
	QoS     bool        // per-tenant credit scheduling in the sdram controller
	Engine  engine.Mode // per-cycle oracle or the event-wheel engine
	VM      *vm.VM      // address-translation layer (nil = translation off)

	Trace      string // Chrome trace-event JSON output path ("" = off)
	StatsJSON  string // registry-snapshot JSON output path ("" = off)
	TraceBuf   int    // trace ring capacity in events (0 = default)
	CPIStack   bool   // print the CPI-stack cycle attribution report
	Sample     int64  // interval time-series sampling period in cycles (0 = off)
	SampleJSON string // time-series JSON output path ("" = off)
}

// resolve validates the options, building the benchmark, processor,
// memory-system and DRAM-backend configuration or reporting which flag
// value is unknown.
func resolve(o options) (runConfig, error) {
	var rc runConfig
	bm, ok := kernels.ByName(o.Bench)
	if !ok {
		return rc, fmt.Errorf("unknown benchmark %q (mpeg2encode, mpeg2decode, jpegencode, jpegdecode, gsmencode, motionsearch)", o.Bench)
	}
	variant, cfg, err := parseISA(o.ISA)
	if err != nil {
		return rc, err
	}
	memKind, err := parseMem(o.Mem)
	if err != nil {
		return rc, err
	}
	rp, err := policy.Parse(o.RP)
	if err != nil {
		return rc, err
	}
	if o.Tenants < 1 {
		return rc, fmt.Errorf("-tenants must be at least 1 (got %d)", o.Tenants)
	}
	if o.QoS && o.Tenants < 2 {
		return rc, fmt.Errorf("-qos partitions the channel between requestors; it needs -tenants >= 2")
	}
	if o.QoS && strings.ToLower(o.DRAM) != "sdram" {
		return rc, fmt.Errorf("-qos is a channel-scheduler feature; it requires -dram sdram")
	}
	if o.Tenants > 1 && memKind == core.MemIdeal {
		return rc, fmt.Errorf("-tenants needs a shared cache hierarchy to contend for; it has no effect with -mem ideal")
	}
	// The backend only learns the tenant count when it matters to it:
	// a multi-tenant run (stat shards and, with QoS, credit scheduling).
	tn := 0
	if o.Tenants > 1 {
		tn = o.Tenants
	}
	knobs := dram.Knobs{Channels: o.DChan, WQDrain: o.DWQ, Window: o.DWin,
		WQLow: o.DWQL, WQIdle: int64(o.DWQI), MSHRs: o.MSHR,
		PFStreams: o.PF, PFDegree: o.PFD, PFQ: o.PFQ, PFDecay: o.PFDec,
		Tenants: tn, QoS: o.QoS, RP: rp}
	backend, err := dram.BuildOpts(o.DRAM, o.DMap, o.DSched, o.DProf, knobs, o.MemLat)
	if err != nil {
		return rc, err
	}
	if o.VA != "" {
		if memKind == core.MemIdeal {
			return rc, fmt.Errorf("-va translates the cache-hierarchy access path; it has no effect with -mem ideal")
		}
		if rc.VM, err = core.NewVM(o.VA, o.Tenants, backend); err != nil {
			return rc, err
		}
	}
	if memKind == core.MemIdeal && o.MSHR != 0 {
		return rc, fmt.Errorf("-mshr needs a cache hierarchy; it has no effect with -mem ideal")
	}
	if memKind == core.MemIdeal && o.PF != 0 {
		return rc, fmt.Errorf("-pf needs a cache hierarchy; it has no effect with -mem ideal")
	}
	if o.TraceBuf < 0 {
		return rc, fmt.Errorf("-tracebuf must not be negative (got %d)", o.TraceBuf)
	}
	if o.TraceBuf > 0 && o.Trace == "" {
		return rc, fmt.Errorf("-tracebuf sizes the -trace event ring; it has no effect without -trace")
	}
	if o.Trace != "" && o.Trace == o.StatsJSON {
		return rc, fmt.Errorf("-trace and -statsjson both write %q; pick distinct files", o.Trace)
	}
	if o.Sample < 0 {
		return rc, fmt.Errorf("-sample must not be negative (got %d)", o.Sample)
	}
	if o.Sample > 0 && o.SampleJSON == "" {
		return rc, fmt.Errorf("-sample records an interval time series; name its output with -samplejson <file>")
	}
	if o.SampleJSON != "" && o.Sample == 0 {
		return rc, fmt.Errorf("-samplejson has no effect without -sample <cycles>")
	}
	if o.SampleJSON != "" && (o.SampleJSON == o.Trace || o.SampleJSON == o.StatsJSON) {
		return rc, fmt.Errorf("-samplejson collides with another output writing %q; pick distinct files", o.SampleJSON)
	}
	mode, err := engine.ParseMode(o.Engine)
	if err != nil {
		return rc, err
	}
	cfg.UseGshare = o.Gshare
	rc.Engine = mode
	rc.Bench = bm
	rc.Variant = variant
	rc.Core = cfg
	rc.MemKind = memKind
	rc.Timing = vmem.Timing{L2Latency: o.L2Lat, MemLatency: o.MemLat, Backend: backend,
		MSHRs: o.MSHR, PFStreams: o.PF, PFDegree: o.PFD}
	if rc.VM != nil && o.Tenants == 1 {
		// The multi-tenant path hands the VM to the tenant group instead,
		// which wires Space(i) into tenant i's Timing view.
		rc.Timing.VA = rc.VM.Space(0)
	}
	rc.Tenants, rc.QoS = o.Tenants, o.QoS
	rc.Trace, rc.StatsJSON, rc.TraceBuf = o.Trace, o.StatsJSON, o.TraceBuf
	rc.CPIStack, rc.Sample, rc.SampleJSON = o.CPIStack, o.Sample, o.SampleJSON
	return rc, nil
}

func parseISA(s string) (kernels.Variant, core.Config, error) {
	switch strings.ToLower(s) {
	case "mmx":
		return kernels.MMX, core.MMXCore(), nil
	case "mom":
		return kernels.MOM, core.MOMCore(), nil
	case "mom3d", "mom+3d":
		return kernels.MOM3D, core.MOMCore(), nil
	}
	return 0, core.Config{}, fmt.Errorf("unknown ISA %q (mmx, mom, mom3d)", s)
}

func parseMem(s string) (core.MemKind, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MemIdeal, nil
	case "multibanked", "mb":
		return core.MemMultiBanked, nil
	case "vcache", "vectorcache":
		return core.MemVectorCache, nil
	case "vcache3d", "vcache+3d":
		return core.MemVectorCache3D, nil
	}
	return 0, fmt.Errorf("unknown memory system %q (ideal, multibanked, vcache, vcache3d)", s)
}
