// Command momsim runs one benchmark through the cycle simulator in one
// configuration and prints the timing, memory and trace statistics.
//
// Usage:
//
//	momsim -bench mpeg2encode -isa mom3d -mem vcache3d -l2 20 -dram sdram
//
// ISA variants: mmx, mom, mom3d. Memory systems: ideal, multibanked,
// vcache, vcache3d. DRAM backends: fixed (flat latency), sdram (banked
// controller; -dmap picks the address mapping, -dsched the scheduler,
// -dprof the timing profile (ddr/hbm), and -dchan/-dwq/-dwql/-dwqi/
// -dwin override the channel count, write-queue drain threshold, drain
// low watermark, idle-drain gap and FR-FCFS reorder window). -rp picks
// the per-bank row policy (open, close, timer[:<idle>], history — the
// 2-bit live/dead predictor). -mshr N enables the non-blocking memory
// pipeline: N miss-status holding registers decouple instruction issue
// from memory completion (N=1 is the bit-exact blocking compatibility
// mode; 0, the default, keeps the legacy blocking path). -pf N adds a
// stream prefetcher over the MSHR file (N stream-table entries; -pfd
// picks how many lines each stream keeps in flight): predicted L2
// lines join the lazy MSHR batch as prefetch entries that never stall
// the demand pipeline — the channel scheduler services demand reads
// first, and -pfq caps how many speculative reads may sit in one
// channel's read queue.
//
// Multi-tenant traffic: -tenants M runs M concurrent instances of the
// kernel through ONE shared L2 + MSHR file + DRAM backend (each tenant
// keeps its own core, L1 and vector subsystem), stepping the cores in
// per-cycle lockstep and reporting per-tenant IPC and DRAM read
// latency. -qos turns on per-tenant credit scheduling in the sdram
// channel scheduler so a streaming tenant cannot starve a
// latency-sensitive one; -pfdecay N lets the demand-first latch decay
// after N deferral-free cycles so phased workloads recover full
// FR-FCFS standing for speculative reads.
//
// Address translation: -va <policy> gives every requestor its own
// virtual address space over one shared physical pool — multi-level
// page tables walked on TLB misses (a private L1 TLB per requestor
// over a shared L2 TLB), with the miss and walk latency charged as
// issue-stage stalls. The policy names how the buddy allocator places
// pages: first (first-fit), color (round-robin a tenant's pages across
// DRAM channels) or colo (pack each tenant contiguously for row-hit
// locality). With -tenants the spaces replace the address-window
// rebasing, so isolation comes from the page tables themselves.
//
// Observability: -statsjson <file> dumps every registered counter and
// histogram as deterministic JSON (the internal/stats registry
// snapshot); -trace <file> writes a cycle-stamped Chrome trace-event
// JSON covering DRAM request issue/activate/column/complete, MSHR
// alloc/merge/fill, prefetch train/fire/drop, row-policy closes — and
// the core pipeline itself: every memory instruction renders as an
// issue→commit span (tid = ROB slot, pid = tenant), with causal flow
// arrows chaining it to the TLB walk that stalled it and to each MSHR
// entry it allocated through to the DRAM fill (load it in
// chrome://tracing or Perfetto; -tracebuf sizes the event ring, most
// recent events win — the ring's overwrite count is reported and
// registered as trace.dropped). -cpistack prints the CPI stack: every
// core cycle attributed to exactly one stall reason (busy, issue,
// exec, dep, mshr_full, store_buf, tlb_walk, dram_wait, qos_yield,
// frontend, drain — the buckets sum to the cycle count exactly, on
// both engines). -sample N -samplejson <file> records a time series:
// every N cycles the stats registry is snapshotted and the
// per-interval counter deltas (plus absolute gauges) append one row to
// a deterministic JSON document.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/trace"
)

func main() {
	def := defaultOptions()
	benchName := flag.String("bench", def.Bench, "benchmark: mpeg2encode, mpeg2decode, jpegencode, jpegdecode, gsmencode, motionsearch")
	isaName := flag.String("isa", def.ISA, "ISA variant: mmx, mom, mom3d")
	memName := flag.String("mem", def.Mem, "memory system: ideal, multibanked, vcache, vcache3d")
	dramName := flag.String("dram", def.DRAM, "main-memory backend: fixed, sdram")
	dmap := flag.String("dmap", def.DMap, "sdram address mapping: line, bank, row")
	dsched := flag.String("dsched", def.DSched, "sdram scheduler: fcfs, frfcfs")
	dprof := flag.String("dprof", def.DProf, "sdram timing profile: ddr (commodity DIMM), hbm (die-stacked)")
	dchan := flag.Int("dchan", 0, "sdram channel count override (power of two; 0 = profile default)")
	dwq := flag.Int("dwq", 0, "sdram write-queue drain threshold override (0 = profile default)")
	dwql := flag.Int("dwql", 0, "sdram write-queue partial-drain low watermark (0 = profile default, -1 = drain fully)")
	dwqi := flag.Int("dwqi", 0, "sdram idle-bus opportunistic write-drain gap in cycles (0 = profile default, -1 = off)")
	dwin := flag.Int("dwin", 0, "sdram FR-FCFS reorder-window override (0 = profile default)")
	rp := flag.String("rp", def.RP, "sdram per-bank row policy: open, close, timer[:<idle>], history")
	mshr := flag.Int("mshr", 0, "MSHR count for the non-blocking memory pipeline (0 = blocking model, 1 = blocking via the MSHR file)")
	pf := flag.Int("pf", 0, "stream-prefetcher stream-table entries (0 = off; needs -mshr >= 2)")
	pfd := flag.Int("pfd", 0, "stream-prefetcher degree: lines kept in flight per stream (0 = default 4)")
	pfq := flag.Int("pfq", 0, "sdram per-channel cap on prefetch reads in flight (0 = half the read queue)")
	pfdecay := flag.Int("pfdecay", 0, "sdram demand-first latch decay: deferral-free cycles before speculative reads regain FR-FCFS standing (0 = sticky latch)")
	tenants := flag.Int("tenants", def.Tenants, "concurrent requestors sharing L2/MSHR/DRAM, each running its own instance of the kernel (1 = single-requestor simulator)")
	va := flag.String("va", "", "per-requestor virtual address translation with this placement policy: first, color, colo (default: translation off)")
	qos := flag.Bool("qos", false, "per-tenant credit scheduling in the sdram channel scheduler (needs -tenants >= 2)")
	l2lat := flag.Int64("l2", def.L2Lat, "L2 cache latency in cycles")
	memLat := flag.Int64("mlat", def.MemLat, "fixed backend: main memory latency beyond L2 in cycles")
	gshare := flag.Bool("gshare", false, "use a gshare branch predictor instead of perfect prediction")
	engineName := flag.String("engine", "", "simulation engine: step (per-cycle oracle) or wheel (event-driven, bit-identical)")
	verify := flag.Bool("verify", true, "check the kernel output against the scalar reference")
	traceFile := flag.String("trace", "", "write a cycle-stamped Chrome trace-event JSON to this file")
	statsFile := flag.String("statsjson", "", "write the stats-registry snapshot as JSON to this file")
	traceBuf := flag.Int("tracebuf", 0, "trace event-ring capacity; oldest events drop first (0 = default)")
	cpistack := flag.Bool("cpistack", false, "print the CPI stack: every core cycle attributed to one stall reason")
	sample := flag.Int64("sample", 0, "interval time-series sampling period in cycles (0 = off; needs -samplejson)")
	sampleFile := flag.String("samplejson", "", "write the interval time series as JSON to this file")
	flag.Parse()

	// Reject explicitly-set knobs the chosen backend would silently
	// ignore (shared policy with momexp).
	dramKnobSet, dramSet, mlatSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "dmap", "dsched", "dprof", "dchan", "dwq", "dwql", "dwqi", "dwin", "rp", "pfq", "pfdecay", "qos":
			dramKnobSet = true
		case "dram":
			dramSet = true
		case "mlat":
			mlatSet = true
		}
	})
	if err := dram.ValidateFlagCombo(*dramName, dramKnobSet, mlatSet); err != nil {
		fail("%v", err)
	}

	rc, err := resolve(options{
		Bench: *benchName, ISA: *isaName, Mem: *memName,
		DRAM: *dramName, DMap: *dmap, DSched: *dsched, DProf: *dprof, RP: *rp,
		DChan: *dchan, DWQ: *dwq, DWQL: *dwql, DWQI: *dwqi, DWin: *dwin,
		MSHR: *mshr, PF: *pf, PFD: *pfd, PFQ: *pfq, PFDec: *pfdecay,
		Tenants: *tenants, QoS: *qos, VA: *va,
		L2Lat: *l2lat, MemLat: *memLat, Gshare: *gshare, Engine: *engineName,
		Trace: *traceFile, StatsJSON: *statsFile, TraceBuf: *traceBuf,
		CPIStack: *cpistack, Sample: *sample, SampleJSON: *sampleFile,
	})
	if err != nil {
		fail("%v", err)
	}
	// Ideal memory has no cache hierarchy, so neither a DRAM backend
	// nor a memory latency ever applies; reject explicit flags rather
	// than ignore them.
	if rc.MemKind == core.MemIdeal && (dramSet || dramKnobSet || mlatSet) {
		fail("-dram/-dmap/-dsched/-mlat have no effect with -mem ideal")
	}

	tr := &trace.Trace{}
	tst := trace.NewStats()
	digest := rc.Bench.Run(rc.Variant, trace.Multi{tr, tst})
	if *verify {
		ref := rc.Bench.Reference()
		if string(digest) != string(ref) {
			fail("kernel output does not match the scalar reference")
		}
	}

	if rc.Tenants > 1 {
		runTenants(rc, tr.Insts, tst)
		return
	}

	ms := core.NewMemSystem(rc.MemKind, rc.Timing, rc.Core.Lanes, rc.Variant == kernels.MMX && rc.MemKind != core.MemIdeal)
	sim := core.NewSim(rc.Core, ms, tr.Insts)
	sim.SetEngine(rc.Engine)
	var tracer *stats.Tracer
	if rc.Trace != "" {
		tracer = stats.NewTracer(rc.TraceBuf)
		ms.AttachTracer(tracer)
		sim.SetTracer(tracer, 0)
	}
	// The registry is wired before the run: its counters are closures
	// over the live structs, so the end-of-run snapshot is identical to
	// the old post-run registration — and the sampler can read deltas
	// mid-flight.
	reg := stats.NewRegistry()
	sim.StatsRef().Register(reg)
	ms.Register(reg)
	if tracer != nil {
		reg.Gauge("trace.dropped", func() int64 { return int64(tracer.Dropped()) })
	}
	var sampler *stats.Sampler
	if rc.Sample > 0 {
		sampler = stats.NewSampler(reg, rc.Sample)
	}

	start := time.Now()
	st := runSim(sim, rc.Engine, sampler)
	ms.Drain()
	wall := time.Since(start)

	if rc.MemKind == core.MemIdeal {
		fmt.Printf("benchmark:   %s (%s, %s)\n", rc.Bench.Name, rc.Variant, rc.MemKind)
	} else {
		fmt.Printf("benchmark:   %s (%s, %s, L2=%d cycles, dram=%s)\n",
			rc.Bench.Name, rc.Variant, rc.MemKind, *l2lat, rc.Timing.Backend.Name())
	}
	fmt.Printf("instructions: %d  cycles: %d  IPC: %.3f\n", st.Committed, st.Cycles, st.IPC())
	fmt.Printf("engine:      %s, host %.3fs, %s simulated cycles/s\n",
		rc.Engine, wall.Seconds(), fmtCPS(st.Cycles, wall))
	if *verify {
		fmt.Println("output verified against the scalar reference")
	}
	fmt.Println()
	fmt.Print(tst.String())
	fmt.Println()
	vs := ms.VM.Stats()
	fmt.Printf("vector memory: %d instructions, %d accesses, %d words, %d misses\n",
		vs.Instructions, vs.Accesses, vs.Words, vs.Misses)
	if vs.Accesses > 0 {
		fmt.Printf("effective bandwidth: %.2f words/access\n", vs.EffectiveBandwidth())
	}
	if vs.Conflicts > 0 {
		fmt.Printf("bank conflicts: %d\n", vs.Conflicts)
	}
	if vs.Invalidates > 0 {
		fmt.Printf("L1 coherence invalidations: %d\n", vs.Invalidates)
	}
	fmt.Printf("L2 activity: %d accesses (%d from scalar misses)\n", ms.L2Activity(), ms.ScalarL2Accesses)
	fmt.Printf("forwarded loads: %d\n", st.Forwarded)
	if f := ms.MSHR(); f != nil {
		fs := f.Stats()
		fmt.Printf("mshr file (%d entries): %d primary misses, %d merges, MLP %.2f (max %d)\n",
			f.Cap(), fs.Allocs, fs.Merges, fs.MLP(), fs.OccMax)
		fmt.Printf("mshr batches: %d flushes, avg %.2f requests spanning %.2f instructions (max %d); %d full stalls (%d cycles)\n",
			fs.Flushes, fs.AvgBatch(), fs.AvgSpan(), fs.SpanMax, fs.FullStalls, fs.StallCycles)
		if fs.Fill.Count() > 0 {
			fmt.Printf("mshr miss-to-fill latency: %s\n", fs.Fill)
		}
		fmt.Printf("early retirement: %d instructions graduated with misses in flight, %d store-buffer stalls\n",
			st.EarlyRetired, st.StallSB)
	}
	if p := ms.Prefetcher(); p != nil {
		ps := ms.PrefetchStats()
		pc := p.Config()
		fmt.Printf("prefetcher (%d streams, degree %d): %d trains, %d streams tracked, %d lines issued (%d filtered, %d dropped mshr-full, %d dropped wq-full)\n",
			pc.Streams, pc.Degree, ps.Trains, ps.Streams, ps.Issued, ps.Filtered, ps.DroppedMSHR, ps.DroppedWQ)
		fmt.Printf("prefetch outcome: %d hits, %d late, %d useless, accuracy %.2f\n",
			ps.Hits, ps.Late, ps.Useless, ps.Accuracy())
	}
	// Drain any posted writes so the report accounts for all traffic.
	if sd, ok := ms.DRAM().(*dram.SDRAM); ok {
		sd.Flush()
	}
	if ds := ms.DRAM().Stats(); ds.Accesses > 0 {
		fmt.Printf("dram (%s): %d requests, %.2f bytes/cycle\n",
			ms.DRAM().Name(), ds.Accesses, ds.AchievedBandwidth())
		if ds.ReadWait.Count() > 0 {
			fmt.Printf("dram read queue-wait:   %s\n", ds.ReadWait)
			fmt.Printf("dram read service time: %s\n", ds.ReadService)
		}
		// Row-buffer and queue metrics only exist on the banked model.
		if sd, ok := ms.DRAM().(*dram.SDRAM); ok {
			fmt.Printf("dram rows: hit rate %.3f (%d hit / %d miss / %d conflict), %d refreshes\n",
				ds.RowHitRate(), ds.RowHits, ds.RowMisses, ds.RowConflicts, ds.Refreshes)
			if cfg := sd.Config(); cfg.RowPolicy != (policy.Spec{}) || ds.RowClosedEarly > 0 {
				fmt.Printf("dram row policy (%s): %d closed early, %d reopened, %d predictor flips\n",
					cfg.RowPolicy, ds.RowClosedEarly, ds.RowReopened, ds.PredictorFlips)
			}
			fmt.Printf("dram queue: avg %.2f (max %d), %d stall cycles, bank-level parallelism %.2f, bus utilization %.2f\n",
				ds.AvgQueueOccupancy(), ds.QueueMax, ds.StallCycles, ds.BankLevelParallelism(), ds.BusUtilization())
			fmt.Printf("dram batches: %d posted writes (%d drains, %d partial, %d opportunistic), %d window promotions (row-hit or demand-first)\n",
				ds.Writes, ds.WriteDrains, ds.PartialDrains, ds.OppDrains, ds.Reordered)
			if ds.PrefetchReads > 0 {
				fmt.Printf("dram prefetch reads: %d (%d deferred by the pfq%d cap)\n",
					ds.PrefetchReads, ds.PrefetchDeferred, sd.Config().PFQCap)
			}
			if ds.WriteReadStall > 0 {
				fmt.Printf("dram write-induced read stall: %d bus cycles\n", ds.WriteReadStall)
			}
		}
	}
	if sp := ms.Tim.VA; sp != nil {
		ss := sp.Stats()
		vts, vws := sp.VM().TLBStats(), sp.VM().WalkStats()
		fmt.Printf("vm (%s placement): %d pages mapped, L1 TLB %d hit / %d miss, L2 TLB %d hit / %d miss, %d walks (%d coalesced), %d demand faults\n",
			sp.VM().Config().Policy, ss.PagesMapped, ss.L1Hits, ss.L1Misses,
			vts.L2Hits, vts.L2Misses, vws.Walks, vws.Coalesced, ss.Faults)
		if vws.Latency.Count() > 0 {
			fmt.Printf("vm walk latency: %s\n", vws.Latency)
		}
	}
	if rc.MemKind != core.MemIdeal {
		bd := power.Estimate(power.DefaultParams(), st.Cycles, vs, ms.ScalarL2Accesses, tst.D3MoveElems)
		fmt.Printf("memory subsystem power: %.2f W (L2 %.2f, 3D RF %.3f)\n", bd.Total(), bd.L2Watts, bd.D3Watts)
	}
	if st.Mispredicts > 0 {
		fmt.Printf("branch mispredicts: %d\n", st.Mispredicts)
	}
	if rc.CPIStack {
		printCPIStack("", st)
	}

	if rc.StatsJSON != "" {
		registerHost(reg, st.Cycles, wall)
		writeStatsJSON(rc.StatsJSON, reg)
	}
	if sampler != nil {
		writeSampleJSON(rc.SampleJSON, sampler)
	}
	if tracer != nil {
		writeTraceJSON(rc.Trace, tracer)
	}
}

// runSim drives one simulator to completion under the chosen engine,
// sampling the registry at every interval boundary the engine crosses
// (the wheel can land past a boundary; the row is stamped with the
// cycle actually reached).
func runSim(sim *core.Sim, mode engine.Mode, sampler *stats.Sampler) *core.Stats {
	var next int64
	if sampler != nil {
		next = sampler.Interval()
	}
	for sim.Running() {
		if mode == engine.Wheel {
			sim.Advance()
		} else {
			sim.Step()
		}
		if sampler != nil && sim.Now() >= next {
			sampler.Sample(sim.Now())
			for next <= sim.Now() {
				next += sampler.Interval()
			}
		}
	}
	return sim.Finish()
}

// printCPIStack renders the cycle-attribution report: every bucket with
// its share of the run, and the conservation line the stack guarantees.
// indent prefixes each line for the per-tenant report.
func printCPIStack(indent string, st *core.Stats) {
	c := &st.CPI
	fmt.Printf("%scpi stack: %d cycles attributed (sum %d)\n", indent, st.Cycles, c.Sum())
	rows := []struct {
		name string
		n    uint64
	}{
		{"busy", c.Busy}, {"issue", c.Issue}, {"exec", c.Exec}, {"dep", c.Dep},
		{"mshr_full", c.MSHRFull}, {"store_buf", c.StoreBuf}, {"tlb_walk", c.TLBWalk},
		{"dram_wait", c.DRAMWait}, {"qos_yield", c.QosYield},
		{"frontend", c.Frontend}, {"drain", c.Drain},
	}
	for _, r := range rows {
		if r.n == 0 {
			continue
		}
		fmt.Printf("%s  %-10s %12d  %5.1f%%\n", indent, r.name, r.n,
			100*float64(r.n)/float64(st.Cycles))
	}
}

// fmtCPS renders simulated-cycles-per-host-second for the summary line.
func fmtCPS(cycles int64, wall time.Duration) string {
	if wall <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(cycles)/wall.Seconds())
}

// registerHost publishes host-performance figures — wall-clock
// nanoseconds of the simulation loop and simulated cycles per host
// second — under host.* so sweep tooling can read engine throughput
// straight out of the stats snapshot.
func registerHost(reg *stats.Registry, cycles int64, wall time.Duration) {
	ns := wall.Nanoseconds()
	cps := int64(0)
	if ns > 0 {
		cps = int64(float64(cycles) / wall.Seconds())
	}
	reg.Gauge("host.wall_ns", func() int64 { return ns })
	reg.Gauge("host.sim_cycles_per_sec", func() int64 { return cps })
}

// runTenants is the multi-requestor path: rc.Tenants instances of the
// kernel trace contend for one shared memory system, stepped in
// per-cycle lockstep by the tenant group.
func runTenants(rc runConfig, insts []isa.Inst, tst *trace.Stats) {
	traces := make([][]isa.Inst, rc.Tenants)
	for i := range traces {
		traces[i] = insts
	}
	g := tenant.New(tenant.Options{
		Core: rc.Core, Kind: rc.MemKind, Tim: rc.Timing, Lanes: rc.Core.Lanes,
		BankL1: rc.Variant == kernels.MMX && rc.MemKind != core.MemIdeal,
		Traces: traces, Engine: rc.Engine, VM: rc.VM,
	})
	var tracer *stats.Tracer
	if rc.Trace != "" {
		tracer = stats.NewTracer(rc.TraceBuf)
		g.AttachTracer(tracer)
	}
	reg := stats.NewRegistry()
	g.Register(reg)
	if tracer != nil {
		reg.Gauge("trace.dropped", func() int64 { return int64(tracer.Dropped()) })
	}
	var sampler *stats.Sampler
	if rc.Sample > 0 {
		sampler = stats.NewSampler(reg, rc.Sample)
	}
	start := time.Now()
	if sampler != nil {
		g.RunSampled(sampler)
	} else {
		g.Run()
	}
	wall := time.Since(start)
	// The group runs in lockstep, so the longest tenant's cycle count is
	// the simulated time the host paid for.
	var cycles int64
	for i := 0; i < g.N(); i++ {
		cycles = max(cycles, g.Stats(i).Cycles)
	}

	qosTag := ""
	if rc.QoS {
		qosTag = ", qos"
	}
	fmt.Printf("benchmark:   %s (%s, %s, dram=%s, %d tenants%s)\n",
		rc.Bench.Name, rc.Variant, rc.MemKind, rc.Timing.Backend.Name(), g.N(), qosTag)
	fmt.Printf("engine:      %s, host %.3fs, %s simulated cycles/s\n",
		rc.Engine, wall.Seconds(), fmtCPS(cycles, wall))
	for i := 0; i < g.N(); i++ {
		st := g.Stats(i)
		fmt.Printf("tenant %d: %d instructions, %d cycles, IPC %.3f\n",
			i, st.Committed, st.Cycles, st.IPC())
		if ts := g.TenantStatsOf(i); ts != nil {
			fmt.Printf("  dram: %d reads (%d prefetch), %d writes, %d bytes, %d qos-deferred\n",
				ts.Reads, ts.PrefetchReads, ts.Writes, ts.Bytes, ts.QoSDeferred)
			if ts.ReadLatency.Count() > 0 {
				fmt.Printf("  dram read latency: %s\n", ts.ReadLatency)
			}
		}
		if sp := g.Mem(i).Tim.VA; sp != nil {
			ss := sp.Stats()
			fmt.Printf("  vm: %d pages mapped, L1 TLB %d hit / %d miss, %d demand faults\n",
				ss.PagesMapped, ss.L1Hits, ss.L1Misses, ss.Faults)
		}
		if rc.CPIStack {
			printCPIStack("  ", st)
		}
	}
	fmt.Println()
	fmt.Print(tst.String())
	// Drain any posted writes so the shared totals account for all
	// traffic every tenant generated.
	if sd, ok := rc.Timing.Backend.(*dram.SDRAM); ok {
		sd.Flush()
	}
	if ds := rc.Timing.Backend.Stats(); ds.Accesses > 0 {
		fmt.Printf("\ndram (%s, shared): %d requests, %.2f bytes/cycle\n",
			rc.Timing.Backend.Name(), ds.Accesses, ds.AchievedBandwidth())
		if ds.QoSDeferred > 0 || rc.QoS {
			fmt.Printf("dram qos: %d reads deferred past a tenant's credit\n", ds.QoSDeferred)
		}
		if ds.DemandFirstLapses > 0 {
			fmt.Printf("dram demand-first latch: %d decay lapses\n", ds.DemandFirstLapses)
		}
	}
	if rc.VM != nil {
		vts, vws := rc.VM.TLBStats(), rc.VM.WalkStats()
		fmt.Printf("\nvm (%s placement, shared): L2 TLB %d hit / %d miss, %d walks (%d coalesced), %d free pages\n",
			rc.VM.Config().Policy, vts.L2Hits, vts.L2Misses, vws.Walks, vws.Coalesced, rc.VM.FreePages())
	}

	if rc.StatsJSON != "" {
		registerHost(reg, cycles, wall)
		writeStatsJSON(rc.StatsJSON, reg)
	}
	if sampler != nil {
		writeSampleJSON(rc.SampleJSON, sampler)
	}
	if tracer != nil {
		writeTraceJSON(rc.Trace, tracer)
	}
}

// writeStatsJSON dumps the registry snapshot; shared by the single- and
// multi-tenant paths.
func writeStatsJSON(path string, reg *stats.Registry) {
	fh, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := reg.Snapshot().WriteJSON(fh); err != nil {
		fail("writing %s: %v", path, err)
	}
	if err := fh.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
	fmt.Printf("stats: wrote %d registered stats to %s\n", len(reg.Names()), path)
}

// writeTraceJSON dumps the tracer ring as Chrome trace-event JSON.
func writeTraceJSON(path string, tracer *stats.Tracer) {
	fh, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := tracer.WriteChromeJSON(fh); err != nil {
		fail("writing %s: %v", path, err)
	}
	if err := fh.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
	fmt.Printf("trace: wrote %d events to %s (%d emitted, %d dropped by the ring)\n",
		tracer.Len(), path, tracer.Total(), tracer.Dropped())
	if d := tracer.Dropped(); d > 0 {
		fmt.Printf("warning: the trace ring overwrote %d events (oldest first); raise -tracebuf to keep the whole run\n", d)
	}
}

// writeSampleJSON dumps the interval time series recorded by -sample.
func writeSampleJSON(path string, sampler *stats.Sampler) {
	fh, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := sampler.WriteJSON(fh); err != nil {
		fail("writing %s: %v", path, err)
	}
	if err := fh.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
	fmt.Printf("samples: wrote %d intervals (every %d cycles) to %s\n",
		len(sampler.Rows()), sampler.Interval(), path)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "momsim: "+format+"\n", args...)
	os.Exit(1)
}
