// Command momsim runs one benchmark through the cycle simulator in one
// configuration and prints the timing, memory and trace statistics.
//
// Usage:
//
//	momsim -bench mpeg2encode -isa mom3d -mem vcache3d -l2 20
//
// ISA variants: mmx, mom, mom3d. Memory systems: ideal, multibanked,
// vcache, vcache3d.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	benchName := flag.String("bench", "mpeg2encode", "benchmark: mpeg2encode, mpeg2decode, jpegencode, jpegdecode, gsmencode")
	isaName := flag.String("isa", "mom3d", "ISA variant: mmx, mom, mom3d")
	memName := flag.String("mem", "vcache3d", "memory system: ideal, multibanked, vcache, vcache3d")
	l2lat := flag.Int64("l2", 20, "L2 cache latency in cycles")
	memLat := flag.Int64("mlat", 100, "main memory latency beyond L2 in cycles")
	gshare := flag.Bool("gshare", false, "use a gshare branch predictor instead of perfect prediction")
	verify := flag.Bool("verify", true, "check the kernel output against the scalar reference")
	flag.Parse()

	bm, ok := kernels.ByName(*benchName)
	if !ok {
		fail("unknown benchmark %q", *benchName)
	}
	variant, cfg, err := parseISA(*isaName)
	if err != nil {
		fail("%v", err)
	}
	memKind, err := parseMem(*memName)
	if err != nil {
		fail("%v", err)
	}
	cfg.UseGshare = *gshare

	tr := &trace.Trace{}
	tst := trace.NewStats()
	digest := bm.Run(variant, trace.Multi{tr, tst})
	if *verify {
		ref := bm.Reference()
		if string(digest) != string(ref) {
			fail("kernel output does not match the scalar reference")
		}
	}

	tim := vmem.Timing{L2Latency: *l2lat, MemLatency: *memLat}
	ms := core.NewMemSystem(memKind, tim, cfg.Lanes, variant == kernels.MMX && memKind != core.MemIdeal)
	st := core.Simulate(cfg, ms, tr.Insts)

	fmt.Printf("benchmark:   %s (%s, %s, L2=%d cycles)\n", bm.Name, variant, memKind, *l2lat)
	fmt.Printf("instructions: %d  cycles: %d  IPC: %.3f\n", st.Committed, st.Cycles, st.IPC())
	if *verify {
		fmt.Println("output verified against the scalar reference")
	}
	fmt.Println()
	fmt.Print(tst.String())
	fmt.Println()
	vs := ms.VM.Stats()
	fmt.Printf("vector memory: %d instructions, %d accesses, %d words, %d misses\n",
		vs.Instructions, vs.Accesses, vs.Words, vs.Misses)
	if vs.Accesses > 0 {
		fmt.Printf("effective bandwidth: %.2f words/access\n", vs.EffectiveBandwidth())
	}
	if vs.Conflicts > 0 {
		fmt.Printf("bank conflicts: %d\n", vs.Conflicts)
	}
	if vs.Invalidates > 0 {
		fmt.Printf("L1 coherence invalidations: %d\n", vs.Invalidates)
	}
	fmt.Printf("L2 activity: %d accesses (%d from scalar misses)\n", ms.L2Activity(), ms.ScalarL2Accesses)
	fmt.Printf("forwarded loads: %d\n", st.Forwarded)
	if memKind != core.MemIdeal {
		bd := power.Estimate(power.DefaultParams(), st.Cycles, vs, ms.ScalarL2Accesses, tst.D3MoveElems)
		fmt.Printf("memory subsystem power: %.2f W (L2 %.2f, 3D RF %.3f)\n", bd.Total(), bd.L2Watts, bd.D3Watts)
	}
	if st.Mispredicts > 0 {
		fmt.Printf("branch mispredicts: %d\n", st.Mispredicts)
	}
}

func parseISA(s string) (kernels.Variant, core.Config, error) {
	switch strings.ToLower(s) {
	case "mmx":
		return kernels.MMX, core.MMXCore(), nil
	case "mom":
		return kernels.MOM, core.MOMCore(), nil
	case "mom3d", "mom+3d":
		return kernels.MOM3D, core.MOMCore(), nil
	}
	return 0, core.Config{}, fmt.Errorf("unknown ISA %q (mmx, mom, mom3d)", s)
}

func parseMem(s string) (core.MemKind, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MemIdeal, nil
	case "multibanked", "mb":
		return core.MemMultiBanked, nil
	case "vcache", "vectorcache":
		return core.MemVectorCache, nil
	case "vcache3d", "vcache+3d":
		return core.MemVectorCache3D, nil
	}
	return 0, fmt.Errorf("unknown memory system %q (ideal, multibanked, vcache, vcache3d)", s)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "momsim: "+format+"\n", args...)
	os.Exit(1)
}
