package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/kernels"
)

func TestResolveDefaults(t *testing.T) {
	rc, err := resolve(defaultOptions())
	if err != nil {
		t.Fatalf("resolve(defaults): %v", err)
	}
	if rc.Bench.Name != "mpeg2encode" {
		t.Errorf("bench = %q, want mpeg2encode", rc.Bench.Name)
	}
	if rc.Variant != kernels.MOM3D {
		t.Errorf("variant = %v, want MOM3D", rc.Variant)
	}
	if rc.MemKind != core.MemVectorCache3D {
		t.Errorf("mem kind = %v, want vcache3d", rc.MemKind)
	}
	if rc.Timing.Backend == nil || rc.Timing.Backend.Name() != "fixed" {
		t.Errorf("backend = %v, want fixed", rc.Timing.Backend)
	}
	if rc.Timing.L2Latency != 20 || rc.Timing.MemLatency != 100 {
		t.Errorf("timing = %+v, want L2=20 mem=100", rc.Timing)
	}
}

func TestResolveSDRAM(t *testing.T) {
	o := defaultOptions()
	o.DRAM, o.DMap, o.DSched = "sdram", "bank", "fcfs"
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(sdram): %v", err)
	}
	if got := rc.Timing.Backend.Name(); got != "sdram(bank,fcfs,open)" {
		t.Errorf("backend = %q, want sdram(bank,fcfs,open)", got)
	}
}

func TestResolveSDRAMKnobs(t *testing.T) {
	o := defaultOptions()
	o.DRAM, o.DProf, o.DChan, o.DWQ, o.DWin = "sdram", "hbm", 4, 6, 16
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(sdram knobs): %v", err)
	}
	sd, ok := rc.Timing.Backend.(*dram.SDRAM)
	if !ok {
		t.Fatalf("backend = %T, want *dram.SDRAM", rc.Timing.Backend)
	}
	cfg := sd.Config()
	if cfg.Channels != 4 || cfg.WQDrain != 6 || cfg.ReorderWindow != 16 {
		t.Errorf("knobs not applied: %+v", cfg)
	}
	if cfg.TRCD != dram.PresetHBM.Config().TRCD {
		t.Errorf("hbm profile not applied: tRCD = %d", cfg.TRCD)
	}
}

func TestResolveMSHR(t *testing.T) {
	o := defaultOptions()
	o.MSHR = 8
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(mshr): %v", err)
	}
	if rc.Timing.MSHRs != 8 {
		t.Errorf("Timing.MSHRs = %d, want 8", rc.Timing.MSHRs)
	}
	// Default stays on the legacy blocking path.
	if rc2, err := resolve(defaultOptions()); err != nil || rc2.Timing.MSHRs != 0 {
		t.Errorf("default Timing.MSHRs = %d (err %v), want 0", rc2.Timing.MSHRs, err)
	}
	// -mshr works on the sdram backend too.
	o = defaultOptions()
	o.DRAM, o.MSHR = "sdram", 16
	if rc, err = resolve(o); err != nil || rc.Timing.MSHRs != 16 {
		t.Errorf("sdram Timing.MSHRs = %d (err %v), want 16", rc.Timing.MSHRs, err)
	}
}

func TestResolvePrefetch(t *testing.T) {
	o := defaultOptions()
	o.MSHR, o.PF, o.PFD = 16, 8, 2
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(pf): %v", err)
	}
	if rc.Timing.PFStreams != 8 || rc.Timing.PFDegree != 2 || rc.Timing.MSHRs != 16 {
		t.Errorf("prefetch knobs not threaded: %+v", rc.Timing)
	}
	// The degree default is applied by the model layer, not resolve.
	o = defaultOptions()
	o.MSHR, o.PF = 8, 4
	if rc, err = resolve(o); err != nil || rc.Timing.PFStreams != 4 || rc.Timing.PFDegree != 0 {
		t.Errorf("pf without pfd: %+v (err %v)", rc.Timing, err)
	}
	// Default stays prefetch-off.
	if rc, err = resolve(defaultOptions()); err != nil || rc.Timing.PFStreams != 0 {
		t.Errorf("default Timing.PFStreams = %d (err %v), want 0", rc.Timing.PFStreams, err)
	}
}

func TestResolveRowPolicy(t *testing.T) {
	o := defaultOptions()
	o.DRAM, o.RP = "sdram", "history"
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(rp history): %v", err)
	}
	cfg := rc.Timing.Backend.(*dram.SDRAM).Config()
	if cfg.RowPolicy.Kind != policy.History {
		t.Errorf("row policy not applied: %+v", cfg.RowPolicy)
	}
	if got := rc.Timing.Backend.Name(); got != "sdram(line,frfcfs,history)" {
		t.Errorf("backend = %q, want sdram(line,frfcfs,history)", got)
	}
	// The timer takes its idle gap through the same flag.
	o = defaultOptions()
	o.DRAM, o.RP = "sdram", "timer:77"
	if rc, err = resolve(o); err != nil {
		t.Fatalf("resolve(rp timer:77): %v", err)
	}
	cfg = rc.Timing.Backend.(*dram.SDRAM).Config()
	if cfg.RowPolicy.Kind != policy.Timer || cfg.RowPolicy.Idle != 77 {
		t.Errorf("timer policy not applied: %+v", cfg.RowPolicy)
	}
	// The default is the static open page — today's behaviour.
	if rc, err = resolve(defaultOptions()); err != nil || rc.Timing.Backend.Name() != "fixed" {
		t.Errorf("default resolve: %v (err %v)", rc.Timing.Backend, err)
	}
}

func TestResolvePrefetchQueueCap(t *testing.T) {
	o := defaultOptions()
	o.DRAM, o.MSHR, o.PF, o.PFQ = "sdram", 16, 8, 4
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(pfq): %v", err)
	}
	cfg := rc.Timing.Backend.(*dram.SDRAM).Config()
	if cfg.PFQCap != 4 {
		t.Errorf("pfq cap not applied: %+v", cfg)
	}
	// Unset, the controller defaults to half the read queue.
	o = defaultOptions()
	o.DRAM = "sdram"
	if rc, err = resolve(o); err != nil {
		t.Fatalf("resolve(sdram): %v", err)
	}
	if cfg := rc.Timing.Backend.(*dram.SDRAM).Config(); cfg.PFQCap != cfg.QueueDepth/2 {
		t.Errorf("pfq default = %d, want %d", cfg.PFQCap, cfg.QueueDepth/2)
	}
}

func TestResolveWriteDrainKnobs(t *testing.T) {
	o := defaultOptions()
	o.DRAM, o.DWQ, o.DWQL, o.DWQI = "sdram", 8, 2, 50
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(write-drain knobs): %v", err)
	}
	cfg := rc.Timing.Backend.(*dram.SDRAM).Config()
	if cfg.WQDrain != 8 || cfg.WQLow != 2 || cfg.WQIdle != 50 {
		t.Errorf("write-drain knobs not applied: %+v", cfg)
	}
}

func TestResolveObservability(t *testing.T) {
	o := defaultOptions()
	o.Trace, o.StatsJSON, o.TraceBuf = "trace.json", "stats.json", 4096
	rc, err := resolve(o)
	if err != nil {
		t.Fatalf("resolve(observability): %v", err)
	}
	if rc.Trace != "trace.json" || rc.StatsJSON != "stats.json" || rc.TraceBuf != 4096 {
		t.Errorf("observability outputs not threaded: %+v", rc)
	}
	// -statsjson alone is fine; so is -trace with the default ring.
	o = defaultOptions()
	o.StatsJSON = "stats.json"
	if rc, err = resolve(o); err != nil || rc.StatsJSON != "stats.json" {
		t.Errorf("statsjson alone: %+v (err %v)", rc, err)
	}
	o = defaultOptions()
	o.Trace = "trace.json"
	if rc, err = resolve(o); err != nil || rc.Trace != "trace.json" || rc.TraceBuf != 0 {
		t.Errorf("trace alone: %+v (err %v)", rc, err)
	}
	// The defaults leave both exporters off.
	if rc, err = resolve(defaultOptions()); err != nil || rc.Trace != "" || rc.StatsJSON != "" {
		t.Errorf("default resolve enables an exporter: %+v (err %v)", rc, err)
	}
	// The cycle-attribution report and the interval sampler thread through.
	o = defaultOptions()
	o.CPIStack, o.Sample, o.SampleJSON = true, 500, "ts.json"
	rc, err = resolve(o)
	if err != nil {
		t.Fatalf("resolve(cpistack+sample): %v", err)
	}
	if !rc.CPIStack || rc.Sample != 500 || rc.SampleJSON != "ts.json" {
		t.Errorf("attribution outputs not threaded: %+v", rc)
	}
}

func TestResolveRejectsUnknownValues(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring the error must mention
	}{
		{"bench", func(o *options) { o.Bench = "quake3" }, "benchmark"},
		{"isa", func(o *options) { o.ISA = "avx512" }, "ISA"},
		{"mem", func(o *options) { o.Mem = "dcache" }, "memory system"},
		{"dram", func(o *options) { o.DRAM = "hbm" }, "dram backend"},
		{"dmap", func(o *options) { o.DRAM = "sdram"; o.DMap = "xor" }, "mapping"},
		{"dsched", func(o *options) { o.DRAM = "sdram"; o.DSched = "rr" }, "scheduler"},
		{"dmap-fixed", func(o *options) { o.DMap = "xor" }, "mapping"},
		{"dsched-fixed", func(o *options) { o.DSched = "rr" }, "scheduler"},
		{"dprof", func(o *options) { o.DRAM = "sdram"; o.DProf = "lpddr" }, "profile"},
		{"dprof-fixed", func(o *options) { o.DProf = "lpddr" }, "profile"},
		{"dchan", func(o *options) { o.DRAM = "sdram"; o.DChan = 3 }, "channel"},
		{"dchan-negative", func(o *options) { o.DRAM = "sdram"; o.DChan = -4 }, "knobs"},
		{"dwin-negative", func(o *options) { o.DRAM = "sdram"; o.DWin = -1 }, "knobs"},
		{"mshr-negative", func(o *options) { o.MSHR = -2 }, "knobs"},
		{"mshr-ideal", func(o *options) { o.Mem = "ideal"; o.MSHR = 8 }, "-mshr"},
		{"pf-negative", func(o *options) { o.PF = -1 }, "knobs"},
		{"pf-no-mshr", func(o *options) { o.PF = 8 }, "mshr"},
		{"pf-blocking-mshr", func(o *options) { o.MSHR = 1; o.PF = 8 }, "mshr"},
		{"pfd-no-pf", func(o *options) { o.MSHR = 8; o.PFD = 4 }, "stream count"},
		{"pf-ideal", func(o *options) { o.Mem = "ideal"; o.MSHR = 8; o.PF = 8 }, "-mshr"},
		{"dwql-above-drain", func(o *options) { o.DRAM = "sdram"; o.DWQ = 4; o.DWQL = 6 }, "watermark"},
		{"rp-unknown", func(o *options) { o.DRAM = "sdram"; o.RP = "lru" }, "row policy"},
		{"rp-timer-zero", func(o *options) { o.DRAM = "sdram"; o.RP = "timer:0" }, "idle gap"},
		{"rp-arg-on-open", func(o *options) { o.DRAM = "sdram"; o.RP = "open:5" }, "parameter"},
		{"pfq-no-pf", func(o *options) { o.DRAM = "sdram"; o.MSHR = 8; o.PFQ = 4 }, "stream count"},
		{"pfq-negative", func(o *options) { o.DRAM = "sdram"; o.MSHR = 8; o.PF = 4; o.PFQ = -1 }, "knobs"},
		{"tracebuf-negative", func(o *options) { o.Trace = "t.json"; o.TraceBuf = -1 }, "-tracebuf"},
		{"tracebuf-no-trace", func(o *options) { o.TraceBuf = 4096 }, "-trace"},
		{"trace-eq-statsjson", func(o *options) { o.Trace = "out.json"; o.StatsJSON = "out.json" }, "distinct"},
		{"sample-negative", func(o *options) { o.Sample = -1 }, "-sample"},
		{"sample-no-file", func(o *options) { o.Sample = 1000 }, "-samplejson"},
		{"samplejson-no-sample", func(o *options) { o.SampleJSON = "ts.json" }, "-sample"},
		{"samplejson-eq-trace", func(o *options) {
			o.Sample, o.SampleJSON, o.Trace = 1000, "out.json", "out.json"
		}, "distinct"},
		{"samplejson-eq-statsjson", func(o *options) {
			o.Sample, o.SampleJSON, o.StatsJSON = 1000, "out.json", "out.json"
		}, "distinct"},
	}
	for _, c := range cases {
		o := defaultOptions()
		c.mut(&o)
		_, err := resolve(o)
		if err == nil {
			t.Errorf("%s: resolve accepted an unknown value", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
