package main

import (
	"testing"

	"repro/internal/core"
)

// FuzzResolve drives momsim's flag resolution with arbitrary values.
// resolve is the single validation funnel between flag.Parse and the
// simulator, so its contract under fuzzing is strict: it must never
// panic, and when it accepts a configuration the result must be
// runnable — a benchmark, a core config and (away from ideal memory) a
// DRAM backend. The checked-in corpus under testdata/fuzz/FuzzResolve
// replays known-interesting combinations as regular test cases.
func FuzzResolve(f *testing.F) {
	add := func(bench, isa, mem, dram, dmap, dsched, dprof, rp string,
		dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq int, l2, mlat int64) {
		f.Add(bench, isa, mem, dram, dmap, dsched, dprof, rp,
			dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq, l2, mlat)
	}
	d := defaultOptions()
	add(d.Bench, d.ISA, d.Mem, d.DRAM, d.DMap, d.DSched, d.DProf, d.RP,
		0, 0, 0, 0, 0, 0, 0, 0, 0, d.L2Lat, d.MemLat)
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "hbm", "history",
		4, 8, 2, 50, 16, 16, 8, 4, 4, 20, 100)
	add("motionsearch", "mom", "vcache", "sdram", "bank", "fcfs", "ddr", "timer:150",
		0, 0, 0, 0, 0, 8, 0, 0, 0, 40, 100)
	add("jpegencode", "mmx", "multibanked", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100)
	add("mpeg2decode", "mom3d", "ideal", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100)
	add("quake3", "avx512", "dcache", "hbm", "xor", "rr", "lpddr", "lru",
		3, -1, 9, -2, -1, -5, 1, -1, -3, -20, -100)
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "close",
		0, 0, 0, 0, 0, 1, 8, 0, 0, 20, 100) // pf over a blocking file: rejected
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "timer:0",
		0, 0, 0, 0, 0, 16, 8, 0, 0, 20, 100) // zero timer gap: rejected
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "open",
		0, 0, 0, 0, 0, 16, 0, 0, 8, 20, 100) // pfq without pf: rejected

	f.Fuzz(func(t *testing.T, bench, isa, mem, dram, dmap, dsched, dprof, rp string,
		dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq int, l2, mlat int64) {
		rc, err := resolve(options{
			Bench: bench, ISA: isa, Mem: mem,
			DRAM: dram, DMap: dmap, DSched: dsched, DProf: dprof, RP: rp,
			DChan: dchan, DWQ: dwq, DWQL: dwql, DWQI: dwqi, DWin: dwin,
			MSHR: mshr, PF: pf, PFD: pfd, PFQ: pfq,
			L2Lat: l2, MemLat: mlat,
		})
		if err != nil {
			return
		}
		if rc.Bench.Name == "" {
			t.Fatal("accepted configuration has no benchmark")
		}
		if rc.Core.FetchWidth <= 0 {
			t.Fatalf("accepted configuration has no core: %+v", rc.Core)
		}
		if rc.Timing.Backend == nil {
			t.Fatal("accepted configuration has no DRAM backend")
		}
		if rc.Timing.PFStreams > 0 && rc.Timing.MSHRs < 2 {
			t.Fatalf("accepted a prefetcher over a blocking pipeline: %+v", rc.Timing)
		}
		if rc.MemKind == core.MemIdeal && (rc.Timing.MSHRs != 0 || rc.Timing.PFStreams != 0) {
			t.Fatalf("accepted mshr/pf with ideal memory: %+v", rc.Timing)
		}
	})
}
