package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// FuzzResolve drives momsim's flag resolution with arbitrary values.
// resolve is the single validation funnel between flag.Parse and the
// simulator, so its contract under fuzzing is strict: it must never
// panic, and when it accepts a configuration the result must be
// runnable — a benchmark, a core config and (away from ideal memory) a
// DRAM backend. The checked-in corpus under testdata/fuzz/FuzzResolve
// replays known-interesting combinations as regular test cases.
func FuzzResolve(f *testing.F) {
	add := func(bench, isa, mem, dram, dmap, dsched, dprof, rp string,
		dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq int, l2, mlat int64,
		trace, statsjson string, tracebuf, pfdec, tenants int, qos bool,
		eng string) {
		f.Add(bench, isa, mem, dram, dmap, dsched, dprof, rp,
			dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq, l2, mlat,
			trace, statsjson, tracebuf, pfdec, tenants, qos, eng)
	}
	d := defaultOptions()
	add(d.Bench, d.ISA, d.Mem, d.DRAM, d.DMap, d.DSched, d.DProf, d.RP,
		0, 0, 0, 0, 0, 0, 0, 0, 0, d.L2Lat, d.MemLat, "", "", 0, 0, d.Tenants, false, d.Engine)
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "hbm", "history",
		4, 8, 2, 50, 16, 16, 8, 4, 4, 20, 100, "t.json", "s.json", 1024, 0, 1, false, "wheel")
	add("motionsearch", "mom", "vcache", "sdram", "bank", "fcfs", "ddr", "timer:150",
		0, 0, 0, 0, 0, 8, 0, 0, 0, 40, 100, "", "", 0, 0, 1, false, "step")
	add("jpegencode", "mmx", "multibanked", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "out.json", 0, 0, 1, false, "")
	add("mpeg2decode", "mom3d", "ideal", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", 0, 0, 1, false, "wheel")
	add("quake3", "avx512", "dcache", "hbm", "xor", "rr", "lpddr", "lru",
		3, -1, 9, -2, -1, -5, 1, -1, -3, -20, -100, "x", "x", -7, -2, -4, true, "turbo")
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "close",
		0, 0, 0, 0, 0, 1, 8, 0, 0, 20, 100, "", "", 0, 0, 1, false, "") // pf over a blocking file: rejected
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "timer:0",
		0, 0, 0, 0, 0, 16, 8, 0, 0, 20, 100, "", "", 0, 0, 1, false, "") // zero timer gap: rejected
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "open",
		0, 0, 0, 0, 0, 16, 0, 0, 8, 20, 100, "", "", 0, 0, 1, false, "") // pfq without pf: rejected
	add("mpeg2encode", "mom3d", "vcache3d", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", -1, 0, 1, false, "") // negative tracebuf: rejected
	add("mpeg2encode", "mom3d", "vcache3d", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", 4096, 0, 1, false, "") // tracebuf without trace: rejected
	add("mpeg2encode", "mom3d", "vcache3d", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "same.json", "same.json", 0, 0, 1, false, "") // colliding outputs: rejected
	add("motionsearch", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 8, 4, 0, 0, 20, 100, "", "", 0, 200, 4, true, "wheel") // the full multi-tenant config: accepted
	add("motionsearch", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", 0, 0, 1, true, "") // qos with one tenant: rejected
	add("motionsearch", "mom3d", "ideal", "fixed", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", 0, 0, 4, false, "") // tenants on ideal memory: rejected
	add("gsmencode", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "", "open",
		0, 0, 0, 0, 0, 8, 0, 0, 0, 20, 100, "", "", 0, 200, 1, false, "") // pfdecay without pf: rejected
	add("motionsearch", "mom3d", "vcache3d", "sdram", "line", "frfcfs", "ddr", "open",
		0, 0, 0, 0, 0, 0, 0, 0, 0, 20, 100, "", "", 0, 0, 1, false, "Wheel") // engine names are case-sensitive: rejected

	f.Fuzz(func(t *testing.T, bench, isa, mem, dram, dmap, dsched, dprof, rp string,
		dchan, dwq, dwql, dwqi, dwin, mshr, pf, pfd, pfq int, l2, mlat int64,
		traceOut, statsOut string, tracebuf, pfdec, tenants int, qos bool,
		eng string) {
		rc, err := resolve(options{
			Bench: bench, ISA: isa, Mem: mem,
			DRAM: dram, DMap: dmap, DSched: dsched, DProf: dprof, RP: rp,
			DChan: dchan, DWQ: dwq, DWQL: dwql, DWQI: dwqi, DWin: dwin,
			MSHR: mshr, PF: pf, PFD: pfd, PFQ: pfq,
			L2Lat: l2, MemLat: mlat,
			Trace: traceOut, StatsJSON: statsOut, TraceBuf: tracebuf,
			PFDec: pfdec, Tenants: tenants, QoS: qos, Engine: eng,
		})
		if err != nil {
			return
		}
		if rc.TraceBuf < 0 {
			t.Fatalf("accepted a negative trace ring capacity: %d", rc.TraceBuf)
		}
		if rc.TraceBuf > 0 && rc.Trace == "" {
			t.Fatal("accepted -tracebuf without -trace")
		}
		if rc.Trace != "" && rc.Trace == rc.StatsJSON {
			t.Fatalf("accepted colliding -trace/-statsjson outputs: %q", rc.Trace)
		}
		if rc.Bench.Name == "" {
			t.Fatal("accepted configuration has no benchmark")
		}
		if rc.Core.FetchWidth <= 0 {
			t.Fatalf("accepted configuration has no core: %+v", rc.Core)
		}
		if rc.Timing.Backend == nil {
			t.Fatal("accepted configuration has no DRAM backend")
		}
		if rc.Timing.PFStreams > 0 && rc.Timing.MSHRs < 2 {
			t.Fatalf("accepted a prefetcher over a blocking pipeline: %+v", rc.Timing)
		}
		if rc.MemKind == core.MemIdeal && (rc.Timing.MSHRs != 0 || rc.Timing.PFStreams != 0) {
			t.Fatalf("accepted mshr/pf with ideal memory: %+v", rc.Timing)
		}
		if rc.Tenants < 1 {
			t.Fatalf("accepted a tenant count below 1: %d", rc.Tenants)
		}
		if rc.QoS && rc.Tenants < 2 {
			t.Fatal("accepted -qos without at least 2 tenants")
		}
		if rc.Tenants > 1 && rc.MemKind == core.MemIdeal {
			t.Fatal("accepted multiple tenants on ideal memory (nothing shared to contend on)")
		}
		mode, merr := engine.ParseMode(eng)
		if merr != nil {
			t.Fatalf("accepted an unknown engine %q", eng)
		}
		if rc.Engine != mode {
			t.Fatalf("engine %q resolved to %v, want %v", eng, rc.Engine, mode)
		}
	})
}
