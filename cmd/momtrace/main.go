// Command momtrace generates a benchmark's dynamic instruction trace and
// inspects it: stream statistics, instruction mix, Table 1 dimension
// profile, and optionally a disassembly window.
//
// Usage:
//
//	momtrace -bench gsmencode -isa mom3d
//	momtrace -bench mpeg2encode -isa mom3d -dump 40 -skip 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/trace"
)

func main() {
	benchName := flag.String("bench", "mpeg2encode", "benchmark name")
	isaName := flag.String("isa", "mom3d", "ISA variant: mmx, mom, mom3d")
	dump := flag.Int("dump", 0, "disassemble this many instructions")
	skip := flag.Int("skip", 0, "skip this many instructions before dumping")
	flag.Parse()

	bm, ok := kernels.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "momtrace: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}
	var variant kernels.Variant
	switch strings.ToLower(*isaName) {
	case "mmx":
		variant = kernels.MMX
	case "mom":
		variant = kernels.MOM
	case "mom3d", "mom+3d":
		variant = kernels.MOM3D
	default:
		fmt.Fprintf(os.Stderr, "momtrace: unknown ISA %q\n", *isaName)
		os.Exit(1)
	}

	tr := &trace.Trace{}
	st := trace.NewStats()
	bm.Run(variant, trace.Multi{tr, st})

	fmt.Printf("%s / %s\n", bm.Name, variant)
	fmt.Print(st.String())

	d1, d2, d3, mx, has3 := st.Dims()
	if st.VecMemInsts > 0 {
		fmt.Printf("Table 1 dims: 1st %.1f, 2nd %.1f", d1, d2)
		if has3 {
			fmt.Printf(", 3rd %.1f (max %d); %.1f slices per dvload", d3, mx, st.SlicesPerLoad())
		}
		fmt.Println()
	}

	// Top opcodes.
	type oc struct {
		op isa.Op
		n  uint64
	}
	var tops []oc
	for op, n := range st.ByOp {
		if n > 0 {
			tops = append(tops, oc{isa.Op(op), n})
		}
	}
	for i := 0; i < len(tops); i++ {
		for j := i + 1; j < len(tops); j++ {
			if tops[j].n > tops[i].n {
				tops[i], tops[j] = tops[j], tops[i]
			}
		}
	}
	fmt.Println("top opcodes:")
	for i, t := range tops {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-10s %10d\n", t.op.Name(), t.n)
	}

	if *dump > 0 {
		fmt.Println()
		end := *skip + *dump
		if end > tr.Len() {
			end = tr.Len()
		}
		for i := *skip; i < end; i++ {
			fmt.Printf("%8d  %s\n", tr.Insts[i].Seq, tr.Insts[i].String())
		}
	}
}
