// Command momtrace generates a benchmark's dynamic instruction trace and
// inspects it: stream statistics, instruction mix, Table 1 dimension
// profile, and optionally a disassembly window. -json <file> exports
// the same profile machine-readably — hierarchical snake_case counter
// names in the -statsjson key style (trace.total, trace.kind.mom_mem,
// trace.op.dvload, ...) plus the Table 1 dimension averages — so sweep
// tooling can consume the instruction mix without scraping the report.
//
// Usage:
//
//	momtrace -bench gsmencode -isa mom3d
//	momtrace -bench mpeg2encode -isa mom3d -dump 40 -skip 1000
//	momtrace -bench gsmencode -isa mom3d -json mix.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/trace"
)

func main() {
	benchName := flag.String("bench", "mpeg2encode", "benchmark name")
	isaName := flag.String("isa", "mom3d", "ISA variant: mmx, mom, mom3d")
	dump := flag.Int("dump", 0, "disassemble this many instructions")
	skip := flag.Int("skip", 0, "skip this many instructions before dumping")
	jsonFile := flag.String("json", "", "write the instruction-mix profile as JSON to this file")
	flag.Parse()

	bm, ok := kernels.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "momtrace: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}
	var variant kernels.Variant
	switch strings.ToLower(*isaName) {
	case "mmx":
		variant = kernels.MMX
	case "mom":
		variant = kernels.MOM
	case "mom3d", "mom+3d":
		variant = kernels.MOM3D
	default:
		fmt.Fprintf(os.Stderr, "momtrace: unknown ISA %q\n", *isaName)
		os.Exit(1)
	}

	tr := &trace.Trace{}
	st := trace.NewStats()
	bm.Run(variant, trace.Multi{tr, st})

	fmt.Printf("%s / %s\n", bm.Name, variant)
	fmt.Print(st.String())

	d1, d2, d3, mx, has3 := st.Dims()
	if st.VecMemInsts > 0 {
		fmt.Printf("Table 1 dims: 1st %.1f, 2nd %.1f", d1, d2)
		if has3 {
			fmt.Printf(", 3rd %.1f (max %d); %.1f slices per dvload", d3, mx, st.SlicesPerLoad())
		}
		fmt.Println()
	}

	// Top opcodes.
	type oc struct {
		op isa.Op
		n  uint64
	}
	var tops []oc
	for op, n := range st.ByOp {
		if n > 0 {
			tops = append(tops, oc{isa.Op(op), n})
		}
	}
	for i := 0; i < len(tops); i++ {
		for j := i + 1; j < len(tops); j++ {
			if tops[j].n > tops[i].n {
				tops[i], tops[j] = tops[j], tops[i]
			}
		}
	}
	fmt.Println("top opcodes:")
	for i, t := range tops {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-10s %10d\n", t.op.Name(), t.n)
	}

	if *dump > 0 {
		fmt.Println()
		end := *skip + *dump
		if end > tr.Len() {
			end = tr.Len()
		}
		for i := *skip; i < end; i++ {
			fmt.Printf("%8d  %s\n", tr.Insts[i].Seq, tr.Insts[i].String())
		}
	}

	if *jsonFile != "" {
		if err := writeJSON(*jsonFile, bm.Name, variant.String(), st); err != nil {
			fmt.Fprintf(os.Stderr, "momtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("json: wrote the instruction-mix profile to %s\n", *jsonFile)
	}
}

// traceDoc is the machine-readable instruction-mix export: counters
// keyed in the hierarchical snake_case style of momsim -statsjson,
// and the Table 1 dimension averages as floats. Map keys marshal
// sorted, so the output is deterministic.
type traceDoc struct {
	Bench    string             `json:"bench"`
	ISA      string             `json:"isa"`
	Counters map[string]uint64  `json:"counters"`
	Dims     map[string]float64 `json:"dims,omitempty"`
}

// jsonKey folds a kind or op display name into the snake_case key
// style ("mom-mem" → "mom_mem").
func jsonKey(s string) string { return strings.ReplaceAll(s, "-", "_") }

func writeJSON(path, bench, variant string, st *trace.Stats) error {
	doc := traceDoc{Bench: bench, ISA: variant, Counters: map[string]uint64{
		"trace.total":         st.Total,
		"trace.mem_bytes":     st.MemBytes,
		"trace.branches":      st.Branches,
		"trace.taken":         st.Taken,
		"trace.vec_mem_insts": st.VecMemInsts,
		"trace.d3_move_elems": st.D3MoveElems,
	}}
	for k, n := range st.ByKind {
		if n > 0 {
			doc.Counters["trace.kind."+jsonKey(isa.Kind(k).String())] = n
		}
	}
	for op, n := range st.ByOp {
		if n > 0 {
			doc.Counters["trace.op."+jsonKey(isa.Op(op).Name())] = n
		}
	}
	if st.VecMemInsts > 0 {
		d1, d2, d3, mx, has3 := st.Dims()
		doc.Dims = map[string]float64{"first": d1, "second": d2}
		if has3 {
			doc.Dims["third"] = d3
			doc.Dims["max_third"] = float64(mx)
			doc.Dims["slices_per_dvload"] = st.SlicesPerLoad()
		}
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fh.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return fh.Close()
}
