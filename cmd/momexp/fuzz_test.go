package main

import (
	"testing"

	"repro/internal/engine"
)

// FuzzResolveSweep drives momexp's engine/parallelism flag resolution
// with arbitrary values. resolveSweep is the validation funnel between
// flag.Parse and the sweep runner, so its contract under fuzzing is
// strict: it must never panic, and when it accepts a combination the
// result must be runnable — a valid engine mode, at least one worker,
// at least one benchmark repetition. The checked-in corpus under
// testdata/fuzz/FuzzResolveSweep replays known-interesting
// combinations as regular test cases.
func FuzzResolveSweep(f *testing.F) {
	f.Add("", 0, 0)
	f.Add("step", 1, 1)
	f.Add("wheel", 8, 5)
	f.Add("turbo", 4, 3)  // unknown engine: rejected
	f.Add("Wheel", 2, 2)  // engine names are case-sensitive: rejected
	f.Add("wheel", -1, 3) // negative workers: rejected
	f.Add("wheel", 4, -2) // negative reps: rejected
	f.Fuzz(func(t *testing.T, eng string, j, reps int) {
		mode, workers, benchReps, err := resolveSweep(sweepOptions{Engine: eng, J: j, Reps: reps})
		if err != nil {
			return
		}
		if _, perr := engine.ParseMode(eng); perr != nil {
			t.Fatalf("accepted an unknown engine %q", eng)
		}
		if mode != engine.Step && mode != engine.Wheel {
			t.Fatalf("resolved an impossible engine mode %d", mode)
		}
		if workers < 1 {
			t.Fatalf("accepted %d workers; the sweeps need at least one", workers)
		}
		if benchReps < 1 {
			t.Fatalf("accepted %d benchmark reps; best-of needs at least one", benchReps)
		}
		if j > 0 && workers != j {
			t.Fatalf("-j %d resolved to %d workers", j, workers)
		}
	})
}
