// Command momexp regenerates the paper's evaluation: every table and
// figure of "Three-Dimensional Memory Vectorization for High Bandwidth
// Media Memory Systems" (MICRO-35), over the built-in benchmark suite.
//
// Usage:
//
//	momexp              regenerate everything
//	momexp -fig 9       one figure (3, 6, 7, 9, 10, 11)
//	momexp -table 4     one table (1, 2, 3, 4)
//	momexp -headline    the abstract's summary numbers
//	momexp -dramsweep   the fixed-vs-SDRAM main-memory comparison
//	momexp -mshrsweep   the blocking-vs-MSHR non-blocking pipeline sweep
//	momexp -pfsweep     the stream-prefetcher sweep over the streaming kernels
//	momexp -rpsweep     the per-bank row-policy sweep (open/close/timer/history)
//	momexp -ifsweep     the multi-tenant interference sweep (FR-FCFS vs QoS)
//	momexp -vasweep     the placement-policy × mix matrix under address translation
//	momexp -latdist     the ddr-vs-hbm read-latency distribution table
//	momexp -cpisweep BENCH_PR10.json  print the CPI-stack table and write the report as JSON
//	momexp -statsjson BENCH_PR6.json  write the golden-matrix registry snapshots as JSON
//	momexp -dram sdram  rerun the evaluation over the banked SDRAM model
//	momexp -mshr 8      ... with an 8-entry MSHR file (non-blocking pipeline)
//	momexp -mshr 16 -pf 8  ... with a stream prefetcher riding the MSHR batch
//	momexp -dram sdram -rp history  ... under the live/dead row predictor
//	momexp -q           suppress per-simulation progress
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/experiments"
	"repro/internal/kernels"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate a single figure (3, 6, 7, 9, 10, 11)")
	table := flag.Int("table", 0, "regenerate a single table (1..4)")
	headline := flag.Bool("headline", false, "print only the headline summary")
	dramsweep := flag.Bool("dramsweep", false, "print only the fixed-vs-SDRAM sweep")
	mshrsweep := flag.Bool("mshrsweep", false, "print only the blocking-vs-MSHR pipeline sweep")
	pfsweep := flag.Bool("pfsweep", false, "print only the stream-prefetcher sweep (streaming kernels)")
	rpsweep := flag.Bool("rpsweep", false, "print only the per-bank row-policy sweep (streaming kernels)")
	ifsweep := flag.Bool("ifsweep", false, "print only the multi-tenant interference sweep (FR-FCFS vs QoS scheduling)")
	vasweep := flag.Bool("vasweep", false, "print only the placement-policy × kernel-mix matrix under virtual address translation")
	latdist := flag.Bool("latdist", false, "print only the ddr-vs-hbm read-latency distribution table")
	cpisweep := flag.String("cpisweep", "", "print the CPI-stack cycle-attribution table and write the report to this file as JSON")
	statsjson := flag.String("statsjson", "", "write the golden-matrix registry snapshots to this file as JSON and exit")
	dramName := flag.String("dram", "", "main-memory backend for all simulations: fixed, sdram (default: seed flat latency)")
	dmap := flag.String("dmap", "line", "sdram address mapping: line, bank, row")
	dsched := flag.String("dsched", "frfcfs", "sdram scheduler: fcfs, frfcfs")
	dprof := flag.String("dprof", "", "sdram timing profile: ddr (commodity DIMM), hbm (die-stacked)")
	dchan := flag.Int("dchan", 0, "sdram channel count override (power of two; 0 = profile default)")
	dwq := flag.Int("dwq", 0, "sdram write-queue drain threshold override (0 = profile default)")
	dwql := flag.Int("dwql", 0, "sdram write-queue partial-drain low watermark (0 = profile default, -1 = drain fully)")
	dwqi := flag.Int("dwqi", 0, "sdram idle-bus opportunistic write-drain gap in cycles (0 = profile default, -1 = off)")
	dwin := flag.Int("dwin", 0, "sdram FR-FCFS reorder-window override (0 = profile default)")
	rp := flag.String("rp", "", "sdram per-bank row policy: open, close, timer[:<idle>], history")
	mshr := flag.Int("mshr", 0, "MSHR count for the non-blocking memory pipeline (0 = blocking model)")
	pf := flag.Int("pf", 0, "stream-prefetcher stream-table entries (0 = off; needs -mshr >= 2)")
	pfd := flag.Int("pfd", 0, "stream-prefetcher degree: lines kept in flight per stream (0 = default 4)")
	pfq := flag.Int("pfq", 0, "sdram per-channel cap on prefetch reads in flight (0 = half the read queue)")
	va := flag.String("va", "", "virtual address translation with this placement policy for all simulations: first, color, colo (needs -dram)")
	engineName := flag.String("engine", "", "simulation engine for every run: step (per-cycle oracle) or wheel (event-driven, bit-identical)")
	jWorkers := flag.Int("j", 0, "worker goroutines the sweeps shard cells across (0 = one per CPU, 1 = serial)")
	enginebench := flag.String("enginebench", "", "measure wheel-vs-step host throughput and write the report to this file as JSON")
	reps := flag.Int("reps", 0, "-enginebench repetitions per cell, best-of (0 = default 3)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	mode, workers, benchReps, err := resolveSweep(sweepOptions{Engine: *engineName, J: *jWorkers, Reps: *reps})
	if err != nil {
		fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
		os.Exit(2)
	}

	r := experiments.NewRunner()
	r.Engine = mode
	r.Workers = workers
	if !*quiet {
		r.Progress = func(k experiments.SimKey) {
			fmt.Fprintf(os.Stderr, "sim %-12s %-6s %-18s L2=%d %s\n", k.Bench, k.Variant, k.Mem, k.L2Lat, k.DRAM)
		}
	}
	// Reject explicitly-set knobs the chosen backend would silently
	// ignore (shared policy with momsim).
	dramKnobSet, dramSet, mshrSet, pfSet, vaSet := false, false, false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "dmap", "dsched", "dprof", "dchan", "dwq", "dwql", "dwqi", "dwin", "rp", "pfq":
			dramKnobSet = true
		case "dram":
			dramSet = true
		case "mshr":
			mshrSet = true
		case "pf", "pfd":
			pfSet = true
		case "va":
			vaSet = true
		}
	})
	switch *va {
	case "", "first", "color", "colo":
	default:
		fmt.Fprintf(os.Stderr, "momexp: unknown placement policy %q (want first, color, colo)\n", *va)
		os.Exit(2)
	}
	if vaSet && *dramName == "" {
		fmt.Fprintln(os.Stderr, "momexp: -va requires -dram fixed or -dram sdram")
		os.Exit(2)
	}
	if err := dram.ValidateFlagCombo(*dramName, dramKnobSet, false); err != nil {
		fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
		os.Exit(2)
	}
	if mshrSet && *dramName == "" {
		// The seed's flat model has no spec to carry the knob; "fixed"
		// is its bit-identical spec form.
		fmt.Fprintln(os.Stderr, "momexp: -mshr requires -dram fixed or -dram sdram")
		os.Exit(2)
	}
	if pfSet && *dramName == "" {
		fmt.Fprintln(os.Stderr, "momexp: -pf/-pfd require -dram fixed or -dram sdram (and -mshr >= 2)")
		os.Exit(2)
	}
	// The sweeps cross their own backend configurations; explicit dram
	// flags would be silently ignored there, so reject the combination.
	if *dramsweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -dramsweep compares its own backend configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *mshrsweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -mshrsweep compares its own backend configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *pfsweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -pfsweep compares its own backend configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *rpsweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -rpsweep compares its own backend configurations; drop -dram/-dmap/-dsched/-rp/-mshr/-pf")
		os.Exit(2)
	}
	if *ifsweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -ifsweep compares its own backend configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *vasweep && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -vasweep compares its own placement policies; drop -dram/-dmap/-dsched/-mshr/-pf/-va")
		os.Exit(2)
	}
	if *latdist && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -latdist compares its own backend configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *cpisweep != "" && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -cpisweep climbs its own backend ladder; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *statsjson != "" && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -statsjson runs the pinned golden matrix; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *enginebench != "" && (dramSet || dramKnobSet || mshrSet || pfSet || vaSet) {
		fmt.Fprintln(os.Stderr, "momexp: -enginebench compares the engines on its own configurations; drop -dram/-dmap/-dsched/-mshr/-pf")
		os.Exit(2)
	}
	if *enginebench != "" && *engineName != "" {
		fmt.Fprintln(os.Stderr, "momexp: -enginebench always measures both engines; drop -engine")
		os.Exit(2)
	}
	if *dramName != "" {
		// An unset -rp leaves the knob zero (the preset's static open);
		// an explicit value, "open" included, must parse.
		var rpSpec policy.Spec
		if *rp != "" {
			var err error
			if rpSpec, err = policy.Parse(*rp); err != nil {
				fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
				os.Exit(2)
			}
		}
		knobs := dram.Knobs{Channels: *dchan, WQDrain: *dwq, Window: *dwin,
			WQLow: *dwql, WQIdle: int64(*dwqi), MSHRs: *mshr,
			PFStreams: *pf, PFDegree: *pfd, PFQ: *pfq, RP: rpSpec, VA: *va}
		// One build call validates backend kind, mapping, scheduler,
		// profile and knobs; the runner would only panic on a bad spec
		// much later.
		if _, err := dram.BuildOpts(*dramName, *dmap, *dsched, *dprof, knobs, 100); err != nil {
			fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
			os.Exit(2)
		}
		r.DRAMSpec = dram.FormatSpecOpts(*dramName, *dmap, *dsched, *dprof, knobs)
	}

	switch {
	case *enginebench != "":
		var progress func(experiments.SimKey)
		if !*quiet {
			progress = r.Progress
		}
		rep := experiments.EngineBench(benchReps, progress)
		fh, err := os.Create(*enginebench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(fh); err == nil {
			err = fh.Close()
		} else {
			fh.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: writing %s: %v\n", *enginebench, err)
			os.Exit(1)
		}
		for _, row := range rep.Rows {
			fmt.Printf("%-44s %12d cycles  step %8.3fms  wheel %8.3fms  %5.2fx\n",
				row.Config, row.Cycles, float64(row.StepNs)/1e6, float64(row.WheelNs)/1e6, row.Speedup)
		}
		fmt.Printf("wrote %d engine-bench rows (best of %d reps) to %s\n", len(rep.Rows), rep.Reps, *enginebench)
	case *statsjson != "":
		var progress func(experiments.SimKey)
		if !*quiet {
			progress = r.Progress
		}
		rep := experiments.ComputeBenchReport(progress)
		fh, err := os.Create(*statsjson)
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(fh); err == nil {
			err = fh.Close()
		} else {
			fh.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: writing %s: %v\n", *statsjson, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d configuration snapshots to %s\n", len(rep.Configs), *statsjson)
	case *headline:
		fmt.Print(experiments.ComputeHeadline(r).Render())
	case *dramsweep:
		fmt.Print(experiments.RenderDRAMSweep(experiments.DRAMSweep(r)))
		fmt.Println()
		fmt.Print(experiments.RenderChannelScaling(experiments.DRAMChannelScaling(r)))
	case *mshrsweep:
		fmt.Print(experiments.RenderMSHRSweep(experiments.MSHRSweep(r)))
	case *pfsweep:
		fmt.Print(experiments.RenderPFSweep(experiments.PFSweep(r)))
	case *rpsweep:
		fmt.Print(experiments.RenderRPSweep(experiments.RPSweep(r)))
	case *ifsweep:
		fmt.Print(experiments.RenderIFSweep(experiments.IFSweep(r)))
	case *vasweep:
		fmt.Print(experiments.RenderVASweep(experiments.VASweep(r)))
	case *latdist:
		fmt.Print(experiments.RenderLatDist(experiments.LatDist(r)))
	case *cpisweep != "":
		// The attribution table wants the streaming kernel next to the
		// paper suite — its stack is the memory-dominated one — so the
		// sweep runs over the extended suite on its own runner.
		rx := experiments.NewRunnerWith(kernels.Extended())
		rx.Engine, rx.Workers, rx.Progress = r.Engine, r.Workers, r.Progress
		rep := experiments.CPISweep(rx, "extended")
		fh, err := os.Create(*cpisweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(fh); err == nil {
			err = fh.Close()
		} else {
			fh.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "momexp: writing %s: %v\n", *cpisweep, err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderCPISweep(rep))
		fmt.Printf("wrote %d CPI-stack rows to %s\n", len(rep.Rows), *cpisweep)
	case *fig != 0:
		printFigure(r, *fig)
	case *table != 0:
		printTable(r, *table)
	default:
		for _, t := range []int{1, 2, 3} {
			printTable(r, t)
			fmt.Println()
		}
		printFigure(r, 3)
		fmt.Println()
		printFigure(r, 6)
		fmt.Println()
		printFigure(r, 7)
		fmt.Println()
		printTable(r, 4)
		fmt.Println()
		printFigure(r, 9)
		fmt.Println()
		printFigure(r, 10)
		fmt.Println()
		printFigure(r, 11)
		fmt.Println()
		// The sweeps fix their own backend configurations; with explicit
		// dram flags they would silently disregard them, so skip them.
		if dramSet || dramKnobSet || mshrSet || pfSet {
			fmt.Fprintln(os.Stderr, "momexp: skipping the DRAM, MSHR, prefetch and row-policy sweeps (they compare their own backend configurations)")
		} else {
			fmt.Print(experiments.RenderDRAMSweep(experiments.DRAMSweep(r)))
			fmt.Println()
			fmt.Print(experiments.RenderChannelScaling(experiments.DRAMChannelScaling(r)))
			fmt.Println()
			fmt.Print(experiments.RenderMSHRSweep(experiments.MSHRSweep(r)))
			fmt.Println()
			fmt.Print(experiments.RenderPFSweep(experiments.PFSweep(r)))
			fmt.Println()
			fmt.Print(experiments.RenderRPSweep(experiments.RPSweep(r)))
			fmt.Println()
			fmt.Print(experiments.RenderLatDist(experiments.LatDist(r)))
			fmt.Println()
		}
		fmt.Print(experiments.ComputeHeadline(r).Render())
	}

	if simNs, simCycles := r.HostPerf(); !*quiet && simNs > 0 {
		fmt.Fprintf(os.Stderr, "host: %s engine, %d workers, %.3fs simulating, %.0f simulated cycles/s\n",
			mode, workers, float64(simNs)/1e9, float64(simCycles)/(float64(simNs)/1e9))
	}
}

func printFigure(r *experiments.Runner, n int) {
	var f *experiments.Figure
	switch n {
	case 3:
		f = experiments.Figure3(r)
	case 6:
		f = experiments.Figure6(r)
	case 7:
		f = experiments.Figure7(r)
	case 9:
		f = experiments.Figure9(r)
	case 10:
		f = experiments.Figure10(r)
	case 11:
		f = experiments.Figure11(r)
	default:
		fmt.Fprintf(os.Stderr, "momexp: unknown figure %d\n", n)
		os.Exit(2)
	}
	fmt.Print(f.Render())
}

func printTable(r *experiments.Runner, n int) {
	switch n {
	case 1:
		fmt.Print(experiments.RenderTable1(experiments.Table1(r)))
	case 2:
		fmt.Print(experiments.Table2())
	case 3:
		fmt.Print(experiments.Table3())
	case 4:
		fmt.Print(experiments.RenderTable4(experiments.Table4(r)))
	default:
		fmt.Fprintf(os.Stderr, "momexp: unknown table %d\n", n)
		os.Exit(2)
	}
}
