// Command momexp regenerates the paper's evaluation: every table and
// figure of "Three-Dimensional Memory Vectorization for High Bandwidth
// Media Memory Systems" (MICRO-35), over the built-in benchmark suite.
//
// Usage:
//
//	momexp              regenerate everything
//	momexp -fig 9       one figure (3, 6, 7, 9, 10, 11)
//	momexp -table 4     one table (1, 2, 3, 4)
//	momexp -headline    the abstract's summary numbers
//	momexp -q           suppress per-simulation progress
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate a single figure (3, 6, 7, 9, 10, 11)")
	table := flag.Int("table", 0, "regenerate a single table (1..4)")
	headline := flag.Bool("headline", false, "print only the headline summary")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	r := experiments.NewRunner()
	if !*quiet {
		r.Progress = func(k experiments.SimKey) {
			fmt.Fprintf(os.Stderr, "sim %-12s %-6s %-18s L2=%d\n", k.Bench, k.Variant, k.Mem, k.L2Lat)
		}
	}

	switch {
	case *headline:
		fmt.Print(experiments.ComputeHeadline(r).Render())
	case *fig != 0:
		printFigure(r, *fig)
	case *table != 0:
		printTable(r, *table)
	default:
		for _, t := range []int{1, 2, 3} {
			printTable(r, t)
			fmt.Println()
		}
		printFigure(r, 3)
		fmt.Println()
		printFigure(r, 6)
		fmt.Println()
		printFigure(r, 7)
		fmt.Println()
		printTable(r, 4)
		fmt.Println()
		printFigure(r, 9)
		fmt.Println()
		printFigure(r, 10)
		fmt.Println()
		printFigure(r, 11)
		fmt.Println()
		fmt.Print(experiments.ComputeHeadline(r).Render())
	}
}

func printFigure(r *experiments.Runner, n int) {
	var f *experiments.Figure
	switch n {
	case 3:
		f = experiments.Figure3(r)
	case 6:
		f = experiments.Figure6(r)
	case 7:
		f = experiments.Figure7(r)
	case 9:
		f = experiments.Figure9(r)
	case 10:
		f = experiments.Figure10(r)
	case 11:
		f = experiments.Figure11(r)
	default:
		fmt.Fprintf(os.Stderr, "momexp: unknown figure %d\n", n)
		os.Exit(2)
	}
	fmt.Print(f.Render())
}

func printTable(r *experiments.Runner, n int) {
	switch n {
	case 1:
		fmt.Print(experiments.RenderTable1(experiments.Table1(r)))
	case 2:
		fmt.Print(experiments.Table2())
	case 3:
		fmt.Print(experiments.Table3())
	case 4:
		fmt.Print(experiments.RenderTable4(experiments.Table4(r)))
	default:
		fmt.Fprintf(os.Stderr, "momexp: unknown table %d\n", n)
		os.Exit(2)
	}
}
