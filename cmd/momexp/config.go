package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// sweepOptions mirror the engine/parallelism flags; resolveSweep
// validates them into runner settings so flag handling is testable
// without flag.Parse (the same pattern as momsim's resolve).
type sweepOptions struct {
	Engine string // simulation engine: step (per-cycle oracle) or wheel
	J      int    // sweep worker goroutines (0 = one per CPU)
	Reps   int    // -enginebench repetitions per cell (0 = default 3)
}

// resolveSweep validates the options into an engine mode, a worker
// count and a rep count.
func resolveSweep(o sweepOptions) (engine.Mode, int, int, error) {
	mode, err := engine.ParseMode(o.Engine)
	if err != nil {
		return engine.Step, 0, 0, err
	}
	if o.J < 0 {
		return engine.Step, 0, 0, fmt.Errorf("-j must not be negative (got %d; 0 = one worker per CPU)", o.J)
	}
	if o.Reps < 0 {
		return engine.Step, 0, 0, fmt.Errorf("-reps must not be negative (got %d)", o.Reps)
	}
	reps := o.Reps
	if reps == 0 {
		reps = 3
	}
	return mode, experiments.AutoWorkers(o.J), reps, nil
}
