// Motionsearch runs the paper's flagship kernel — full-search motion
// estimation (Figure 1/4 of the paper) — compiled for all three ISA
// variants, and compares cycles, effective memory bandwidth and L2
// activity on each variant's natural memory system.
//
// This is Figure 9's mpeg2encode column reproduced as a standalone
// program.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	bm := kernels.MPEG2Encode(kernels.DefaultMPEG2EncConfig())
	ref := bm.Reference()

	type cfg struct {
		variant kernels.Variant
		core    core.Config
		mem     core.MemKind
	}
	cases := []cfg{
		{kernels.MMX, core.MMXCore(), core.MemMultiBanked},
		{kernels.MOM, core.MOMCore(), core.MemMultiBanked},
		{kernels.MOM, core.MOMCore(), core.MemVectorCache},
		{kernels.MOM3D, core.MOMCore(), core.MemVectorCache3D},
	}

	fmt.Println("full-search motion estimation (mpeg2encode), paper Figure 9 column:")
	fmt.Printf("%-8s %-18s %12s %8s %10s %12s\n",
		"ISA", "memory", "cycles", "IPC", "eff. bw", "L2 accesses")
	var baseline int64
	for _, c := range cases {
		tr := &trace.Trace{}
		digest := bm.Run(c.variant, tr)
		if string(digest) != string(ref) {
			panic("variant output diverged from the scalar reference")
		}
		ms := core.NewMemSystem(c.mem, vmem.DefaultTiming(), c.core.Lanes,
			c.variant == kernels.MMX)
		st := core.Simulate(c.core, ms, tr.Insts)
		if baseline == 0 {
			baseline = st.Cycles
		}
		fmt.Printf("%-8s %-18s %12d %8.2f %10.2f %12d   (%.2fx vs MMX)\n",
			c.variant, c.mem, st.Cycles, st.IPC(),
			ms.VM.Stats().EffectiveBandwidth(), ms.L2Activity(),
			float64(baseline)/float64(st.Cycles))
	}
	fmt.Println("\nall variants produce bit-identical motion vectors and coefficients.")
}
