// Latencysweep reproduces the paper's §6.2 robustness study (Figure 10)
// as a standalone program: it sweeps the L2 latency from 20 to 80 cycles
// and reports how MOM and MOM+3D execution times degrade on the
// gsmencode and mpeg2encode workloads — the scenario of in-memory
// processors (VIRAM-like) where no SRAM L2 exists.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	lats := []int64{20, 40, 60, 80}
	for _, bm := range []kernels.Benchmark{
		kernels.MPEG2Encode(kernels.DefaultMPEG2EncConfig()),
		kernels.GSMEncode(kernels.DefaultGSMEncConfig()),
	} {
		momTr := &trace.Trace{}
		bm.Run(kernels.MOM, momTr)
		d3Tr := &trace.Trace{}
		bm.Run(kernels.MOM3D, d3Tr)

		fmt.Printf("%s — normalized execution time (MOM @ 20 cycles = 1.00):\n", bm.Name)
		fmt.Printf("%-10s %10s %10s %12s\n", "L2 lat", "MOM", "MOM+3D", "3D speedup")
		var base int64
		for _, lat := range lats {
			tim := vmem.Timing{L2Latency: lat, MemLatency: 100}
			mom := core.Simulate(core.MOMCore(),
				core.NewMemSystem(core.MemVectorCache, tim, 4, false), momTr.Insts)
			d3 := core.Simulate(core.MOMCore(),
				core.NewMemSystem(core.MemVectorCache3D, tim, 4, false), d3Tr.Insts)
			if base == 0 {
				base = mom.Cycles
			}
			fmt.Printf("%-10d %10.3f %10.3f %11.1f%%\n", lat,
				float64(mom.Cycles)/float64(base),
				float64(d3.Cycles)/float64(base),
				100*(float64(mom.Cycles)/float64(d3.Cycles)-1))
		}
		fmt.Println()
	}
}
