// Quickstart: assemble a tiny 3D-vectorized program with the trace
// builder, execute it on the functional emulator, and time it on the
// cycle simulator — the whole library in ~80 lines.
//
// The program loads a 4x32-byte matrix into a 3D register with one
// dvload, slices it into MOM registers with 3dvmov at one-byte offsets
// (the overlapped-streams trick of the paper), and accumulates packed
// sums of absolute differences.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	// Architectural memory with a recognizable 4-row matrix.
	mem := mmem.New()
	const base, stride = 0x1000, 64
	for row := 0; row < 4; row++ {
		for i := 0; i < 32; i++ {
			mem.WriteU8(base+uint64(row*stride+i), uint8(row*10+i))
		}
	}

	// Build the dynamic trace; every emitted instruction also executes.
	m := emu.New(mem)
	tr := &trace.Trace{}
	st := trace.NewStats()
	b := prog.New(m, trace.Multi{tr, st})

	b.MovImm(isa.R(1), base)
	b.DVLoad(isa.D(0), isa.R(1), 0, stride, 4 /*rows*/, 4 /*words wide*/, false, 8)
	b.AccClr(isa.A(0))
	for slice := 0; slice < 8; slice++ {
		b.DVMov(isa.V(1), isa.D(0), 1, 4) // 8-byte slice of each row, ptr++
		b.VSadAcc(isa.A(0), isa.V(1), isa.V(2), 4)
	}
	b.AccMov(isa.R(2), isa.A(0))

	fmt.Printf("emulated SAD total: %d\n", m.IntVal(isa.R(2)))
	fmt.Printf("trace: %d instructions, %d memory bytes\n", st.Total, st.MemBytes)

	// Time the same trace on the MOM processor over the vector cache
	// with the 3D register file datapath.
	ms := core.NewMemSystem(core.MemVectorCache3D, vmem.DefaultTiming(), 4, false)
	stats := core.Simulate(core.MOMCore(), ms, tr.Insts)
	fmt.Printf("simulated: %d cycles, IPC %.2f\n", stats.Cycles, stats.IPC())
	fmt.Printf("L2 accesses: %d (one wide access per dvload row)\n", ms.L2Activity())
}
