// Dramsweep explores the banked SDRAM backend behind the L2 as a
// standalone program. For the two most memory-intensive workloads it
// crosses every address mapping with both schedulers and the static
// open/close row policies, then sweeps the channel count (the batched
// transaction API fans an instruction's misses across per-channel
// controller shards) and compares the commodity-DDR profile against
// the die-stacked HBM profile, reporting cycles, row-buffer behaviour
// and achieved DRAM bandwidth against the seed's flat 100-cycle model.
// The full row-policy cross (timer, history) lives in momexp -rpsweep.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/dram/policy"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	for _, bm := range []kernels.Benchmark{
		kernels.MPEG2Encode(kernels.DefaultMPEG2EncConfig()),
		kernels.GSMEncode(kernels.DefaultGSMEncConfig()),
	} {
		tr := &trace.Trace{}
		bm.Run(kernels.MOM3D, tr)

		cfg := core.MOMCore()
		run := func(backend dram.Backend) int64 {
			tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend}
			ms := core.NewMemSystem(core.MemVectorCache3D, tim, cfg.Lanes, false)
			return core.Simulate(cfg, ms, tr.Insts).Cycles
		}

		base := run(dram.NewFixed(100))
		fmt.Printf("%s — MOM+3D over the vector cache (fixed 100-cycle DRAM = %d cycles):\n", bm.Name, base)
		fmt.Printf("%-28s %10s %8s %8s %8s %10s\n",
			"backend", "cycles", "vs fixed", "rowhit", "blp", "bytes/cyc")
		report := func(sd *dram.SDRAM, label string) {
			cycles := run(sd)
			sd.Flush() // account for posted writes in the stats
			st := sd.Stats()
			fmt.Printf("%-28s %10d %7.1f%% %8.3f %8.2f %10.2f\n",
				label, cycles, 100*(float64(cycles)/float64(base)-1),
				st.RowHitRate(), st.BankLevelParallelism(), st.AchievedBandwidth())
		}
		for _, mapping := range []dram.Mapping{dram.MapLine, dram.MapBank, dram.MapRow} {
			for _, sched := range []dram.Scheduler{dram.FRFCFS, dram.FCFS} {
				for _, rp := range []policy.Spec{{Kind: policy.Open}, {Kind: policy.Close}} {
					cfg := dram.DefaultConfig()
					cfg.Mapping, cfg.Scheduler, cfg.RowPolicy = mapping, sched, rp
					sd := dram.NewSDRAM(cfg)
					report(sd, sd.Name())
				}
			}
		}

		fmt.Println()
		fmt.Println("channel scaling (line/frfcfs, batches fan out per channel):")
		for _, chans := range []int{1, 2, 4, 8} {
			cfg := dram.DefaultConfig()
			cfg.Channels = chans
			report(dram.NewSDRAM(cfg), fmt.Sprintf("sdram %d-channel", chans))
		}

		fmt.Println()
		fmt.Println("timing profiles (line/frfcfs):")
		for _, p := range []dram.Preset{dram.PresetDDR, dram.PresetHBM} {
			report(dram.NewSDRAM(p.Config()), "sdram profile "+p.String())
		}
		fmt.Println()
	}
}
