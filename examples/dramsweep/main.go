// Dramsweep explores the banked SDRAM backend behind the L2 as a
// standalone program: for the two most memory-intensive workloads it
// crosses every address mapping with both schedulers and both page
// policies, reporting cycles, row-buffer behaviour and achieved DRAM
// bandwidth against the seed's flat 100-cycle model.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func main() {
	for _, bm := range []kernels.Benchmark{
		kernels.MPEG2Encode(kernels.DefaultMPEG2EncConfig()),
		kernels.GSMEncode(kernels.DefaultGSMEncConfig()),
	} {
		tr := &trace.Trace{}
		bm.Run(kernels.MOM3D, tr)

		cfg := core.MOMCore()
		run := func(backend dram.Backend) int64 {
			tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend}
			ms := core.NewMemSystem(core.MemVectorCache3D, tim, cfg.Lanes, false)
			return core.Simulate(cfg, ms, tr.Insts).Cycles
		}

		base := run(dram.NewFixed(100))
		fmt.Printf("%s — MOM+3D over the vector cache (fixed 100-cycle DRAM = %d cycles):\n", bm.Name, base)
		fmt.Printf("%-28s %10s %8s %8s %8s %10s\n",
			"backend", "cycles", "vs fixed", "rowhit", "blp", "bytes/cyc")
		for _, mapping := range []dram.Mapping{dram.MapLine, dram.MapBank, dram.MapRow} {
			for _, sched := range []dram.Scheduler{dram.FRFCFS, dram.FCFS} {
				for _, policy := range []dram.PagePolicy{dram.OpenPage, dram.ClosedPage} {
					cfg := dram.DefaultConfig()
					cfg.Mapping, cfg.Scheduler, cfg.Policy = mapping, sched, policy
					sd := dram.NewSDRAM(cfg)
					cycles := run(sd)
					st := sd.Stats()
					fmt.Printf("%-28s %10d %7.1f%% %8.3f %8.2f %10.2f\n",
						sd.Name(), cycles, 100*(float64(cycles)/float64(base)-1),
						st.RowHitRate(), st.BankLevelParallelism(), st.AchievedBandwidth())
				}
			}
		}
		fmt.Println()
	}
}
