// Powerstudy reproduces the paper's §6.3 analysis (Table 4 + Figure 11)
// as a standalone program: L2 cache activity and the estimated average
// power of the memory subsystem (L2 + 3D register file) for the three
// MOM memory systems, over the full benchmark suite. It also prints the
// register-file area bill of Table 3.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/vmem"
	"repro/internal/vreg"
)

func main() {
	p := power.DefaultParams()
	fmt.Printf("%-14s %-20s %12s %14s %10s\n",
		"benchmark", "memory system", "L2 accesses", "L2+3DRF power", "(3D RF)")
	for _, bm := range kernels.All() {
		for _, c := range []struct {
			v   kernels.Variant
			mem core.MemKind
		}{
			{kernels.MOM, core.MemMultiBanked},
			{kernels.MOM, core.MemVectorCache},
			{kernels.MOM3D, core.MemVectorCache3D},
		} {
			tr := &trace.Trace{}
			tst := trace.NewStats()
			bm.Run(c.v, trace.Multi{tr, tst})
			ms := core.NewMemSystem(c.mem, vmem.DefaultTiming(), 4, false)
			st := core.Simulate(core.MOMCore(), ms, tr.Insts)
			bd := power.Estimate(p, st.Cycles, ms.VM.Stats(), ms.ScalarL2Accesses, tst.D3MoveElems)
			fmt.Printf("%-14s %-20s %12d %11.2f W %7.3f W\n",
				bm.Name, c.mem, ms.L2Activity(), bd.Total(), bd.D3Watts)
		}
	}

	fmt.Println("\nregister file areas (Table 3, square wire tracks):")
	for _, cfg := range []vreg.Config{vreg.MMX(), vreg.MOM(), vreg.MOM3D()} {
		fmt.Printf("  %-8s %12d wt\n", cfg.Name, cfg.TotalWT())
	}
	n := vreg.Normalized(vreg.MMX(), vreg.MOM(), vreg.MOM3D())
	fmt.Printf("  normalized: %.2f / %.2f / %.2f — the paper's +50%% area cost\n", n[0], n[1], n[2])
}
