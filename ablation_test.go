package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// lane count (vector cache port width), the graduation window, branch
// prediction, and the 3D register file geometry. Each reports the cycle
// count of the mpeg2encode flagship under the varied parameter.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

func mpeg2encTrace(v kernels.Variant) *trace.Trace {
	tr := &trace.Trace{}
	kernels.MPEG2Encode(kernels.DefaultMPEG2EncConfig()).Run(v, tr)
	return tr
}

// BenchmarkAblationLanes sweeps the MOM lane count (which is also the
// vector cache port width in words): the paper's 4 lanes vs 2 and 8.
func BenchmarkAblationLanes(b *testing.B) {
	tr := mpeg2encTrace(kernels.MOM)
	for _, lanes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.MOMCore()
				cfg.Lanes = lanes
				ms := core.NewMemSystem(core.MemVectorCache, vmem.DefaultTiming(), lanes, false)
				st := core.Simulate(cfg, ms, tr.Insts)
				b.ReportMetric(float64(st.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationWindow sweeps the graduation window: the paper's 128
// vs half and double. The 3D build leans on the window for its prefetch
// effect, so this quantifies that sensitivity.
func BenchmarkAblationWindow(b *testing.B) {
	tr := mpeg2encTrace(kernels.MOM3D)
	for _, window := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.MOMCore()
				cfg.Window = window
				ms := core.NewMemSystem(core.MemVectorCache3D, vmem.DefaultTiming(), cfg.Lanes, false)
				st := core.Simulate(cfg, ms, tr.Insts)
				b.ReportMetric(float64(st.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationGshare compares the perfect-prediction default against
// the gshare predictor (the §5.3 modeling assumption).
func BenchmarkAblationGshare(b *testing.B) {
	tr := mpeg2encTrace(kernels.MOM3D)
	for _, gshare := range []bool{false, true} {
		name := "perfect"
		if gshare {
			name = "gshare"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.MOMCore()
				cfg.UseGshare = gshare
				ms := core.NewMemSystem(core.MemVectorCache3D, vmem.DefaultTiming(), cfg.Lanes, false)
				st := core.Simulate(cfg, ms, tr.Insts)
				b.ReportMetric(float64(st.Cycles), "cycles")
				b.ReportMetric(float64(st.Mispredicts), "mispredicts")
			}
		})
	}
}

// BenchmarkAblation3DWidth sweeps the dvload element width used by the
// gsm lag search (the traffic/latency trade-off of §4: wider elements
// amortize more lags per load but delay the first slice).
func BenchmarkAblation3DWidth(b *testing.B) {
	// The kernel's width is fixed; emulate the sweep at the memory level
	// by reissuing its dvloads with different widths.
	base := &trace.Trace{}
	kernels.GSMEncode(kernels.DefaultGSMEncConfig()).Run(kernels.MOM3D, base)
	for _, width := range []int{2, 5, 8, 16} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp := append([]isa.Inst(nil), base.Insts...)
				for j := range cp {
					if cp[j].Width > 0 {
						cp[j].Width = width
					}
				}
				ms := core.NewMemSystem(core.MemVectorCache3D, vmem.DefaultTiming(), 4, false)
				st := core.Simulate(core.MOMCore(), ms, cp)
				b.ReportMetric(float64(st.Cycles), "cycles")
				b.ReportMetric(float64(ms.VM.Stats().Words), "L2-words")
			}
		})
	}
}
