package tenant_test

// The multi-tenant front end's regression net. The load-bearing test is
// single-tenant equivalence: a 1-tenant group must be the
// single-requestor simulator bit for bit — same steppable core, same
// untouched trace, same memory system construction — proven both
// against core.Simulate directly (every golden backend spec plus the
// prefetcher) and against the pinned golden-stats table itself. On top
// of that: lockstep determinism, requestor-tag routing into the
// backend's stat shards, and the QoS fairness bound at the system
// level.

import (
	"bufio"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// equivSpecs are the backend configurations the equivalence tests
// cross: the golden table's three, plus the prefetcher riding the
// non-blocking file.
var equivSpecs = []string{
	"fixed",
	"sdram/line/frfcfs",
	"sdram/line/frfcfs/mshr8",
	"sdram/line/frfcfs/mshr8/pf4",
}

func traceOf(bm kernels.Benchmark, v kernels.Variant) []isa.Inst {
	tr := &trace.Trace{}
	bm.Run(v, tr)
	return tr.Insts
}

func timingFor(t *testing.T, spec string) vmem.Timing {
	t.Helper()
	backend, knobs, err := dram.ParseSpecFull(spec, 100)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	return vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
}

// TestSingleTenantMatchesSimulate: a 1-tenant group reproduces
// core.Simulate exactly — core stats, vector-memory stats and the whole
// backend counter block — on every backend configuration.
func TestSingleTenantMatchesSimulate(t *testing.T) {
	benches := []kernels.Benchmark{
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
	for _, bm := range benches {
		for _, spec := range equivSpecs {
			insts := traceOf(bm, kernels.MOM3D)
			cfg := core.MOMCore()

			simTim := timingFor(t, spec)
			simMS := core.NewMemSystem(core.MemVectorCache3D, simTim, cfg.Lanes, false)
			want := core.Simulate(cfg, simMS, insts)

			tenTim := timingFor(t, spec)
			g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D,
				Tim: tenTim, Lanes: cfg.Lanes, Traces: [][]isa.Inst{insts}})
			g.Run()

			key := fmt.Sprintf("%s/%s", bm.Name, spec)
			if !reflect.DeepEqual(*want, *g.Stats(0)) {
				t.Errorf("%s: core stats diverged\n  simulate %+v\n  tenant   %+v", key, *want, *g.Stats(0))
			}
			if !reflect.DeepEqual(*simMS.VM.Stats(), *g.Mem(0).VM.Stats()) {
				t.Errorf("%s: vmem stats diverged", key)
			}
			if !reflect.DeepEqual(*simTim.Backend.Stats(), *tenTim.Backend.Stats()) {
				t.Errorf("%s: backend stats diverged\n  simulate %+v\n  tenant   %+v",
					key, *simTim.Backend.Stats(), *tenTim.Backend.Stats())
			}
			if g.TenantStatsOf(0) != nil {
				t.Errorf("%s: a single-tenant group must not shard backend stats", key)
			}
		}
	}
}

// TestSingleTenantMatchesGolden regenerates the pinned golden-stats
// table through the tenant front end: every benchmark × ISA × backend
// row of internal/core/testdata/golden_stats.txt must come back bit-
// identical from a 1-tenant group.
func TestSingleTenantMatchesGolden(t *testing.T) {
	want := loadGoldenTable(t, "../core/testdata/golden_stats.txt")
	variants := []struct {
		v    kernels.Variant
		kind core.MemKind
	}{
		{kernels.MOM3D, core.MemVectorCache3D},
		{kernels.MOM, core.MemVectorCache},
		{kernels.MMX, core.MemMultiBanked},
	}
	benches := []kernels.Benchmark{
		kernels.JPEGEncode(kernels.SmallJPEGEncConfig()),
		kernels.JPEGDecode(kernels.SmallJPEGDecConfig()),
		kernels.MPEG2Decode(kernels.SmallMPEG2DecConfig()),
		kernels.MPEG2Encode(kernels.SmallMPEG2EncConfig()),
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
	goldenSpecs := []string{"fixed", "sdram/line/frfcfs", "sdram/line/frfcfs/mshr8"}
	seen := 0
	for _, bm := range benches {
		for _, vk := range variants {
			insts := traceOf(bm, vk.v)
			cfg := core.MOMCore()
			if vk.v == kernels.MMX {
				cfg = core.MMXCore()
			}
			for _, spec := range goldenSpecs {
				tim := timingFor(t, spec)
				g := tenant.New(tenant.Options{Core: cfg, Kind: vk.kind, Tim: tim,
					Lanes: cfg.Lanes, BankL1: vk.v == kernels.MMX,
					Traces: [][]isa.Inst{insts}})
				g.Run()
				if sd, ok := tim.Backend.(*dram.SDRAM); ok {
					sd.Flush()
				}
				key := fmt.Sprintf("%s/%s/%s", bm.Name, vk.v, spec)
				w, ok := want[key]
				if !ok {
					t.Fatalf("golden table has no row %q", key)
				}
				got := goldenRow{
					Cycles:    g.Stats(0).Cycles,
					Committed: g.Stats(0).Committed,
					VMMisses:  g.Mem(0).VM.Stats().Misses,
					DRAMReqs:  tim.Backend.Stats().Accesses,
				}
				if got != w {
					t.Errorf("%s: tenant front end diverged from the golden table\n  golden %+v\n  tenant %+v", key, w, got)
				}
				seen++
			}
		}
	}
	if seen != len(want) {
		t.Errorf("compared %d rows, the golden table pins %d", seen, len(want))
	}
}

type goldenRow struct {
	Cycles    int64
	Committed uint64
	VMMisses  uint64
	DRAMReqs  uint64
}

func loadGoldenTable(t *testing.T, path string) map[string]goldenRow {
	t.Helper()
	fh, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden table missing: %v", err)
	}
	defer fh.Close()
	out := map[string]goldenRow{}
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var g goldenRow
		if _, err := fmt.Sscanf(line, "%s cycles=%d committed=%d vmisses=%d dramreqs=%d",
			&key, &g.Cycles, &g.Committed, &g.VMMisses, &g.DRAMReqs); err != nil {
			t.Fatalf("golden table line %q: %v", line, err)
		}
		out[key] = g
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// runPair builds and runs one n-tenant group over a fresh backend and
// returns it with its timing (for backend access).
func runPair(t *testing.T, spec string, insts []isa.Inst, n int) (*tenant.Group, vmem.Timing) {
	t.Helper()
	cfg := core.MOMCore()
	tim := timingFor(t, spec)
	traces := make([][]isa.Inst, n)
	for i := range traces {
		traces[i] = insts
	}
	g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D,
		Tim: tim, Lanes: cfg.Lanes, Traces: traces})
	g.Run()
	return g, tim
}

// TestLockstepDeterministic: the same 2-tenant run twice must produce
// identical per-tenant cycle counts and backend shards — the lockstep
// interleaving admits no nondeterminism.
func TestLockstepDeterministic(t *testing.T) {
	insts := traceOf(kernels.MotionSearch(kernels.SmallMotionSearchConfig()), kernels.MOM3D)
	const spec = "sdram/line/frfcfs/mshr8/tn2"
	a, _ := runPair(t, spec, insts, 2)
	b, _ := runPair(t, spec, insts, 2)
	for i := 0; i < 2; i++ {
		if a.Stats(i).Cycles != b.Stats(i).Cycles {
			t.Errorf("tenant %d: cycles %d vs %d across identical runs", i, a.Stats(i).Cycles, b.Stats(i).Cycles)
		}
		if !reflect.DeepEqual(a.TenantStatsOf(i), b.TenantStatsOf(i)) {
			t.Errorf("tenant %d: backend shards diverged across identical runs", i)
		}
	}
}

// TestTenantShardsRouteTraffic: with 2 tenants on a shared SDRAM, both
// shards must see reads, the shard totals must add up to the backend's
// global counters, and the per-tenant read-latency histograms must
// carry every read.
func TestTenantShardsRouteTraffic(t *testing.T) {
	insts := traceOf(kernels.MotionSearch(kernels.SmallMotionSearchConfig()), kernels.MOM3D)
	g, tim := runPair(t, "sdram/line/frfcfs/tn2", insts, 2)
	if sd, ok := tim.Backend.(*dram.SDRAM); ok {
		sd.Flush()
	}
	ds := tim.Backend.Stats()
	var reads, writes uint64
	for i := 0; i < 2; i++ {
		ts := g.TenantStatsOf(i)
		if ts == nil {
			t.Fatalf("tenant %d: no backend shard", i)
		}
		if ts.Reads == 0 {
			t.Errorf("tenant %d: no reads recorded", i)
		}
		if ts.ReadLatency.Count() != ts.Reads {
			t.Errorf("tenant %d: latency histogram holds %d samples for %d reads",
				i, ts.ReadLatency.Count(), ts.Reads)
		}
		reads += ts.Reads
		writes += ts.Writes
	}
	if total := reads + writes; total != ds.Accesses {
		t.Errorf("shards sum to %d accesses, the backend served %d", total, ds.Accesses)
	}
	// Identical kernels, disjoint address windows: both tenants file the
	// same miss stream, so the shards must agree on volume.
	a, b := g.TenantStatsOf(0), g.TenantStatsOf(1)
	if a.Reads != b.Reads || a.Bytes != b.Bytes {
		t.Errorf("symmetric tenants diverged: %d/%d reads, %d/%d bytes", a.Reads, b.Reads, a.Bytes, b.Bytes)
	}
}

// TestQoSBoundsWorstTenant is the system-level starvation check: on the
// four-way motionsearch storm, QoS scheduling must keep the worst
// tenant's cycle count strictly below the plain FR-FCFS run's — the
// acceptance bound of the subsystem — without losing total traffic.
func TestQoSBoundsWorstTenant(t *testing.T) {
	// The default-size kernel: the small config retires in ~3.5K cycles,
	// too short for queue contention to develop at all.
	bm, ok := kernels.ByName("motionsearch")
	if !ok {
		t.Fatal("motionsearch missing from the suite")
	}
	insts := traceOf(bm, kernels.MOM3D)
	base, baseTim := runPair(t, "sdram/line/frfcfs/tn4", insts, 4)
	qos, qosTim := runPair(t, "sdram/line/frfcfs/tn4/qos", insts, 4)
	worst := func(g *tenant.Group) int64 {
		m := int64(0)
		for i := 0; i < g.N(); i++ {
			if c := g.Stats(i).Cycles; c > m {
				m = c
			}
		}
		return m
	}
	bw, qw := worst(base), worst(qos)
	if qw >= bw {
		t.Errorf("QoS worst tenant %d cycles, plain FR-FCFS %d — QoS must bound the worst tenant below the baseline", qw, bw)
	}
	if baseTim.Backend.Stats().Accesses != qosTim.Backend.Stats().Accesses {
		t.Errorf("QoS changed traffic volume: %d vs %d accesses",
			qosTim.Backend.Stats().Accesses, baseTim.Backend.Stats().Accesses)
	}
	if qosTim.Backend.Stats().QoSDeferred == 0 {
		t.Error("QoS run yielded no scheduling turns; the credit pick never engaged")
	}
}
