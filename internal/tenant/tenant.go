// Package tenant is the multi-requestor front end: it runs M
// independent kernel traces (or M instances of one kernel) through a
// SHARED memory system — one L2, one MSHR file, one prefetcher, one
// DRAM backend — by stepping M core simulators in per-cycle lockstep.
// Each tenant keeps its own L1 and vector subsystem (one core per
// requestor), and every miss a tenant files is requestor-tagged on the
// opaque dram.Request ID path, so the backend can shard statistics and
// apply per-tenant QoS scheduling without any interface widening.
//
// A 1-tenant group is the single-requestor simulator exactly: tenant 0
// is built by core.NewMemSystem, its trace is never rebased, its tag
// is the identity, and Run performs the same step/finish/drain
// sequence core.Simulate does — the golden-stats equivalence asserted
// in this package's tests.
package tenant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// RebaseShift positions each tenant's address space: tenant i's trace
// is offset by i << RebaseShift, far above any kernel footprint
// (~6 MB max), so independent traces — which all allocate from the
// same base address — never alias in the shared L2 while still
// contending for the same channels, banks and rows.
const RebaseShift = 32

// Options configures a multi-requestor run. One trace per tenant;
// running M instances of one kernel means passing the same trace M
// times (the group copies and rebases, so sharing a slice is fine).
type Options struct {
	Core   core.Config
	Kind   core.MemKind
	Tim    vmem.Timing // shared backend/MSHR sizing; Tenant is overwritten per tenant
	Lanes  int
	BankL1 bool
	Traces [][]isa.Inst
	Engine engine.Mode // simulation engine; Wheel skips rounds no tenant can act in

	// VM, when non-nil, gives tenant i the real virtual address space
	// VM.Space(i) over one shared physical pool instead of the
	// tenant<<32 window rebasing: traces run at their native virtual
	// addresses, isolation comes from per-tenant page tables, and the
	// buddy allocator's placement policy decides how the tenants'
	// pages interleave across DRAM channels and rows.
	VM *vm.VM
}

// Group is M core simulators in lockstep over one shared memory system.
type Group struct {
	mems  []*core.MemSystem
	sims  []*core.Sim
	stats []*core.Stats
	wheel bool
	done  bool
}

// New builds the group: shared memory system, per-tenant rebased trace
// copies, one steppable simulator per tenant.
func New(o Options) *Group {
	n := len(o.Traces)
	if n < 1 {
		panic("tenant: need at least one trace")
	}
	g := &Group{
		mems:  core.NewTenantMemSystems(o.Kind, o.Tim, o.Lanes, o.BankL1, n, o.VM),
		sims:  make([]*core.Sim, n),
		stats: make([]*core.Stats, n),
	}
	if ta, ok := o.Tim.Backend.(dram.TenantAware); ok && n > 1 {
		ta.EnableTenantStats(n)
	}
	for i := range o.Traces {
		tr := o.Traces[i]
		if o.VM == nil {
			// Without address translation, disjoint tenant<<32 windows
			// fake the isolation real page tables provide.
			tr = rebase(tr, i)
		}
		g.sims[i] = core.NewSim(o.Core, g.mems[i], tr)
	}
	if o.Engine == engine.Wheel {
		g.wheel = true
		for _, s := range g.sims {
			s.SetEngine(engine.Wheel)
		}
	}
	return g
}

// rebase returns tenant's private copy of the trace with every memory
// address offset into its own address window. Tenant 0 keeps the
// original slice untouched — the bit-identity anchor.
func rebase(insts []isa.Inst, tenant int) []isa.Inst {
	if tenant == 0 {
		return insts
	}
	base := uint64(tenant) << RebaseShift
	out := make([]isa.Inst, len(insts))
	copy(out, insts)
	for i := range out {
		if out[i].Kind.IsMem() {
			out[i].Addr += base
		}
	}
	return out
}

// Run steps every tenant one cycle per round, in tenant order, until
// all traces retire, then settles each tenant's cycle count and drains
// the shared memory system once. Lockstep keeps the interleaving
// deterministic: within a cycle, tenant i's accesses always reach the
// shared structures before tenant i+1's.
func (g *Group) Run() {
	if g.done {
		return
	}
	for {
		any := false
		for _, s := range g.sims {
			if s.Running() {
				s.Step()
				any = true
			}
		}
		if !any {
			break
		}
		if g.wheel {
			g.skipRound()
		}
	}
	for i, s := range g.sims {
		g.stats[i] = s.Finish()
	}
	g.mems[0].Drain()
	g.done = true
}

// skipRound advances the whole group past cycles no tenant can act in:
// the lockstep barrier becomes an event — the group jumps to the
// EARLIEST wake-up any running tenant reports, and every running clock
// jumps together, so the within-cycle tenant ordering (and with it the
// shared-structure interleaving) is untouched. Each tenant's wake-up
// is sound against the shared memory system because contention only
// pushes completion bounds later, never earlier, and a skipped
// tenant's lazy-poll cycles are exactly the ones its own bound proves
// unobservable.
func (g *Group) skipRound() {
	t := int64(-1)
	for _, s := range g.sims {
		if !s.Running() {
			continue
		}
		w := s.NextWake()
		if t < 0 || w < t {
			t = w
		}
	}
	if t < 0 {
		return
	}
	for _, s := range g.sims {
		if s.Running() {
			s.SkipTo(t)
		}
	}
}

// N is the tenant count.
func (g *Group) N() int { return len(g.sims) }

// Mem returns tenant i's view of the memory system. Index 0's view
// owns the shared structures (L2, MSHR file, backend).
func (g *Group) Mem(i int) *core.MemSystem { return g.mems[i] }

// Stats returns tenant i's core statistics (nil before Run).
func (g *Group) Stats(i int) *core.Stats { return g.stats[i] }

// TenantStatsOf returns tenant i's backend stat shard, or nil when the
// backend cannot shard (no backend, or a single-tenant group).
func (g *Group) TenantStatsOf(i int) *dram.TenantStats {
	ta, ok := g.mems[0].Tim.Backend.(dram.TenantAware)
	if !ok || g.N() < 2 {
		return nil
	}
	return ta.TenantStatsOf(i)
}

// AttachTracer wires the cycle-stamped event tracer into the shared
// memory system (backend + MSHR file + prefetcher) and into every
// tenant's core pipeline (issue→commit spans and causal flow events);
// events separate per tenant through their requestor tags.
func (g *Group) AttachTracer(tr *stats.Tracer) {
	g.mems[0].AttachTracer(tr)
	for i, s := range g.sims {
		s.SetTracer(tr, i)
	}
}

// RunSampled is Run with an interval sampler: after every lockstep
// round it samples the registry whenever the group clock has crossed
// the next interval boundary, stamping each row with the cycle the
// engine actually reached (under the wheel a round can jump far past a
// boundary; the row records the landing cycle, so both engines produce
// one row per crossed boundary). A nil sampler degenerates to Run.
func (g *Group) RunSampled(s *stats.Sampler) {
	if s == nil {
		g.Run()
		return
	}
	if g.done {
		return
	}
	next := s.Interval()
	for {
		any := false
		for _, sim := range g.sims {
			if sim.Running() {
				sim.Step()
				any = true
			}
		}
		if !any {
			break
		}
		if g.wheel {
			g.skipRound()
		}
		// The group clock is the furthest any tenant reached; finished
		// tenants' clocks freeze, running ones move in lockstep.
		now := int64(0)
		for _, sim := range g.sims {
			if t := sim.Now(); t > now {
				now = t
			}
		}
		if now >= next {
			s.Sample(now)
			for next <= now {
				next += s.Interval()
			}
		}
	}
	for i, sim := range g.sims {
		g.stats[i] = sim.Finish()
	}
	g.mems[0].Drain()
	g.done = true
}

// Register wires the whole group into a stats registry: the shared
// structures once under their classic names (cache.l2, vmem.mshr,
// vmem.prefetch, dram — so multi-tenant snapshots stay comparable to
// single-requestor ones), and each tenant's private shards under
// tenant.<i>.* (core, cache.l1, vmem, and the backend's per-tenant
// read-latency/bandwidth shard as tenant.<i>.dram).
func (g *Group) Register(reg *stats.Registry) {
	m0 := g.mems[0]
	if m0.L2 != nil {
		reg.AddStruct("cache.l2", &m0.L2.Stats)
	}
	if f := m0.MSHR(); f != nil {
		reg.AddStruct("vmem.mshr", f.Stats())
		if pf := f.Prefetcher(); pf != nil {
			reg.AddStruct("vmem.prefetch", pf.Stats())
			// Useless is derived from the L2's eviction accounting at
			// read time; sync it into the live struct on every snapshot.
			reg.OnSnapshot(func() { m0.PrefetchStats() })
		}
	}
	if b := m0.DRAM(); b != nil {
		reg.AddStruct("dram", b.Stats())
	}
	if sp0 := m0.Tim.VA; sp0 != nil {
		sp0.VM().RegisterShared(reg) // shared L2 TLB + walk counters
	}
	for i := range g.sims {
		p := fmt.Sprintf("tenant.%d", i)
		reg.AddStruct(p+".core", g.sims[i].StatsRef())
		m := g.mems[i]
		if m.L1 != nil {
			reg.AddStruct(p+".cache.l1", &m.L1.Stats)
		}
		reg.AddStruct(p+".vmem", m.VM.Stats())
		reg.Counter(p+".vmem.scalar_l2_accesses", func() uint64 { return m.ScalarL2Accesses })
		if sp := m.Tim.VA; sp != nil {
			sp.Register(reg, p+".vm.tlb")
		}
		if ts := g.TenantStatsOf(i); ts != nil {
			reg.AddStruct(p+".dram", ts)
		}
	}
}
