package tenant_test

// The whole-pipeline observability net at the system level: a 2-tenant
// group on the shared QoS backend, run under the event-wheel engine
// with the tracer attached, must (1) keep every tenant's CPI stack
// conserved and bit-identical across engines, and (2) export a Chrome
// trace that parses back coherently — issue→commit spans nest like a
// stack per (pid, tid), every causal flow chain resolves to its start
// event, and a deliberately tiny ring that wrapped during SkipTo still
// renders with monotonic timestamps.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/vmem"
)

// runTracedTenants runs a 2-tenant GSM-encode group under the wheel
// engine on the fully-loaded shared backend (MSHR file, prefetcher,
// QoS, virtual addressing) with a tracer of the given capacity.
func runTracedTenants(t *testing.T, mode engine.Mode, capacity int) (*tenant.Group, *stats.Tracer) {
	t.Helper()
	backend, knobs, err := dram.ParseSpecFull("sdram/line/frfcfs/mshr8/pf4/tn2/qos/va", 100)
	if err != nil {
		t.Fatal(err)
	}
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	vmsys, err := core.NewVM(knobs.VA, 2, backend)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MOMCore()
	insts := traceOf(kernels.GSMEncode(kernels.SmallGSMEncConfig()), kernels.MOM3D)
	g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D, Tim: tim,
		Lanes: cfg.Lanes, Traces: [][]isa.Inst{insts, insts}, Engine: mode, VM: vmsys})
	tr := stats.NewTracer(capacity)
	g.AttachTracer(tr)
	g.Run()
	return g, tr
}

// TestCPIConservationTenants: per-tenant conservation on the shared
// backend under both engines, and bit-identical stacks across them —
// the multi-tenant face of core's golden-matrix invariant. QoS is on,
// so the QosYield bucket is live here.
func TestCPIConservationTenants(t *testing.T) {
	var stacks [2][2]core.CPIStack
	for mi, mode := range []engine.Mode{engine.Step, engine.Wheel} {
		g, _ := runTracedTenants(t, mode, 1<<10)
		for i := 0; i < g.N(); i++ {
			st := g.Stats(i)
			if got, want := st.CPI.Sum(), uint64(st.Cycles); got != want {
				t.Errorf("[%v] tenant %d: CPI stack sums to %d, run took %d cycles",
					mode, i, got, want)
			}
			stacks[mi][i] = st.CPI
		}
	}
	for i := 0; i < 2; i++ {
		if stacks[0][i] != stacks[1][i] {
			t.Errorf("tenant %d: CPI stacks diverged across engines:\n  step  %+v\n  wheel %+v",
				i, stacks[0][i], stacks[1][i])
		}
	}
}

// TestQosYieldAttribution drives the four-way motionsearch storm
// through the non-blocking file with QoS scheduling on — the one
// configuration where the channel scheduler actually defers reads —
// and asserts the deferral cycles surface in the CPI stacks' QosYield
// bucket while every tenant stays conserved.
func TestQosYieldAttribution(t *testing.T) {
	bm, ok := kernels.ByName("motionsearch")
	if !ok {
		t.Fatal("motionsearch missing from the suite")
	}
	insts := traceOf(bm, kernels.MOM3D)
	tim := timingFor(t, "sdram/line/frfcfs/mshr8/tn4/qos")
	cfg := core.MOMCore()
	g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D, Tim: tim,
		Lanes: cfg.Lanes, Traces: [][]isa.Inst{insts, insts, insts, insts},
		Engine: engine.Wheel})
	g.Run()
	if tim.Backend.Stats().QoSDeferred == 0 {
		t.Fatal("QoS never deferred; the attribution check below would be vacuous")
	}
	var yielded uint64
	for i := 0; i < g.N(); i++ {
		st := g.Stats(i)
		if got, want := st.CPI.Sum(), uint64(st.Cycles); got != want {
			t.Errorf("tenant %d: CPI stack sums to %d, run took %d cycles", i, got, want)
		}
		yielded += st.CPI.QosYield
	}
	if yielded == 0 {
		t.Errorf("backend deferred %d scheduling turns but no tenant's stack shows QosYield",
			tim.Backend.Stats().QoSDeferred)
	}
}

// parsedEvent mirrors the exported Chrome event shape; IDs decode as
// json.Number so 64-bit flow IDs (the xlat chains set bit 63) compare
// exactly instead of through float64.
type parsedEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	TS   int64       `json:"ts"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	ID   json.Number `json:"id"`
}

type parsedTrace struct {
	TraceEvents []parsedEvent              `json:"traceEvents"`
	Meta        map[string]json.RawMessage `json:"otherData"`
}

func parseChrome(t *testing.T, tr *stats.Tracer) parsedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	var doc parsedTrace
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace JSON does not parse back: %v", err)
	}
	return doc
}

// TestTraceParseBackWheelTenants parses the full-ring export: span
// begin/end events must balance like a stack on every (pid, tid) lane,
// and every flow step/finish must belong to a chain some 's' started.
func TestTraceParseBackWheelTenants(t *testing.T) {
	_, tr := runTracedTenants(t, engine.Wheel, 1<<22)
	if tr.Dropped() != 0 {
		t.Fatalf("ring wrapped (%d dropped) — grow the capacity so the structural checks see every event", tr.Dropped())
	}
	doc := parseChrome(t, tr)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Span nesting: per (pid, tid), E closes the most recent open B of
	// the same name; depth never goes negative; everything closes.
	type lane struct{ pid, tid int }
	spans := map[lane][]string{}
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		l := lane{e.PID, e.TID}
		switch e.Ph {
		case "B":
			spans[l] = append(spans[l], e.Name)
		case "E":
			st := spans[l]
			if len(st) == 0 {
				t.Fatalf("lane %+v: E %q with no open span at ts %d", l, e.Name, e.TS)
			}
			if top := st[len(st)-1]; top != e.Name {
				t.Fatalf("lane %+v: E %q does not match open span %q at ts %d", l, e.Name, top, e.TS)
			}
			spans[l] = st[:len(st)-1]
		}
	}
	for l, st := range spans {
		if len(st) != 0 {
			t.Errorf("lane %+v: %d spans never closed: %v", l, len(st), st)
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("expected both tenants as Chrome pids 1 and 2, saw %v", pids)
	}

	// Flow chains: the (cat, name, id) triple keys a chain; every chain
	// with a 't' or 'f' must have been started by an 's', and the trace
	// must exercise both chain families end to end.
	type chain struct{ cat, name, id string }
	phases := map[chain]map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s", "t", "f":
			c := chain{e.Cat, e.Name, e.ID.String()}
			if phases[c] == nil {
				phases[c] = map[string]bool{}
			}
			phases[c][e.Ph] = true
		}
	}
	var fullDep, xlat int
	for c, ph := range phases {
		if (ph["t"] || ph["f"]) && !ph["s"] {
			t.Errorf("flow chain %+v has %v but no start event", c, ph)
		}
		if c.cat == "dep" && ph["s"] && ph["t"] && ph["f"] {
			fullDep++
		}
		if c.cat == "xlat" && ph["s"] && ph["f"] {
			xlat++
		}
	}
	if fullDep == 0 {
		t.Error("no instruction→MSHR→fill flow chain resolved s→t→f")
	}
	if xlat == 0 {
		t.Error("no translation-walk flow chain resolved s→f")
	}

	// Spans and chains must come from the core, not just the memory
	// system: at least one issue→commit slice per tenant.
	corePerPID := map[int]int{}
	for _, e := range doc.TraceEvents {
		if e.Cat == "core" && e.Ph == "B" {
			corePerPID[e.PID]++
		}
	}
	for pid := 1; pid <= 2; pid++ {
		if corePerPID[pid] == 0 {
			t.Errorf("tenant pid %d emitted no core spans", pid)
		}
	}
}

// TestTraceRingWrapMonotonic drives the same run through a ring far too
// small for it, so the ring overwrites continuously (including across
// SkipTo jumps), and asserts the export stays well-formed: it parses,
// timestamps are non-decreasing, and the drop accounting in the
// document matches the tracer's.
func TestTraceRingWrapMonotonic(t *testing.T) {
	_, tr := runTracedTenants(t, engine.Wheel, 512)
	if tr.Dropped() == 0 {
		t.Fatal("ring did not wrap — shrink the capacity; this test exists to cover overwrite")
	}
	doc := parseChrome(t, tr)
	if len(doc.TraceEvents) != 512 {
		t.Errorf("wrapped ring retained %d events, want its capacity 512", len(doc.TraceEvents))
	}
	for i := 1; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].TS < doc.TraceEvents[i-1].TS {
			t.Fatalf("timestamps regress at event %d: %d after %d",
				i, doc.TraceEvents[i].TS, doc.TraceEvents[i-1].TS)
		}
	}
	var dropped uint64
	if err := json.Unmarshal(doc.Meta["droppedEvents"], &dropped); err != nil {
		t.Fatalf("otherData.droppedEvents: %v", err)
	}
	if dropped != tr.Dropped() {
		t.Errorf("document reports %d dropped events, tracer reports %d", dropped, tr.Dropped())
	}
	if fmt.Sprint(tr.Total()) == "0" {
		t.Error("tracer total is zero after a traced run")
	}
}
