package tenant_test

// Wheel-vs-step equivalence for the multi-tenant front end: the
// event-wheel group — which replaces the per-cycle lockstep barrier
// with a jump to the earliest wake-up any tenant reports — must
// reproduce the per-cycle group's every counter bit for bit: per-tenant
// core stats, per-tenant vector-memory stats, the shared backend block
// and the per-tenant backend shards.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/vmem"
)

func TestWheelMatchesStepTenants(t *testing.T) {
	ms := kernels.MotionSearch(kernels.SmallMotionSearchConfig())
	gsm := kernels.GSMEncode(kernels.SmallGSMEncConfig())
	jpg := kernels.JPEGEncode(kernels.SmallJPEGEncConfig())

	cases := []struct {
		name   string
		traces [][]isa.Inst
		spec   string
	}{
		{"2x-motionsearch", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(ms, kernels.MOM3D)}, "sdram/line/frfcfs"},
		{"mixed-2", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/line/frfcfs/mshr8"},
		{"mixed-3-pf", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D), traceOf(jpg, kernels.MOM3D)}, "sdram/line/frfcfs/mshr8/pf4"},
		{"qos-2", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/line/frfcfs/tn2/qos"},
		{"hbm-2", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/line/frfcfs/hbm"},
	}
	for _, tc := range cases {
		cfg := core.MOMCore()
		run := func(mode engine.Mode) *tenant.Group {
			g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D,
				Tim: timingFor(t, tc.spec), Lanes: cfg.Lanes,
				Traces: tc.traces, Engine: mode})
			g.Run()
			return g
		}
		step := run(engine.Step)
		wheel := run(engine.Wheel)
		for i := 0; i < step.N(); i++ {
			key := fmt.Sprintf("%s/%s tenant %d", tc.name, tc.spec, i)
			if !reflect.DeepEqual(*step.Stats(i), *wheel.Stats(i)) {
				t.Errorf("%s: core stats diverged\n  step  %+v\n  wheel %+v",
					key, *step.Stats(i), *wheel.Stats(i))
			}
			if !reflect.DeepEqual(*step.Mem(i).VM.Stats(), *wheel.Mem(i).VM.Stats()) {
				t.Errorf("%s: vmem stats diverged", key)
			}
			ss, ws := step.TenantStatsOf(i), wheel.TenantStatsOf(i)
			if (ss == nil) != (ws == nil) {
				t.Fatalf("%s: shard presence diverged", key)
			}
			if ss != nil && !reflect.DeepEqual(*ss, *ws) {
				t.Errorf("%s: backend shard diverged\n  step  %+v\n  wheel %+v", key, *ss, *ws)
			}
		}
		sb := step.Mem(0).Tim.Backend
		wb := wheel.Mem(0).Tim.Backend
		if sb != nil && !reflect.DeepEqual(*sb.Stats(), *wb.Stats()) {
			t.Errorf("%s/%s: shared backend stats diverged\n  step  %+v\n  wheel %+v",
				tc.name, tc.spec, *sb.Stats(), *wb.Stats())
		}
	}
}

// TestWheelMatchesStepTenantsVA extends the equivalence to real address
// spaces: under the wheel a tenant's page-table walk completes lazily at
// its next poll, racing the group's skip rounds and the shared MSHR
// fill wake-ups, and the shared L2 TLB orders insertions across tenants
// — the full registry snapshot (core, caches, vmem, dram shards and
// every vm.tlb/vm.walk counter) must still match the per-cycle lockstep
// group bit for bit.
func TestWheelMatchesStepTenantsVA(t *testing.T) {
	ms := kernels.MotionSearch(kernels.SmallMotionSearchConfig())
	gsm := kernels.GSMEncode(kernels.SmallGSMEncConfig())

	cases := []struct {
		name   string
		traces [][]isa.Inst
		spec   string
	}{
		{"va-2", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/bank/frfcfs/tn2/va"},
		{"vacolor-2-mshr", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/bank/frfcfs/tn2/mshr8/vacolor"},
		{"vacolo-2-qos", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/bank/frfcfs/tn2/qos/vacolo"},
		{"va-3-pf", [][]isa.Inst{traceOf(ms, kernels.MOM3D), traceOf(ms, kernels.MOM3D), traceOf(gsm, kernels.MOM3D)}, "sdram/bank/frfcfs/tn3/mshr8/pf4/vacolor"},
	}
	for _, tc := range cases {
		cfg := core.MOMCore()
		run := func(mode engine.Mode) string {
			// Backend AND VM must be fresh per run: both are stateful.
			backend, knobs, err := dram.ParseSpecFull(tc.spec, 100)
			if err != nil {
				t.Fatalf("spec %q: %v", tc.spec, err)
			}
			tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
				MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
			vmsys, err := core.NewVM(knobs.VA, len(tc.traces), backend)
			if err != nil {
				t.Fatalf("spec %q: %v", tc.spec, err)
			}
			g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D,
				Tim: tim, Lanes: cfg.Lanes, Traces: tc.traces, Engine: mode, VM: vmsys})
			g.Run()
			reg := stats.NewRegistry()
			g.Register(reg)
			return reg.Snapshot().String()
		}
		step := run(engine.Step)
		wheel := run(engine.Wheel)
		if step != wheel {
			t.Errorf("%s/%s: wheel snapshot diverged from step\n--- step ---\n%s--- wheel ---\n%s",
				tc.name, tc.spec, step, wheel)
		}
	}
}
