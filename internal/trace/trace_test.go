package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestTraceAppends(t *testing.T) {
	tr := &Trace{}
	tr.Emit(isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar})
	tr.Emit(isa.Inst{Op: isa.OpISub, Kind: isa.KindScalar})
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestMultiFanout(t *testing.T) {
	a, b := &Trace{}, &Trace{}
	m := Multi{a, b}
	m.Emit(isa.Inst{Op: isa.OpNop})
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("fanout failed")
	}
}

func TestStatsKindsAndBytes(t *testing.T) {
	s := NewStats()
	s.Emit(isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar})
	s.Emit(isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem, Imm: 4})
	s.Emit(isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, VL: 8, Stride: 8, Imm: 8})
	s.Emit(isa.Inst{Op: isa.OpBr, Kind: isa.KindBranch, Taken: true})
	s.Emit(isa.Inst{Op: isa.OpBr, Kind: isa.KindBranch})
	if s.Total != 5 {
		t.Errorf("total = %d", s.Total)
	}
	if s.ByKind[isa.KindScalar] != 1 || s.ByKind[isa.KindMOMMem] != 1 {
		t.Error("kind counts wrong")
	}
	if s.MemBytes != 4+64 {
		t.Errorf("bytes = %d", s.MemBytes)
	}
	if s.Branches != 2 || s.Taken != 1 {
		t.Error("branch stats wrong")
	}
	if !strings.Contains(s.String(), "instructions: 5") {
		t.Error("summary missing total")
	}
}

func TestDimsNoVectorMemory(t *testing.T) {
	s := NewStats()
	s.Emit(isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar})
	d1, d2, d3, mx, has3 := s.Dims()
	if d1 != 0 || d2 != 0 || d3 != 0 || mx != 0 || has3 {
		t.Error("dims of scalar-only stream must be zero")
	}
}

func TestDimsThirdDimensionPerRegister(t *testing.T) {
	s := NewStats()
	// dvload into d0, consume 3 slices; dvload into d1, consume 1; a new
	// load to d0 then gets 2 more. Plain 2D loads count a third dim of 1.
	s.Emit(isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0), VL: 8, Width: 16, Imm: 8})
	for i := 0; i < 3; i++ {
		s.Emit(isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1), Src1: isa.D(0), VL: 8})
	}
	s.Emit(isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(1), VL: 8, Width: 16, Imm: 8})
	s.Emit(isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(2), Src1: isa.D(1), VL: 8})
	s.Emit(isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0), VL: 8, Width: 16, Imm: 8})
	s.Emit(isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(3), Src1: isa.D(0), VL: 8})
	s.Emit(isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(4), Src1: isa.D(0), VL: 8})
	s.Emit(isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, VL: 4, Stride: 8, Imm: 8})

	d1, d2, d3, mx, has3 := s.Dims()
	if !has3 {
		t.Fatal("has3 must be true")
	}
	if d1 != 8 {
		t.Errorf("dim1 = %v", d1)
	}
	if want := (8.0*3 + 4) / 4; d2 != want {
		t.Errorf("dim2 = %v, want %v", d2, want)
	}
	// slices: 3 + 1 + 2 = 6; plus the plain 2D load counts 1 => 7/4.
	if want := 7.0 / 4; d3 != want {
		t.Errorf("dim3 = %v, want %v", d3, want)
	}
	if mx != 3 {
		t.Errorf("dim3 max = %d", mx)
	}
	if got := s.SlicesPerLoad(); got != 2 {
		t.Errorf("slices per load = %v, want 2", got)
	}
}

func TestSlicesPerLoadEmpty(t *testing.T) {
	if NewStats().SlicesPerLoad() != 0 {
		t.Error("empty stats must report 0 slices per load")
	}
}
