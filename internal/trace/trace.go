// Package trace defines the dynamic instruction stream produced by the
// kernels (via internal/prog) and consumed by the cycle simulator, plus
// stream-level statistics: instruction mix, memory volume, and the
// per-dimension vector lengths reported in Table 1 of the paper.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Sink receives dynamic instructions in program order.
type Sink interface {
	Emit(in isa.Inst)
}

// Trace is an in-memory dynamic instruction stream.
type Trace struct {
	Insts []isa.Inst
}

// Emit appends one instruction, implementing Sink.
func (t *Trace) Emit(in isa.Inst) { t.Insts = append(t.Insts, in) }

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Multi fans one stream out to several sinks.
type Multi []Sink

// Emit forwards the instruction to every sink.
func (m Multi) Emit(in isa.Inst) {
	for _, s := range m {
		s.Emit(in)
	}
}

// Stats accumulates stream statistics. It implements Sink and can be
// attached alongside a Trace (or used alone, streaming, for very long
// runs).
type Stats struct {
	// Total is the dynamic instruction count.
	Total uint64
	// ByKind counts instructions per pipeline class.
	ByKind [isa.Kind3DMove + 1]uint64
	// ByOp counts instructions per opcode.
	ByOp [isa.NumOps]uint64
	// MemBytes is the total bytes moved by memory instructions.
	MemBytes uint64
	// Branches and Taken count control-flow behaviour.
	Branches, Taken uint64

	// Vector memory dimension statistics (Table 1). A "vector memory
	// instruction" is a MOM 2D memory operation or a 3D vector load.
	VecMemInsts uint64
	sumPack     uint64 // Σ subword elements per 64-bit word (dimension 1)
	sumVL       uint64 // Σ vector length (dimension 2)

	// D3MoveElems counts total elements transferred by 3dvmov
	// instructions (3D register file read activity, used by the power
	// model).
	D3MoveElems uint64

	// Third-dimension bookkeeping: for each dvload, the number of
	// 3dvmov slices consumed from it.
	d3Open   [isa.Num3DRegs]int // index into d3Slices, -1 if none open
	d3Slices []int
}

// NewStats returns an empty statistics collector.
func NewStats() *Stats {
	s := &Stats{}
	for i := range s.d3Open {
		s.d3Open[i] = -1
	}
	return s
}

// Emit accumulates one instruction, implementing Sink.
func (s *Stats) Emit(in isa.Inst) {
	s.Total++
	s.ByKind[in.Kind]++
	s.ByOp[in.Op]++
	s.MemBytes += uint64(in.Bytes())
	if in.Kind == isa.KindBranch {
		s.Branches++
		if in.Taken {
			s.Taken++
		}
	}
	switch in.Kind {
	case isa.KindMOMMem, isa.Kind3DLoad:
		s.VecMemInsts++
		s.sumVL += uint64(in.VL)
		pack := in.Imm
		if pack <= 0 {
			pack = 1
		}
		s.sumPack += uint64(pack)
	}
	if in.Kind == isa.Kind3DLoad {
		r := in.Dst.Index()
		s.d3Slices = append(s.d3Slices, 0)
		s.d3Open[r] = len(s.d3Slices) - 1
	}
	if in.Kind == isa.Kind3DMove {
		s.D3MoveElems += uint64(in.VL)
		if i := s.d3Open[in.Src1.Index()]; i >= 0 {
			s.d3Slices[i]++
		}
	}
}

// Dims reports the average vector length along each of the three
// dimensions of the vector memory instructions, plus the maximum observed
// third-dimension length, in the style of Table 1:
//
//   - dim1: subword elements per 64-bit word (μSIMD packing),
//   - dim2: MOM vector length,
//   - dim3: 2D streams served per memory instruction (plain 2D operations
//     count 1; a dvload counts the 3dvmov slices consumed from it).
//
// has3 reports whether the stream contains any 3D memory instructions.
func (s *Stats) Dims() (dim1, dim2, dim3 float64, dim3Max int, has3 bool) {
	if s.VecMemInsts == 0 {
		return 0, 0, 0, 0, false
	}
	dim1 = float64(s.sumPack) / float64(s.VecMemInsts)
	dim2 = float64(s.sumVL) / float64(s.VecMemInsts)
	n3 := uint64(len(s.d3Slices))
	slices := uint64(0)
	for _, c := range s.d3Slices {
		slices += uint64(c)
		if c > dim3Max {
			dim3Max = c
		}
	}
	// Plain 2D memory instructions contribute a third dimension of 1.
	dim3 = float64(slices+(s.VecMemInsts-n3)) / float64(s.VecMemInsts)
	return dim1, dim2, dim3, dim3Max, n3 > 0
}

// SlicesPerLoad returns the average number of 3dvmov slices consumed per
// dvload (0 if the stream has no 3D loads).
func (s *Stats) SlicesPerLoad() float64 {
	if len(s.d3Slices) == 0 {
		return 0
	}
	var sum int
	for _, c := range s.d3Slices {
		sum += c
	}
	return float64(sum) / float64(len(s.d3Slices))
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", s.Total)
	for k := isa.KindScalar; k <= isa.Kind3DMove; k++ {
		if s.ByKind[k] > 0 {
			fmt.Fprintf(&b, "  %-11s %10d (%.1f%%)\n", k, s.ByKind[k],
				100*float64(s.ByKind[k])/float64(s.Total))
		}
	}
	fmt.Fprintf(&b, "memory bytes: %d\n", s.MemBytes)
	if s.Branches > 0 {
		fmt.Fprintf(&b, "branches: %d (%.1f%% taken)\n", s.Branches,
			100*float64(s.Taken)/float64(s.Branches))
	}
	if s.VecMemInsts > 0 {
		d1, d2, d3, mx, has3 := s.Dims()
		fmt.Fprintf(&b, "vector memory dims: %.1f / %.1f", d1, d2)
		if has3 {
			fmt.Fprintf(&b, " / %.1f (max %d)", d3, mx)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
