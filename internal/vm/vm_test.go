package vm

import (
	"testing"

	"repro/internal/isa"
)

// testConfig shrinks the geometry so eviction and walk paths are easy
// to reach.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 2, 2
	cfg.L2Sets, cfg.L2Ways = 4, 2
	cfg.PhysPages = 64
	return cfg
}

func scalarLoad(va uint64) *isa.Inst {
	return &isa.Inst{Kind: isa.KindScalarMem, Addr: va, Imm: 8}
}

// A first touch walks the full table (demand fault included) and the
// instruction stalls Levels*WalkLat cycles; once the walk fills the
// TLBs the same page is an L1 hit and issues immediately.
func TestReadyTimingAndIdempotence(t *testing.T) {
	v := New(testConfig(), 1, nil)
	sp := v.Space(0)
	in := scalarLoad(0x4000)
	walkDone := int64(100) + int64(v.cfg.Levels)*v.cfg.WalkLat

	if got := sp.Ready(in, 1, 100); got != walkDone {
		t.Fatalf("first-touch Ready = %d, want walk completion at %d", got, walkDone)
	}
	if sp.st.Faults != 1 || v.wst.Walks != 1 {
		t.Fatalf("faults=%d walks=%d, want 1/1", sp.st.Faults, v.wst.Walks)
	}
	// Per-cycle oracle behavior: the stalled instruction re-polls every
	// cycle. The transaction must absorb the retries without touching
	// TLB or walk state again.
	for now := int64(101); now < walkDone; now++ {
		if got := sp.Ready(in, 1, now); got != walkDone {
			t.Fatalf("retry at %d returned %d, want %d", now, got, walkDone)
		}
	}
	if v.wst.Walks != 1 || sp.st.L1Misses != 1 {
		t.Fatalf("retries restarted the transaction: walks=%d l1misses=%d", v.wst.Walks, sp.st.L1Misses)
	}
	// At the ready cycle the transaction retires and fills the TLBs.
	if got := sp.Ready(in, 1, walkDone); got != walkDone {
		t.Fatalf("Ready at completion = %d, want %d", got, walkDone)
	}
	if v.wst.Latency.Count() != 1 {
		t.Fatalf("walk latency histogram count = %d, want 1", v.wst.Latency.Count())
	}
	// A fresh instruction on the same page is an L1 TLB hit: no stall.
	if got := sp.Ready(scalarLoad(0x4008), 2, walkDone+1); got != walkDone+1 {
		t.Fatalf("post-fill Ready = %d, want immediate issue", got)
	}
	if sp.st.L1Hits != 1 {
		t.Fatalf("L1Hits = %d, want 1", sp.st.L1Hits)
	}
}

// Two instructions missing the same page must share one walk.
func TestWalkCoalescing(t *testing.T) {
	v := New(testConfig(), 1, nil)
	sp := v.Space(0)
	d1 := sp.Ready(scalarLoad(0x9000), 1, 50)
	d2 := sp.Ready(scalarLoad(0x9010), 2, 55)
	if d1 != d2 {
		t.Fatalf("coalesced walk completions differ: %d vs %d", d1, d2)
	}
	if v.wst.Walks != 1 || v.wst.Coalesced != 1 {
		t.Fatalf("walks=%d coalesced=%d, want 1/1", v.wst.Walks, v.wst.Coalesced)
	}
}

// With demand paging off, touching an unmapped page is a model bug.
func TestUnmappedAccessPanics(t *testing.T) {
	cfg := testConfig()
	cfg.Demand = false
	v := New(cfg, 1, nil)
	sp := v.Space(0)
	sp.Alloc(0x1000, 0x1000)
	if got := sp.Ready(scalarLoad(0x1800), 1, 0); got < 0 {
		t.Fatal("mapped access failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic with demand paging off")
		}
	}()
	sp.Ready(scalarLoad(0x8000), 2, 10)
}

// Freeing a range must shoot the translations out of both TLB levels:
// the next touch walks again instead of using a stale entry, and the
// physical pages return to the allocator.
func TestShootdownOnFree(t *testing.T) {
	v := New(testConfig(), 1, nil)
	sp := v.Space(0)
	in := scalarLoad(0x4000)
	done := sp.Ready(in, 1, 0)
	sp.Ready(in, 1, done) // retire: fills L1+L2
	if v.l2.Entries() != 1 || sp.l1.Entries() != 1 {
		t.Fatalf("TLBs not filled: l2=%d l1=%d", v.l2.Entries(), sp.l1.Entries())
	}
	free0 := v.FreePages()
	sp.Free(0x4000, 8)
	if v.wst.Shootdowns != 1 {
		t.Fatalf("Shootdowns = %d, want 1", v.wst.Shootdowns)
	}
	if v.l2.Entries() != 0 || sp.l1.Entries() != 0 {
		t.Fatalf("shoot-down left stale entries: l2=%d l1=%d", v.l2.Entries(), sp.l1.Entries())
	}
	if v.FreePages() != free0+1 {
		t.Fatalf("page did not return to the allocator: %d -> %d", free0, v.FreePages())
	}
	// The re-touch must walk again (and may land on a different frame).
	if d := sp.Ready(scalarLoad(0x4000), 2, 1000); d == 1000 {
		t.Fatal("re-touch after shoot-down issued without a walk")
	}
	if v.wst.Walks != 2 {
		t.Fatalf("Walks = %d, want 2", v.wst.Walks)
	}
}

// An L1-capacity-evicted translation should still hit the bigger
// shared L2 TLB, paying only the L2 penalty.
func TestL2TLBHitPath(t *testing.T) {
	cfg := testConfig()
	v := New(cfg, 1, nil)
	sp := v.Space(0)
	// Touch more pages than the 4-entry L1 holds; all land in the L2.
	var done int64
	for i := uint64(0); i < 8; i++ {
		seq := i + 1
		d := sp.Ready(scalarLoad(i<<cfg.PageBits), seq, done)
		done = d
		sp.Ready(scalarLoad(i<<cfg.PageBits), seq, done) // retire
	}
	if sp.st.L1Evictions == 0 {
		t.Fatalf("expected L1 evictions after 8 pages in a 4-entry L1")
	}
	// Page 0 was evicted from L1 but lives in L2: the stall must be
	// exactly the L2 penalty, not a walk.
	h0 := v.st.L2Hits
	d := sp.Ready(scalarLoad(0), 100, done)
	if d != done+cfg.L2TLBLat {
		t.Fatalf("L2-hit stall = %d cycles, want %d", d-done, cfg.L2TLBLat)
	}
	if v.st.L2Hits != h0+1 {
		t.Fatalf("L2Hits = %d, want %d", v.st.L2Hits, h0+1)
	}
}

// fakeChans maps 8 KiB stripes round-robin over 4 channels — the ddr
// bank-mapping shape (channel bits just above the page offset).
type fakeChans struct{}

func (fakeChans) ChannelOf(addr uint64) int { return int(addr>>13) & 3 }
func (fakeChans) ChannelCount() int         { return 4 }

// The placement policies must actually differ: coloring spreads a
// space's pages evenly over channels, co-location keeps them
// physically contiguous, first-fit takes the lowest hole.
func TestPlacementPolicies(t *testing.T) {
	alloc := func(p Policy) *Space {
		cfg := testConfig()
		cfg.Policy = p
		v := New(cfg, 1, fakeChans{})
		sp := v.Space(0)
		sp.Alloc(0, 16<<cfg.PageBits) // 16 pages
		return sp
	}

	colored := alloc(PolicyColor).PageChannels()
	for ch, n := range colored {
		if n != 4 {
			t.Fatalf("coloring left channel %d with %d/16 pages: %v", ch, n, colored)
		}
	}

	colo := alloc(PolicyColocate)
	for vpn := uint64(0); vpn < 16; vpn++ {
		ppn, ok := colo.pt.Lookup(vpn)
		if !ok || ppn != vpn {
			t.Fatalf("co-location broke contiguity: vpn %d -> ppn %d", vpn, ppn)
		}
	}

	ff := alloc(PolicyFirstFit)
	if ppn, _ := ff.pt.Lookup(0); ppn != 0 {
		t.Fatalf("first-fit did not start at the lowest page: %d", ppn)
	}
}

// Two spaces are isolated: the same virtual page maps to different
// frames, and the shared L2 TLB keeps the translations apart.
func TestSpaceIsolation(t *testing.T) {
	v := New(testConfig(), 2, nil)
	a, b := v.Space(0), v.Space(1)
	a.Alloc(0x4000, 8)
	b.Alloc(0x4000, 8)
	pa, pb := a.Translate(0x4000), b.Translate(0x4000)
	if pa == pb {
		t.Fatalf("two tenants share frame %#x for one virtual page", pa)
	}
	if a.Translate(0x4004) != pa+4 {
		t.Fatal("page-offset bits not preserved")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"first": PolicyFirstFit, "color": PolicyColor, "colo": PolicyColocate} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
