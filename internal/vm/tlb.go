package vm

// TLB is a set-associative translation buffer with true-LRU
// replacement inside each set. Tags are opaque: the private L1 TLBs
// tag by virtual page number alone, the shared L2 TLB folds the tenant
// into the tag (and so models cross-tenant set contention). Lookups
// touch LRU state, so callers must only look up when the access model
// says the hardware would — the issue path guarantees one touch per
// page per instruction.
type TLB struct {
	sets, ways int
	ent        []tlbEntry
	tick       int64
}

type tlbEntry struct {
	tag   uint64
	ppn   uint64
	used  int64
	valid bool
}

// NewTLB builds a sets × ways TLB; sets must be a power of two.
func NewTLB(sets, ways int) *TLB {
	if sets < 1 || sets&(sets-1) != 0 || ways < 1 {
		panic("vm: TLB geometry must be power-of-two sets x ways >= 1")
	}
	return &TLB{sets: sets, ways: ways, ent: make([]tlbEntry, sets*ways)}
}

func (t *TLB) set(tag uint64) []tlbEntry {
	i := int(tag) & (t.sets - 1)
	return t.ent[i*t.ways : (i+1)*t.ways]
}

// Lookup probes for tag, refreshing its LRU position on a hit.
func (t *TLB) Lookup(tag uint64) (ppn uint64, ok bool) {
	set := t.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			t.tick++
			set[i].used = t.tick
			return set[i].ppn, true
		}
	}
	return 0, false
}

// Insert installs tag → ppn, evicting the set's LRU entry if the set
// is full; it reports whether a valid entry was displaced.
func (t *TLB) Insert(tag, ppn uint64) (evicted bool) {
	set := t.set(tag)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i // refresh in place
			goto place
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	evicted = true
place:
	t.tick++
	set[victim] = tlbEntry{tag: tag, ppn: ppn, used: t.tick, valid: true}
	return evicted
}

// Invalidate drops tag's entry (a shoot-down); it reports whether the
// entry was present.
func (t *TLB) Invalidate(tag uint64) bool {
	set := t.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = tlbEntry{}
			return true
		}
	}
	return false
}

// Entries counts the valid translations currently held.
func (t *TLB) Entries() int {
	n := 0
	for i := range t.ent {
		if t.ent[i].valid {
			n++
		}
	}
	return n
}
