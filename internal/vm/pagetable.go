package vm

import "fmt"

// PageTable is a multi-level forward-mapped page table: each level
// consumes bitsPerLevel bits of the virtual page number, interior
// nodes hold child pointers, and the leaf level holds physical page
// numbers. Nodes allocate lazily, so a sparse address space costs
// memory proportional to what is actually mapped — but the walk depth
// the timing model charges is always the full level count, exactly as
// the hardware walker would pay it.
type PageTable struct {
	levels int
	bits   uint
	root   *ptNode
	mapped uint64
}

type ptNode struct {
	kids []*ptNode // interior levels
	pte  []uint64  // leaf level; ppn+1, 0 = unmapped
}

// NewPageTable builds an empty table of the given depth and radix.
func NewPageTable(levels int, bitsPerLevel uint) *PageTable {
	if levels < 1 || bitsPerLevel < 1 || uint(levels)*bitsPerLevel > 52 {
		panic(fmt.Sprintf("vm: unusable page-table shape %d levels x %d bits", levels, bitsPerLevel))
	}
	return &PageTable{levels: levels, bits: bitsPerLevel, root: &ptNode{}}
}

// VPNBits is the number of virtual-page-number bits the table resolves.
func (pt *PageTable) VPNBits() uint { return uint(pt.levels) * pt.bits }

// index extracts the level-i radix index of vpn (level 0 is the root).
func (pt *PageTable) index(vpn uint64, level int) uint64 {
	shift := pt.bits * uint(pt.levels-1-level)
	return (vpn >> shift) & (uint64(1)<<pt.bits - 1)
}

// walk descends to the leaf node covering vpn, allocating interior
// nodes when create is set; it returns nil otherwise.
func (pt *PageTable) walk(vpn uint64, create bool) *ptNode {
	if vpn>>pt.VPNBits() != 0 {
		panic(fmt.Sprintf("vm: virtual page %#x beyond the %d-bit table", vpn, pt.VPNBits()))
	}
	n := pt.root
	for level := 0; level < pt.levels-1; level++ {
		if n.kids == nil {
			if !create {
				return nil
			}
			n.kids = make([]*ptNode, 1<<pt.bits)
		}
		i := pt.index(vpn, level)
		if n.kids[i] == nil {
			if !create {
				return nil
			}
			n.kids[i] = &ptNode{}
		}
		n = n.kids[i]
	}
	if n.pte == nil {
		if !create {
			return nil
		}
		n.pte = make([]uint64, 1<<pt.bits)
	}
	return n
}

// Map installs vpn → ppn; mapping an already-mapped page panics (the
// allocator owns physical pages, so silently replacing a translation
// would leak one).
func (pt *PageTable) Map(vpn, ppn uint64) {
	leaf := pt.walk(vpn, true)
	i := pt.index(vpn, pt.levels-1)
	if leaf.pte[i] != 0 {
		panic(fmt.Sprintf("vm: virtual page %#x is already mapped", vpn))
	}
	leaf.pte[i] = ppn + 1
	pt.mapped++
}

// Unmap removes vpn's translation, returning the physical page it held.
func (pt *PageTable) Unmap(vpn uint64) (ppn uint64, ok bool) {
	leaf := pt.walk(vpn, false)
	if leaf == nil {
		return 0, false
	}
	i := pt.index(vpn, pt.levels-1)
	if leaf.pte[i] == 0 {
		return 0, false
	}
	ppn = leaf.pte[i] - 1
	leaf.pte[i] = 0
	pt.mapped--
	return ppn, true
}

// Lookup resolves vpn without side effects.
func (pt *PageTable) Lookup(vpn uint64) (ppn uint64, ok bool) {
	leaf := pt.walk(vpn, false)
	if leaf == nil {
		return 0, false
	}
	i := pt.index(vpn, pt.levels-1)
	if leaf.pte[i] == 0 {
		return 0, false
	}
	return leaf.pte[i] - 1, true
}

// Mapped is the live translation count.
func (pt *PageTable) Mapped() uint64 { return pt.mapped }
