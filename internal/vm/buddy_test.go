package vm

import (
	"math/rand"
	"testing"
)

// The buddy allocator's split/merge property test: a seeded random
// workload of page allocations, targeted claims and frees must keep
// the invariants (sorted aligned non-overlapping free lists, no
// unmerged buddy pairs) after every operation, never hand out a page
// twice, and merge back to the single full-pool block when everything
// is freed.
func TestBuddySplitMergeProperty(t *testing.T) {
	const npages = 256
	b := NewBuddy(npages)
	rng := rand.New(rand.NewSource(9))
	held := map[uint64]bool{}
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && len(held) > 0: // free a random held page
			var victim uint64
			k := rng.Intn(len(held))
			for p := range held {
				if k == 0 {
					victim = p
					break
				}
				k--
			}
			b.FreePage(victim)
			delete(held, victim)
		case op == 1: // targeted claim
			idx := uint64(rng.Intn(npages))
			if b.AllocPageAt(idx) {
				if held[idx] {
					t.Fatalf("step %d: AllocPageAt handed out held page %d", step, idx)
				}
				held[idx] = true
			} else if !held[idx] {
				t.Fatalf("step %d: AllocPageAt refused free page %d", step, idx)
			}
		default: // first-fit page alloc
			if idx, ok := b.AllocPage(); ok {
				if held[idx] {
					t.Fatalf("step %d: AllocPage handed out held page %d", step, idx)
				}
				held[idx] = true
			} else if len(held) != npages {
				t.Fatalf("step %d: pool reported full with %d/%d pages held", step, len(held), npages)
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := b.FreePages(); got != npages-uint64(len(held)) {
			t.Fatalf("step %d: FreePages = %d, want %d", step, got, npages-len(held))
		}
	}
	for p := range held {
		b.FreePage(p)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != npages || len(b.free[b.maxOrder]) != 1 || b.free[b.maxOrder][0] != 0 {
		t.Fatalf("freeing everything did not merge back to one full-pool block: %v", b.free)
	}
}

func TestBuddyFirstFitIsLowestAddress(t *testing.T) {
	b := NewBuddy(16)
	for want := uint64(0); want < 4; want++ {
		idx, ok := b.AllocPage()
		if !ok || idx != want {
			t.Fatalf("AllocPage = %d,%v, want %d", idx, ok, want)
		}
	}
	b.FreePage(1)
	if idx, ok := b.AllocPage(); !ok || idx != 1 {
		t.Fatalf("AllocPage after freeing 1 = %d,%v, want the hole at 1", idx, ok)
	}
}

func TestBuddyFindPage(t *testing.T) {
	b := NewBuddy(16)
	// Claim pages 0..3, then search for the lowest free page with an
	// odd index: must be 5.
	for i := uint64(0); i < 4; i++ {
		if !b.AllocPageAt(i) {
			t.Fatalf("AllocPageAt(%d) failed", i)
		}
	}
	idx, ok := b.FindPage(func(i uint64) bool { return i%2 == 1 })
	if !ok || idx != 5 {
		t.Fatalf("FindPage(odd) = %d,%v, want 5", idx, ok)
	}
	if _, ok := b.FindPage(func(i uint64) bool { return i >= 16 }); ok {
		t.Fatal("FindPage matched an impossible predicate")
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	b := NewBuddy(8)
	for i := 0; i < 8; i++ {
		b.AllocPage()
	}
	b.FreePage(3)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.FreePage(3)
}
