// Package vm gives each requestor a virtual address space: a
// multi-level forward-mapped page table, a two-level TLB (a private L1
// TLB per space over a shared L2 TLB), and a buddy allocator that
// places physical pages under a pluggable policy — first-fit, page
// coloring that spreads a tenant's pages round-robin across DRAM
// channels, or deliberate co-location that keeps a tenant's pages
// physically contiguous for row-hit locality.
//
// Timing rides the issue stage: before a memory instruction may issue,
// every page it touches must translate. L1 TLB hits are free (the
// lookup overlaps decode), L2 hits charge a fixed penalty, and misses
// start a page-table walk of Levels × WalkLat cycles; the instruction
// stalls in its issue queue until the slowest page resolves. Walks to
// the same page coalesce, and a first touch under demand paging
// allocates the page right there (a demand-zero fault).
//
// The model is engine-agnostic by construction: Ready is an idempotent
// transaction keyed by the instruction's sequence number, so the
// per-cycle oracle (which re-polls a stalled instruction every cycle)
// and the event wheel (which re-polls only at wake-ups) observe
// identical TLB state transitions — each instruction touches LRU state
// exactly once, at its first Ready call.
package vm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
)

// Policy selects where the allocator places a tenant's next page.
type Policy int

const (
	// PolicyFirstFit takes the lowest free physical page.
	PolicyFirstFit Policy = iota
	// PolicyColor spreads each space's pages round-robin across DRAM
	// channels: page k goes to the lowest free page on channel
	// (tenant+k) mod channels, so no tenant camps on one channel.
	PolicyColor
	// PolicyColocate keeps each space's pages physically contiguous
	// (preferring last+1), maximizing row-buffer locality for
	// streaming access at the price of channel imbalance.
	PolicyColocate
)

// ParsePolicy maps the spec/flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "first":
		return PolicyFirstFit, nil
	case "color":
		return PolicyColor, nil
	case "colo":
		return PolicyColocate, nil
	}
	return 0, fmt.Errorf("vm: unknown placement policy %q (want first, color or colo)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyColor:
		return "color"
	case PolicyColocate:
		return "colo"
	}
	return "first"
}

// ChannelMapper exposes a DRAM part's address-to-channel decode to the
// coloring policy. dram.SDRAM satisfies it; a nil mapper (the flat
// backend) degrades coloring to first-fit.
type ChannelMapper interface {
	ChannelOf(addr uint64) int
	ChannelCount() int
}

// Config shapes the translation machinery.
type Config struct {
	PageBits     uint // log2 page size (12 → 4 KiB)
	Levels       int  // page-table depth
	BitsPerLevel uint // radix bits per level

	L1Sets, L1Ways int // private per-space TLB geometry
	L2Sets, L2Ways int // shared TLB geometry

	L2TLBLat int64 // issue-stall cycles on an L1 miss that hits the L2 TLB
	WalkLat  int64 // cycles per page-table level on a full walk

	PhysPages uint64 // physical pool size in pages (power of two)
	PhysBase  uint64 // physical base address of the pool

	Policy Policy
	Demand bool // allocate pages on first touch (demand-zero faults)
}

// DefaultConfig is the x86-64-shaped default: 4 KiB pages, a 4-level
// 9-bit-radix table, a 32-entry L1 TLB over a 512-entry shared L2 TLB,
// and a 1 GiB physical pool.
func DefaultConfig() Config {
	return Config{
		PageBits: 12, Levels: 4, BitsPerLevel: 9,
		L1Sets: 8, L1Ways: 4, L2Sets: 64, L2Ways: 8,
		L2TLBLat: 4, WalkLat: 20,
		PhysPages: 1 << 18, PhysBase: 0,
		Demand: true,
	}
}

// TLBStats counts the shared L2 TLB's activity.
type TLBStats struct {
	L2Hits      uint64
	L2Misses    uint64
	L2Evictions uint64
}

// WalkStats counts page-table walks across all spaces. Latency is the
// walk-start to TLB-fill distribution.
type WalkStats struct {
	Walks      uint64 // full walks started (L2 TLB misses)
	Coalesced  uint64 // lookups that joined an in-flight walk
	Shootdowns uint64 // TLB invalidations from unmapping
	Latency    *stats.Histogram
}

// SpaceStats is one space's private view: L1 TLB activity and paging.
type SpaceStats struct {
	L1Hits      uint64
	L1Misses    uint64
	L1Evictions uint64
	Faults      uint64 // demand-zero page allocations
	PagesMapped uint64 // pages ever mapped (eager + demand)
}

// VM owns the machinery shared by every address space: the L2 TLB, the
// physical-page allocator and the channel geometry the coloring policy
// colors by.
type VM struct {
	cfg    Config
	l2     *TLB
	buddy  *Buddy
	spaces []*Space
	nchan  int
	chanOf func(addr uint64) int
	st     TLBStats
	wst    WalkStats
	tr     *stats.Tracer
}

// New builds a VM with n spaces. cm supplies the DRAM channel decode
// for PolicyColor; nil degrades coloring to first-fit.
func New(cfg Config, n int, cm ChannelMapper) *VM {
	if cfg.PageBits == 0 {
		panic("vm: zero page size")
	}
	if uint(cfg.Levels)*cfg.BitsPerLevel+cfg.PageBits > 63 {
		panic("vm: virtual address wider than 63 bits")
	}
	v := &VM{
		cfg:   cfg,
		l2:    NewTLB(cfg.L2Sets, cfg.L2Ways),
		buddy: NewBuddy(cfg.PhysPages),
		nchan: 1,
	}
	v.wst.Latency = stats.NewHistogram()
	if cm != nil && cm.ChannelCount() > 1 {
		v.nchan = cm.ChannelCount()
		v.chanOf = cm.ChannelOf
	}
	for i := 0; i < n; i++ {
		v.spaces = append(v.spaces, &Space{
			vm:        v,
			tenant:    i,
			pt:        NewPageTable(cfg.Levels, cfg.BitsPerLevel),
			l1:        NewTLB(cfg.L1Sets, cfg.L1Ways),
			walks:     map[uint64]*walk{},
			inflight:  map[uint64]*xact{},
			nextColor: i % v.nchan,
		})
	}
	return v
}

// N is the space count.
func (v *VM) N() int { return len(v.spaces) }

// Space returns space i (tenant i's address space).
func (v *VM) Space(i int) *Space { return v.spaces[i] }

// Config returns the VM's configuration.
func (v *VM) Config() Config { return v.cfg }

// TLBStats exposes the shared L2 TLB counters.
func (v *VM) TLBStats() *TLBStats { return &v.st }

// WalkStats exposes the walk counters and latency histogram.
func (v *VM) WalkStats() *WalkStats { return &v.wst }

// FreePages reports the allocator's remaining capacity.
func (v *VM) FreePages() uint64 { return v.buddy.FreePages() }

// SetTracer attaches a cycle-stamped event tracer (nil disables).
func (v *VM) SetTracer(tr *stats.Tracer) { v.tr = tr }

// RegisterShared registers the cross-space stats ("vm.tlb.l2_*",
// "vm.walk.*"); per-space L1/fault stats register via Space.Register.
func (v *VM) RegisterShared(reg *stats.Registry) {
	reg.AddStruct("vm.tlb", &v.st)
	reg.AddStruct("vm.walk", &v.wst)
}

// pageChannel is the DRAM channel a physical page decodes to. With
// channel bits above the page offset (the bank mapping) a page lives
// wholly on one channel and coloring is meaningful; under line
// interleaving every page touches every channel and the policy
// degrades gracefully (channel of the page's first line).
func (v *VM) pageChannel(idx uint64) int {
	if v.chanOf == nil {
		return 0
	}
	return v.chanOf(v.cfg.PhysBase + idx<<v.cfg.PageBits)
}

// walk is one in-flight (or completed but not yet observed) page-table
// walk. Completion is processed lazily at the first lookup at or after
// done — both engines observe the fill at the same instruction, so TLB
// state stays bit-identical between them.
type walk struct {
	start, done int64
	ppn         uint64
}

// xact is one instruction's translation transaction: the cycle every
// page it touches resolves by. Re-polls while stalled are pure time
// checks against it, so the per-cycle oracle's every-cycle retries and
// the wheel's sparse retries leave identical TLB state.
type xact struct {
	ready int64
	pages []uint64
}

// Space is one requestor's virtual address space.
type Space struct {
	vm     *VM
	tenant int
	pt     *PageTable
	l1     *TLB
	st     SpaceStats

	walks    map[uint64]*walk
	inflight map[uint64]*xact

	nextColor int    // PolicyColor: channel for the next page
	lastPage  uint64 // PolicyColocate: last allocated pool page
	haveLast  bool

	// One-entry translate cache: the data path translates every line
	// of a vector access, and consecutive lines share a page.
	xlVPN, xlPPN uint64
	haveXl       bool

	pages []uint64
}

// Tenant is the space's requestor index.
func (sp *Space) Tenant() int { return sp.tenant }

// VM returns the owning VM.
func (sp *Space) VM() *VM { return sp.vm }

// Stats exposes the space's private counters.
func (sp *Space) Stats() *SpaceStats { return &sp.st }

// Register registers the space's counters under prefix (e.g. "vm.tlb"
// for a single requestor, "tenant.2.vm.tlb" for tenant 2).
func (sp *Space) Register(reg *stats.Registry, prefix string) {
	reg.AddStruct(prefix, &sp.st)
}

// l2tag folds the tenant into the shared-TLB tag: two tenants' copies
// of one virtual page are distinct translations.
func (sp *Space) l2tag(vpn uint64) uint64 {
	return vpn | uint64(sp.tenant)<<52
}

// Ready reports the cycle instruction in (sequence number seq) has
// every page translated — the issue stage stalls the instruction until
// then. The first call per seq runs the transaction: it probes the
// TLBs for each page the access touches, starts (or joins) walks for
// the misses, and under demand paging allocates unmapped pages.
// Subsequent calls while stalled are pure time checks; the first call
// at or after the ready cycle retires the transaction and processes
// the walk fills. Idempotence per seq is what keeps the per-cycle and
// event-wheel engines bit-identical.
func (sp *Space) Ready(in *isa.Inst, seq uint64, now int64) int64 {
	if x, ok := sp.inflight[seq]; ok {
		if now < x.ready {
			return x.ready
		}
		for _, vpn := range x.pages {
			if w, live := sp.walks[vpn]; live && w.done <= now {
				sp.finishWalk(vpn, w)
			}
		}
		delete(sp.inflight, seq)
		return x.ready
	}
	sp.pages = pagesOf(in, sp.pages[:0], sp.vm.cfg.PageBits)
	ready := now
	for _, vpn := range sp.pages {
		if t := sp.lookupPage(vpn, now); t > ready {
			ready = t
		}
	}
	if ready > now {
		sp.inflight[seq] = &xact{ready: ready, pages: append([]uint64(nil), sp.pages...)}
		if sp.vm.tr != nil {
			// Open a walk flow chain for this stalled instruction; the
			// core closes it when the instruction finally issues. The high
			// bit keeps seq-keyed flow IDs out of the MSHR entry-ID space.
			sp.vm.tr.Emit(stats.Event{Cycle: now, Cat: "xlat", Name: "walk", Ph: 's',
				ID: seq | 1<<63, Tenant: sp.tenant})
		}
	}
	return ready
}

// StallUntil is a poll-free peek at an in-flight translation: it
// reports the ready cycle of instruction seq's pending transaction, or
// ok=false when seq has none. It never probes the TLBs or retires the
// transaction, so observers (the CPI classifier) can call it freely.
func (sp *Space) StallUntil(seq uint64) (int64, bool) {
	x, ok := sp.inflight[seq]
	if !ok {
		return 0, false
	}
	return x.ready, true
}

// InFlight reports whether instruction seq currently has a pending
// translation transaction. Like StallUntil it is a pure peek.
func (sp *Space) InFlight(seq uint64) bool {
	_, ok := sp.inflight[seq]
	return ok
}

// lookupPage resolves one virtual page through the hierarchy and
// returns the cycle its translation is available.
func (sp *Space) lookupPage(vpn uint64, now int64) int64 {
	v := sp.vm
	if w, ok := sp.walks[vpn]; ok {
		if w.done <= now {
			sp.finishWalk(vpn, w)
			return now
		}
		v.wst.Coalesced++
		return w.done
	}
	if _, ok := sp.l1.Lookup(vpn); ok {
		sp.st.L1Hits++
		return now
	}
	sp.st.L1Misses++
	if v.tr != nil {
		v.tr.Emit(stats.Event{Cycle: now, Cat: "vm", Name: "miss",
			Addr: vpn << v.cfg.PageBits, Tenant: sp.tenant})
	}
	if ppn, ok := v.l2.Lookup(sp.l2tag(vpn)); ok {
		v.st.L2Hits++
		if sp.l1.Insert(vpn, ppn) {
			sp.st.L1Evictions++
		}
		return now + v.cfg.L2TLBLat
	}
	v.st.L2Misses++
	ppn := sp.resolve(vpn, now)
	w := &walk{start: now, done: now + int64(v.cfg.Levels)*v.cfg.WalkLat, ppn: ppn}
	sp.walks[vpn] = w
	v.wst.Walks++
	if v.tr != nil {
		v.tr.Emit(stats.Event{Cycle: now, Dur: w.done - w.start, Cat: "vm", Name: "walk",
			Addr: vpn << v.cfg.PageBits, Tenant: sp.tenant})
	}
	return w.done
}

// finishWalk fills both TLB levels with a completed walk's translation
// and records its latency.
func (sp *Space) finishWalk(vpn uint64, w *walk) {
	v := sp.vm
	if v.l2.Insert(sp.l2tag(vpn), w.ppn) {
		v.st.L2Evictions++
	}
	if sp.l1.Insert(vpn, w.ppn) {
		sp.st.L1Evictions++
	}
	v.wst.Latency.Observe(w.done - w.start)
	if v.tr != nil {
		v.tr.Emit(stats.Event{Cycle: w.done, Cat: "vm", Name: "fill",
			Addr: vpn << v.cfg.PageBits, Tenant: sp.tenant})
	}
	delete(sp.walks, vpn)
}

// resolve looks vpn up in the page table, demand-allocating on a miss.
func (sp *Space) resolve(vpn uint64, now int64) uint64 {
	if ppn, ok := sp.pt.Lookup(vpn); ok {
		return ppn
	}
	if !sp.vm.cfg.Demand {
		panic(fmt.Sprintf("vm: tenant %d touched unmapped virtual page %#x (demand paging off)",
			sp.tenant, vpn<<sp.vm.cfg.PageBits))
	}
	ppn := sp.allocPage()
	sp.pt.Map(vpn, ppn)
	sp.st.Faults++
	sp.st.PagesMapped++
	if sp.vm.tr != nil {
		sp.vm.tr.Emit(stats.Event{Cycle: now, Cat: "vm", Name: "fault",
			Addr: vpn << sp.vm.cfg.PageBits, Tenant: sp.tenant})
	}
	return ppn
}

// allocPage picks a physical page under the placement policy.
func (sp *Space) allocPage() uint64 {
	v := sp.vm
	var idx uint64
	ok := false
	switch v.cfg.Policy {
	case PolicyColor:
		if v.nchan > 1 {
			want := sp.nextColor
			if p, found := v.buddy.FindPage(func(i uint64) bool { return v.pageChannel(i) == want }); found {
				v.buddy.AllocPageAt(p)
				idx, ok = p, true
			}
			sp.nextColor = (want + 1) % v.nchan
		}
	case PolicyColocate:
		// March forward from the tenant's home region: first choice is
		// the page right after the last one (contiguous, same row), then
		// the nearest free page above it. Without the forward search,
		// interleaved demand faults from other tenants would steal
		// lastPage+1 constantly and co-location would collapse into
		// global first-fit.
		next := uint64(sp.tenant) * (v.cfg.PhysPages / uint64(len(v.spaces)))
		if sp.haveLast {
			next = sp.lastPage + 1
		}
		if v.buddy.AllocPageAt(next) {
			idx, ok = next, true
		} else if p, found := v.buddy.FindPage(func(i uint64) bool { return i > next }); found {
			v.buddy.AllocPageAt(p)
			idx, ok = p, true
		}
	}
	if !ok {
		if idx, ok = v.buddy.AllocPage(); !ok {
			panic("vm: physical page pool exhausted")
		}
	}
	sp.lastPage, sp.haveLast = idx, true
	return idx
}

// Alloc eagerly maps [va, va+bytes) under the placement policy (pages
// already mapped are left alone). Demand paging makes this optional;
// tests and non-demand configurations use it.
func (sp *Space) Alloc(va, bytes uint64) {
	if bytes == 0 {
		return
	}
	pb := sp.vm.cfg.PageBits
	for vpn := va >> pb; vpn <= (va+bytes-1)>>pb; vpn++ {
		if _, ok := sp.pt.Lookup(vpn); ok {
			continue
		}
		sp.pt.Map(vpn, sp.allocPage())
		sp.st.PagesMapped++
	}
}

// Free unmaps [va, va+bytes), returns the physical pages to the
// allocator and shoots the translations out of both TLB levels.
func (sp *Space) Free(va, bytes uint64) {
	if bytes == 0 {
		return
	}
	v := sp.vm
	pb := v.cfg.PageBits
	for vpn := va >> pb; vpn <= (va+bytes-1)>>pb; vpn++ {
		ppn, ok := sp.pt.Unmap(vpn)
		if !ok {
			continue
		}
		v.buddy.FreePage(ppn)
		sp.l1.Invalidate(vpn)
		v.l2.Invalidate(sp.l2tag(vpn))
		delete(sp.walks, vpn)
		v.wst.Shootdowns++
		if v.tr != nil {
			v.tr.Emit(stats.Event{Cat: "vm", Name: "shootdown",
				Addr: vpn << pb, Tenant: sp.tenant})
		}
	}
	sp.haveXl = false
}

// Translate maps a virtual address to its physical address. The issue
// stage has already charged the TLB/walk timing via Ready, so the data
// path translates for free; touching an unmapped address here is a
// model bug and panics.
func (sp *Space) Translate(va uint64) uint64 {
	pb := sp.vm.cfg.PageBits
	vpn := va >> pb
	if sp.haveXl && vpn == sp.xlVPN {
		return sp.vm.cfg.PhysBase + sp.xlPPN<<pb + va&(1<<pb-1)
	}
	ppn, ok := sp.pt.Lookup(vpn)
	if !ok {
		panic(fmt.Sprintf("vm: data path touched untranslated address %#x (tenant %d)", va, sp.tenant))
	}
	sp.xlVPN, sp.xlPPN, sp.haveXl = vpn, ppn, true
	return sp.vm.cfg.PhysBase + ppn<<pb + va&(1<<pb-1)
}

// PageChannels reports how many of the space's mapped pages sit on
// each DRAM channel — the placement fingerprint the vasweep checks.
func (sp *Space) PageChannels() []int {
	v := sp.vm
	counts := make([]int, v.nchan)
	var walkNode func(n *ptNode, level int)
	walkNode = func(n *ptNode, level int) {
		if n == nil {
			return
		}
		if n.pte != nil {
			for _, e := range n.pte {
				if e != 0 {
					counts[v.pageChannel(e-1)]++
				}
			}
			return
		}
		for _, k := range n.kids {
			walkNode(k, level+1)
		}
	}
	walkNode(sp.pt.root, 0)
	return counts
}

// pagesOf collects the distinct virtual pages instruction in touches.
func pagesOf(in *isa.Inst, dst []uint64, pageBits uint) []uint64 {
	dst = dst[:0]
	add := func(addr uint64, size int) {
		if size < 1 {
			size = 1
		}
		for vpn := addr >> pageBits; vpn <= (addr+uint64(size)-1)>>pageBits; vpn++ {
			seen := false
			for _, p := range dst {
				if p == vpn {
					seen = true
					break
				}
			}
			if !seen {
				dst = append(dst, vpn)
			}
		}
	}
	switch in.Kind {
	case isa.KindScalarMem:
		add(in.Addr, int(in.Imm))
	case isa.KindUSIMDMem:
		add(in.Addr, 8)
	case isa.KindMOMMem:
		for e := 0; e < in.VL; e++ {
			add(in.Addr+uint64(int64(e)*in.Stride), isa.MOMElemBytes)
		}
	case isa.Kind3DLoad:
		for e := 0; e < in.VL; e++ {
			add(in.Addr+uint64(int64(e)*in.Stride), in.Width*8)
		}
	}
	return dst
}
