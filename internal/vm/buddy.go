package vm

import (
	"fmt"
	"sort"
)

// Buddy is a binary buddy allocator over a power-of-two pool of
// physical pages. Free blocks of 2^order pages live on per-order
// sorted free lists, so allocation is deterministic (lowest address
// wins), splitting walks down the orders, and freeing merges buddy
// pairs back up. The placement policies need more than "give me any
// page": AllocPageAt claims one specific free page (splitting whatever
// block contains it), and FindPage scans the free lists for the lowest
// free page satisfying a predicate — how page coloring asks for "the
// lowest free page on channel c".
type Buddy struct {
	npages   uint64
	maxOrder int
	free     [][]uint64 // free[o] holds sorted start indexes of free 2^o-page blocks
}

// NewBuddy builds an allocator over npages pages (a power of two).
func NewBuddy(npages uint64) *Buddy {
	if npages == 0 || npages&(npages-1) != 0 {
		panic(fmt.Sprintf("vm: buddy pool size %d is not a power of two", npages))
	}
	order := 0
	for uint64(1)<<order < npages {
		order++
	}
	b := &Buddy{npages: npages, maxOrder: order, free: make([][]uint64, order+1)}
	b.free[order] = []uint64{0}
	return b
}

// insert adds a free block, keeping the order's list sorted.
func (b *Buddy) insert(order int, idx uint64) {
	l := b.free[order]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= idx })
	if i < len(l) && l[i] == idx {
		panic(fmt.Sprintf("vm: double free of block %d at order %d", idx, order))
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = idx
	b.free[order] = l
}

// remove deletes a free block if present.
func (b *Buddy) remove(order int, idx uint64) bool {
	l := b.free[order]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= idx })
	if i == len(l) || l[i] != idx {
		return false
	}
	b.free[order] = append(l[:i], l[i+1:]...)
	return true
}

// AllocOrder claims the lowest-address free block of 2^order pages,
// splitting a larger block if needed. The false return means the pool
// cannot satisfy the request.
func (b *Buddy) AllocOrder(order int) (uint64, bool) {
	// Lowest address wins across all orders that could serve the
	// request; ties prefer the smaller order to avoid splitting.
	best, bestOrder, found := uint64(0), 0, false
	for o := order; o <= b.maxOrder; o++ {
		if len(b.free[o]) == 0 {
			continue
		}
		if !found || b.free[o][0] < best {
			best, bestOrder, found = b.free[o][0], o, true
		}
	}
	if !found {
		return 0, false
	}
	b.remove(bestOrder, best)
	// Split down to the requested order; the upper halves return to
	// the free lists.
	for o := bestOrder; o > order; o-- {
		b.insert(o-1, best+uint64(1)<<(o-1))
	}
	return best, true
}

// AllocPage claims the lowest free page.
func (b *Buddy) AllocPage() (uint64, bool) { return b.AllocOrder(0) }

// AllocPageAt claims one specific page if it is free, splitting the
// block that contains it. It reports whether the claim succeeded.
func (b *Buddy) AllocPageAt(idx uint64) bool {
	if idx >= b.npages {
		return false
	}
	for o := 0; o <= b.maxOrder; o++ {
		start := idx &^ (uint64(1)<<o - 1)
		if !b.remove(o, start) {
			continue
		}
		// Split toward idx: at each level the half not containing the
		// page goes back on the free list.
		for cur := o; cur > 0; cur-- {
			half := uint64(1) << (cur - 1)
			if idx < start+half {
				b.insert(cur-1, start+half)
			} else {
				b.insert(cur-1, start)
				start += half
			}
		}
		return true
	}
	return false
}

// FindPage returns the lowest free page whose index satisfies pred.
func (b *Buddy) FindPage(pred func(idx uint64) bool) (uint64, bool) {
	best, found := uint64(0), false
	for o := 0; o <= b.maxOrder; o++ {
		for _, start := range b.free[o] {
			if found && start >= best {
				break // the list is sorted; nothing lower remains
			}
			size := uint64(1) << o
			for p := start; p < start+size; p++ {
				if found && p >= best {
					break
				}
				if pred(p) {
					best, found = p, true
					break
				}
			}
		}
	}
	return best, found
}

// Free returns a 2^order-page block and merges buddy pairs upward.
func (b *Buddy) Free(idx uint64, order int) {
	if idx >= b.npages || idx&(uint64(1)<<order-1) != 0 {
		panic(fmt.Sprintf("vm: freeing misaligned or out-of-pool block %d order %d", idx, order))
	}
	for order < b.maxOrder {
		buddy := idx ^ uint64(1)<<order
		if !b.remove(order, buddy) {
			break
		}
		if buddy < idx {
			idx = buddy
		}
		order++
	}
	b.insert(order, idx)
}

// FreePage returns one page.
func (b *Buddy) FreePage(idx uint64) { b.Free(idx, 0) }

// FreePages counts the pages currently free.
func (b *Buddy) FreePages() uint64 {
	var n uint64
	for o, l := range b.free {
		n += uint64(len(l)) << o
	}
	return n
}

// CheckInvariants verifies the free lists are sorted and aligned, no
// free blocks overlap, nothing escapes the pool, and no mergeable
// buddy pair was left unmerged. Tests call it after every operation.
func (b *Buddy) CheckInvariants() error {
	type span struct{ start, end uint64 }
	var spans []span
	for o, l := range b.free {
		size := uint64(1) << o
		for i, idx := range l {
			if i > 0 && l[i-1] >= idx {
				return fmt.Errorf("order %d free list unsorted at %d", o, i)
			}
			if idx%size != 0 {
				return fmt.Errorf("order %d block %d misaligned", o, idx)
			}
			if idx+size > b.npages {
				return fmt.Errorf("order %d block %d escapes the pool", o, idx)
			}
			if o < b.maxOrder {
				buddy := idx ^ size
				j := sort.Search(len(l), func(j int) bool { return l[j] >= buddy })
				if j < len(l) && l[j] == buddy {
					return fmt.Errorf("order %d blocks %d and %d should have merged", o, idx, buddy)
				}
			}
			spans = append(spans, span{idx, idx + size})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i := 1; i < len(spans); i++ {
		if spans[i].start < spans[i-1].end {
			return fmt.Errorf("free blocks overlap at page %d", spans[i].start)
		}
	}
	return nil
}
