package engine

import (
	"math/rand"
	"sort"
	"testing"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"step", Step, false},
		{"wheel", Wheel, false},
		{"", Step, false},
		{"turbo", Step, true},
		{"Wheel", Step, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMode(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if Step.String() != "step" || Wheel.String() != "wheel" {
		t.Errorf("Mode.String: step=%q wheel=%q", Step.String(), Wheel.String())
	}
}

// TestQueueOrdering pops a shuffled schedule back in cycle order.
func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	rng := rand.New(rand.NewSource(7))
	var cycles []int64
	for i := 0; i < 500; i++ {
		c := int64(rng.Intn(1000))
		cycles = append(cycles, c)
		q.Schedule(c, EvWake)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	if got, ok := q.NextCycle(); !ok || got != cycles[0] {
		t.Fatalf("NextCycle = %d,%v, want %d", got, ok, cycles[0])
	}
	var last Event
	for i, want := range cycles {
		e, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue empty early", i)
		}
		if e.Cycle != want {
			t.Fatalf("Pop %d: cycle %d, want %d", i, e.Cycle, want)
		}
		if i > 0 && e.Cycle == last.Cycle && e.ID() < last.ID() {
			t.Fatalf("Pop %d: same-cycle events out of schedule order (%d after %d)",
				i, e.ID(), last.ID())
		}
		last = e
	}
	if !q.Empty() {
		t.Fatalf("queue not empty after draining: %d left", q.Len())
	}
}

// TestQueueSameCycleFIFO: events at one cycle pop exactly in the order
// they were scheduled — the determinism the lockstep front end needs.
func TestQueueSameCycleFIFO(t *testing.T) {
	q := NewQueue()
	kinds := []Kind{EvCommit, EvFill, EvFetch, EvUnitFree, EvBarrier}
	var ids []uint64
	for _, k := range kinds {
		ids = append(ids, q.Schedule(42, k))
	}
	// interleave an earlier and a later event
	q.Schedule(41, EvWake)
	q.Schedule(43, EvWake)
	if e, _ := q.Pop(); e.Cycle != 41 {
		t.Fatalf("first pop at cycle %d, want 41", e.Cycle)
	}
	for i, k := range kinds {
		e, ok := q.Pop()
		if !ok || e.Cycle != 42 || e.Kind != k || e.ID() != ids[i] {
			t.Fatalf("pop %d = {cycle %d kind %v id %d}, want {42 %v %d}",
				i, e.Cycle, e.Kind, e.ID(), k, ids[i])
		}
	}
	if e, _ := q.Pop(); e.Cycle != 43 {
		t.Fatalf("last pop at cycle %d, want 43", e.Cycle)
	}
}

func TestQueueCancelReschedule(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(10, EvCommit)
	b := q.Schedule(20, EvFill)
	c := q.Schedule(30, EvFetch)

	if !q.Cancel(b) {
		t.Fatal("Cancel(b) = false on a scheduled event")
	}
	if q.Cancel(b) {
		t.Fatal("Cancel(b) = true on an already-cancelled event")
	}
	// pull c ahead of a, push a behind
	if !q.Reschedule(c, 5) || !q.Reschedule(a, 40) {
		t.Fatal("Reschedule returned false on scheduled events")
	}
	if q.Reschedule(b, 1) {
		t.Fatal("Reschedule revived a cancelled event")
	}
	e1, _ := q.Pop()
	e2, _ := q.Pop()
	if e1.ID() != c || e1.Cycle != 5 || e2.ID() != a || e2.Cycle != 40 {
		t.Fatalf("pops after cancel/reschedule: {%d@%d} {%d@%d}, want {%d@5} {%d@40}",
			e1.ID(), e1.Cycle, e2.ID(), e2.Cycle, c, a)
	}
	if !q.Empty() {
		t.Fatal("cancelled event still queued")
	}
}

func TestQueueResetAndPopUpTo(t *testing.T) {
	q := NewQueue()
	q.Schedule(10, EvWake)
	id := q.Schedule(20, EvWake)
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset left events queued")
	}
	if q.Cancel(id) {
		t.Fatal("Cancel found an event across Reset")
	}
	q.Schedule(15, EvWake)
	if _, ok := q.PopUpTo(14); ok {
		t.Fatal("PopUpTo(14) returned an event due at 15")
	}
	if e, ok := q.PopUpTo(15); !ok || e.Cycle != 15 {
		t.Fatal("PopUpTo(15) missed the due event")
	}
}

// TestQueueRandomized cross-checks the indexed heap against a naive
// reference model under a random op mix.
func TestQueueRandomized(t *testing.T) {
	q := NewQueue()
	rng := rand.New(rand.NewSource(99))
	model := map[uint64]int64{} // live id -> cycle
	var live []uint64           // live ids in schedule order
	for op := 0; op < 5000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // schedule
			c := int64(rng.Intn(200))
			id := q.Schedule(c, EvWake)
			model[id] = c
			live = append(live, id)
		case 2: // reschedule the oldest live id
			if len(live) == 0 {
				continue
			}
			id := live[0]
			c := int64(rng.Intn(200))
			if !q.Reschedule(id, c) {
				t.Fatalf("op %d: Reschedule lost live id %d", op, id)
			}
			model[id] = c
		case 3: // pop and check it is the (cycle, schedule-order) minimum
			e, ok := q.Pop()
			if !ok {
				if len(model) != 0 {
					t.Fatalf("op %d: queue empty, model has %d", op, len(model))
				}
				continue
			}
			gotCycle, okID := model[e.ID()]
			if !okID {
				t.Fatalf("op %d: popped unknown id %d", op, e.ID())
			}
			if e.Cycle != gotCycle {
				t.Fatalf("op %d: popped id %d at cycle %d, model says %d",
					op, e.ID(), e.Cycle, gotCycle)
			}
			for _, id := range live {
				c, liveStill := model[id]
				if !liveStill {
					continue
				}
				if c < gotCycle || (c == gotCycle && id < e.ID()) {
					t.Fatalf("op %d: popped {id %d cycle %d}, but {id %d cycle %d} is smaller",
						op, e.ID(), gotCycle, id, c)
				}
				if c == gotCycle {
					break // first live id at the min cycle must be the popped one
				}
			}
			delete(model, e.ID())
			for i, id := range live {
				if id == e.ID() {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
}
