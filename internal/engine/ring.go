package engine

import "math/bits"

// Ring is a timing-wheel event queue specialized for the hot path of
// the wheel engine: dense wake-ups a bounded distance in the future.
// A circular bucket array covers the next span cycles with O(1)
// scheduling and popping; a per-word occupancy bitmap makes "first
// non-empty cycle" a handful of word scans instead of a heap walk.
// The rare event beyond the horizon goes to a small overflow min-heap.
//
// Same-cycle events pop in LIFO order. The wheel's consumers are
// order-insensitive within a cycle (waking an entry is idempotent and
// the issue scan re-sorts by age), which is what buys the cheaper
// bucket representation over the heap's FIFO tie-break.
type Ring struct {
	slots  [][]uint64
	bitmap []uint64
	mask   int64
	base   int64 // slots hold cycles in [base, base+span)
	nextLB int64 // no slot event lies in [base, nextLB): scans start here
	count  int   // events resident in slots
	far    []ringFar
}

type ringFar struct {
	cycle int64
	data  uint64
}

// NewRing returns a ring whose bucket array spans at least the given
// number of cycles (rounded up to a power of two, minimum 64).
func NewRing(span int) *Ring {
	n := 64
	for n < span {
		n <<= 1
	}
	return &Ring{
		slots:  make([][]uint64, n),
		bitmap: make([]uint64, n/64),
		mask:   int64(n) - 1,
	}
}

// Len reports the number of scheduled events.
func (r *Ring) Len() int { return r.count + len(r.far) }

// Schedule registers data to pop once now reaches cycle. A cycle
// already in the past is clamped to the present.
func (r *Ring) Schedule(cycle int64, data uint64) {
	if cycle < r.base {
		cycle = r.base
	}
	if cycle > r.base+r.mask {
		r.farPush(ringFar{cycle, data})
		return
	}
	idx := cycle & r.mask
	r.slots[idx] = append(r.slots[idx], data)
	r.bitmap[idx>>6] |= 1 << (uint(idx) & 63)
	r.count++
	if cycle < r.nextLB {
		r.nextLB = cycle
	}
}

// NextCycle reports the earliest cycle holding an event.
func (r *Ring) NextCycle() (int64, bool) {
	best, ok := r.nextSlotCycle()
	if len(r.far) > 0 && (!ok || r.far[0].cycle < best) {
		return r.far[0].cycle, true
	}
	return best, ok
}

// PopUpTo removes and returns one event scheduled at or before now.
// Draining all due events takes repeated calls, as with Queue.
func (r *Ring) PopUpTo(now int64) (uint64, bool) {
	if len(r.far) > 0 && r.far[0].cycle <= now {
		return r.farPop(), true
	}
	if r.count > 0 {
		if c, ok := r.nextSlotCycle(); ok && c <= now {
			idx := c & r.mask
			s := r.slots[idx]
			d := s[len(s)-1]
			r.slots[idx] = s[:len(s)-1]
			if len(s) == 1 {
				r.bitmap[idx>>6] &^= 1 << (uint(idx) & 63)
			}
			r.count--
			r.base = c // later events keep their slots: all lie in [c, c+span)
			return d, true
		}
	}
	// Nothing due: slide the window forward so the full span is
	// available ahead of the present. Safe because every resident
	// event lies strictly after now.
	if r.base <= now {
		r.base = now + 1
	}
	return 0, false
}

// nextSlotCycle finds the earliest non-empty bucket at or after base
// by scanning the occupancy bitmap circularly from base's bit.
func (r *Ring) nextSlotCycle() (int64, bool) {
	if r.count == 0 {
		return 0, false
	}
	words := len(r.bitmap)
	from := r.base
	if r.nextLB > from {
		// The window below nextLB is known empty; a full-circle scan
		// from there is still safe because those slots hold nothing.
		from = r.nextLB
	}
	start := from & r.mask
	w0 := int(start >> 6)
	// First word: ignore bits below the start position.
	if b := r.bitmap[w0] &^ (1<<(uint(start)&63) - 1); b != 0 {
		c := r.slotToCycle(int64(w0<<6 + bits.TrailingZeros64(b)))
		r.nextLB = c
		return c, true
	}
	for i := 1; i <= words; i++ {
		w := w0 + i
		if w >= words {
			w -= words
		}
		b := r.bitmap[w]
		if w == w0 { // wrapped: only bits below the start position remain
			b &= 1<<(uint(start)&63) - 1
		}
		if b != 0 {
			c := r.slotToCycle(int64(w<<6 + bits.TrailingZeros64(b)))
			r.nextLB = c
			return c, true
		}
	}
	return 0, false
}

// slotToCycle maps a bucket index back to the unique cycle in
// [base, base+span) that hashes to it.
func (r *Ring) slotToCycle(idx int64) int64 {
	return r.base + ((idx - r.base) & r.mask)
}

func (r *Ring) farPush(e ringFar) {
	r.far = append(r.far, e)
	i := len(r.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if r.far[p].cycle <= r.far[i].cycle {
			break
		}
		r.far[p], r.far[i] = r.far[i], r.far[p]
		i = p
	}
}

func (r *Ring) farPop() uint64 {
	d := r.far[0].data
	n := len(r.far) - 1
	r.far[0] = r.far[n]
	r.far = r.far[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && r.far[c+1].cycle < r.far[c].cycle {
			c++
		}
		if r.far[i].cycle <= r.far[c].cycle {
			break
		}
		r.far[i], r.far[c] = r.far[c], r.far[i]
		i = c
	}
	return d
}
