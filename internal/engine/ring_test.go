package engine

import (
	"math/rand"
	"sort"
	"testing"
)

// drain pops every event due at or before now, returning the payloads.
func drain(r *Ring, now int64) []uint64 {
	var out []uint64
	for {
		d, ok := r.PopUpTo(now)
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

func TestRingBasic(t *testing.T) {
	r := NewRing(256)
	if _, ok := r.NextCycle(); ok {
		t.Fatal("empty ring reports a next cycle")
	}
	r.Schedule(10, 1)
	r.Schedule(5, 2)
	r.Schedule(10, 3)
	if c, ok := r.NextCycle(); !ok || c != 5 {
		t.Fatalf("NextCycle = %d,%v, want 5", c, ok)
	}
	if got := drain(r, 4); len(got) != 0 {
		t.Fatalf("popped %v before due", got)
	}
	if got := drain(r, 5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("at 5 popped %v, want [2]", got)
	}
	if c, ok := r.NextCycle(); !ok || c != 10 {
		t.Fatalf("NextCycle after pop = %d,%v, want 10", c, ok)
	}
	got := drain(r, 10)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("at 10 popped %v, want [1 3]", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestRingPastClamped(t *testing.T) {
	r := NewRing(64)
	// Advance the window, then schedule behind it: the event must
	// still pop, at the present.
	r.Schedule(100, 1)
	if got := drain(r, 99); len(got) != 0 {
		t.Fatalf("popped %v early", got)
	}
	r.Schedule(3, 2) // far in the past: clamps to the window base
	if c, ok := r.NextCycle(); !ok || c > 100 {
		t.Fatalf("NextCycle = %d,%v, want <= 100", c, ok)
	}
	got := drain(r, 100)
	if len(got) != 2 {
		t.Fatalf("popped %v, want both events", got)
	}
}

func TestRingFarOverflow(t *testing.T) {
	r := NewRing(64) // span rounds to 64: cycle 1000 overflows to the far heap
	r.Schedule(1000, 1)
	r.Schedule(2, 2)
	r.Schedule(5000, 3)
	if c, ok := r.NextCycle(); !ok || c != 2 {
		t.Fatalf("NextCycle = %d,%v, want 2", c, ok)
	}
	if got := drain(r, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("at 2 popped %v, want [2]", got)
	}
	if c, ok := r.NextCycle(); !ok || c != 1000 {
		t.Fatalf("NextCycle = %d,%v, want 1000", c, ok)
	}
	if got := drain(r, 4999); len(got) != 1 || got[0] != 1 {
		t.Fatalf("at 4999 popped %v, want [1]", got)
	}
	if got := drain(r, 5000); len(got) != 1 || got[0] != 3 {
		t.Fatalf("at 5000 popped %v, want [3]", got)
	}
}

// TestRingDifferential drives random schedule/advance traffic through
// the ring and a flat reference, checking NextCycle exactness and that
// each advance drains exactly the due multiset (the ring guarantees no
// order within a drain; the wheel's consumers don't need one).
func TestRingDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := NewRing(128)
		type ev struct {
			cycle int64
			data  uint64
		}
		var ref []ev
		now := int64(0)
		var data uint64
		for op := 0; op < 400; op++ {
			if rng.Intn(3) > 0 {
				// Mostly near-future, sometimes far beyond the span.
				d := int64(rng.Intn(120)) + 1
				if rng.Intn(10) == 0 {
					d += int64(rng.Intn(4000))
				}
				data++
				r.Schedule(now+d, data)
				ref = append(ref, ev{now + d, data})
			} else {
				now += int64(rng.Intn(200)) + 1
				want := map[uint64]bool{}
				live := ref[:0]
				for _, e := range ref {
					if e.cycle <= now {
						want[e.data] = true
					} else {
						live = append(live, e)
					}
				}
				ref = live
				got := drain(r, now)
				if len(got) != len(want) {
					t.Fatalf("trial %d now %d: drained %d events, want %d", trial, now, len(got), len(want))
				}
				for _, d := range got {
					if !want[d] {
						t.Fatalf("trial %d now %d: unexpected payload %d", trial, now, d)
					}
				}
				wantNext := int64(-1)
				for _, e := range ref {
					if wantNext < 0 || e.cycle < wantNext {
						wantNext = e.cycle
					}
				}
				c, ok := r.NextCycle()
				if (wantNext >= 0) != ok || (ok && c != wantNext) {
					t.Fatalf("trial %d now %d: NextCycle = %d,%v, want %d", trial, now, c, ok, wantNext)
				}
				if r.Len() != len(ref) {
					t.Fatalf("trial %d now %d: Len = %d, want %d", trial, now, r.Len(), len(ref))
				}
			}
		}
	}
}
