// Package engine provides the event-wheel simulation core: a
// monotonic event queue keyed on cycle, and the Mode switch the
// front ends use to select between the cycle-stepped oracle and the
// event-wheel engine built on this queue.
//
// The queue is a binary heap ordered by (cycle, schedule order), so
// events popped for the same cycle come back in the order they were
// scheduled — the determinism the lockstep tenant front end and the
// bit-identical golden table depend on. Events carry a Kind tag (the
// event vocabulary: retirements, fill bounds, unit frees, fetch
// restarts, barriers) so a consumer can dispatch on what woke it.
//
// The wheel's scheduling contract is conservative: a subsystem may
// schedule a wake-up EARLIER than its next state change (the consumer
// re-evaluates and reschedules), but never later. The cycle-stepped
// engine is the degenerate wheel whose every cycle is a wake-up.
package engine

import "fmt"

// Mode selects the simulation engine.
type Mode int

const (
	// Step is the cycle-stepped oracle: every simulator advances one
	// cycle at a time, polling all subsystems each cycle.
	Step Mode = iota
	// Wheel is the event-wheel engine: between wake-ups scheduled on
	// the event queue, cycles provably free of work are skipped in one
	// jump. Required to be bit-identical to Step.
	Wheel
)

// ParseMode resolves a -engine flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "step":
		return Step, nil
	case "wheel":
		return Wheel, nil
	}
	return Step, fmt.Errorf("unknown engine %q (step, wheel)", s)
}

func (m Mode) String() string {
	if m == Wheel {
		return "wheel"
	}
	return "step"
}

// Kind is the event vocabulary: what a scheduled wake-up is waiting on.
type Kind uint8

const (
	EvWake     Kind = iota // generic wake-up
	EvCommit               // scoreboard head retirement / branch resolution
	EvReady                // an unissued entry's operands become available
	EvFill                 // an MSHR fill bound (lazy-batch poll threshold)
	EvFetch                // front-end restart after a mispredict penalty
	EvUnitFree             // an occupied functional unit frees
	EvBarrier              // tenant lockstep barrier
	EvDeadline             // no-progress watchdog fence
)

func (k Kind) String() string {
	switch k {
	case EvCommit:
		return "commit"
	case EvReady:
		return "ready"
	case EvFill:
		return "fill"
	case EvFetch:
		return "fetch"
	case EvUnitFree:
		return "unitfree"
	case EvBarrier:
		return "barrier"
	case EvDeadline:
		return "deadline"
	}
	return "wake"
}

// Event is one scheduled wake-up.
type Event struct {
	Cycle int64
	Kind  Kind
	Data  uint64 // consumer payload, e.g. the seq the wake-up re-evaluates
	id    uint64
}

// ID identifies the event for Cancel/Reschedule.
func (e Event) ID() uint64 { return e.id }

// Queue is the monotonic event queue: a binary heap keyed on
// (cycle, schedule order). Not safe for concurrent use, matching the
// rest of the simulator.
type Queue struct {
	heap []Event
	pos  map[uint64]int // event id -> heap index, for Cancel/Reschedule
	next uint64         // id source; doubles as the same-cycle FIFO key
	// tracking is armed by the first Cancel/Reschedule. Until then no
	// id lookups can happen, so Schedule/Pop skip the map entirely —
	// the wheel's hot accumulate-and-drain pattern stays map-free.
	tracking bool
}

// NewQueue builds an empty queue.
func NewQueue() *Queue {
	return &Queue{}
}

// Len is the number of scheduled events.
func (q *Queue) Len() int { return len(q.heap) }

// Empty reports whether no events are scheduled.
func (q *Queue) Empty() bool { return len(q.heap) == 0 }

// Reset drops every scheduled event. Event ids stay unique across
// resets, so a stale id can never alias a new event.
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	clear(q.pos)
	q.tracking = false
}

// track arms id→index maintenance, indexing the current heap.
func (q *Queue) track() {
	if q.pos == nil {
		q.pos = map[uint64]int{}
	}
	for i, e := range q.heap {
		q.pos[e.id] = i
	}
	q.tracking = true
}

// Schedule adds a wake-up at the given cycle and returns its id.
// Events scheduled for the same cycle pop in schedule order.
func (q *Queue) Schedule(cycle int64, kind Kind) uint64 {
	return q.ScheduleData(cycle, kind, 0)
}

// ScheduleData is Schedule with a consumer payload attached to the
// event.
func (q *Queue) ScheduleData(cycle int64, kind Kind, data uint64) uint64 {
	q.next++
	e := Event{Cycle: cycle, Kind: kind, Data: data, id: q.next}
	q.heap = append(q.heap, e)
	if q.tracking {
		q.pos[e.id] = len(q.heap) - 1
	}
	q.up(len(q.heap) - 1)
	return e.id
}

// Cancel removes a scheduled event. It reports whether the id was
// still scheduled.
func (q *Queue) Cancel(id uint64) bool {
	if !q.tracking {
		q.track()
	}
	i, ok := q.pos[id]
	if !ok {
		return false
	}
	q.remove(i)
	return true
}

// Reschedule moves a scheduled event to a new cycle, keeping its
// identity (and its FIFO rank among events scheduled the same call —
// rescheduling does not push it behind later-scheduled events at the
// same cycle). It reports whether the id was still scheduled.
func (q *Queue) Reschedule(id uint64, cycle int64) bool {
	if !q.tracking {
		q.track()
	}
	i, ok := q.pos[id]
	if !ok {
		return false
	}
	old := q.heap[i].Cycle
	q.heap[i].Cycle = cycle
	if cycle < old {
		q.up(i)
	} else if cycle > old {
		q.down(i)
	}
	return true
}

// NextCycle peeks the earliest scheduled cycle.
func (q *Queue) NextCycle() (int64, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].Cycle, true
}

// Pop removes and returns the earliest event; ties pop in schedule
// order.
func (q *Queue) Pop() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	e := q.heap[0]
	q.remove(0)
	return e, true
}

// PopUpTo pops the earliest event if it is due at or before cycle.
func (q *Queue) PopUpTo(cycle int64) (Event, bool) {
	if len(q.heap) == 0 || q.heap[0].Cycle > cycle {
		return Event{}, false
	}
	return q.Pop()
}

func (q *Queue) less(a, b int) bool {
	if q.heap[a].Cycle != q.heap[b].Cycle {
		return q.heap[a].Cycle < q.heap[b].Cycle
	}
	return q.heap[a].id < q.heap[b].id
}

func (q *Queue) swap(a, b int) {
	q.heap[a], q.heap[b] = q.heap[b], q.heap[a]
	if q.tracking {
		q.pos[q.heap[a].id] = a
		q.pos[q.heap[b].id] = b
	}
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.less(l, m) {
			m = l
		}
		if r < n && q.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.swap(i, m)
		i = m
	}
}

func (q *Queue) remove(i int) {
	last := len(q.heap) - 1
	if q.tracking {
		delete(q.pos, q.heap[i].id)
	}
	if i != last {
		q.heap[i] = q.heap[last]
		if q.tracking {
			q.pos[q.heap[i].id] = i
		}
	}
	q.heap = q.heap[:last]
	if i < last {
		q.up(i)
		q.down(i)
	}
}
