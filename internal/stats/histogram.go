package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the bucket count: bucket 0 holds values <= 0, bucket
// i >= 1 holds [2^(i-1), 2^i). 64 buckets cover every positive int64.
const histBuckets = 64

// Histogram is a log-2-bucketed latency histogram. The zero value is
// ready to use; Observe on a nil *Histogram is a no-op, so a subsystem
// can hold an optional histogram pointer and observe unconditionally.
// Not safe for concurrent use, matching the rest of the simulator.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf returns the bucket index for v: 0 for v <= 0, else
// 1 + floor(log2(v)) — i.e. bits.Len64 of the value.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Negative values clamp to the <=0 bucket
// and contribute 0 to the sum (a negative latency is a measurement
// bug, not a distribution point — min still records it so it shows).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	if v > 0 {
		h.sum += uint64(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Reset clears the histogram in place, preserving the pointer held by
// any registry.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{}
}

// HistBucket is one non-empty bucket of a snapshot: the inclusive
// value range [Lo, Hi] and its observation count.
type HistBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a histogram reading: sparse non-empty buckets in
// ascending order plus the scalar summary.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (int64, int64) {
	if i == 0 {
		return 0, 0 // the <=0 bucket reports as [0,0]
	}
	lo := int64(1) << (i - 1)
	if i == histBuckets {
		// unreachable by construction (bits.Len64 of a positive int64
		// is at most 63), kept for bound safety
		return lo, 1<<63 - 1
	}
	hi := int64(1)<<i - 1
	if i == 63 {
		hi = 1<<63 - 1
	}
	return lo, hi
}

// Snapshot returns the histogram's current reading.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// Mean returns the average of the positive observations over the total
// count (0 for an empty histogram).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the bucket holding that rank, clamped to the
// observed max. q <= 0 returns the min, q >= 1 the max.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > rank {
			hi := b.Hi
			if hi > s.Max {
				hi = s.Max
			}
			if hi < s.Min {
				hi = s.Min
			}
			return hi
		}
	}
	return s.Max
}

// String renders the scalar summary momsim's report uses:
// "n=… mean=… p50=… p95=… max=…".
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%d p95<=%d max=%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Max)
	return b.String()
}

// String summarizes the live histogram (snapshot form).
func (h *Histogram) String() string { return h.Snapshot().String() }
