// Package stats is the simulator's observability layer: a registry
// mapping hierarchical stat names ("dram.row_hits",
// "vmem.mshr.merges", ...) to the live counters of every stat-bearing
// subsystem, log-2-bucketed latency histograms, and a cycle-stamped
// event tracer exporting Chrome trace-event JSON.
//
// The design keeps the hot paths untouched: every subsystem keeps its
// plain Stats struct and its plain field increments; registration
// wraps the fields after construction (AddStruct walks them by
// reflection), so the only cost of the registry is paid at Snapshot
// time. Histograms and tracers are nil-safe — Observe and Emit on a
// nil receiver are no-ops — so a subsystem hook on a disabled feature
// costs exactly one nil check.
//
// Snapshot produces a deterministic JSON document (map keys marshal
// sorted), which is what makes per-PR perf trajectories
// machine-diffable: momexp's -statsjson writes the pinned golden
// matrix as BENCH_*.json, and the golden-stats regression net in
// internal/core reads its rows *through* a snapshot, proving
// registration is complete and bit-identical to the hand-threaded
// counters.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"unicode"
)

// Registry maps hierarchical names to live stat sources. It is not
// safe for concurrent use, matching the rest of the simulator.
type Registry struct {
	counters map[string]func() uint64
	gauges   map[string]func() int64
	hists    map[string]*Histogram
	hooks    []func() // run at the start of every Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]func() uint64{},
		gauges:   map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// checkName rejects duplicate or empty registrations loudly: a
// collision means two subsystems claimed the same name and one of them
// would silently shadow the other in every export.
func (r *Registry) checkName(name string) {
	if name == "" {
		panic("stats: empty stat name")
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("stats: duplicate registration of %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("stats: duplicate registration of %q", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("stats: duplicate registration of %q", name))
	}
}

// Counter registers a monotonic counter read through get.
func (r *Registry) Counter(name string, get func() uint64) {
	r.checkName(name)
	r.counters[name] = get
}

// Gauge registers a signed value read through get (cycle bounds,
// high-water marks).
func (r *Registry) Gauge(name string, get func() int64) {
	r.checkName(name)
	r.gauges[name] = get
}

// Hist registers an existing histogram under name.
func (r *Registry) Hist(name string, h *Histogram) {
	if h == nil {
		panic(fmt.Sprintf("stats: nil histogram registered as %q", name))
	}
	r.checkName(name)
	r.hists[name] = h
}

// OnSnapshot registers a hook run at the start of every Snapshot, for
// stats that are derived rather than live (e.g. the prefetcher's
// useless count, folded in from the L2's eviction accounting).
func (r *Registry) OnSnapshot(fn func()) { r.hooks = append(r.hooks, fn) }

// AddStruct registers every exported field of the struct pointed to by
// v under prefix: uint64 fields become counters, int/int64 fields
// become gauges, [N]uint64 arrays become one counter per index
// ("prefix.name.i"), non-nil *Histogram fields register as histograms,
// and nested struct fields recurse under "prefix.name" (how core.Stats
// registers its CPI stack as core.cpi.*). Field names convert to
// snake_case ("RowHits" → "row_hits"). Any other exported field type
// panics — a new stat field must either fit the taxonomy or extend it
// here, so silent stat drift is impossible.
func (r *Registry) AddStruct(prefix string, v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() || rv.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("stats: AddStruct needs a non-nil struct pointer, got %T", v))
	}
	rv = rv.Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + "." + SnakeCase(f.Name)
		fv := rv.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			p := fv.Addr().Interface().(*uint64)
			r.Counter(name, func() uint64 { return *p })
		case reflect.Int64:
			p := fv.Addr().Interface().(*int64)
			r.Gauge(name, func() int64 { return *p })
		case reflect.Int:
			p := fv.Addr().Interface().(*int)
			r.Gauge(name, func() int64 { return int64(*p) })
		case reflect.Array:
			if f.Type.Elem().Kind() != reflect.Uint64 {
				panic(fmt.Sprintf("stats: unsupported array field %s (%s)", name, f.Type))
			}
			for j := 0; j < fv.Len(); j++ {
				p := fv.Index(j).Addr().Interface().(*uint64)
				r.Counter(fmt.Sprintf("%s.%d", name, j), func() uint64 { return *p })
			}
		case reflect.Pointer:
			h, ok := fv.Interface().(*Histogram)
			if !ok {
				panic(fmt.Sprintf("stats: unsupported pointer field %s (%s)", name, f.Type))
			}
			if h != nil {
				r.Hist(name, h)
			}
		case reflect.Struct:
			r.AddStruct(name, fv.Addr().Interface())
		default:
			panic(fmt.Sprintf("stats: unsupported field %s (%s)", name, f.Type))
		}
	}
}

// Names returns every registered name, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot is one deterministic reading of a registry: plain maps so
// encoding/json emits keys in sorted order, making two snapshots of
// the same state byte-identical.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]int64        `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// Snapshot reads every registered source.
func (r *Registry) Snapshot() Snapshot {
	for _, fn := range r.hooks {
		fn()
	}
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, get := range r.counters {
		s.Counters[n] = get()
	}
	for n, get := range r.gauges {
		s.Gauges[n] = get()
	}
	for n, h := range r.hists {
		s.Hists[n] = h.Snapshot()
	}
	return s
}

// Counter returns the named counter's value (0 when absent; Has
// distinguishes).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Has reports whether the snapshot holds the name in any taxonomy.
func (s Snapshot) Has(name string) bool {
	if _, ok := s.Counters[name]; ok {
		return true
	}
	if _, ok := s.Gauges[name]; ok {
		return true
	}
	_, ok := s.Hists[name]
	return ok
}

// WriteJSON writes the snapshot as indented JSON. Map keys marshal
// sorted, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the snapshot as an aligned name/value listing, sorted
// by name — the pretty-printed form `make stats` shows.
func (s Snapshot) String() string {
	type row struct{ name, val string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n, v := range s.Counters {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, v := range s.Gauges {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, h := range s.Hists {
		rows = append(rows, row{n, h.String()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %s\n", width, r.name, r.val)
	}
	return b.String()
}

// SnakeCase converts a Go field name to the registry's snake_case
// spelling: "RowHits" → "row_hits", "StallROB" → "stall_rob",
// "D3Words" → "d3_words".
func SnakeCase(s string) string {
	runes := []rune(s)
	var b strings.Builder
	for i, r := range runes {
		if i > 0 && unicode.IsUpper(r) {
			prev := runes[i-1]
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			// A lone trailing 's' after an acronym is a plural
			// ("MSHRs" → "mshrs"), not a new word.
			plural := i+2 == len(runes) && runes[i+1] == 's'
			if unicode.IsLower(prev) || unicode.IsDigit(prev) ||
				(unicode.IsUpper(prev) && nextLower && !plural) {
				b.WriteByte('_')
			}
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
