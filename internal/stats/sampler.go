package stats

import (
	"encoding/json"
	"io"
)

// Sampler turns a registry into an interval time series: each call to
// Sample snapshots every registered counter and gauge and records the
// delta since the previous sample. Counters report per-interval deltas
// (zero deltas are dropped, so quiet intervals stay small); gauges
// report their absolute value at the sample point. Histograms are
// skipped — their full distributions belong to the end-of-run
// snapshot, not a per-interval series.
//
// The driver owns the cadence: momsim's -sample loop calls Sample at
// every interval boundary the engine actually executes (the wheel may
// land past a boundary after a SkipTo; the sample is stamped with the
// real cycle), so the series is deterministic for a given engine.
type Sampler struct {
	reg   *Registry
	every int64
	prev  map[string]uint64
	rows  []SampleRow
}

// SampleRow is one interval of the time series: the cycle it was taken
// at, the counter deltas since the previous row (zero deltas omitted),
// and the absolute gauge values.
type SampleRow struct {
	Cycle    int64             `json:"cycle"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
}

// sampleDoc is the exported JSON document: the interval the driver
// asked for plus the rows it took.
type sampleDoc struct {
	Interval int64       `json:"interval"`
	Rows     []SampleRow `json:"rows"`
}

// NewSampler returns a sampler over reg with the requested interval
// (recorded for the export header; the driver enforces the cadence).
func NewSampler(reg *Registry, every int64) *Sampler {
	return &Sampler{reg: reg, every: every, prev: map[string]uint64{}}
}

// Interval returns the requested sampling interval in cycles.
func (s *Sampler) Interval() int64 { return s.every }

// Sample records one row stamped at cycle: counter deltas since the
// previous call, absolute gauges.
func (s *Sampler) Sample(cycle int64) {
	snap := s.reg.Snapshot()
	row := SampleRow{Cycle: cycle}
	for name, v := range snap.Counters {
		if d := v - s.prev[name]; d != 0 {
			if row.Counters == nil {
				row.Counters = map[string]uint64{}
			}
			row.Counters[name] = d
		}
		s.prev[name] = v
	}
	if len(snap.Gauges) > 0 {
		row.Gauges = make(map[string]int64, len(snap.Gauges))
		for name, v := range snap.Gauges {
			row.Gauges[name] = v
		}
	}
	s.rows = append(s.rows, row)
}

// Rows returns the recorded series.
func (s *Sampler) Rows() []SampleRow { return s.rows }

// WriteJSON writes the series as indented JSON. Map keys marshal
// sorted, so the output is deterministic.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sampleDoc{Interval: s.every, Rows: s.rows})
}
