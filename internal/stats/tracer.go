package stats

import (
	"encoding/json"
	"io"
	"sort"
)

// DefaultTraceEvents is the ring capacity used when a tracer is
// enabled without choosing one: large enough to hold every event of
// the small kernels, bounded enough that a long run cannot grow
// without limit (the ring keeps the most recent events).
const DefaultTraceEvents = 1 << 20

// Event is one cycle-stamped trace event. With Ph zero the legacy
// shape applies: Dur == 0 renders as a Chrome instant event
// ("ph":"i"), Dur > 0 as a complete event ("ph":"X") spanning
// [Cycle, Cycle+Dur). A nonzero Ph selects a causal phase directly:
// 'B'/'E' open and close a nestable span on (pid, tid), and
// 's'/'t'/'f' are flow start/step/finish events whose ID field links
// an instruction to its TLB walk, MSHR entry and DRAM burst across
// lanes.
type Event struct {
	Cycle  int64  // start cycle
	Dur    int64  // duration in cycles; 0 = instant
	Cat    string // subsystem category: "dram", "mshr", "pf", ...
	Name   string // event name: "activate", "merge", "fire", ...
	Addr   uint64 // memory address, 0 if not applicable
	ID     uint64 // request/entry identity, 0 if not applicable
	Lane   int    // renders as the Chrome tid: channel, bank, stream...
	Tenant int    // requestor index; renders as the Chrome pid (Tenant+1)
	Ph     byte   // 0 = legacy X/i; 'B','E' span; 's','t','f' flow
}

// Tracer is a ring buffer of cycle-stamped events. A nil *Tracer is
// the disabled state: Emit on nil is a no-op, so every subsystem hook
// costs one nil check when tracing is off. Not safe for concurrent
// use, matching the rest of the simulator.
type Tracer struct {
	ring    []Event
	next    int    // ring index of the next write
	wrapped bool   // ring has overwritten old events
	total   uint64 // events ever emitted
}

// NewTracer returns a tracer holding at most capacity events (the most
// recent ones win). capacity <= 0 selects DefaultTraceEvents.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit records one event. No-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.wrapped = true
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total returns the number of events ever emitted (retained + dropped).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// chromeEvent is one entry of a Chrome trace-event JSON file
// (the "JSON Array Format" inside a traceEvents object, loadable by
// chrome://tracing and Perfetto). Timestamps are in cycles, reported
// through the microsecond field.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   any            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace document.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Meta        map[string]any `json:"otherData,omitempty"`
}

// WriteChromeJSON writes the retained events as Chrome trace-event
// JSON, sorted by start cycle. The displayTimeUnit is left at the
// microsecond default; one "microsecond" is one simulator cycle.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	doc := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(evs))}
	if t != nil {
		doc.Meta = map[string]any{
			"timeUnit":      "cycles",
			"totalEvents":   t.Total(),
			"droppedEvents": t.Dropped(),
		}
	}
	for _, e := range evs {
		// Tenants separate as Chrome processes: pid 1 is tenant 0 (and
		// all single-requestor traffic), pid i+1 is tenant i, so a
		// multi-tenant trace groups each requestor's DRAM/MSHR/prefetch
		// lanes under its own process row.
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   e.Cycle,
			PID:  e.Tenant + 1,
			TID:  e.Lane,
		}
		switch e.Ph {
		case 0:
			if e.Dur > 0 {
				ce.Ph = "X"
				ce.Dur = e.Dur
			} else {
				ce.Ph = "i"
				ce.S = "t" // instant scope: thread
			}
		case 'B', 'E':
			// Duration-event pair: Chrome nests same-tid spans by
			// begin/end order, giving per-instruction issue→commit
			// slices that memory sub-spans nest inside.
			ce.Ph = string(rune(e.Ph))
		case 's', 't', 'f':
			// Flow event: the (cat, name, id) triple is the chain key
			// Chrome draws arrows along; bp:"e" binds the finish to the
			// enclosing slice rather than the next one.
			ce.Ph = string(rune(e.Ph))
			ce.ID = e.ID
			if e.Ph == 'f' {
				ce.BP = "e"
			}
		default:
			ce.Ph = string(rune(e.Ph))
		}
		args := map[string]any{}
		if e.Addr != 0 {
			args["addr"] = e.Addr
		}
		if e.ID != 0 && ce.ID == nil {
			args["id"] = e.ID
		}
		if len(args) > 0 {
			ce.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
