package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"RowHits":         "row_hits",
		"StallROB":        "stall_rob",
		"ByKind":          "by_kind",
		"D3Words":         "d3_words",
		"Accesses":        "accesses",
		"QueueMax":        "queue_max",
		"FirstArrival":    "first_arrival",
		"MSHRs":           "mshrs",
		"DroppedMSHR":     "dropped_mshr",
		"DroppedWQ":       "dropped_wq",
		"PrefetchUseless": "prefetch_useless",
		"FlushedReqs":     "flushed_reqs",
		"OccMax":          "occ_max",
		"ID":              "id",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryAddStruct(t *testing.T) {
	type inner struct {
		Hits    uint64
		Misses  uint64
		ByKind  [3]uint64
		Cycles  int64
		OccMax  int
		Wait    *Histogram
		NilHist *Histogram
		hidden  uint64
	}
	st := inner{Hits: 7, Misses: 3, Cycles: 99, OccMax: 5, Wait: NewHistogram(), hidden: 1}
	st.ByKind[1] = 11
	st.Wait.Observe(4)
	r := NewRegistry()
	r.AddStruct("x", &st)

	snap := r.Snapshot()
	if got := snap.Counter("x.hits"); got != 7 {
		t.Errorf("x.hits = %d, want 7", got)
	}
	if got := snap.Counter("x.by_kind.1"); got != 11 {
		t.Errorf("x.by_kind.1 = %d, want 11", got)
	}
	if got := snap.Gauge("x.cycles"); got != 99 {
		t.Errorf("x.cycles = %d, want 99", got)
	}
	if got := snap.Gauge("x.occ_max"); got != 5 {
		t.Errorf("x.occ_max = %d, want 5", got)
	}
	if h, ok := snap.Hists["x.wait"]; !ok || h.Count != 1 {
		t.Errorf("x.wait hist = %+v, want registered with count 1", h)
	}
	if snap.Has("x.nil_hist") {
		t.Error("nil histogram field should not register")
	}
	if snap.Has("x.hidden") {
		t.Error("unexported field should not register")
	}

	// Live wrapping: mutate the struct, the next snapshot sees it.
	st.Hits = 100
	if got := r.Snapshot().Counter("x.hits"); got != 100 {
		t.Errorf("after mutation x.hits = %d, want 100", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("a.b", func() int64 { return 0 })
}

func TestRegistryUnsupportedFieldPanics(t *testing.T) {
	type bad struct{ Name string }
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported field type did not panic")
		}
	}()
	r.AddStruct("bad", &bad{})
}

func TestSnapshotHooksRun(t *testing.T) {
	r := NewRegistry()
	var derived uint64
	r.Counter("d", func() uint64 { return derived })
	r.OnSnapshot(func() { derived = 42 })
	if got := r.Snapshot().Counter("d"); got != 42 {
		t.Errorf("hooked counter = %d, want 42", got)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last", func() uint64 { return 1 })
		r.Counter("a.first", func() uint64 { return 2 })
		r.Gauge("m.mid", func() int64 { return -3 })
		h := NewHistogram()
		h.Observe(10)
		h.Observe(1000)
		r.Hist("h.lat", h)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshots of identical registries differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Round-trips as valid JSON with the three taxonomy keys.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	for _, k := range []string{"counters", "gauges", "histograms"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("snapshot JSON missing %q", k)
		}
	}
	// Keys marshal sorted.
	i1 := strings.Index(b1.String(), "a.first")
	i2 := strings.Index(b1.String(), "z.last")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("counter keys not in sorted order: a.first@%d z.last@%d", i1, i2)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two", func() uint64 { return 2 })
	r.Counter("a.one", func() uint64 { return 1 })
	s := r.Snapshot().String()
	if !strings.Contains(s, "a.one") || !strings.Contains(s, "b.two") {
		t.Fatalf("String() missing names:\n%s", s)
	}
	if strings.Index(s, "a.one") > strings.Index(s, "b.two") {
		t.Errorf("String() not sorted:\n%s", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1}, // [1,1]
		{2, 2}, // [2,3]
		{3, 2},
		{4, 3}, // [4,7]
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(math.MaxInt64)
	h.Observe(-5)
	h.Observe(1)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Min != -5 || s.Max != math.MaxInt64 {
		t.Errorf("min/max = %d/%d, want -5/%d", s.Min, s.Max, int64(math.MaxInt64))
	}
	// Sum counts only positive observations: MaxInt64 + 1.
	if s.Sum != uint64(math.MaxInt64)+1 {
		t.Errorf("sum = %d, want %d", s.Sum, uint64(math.MaxInt64)+1)
	}
	// The <=0 bucket holds the 0 and the -5; bucket [1,1] holds the 1;
	// the top bucket holds MaxInt64 with an inclusive Hi of MaxInt64.
	var zero, top HistBucket
	for _, b := range s.Buckets {
		if b.Lo == 0 && b.Hi == 0 {
			zero = b
		}
		if b.Count > 0 && b.Hi == math.MaxInt64 {
			top = b
		}
	}
	if zero.Count != 2 {
		t.Errorf("<=0 bucket count = %d, want 2", zero.Count)
	}
	if top.Count != 1 || top.Lo != int64(1)<<62 {
		t.Errorf("top bucket = %+v, want count 1 lo 2^62", top)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 {
		t.Error("nil histogram count != 0")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	h.Reset() // must not panic
}

func TestHistogramQuantileMean(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,15]
	}
	for i := 0; i < 10; i++ {
		h.Observe(100) // bucket [64,127]
	}
	s := h.Snapshot()
	if m := s.Mean(); m != 19 {
		t.Errorf("mean = %v, want 19", m)
	}
	if q := s.Quantile(0.50); q != 15 {
		t.Errorf("p50 = %d, want 15 (upper edge of [8,15])", q)
	}
	// p95 lands in the [64,127] bucket, clamped to the observed max.
	if q := s.Quantile(0.95); q != 100 {
		t.Errorf("p95 = %d, want 100 (bucket edge clamped to max)", q)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Errorf("q0 = %d, want min %d", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("q1 = %d, want max %d", q, s.Max)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	r := NewRegistry()
	r.Hist("h", h)
	h.Reset()
	if got := r.Snapshot().Hists["h"].Count; got != 0 {
		t.Errorf("after Reset count = %d, want 0 (registry must see the reset)", got)
	}
	h.Observe(3)
	if got := r.Snapshot().Hists["h"].Count; got != 1 {
		t.Errorf("after re-observe count = %d, want 1", got)
	}
}
