package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Cycle: 1, Cat: "dram", Name: "issue"}) // must not panic
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reports nonzero state")
	}
	if tr.Events() != nil {
		t.Error("nil tracer Events() != nil")
	}
	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatalf("nil tracer WriteChromeJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer emitted invalid JSON: %v", err)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		tr.Emit(Event{Cycle: i, Cat: "x", Name: "e"})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("Total/Dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (most recent retained, in order)", i, e.Cycle, want)
		}
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Event{Cycle: 5, Cat: "mshr", Name: "alloc", Addr: 0x1000, ID: 3, Lane: 1})
	tr.Emit(Event{Cycle: 2, Dur: 7, Cat: "dram", Name: "burst", Addr: 0x2000, Lane: 0})
	tr.Emit(Event{Cycle: 9, Cat: "pf", Name: "fire"})

	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	// Parse the emitted file back: well-formed Chrome trace JSON.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Meta map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("traceEvents = %d, want 3", len(doc.TraceEvents))
	}
	// Sorted by start cycle.
	last := int64(-1)
	for _, e := range doc.TraceEvents {
		if e.TS < last {
			t.Errorf("events not sorted by ts: %d after %d", e.TS, last)
		}
		last = e.TS
	}
	// Duration events render as "X", instants as "i".
	first := doc.TraceEvents[0]
	if first.Name != "burst" || first.Ph != "X" || first.Dur != 7 {
		t.Errorf("duration event = %+v, want burst/X/dur=7", first)
	}
	second := doc.TraceEvents[1]
	if second.Name != "alloc" || second.Ph != "i" {
		t.Errorf("instant event = %+v, want alloc/i", second)
	}
	if got, ok := second.Args["addr"].(float64); !ok || uint64(got) != 0x1000 {
		t.Errorf("alloc args addr = %v, want 0x1000", second.Args["addr"])
	}
	if doc.Meta["timeUnit"] != "cycles" {
		t.Errorf("otherData.timeUnit = %v, want cycles", doc.Meta["timeUnit"])
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.ring) != DefaultTraceEvents {
		t.Errorf("default capacity = %d, want %d", cap(tr.ring), DefaultTraceEvents)
	}
}
