package stats_test

// The registration-coverage net: build the most fully-loaded memory
// system the simulator can configure (SDRAM backend, MSHR file, stream
// prefetcher, both cache levels), register everything, and reflect over
// every stat-bearing struct type. Any exported field without a
// registered name fails the test — so a new counter added to any Stats
// struct cannot ship unregistered, and the exporters (momsim
// -statsjson, momexp's BENCH_PR6.json, the golden table) stay complete
// by construction.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// checkStructCoverage walks every exported field of typ and asserts its
// registered name exists in snap, mirroring AddStruct's kind dispatch:
// arrays expand to indexed names, *Histogram fields must appear in
// Hists, nested structs recurse under their snake-cased prefix (so the
// grouped counters of core.Stats.CPI are covered field by field), and
// everything else must answer Has.
func checkStructCoverage(t *testing.T, snap stats.Snapshot, prefix string, typ reflect.Type) {
	t.Helper()
	histType := reflect.TypeOf((*stats.Histogram)(nil))
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + "." + stats.SnakeCase(f.Name)
		switch {
		case f.Type.Kind() == reflect.Array:
			for j := 0; j < f.Type.Len(); j++ {
				if idx := fmt.Sprintf("%s.%d", name, j); !snap.Has(idx) {
					t.Errorf("%s.%s: indexed counter %q unregistered", typ, f.Name, idx)
				}
			}
		case f.Type == histType:
			if _, ok := snap.Hists[name]; !ok {
				t.Errorf("%s.%s: histogram %q unregistered", typ, f.Name, name)
			}
		case f.Type.Kind() == reflect.Struct:
			checkStructCoverage(t, snap, name, f.Type)
		default:
			if !snap.Has(name) {
				t.Errorf("%s.%s: %q unregistered — wire it into AddStruct or the Register seam",
					typ, f.Name, name)
			}
		}
	}
}

// loadedSystem builds a memory system that instantiates every optional
// subsystem, plus a core.Stats, and registers both.
func loadedSystem(t *testing.T) (*stats.Registry, *core.MemSystem) {
	t.Helper()
	backend, knobs, err := dram.ParseSpecFull("sdram/line/frfcfs/mshr8/pf4/va", 100)
	if err != nil {
		t.Fatal(err)
	}
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	vmsys, err := core.NewVM(knobs.VA, 1, backend)
	if err != nil {
		t.Fatal(err)
	}
	tim.VA = vmsys.Space(0)
	ms := core.NewMemSystem(core.MemVectorCache3D, tim, 4, false)
	reg := stats.NewRegistry()
	(&core.Stats{}).Register(reg)
	ms.Register(reg)
	return reg, ms
}

func TestRegistryCoversAllStats(t *testing.T) {
	reg, ms := loadedSystem(t)
	snap := reg.Snapshot()

	// The sanity preconditions: the loaded system really instantiated
	// the optional subsystems this test exists to cover.
	if ms.MSHR() == nil || ms.MSHR().Prefetcher() == nil || ms.DRAM() == nil || ms.Tim.VA == nil {
		t.Fatal("loaded system is missing a subsystem; the coverage below would be vacuous")
	}

	cases := []struct {
		prefix string
		typ    reflect.Type
	}{
		{"core", reflect.TypeOf(core.Stats{})},
		{"cache.l1", reflect.TypeOf(cache.Stats{})},
		{"cache.l2", reflect.TypeOf(cache.Stats{})},
		{"vmem", reflect.TypeOf(vmem.Stats{})},
		{"vmem.mshr", reflect.TypeOf(vmem.MSHRStats{})},
		{"vmem.prefetch", reflect.TypeOf(vmem.PrefetchStats{})},
		{"dram", reflect.TypeOf(dram.Stats{})},
		// The shared TLB/walk counters and the (single) space's private
		// counters share the vm.tlb/vm.walk prefixes; the field names
		// keep them disjoint.
		{"vm.tlb", reflect.TypeOf(vm.TLBStats{})},
		{"vm.tlb", reflect.TypeOf(vm.SpaceStats{})},
		{"vm.walk", reflect.TypeOf(vm.WalkStats{})},
	}
	for _, c := range cases {
		checkStructCoverage(t, snap, c.prefix, c.typ)
	}
}

// TestRegistryCoversMemSystemExtras pins the names the Register seam
// adds by hand, outside any struct walk.
func TestRegistryCoversMemSystemExtras(t *testing.T) {
	reg, _ := loadedSystem(t)
	snap := reg.Snapshot()
	for _, name := range []string{"vmem.scalar_l2_accesses"} {
		if !snap.Has(name) {
			t.Errorf("hand-registered name %q missing", name)
		}
	}
}

// loadedTenantSystem is loadedSystem's multi-requestor sibling: a
// 2-tenant group on the fully-loaded shared backend with QoS on, run to
// completion and registered.
func loadedTenantSystem(t *testing.T) *stats.Registry {
	t.Helper()
	backend, knobs, err := dram.ParseSpecFull("sdram/line/frfcfs/mshr8/pf4/tn2/qos/va", 100)
	if err != nil {
		t.Fatal(err)
	}
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	vmsys, err := core.NewVM(knobs.VA, 2, backend)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MOMCore()
	tr := &trace.Trace{}
	kernels.GSMEncode(kernels.SmallGSMEncConfig()).Run(kernels.MOM3D, tr)
	g := tenant.New(tenant.Options{Core: cfg, Kind: core.MemVectorCache3D,
		Tim: tim, Lanes: cfg.Lanes, Traces: [][]isa.Inst{tr.Insts, tr.Insts}, VM: vmsys})
	g.Run()
	reg := stats.NewRegistry()
	g.Register(reg)
	return reg
}

// TestRegistryCoversTenantShards extends the coverage walk to the
// multi-tenant registration seam: the shared structures keep their
// classic names, every tenant's private shards appear under
// tenant.<i>.*, and every exported field of the backend's per-tenant
// shard is registered — so a counter added to dram.TenantStats cannot
// ship invisible to -statsjson.
func TestRegistryCoversTenantShards(t *testing.T) {
	snap := loadedTenantSystem(t).Snapshot()

	cases := []struct {
		prefix string
		typ    reflect.Type
	}{
		// Shared structures under the single-requestor names.
		{"cache.l2", reflect.TypeOf(cache.Stats{})},
		{"vmem.mshr", reflect.TypeOf(vmem.MSHRStats{})},
		{"vmem.prefetch", reflect.TypeOf(vmem.PrefetchStats{})},
		{"dram", reflect.TypeOf(dram.Stats{})},
		{"vm.tlb", reflect.TypeOf(vm.TLBStats{})},
		{"vm.walk", reflect.TypeOf(vm.WalkStats{})},
		// Per-tenant shards for both tenants.
		{"tenant.0.core", reflect.TypeOf(core.Stats{})},
		{"tenant.0.cache.l1", reflect.TypeOf(cache.Stats{})},
		{"tenant.0.vmem", reflect.TypeOf(vmem.Stats{})},
		{"tenant.0.dram", reflect.TypeOf(dram.TenantStats{})},
		{"tenant.1.core", reflect.TypeOf(core.Stats{})},
		{"tenant.1.cache.l1", reflect.TypeOf(cache.Stats{})},
		{"tenant.1.vmem", reflect.TypeOf(vmem.Stats{})},
		{"tenant.1.dram", reflect.TypeOf(dram.TenantStats{})},
		{"tenant.0.vm.tlb", reflect.TypeOf(vm.SpaceStats{})},
		{"tenant.1.vm.tlb", reflect.TypeOf(vm.SpaceStats{})},
	}
	for _, c := range cases {
		checkStructCoverage(t, snap, c.prefix, c.typ)
	}
	for _, name := range []string{
		"tenant.0.vmem.scalar_l2_accesses",
		"tenant.1.vmem.scalar_l2_accesses",
	} {
		if !snap.Has(name) {
			t.Errorf("hand-registered name %q missing", name)
		}
	}
	// The per-tenant read-latency histograms must actually carry samples
	// — both tenants filed misses through the shared backend.
	for _, name := range []string{"tenant.0.dram.read_latency", "tenant.1.dram.read_latency"} {
		h, ok := snap.Hists[name]
		if !ok {
			t.Fatalf("histogram %q unregistered", name)
		}
		if h.Count == 0 {
			t.Errorf("histogram %q registered but empty after a 2-tenant run", name)
		}
	}
}
