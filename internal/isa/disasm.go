package isa

import (
	"fmt"
	"strings"
)

// String renders the dynamic instruction in a readable assembly-like
// syntax, including the dynamic address for memory operations.
func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s ", in.mnemonic())
	var ops []string
	if in.Dst.Valid() {
		ops = append(ops, in.Dst.String())
	}
	if in.Src1.Valid() {
		ops = append(ops, in.Src1.String())
	}
	if in.Src2.Valid() {
		ops = append(ops, in.Src2.String())
	}
	switch in.Op {
	case OpIMovImm, OpIAddImm, OpIShl, OpIShr, OpISltI,
		OpPSllW, OpPSrlW, OpPSraW, OpPSllD, OpPSrlD, OpPSraD,
		OpPSllQ, OpPSrlQ, OpPShufW, OpVMovV2I:
		ops = append(ops, fmt.Sprintf("#%d", in.Imm))
	}
	b.WriteString(strings.Join(ops, ", "))
	switch in.Kind {
	case KindScalarMem:
		fmt.Fprintf(&b, " [0x%x]%s", in.Addr, storeMark(in.IsStore))
	case KindUSIMDMem:
		fmt.Fprintf(&b, " [0x%x]%s", in.Addr, storeMark(in.IsStore))
	case KindMOMMem:
		fmt.Fprintf(&b, " [0x%x] vl=%d vs=%d%s", in.Addr, in.VL, in.Stride, storeMark(in.IsStore))
	case Kind3DLoad:
		fmt.Fprintf(&b, " [0x%x] vl=%d vs=%d w=%d b=%v", in.Addr, in.VL, in.Stride, in.Width, in.Back)
	case Kind3DMove:
		fmt.Fprintf(&b, " %s ps=%d vl=%d", in.Ptr, in.PtrStep, in.VL)
	case KindMOM:
		fmt.Fprintf(&b, " vl=%d", in.VL)
	case KindBranch:
		if in.Taken {
			b.WriteString(" taken")
		} else {
			b.WriteString(" not-taken")
		}
	}
	return b.String()
}

func (in *Inst) mnemonic() string {
	name := in.Op.Name()
	switch in.Kind {
	case KindMOM, KindMOMMem:
		if in.Op.IsPacked() || in.Op == OpVLoad || in.Op == OpVStore {
			return "mom." + name
		}
	}
	return name
}

func storeMark(st bool) string {
	if st {
		return " (st)"
	}
	return ""
}
