package isa

import "fmt"

// Op enumerates every operation in the combined scalar + μSIMD + MOM + 3D
// instruction repertoire. Packed operations (OpPAddB ... OpPSrlQ) are shared
// between the μSIMD and MOM instruction kinds: under KindUSIMD they operate
// on one 64-bit register, under KindMOM they are replicated over VL register
// elements (the second dimension of vectorization).
type Op uint8

const (
	OpNop Op = iota

	// Scalar integer operations.
	OpIMovImm // dst = imm
	OpIMov    // dst = src1
	OpIAdd    // dst = src1 + src2
	OpIAddImm // dst = src1 + imm
	OpISub    // dst = src1 - src2
	OpIMul    // dst = src1 * src2
	OpIAnd
	OpIOr
	OpIXor
	OpIShl  // dst = src1 << imm
	OpIShr  // dst = src1 >> imm (logical)
	OpISra  // dst = src1 >> imm (arithmetic)
	OpISltI // dst = src1 < imm ? 1 : 0 (signed)
	OpISlt  // dst = src1 < src2 ? 1 : 0 (signed)
	OpIMin  // dst = min(src1, src2) (signed)
	OpIMax  // dst = max(src1, src2) (signed)

	// Control flow. Branches carry their dynamic outcome in Inst.Taken.
	OpBr   // conditional branch on src1 != 0
	OpJump // unconditional jump / call / return

	// Scalar memory. The access size in bytes travels in Inst.Imm.
	OpLoad  // dst = mem[Addr], zero-extended
	OpLoadS // dst = mem[Addr], sign-extended
	OpStore // mem[Addr] = src2

	// Packed 64-bit operations (μSIMD under KindUSIMD, per-element 2D
	// vector under KindMOM).
	OpPAddB   // 8x8-bit wrapping add
	OpPAddW   // 4x16-bit wrapping add
	OpPAddD   // 2x32-bit wrapping add
	OpPAddSW  // 4x16-bit signed saturating add
	OpPAddUSB // 8x8-bit unsigned saturating add
	OpPSubB
	OpPSubW
	OpPSubD
	OpPSubSW  // 4x16-bit signed saturating subtract
	OpPSubUSB // 8x8-bit unsigned saturating subtract
	OpPMullW  // 4x16-bit multiply, low halves
	OpPMulhW  // 4x16-bit signed multiply, high halves
	OpPMAddWD // 4x16 -> 2x32 multiply-add pairs
	OpPAvgB   // 8x8-bit unsigned rounding average
	OpPMinUB
	OpPMaxUB
	OpPSadBW // sum of absolute differences of 8 bytes -> 64-bit scalar sum
	OpPAnd
	OpPOr
	OpPXor
	OpPAndN
	OpPSllW // shift counts travel in Inst.Imm
	OpPSrlW
	OpPSraW
	OpPSllD
	OpPSrlD
	OpPSraD
	OpPSllQ
	OpPSrlQ
	OpPackUSWB  // pack 4+4 signed words to 8 unsigned saturated bytes
	OpPackSSWB  // pack 4+4 signed words to 8 signed saturated bytes
	OpPackSSDW  // pack 2+2 signed dwords to 4 signed saturated words
	OpPUnpckLBW // interleave low 4 bytes of src1/src2 into 4 words' bytes
	OpPUnpckHBW
	OpPUnpckLWD
	OpPUnpckHWD
	OpPUnpckLDQ // interleave low dwords of src1/src2
	OpPUnpckHDQ // interleave high dwords of src1/src2
	OpPShufW    // shuffle 4 words by immediate control

	// Multimedia register moves.
	OpVMovI2V // vec[0:63] = scalar src1 (broadcast not implied)
	OpVMovV2I // scalar dst = vec element word (Imm selects element)
	OpVSplatW // broadcast low 16 bits of scalar src1 across register/elements

	// Multimedia memory. Under KindUSIMDMem a 64-bit access; under
	// KindMOMMem a 2D access of VL elements with Stride bytes between them.
	OpVLoad
	OpVStore

	// MOM packed-accumulator operations (192-bit accumulator RF).
	OpVSadAcc  // acc += sum over elements of SAD(src1[e], src2[e])
	OpVMacAcc  // acc += sum over elements of dot16(src1[e], src2[e])
	OpVAddWAcc // acc += sum over elements of sum of 4 words (signed)
	OpAccClr   // acc = 0
	OpAccMov   // scalar dst = saturated/truncated accumulator value

	// 3D memory vectorization extension (the paper's new instructions).
	Op3DVLoad // dvload DRi <- [Addr], stride, W words/elem, flag b
	Op3DVMov  // 3dvmov VRi <- DRj at ptr; ptr += Ps

	opCount
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// ExecClass groups opcodes by the functional unit pipeline that executes
// them; it determines execution latency.
type ExecClass uint8

const (
	// ECSimple executes in one cycle (ALU, logic, moves).
	ECSimple ExecClass = iota
	// ECIMul is the scalar integer multiplier.
	ECIMul
	// ECPMul is the packed multiplier pipeline (pmull/pmulh/pmadd).
	ECPMul
	// ECPSad is the packed sum-of-absolute-differences pipeline.
	ECPSad
	// ECMem is a memory operation; latency comes from the memory system.
	ECMem
	// ECMove3D is the 3D register file read pipeline (3 cycles, §5.3).
	ECMove3D
)

// opInfo is static metadata for one opcode.
type opInfo struct {
	name  string
	class ExecClass
}

var opTable = [opCount]opInfo{
	OpNop:     {"nop", ECSimple},
	OpIMovImm: {"movi", ECSimple},
	OpIMov:    {"mov", ECSimple},
	OpIAdd:    {"add", ECSimple},
	OpIAddImm: {"addi", ECSimple},
	OpISub:    {"sub", ECSimple},
	OpIMul:    {"mul", ECIMul},
	OpIAnd:    {"and", ECSimple},
	OpIOr:     {"or", ECSimple},
	OpIXor:    {"xor", ECSimple},
	OpIShl:    {"shl", ECSimple},
	OpIShr:    {"shr", ECSimple},
	OpISra:    {"sra", ECSimple},
	OpISltI:   {"slti", ECSimple},
	OpISlt:    {"slt", ECSimple},
	OpIMin:    {"min", ECSimple},
	OpIMax:    {"max", ECSimple},
	OpBr:      {"br", ECSimple},
	OpJump:    {"jmp", ECSimple},
	OpLoad:    {"ld", ECMem},
	OpLoadS:   {"lds", ECMem},
	OpStore:   {"st", ECMem},

	OpPAddB:     {"paddb", ECSimple},
	OpPAddW:     {"paddw", ECSimple},
	OpPAddD:     {"paddd", ECSimple},
	OpPAddSW:    {"paddsw", ECSimple},
	OpPAddUSB:   {"paddusb", ECSimple},
	OpPSubB:     {"psubb", ECSimple},
	OpPSubW:     {"psubw", ECSimple},
	OpPSubD:     {"psubd", ECSimple},
	OpPSubSW:    {"psubsw", ECSimple},
	OpPSubUSB:   {"psubusb", ECSimple},
	OpPMullW:    {"pmullw", ECPMul},
	OpPMulhW:    {"pmulhw", ECPMul},
	OpPMAddWD:   {"pmaddwd", ECPMul},
	OpPAvgB:     {"pavgb", ECSimple},
	OpPMinUB:    {"pminub", ECSimple},
	OpPMaxUB:    {"pmaxub", ECSimple},
	OpPSadBW:    {"psadbw", ECPSad},
	OpPAnd:      {"pand", ECSimple},
	OpPOr:       {"por", ECSimple},
	OpPXor:      {"pxor", ECSimple},
	OpPAndN:     {"pandn", ECSimple},
	OpPSllW:     {"psllw", ECSimple},
	OpPSrlW:     {"psrlw", ECSimple},
	OpPSraW:     {"psraw", ECSimple},
	OpPSllD:     {"pslld", ECSimple},
	OpPSrlD:     {"psrld", ECSimple},
	OpPSraD:     {"psrad", ECSimple},
	OpPSllQ:     {"psllq", ECSimple},
	OpPSrlQ:     {"psrlq", ECSimple},
	OpPackUSWB:  {"packuswb", ECSimple},
	OpPackSSWB:  {"packsswb", ECSimple},
	OpPackSSDW:  {"packssdw", ECSimple},
	OpPUnpckLBW: {"punpcklbw", ECSimple},
	OpPUnpckHBW: {"punpckhbw", ECSimple},
	OpPUnpckLWD: {"punpcklwd", ECSimple},
	OpPUnpckHWD: {"punpckhwd", ECSimple},
	OpPUnpckLDQ: {"punpckldq", ECSimple},
	OpPUnpckHDQ: {"punpckhdq", ECSimple},
	OpPShufW:    {"pshufw", ECSimple},

	OpVMovI2V: {"vmovi2v", ECSimple},
	OpVMovV2I: {"vmovv2i", ECSimple},
	OpVSplatW: {"vsplatw", ECSimple},

	OpVLoad:  {"vload", ECMem},
	OpVStore: {"vstore", ECMem},

	OpVSadAcc:  {"vsadacc", ECPSad},
	OpVMacAcc:  {"vmacacc", ECPMul},
	OpVAddWAcc: {"vaddwacc", ECSimple},
	OpAccClr:   {"accclr", ECSimple},
	OpAccMov:   {"accmov", ECSimple},

	Op3DVLoad: {"dvload", ECMem},
	Op3DVMov:  {"3dvmov", ECMove3D},
}

// Name returns the opcode mnemonic.
func (o Op) Name() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class returns the opcode's functional-unit class.
func (o Op) Class() ExecClass {
	if int(o) < len(opTable) {
		return opTable[o].class
	}
	return ECSimple
}

// Latency returns the execution latency in cycles for non-memory classes.
// Memory latencies are produced by the memory subsystem; ECMove3D latency
// is the 3-cycle 3D register file access of §5.3.
func (c ExecClass) Latency() int {
	switch c {
	case ECSimple:
		return 1
	case ECIMul, ECPMul, ECPSad:
		return 3
	case ECMove3D:
		return 3
	case ECMem:
		return 0 // resolved by the memory model
	}
	return 1
}

// IsPacked reports whether the opcode is a packed (μSIMD-style) ALU
// operation shareable between the MMX and MOM instruction kinds.
func (o Op) IsPacked() bool {
	return o >= OpPAddB && o <= OpPShufW
}
