// Package isa defines the instruction set architecture used throughout the
// simulator: the scalar core ISA, the MMX-like μSIMD extension, the MOM
// 2-dimensional matrix extension, and the paper's 3D memory vectorization
// extension (3dvload / 3dvmov).
//
// The package is purely declarative: it defines registers, opcodes,
// instruction encodings and a disassembler. Semantics live in
// internal/emu; timing lives in internal/core.
package isa

import "fmt"

// Architectural geometry constants, following the MOM ISA technical report
// and the MICRO-35 paper (§4.1, Table 3).
const (
	// MOMElems is the number of 64-bit elements in a MOM vector register.
	MOMElems = 16
	// MOMElemBytes is the width in bytes of one MOM register element.
	MOMElemBytes = 8
	// D3Elems is the number of elements in a 3D vector register.
	D3Elems = 16
	// D3ElemBytes is the width in bytes of one 3D register element
	// (16 x 64 bits = 128 bytes, one full L2 cache line).
	D3ElemBytes = 128
	// D3ElemWords is the width in 64-bit words of one 3D register element.
	D3ElemWords = D3ElemBytes / 8
	// PtrBits is the width of a 3D pointer register (byte offset within a
	// 3D register element).
	PtrBits = 7
	// AccBits is the width of a MOM packed accumulator register.
	AccBits = 192
)

// Logical register file sizes (Table 3 of the paper).
const (
	NumIntRegs    = 32 // scalar integer registers
	NumVecRegsMMX = 32 // MMX-like configuration: 32 logical 64-bit registers
	NumVecRegsMOM = 16 // MOM configuration: 16 logical 2D vector registers
	NumAccRegs    = 2  // packed accumulator registers
	Num3DRegs     = 2  // 3D vector registers (and their pointer registers)
)

// RegClass identifies which architectural register file a Reg names.
type RegClass uint8

const (
	// RCNone marks an absent operand.
	RCNone RegClass = iota
	// RCInt is the scalar integer register file.
	RCInt
	// RCVec is the multimedia register file: 64-bit registers in the
	// MMX-like configuration, 16x64-bit matrix registers under MOM.
	RCVec
	// RCAcc is the packed accumulator register file (192-bit).
	RCAcc
	// RC3D is the second-level 3D vector register file (16 x 128 bytes).
	RC3D
	// RCPtr is the 3D pointer register file (7-bit byte offsets).
	RCPtr
)

// String returns a short mnemonic for the register class.
func (c RegClass) String() string {
	switch c {
	case RCNone:
		return "none"
	case RCInt:
		return "int"
	case RCVec:
		return "vec"
	case RCAcc:
		return "acc"
	case RC3D:
		return "3d"
	case RCPtr:
		return "ptr"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Reg is a logical register identifier: a class plus an index within that
// class's register file.
type Reg uint16

// NoReg is the absent-operand sentinel.
const NoReg Reg = 0

const regClassShift = 10

// MkReg builds a register identifier from a class and index.
func MkReg(c RegClass, idx int) Reg {
	return Reg(uint16(c)<<regClassShift | uint16(idx)&0x3ff)
}

// R returns the scalar integer register ri.
func R(i int) Reg { return MkReg(RCInt, i) }

// V returns multimedia register vi (an MMX register or a MOM matrix
// register depending on the configuration).
func V(i int) Reg { return MkReg(RCVec, i) }

// A returns packed accumulator register ai.
func A(i int) Reg { return MkReg(RCAcc, i) }

// D returns 3D vector register di.
func D(i int) Reg { return MkReg(RC3D, i) }

// P returns the 3D pointer register associated with 3D register di.
func P(i int) Reg { return MkReg(RCPtr, i) }

// Class reports the register file this register belongs to.
func (r Reg) Class() RegClass { return RegClass(r >> regClassShift) }

// Index reports the register's index within its register file.
func (r Reg) Index() int { return int(r & 0x3ff) }

// Valid reports whether r names an actual register (not NoReg).
func (r Reg) Valid() bool { return r.Class() != RCNone }

// String renders the register in assembly syntax.
func (r Reg) String() string {
	switch r.Class() {
	case RCNone:
		return "-"
	case RCInt:
		return fmt.Sprintf("r%d", r.Index())
	case RCVec:
		return fmt.Sprintf("v%d", r.Index())
	case RCAcc:
		return fmt.Sprintf("a%d", r.Index())
	case RC3D:
		return fmt.Sprintf("d%d", r.Index())
	case RCPtr:
		return fmt.Sprintf("p%d", r.Index())
	}
	return fmt.Sprintf("?%d", uint16(r))
}

// Kind partitions dynamic instructions by the pipeline resources they use.
type Kind uint8

const (
	// KindScalar is a scalar integer ALU operation.
	KindScalar Kind = iota
	// KindBranch is a conditional or unconditional control transfer.
	KindBranch
	// KindScalarMem is a scalar load or store (through the L1 cache).
	KindScalarMem
	// KindUSIMD is a 64-bit packed μSIMD ALU operation (MMX-like).
	KindUSIMD
	// KindUSIMDMem is a 64-bit μSIMD load or store (through the L1 cache).
	KindUSIMDMem
	// KindMOM is a MOM 2D vector ALU operation (VL elements).
	KindMOM
	// KindMOMMem is a MOM 2D vector load or store (bypasses L1, uses the
	// vector memory subsystem attached to L2).
	KindMOMMem
	// Kind3DLoad is the paper's 3D vector load (dvload): VL wide elements
	// into a 3D register, through the vector memory subsystem.
	Kind3DLoad
	// Kind3DMove is the paper's 3D vector move (3dvmov): a slice of a 3D
	// register into a MOM register; touches no cache.
	Kind3DMove
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindBranch:
		return "branch"
	case KindScalarMem:
		return "scalar-mem"
	case KindUSIMD:
		return "usimd"
	case KindUSIMDMem:
		return "usimd-mem"
	case KindMOM:
		return "mom"
	case KindMOMMem:
		return "mom-mem"
	case Kind3DLoad:
		return "3d-load"
	case Kind3DMove:
		return "3d-move"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMem reports whether instructions of this kind access memory.
func (k Kind) IsMem() bool {
	switch k {
	case KindScalarMem, KindUSIMDMem, KindMOMMem, Kind3DLoad:
		return true
	}
	return false
}

// IsVectorMem reports whether instructions of this kind use the vector
// memory subsystem (bypassing L1).
func (k Kind) IsVectorMem() bool { return k == KindMOMMem || k == Kind3DLoad }

// Inst is one dynamic instruction: a static operation plus the dynamic
// facts (effective address, branch outcome, sequence number) recorded when
// the trace was generated. It is the unit consumed by the cycle simulator.
type Inst struct {
	Seq  uint64 // dynamic sequence number, 0-based
	Op   Op     // operation
	Kind Kind   // pipeline class

	Dst  Reg // destination register (NoReg for stores/branches)
	Src1 Reg // first source
	Src2 Reg // second source
	Ptr  Reg // 3D pointer register (3dvmov reads and writes it)

	Imm int64 // immediate operand

	// Vector fields.
	VL      int   // vector length in elements (MOM / 3D memory ops)
	Stride  int64 // vector stride in bytes between consecutive elements
	Width   int   // 3dvload: element width in 64-bit words (1..16)
	PtrStep int   // 3dvmov: signed pointer stride Ps in bytes
	Back    bool  // 3dvload: initialize pointer at the end of the register

	// Dynamic facts.
	Addr    uint64 // effective base address for memory operations
	IsStore bool   // memory direction
	Taken   bool   // branch outcome
}

// Bytes reports the total number of bytes this instruction transfers
// to or from memory (0 for non-memory instructions).
func (in *Inst) Bytes() int {
	switch in.Kind {
	case KindScalarMem:
		return int(in.Imm) // scalar ops carry their access size in Imm
	case KindUSIMDMem:
		return 8
	case KindMOMMem:
		return in.VL * MOMElemBytes
	case Kind3DLoad:
		return in.VL * in.Width * 8
	}
	return 0
}

// ElemAddrs appends the per-element (address, size) pairs of a vector
// memory instruction to dst and returns it. For scalar and μSIMD memory
// operations it appends the single access.
func (in *Inst) ElemAddrs(dst []ElemAccess) []ElemAccess {
	switch in.Kind {
	case KindScalarMem:
		dst = append(dst, ElemAccess{Addr: in.Addr, Size: int(in.Imm)})
	case KindUSIMDMem:
		dst = append(dst, ElemAccess{Addr: in.Addr, Size: 8})
	case KindMOMMem:
		for e := 0; e < in.VL; e++ {
			dst = append(dst, ElemAccess{Addr: in.Addr + uint64(int64(e)*in.Stride), Size: MOMElemBytes})
		}
	case Kind3DLoad:
		for e := 0; e < in.VL; e++ {
			dst = append(dst, ElemAccess{Addr: in.Addr + uint64(int64(e)*in.Stride), Size: in.Width * 8})
		}
	}
	return dst
}

// ElemAccess is one element-granularity memory access of a (possibly
// vector) memory instruction.
type ElemAccess struct {
	Addr uint64
	Size int // bytes
}
