package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegEncodingRoundTrip(t *testing.T) {
	cases := []struct {
		r     Reg
		class RegClass
		idx   int
		str   string
	}{
		{R(0), RCInt, 0, "r0"},
		{R(31), RCInt, 31, "r31"},
		{V(5), RCVec, 5, "v5"},
		{A(1), RCAcc, 1, "a1"},
		{D(0), RC3D, 0, "d0"},
		{P(1), RCPtr, 1, "p1"},
	}
	for _, c := range cases {
		if c.r.Class() != c.class {
			t.Errorf("%v: class = %v, want %v", c.r, c.r.Class(), c.class)
		}
		if c.r.Index() != c.idx {
			t.Errorf("%v: index = %d, want %d", c.r, c.r.Index(), c.idx)
		}
		if c.r.String() != c.str {
			t.Errorf("String = %q, want %q", c.r.String(), c.str)
		}
		if !c.r.Valid() {
			t.Errorf("%v: should be valid", c.r)
		}
	}
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
	if NoReg.String() != "-" {
		t.Errorf("NoReg.String() = %q", NoReg.String())
	}
}

func TestRegEncodingProperty(t *testing.T) {
	f := func(class uint8, idx uint16) bool {
		c := RegClass(class%5 + 1)
		i := int(idx % 1024)
		r := MkReg(c, i)
		return r.Class() == c && r.Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindPredicates(t *testing.T) {
	memKinds := map[Kind]bool{
		KindScalar: false, KindBranch: false, KindScalarMem: true,
		KindUSIMD: false, KindUSIMDMem: true, KindMOM: false,
		KindMOMMem: true, Kind3DLoad: true, Kind3DMove: false,
	}
	for k, want := range memKinds {
		if k.IsMem() != want {
			t.Errorf("%v.IsMem() = %v, want %v", k, k.IsMem(), want)
		}
	}
	if !KindMOMMem.IsVectorMem() || !Kind3DLoad.IsVectorMem() {
		t.Error("MOM memory and 3D loads must be vector memory")
	}
	if KindScalarMem.IsVectorMem() || KindUSIMDMem.IsVectorMem() {
		t.Error("scalar/μSIMD memory must not be vector memory")
	}
}

func TestElemAddrsMOM(t *testing.T) {
	in := &Inst{
		Op: OpVLoad, Kind: KindMOMMem,
		Addr: 0x1000, VL: 4, Stride: 176,
	}
	got := in.ElemAddrs(nil)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for e, acc := range got {
		want := uint64(0x1000 + e*176)
		if acc.Addr != want || acc.Size != 8 {
			t.Errorf("elem %d = {%#x,%d}, want {%#x,8}", e, acc.Addr, acc.Size, want)
		}
	}
	if in.Bytes() != 32 {
		t.Errorf("Bytes = %d, want 32", in.Bytes())
	}
}

func TestElemAddrs3D(t *testing.T) {
	in := &Inst{
		Op: Op3DVLoad, Kind: Kind3DLoad,
		Addr: 0x2000, VL: 8, Stride: 176, Width: 16,
	}
	got := in.ElemAddrs(nil)
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	if got[3].Addr != 0x2000+3*176 || got[3].Size != 128 {
		t.Errorf("elem 3 = %+v", got[3])
	}
	if in.Bytes() != 8*128 {
		t.Errorf("Bytes = %d, want %d", in.Bytes(), 8*128)
	}
}

func TestElemAddrsNegativeStride(t *testing.T) {
	in := &Inst{Op: OpVLoad, Kind: KindMOMMem, Addr: 0x1000, VL: 2, Stride: -8}
	got := in.ElemAddrs(nil)
	if got[1].Addr != 0xff8 {
		t.Errorf("elem 1 addr = %#x, want 0xff8", got[1].Addr)
	}
}

func TestElemAddrsScalar(t *testing.T) {
	in := &Inst{Op: OpLoad, Kind: KindScalarMem, Addr: 0x42, Imm: 4}
	got := in.ElemAddrs(nil)
	if len(got) != 1 || got[0].Size != 4 || got[0].Addr != 0x42 {
		t.Errorf("got %+v", got)
	}
	if in.Bytes() != 4 {
		t.Errorf("Bytes = %d, want 4", in.Bytes())
	}
}

func TestOpNamesDistinct(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < Op(NumOps); o++ {
		n := o.Name()
		if n == "" {
			t.Errorf("op %d has empty name", o)
		}
		if strings.HasPrefix(n, "op") && n != "op" {
			// default formatting indicates a missing table entry
			t.Errorf("op %d missing from opTable (name %q)", o, n)
		}
		if prev, dup := seen[n]; dup {
			t.Errorf("duplicate mnemonic %q for ops %d and %d", n, prev, o)
		}
		seen[n] = o
	}
}

func TestLatencies(t *testing.T) {
	if ECSimple.Latency() != 1 {
		t.Error("simple ops must be single cycle")
	}
	if ECPMul.Latency() != 3 || ECPSad.Latency() != 3 || ECIMul.Latency() != 3 {
		t.Error("multiply/SAD pipelines must be 3 cycles")
	}
	if ECMove3D.Latency() != 3 {
		t.Error("3D register file reads are 3 cycles (paper §5.3)")
	}
	if ECMem.Latency() != 0 {
		t.Error("memory latency must be delegated to the memory model")
	}
}

func TestIsPacked(t *testing.T) {
	packed := []Op{OpPAddB, OpPSadBW, OpPShufW, OpPackUSWB, OpPSrlQ}
	for _, o := range packed {
		if !o.IsPacked() {
			t.Errorf("%v should be packed", o)
		}
	}
	notPacked := []Op{OpIAdd, OpVLoad, Op3DVLoad, Op3DVMov, OpVSadAcc, OpBr}
	for _, o := range notPacked {
		if o.IsPacked() {
			t.Errorf("%v should not be packed", o)
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpIAdd, Kind: KindScalar, Dst: R(1), Src1: R(2), Src2: R(3)}, "add      r1, r2, r3"},
		{Inst{Op: OpVLoad, Kind: KindMOMMem, Dst: V(2), Addr: 0x100, VL: 8, Stride: 64},
			"mom.vload v2 [0x100] vl=8 vs=64"},
		{Inst{Op: Op3DVLoad, Kind: Kind3DLoad, Dst: D(0), Addr: 0x200, VL: 8, Stride: 176, Width: 16},
			"dvload   d0 [0x200] vl=8 vs=176 w=16 b=false"},
		{Inst{Op: Op3DVMov, Kind: Kind3DMove, Dst: V(1), Src1: D(0), Ptr: P(0), PtrStep: 1, VL: 8},
			"3dvmov   v1, d0 p0 ps=1 vl=8"},
		{Inst{Op: OpBr, Kind: KindBranch, Src1: R(4), Taken: true}, "br       r4 taken"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm:\n got %q\nwant %q", got, c.want)
		}
	}
}

func TestInstStringAllKindsNonEmpty(t *testing.T) {
	for k := KindScalar; k <= Kind3DMove; k++ {
		in := Inst{Op: OpNop, Kind: k}
		if in.String() == "" {
			t.Errorf("kind %v: empty disassembly", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d: empty name", k)
		}
	}
}
