// Package media generates the deterministic synthetic inputs that stand in
// for the Mediabench data files (video frames, photographic images, speech
// audio). The generators are seeded and reproducible; their statistics are
// chosen so the kernels do representative work: video frames contain
// translating texture (so motion search finds real displacements), images
// have smooth low-frequency content plus detail (so DCT coefficients look
// photographic), and audio is voiced-speech-like (pitched, so long-term
// prediction finds real lags).
package media

// Rand is a small deterministic xorshift64* PRNG, independent of the
// standard library so traces are stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudorandom value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudorandom int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Frame is one grayscale video frame with an explicit row stride, laid out
// exactly as the MPEG reference code lays out luminance planes.
type Frame struct {
	W, H   int
	Stride int
	Pix    []uint8
}

// NewFrame allocates a frame with stride == width.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Stride: w, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-range coordinates clamp to the
// border (the behaviour of padded reference frames).
func (f *Frame) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.Stride+x]
}

// texture is a smooth deterministic pattern: a sum of integer "plasma"
// harmonics plus hashed fine-grain noise, all in integer arithmetic.
func texture(x, y int, seed uint64) uint8 {
	h := uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ seed
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	// Low-frequency component from coarse coordinates.
	cx, cy := x>>3, y>>3
	l := uint64(cx*cx+3*cy*cx+2*cy*cy) ^ seed
	l ^= l >> 13
	return uint8(128 + int(int8(uint8(l)))/2 + int(int8(uint8(h)))/4)
}

// VideoSequence produces n frames of w x h video where the content
// translates by (dx, dy) pixels per frame over a static background, so
// full-search motion estimation has true displacements to find.
func VideoSequence(w, h, n, dx, dy int, seed uint64) []*Frame {
	frames := make([]*Frame, n)
	for t := 0; t < n; t++ {
		f := NewFrame(w, h)
		ox, oy := t*dx, t*dy
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.Pix[y*f.Stride+x] = texture(x+ox, y+oy, seed)
			}
		}
		frames[t] = f
	}
	return frames
}

// AddNoise perturbs every pixel of f by a uniform value in [-amp, amp],
// clamped to the 8-bit range. Used to make inter-frame residuals nonzero
// even for perfectly translated content.
func AddNoise(f *Frame, amp int, seed uint64) {
	r := NewRand(seed)
	for i := range f.Pix {
		v := int(f.Pix[i]) + r.Intn(2*amp+1) - amp
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		f.Pix[i] = uint8(v)
	}
}

// Image is an interleaved 8-bit RGB image (JPEG input layout).
type Image struct {
	W, H int
	Pix  []uint8 // 3*W*H bytes, RGB interleaved, row-major
}

// NewImage generates a deterministic photographic-statistics RGB image.
func NewImage(w, h int, seed uint64) *Image {
	img := &Image{W: w, H: h, Pix: make([]uint8, 3*w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 3 * (y*w + x)
			img.Pix[base+0] = texture(x, y, seed)
			img.Pix[base+1] = texture(x, y, seed^0x55aa)
			img.Pix[base+2] = texture(x, y, seed^0xaa55)
		}
	}
	return img
}

// Gray returns a single-channel image (for grayscale JPEG paths).
func Gray(w, h int, seed uint64) *Frame {
	f := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Pix[y*f.Stride+x] = texture(x, y, seed)
		}
	}
	return f
}

// Speech produces n 16-bit PCM samples of voiced-speech-like audio: a
// pitched pulse train through a slowly varying envelope plus noise. The
// pitch period is chosen inside GSM's long-term-prediction lag range
// (40..120 samples) so LTP search finds genuine correlations.
func Speech(n int, seed uint64) []int16 {
	r := NewRand(seed)
	out := make([]int16, n)
	period := 55 + r.Intn(30) // pitch period in samples
	var excite int32
	for i := 0; i < n; i++ {
		if i%period == 0 {
			excite = 6000 + int32(r.Intn(3000))
		}
		// Decaying pulse + envelope modulation + noise.
		excite = excite * 7 / 8
		env := int32(2048 + 1024*((i/160)%3))
		noise := int32(r.Intn(513)) - 256
		v := excite + noise + (env*int32(i%period))/int32(period)/4
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = int16(v)
	}
	return out
}
