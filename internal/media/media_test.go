package media

import "testing"

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds must differ")
	}
	if NewRand(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if NewRand(1).Intn(0) != 0 {
		t.Error("Intn(0) must be 0")
	}
}

func TestVideoSequenceTranslation(t *testing.T) {
	frames := VideoSequence(64, 48, 3, 2, 1, 42)
	if len(frames) != 3 {
		t.Fatal("frame count")
	}
	f0, f1 := frames[0], frames[1]
	// Content translates by (-dx, -dy) on screen: pixel (x,y) of frame 1
	// equals texture at (x+dx, y+dy), i.e. frame 0 shifted.
	match := 0
	for y := 8; y < 40; y++ {
		for x := 8; x < 56; x++ {
			if f1.At(x, y) == f0.At(x+2, y+1) {
				match++
			}
		}
	}
	total := 32 * 48
	if match != total {
		t.Errorf("translation mismatch: %d/%d pixels", match, total)
	}
}

func TestFrameClamping(t *testing.T) {
	f := NewFrame(8, 8)
	f.Pix[0] = 99
	f.Pix[7*8+7] = 55
	if f.At(-3, -3) != 99 {
		t.Error("negative coords must clamp to (0,0)")
	}
	if f.At(100, 100) != 55 {
		t.Error("large coords must clamp to corner")
	}
}

func TestImageShape(t *testing.T) {
	img := NewImage(16, 8, 1)
	if len(img.Pix) != 3*16*8 {
		t.Fatal("RGB buffer size")
	}
	// Channels must differ somewhere (different seeds per channel).
	differ := false
	for i := 0; i < 16*8; i++ {
		if img.Pix[3*i] != img.Pix[3*i+1] {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("R and G channels identical everywhere")
	}
}

func TestSpeechPitched(t *testing.T) {
	s := Speech(4000, 11)
	if len(s) != 4000 {
		t.Fatal("length")
	}
	// The signal must have nonzero energy and some large pulses.
	var energy int64
	peak := int16(0)
	for _, v := range s {
		energy += int64(v) * int64(v)
		if v > peak {
			peak = v
		}
	}
	if energy == 0 || peak < 1000 {
		t.Errorf("speech too quiet: peak %d", peak)
	}
	// Autocorrelation at some lag in 40..120 must beat nearby non-pitch lags
	// (i.e. the signal is genuinely periodic in the LTP search range).
	corr := func(lag int) int64 {
		var c int64
		for i := lag; i < 2000; i++ {
			c += int64(s[i]) * int64(s[i-lag])
		}
		return c
	}
	best, bestLag := int64(0), 0
	for lag := 40; lag <= 120; lag++ {
		if c := corr(lag); c > best {
			best, bestLag = c, lag
		}
	}
	if bestLag == 0 {
		t.Fatal("no positive correlation found in LTP range")
	}
	if best <= corr(33) {
		t.Errorf("pitch lag %d not clearly better than off-pitch lag", bestLag)
	}
}

func TestGray(t *testing.T) {
	g := Gray(32, 32, 5)
	var sum int
	for _, p := range g.Pix {
		sum += int(p)
	}
	mean := sum / len(g.Pix)
	if mean < 64 || mean > 192 {
		t.Errorf("gray mean %d implausible", mean)
	}
}
