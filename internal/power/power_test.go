package power

import (
	"testing"

	"repro/internal/vmem"
)

func TestZeroCycles(t *testing.T) {
	b := Estimate(DefaultParams(), 0, &vmem.Stats{}, 0, 0)
	if b.Total() != 0 {
		t.Error("zero-length run must have zero power")
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	p := DefaultParams()
	low := Estimate(p, 1000, &vmem.Stats{Accesses: 100, Words: 100}, 0, 0)
	high := Estimate(p, 1000, &vmem.Stats{Accesses: 200, Words: 200}, 0, 0)
	if high.L2Watts != 2*low.L2Watts {
		t.Errorf("power must be linear in activity: %v vs %v", low.L2Watts, high.L2Watts)
	}
}

func TestPowerInverseInTime(t *testing.T) {
	p := DefaultParams()
	st := &vmem.Stats{Accesses: 1000, Words: 4000}
	fast := Estimate(p, 1000, st, 0, 0)
	slow := Estimate(p, 2000, st, 0, 0)
	if fast.L2Watts != 2*slow.L2Watts {
		t.Error("same energy over twice the time must halve power")
	}
}

func TestD3RFNegligible(t *testing.T) {
	// A representative 3D mix: wide loads plus register reads must cost
	// far less in the 3D RF than in the L2 (the paper's §6.3 claim).
	p := DefaultParams()
	st := &vmem.Stats{Accesses: 10000, Words: 100000, D3Words: 100000}
	b := Estimate(p, 100000, st, 0, 50000)
	if b.D3Watts >= 0.2*b.L2Watts {
		t.Errorf("3D RF power (%f) must be negligible next to L2 (%f)", b.D3Watts, b.L2Watts)
	}
}

func TestScalarSideCharged(t *testing.T) {
	p := DefaultParams()
	withScalar := Estimate(p, 1000, &vmem.Stats{}, 100, 0)
	if withScalar.L2Watts <= 0 {
		t.Error("scalar L2 fills must contribute energy")
	}
}

func TestPaperPowerRange(t *testing.T) {
	// At the access densities our workloads produce (~0.1-0.5 accesses
	// per cycle), average power must land in the paper's 1-20 W band.
	p := DefaultParams()
	for _, density := range []float64{0.1, 0.3, 0.5} {
		cycles := int64(100000)
		acc := uint64(density * float64(cycles))
		b := Estimate(p, cycles, &vmem.Stats{Accesses: acc, Words: acc * 2}, 0, 0)
		if b.L2Watts < 1 || b.L2Watts > 25 {
			t.Errorf("density %.1f: %.1f W outside the paper's range", density, b.L2Watts)
		}
	}
}
