// Package power estimates the memory-subsystem power of §6.3: the L2
// cache (distributed over 32 sub-arrays, 0.18μm, 1 GHz) plus the 3D
// vector register file, in the style of Rixner et al.'s capacitance
// models.
//
// Energy per cache access is decomposed into a sub-array activation term
// (decode, tag match, word line, sense amps) and a per-word data transfer
// term. The constants are calibrated so that average power lands in the
// paper's reported range (Fig 11: roughly 2-20 W across the benchmarks);
// what the experiments argue from — the ordering multi-banked > vector
// cache > vector cache + 3D RF, and the negligible 3D RF share — is
// insensitive to the calibration.
package power

import "repro/internal/vmem"

// Params holds the energy model constants.
type Params struct {
	// ClockGHz converts cycles to time.
	ClockGHz float64
	// L2ActivationNJ is charged per L2 access (sub-array activation).
	L2ActivationNJ float64
	// L2WordNJ is charged per 64-bit word transferred to or from L2.
	L2WordNJ float64
	// ScalarFillWords is the width in words charged for an L1 miss fill.
	ScalarFillWords int
	// D3WriteWordNJ is charged per word written into a 3D register lane.
	D3WriteWordNJ float64
	// D3ReadElemNJ is charged per element read by a 3dvmov.
	D3ReadElemNJ float64
}

// DefaultParams is the 0.18μm, 1 GHz calibration.
func DefaultParams() Params {
	return Params{
		ClockGHz:        1.0,
		L2ActivationNJ:  18,
		L2WordNJ:        1,
		ScalarFillWords: 4,
		D3WriteWordNJ:   0.3,
		D3ReadElemNJ:    0.1,
	}
}

// Breakdown is the average power of the memory subsystem components.
type Breakdown struct {
	L2Watts float64
	D3Watts float64
}

// Total returns the combined average power.
func (b Breakdown) Total() float64 { return b.L2Watts + b.D3Watts }

// Estimate computes average power over a run of the given length from the
// vector memory statistics, the scalar-side L2 accesses, and the 3dvmov
// element count.
func Estimate(p Params, cycles int64, vm *vmem.Stats, scalarL2 uint64, d3MoveElems uint64) Breakdown {
	if cycles <= 0 {
		return Breakdown{}
	}
	l2Accesses := float64(vm.Accesses) + float64(scalarL2)
	l2Words := float64(vm.Words) + float64(scalarL2)*float64(p.ScalarFillWords)
	l2NJ := l2Accesses*p.L2ActivationNJ + l2Words*p.L2WordNJ

	d3NJ := float64(vm.D3Words)*p.D3WriteWordNJ + float64(d3MoveElems)*p.D3ReadElemNJ

	// Average power: energy / time; at ClockGHz, one cycle is 1/GHz ns,
	// so W = nJ / (cycles / GHz).
	t := float64(cycles) / p.ClockGHz
	return Breakdown{L2Watts: l2NJ / t, D3Watts: d3NJ / t}
}
