// Package cache implements the set-associative cache models of the
// paper's memory hierarchy (§5.3): a 64KB 2-way write-through L1 with
// 32-byte lines and a 2MB 4-way write-back L2 with 128-byte lines, plus
// the exclusive-bit coherence filter that lets vector accesses bypass the
// L1 safely.
//
// The models track tags, LRU state, dirty bits and statistics; timing is
// composed by the core and vector memory subsystems from the configured
// latencies.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name      string
	Size      int   // total bytes
	LineSize  int   // bytes per line (power of two)
	Ways      int   // associativity
	WriteBack bool  // write-back with write-allocate; else write-through
	Latency   int64 // access latency in cycles
}

// L2LineBytes is the L2 line size and therefore the transfer
// granularity of every main-memory request: the DRAM backends derive
// their line size from this same constant so the two can never drift
// apart (core.NewMemSystem still cross-checks them at construction).
const L2LineBytes = 128

// L1Config returns the paper's L1 data cache configuration.
func L1Config() Config {
	return Config{Name: "L1", Size: 64 << 10, LineSize: 32, Ways: 2, WriteBack: false, Latency: 1}
}

// L2Config returns the paper's L2 cache configuration with the given
// latency (20 cycles in the base system; 40 and 60 in the §6.2 study).
func L2Config(latency int64) Config {
	return Config{Name: "L2", Size: 2 << 20, LineSize: L2LineBytes, Ways: 4, WriteBack: true, Latency: latency}
}

// Stats counts cache events. The demand counters (Accesses, Hits,
// Misses) never include prefetch fills: FillPrefetch keeps its own
// counters so enabling a prefetcher cannot shift the hit-rate figures
// the paper's tables report.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64
	Invalidates uint64

	// PrefetchFills counts lines installed by FillPrefetch.
	// PrefetchedHits counts demand accesses that found a line a
	// prefetch installed (the access clears the line's prefetched
	// mark, so each fill is counted at most once). PrefetchUseless
	// counts prefetched lines evicted or invalidated with the mark
	// still set — lines fetched and never wanted.
	PrefetchFills   uint64
	PrefetchedHits  uint64
	PrefetchUseless uint64
}

// HitRate returns hits/accesses (1 for an untouched cache).
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// inL1 is the exclusive-bit of the coherence protocol: set when the
	// line may also be cached in the L1, so vector writes know to
	// invalidate it there.
	inL1 bool
	// pf marks a line installed by a prefetch and not yet touched by a
	// demand access; the first demand access reports and clears it.
	pf  bool
	lru uint64
}

// Cache is one set-associative cache array.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	tick      uint64
	Stats     Stats
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache {
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nSets))
	}
	sets := make([][]line, nSets)
	backing := make([]line, nLines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1), lineShift: shift}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) find(addr uint64) (set []line, way int) {
	tag := addr >> c.lineShift
	set = c.sets[tag&c.setMask]
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return set, w
		}
	}
	return set, -1
}

// Result reports what one cache access did.
type Result struct {
	Hit        bool
	Writeback  bool   // a dirty victim was evicted
	VictimAddr uint64 // line address of the dirty victim when Writeback

	// Prefetched reports that a demand access hit a line a prefetch
	// installed that no demand had touched yet (the mark is cleared, so
	// at most one access per fill sees it). The caller may still be
	// waiting on the line's fill in the MSHR file — the vmem layer
	// resolves that into the PrefetchHit / PrefetchLate split.
	Prefetched bool
}

// Access looks up the line containing addr, allocating it on a miss
// (write misses allocate only in write-back caches; a write-through cache
// passes write misses downstream without allocation). fromL1 marks L2
// fills triggered by the scalar side, setting the exclusive bit.
func (c *Cache) Access(addr uint64, write, fromL1 bool) Result {
	c.Stats.Accesses++
	c.tick++
	set, w := c.find(addr)
	if w >= 0 {
		c.Stats.Hits++
		set[w].lru = c.tick
		if write {
			set[w].dirty = c.cfg.WriteBack
		}
		if fromL1 {
			set[w].inL1 = true
		}
		res := Result{Hit: true}
		if set[w].pf {
			set[w].pf = false
			c.Stats.PrefetchedHits++
			res.Prefetched = true
		}
		return res
	}
	c.Stats.Misses++
	if write && !c.cfg.WriteBack {
		return Result{} // write-through, no write-allocate
	}
	res := c.allocate(set, addr, write && c.cfg.WriteBack, fromL1, false)
	return res
}

// allocate installs the line containing addr into set, evicting the LRU
// way, and reports any dirty victim. pf marks the fill as a prefetch.
func (c *Cache) allocate(set []line, addr uint64, dirty, fromL1, pf bool) Result {
	victim := c.victimWay(set)
	res := Result{}
	if set[victim].valid {
		c.Stats.Evictions++
		if set[victim].pf {
			c.Stats.PrefetchUseless++
		}
		if set[victim].dirty {
			c.Stats.Writebacks++
			res.Writeback = true
			res.VictimAddr = set[victim].tag << c.lineShift
		}
	}
	set[victim] = line{tag: addr >> c.lineShift, valid: true, dirty: dirty,
		inL1: fromL1, pf: pf, lru: c.tick}
	return res
}

// victimWay picks the way a fill of this set would evict: the first
// invalid way, else the LRU way.
func (c *Cache) victimWay(set []line) int {
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			return i
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	return victim
}

// FillPrefetch installs the line containing addr as a clean prefetched
// line through the normal allocate path — the same LRU victim selection
// and dirty-victim write-back reporting a demand fill gets — without
// counting a demand access (the Accesses/Hits/Misses counters and the
// exclusive bit are untouched). Filling a line already present is a
// no-op that reports a hit. The first demand access to the filled line
// reports Prefetched and clears the mark; a line evicted with the mark
// still set counts as PrefetchUseless.
func (c *Cache) FillPrefetch(addr uint64) Result {
	c.tick++
	set, w := c.find(addr)
	if w >= 0 {
		return Result{Hit: true}
	}
	c.Stats.PrefetchFills++
	return c.allocate(set, addr, false, false, true)
}

// PeekVictim reports, without side effects, what a fill of addr's line
// would do: present means the line is already cached (no eviction);
// otherwise victim/dirty describe the line the fill would evict (dirty
// false with victim 0 when the set still has an invalid way). The
// prefetcher uses it to drop a prefetch whose dirty victim could not be
// posted, before committing the fill.
func (c *Cache) PeekVictim(addr uint64) (victim uint64, dirty, present bool) {
	set, w := c.find(addr)
	if w >= 0 {
		return 0, false, true
	}
	v := c.victimWay(set)
	if !set[v].valid {
		return 0, false, false
	}
	return set[v].tag << c.lineShift, set[v].dirty, false
}

// Contains reports whether the line holding addr is present (no LRU or
// statistics side effects).
func (c *Cache) Contains(addr uint64) bool {
	_, w := c.find(addr)
	return w >= 0
}

// Invalidate drops the line containing addr, returning whether it was
// present (its dirty data is discarded; callers on write-through caches
// lose nothing).
func (c *Cache) Invalidate(addr uint64) bool {
	set, w := c.find(addr)
	if w < 0 {
		return false
	}
	c.Stats.Invalidates++
	if set[w].pf {
		c.Stats.PrefetchUseless++
	}
	set[w] = line{}
	return true
}

// ExclusiveInL1 reports and clears the exclusive bit of the line holding
// addr: true means a vector write must invalidate the L1 copy.
func (c *Cache) ExclusiveInL1(addr uint64) bool {
	set, w := c.find(addr)
	if w < 0 || !set[w].inL1 {
		return false
	}
	set[w].inL1 = false
	return true
}

// Lines returns the number of lines the cache holds.
func (c *Cache) Lines() int { return c.cfg.Size / c.cfg.LineSize }
