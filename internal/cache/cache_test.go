package cache

import (
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 32B lines = 256 bytes.
	return New(Config{Name: "t", Size: 256, LineSize: 32, Ways: 2, WriteBack: true, Latency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	if c.Access(0x100, false, false).Hit {
		t.Fatal("first access must miss")
	}
	if !c.Access(0x100, false, false).Hit {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x11f, false, false).Hit {
		t.Fatal("same line must hit")
	}
	if c.Access(0x120, false, false).Hit {
		t.Fatal("next line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Three lines mapping to the same set (set index bits = addr>>5 & 3).
	a, b, d := uint64(0x000), uint64(0x080), uint64(0x100) // set 0 each (32B lines, 4 sets)
	c.Access(a, false, false)
	c.Access(b, false, false)
	c.Access(a, false, false) // a more recent than b
	c.Access(d, false, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("a and d must be resident")
	}
	if c.Contains(b) {
		t.Fatal("b must have been evicted (LRU)")
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := tiny()
	c.Access(0x000, true, false) // dirty
	c.Access(0x080, false, false)
	r := c.Access(0x100, false, false) // evicts dirty 0x000
	if !r.Writeback {
		t.Error("evicting a dirty line must write back")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := New(Config{Size: 256, LineSize: 32, Ways: 2, WriteBack: false, Latency: 1})
	c.Access(0x40, true, false)
	if c.Contains(0x40) {
		t.Error("write-through cache must not allocate on write miss")
	}
	c.Access(0x40, false, false)
	c.Access(0x40, true, false) // write hit: line stays, not dirty
	r := struct{}{}
	_ = r
	if !c.Contains(0x40) {
		t.Error("line must remain after write hit")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Access(0x200, false, false)
	if !c.Invalidate(0x210) {
		t.Fatal("invalidate of resident line must report true")
	}
	if c.Contains(0x200) {
		t.Fatal("line must be gone")
	}
	if c.Invalidate(0x200) {
		t.Fatal("invalidate of absent line must report false")
	}
	if c.Stats.Invalidates != 1 {
		t.Errorf("invalidates = %d", c.Stats.Invalidates)
	}
}

func TestExclusiveBit(t *testing.T) {
	c := tiny()
	c.Access(0x40, false, true) // filled by the L1 side
	if !c.ExclusiveInL1(0x40) {
		t.Fatal("exclusive bit must be set by fromL1 fills")
	}
	if c.ExclusiveInL1(0x40) {
		t.Fatal("exclusive bit must clear after the check")
	}
	c.Access(0x40, false, true) // re-set
	if !c.ExclusiveInL1(0x40) {
		t.Fatal("exclusive bit must be settable again")
	}
	c.Access(0x80, false, false)
	if c.ExclusiveInL1(0x80) {
		t.Fatal("vector-filled lines must not be marked exclusive")
	}
}

func TestPaperConfigs(t *testing.T) {
	l1 := New(L1Config())
	if l1.Lines() != 64<<10/32 {
		t.Error("L1 line count")
	}
	l2 := New(L2Config(20))
	if l2.Lines() != 2<<20/128 {
		t.Error("L2 line count")
	}
	if l2.Config().Latency != 20 || l1.Config().Latency != 1 {
		t.Error("latencies")
	}
	if l2.LineAddr(0x12345) != 0x12345&^uint64(127) {
		t.Error("LineAddr")
	}
}

// Property: the cache agrees with a reference model that tracks resident
// line addresses per set with LRU order.
func TestAgainstReferenceModel(t *testing.T) {
	c := tiny()
	type key struct{ set int }
	ref := map[int][]uint64{} // set -> line tags, most recent last
	_ = key{}
	access := func(addr uint64) bool {
		lineTag := addr >> 5
		set := int(lineTag & 3)
		lst := ref[set]
		for i, tg := range lst {
			if tg == lineTag {
				lst = append(append(lst[:i], lst[i+1:]...), lineTag)
				ref[set] = lst
				return true
			}
		}
		lst = append(lst, lineTag)
		if len(lst) > 2 {
			lst = lst[1:]
		}
		ref[set] = lst
		return false
	}
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a)
			want := access(addr)
			got := c.Access(addr, false, false).Hit
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	c := tiny()
	if c.Stats.HitRate() != 1 {
		t.Error("empty cache hit rate must be 1")
	}
	c.Access(0, false, false)
	c.Access(0, false, false)
	if hr := c.Stats.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v", hr)
	}
}
