package vmem

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
)

const lineB = cache.L2LineBytes

// observeAll feeds a sequence of line addresses and collects every
// prediction.
func observeAll(p *Prefetcher, lines []uint64) []uint64 {
	var out []uint64
	for _, l := range lines {
		out = append(out, p.Observe(l)...)
	}
	return out
}

// TestStreamTableSequential: a dense sequential miss stream confirms
// after the second stride and then keeps Degree lines in flight.
func TestStreamTableSequential(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Degree: 2}, lineB)
	preds := observeAll(p, []uint64{0x10000, 0x10000 + lineB})
	if len(preds) != 0 {
		t.Fatalf("one stride must not predict yet (got %d predictions)", len(preds))
	}
	// Third miss confirms: predict the next Degree lines.
	preds = p.Observe(0x10000 + 2*lineB)
	want := []uint64{0x10000 + 3*lineB, 0x10000 + 4*lineB}
	if len(preds) != len(want) || preds[0] != want[0] || preds[1] != want[1] {
		t.Fatalf("predictions = %#x, want %#x", preds, want)
	}
	// The next advance extends coverage by one line, not Degree lines.
	preds = p.Observe(0x10000 + 3*lineB)
	if len(preds) != 1 || preds[0] != 0x10000+5*lineB {
		t.Fatalf("advance predictions = %#x, want the single next line", preds)
	}
}

// TestStreamTableStrided: a multi-line stride within the training
// window trains and predicts along the stride, descending included.
func TestStreamTableStrided(t *testing.T) {
	for _, stride := range []int64{3 * lineB, -2 * lineB} {
		p := NewPrefetcher(PrefetchConfig{Streams: 4, Degree: 2}, lineB)
		base := int64(0x40000)
		var seq []uint64
		for i := int64(0); i < 3; i++ {
			seq = append(seq, uint64(base+i*stride))
		}
		preds := observeAll(p, seq)
		if len(preds) != 2 {
			t.Fatalf("stride %d: predictions = %d, want 2", stride, len(preds))
		}
		if preds[0] != uint64(base+3*stride) || preds[1] != uint64(base+4*stride) {
			t.Fatalf("stride %d: predictions = %#x", stride, preds)
		}
	}
}

// TestStreamTableIgnoresFarMisses: a miss beyond the training window
// allocates a new stream instead of capturing an existing one.
func TestStreamTableIgnoresFarMisses(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Degree: 2}, lineB)
	observeAll(p, []uint64{0x10000, 0x10000 + lineB}) // stream A trained
	// A miss a frame-row away must not retrain stream A...
	p.Observe(0x10000 + 15*lineB)
	if got := p.Stats().Streams; got != 2 {
		t.Fatalf("far miss must allocate its own stream (streams = %d, want 2)", got)
	}
	// ...so stream A still predicts on its next advance.
	if preds := p.Observe(0x10000 + 2*lineB); len(preds) == 0 {
		t.Fatal("far miss destroyed the trained stream")
	}
}

// TestStreamTableLRU: a table of one entry thrashes between two
// interleaved distant streams and never confirms either.
func TestStreamTableLRU(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 1, Degree: 2}, lineB)
	var preds []uint64
	for i := uint64(0); i < 4; i++ {
		preds = append(preds, p.Observe(0x10000+i*lineB)...)
		preds = append(preds, p.Observe(0x900000+i*lineB)...)
	}
	if len(preds) != 0 {
		t.Fatalf("a thrashing 1-entry table predicted %d lines", len(preds))
	}
	if p.Stats().Streams < 4 {
		t.Errorf("interleaved distant streams must keep reallocating (streams = %d)", p.Stats().Streams)
	}
}

// TestStreamTableZeroStreams: a disabled prefetcher never predicts and
// never counts trains.
func TestStreamTableZeroStreams(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 0, Degree: 4}, lineB)
	if preds := observeAll(p, []uint64{0, lineB, 2 * lineB, 3 * lineB}); len(preds) != 0 {
		t.Fatalf("disabled prefetcher predicted %d lines", len(preds))
	}
	if p.Stats().Trains != 0 {
		t.Error("disabled prefetcher counted trains")
	}
}

// pfFile builds a non-blocking MSHR file with a prefetcher attached
// over a fresh L2 and the given backend.
func pfFile(b dram.Backend, mshrs, streams, degree int) (*MSHRFile, *cache.Cache) {
	l2 := cache.New(cache.L2Config(20))
	f := NewMSHRFile(mshrTiming(b), mshrs)
	f.AttachPrefetcher(NewPrefetcher(PrefetchConfig{Streams: streams, Degree: degree}, lineB), l2)
	return f, l2
}

// demandMiss registers a one-line demand miss the way a subsystem
// would: the L2 access happens first (allocating the line), then the
// miss batch registers.
func demandMiss(f *MSHRFile, l2 *cache.Cache, addr uint64, at int64) *Pending {
	l2.Access(addr, false, false)
	return f.Register([]dram.Request{{Addr: addr, At: at}}, nil, at+20)
}

// TestPrefetchInjectsIntoPendingBatch: a confirmed stream's predicted
// lines join the pending batch as prefetch-tagged requests, fill the
// L2, and are submitted with the demand batch in one flush.
func TestPrefetchInjectsIntoPendingBatch(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 2)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	p := demandMiss(f, l2, 0x10000+2*lineB, 20) // confirms the stream
	st := f.PrefetchStats()
	if st.Issued != 2 {
		t.Fatalf("issued = %d, want 2 (degree)", st.Issued)
	}
	if !l2.Contains(0x10000+3*lineB) || !l2.Contains(0x10000+4*lineB) {
		t.Error("predicted lines must fill the L2 via the normal path")
	}
	p.Done() // force the flush
	var pfReads, reads int
	for _, b := range cb.batches {
		for _, q := range b {
			if q.Write {
				continue
			}
			reads++
			if q.Prefetch {
				pfReads++
			}
		}
	}
	if pfReads != 2 || reads != 5 {
		t.Fatalf("flushed %d reads (%d prefetch), want 5 (2 prefetch)", reads, pfReads)
	}
}

// TestPrefetchHitVsLate: a demand touch after the fill completes is a
// hit; a touch while the fill is in flight is late and the handle
// waits for the fill.
func TestPrefetchHitVsLate(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 2)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	demandMiss(f, l2, 0x10000+2*lineB, 20) // prefetch lines 3,4 issued at 40
	// Touch line 3 while its fill (done = 140) is in flight: late.
	res := l2.Access(0x10000+3*lineB, false, false)
	if !res.Hit || !res.Prefetched {
		t.Fatalf("prefetched line must hit with the mark set (res = %+v)", res)
	}
	p := f.Register(nil, []PFTouch{{Line: 0x10000 + 3*lineB, At: 60}}, 60)
	if p == nil {
		t.Fatal("late touch must return a handle")
	}
	if got := p.Done(); got != 140 {
		t.Fatalf("late touch done = %d, want the prefetch fill's 140", got)
	}
	// Touch line 4 after its fill completed: hit, nothing outstanding.
	res = l2.Access(0x10000+4*lineB, false, false)
	if !res.Prefetched {
		t.Fatal("second prefetched line lost its mark")
	}
	p2 := f.Register(nil, []PFTouch{{Line: 0x10000 + 4*lineB, At: 500}}, 500)
	if !p2.Settled(500) {
		t.Error("hit touch must already be settled")
	}
	st := f.PrefetchStats()
	if st.Hits != 1 || st.Late != 1 {
		t.Fatalf("hit/late = %d/%d, want 1/1", st.Hits, st.Late)
	}
}

// TestPrefetchDroppedWhenMSHRFull: with the file packed by demand
// misses, predictions are dropped — no flush, no stall, no fill.
func TestPrefetchDroppedWhenMSHRFull(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 3, 4, 2)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 1)
	flushesBefore := f.Stats().Flushes
	demandMiss(f, l2, 0x10000+2*lineB, 2) // file now holds 3 demands; predictions find it full
	st := f.PrefetchStats()
	if st.DroppedMSHR != 2 {
		t.Fatalf("dropped = %d, want 2 (both predictions)", st.DroppedMSHR)
	}
	if st.Issued != 0 {
		t.Fatalf("issued = %d, want 0", st.Issued)
	}
	if l2.Contains(0x10000 + 3*lineB) {
		t.Error("a dropped prefetch must not fill the L2")
	}
	if f.Stats().Flushes != flushesBefore {
		t.Error("a dropped prefetch must not force a flush")
	}
	if f.Stats().FullStalls != 0 {
		t.Error("prefetch drops must not count as demand full-stalls")
	}
}

// TestPrefetchQuota: unresolved prefetches may hold at most a quarter
// of the file, so a long stream cannot squeeze demand misses out.
func TestPrefetchQuota(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 8, 4, 8) // quota = 2
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 1)
	demandMiss(f, l2, 0x10000+2*lineB, 2) // degree 8 predicted, quota 2
	st := f.PrefetchStats()
	if st.Issued != 2 {
		t.Fatalf("issued = %d, want the quota's 2", st.Issued)
	}
	if st.DroppedMSHR != 6 {
		t.Fatalf("dropped = %d, want 6", st.DroppedMSHR)
	}
}

// TestPrefetchUselessCounted: a prefetched line evicted untouched
// counts as useless via the L2's accounting.
func TestPrefetchUselessCounted(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 2)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	demandMiss(f, l2, 0x10000+2*lineB, 20)
	if f.PrefetchStats().Issued != 2 {
		t.Fatal("setup: prefetches not issued")
	}
	// Evict one prefetched line without ever touching it: the L2 is
	// 4-way, so four conflicting fills push it out.
	victimLine := uint64(0x10000 + 3*lineB)
	setStride := uint64(l2.Config().Size / l2.Config().Ways)
	for i := uint64(1); i <= 4; i++ {
		l2.Access(victimLine+i*setStride, false, false)
	}
	if got := f.PrefetchStats().Useless; got != 1 {
		t.Fatalf("useless = %d, want 1", got)
	}
}

// TestPrefetchEvictedThenMissedCountsOnce: a prefetched line evicted
// untouched scores Useless; a later demand miss that merges onto the
// still-in-flight entry reuses its fill but must not score the same
// issue a second time as Late or Hit.
func TestPrefetchEvictedThenMissedCountsOnce(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 2)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	demandMiss(f, l2, 0x10000+2*lineB, 20) // prefetches lines 3 and 4
	// Evict prefetched line 3 untouched: conflicting fills push it out
	// of its 4-way set.
	victimLine := uint64(0x10000 + 3*lineB)
	setStride := uint64(l2.Config().Size / l2.Config().Ways)
	for i := uint64(1); i <= 4; i++ {
		l2.Access(victimLine+i*setStride, false, false)
	}
	if got := f.PrefetchStats().Useless; got != 1 {
		t.Fatalf("useless = %d, want 1 after the untouched eviction", got)
	}
	// A demand miss to the evicted line merges onto the in-flight
	// prefetch entry (its fill still serves the demand)...
	p := demandMiss(f, l2, victimLine, 60)
	if f.Stats().Merges != 1 {
		t.Fatalf("merges = %d, want 1", f.Stats().Merges)
	}
	if got := p.Done(); got != 140 {
		t.Fatalf("merged demand done = %d, want the prefetch fill's 140", got)
	}
	// ...but the issue keeps its single Useless outcome.
	st := f.PrefetchStats()
	if st.Hits != 0 || st.Late != 0 || st.Useless != 1 {
		t.Fatalf("outcome = hits %d / late %d / useless %d, want 0/0/1", st.Hits, st.Late, st.Useless)
	}
	if st.Hits+st.Late+st.Useless > st.Issued {
		t.Fatalf("outcomes exceed issues: %+v", st)
	}
}

// TestPrefetchWQFullDrops: a prediction whose fill would evict a dirty
// victim onto a write queue with no room is dropped, not stalled.
func TestPrefetchWQFullDrops(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Channels = 1
	cfg.WQDepth, cfg.WQDrain = 4, 2 // room for one posted write before the threshold
	cfg.WQLow, cfg.WQIdle = 0, 0    // the preset's tuned drains would sit above the tiny threshold
	sd := dram.NewSDRAM(cfg)
	f, l2 := pfFile(sd, 32, 4, 2)

	// Dirty the set the predictions will land in: fill all four ways of
	// the predicted lines' sets with stores so any prefetch fill must
	// evict a dirty victim.
	setStride := uint64(l2.Config().Size / l2.Config().Ways)
	for _, line := range []uint64{0x10000 + 3*lineB, 0x10000 + 4*lineB} {
		for w := uint64(0); w < 4; w++ {
			l2.Access(line+(w+1)*setStride, true, false)
		}
	}
	// Saturate the channel's write queue beyond the threshold check.
	if sd.WriteRoom(0x10000) {
		// Post writes until the advisory check reports no room.
		var batch []dram.Request
		for i := uint64(0); sd.WriteRoom(0x10000); i++ {
			batch = append(batch[:0], dram.Request{Addr: 0x900000 + i*lineB, Write: true, At: 0})
			sd.Submit(batch)
		}
	}
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	demandMiss(f, l2, 0x10000+2*lineB, 20)
	st := f.PrefetchStats()
	if st.DroppedWQ != 2 {
		t.Fatalf("wq drops = %d, want 2 (stats: %+v)", st.DroppedWQ, st)
	}
	if l2.Contains(0x10000 + 3*lineB) {
		t.Error("a wq-dropped prefetch must not fill the L2")
	}
}

// TestDrainWithPrefetchInFlight: Drain flushes prefetch entries with
// the demands; every pending request reaches the backend exactly once
// and the file's pending batch is empty afterwards.
func TestDrainWithPrefetchInFlight(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 4)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	p := demandMiss(f, l2, 0x10000+2*lineB, 20)
	if f.PrefetchStats().Issued != 4 {
		t.Fatalf("setup: issued = %d, want 4", f.PrefetchStats().Issued)
	}
	if len(cb.batches) != 0 {
		t.Fatal("nothing should have been submitted before the drain")
	}
	f.Drain()
	if len(cb.batches) != 1 {
		t.Fatalf("drain must submit the whole pending batch once (%d submits)", len(cb.batches))
	}
	if got := len(cb.batches[0]); got != 7 {
		t.Fatalf("drained batch has %d requests, want 7 (3 demand + 4 prefetch)", got)
	}
	// Handles resolve off the drained batch without further submits.
	if p.Done() <= 0 {
		t.Fatal("demand handle unresolved after drain")
	}
	f.Drain() // idempotent
	if len(cb.batches) != 1 {
		t.Error("a second drain with nothing pending must not submit")
	}
}

// TestPrefetchNeverGatesDemandHandle: an instruction that triggers
// prefetches completes on its own misses alone — the prefetch fills
// finish later and do not extend the handle.
func TestPrefetchNeverGatesDemandHandle(t *testing.T) {
	cb := &countingBackend{}
	f, l2 := pfFile(cb, 16, 4, 4)
	demandMiss(f, l2, 0x10000, 0)
	demandMiss(f, l2, 0x10000+lineB, 10)
	p := demandMiss(f, l2, 0x10000+2*lineB, 20)
	// The demand miss arrives at 20 and costs 100: done 120, even
	// though the four prefetches issued at 40 complete at 140.
	if got := p.Done(); got != 120 {
		t.Fatalf("handle done = %d, want 120 (prefetches must not gate)", got)
	}
}

// TestAttachPrefetcherRejectsBlocking: the prefetcher cannot ride a
// blocking file.
func TestAttachPrefetcherRejectsBlocking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("attaching a prefetcher to a blocking file must panic")
		}
	}()
	f := NewMSHRFile(mshrTiming(&countingBackend{}), 1)
	f.AttachPrefetcher(NewPrefetcher(PrefetchConfig{Streams: 4}, lineB), cache.New(cache.L2Config(20)))
}
