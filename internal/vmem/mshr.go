package vmem

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/stats"
)

// This file implements the non-blocking side of the vector memory
// pipeline: a file of miss-status holding registers (MSHRs) that
// decouples instruction issue from memory completion.
//
// Under the blocking model every Issue call submitted its own miss
// batch to the main memory and returned a final completion time, so
// the controller only ever saw one instruction's parallelism. With an
// MSHR file, Issue registers its line misses and returns immediately
// with a Pending handle; the underlying dram.Backend.Submit happens
// lazily, so one batch spans every instruction that issued since the
// last flush — the inter-instruction memory parallelism the FR-FCFS
// reorder window needs to convert latency into bandwidth.
//
// Lazy submission is sound because the timing backends are
// arrival-stamped, not call-stamped: every dram.Request carries its At
// cycle and the controller never services a request before it, so
// submitting late never changes a request's timing — it only widens
// the window the scheduler may reorder over. Three events force a
// flush: an allocation finding the file full (the MSHR-full stall), a
// consumer needing a completion time that the conservative lower bound
// can no longer rule out, and the end-of-run drain.
//
// A file of size 1 runs in blocking mode: every Register flushes
// immediately and returns an already-resolved handle, reproducing the
// blocking model's Submit call sequence — and therefore its cycle
// counts — bit for bit. That equivalence is the refactor's safety net
// and is asserted over the full benchmark suite in internal/core.

// MSHRStats counts the file's activity. MLP and batch spans are the
// headline metrics: how many line misses were outstanding when a new
// one registered, and how many instructions each Submit batch covered.
type MSHRStats struct {
	Allocs     uint64 // primary misses: a new line entered the file
	Merges     uint64 // secondary misses folded into an in-flight line
	Writebacks uint64 // posted write-backs riding the pending batch

	Flushes     uint64 // Submit calls issued by the file
	FlushedReqs uint64 // requests submitted across all flushes
	SpanSum     uint64 // instructions contributing to each flush, summed
	SpanMax     int    // widest instruction span of any single flush

	FullStalls  uint64 // allocations that found every MSHR occupied
	StallCycles uint64 // cycles allocations waited for an MSHR to free

	OccSum uint64 // outstanding (unresolved) entries sampled per alloc
	OccMax int    // high-water mark of outstanding entries

	// Fill is the miss-to-fill latency distribution: primary-miss
	// arrival (after any full-stall) to fill completion, per resolved
	// entry, prefetch fills included.
	Fill *stats.Histogram
}

// MLP is the mean number of line misses outstanding when a new miss
// allocates — the memory-level parallelism the pipeline exposes.
func (s *MSHRStats) MLP() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.OccSum) / float64(s.Allocs)
}

// AvgBatch is the mean Submit batch size.
func (s *MSHRStats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedReqs) / float64(s.Flushes)
}

// AvgSpan is the mean number of instructions contributing requests to
// one Submit batch; above 1 the controller is seeing cross-instruction
// parallelism the blocking model never showed it.
func (s *MSHRStats) AvgSpan() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.SpanSum) / float64(s.Flushes)
}

// mshrEntry tracks one outstanding L2 line miss. Handles hold pointers
// to entries, so an entry struct is never recycled; the file merely
// drops freed entries from its live set.
type mshrEntry struct {
	line     uint64
	id       uint64
	at       int64 // arrival of the primary miss (after any full-stall)
	done     int64 // valid once resolved
	resolved bool

	// prefetch marks an entry the stream prefetcher allocated; it
	// holds a real MSHR but gates nothing until a demand touches its
	// line. demanded/demandAt record the first demand touch so the
	// fill can be classified PrefetchHit (done <= demandAt) or
	// PrefetchLate once its completion is known; classified keeps the
	// split from double counting.
	prefetch   bool
	demanded   bool
	classified bool
	demandAt   int64

	// qosDelay is the QoS credit-yield penalty the channel scheduler
	// stamped on this fill's completion: cycles the request sat eligible
	// but deferred so another tenant could use the channel. The CPI
	// classifier drains it through the handle's TakeQoSYield cursor.
	qosDelay int64
}

// MSHRFile is the miss-status holding register file shared by the
// vector subsystems and the scalar miss path. It is not safe for
// concurrent use, matching the rest of the simulator.
type MSHRFile struct {
	tim      Timing
	cap      int
	blocking bool
	lineMask uint64
	minLat   int64 // lower bound on any read's Done-At

	entries  []*mshrEntry          // live entries, allocation order
	byLine   map[uint64]*mshrEntry // live entries keyed by line address
	pending  []dram.Request        // registered but not yet submitted
	pendByID map[uint64]*mshrEntry // pending read IDs → their entries
	nextID   uint64
	span     int // instructions contributing to the pending batch
	flushGen int // flush generation, for span tracking across mid-instruction flushes

	// tenant is the requestor tag of the RegisterFor call in progress:
	// every entry ID and write-back the call files carries it in the
	// ID's top byte (dram.TagTenant), so a shared backend can route
	// per-tenant accounting and QoS off the opaque ID path. 0 between
	// calls and for single-requestor use — the identity tag.
	tenant int

	// pf/l2 attach the stream prefetcher (AttachPrefetcher): pf turns
	// the demand miss stream into predicted lines, and the file fills
	// them into l2 and injects them into the pending batch. Both nil
	// when prefetching is off.
	pf *Prefetcher
	l2 *cache.Cache

	trainBuf []uint64 // scratch: this Register's training lines

	tr *stats.Tracer // event tracer, nil = off
	st MSHRStats
}

// NewMSHRFile builds a file of n MSHRs over the Timing's main memory
// (its Backend, or the flat MemLatency model when Backend is nil).
// n <= 1 selects blocking mode. The tim.MSHR field of the argument is
// ignored; the file is the thing that field points at.
func NewMSHRFile(tim Timing, n int) *MSHRFile {
	tim.MSHR = nil
	lineBytes := cache.L2LineBytes
	minLat := tim.MemLatency
	if tim.Backend != nil {
		lineBytes = tim.Backend.LineBytes()
		minLat = tim.Backend.MinReadLatency()
	}
	if minLat < 1 {
		minLat = 1
	}
	if n < 1 {
		n = 1
	}
	f := &MSHRFile{
		tim:      tim,
		cap:      n,
		blocking: n <= 1,
		lineMask: uint64(lineBytes - 1),
		minLat:   minLat,
		byLine:   map[uint64]*mshrEntry{},
		pendByID: map[uint64]*mshrEntry{},
		nextID:   1, // 0 tags write-backs, which never resolve an entry
	}
	f.st.Fill = stats.NewHistogram()
	return f
}

// SetTracer attaches a cycle-stamped event tracer (nil turns tracing
// off, the default).
func (f *MSHRFile) SetTracer(t *stats.Tracer) { f.tr = t }

// resolve settles one entry's fill completion, feeding the
// miss-to-fill histogram and the trace.
func (f *MSHRFile) resolve(e *mshrEntry, done int64) {
	e.done, e.resolved = done, true
	f.st.Fill.Observe(done - e.at)
	if f.tr != nil {
		f.tr.Emit(stats.Event{Cycle: e.at, Dur: done - e.at, Cat: "mshr", Name: "fill",
			Addr: e.line, ID: e.id, Tenant: dram.TenantOf(e.id)})
		// Close the entry's causal flow chain at the fill cycle; the
		// core opened it ('s') at the issuing instruction.
		f.tr.Emit(stats.Event{Cycle: done, Cat: "dep", Name: "mem", Ph: 'f',
			ID: e.id, Tenant: dram.TenantOf(e.id)})
	}
	f.classifyPrefetch(e)
}

// AttachPrefetcher wires a stream prefetcher into the file: l2 is the
// cache the predicted lines fill into (via the normal allocate path,
// dirty victims riding the pending batch as posted write-backs). Only
// legal on a non-blocking file — a blocking file submits every batch
// synchronously, so there is no pending batch for a prefetch to ride,
// and the bit-exact blocking equivalence would be lost.
func (f *MSHRFile) AttachPrefetcher(p *Prefetcher, l2 *cache.Cache) {
	if f.blocking {
		panic("vmem: the stream prefetcher rides the lazy MSHR batch; it needs a non-blocking file (>= 2 MSHRs)")
	}
	if p == nil || l2 == nil {
		panic("vmem: AttachPrefetcher needs a prefetcher and an L2")
	}
	f.pf, f.l2 = p, l2
}

// Prefetcher returns the attached stream prefetcher, or nil.
func (f *MSHRFile) Prefetcher() *Prefetcher { return f.pf }

// PrefetchStats returns the prefetcher's counters with the Useless
// count filled in from the L2's eviction accounting (the zero value
// when no prefetcher is attached). The sync writes through to the
// live struct, so a stats registry wrapping the prefetcher's counters
// sees Useless too — core's registration snapshots via this method.
func (f *MSHRFile) PrefetchStats() PrefetchStats {
	if f.pf == nil {
		return PrefetchStats{}
	}
	f.pf.st.Useless = f.l2.Stats.PrefetchUseless
	return *f.pf.Stats()
}

// Cap is the file's MSHR count.
func (f *MSHRFile) Cap() int { return f.cap }

// Blocking reports whether the file runs in the bit-exact blocking
// compatibility mode (a single MSHR).
func (f *MSHRFile) Blocking() bool { return f.blocking }

// Stats exposes the accumulated counters.
func (f *MSHRFile) Stats() *MSHRStats { return &f.st }

// Outstanding is the number of unresolved line misses in the file.
func (f *MSHRFile) Outstanding() int {
	n := 0
	for _, e := range f.entries {
		if !e.resolved {
			n++
		}
	}
	return n
}

// free drops entries whose fill has completed by cycle t.
func (f *MSHRFile) free(t int64) {
	live := f.entries[:0]
	for _, e := range f.entries {
		if e.resolved && e.done <= t {
			delete(f.byLine, e.line)
			continue
		}
		live = append(live, e)
	}
	f.entries = live
}

// flush submits everything pending as one batch and resolves the
// entries the completions belong to (matched by request ID — the
// scheduler reorders the batch, so positional matching would lie).
func (f *MSHRFile) flush() {
	if len(f.pending) == 0 {
		return
	}
	f.st.Flushes++
	f.st.FlushedReqs += uint64(len(f.pending))
	f.st.SpanSum += uint64(f.span)
	if f.span > f.st.SpanMax {
		f.st.SpanMax = f.span
	}
	if f.tim.Backend != nil {
		for _, c := range f.tim.Backend.Submit(f.pending) {
			if c.Write {
				continue
			}
			if e := f.pendByID[c.ID]; e != nil {
				e.qosDelay = c.QoSDelay
				f.resolve(e, c.Done)
			}
		}
	} else {
		// The seed's flat model: every read costs MemLatency, posted
		// write-backs are free.
		for _, r := range f.pending {
			if r.Write {
				continue
			}
			if e := f.pendByID[r.ID]; e != nil {
				f.resolve(e, r.At+f.tim.MemLatency)
			}
		}
	}
	f.pending = f.pending[:0]
	clear(f.pendByID)
	f.span = 0
	f.flushGen++
}

// allocate finds room for a new primary miss arriving at cycle at,
// flushing and then waiting on the oldest fill when the file is full,
// and returns the entry and its (possibly stalled) arrival cycle.
func (f *MSHRFile) allocate(addr uint64, at int64) (*mshrEntry, int64) {
	f.free(at)
	if len(f.entries) >= f.cap {
		f.st.FullStalls++
		// Resolving the pending batch is the only way to learn when an
		// MSHR frees; the stall then waits for the earliest fill.
		f.flush()
		f.free(at)
		for len(f.entries) >= f.cap {
			tFree := f.entries[0].done
			for _, e := range f.entries[1:] {
				if e.done < tFree {
					tFree = e.done
				}
			}
			if tFree > at {
				f.st.StallCycles += uint64(tFree - at)
				at = tFree
			}
			f.free(at)
		}
	}
	e := &mshrEntry{line: addr &^ f.lineMask, id: dram.TagTenant(f.nextID, f.tenant), at: at}
	f.nextID++
	f.entries = append(f.entries, e)
	f.byLine[e.line] = e
	f.st.Allocs++
	if f.tr != nil {
		f.tr.Emit(stats.Event{Cycle: at, Cat: "mshr", Name: "alloc", Addr: e.line, ID: e.id, Tenant: f.tenant})
		f.tr.Emit(stats.Event{Cycle: at, Cat: "dep", Name: "mem", Ph: 't',
			ID: e.id, Tenant: f.tenant})
	}
	occ := f.Outstanding() // already counts the just-appended entry
	f.st.OccSum += uint64(occ)
	if occ > f.st.OccMax {
		f.st.OccMax = occ
	}
	return e, at
}

// PFTouch records one demand access that hit a prefetched L2 line (the
// cache's Result.Prefetched): Line is the L2 line address, At the cycle
// the access wants its data. The vmem subsystems collect them per
// instruction and pass them to Complete/Register, which resolves each
// into the PrefetchHit / PrefetchLate split — and, for a fill still in
// flight, merges the instruction onto the prefetch's MSHR entry as a
// secondary miss so the handle waits for the real completion.
type PFTouch struct {
	Line uint64
	At   int64
}

// Register files one instruction's miss batch — line-fill reads and
// posted write-backs, as built by the vmem subsystems — plus its
// demand touches of prefetched lines, and returns the instruction's
// pending-completion handle. occDone is the completion cycle of the
// instruction's port/bank occupancy and cache hits; the handle's Done
// folds it in. Secondary misses to a line already in flight merge into
// its entry instead of re-submitting the line. In blocking mode the
// batch is submitted immediately and the returned handle is already
// resolved (a blocking file never has a prefetcher, so pfTouch is
// always empty there).
//
// With a prefetcher attached, the demand lines just filed (misses and
// prefetched-line touches alike) train the stream table, and every
// resulting prediction is injected into the same pending batch —
// after the demands, so a prefetch can never steal an MSHR from the
// instruction that triggered it.
func (f *MSHRFile) Register(batch []dram.Request, pfTouch []PFTouch, occDone int64) *Pending {
	return f.RegisterFor(0, batch, pfTouch, occDone)
}

// RegisterFor is Register for a tagged requestor: every entry and
// write-back the call files carries tenant in its ID's top byte, so
// the backend can shard stats and schedule per tenant. Tenant 0 is
// Register exactly.
func (f *MSHRFile) RegisterFor(tenant int, batch []dram.Request, pfTouch []PFTouch, occDone int64) *Pending {
	f.tenant = tenant
	p := &Pending{file: f, base: occDone}
	if f.blocking {
		// Blocking mode files the whole instruction atomically, submits
		// it at once and leaves nothing live between instructions —
		// never merging, so the Submit call sequence is exactly the
		// blocking model's.
		for _, r := range batch {
			if r.Write {
				r.ID = dram.TagTenant(0, f.tenant)
				f.pending = append(f.pending, r)
				f.st.Writebacks++
				continue
			}
			e := &mshrEntry{line: r.Addr &^ f.lineMask, id: dram.TagTenant(f.nextID, f.tenant), at: r.At}
			f.nextID++
			f.st.Allocs++
			if f.tr != nil {
				f.tr.Emit(stats.Event{Cycle: r.At, Cat: "mshr", Name: "alloc", Addr: e.line, ID: e.id, Tenant: f.tenant})
				f.tr.Emit(stats.Event{Cycle: r.At, Cat: "dep", Name: "mem", Ph: 't',
					ID: e.id, Tenant: f.tenant})
			}
			r.ID = e.id
			f.pending = append(f.pending, r)
			f.pendByID[e.id] = e
			p.entries = append(p.entries, e)
			p.fresh = append(p.fresh, e.id)
		}
		if len(f.pending) > 0 {
			f.span = 1
			f.flush()
		}
		p.force()
		return p
	}
	// One instruction counts once toward each flush batch it feeds: a
	// mid-instruction flush (MSHR full) starts a new batch, which the
	// rest of the instruction's requests then join.
	gen := -1
	contribute := func() {
		if gen != f.flushGen {
			f.span++
			gen = f.flushGen
		}
	}
	f.trainBuf = f.trainBuf[:0]
	for _, r := range batch {
		if r.Write {
			r.ID = dram.TagTenant(0, f.tenant)
			f.pending = append(f.pending, r)
			f.st.Writebacks++
			contribute()
			continue
		}
		line := r.Addr &^ f.lineMask
		if f.pf != nil {
			f.trainBuf = append(f.trainBuf, line)
		}
		if e := f.byLine[line]; e != nil && (!e.resolved || e.done > r.At) {
			// Secondary miss: the line's fill is already in flight (or
			// has a known future completion); wait on it, do not
			// re-request the line. A demand MISS can only reach a
			// still-live prefetch entry after its line left the L2 —
			// and an untouched prefetched line scores PrefetchUseless
			// at eviction — so this merge must not classify the same
			// issue again (each issued prefetch gets exactly one
			// outcome); it only reuses the in-flight fill's timing.
			f.st.Merges++
			if f.tr != nil {
				f.tr.Emit(stats.Event{Cycle: r.At, Cat: "mshr", Name: "merge", Addr: line, ID: e.id, Tenant: f.tenant})
			}
			if e.prefetch && !e.demanded {
				e.classified = true
			}
			f.upgradePrefetch(e)
			p.entries = append(p.entries, e)
			continue
		}
		e, at := f.allocate(r.Addr, r.At)
		if at > r.At {
			// The allocation waited on a full file; bank the stall so the
			// CPI classifier can charge the head's wait to MSHRFull
			// before blaming main memory.
			p.fullStall += at - r.At
		}
		r.At, r.ID = at, e.id
		f.pending = append(f.pending, r)
		f.pendByID[e.id] = e
		p.entries = append(p.entries, e)
		p.fresh = append(p.fresh, e.id)
		contribute()
	}
	for _, t := range pfTouch {
		f.touchPrefetched(p, t)
	}
	if f.pf != nil {
		for _, line := range f.trainBuf {
			at := occDone
			if f.tr != nil {
				f.tr.Emit(stats.Event{Cycle: at, Cat: "pf", Name: "train", Addr: line, Tenant: f.tenant})
			}
			for _, cand := range f.pf.Observe(line) {
				f.injectPrefetch(cand, at)
			}
		}
	}
	return p
}

// touchPrefetched resolves one demand touch of a prefetched L2 line:
// classify the prefetch (hit when its fill completed by the touch,
// late otherwise) and, while the fill is still outstanding, merge the
// instruction onto the prefetch's MSHR entry so its handle waits. The
// touched line also trains the stream table — a stream the prefetcher
// covers perfectly would otherwise stop missing and go cold.
func (f *MSHRFile) touchPrefetched(p *Pending, t PFTouch) {
	line := t.Line &^ f.lineMask
	if f.pf == nil {
		return
	}
	f.trainBuf = append(f.trainBuf, line)
	e := f.byLine[line]
	if e == nil || !e.prefetch {
		// The fill landed long ago and its entry was recycled.
		f.pf.st.Hits++
		return
	}
	if !e.demanded {
		e.demanded, e.demandAt = true, t.At
	}
	if e.resolved {
		if !e.classified {
			f.classifyPrefetch(e)
		}
		if e.done > t.At {
			p.entries = append(p.entries, e)
		}
		return
	}
	// Fill still pending: the classification falls out of the flush
	// that resolves it, and the instruction waits on the entry.
	f.upgradePrefetch(e)
	p.entries = append(p.entries, e)
}

// upgradePrefetch promotes a still-pending prefetch fill to demand
// priority: a demand access has merged onto entry e, so its data is on
// an instruction's critical path and the channel scheduler must stop
// treating the request as deprioritizable speculation. No-op once the
// batch holding the request has been submitted.
func (f *MSHRFile) upgradePrefetch(e *mshrEntry) {
	if !e.prefetch || e.resolved {
		return
	}
	for i := range f.pending {
		if f.pending[i].ID == e.id && !f.pending[i].Write {
			f.pending[i].Demanded = true
			return
		}
	}
}

// prefetchQuota bounds how many MSHRs unresolved prefetches may hold
// at once: a quarter of the file (at least one). Demand misses own the
// rest — a dvload can claim 16 entries in one batch, and a file packed
// with speculative fills would turn its allocation into a full-stall,
// making the prefetcher throttle the very pipeline it accelerates.
func (f *MSHRFile) prefetchQuota() int {
	q := f.cap / 4
	if q < 1 {
		q = 1
	}
	return q
}

// prefetchLive counts unresolved prefetch entries in the file.
func (f *MSHRFile) prefetchLive() int {
	n := 0
	for _, e := range f.entries {
		if e.prefetch && !e.resolved {
			n++
		}
	}
	return n
}

// classifyPrefetch settles a demanded prefetch entry into the hit/late
// split once its completion time is known.
func (f *MSHRFile) classifyPrefetch(e *mshrEntry) {
	if f.pf == nil || !e.prefetch || !e.demanded || e.classified {
		return
	}
	e.classified = true
	if e.done <= e.demandAt {
		f.pf.st.Hits++
	} else {
		f.pf.st.Late++
	}
}

// injectPrefetch files one predicted line as a prefetch-tagged MSHR
// entry whose fill request joins the pending batch. Prefetches are
// best-effort by design: a line already cached or in flight is
// filtered, and a prediction that would need to stall — no free MSHR,
// or a dirty victim bound for a write queue with no room — is dropped
// on the floor rather than ever back-pressuring the demand pipeline.
func (f *MSHRFile) injectPrefetch(line uint64, at int64) {
	line &^= f.lineMask
	if f.l2.Contains(line) {
		f.pf.st.Filtered++
		return
	}
	if e := f.byLine[line]; e != nil && (!e.resolved || e.done > at) {
		f.pf.st.Filtered++
		return
	}
	f.free(at)
	if len(f.entries) >= f.cap || f.prefetchLive() >= f.prefetchQuota() {
		f.pf.st.DroppedMSHR++
		if f.tr != nil {
			f.tr.Emit(stats.Event{Cycle: at, Cat: "pf", Name: "drop_mshr", Addr: line, Tenant: f.tenant})
		}
		return
	}
	if victim, dirty, _ := f.l2.PeekVictim(line); dirty &&
		f.tim.Backend != nil && !f.tim.Backend.WriteRoom(victim) {
		f.pf.st.DroppedWQ++
		if f.tr != nil {
			f.tr.Emit(stats.Event{Cycle: at, Cat: "pf", Name: "drop_wq", Addr: line, Tenant: f.tenant})
		}
		return
	}
	res := f.l2.FillPrefetch(line)
	e := &mshrEntry{line: line, id: dram.TagTenant(f.nextID, f.tenant), at: at, prefetch: true}
	f.nextID++
	f.entries = append(f.entries, e)
	f.byLine[line] = e
	f.pending = append(f.pending, dram.Request{Addr: line, At: at, ID: e.id, Prefetch: true})
	f.pendByID[e.id] = e
	if res.Writeback && f.tim.Backend != nil {
		f.pending = append(f.pending, dram.Request{Addr: res.VictimAddr, Write: true, At: at,
			ID: dram.TagTenant(0, f.tenant), Prefetch: true})
		f.st.Writebacks++
	}
	f.pf.st.Issued++
	if f.tr != nil {
		f.tr.Emit(stats.Event{Cycle: at, Cat: "pf", Name: "fire", Addr: line, ID: e.id, Tenant: f.tenant})
		// Prefetch-originated chains start here rather than at a core
		// instruction; the MSHR fill closes them like any demand chain.
		f.tr.Emit(stats.Event{Cycle: at, Cat: "dep", Name: "mem", Ph: 's',
			ID: e.id, Tenant: f.tenant})
	}
}

// Drain flushes anything still pending; callers then read final
// completion times off their handles' Done.
func (f *MSHRFile) Drain() { f.flush() }

// Pending is the completion handle of one instruction's outstanding
// misses: the issue side returns it, the scoreboard queries it.
type Pending struct {
	file     *MSHRFile
	entries  []*mshrEntry
	base     int64
	resolved bool
	done     int64

	// fresh holds the IDs of the entries this instruction's primary
	// misses allocated (merged secondary misses excluded) — the flow
	// chains the issuing instruction originates.
	fresh []uint64

	// fullStall and qosTaken are the CPI classifier's stall-attribution
	// budgets. fullStall is the remaining cycles this instruction's
	// allocations spent waiting on a full MSHR file; qosTaken is the
	// cursor into the QoS-yield cycles stamped on resolved entries.
	// Both drain monotonically, so charging n cycles one at a time and
	// charging them in one bulk call consume identically — the property
	// that keeps the step and wheel engines' CPI stacks bit-identical.
	fullStall int64
	qosTaken  int64
}

// FreshIDs returns the MSHR entry IDs this instruction's primary
// misses allocated, for originating causal flow chains. Merged
// secondary misses are excluded — their chains belong to the
// instruction that filed the primary miss.
func (p *Pending) FreshIDs() []uint64 { return p.fresh }

// TakeFullStall consumes up to n cycles of the handle's MSHR
// full-stall budget and returns how many were taken.
func (p *Pending) TakeFullStall(n uint64) uint64 {
	if p.fullStall <= 0 || n == 0 {
		return 0
	}
	take := uint64(p.fullStall)
	if take > n {
		take = n
	}
	p.fullStall -= int64(take)
	return take
}

// TakeQoSYield consumes up to n cycles of the QoS-yield budget the
// channel scheduler stamped on this handle's resolved fills and
// returns how many were taken. Only resolved entries contribute (an
// unresolved fill's penalty is unknown), and resolution only happens
// at flush points — never during classification — so the available
// budget is constant across any window the classifier charges.
func (p *Pending) TakeQoSYield(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	var avail int64
	for _, e := range p.entries {
		if e.resolved {
			avail += e.qosDelay
		}
	}
	avail -= p.qosTaken
	if avail <= 0 {
		return 0
	}
	take := uint64(avail)
	if take > n {
		take = n
	}
	p.qosTaken += int64(take)
	return take
}

// force resolves the handle from its entries, which must all be
// resolved (true after any flush).
func (p *Pending) force() int64 {
	done := p.base
	for _, e := range p.entries {
		if e.done > done {
			done = e.done
		}
	}
	p.resolved, p.done = true, done
	return done
}

// Settled reports whether the completion is already known and has
// passed, using only resolved state — it never forces a flush, so it
// is safe to poll every cycle without perturbing batch accumulation.
func (p *Pending) Settled(now int64) bool {
	if p == nil {
		return true
	}
	if !p.resolved {
		for _, e := range p.entries {
			if !e.resolved {
				return false
			}
		}
		p.force()
	}
	return p.done <= now
}

// ReadyBy reports whether the memory completion is <= now, resolving
// lazily: while the conservative lower bound (each unresolved miss
// costs at least the backend's minimum read latency) still exceeds
// now, it answers false without scheduling anything; once the bound is
// reached it flushes the file and compares the exact time.
func (p *Pending) ReadyBy(now int64) bool {
	if p == nil {
		return true
	}
	if p.resolved {
		return p.done <= now
	}
	lb := p.base
	unresolved := false
	for _, e := range p.entries {
		t := e.done
		if !e.resolved {
			unresolved = true
			t = e.at + p.file.minLat
		}
		if t > lb {
			lb = t
		}
	}
	if !unresolved {
		p.force()
		return p.done <= now
	}
	if now < lb {
		return false
	}
	p.file.flush()
	return p.force() <= now
}

// Bound returns a conservative lower bound on the completion cycle
// and whether that bound is exact. It mirrors ReadyBy's arithmetic —
// for an unresolved handle the bound is the first cycle a ReadyBy
// poll would force a flush — but never flushes or resolves anything,
// so the event-wheel engine can schedule wake-ups off it without
// perturbing batch accumulation.
func (p *Pending) Bound() (int64, bool) {
	if p == nil {
		return 0, true
	}
	if p.resolved {
		return p.done, true
	}
	lb := p.base
	exact := true
	for _, e := range p.entries {
		t := e.done
		if !e.resolved {
			exact = false
			t = e.at + p.file.minLat
		}
		if t > lb {
			lb = t
		}
	}
	return lb, exact
}

// Done forces resolution and returns the exact completion cycle.
func (p *Pending) Done() int64 {
	if p == nil {
		return 0
	}
	if !p.resolved {
		p.file.flush()
		p.force()
	}
	return p.done
}
