package vmem

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
)

// countingBackend records Submit batches with a flat 100-cycle read
// latency and carries request IDs through, like a real backend must.
type countingBackend struct {
	batches [][]dram.Request
	st      dram.Stats
	comps   []dram.Completion
}

func (c *countingBackend) Name() string          { return "counting" }
func (c *countingBackend) Stats() *dram.Stats    { return &c.st }
func (c *countingBackend) LineBytes() int        { return cache.L2LineBytes }
func (c *countingBackend) MinReadLatency() int64 { return 100 }
func (c *countingBackend) WriteRoom(uint64) bool { return true }
func (c *countingBackend) Reset()                { c.batches = nil }
func (c *countingBackend) Submit(batch []dram.Request) []dram.Completion {
	c.batches = append(c.batches, append([]dram.Request(nil), batch...))
	c.comps = c.comps[:0]
	for _, q := range batch {
		c.comps = append(c.comps, dram.Completion{
			Addr: q.Addr, Write: q.Write, At: q.At, Done: q.At + 100, ID: q.ID})
	}
	return c.comps
}

func (c *countingBackend) reads() []dram.Request {
	var out []dram.Request
	for _, b := range c.batches {
		for _, q := range b {
			if !q.Write {
				out = append(out, q)
			}
		}
	}
	return out
}

func mshrTiming(b dram.Backend) Timing {
	return Timing{L2Latency: 20, MemLatency: 100, Backend: b}
}

// TestBlockingModeMatchesSubmitMisses: a 1-entry file must reproduce
// the blocking path's completion times and Submit call sequence
// exactly — the equivalence net under every full-simulation check.
func TestBlockingModeMatchesSubmitMisses(t *testing.T) {
	batches := [][]dram.Request{
		{{Addr: 0x1000, At: 10}},
		{{Addr: 0x2000, At: 40}, {Addr: 0x2080, At: 41}, {Addr: 0x9000, Write: true, At: 41}},
		{{Addr: 0x1000, At: 300}}, // same line again: blocking re-submits
	}
	legacy := &countingBackend{}
	filed := &countingBackend{}
	tmLegacy := mshrTiming(legacy)
	fileTim := mshrTiming(filed)
	file := NewMSHRFile(fileTim, 1)
	if !file.Blocking() {
		t.Fatal("a 1-entry file must run in blocking mode")
	}
	fileTim.MSHR = file
	for i, b := range batches {
		want := tmLegacy.SubmitMisses(append([]dram.Request(nil), b...), 50)
		got, pend := fileTim.Complete(append([]dram.Request(nil), b...), nil, 50)
		if pend != nil {
			t.Fatalf("batch %d: blocking mode returned a live handle", i)
		}
		if got != want {
			t.Fatalf("batch %d: blocking file done %d != SubmitMisses %d", i, got, want)
		}
	}
	if len(filed.batches) != len(legacy.batches) {
		t.Fatalf("Submit calls %d != legacy %d", len(filed.batches), len(legacy.batches))
	}
	for i := range filed.batches {
		if len(filed.batches[i]) != len(legacy.batches[i]) {
			t.Fatalf("batch %d sizes differ: %d vs %d", i, len(filed.batches[i]), len(legacy.batches[i]))
		}
		for j := range filed.batches[i] {
			a, b := filed.batches[i][j], legacy.batches[i][j]
			if a.Addr != b.Addr || a.Write != b.Write || a.At != b.At {
				t.Fatalf("batch %d request %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

// TestSecondaryMissMerges: a second instruction missing a line already
// in flight must wait on the existing MSHR, never re-submit the line.
func TestSecondaryMissMerges(t *testing.T) {
	cb := &countingBackend{}
	tim := mshrTiming(cb)
	f := NewMSHRFile(tim, 8)
	p1 := f.Register([]dram.Request{{Addr: 0x1000, At: 0}}, nil, 20)
	p2 := f.Register([]dram.Request{{Addr: 0x1040, At: 5}}, nil, 25) // same 128B line
	if got := f.Stats().Merges; got != 1 {
		t.Fatalf("merges = %d, want 1", got)
	}
	d1, d2 := p1.Done(), p2.Done()
	if reads := cb.reads(); len(reads) != 1 {
		t.Fatalf("line submitted %d times, want once", len(reads))
	}
	if d1 != 100 {
		t.Fatalf("primary done = %d, want 100", d1)
	}
	if d2 != 100 {
		t.Fatalf("secondary done = %d, want the shared fill's 100", d2)
	}

	// Once the fill has landed, a fresh miss to the line (the cache
	// evicted and re-missed it) allocates anew and re-submits.
	p3 := f.Register([]dram.Request{{Addr: 0x1000, At: 500}}, nil, 520)
	if p3.Done() != 600 {
		t.Fatalf("post-fill re-miss done = %d, want 600", p3.Done())
	}
	if got := f.Stats().Merges; got != 1 {
		t.Fatalf("post-fill re-miss must not merge (merges = %d)", got)
	}
	if reads := cb.reads(); len(reads) != 2 {
		t.Fatalf("re-missed line must be re-submitted (reads = %d)", len(reads))
	}
}

// TestLazySubmissionAccumulates: nothing reaches the backend until a
// consumer's lower bound passes (or the file fills), and then the whole
// accumulated batch goes down in one Submit spanning both instructions.
func TestLazySubmissionAccumulates(t *testing.T) {
	cb := &countingBackend{}
	f := NewMSHRFile(mshrTiming(cb), 8)
	p1 := f.Register([]dram.Request{{Addr: 0x1000, At: 0}, {Addr: 0x2000, At: 1}}, nil, 21)
	p2 := f.Register([]dram.Request{{Addr: 0x3000, At: 3}, {Addr: 0x4000, At: 4}}, nil, 24)
	if len(cb.batches) != 0 {
		t.Fatalf("registration alone must not Submit (%d calls)", len(cb.batches))
	}
	// Below the minimum-latency bound the answer is free.
	if p1.ReadyBy(50) {
		t.Fatal("ready before the minimum read latency")
	}
	if len(cb.batches) != 0 {
		t.Fatalf("a ruled-out query must not force a flush (%d calls)", len(cb.batches))
	}
	// Past the bound the file must resolve — with one batch of all four
	// requests.
	if !p1.ReadyBy(101) {
		t.Fatal("not ready at its exact completion")
	}
	if len(cb.batches) != 1 || len(cb.batches[0]) != 4 {
		t.Fatalf("expected one 4-request Submit, got %d batches", len(cb.batches))
	}
	if f.Stats().SpanSum != 2 {
		t.Fatalf("flush span = %d instructions, want 2", f.Stats().SpanSum)
	}
	if !p2.ReadyBy(104) || p2.Done() != 104 {
		t.Fatalf("second handle done = %d, want 104", p2.Done())
	}
}

// TestMSHRFullStallsAllocation: a full file flushes, then delays the
// new miss until the earliest fill frees its entry.
func TestMSHRFullStallsAllocation(t *testing.T) {
	cb := &countingBackend{}
	f := NewMSHRFile(mshrTiming(cb), 2)
	p := f.Register([]dram.Request{
		{Addr: 0x1000, At: 0},
		{Addr: 0x2000, At: 1},
		{Addr: 0x3000, At: 2}, // no MSHR left: flush, wait for the first fill
	}, nil, 22)
	st := f.Stats()
	if st.FullStalls != 1 {
		t.Fatalf("full stalls = %d, want 1", st.FullStalls)
	}
	if st.StallCycles != 98 { // pushed from cycle 2 to the first fill at 100
		t.Fatalf("stall cycles = %d, want 98", st.StallCycles)
	}
	// The stalled request arrives at 100 and completes at 200.
	if got := p.Done(); got != 200 {
		t.Fatalf("done = %d, want 200 (stalled third line)", got)
	}
}

// TestWritebackRidesPendingBatch: posted write-backs join the pending
// batch without occupying an MSHR and never gate the handle.
func TestWritebackRidesPendingBatch(t *testing.T) {
	cb := &countingBackend{}
	f := NewMSHRFile(mshrTiming(cb), 4)
	p := f.Register([]dram.Request{
		{Addr: 0x1000, At: 0},
		{Addr: 0x8000, Write: true, At: 0},
	}, nil, 20)
	if got := p.Done(); got != 100 {
		t.Fatalf("done = %d, want 100 (write must not gate)", got)
	}
	if st := f.Stats(); st.Writebacks != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v, want 1 writeback, 1 alloc", st)
	}
	var writes int
	for _, b := range cb.batches {
		for _, q := range b {
			if q.Write {
				writes++
			}
		}
	}
	if writes != 1 {
		t.Fatalf("writes submitted = %d, want 1", writes)
	}
}

// TestMSHRFileFlatModel: with no backend the file runs over the seed's
// flat MemLatency, matching SubmitMisses.
func TestMSHRFileFlatModel(t *testing.T) {
	tim := Timing{L2Latency: 20, MemLatency: 100}
	f := NewMSHRFile(tim, 4)
	p := f.Register([]dram.Request{{Addr: 0x1000, At: 30}}, nil, 50)
	if got, want := p.Done(), tim.SubmitMisses([]dram.Request{{Addr: 0x1000, At: 30}}, 50); got != want {
		t.Fatalf("flat-model done = %d, want %d", got, want)
	}
}
