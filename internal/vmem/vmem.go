// Package vmem implements the vector memory subsystems compared in the
// paper (§3.1, Fig 2, Fig 8): the ideal memory, the multi-banked cache
// (4 ports x 8 banks behind a crossbar), the vector cache (one wide port
// with two interleaved line banks and an interchange/shift&mask network),
// and the vector cache extended with the 3D register file datapath that
// can sink up to a whole L2 line per cycle.
//
// Each subsystem schedules the element accesses of one vector memory
// instruction against its port/bank resources and the shared L2 cache
// model. Issue and completion are split: Issue returns the cycle the
// instruction's port/bank occupancy and cache hits finish plus a
// Pending handle for any outstanding line misses, which register in the
// shared MSHR file (mshr.go) so main-memory batches span several
// in-flight instructions. Without an MSHR file the subsystems fall back
// to the blocking model and Issue's cycle is final. Resource state
// persists across instructions, so back-to-back vector memory
// operations contend realistically.
package vmem

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Timing holds the memory latencies the subsystems compose.
type Timing struct {
	L2Latency  int64 // L2 access latency (20 in the base system)
	MemLatency int64 // additional main-memory latency on an L2 miss

	// Backend, when non-nil, models the main memory behind the L2 and
	// replaces the flat MemLatency: every L2 miss becomes a dram
	// request whose completion depends on row-buffer and bank state.
	// The subsystems collect one instruction's misses into a batch and
	// Submit them together, so the controller sees the instruction's
	// whole memory parallelism at once.
	Backend dram.Backend

	// MSHRs requests a non-blocking miss pipeline: core.NewMemSystem
	// builds an MSHR file of this size and wires it into MSHR. 0 keeps
	// the legacy blocking path (no file at all); 1 routes through the
	// file in its bit-exact blocking mode — the equivalence net; >= 2
	// decouples issue from completion.
	MSHRs int

	// MSHR is the miss-status holding register file shared by the
	// vector subsystems and the scalar miss path. When nil, every
	// instruction's batch is submitted synchronously (the blocking
	// model); when set, batches register in the file and completion is
	// read off the returned Pending handles.
	MSHR *MSHRFile

	// PFStreams/PFDegree size the stream prefetcher
	// (core.NewMemSystem attaches it to the MSHR file): PFStreams
	// stream-table entries, each keeping PFDegree lines in flight
	// ahead of its confirmed stride. PFStreams 0 disables prefetching;
	// enabling it requires a non-blocking file (MSHRs >= 2), because
	// predicted lines ride the lazily-submitted MSHR batch.
	PFStreams int
	PFDegree  int

	// Tenant is the requestor tag this timing context files misses
	// under when the memory system is shared between several front
	// ends: every request's opaque ID carries it to the backend (see
	// dram.TagTenant). 0 — the single-requestor default — tags to the
	// identity, leaving the classic path bit-identical.
	Tenant int

	// VA, when non-nil, is this requestor's virtual address space: the
	// subsystems translate every word/line address through it before
	// the cache hierarchy, so the page-placement policy decides which
	// banks, rows and channels an access stream physically hits.
	// Translation *timing* (TLB misses, walk stalls) is charged at the
	// issue stage by the core, not here; the data path translates for
	// free because Ready already resolved every page. nil keeps all
	// addresses physical — the bit-identical default.
	VA *vm.Space
}

// Xl translates a virtual address through the attached address space;
// without one it is the identity.
func (tm Timing) Xl(a uint64) uint64 {
	if tm.VA != nil {
		return tm.VA.Translate(a)
	}
	return a
}

// DefaultTiming is the paper's base system (§5.3) over a 100-cycle DRAM.
func DefaultTiming() Timing { return Timing{L2Latency: 20, MemLatency: 100} }

// MissDone returns the completion cycle of the main-memory access for
// the line containing addr whose L2 miss is detected at cycle t — the
// one-request-at-a-time compatibility adapter over the batch API. With
// no Backend it reproduces the seed's flat model exactly: t+MemLatency.
func (tm Timing) MissDone(addr uint64, t int64) int64 {
	if tm.Backend != nil {
		return dram.Access(tm.Backend, addr, t)
	}
	return t + tm.MemLatency
}

// SubmitMisses presents one instruction's collected misses (and any
// dirty-victim write-backs) to the main memory as a single batch and
// returns the latest read completion, or t0 when every request was a
// posted write. With no Backend each read costs the flat MemLatency;
// posted write-backs are free, matching the seed model where they were
// not represented at all.
func (tm Timing) SubmitMisses(batch []dram.Request, t0 int64) int64 {
	done := t0
	if len(batch) == 0 {
		return done
	}
	if tm.Tenant > 0 {
		// Blocking path of a shared backend: the subsystems build their
		// batches with zero IDs (no MSHR entries to route back to), so
		// the requestor tag is stamped here for the backend's per-tenant
		// accounting and QoS scheduling.
		for i := range batch {
			batch[i].ID = dram.TagTenant(batch[i].ID, tm.Tenant)
		}
	}
	if tm.Backend == nil {
		for _, r := range batch {
			if !r.Write {
				if d := r.At + tm.MemLatency; d > done {
					done = d
				}
			}
		}
		return done
	}
	for _, c := range tm.Backend.Submit(batch) {
		// Posted writes never gate instruction completion: the queue
		// absorbs them and drains behind later traffic.
		if !c.Write && c.Done > done {
			done = c.Done
		}
	}
	return done
}

// Complete finishes one instruction's miss batch under the configured
// miss pipeline: with no MSHR file the batch is submitted synchronously
// and the final completion returned (the blocking model); with a file
// the batch registers and the caller receives a Pending handle — nil
// when the completion is already final (blocking-mode file, or nothing
// missed). pfTouch lists the instruction's demand touches of
// prefetched L2 lines (always empty without a prefetcher, which also
// requires the file). occDone is the completion of the instruction's
// port/bank occupancy and cache hits.
func (tm Timing) Complete(batch []dram.Request, pfTouch []PFTouch, occDone int64) (int64, *Pending) {
	if tm.MSHR == nil {
		return tm.SubmitMisses(batch, occDone), nil
	}
	if len(batch) == 0 && len(pfTouch) == 0 {
		return occDone, nil
	}
	p := tm.MSHR.RegisterFor(tm.Tenant, batch, pfTouch, occDone)
	if tm.MSHR.Blocking() {
		return p.Done(), nil
	}
	if len(p.entries) == 0 {
		// Nothing outstanding (every touched prefetch had already
		// landed): the occupancy time is final.
		return occDone, nil
	}
	return occDone, p
}

// Stats aggregates a subsystem's activity. "Accesses" counts cache access
// cycles — the unit of Table 4's L2 activity and the denominator of the
// effective bandwidth of Fig 6. "Words" counts 64-bit words transferred,
// the unit of Fig 7's traffic.
type Stats struct {
	Instructions uint64
	Accesses     uint64
	Words        uint64
	Elements     uint64
	Misses       uint64
	Conflicts    uint64 // multi-banked: accesses delayed by bank conflicts
	Invalidates  uint64 // L1 lines invalidated by the exclusive-bit filter
	D3Words      uint64 // words written into the 3D register file lanes
}

// EffectiveBandwidth is words transferred per cache access (Fig 6).
func (s *Stats) EffectiveBandwidth() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Words) / float64(s.Accesses)
}

// System is one vector memory subsystem.
type System interface {
	// Name identifies the subsystem in reports.
	Name() string
	// Issue schedules all element accesses of a vector memory
	// instruction beginning no earlier than cycle t0. The int64 is the
	// cycle the instruction's port/bank occupancy and cache hits
	// complete; the Pending handle, when non-nil, tracks outstanding
	// line misses registered in the MSHR file — the instruction's data
	// is not architecturally complete until the handle reports ready.
	// A nil handle means the returned cycle is the final completion
	// (every access hit, or the subsystem runs the blocking model).
	Issue(in *isa.Inst, t0 int64) (int64, *Pending)
	// Stats exposes the accumulated counters.
	Stats() *Stats
}

// Ideal is the idealistic memory of §3.1: single-cycle latency, unbounded
// bandwidth, every access a hit.
type Ideal struct {
	st Stats
}

// NewIdeal returns an ideal vector memory.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements System.
func (i *Ideal) Name() string { return "ideal" }

// Stats implements System.
func (i *Ideal) Stats() *Stats { return &i.st }

// Issue implements System: everything completes next cycle.
func (i *Ideal) Issue(in *isa.Inst, t0 int64) (int64, *Pending) {
	i.st.Instructions++
	words := uint64(in.Bytes()+7) / 8
	i.st.Words += words
	i.st.Accesses += words
	i.st.Elements += uint64(in.VL)
	return t0 + 1, nil
}

// MultiBanked is the 4-port, 8-bank design of Fig 2-a: every element is a
// single-word access that needs a free port and a conflict-free bank.
type MultiBanked struct {
	l2      *cache.Cache
	l1      *cache.Cache // invalidation target for vector stores (may be nil)
	tim     Timing
	ports   []int64
	banks   []int64
	st      Stats
	scratch []isa.ElemAccess
	batch   []dram.Request
	pfBuf   []PFTouch
}

// NewMultiBanked builds the multi-banked subsystem over the shared L2.
func NewMultiBanked(l2, l1 *cache.Cache, tim Timing, nPorts, nBanks int) *MultiBanked {
	return &MultiBanked{
		l2: l2, l1: l1, tim: tim,
		ports: make([]int64, nPorts),
		banks: make([]int64, nBanks),
	}
}

// Name implements System.
func (m *MultiBanked) Name() string { return "multibanked" }

// Stats implements System.
func (m *MultiBanked) Stats() *Stats { return &m.st }

// Issue implements System.
func (m *MultiBanked) Issue(in *isa.Inst, t0 int64) (int64, *Pending) {
	m.st.Instructions++
	m.scratch = in.ElemAddrs(m.scratch[:0])
	m.batch = m.batch[:0]
	m.pfBuf = m.pfBuf[:0]
	done := t0
	for _, el := range m.scratch {
		m.st.Elements++
		// Elements wider than a word (3D loads on this subsystem) cost
		// one bank access per word.
		for w := 0; w < (el.Size+7)/8; w++ {
			addr := m.tim.Xl(el.Addr + uint64(8*w))
			bank := (addr >> 3) % uint64(len(m.banks))
			// Earliest free port.
			p := 0
			for i := 1; i < len(m.ports); i++ {
				if m.ports[i] < m.ports[p] {
					p = i
				}
			}
			t := t0
			if m.ports[p] > t {
				t = m.ports[p]
			}
			if m.banks[bank] > t {
				m.st.Conflicts++
				t = m.banks[bank]
			}
			m.ports[p] = t + 1
			m.banks[bank] = t + 1
			m.st.Accesses++
			m.st.Words++
			ct := t + m.tim.L2Latency
			res := m.access(addr, in.IsStore)
			if !res.Hit {
				m.st.Misses++
				m.batch = append(m.batch, dram.Request{Addr: addr, At: ct})
			}
			if res.Prefetched {
				m.pfBuf = append(m.pfBuf, PFTouch{Line: m.l2.LineAddr(addr), At: ct})
			}
			if res.Writeback && m.tim.Backend != nil {
				m.batch = append(m.batch, dram.Request{Addr: res.VictimAddr, Write: true, At: ct})
			}
			if ct > done {
				done = ct
			}
		}
	}
	// The whole instruction's misses reach the controller (or the MSHR
	// file) as one batch: the memory parallelism the instruction
	// exposes is visible to the scheduler at once. Bank conflicts make
	// the per-word times non-monotonic; the backend orders arrivals
	// itself.
	return m.tim.Complete(m.batch, m.pfBuf, done)
}

func (m *MultiBanked) access(addr uint64, store bool) cache.Result {
	coherenceInvalidate(m.l2, m.l1, addr, store, &m.st)
	return m.l2.Access(addr, store, false)
}

// VectorCache is the port-widening design of Fig 2-b: one port delivering
// up to `lanes` consecutive 64-bit words per access (two interleaved line
// banks allow crossing one line boundary). With wide3D set it is the
// Fig 8-c system: dvload elements of up to a whole L2 line move in a
// single access into the 3D register file.
type VectorCache struct {
	l2       *cache.Cache
	l1       *cache.Cache
	tim      Timing
	lanes    int
	wide3D   bool
	portFree int64
	st       Stats
	scratch  []isa.ElemAccess
	missBuf  []uint64
	wbBuf    []uint64
	batch    []dram.Request
	pfBuf    []PFTouch
}

// NewVectorCache builds the vector cache subsystem over the shared L2.
func NewVectorCache(l2, l1 *cache.Cache, tim Timing, lanes int, wide3D bool) *VectorCache {
	return &VectorCache{l2: l2, l1: l1, tim: tim, lanes: lanes, wide3D: wide3D}
}

// Name implements System.
func (v *VectorCache) Name() string {
	if v.wide3D {
		return "vectorcache+3D"
	}
	return "vectorcache"
}

// Stats implements System.
func (v *VectorCache) Stats() *Stats { return &v.st }

// Issue implements System.
func (v *VectorCache) Issue(in *isa.Inst, t0 int64) (int64, *Pending) {
	v.st.Instructions++
	v.batch = v.batch[:0]
	v.pfBuf = v.pfBuf[:0]
	done := t0
	access := func(addr uint64, words int, elems int) {
		t := t0
		if v.portFree > t {
			t = v.portFree
		}
		v.portFree = t + 1
		v.st.Accesses++
		v.st.Words += uint64(words)
		v.st.Elements += uint64(elems)
		ct := t + v.tim.L2Latency
		if missed := v.lookup(addr, uint64(words*8), in.IsStore, ct); len(missed) > 0 {
			v.st.Misses++
			for _, a := range missed {
				v.batch = append(v.batch, dram.Request{Addr: a, At: ct})
			}
		}
		if v.tim.Backend != nil {
			for _, a := range v.wbBuf {
				v.batch = append(v.batch, dram.Request{Addr: a, Write: true, At: ct})
			}
		}
		if ct > done {
			done = ct
		}
	}

	if in.Kind == isa.Kind3DLoad && v.wide3D {
		// One wide access per element: the two interleaved banks deliver
		// any span of up to a full line's width crossing at most one
		// line boundary, written in parallel to one 3D register lane.
		for e := 0; e < in.VL; e++ {
			addr := in.Addr + uint64(int64(e)*in.Stride)
			access(addr, in.Width, 1)
			v.st.D3Words += uint64(in.Width)
		}
		// The whole instruction's misses form one controller batch.
		return v.tim.Complete(v.batch, v.pfBuf, done)
	}

	switch {
	case in.Kind == isa.Kind3DLoad:
		// A 3D load on a plain vector cache (not a paper configuration,
		// but kept well-defined): each element moves lanes words per
		// access.
		for e := 0; e < in.VL; e++ {
			base := in.Addr + uint64(int64(e)*in.Stride)
			for w := 0; w < in.Width; w += v.lanes {
				n := in.Width - w
				if n > v.lanes {
					n = v.lanes
				}
				access(base+uint64(8*w), n, 0)
			}
			v.st.Elements++
		}
	case in.Stride == 0:
		// Broadcast: a single access feeds every element.
		access(in.Addr, 1, in.VL)
	case in.Stride == 8:
		// Consecutive elements: runs of up to `lanes` words per access.
		for e := 0; e < in.VL; e += v.lanes {
			n := in.VL - e
			if n > v.lanes {
				n = v.lanes
			}
			access(in.Addr+uint64(8*e), n, n)
		}
	default:
		// Strided: one element per access — the vector cache cannot
		// gather non-consecutive words in one cycle (§3.1).
		for e := 0; e < in.VL; e++ {
			access(in.Addr+uint64(int64(e)*in.Stride), 1, 1)
		}
	}
	// The whole instruction's misses form one controller batch.
	return v.tim.Complete(v.batch, v.pfBuf, done)
}

// lookup touches every L2 line the access spans (at most two for 2D
// accesses, two for 128-byte 3D elements) and returns the line
// addresses that missed; each becomes one main-memory request. Dirty
// victims evicted by the fills land in wbBuf as pending write-backs;
// demand touches of prefetched lines land in pfBuf stamped with the
// access's completion cycle ct. The slices are reused across calls.
func (v *VectorCache) lookup(addr, bytes uint64, store bool, ct int64) []uint64 {
	if bytes == 0 {
		bytes = 8
	}
	first := v.l2.LineAddr(addr)
	last := v.l2.LineAddr(addr + bytes - 1)
	v.missBuf = v.missBuf[:0]
	v.wbBuf = v.wbBuf[:0]
	// The span is contiguous in the virtual space; each line translates
	// independently, so a page-crossing access may hit discontiguous
	// physical lines (line-aligned virtual addresses stay line-aligned
	// because pages are line-multiples).
	for a := first; ; a += uint64(v.l2.Config().LineSize) {
		pa := v.tim.Xl(a)
		coherenceInvalidate(v.l2, v.l1, pa, store, &v.st)
		res := v.l2.Access(pa, store, false)
		if !res.Hit {
			v.missBuf = append(v.missBuf, pa)
		}
		if res.Prefetched {
			v.pfBuf = append(v.pfBuf, PFTouch{Line: pa, At: ct})
		}
		if res.Writeback {
			v.wbBuf = append(v.wbBuf, res.VictimAddr)
		}
		if a == last {
			break
		}
	}
	return v.missBuf
}

// coherenceInvalidate applies the exclusive-bit policy (§5.3): when a
// vector store touches an L2 line that may be cached in the L1, the L1
// copies are invalidated.
func coherenceInvalidate(l2, l1 *cache.Cache, addr uint64, store bool, st *Stats) {
	if !store || l1 == nil {
		return
	}
	if !l2.ExclusiveInL1(addr) {
		return
	}
	lineA := l2.LineAddr(addr)
	for a := lineA; a < lineA+uint64(l2.Config().LineSize); a += uint64(l1.Config().LineSize) {
		if l1.Invalidate(a) {
			st.Invalidates++
		}
	}
}
