package vmem

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/isa"
)

func l2() *cache.Cache { return cache.New(cache.L2Config(20)) }

func tim() Timing { return Timing{L2Latency: 20, MemLatency: 100} }

func momLoad(addr uint64, vl int, stride int64) *isa.Inst {
	return &isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Addr: addr, VL: vl, Stride: stride}
}

func dvLoad(addr uint64, vl, width int, stride int64) *isa.Inst {
	return &isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Addr: addr, VL: vl, Width: width, Stride: stride}
}

func TestIdealSingleCycle(t *testing.T) {
	id := NewIdeal()
	done, _ := id.Issue(momLoad(0x1000, 16, 176), 100)
	if done != 101 {
		t.Errorf("ideal done = %d, want 101", done)
	}
	if id.Stats().Words != 16 {
		t.Errorf("words = %d", id.Stats().Words)
	}
}

func TestMultiBankedConflictFree(t *testing.T) {
	m := NewMultiBanked(l2(), nil, tim(), 4, 8)
	// 8 consecutive words hit 8 distinct banks: 4 ports -> 2 cycles of
	// issue; completion = start cycle of last + latency (+miss on first).
	done, _ := m.Issue(momLoad(0, 8, 8), 0)
	st := m.Stats()
	if st.Accesses != 8 || st.Words != 8 {
		t.Errorf("stats: %+v", st)
	}
	// Elements start at cycles 0,0,0,0,1,1,1,1; the line misses once:
	// every element of the same line shares the fill? No: each element
	// access is independent; the first misses (120 extra), later ones hit
	// because the line is allocated. done = max(0+120+..)
	if done < 120 {
		t.Errorf("done = %d, expected first-miss latency to dominate", done)
	}
}

func TestMultiBankedBankConflicts(t *testing.T) {
	m := NewMultiBanked(l2(), nil, tim(), 4, 8)
	// Stride 64 bytes = 8 words: every element maps to the same bank.
	m.Issue(momLoad(0, 8, 64), 0)
	if m.Stats().Conflicts == 0 {
		t.Error("same-bank stride must produce conflicts")
	}
	// Port-limited but conflict-free pattern for comparison.
	m2 := NewMultiBanked(l2(), nil, tim(), 4, 8)
	m2.Issue(momLoad(0, 8, 8), 0)
	if m2.Stats().Conflicts != 0 {
		t.Error("consecutive words must be conflict-free across 8 banks")
	}
}

func TestVectorCacheConsecutiveRuns(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	v.Issue(momLoad(0x100, 16, 8), 0)
	st := v.Stats()
	// 16 consecutive words in runs of 4 = 4 accesses.
	if st.Accesses != 4 {
		t.Errorf("accesses = %d, want 4", st.Accesses)
	}
	if st.Words != 16 {
		t.Errorf("words = %d", st.Words)
	}
	if bw := st.EffectiveBandwidth(); bw != 4 {
		t.Errorf("effective bandwidth = %v, want 4", bw)
	}
}

func TestVectorCacheStridedDegrades(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	v.Issue(momLoad(0x100, 16, 176), 0)
	st := v.Stats()
	if st.Accesses != 16 {
		t.Errorf("accesses = %d, want 16 (one element per cycle)", st.Accesses)
	}
	if bw := st.EffectiveBandwidth(); bw != 1 {
		t.Errorf("effective bandwidth = %v, want 1", bw)
	}
}

func TestVectorCacheBroadcast(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	v.Issue(momLoad(0x100, 8, 0), 0)
	if v.Stats().Accesses != 1 {
		t.Errorf("broadcast accesses = %d, want 1", v.Stats().Accesses)
	}
}

func TestVectorCache3DWideAccess(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, true)
	v.Issue(dvLoad(0x100, 16, 16, 176), 0)
	st := v.Stats()
	// One 128-byte access per element.
	if st.Accesses != 16 {
		t.Errorf("accesses = %d, want 16", st.Accesses)
	}
	if st.Words != 16*16 {
		t.Errorf("words = %d, want 256", st.Words)
	}
	if bw := st.EffectiveBandwidth(); bw != 16 {
		t.Errorf("effective bandwidth = %v, want 16", bw)
	}
}

func TestVectorCachePortSerialization(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	// Warm the line so both instructions hit.
	v.Issue(momLoad(0x100, 4, 8), 0)
	d1, _ := v.Issue(momLoad(0x100, 4, 8), 10)
	d2, _ := v.Issue(momLoad(0x100, 4, 8), 10)
	if d2 != d1+1 {
		t.Errorf("second instruction must wait for the port: %d then %d", d1, d2)
	}
}

func TestMissLatency(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	d, _ := v.Issue(momLoad(0x100, 1, 8), 0)
	if d != 0+20+100 {
		t.Errorf("miss completion = %d, want 120", d)
	}
	d, _ = v.Issue(momLoad(0x100, 1, 8), 200)
	if d != 220 {
		t.Errorf("hit completion = %d, want 220", d)
	}
	if v.Stats().Misses != 1 {
		t.Errorf("misses = %d", v.Stats().Misses)
	}
}

func TestLineCrossingCountsOneAccess(t *testing.T) {
	v := NewVectorCache(l2(), nil, tim(), 4, false)
	// 4 words starting 8 bytes before a line boundary: spans two lines,
	// still one access (two interleaved banks).
	v.Issue(momLoad(128-8, 4, 8), 0)
	if v.Stats().Accesses != 1 {
		t.Errorf("accesses = %d, want 1", v.Stats().Accesses)
	}
}

func TestExclusiveBitInvalidatesL1(t *testing.T) {
	l2c := l2()
	l1c := cache.New(cache.L1Config())
	// Scalar side pulls a line into L1 and marks it exclusive in L2.
	l1c.Access(0x1000, false, false)
	l2c.Access(0x1000, false, true)
	v := NewVectorCache(l2c, l1c, tim(), 4, false)
	st := &isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Addr: 0x1000, VL: 4, Stride: 8, IsStore: true}
	v.Issue(st, 0)
	if l1c.Contains(0x1000) {
		t.Error("vector store must invalidate the L1 copy")
	}
	if v.Stats().Invalidates == 0 {
		t.Error("invalidation must be counted")
	}
	// A second store to the same line: exclusive bit already cleared.
	before := v.Stats().Invalidates
	v.Issue(st, 50)
	if v.Stats().Invalidates != before {
		t.Error("no further invalidations expected")
	}
}

// TestMissDoneMatchesSubmit: the one-request compatibility adapter must
// agree with a single-read batch through Submit, with and without a
// backend (the bit-exact seed path).
func TestMissDoneMatchesSubmit(t *testing.T) {
	flat := Timing{L2Latency: 20, MemLatency: 100}
	if got := flat.MissDone(0x1000, 40); got != 140 {
		t.Fatalf("flat MissDone = %d, want 140", got)
	}
	if got := flat.SubmitMisses([]dram.Request{{Addr: 0x1000, At: 40}}, 40); got != 140 {
		t.Fatalf("flat SubmitMisses = %d, want 140", got)
	}

	a, b := dram.NewFixed(100), dram.NewFixed(100)
	viaMiss := Timing{L2Latency: 20, MemLatency: 100, Backend: a}.MissDone(0x1000, 40)
	viaSubmit := Timing{L2Latency: 20, MemLatency: 100, Backend: b}.
		SubmitMisses([]dram.Request{{Addr: 0x1000, At: 40}}, 40)
	if viaMiss != viaSubmit {
		t.Fatalf("MissDone %d != SubmitMisses %d", viaMiss, viaSubmit)
	}
}

// recordingBackend captures every Submit batch so tests can assert the
// subsystems collect one batch per instruction.
type recordingBackend struct {
	batches [][]dram.Request
	st      dram.Stats
	comps   []dram.Completion
}

func (r *recordingBackend) Name() string          { return "recording" }
func (r *recordingBackend) Stats() *dram.Stats    { return &r.st }
func (r *recordingBackend) LineBytes() int        { return cache.L2LineBytes }
func (r *recordingBackend) MinReadLatency() int64 { return 100 }
func (r *recordingBackend) WriteRoom(uint64) bool { return true }
func (r *recordingBackend) Reset()                { r.batches = nil }
func (r *recordingBackend) Submit(batch []dram.Request) []dram.Completion {
	cp := append([]dram.Request(nil), batch...)
	r.batches = append(r.batches, cp)
	r.comps = r.comps[:0]
	for _, q := range batch {
		r.comps = append(r.comps, dram.Completion{Addr: q.Addr, Write: q.Write, At: q.At, Done: q.At + 100})
	}
	return r.comps
}

// TestInstructionMissesFormOneBatch: a vector instruction's line misses
// reach the backend in a single Submit call, so the controller sees the
// instruction's whole memory parallelism at once.
func TestInstructionMissesFormOneBatch(t *testing.T) {
	rb := &recordingBackend{}
	v := NewVectorCache(l2(), nil, Timing{L2Latency: 20, MemLatency: 100, Backend: rb}, 4, false)
	// 32 consecutive words from a cold cache: two 128-byte lines miss.
	done, _ := v.Issue(momLoad(0, 32, 8), 0)
	if len(rb.batches) != 1 {
		t.Fatalf("Submit calls = %d, want 1 per instruction", len(rb.batches))
	}
	if len(rb.batches[0]) != 2 {
		t.Fatalf("batch size = %d, want 2 line misses", len(rb.batches[0]))
	}
	for _, q := range rb.batches[0] {
		if q.Write {
			t.Fatalf("unexpected write in miss batch: %+v", q)
		}
	}
	// Completion gates on the last read: the second line misses on the
	// fifth access (cycle 4), +20 L2, +100 backend.
	if done != 4+20+100 {
		t.Fatalf("done = %d, want 124", done)
	}

	// A fully-hitting instruction submits nothing.
	rb.batches = nil
	v.Issue(momLoad(0, 32, 8), 200)
	if len(rb.batches) != 0 {
		t.Fatalf("hit instruction submitted %d batches", len(rb.batches))
	}
}

// TestMultiBankedMissesFormOneBatch mirrors the above for the
// multi-banked subsystem.
func TestMultiBankedMissesFormOneBatch(t *testing.T) {
	rb := &recordingBackend{}
	m := NewMultiBanked(l2(), nil, Timing{L2Latency: 20, MemLatency: 100, Backend: rb}, 4, 8)
	m.Issue(momLoad(0, 8, 64), 0) // stride 64B: 4 lines touched, all cold
	if len(rb.batches) != 1 {
		t.Fatalf("Submit calls = %d, want 1 per instruction", len(rb.batches))
	}
	if len(rb.batches[0]) != 4 {
		t.Fatalf("batch size = %d, want 4 line misses", len(rb.batches[0]))
	}
}

// TestDirtyVictimWritebackRidesBatch: evicting a dirty L2 line during a
// fill adds a posted write to the instruction's batch that never gates
// completion.
func TestDirtyVictimWritebackRidesBatch(t *testing.T) {
	l2c := cache.New(cache.Config{Name: "L2", Size: 4 * cache.L2LineBytes,
		LineSize: cache.L2LineBytes, Ways: 1, WriteBack: true, Latency: 20})
	rb := &recordingBackend{}
	v := NewVectorCache(l2c, nil, Timing{L2Latency: 20, MemLatency: 100, Backend: rb}, 4, false)

	// Dirty a line, then force its eviction with a conflicting fill
	// (direct-mapped: same set every 4 lines).
	st := &isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Addr: 0, VL: 4, Stride: 8, IsStore: true}
	v.Issue(st, 0)
	rb.batches = nil
	done, _ := v.Issue(momLoad(4*cache.L2LineBytes, 4, 8), 100)
	if len(rb.batches) != 1 {
		t.Fatalf("Submit calls = %d, want 1", len(rb.batches))
	}
	var reads, writes int
	for _, q := range rb.batches[0] {
		if q.Write {
			writes++
			if q.Addr != 0 {
				t.Fatalf("writeback addr = %#x, want 0 (the dirty victim)", q.Addr)
			}
		} else {
			reads++
		}
	}
	if reads != 1 || writes != 1 {
		t.Fatalf("batch = %d reads %d writes, want 1/1", reads, writes)
	}
	// The posted write-back must not gate the load: completion is the
	// read's fill time.
	if done != 100+20+100 {
		t.Fatalf("done = %d, want 220 (write-back must not gate)", done)
	}
}

func TestSystemNames(t *testing.T) {
	if NewIdeal().Name() != "ideal" {
		t.Error("ideal name")
	}
	if NewMultiBanked(l2(), nil, tim(), 4, 8).Name() != "multibanked" {
		t.Error("multibanked name")
	}
	if NewVectorCache(l2(), nil, tim(), 4, false).Name() != "vectorcache" {
		t.Error("vectorcache name")
	}
	if NewVectorCache(l2(), nil, tim(), 4, true).Name() != "vectorcache+3D" {
		t.Error("vectorcache+3D name")
	}
}
