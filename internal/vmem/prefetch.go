package vmem

// This file implements the stream prefetcher that rides the MSHR batch:
// a small table of stream trackers trained on the L2 line-miss address
// stream (and on demand touches of previously prefetched lines, so a
// stream the prefetcher is successfully covering keeps advancing).
// Once a stream's stride is confirmed twice, every further advance
// predicts the next Degree lines along the stride.
//
// The predictions never become their own memory traffic path: the MSHR
// file injects each one as a prefetch-tagged MSHR entry whose line-fill
// request joins the same lazily-submitted batch the demand misses ride,
// so FR-FCFS sees prefetches and demands as one reorder window. A
// prefetch entry never gates a Pending handle and never counts toward
// an instruction's occupancy; when the MSHR file is full, or the fill
// would evict a dirty victim onto a saturated write queue, the
// prefetch is dropped on the floor — prefetching may never stall the
// demand pipeline it exists to accelerate (see MSHRFile.injectPrefetch).
//
// EXPERIMENTS.md showed streaming kernels already running at 0.9+
// row-buffer hit rates: their remaining DRAM time is latency, not
// bandwidth. Fetching the predicted lines ahead of the demand stream
// converts that latency into bandwidth — the media-memory play of the
// source paper, with the batch API supplying the reorder window.

// DefaultPFDegree is the prefetch degree used when a configuration
// enables the prefetcher without choosing one: how many lines ahead of
// the confirmed stream each advance keeps in flight.
const DefaultPFDegree = 4

// pfTrainWindow bounds, in lines, how far a miss may land from a
// stream's last line and still (re)train its stride. It is
// deliberately smaller than the row pitch of an HD frame (1920 bytes,
// 15 L2 lines): a 2D kernel's intra-block misses walk whole rows
// apart, and letting them capture trackers would destroy the per-row
// horizontal streams that actually predict the block sweep (a
// macroblock sweep revisits each pixel row's next line; it only
// revisits the rows below the block if the vertical step says so).
const pfTrainWindow = 8

// PrefetchConfig sizes the prefetcher.
type PrefetchConfig struct {
	// Streams is the stream-table entry count (the number of
	// independent miss streams tracked concurrently). 0 disables the
	// prefetcher.
	Streams int
	// Degree is how many lines beyond the last confirmed miss each
	// stream keeps requested. <= 0 selects DefaultPFDegree.
	Degree int
}

// PrefetchStats counts the prefetcher's activity. Issued splits into
// Hits (fill complete before the demand touch), Late (demand touched
// the line while its fill was still in flight and merged with it as a
// secondary miss), Useless (evicted from L2 untouched) and a residual
// still in flight or unreferenced at the end of the run.
type PrefetchStats struct {
	Trains  uint64 // line observations fed to the stream table
	Streams uint64 // stream-table allocations (new streams tracked)

	Issued      uint64 // prefetch lines injected into the MSHR batch
	DroppedMSHR uint64 // predictions dropped: no free MSHR
	DroppedWQ   uint64 // predictions dropped: dirty victim, write queue full
	Filtered    uint64 // predictions already cached or already in flight

	Hits    uint64 // demand touches that found the fill complete
	Late    uint64 // demand touches that waited on an in-flight fill
	Useless uint64 // prefetched lines evicted from L2 untouched
}

// Accuracy is the fraction of issued prefetches a demand access
// eventually wanted (late ones included — they still hid latency).
func (s *PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Hits+s.Late) / float64(s.Issued)
}

// stream is one tracked miss stream.
type stream struct {
	lastLine uint64 // most recent line observed for this stream
	ahead    uint64 // furthest line already predicted along the stride
	stride   int64  // line-to-line stride in bytes; 0 = not yet trained
	conf     int    // confirmations of the current stride
	lru      uint64
}

// Prefetcher is the stream table. It is pure prediction state: Observe
// turns the miss stream into candidate line addresses, and the MSHR
// file (which owns the L2, the entry budget and the pending batch)
// decides each candidate's fate. Not safe for concurrent use, like the
// rest of the simulator.
type Prefetcher struct {
	cfg       PrefetchConfig
	lineBytes int64
	streams   []stream
	tick      uint64
	preds     []uint64 // scratch: predictions of the current Observe
	st        PrefetchStats
}

// NewPrefetcher builds a stream table. lineBytes is the L2 line size —
// the granularity of both training addresses and predictions.
func NewPrefetcher(cfg PrefetchConfig, lineBytes int) *Prefetcher {
	if cfg.Degree <= 0 {
		cfg.Degree = DefaultPFDegree
	}
	if cfg.Streams < 0 {
		cfg.Streams = 0
	}
	return &Prefetcher{
		cfg:       cfg,
		lineBytes: int64(lineBytes),
		streams:   make([]stream, 0, cfg.Streams),
	}
}

// Config returns the prefetcher's configuration (with the degree
// default applied).
func (p *Prefetcher) Config() PrefetchConfig { return p.cfg }

// Stats exposes the accumulated counters. Useless is maintained by the
// MSHR file from the L2's eviction accounting.
func (p *Prefetcher) Stats() *PrefetchStats { return &p.st }

// further reports whether a lies strictly beyond b in the stream's
// direction of travel.
func further(a, b uint64, stride int64) bool {
	if stride >= 0 {
		return a > b
	}
	return a < b
}

// Observe trains the table on one demand line address (an L2 line miss,
// or a demand touch of a prefetched line) and returns the line
// addresses the matched stream now wants in flight, oldest first. The
// returned slice is reused by the next call.
func (p *Prefetcher) Observe(line uint64) []uint64 {
	p.preds = p.preds[:0]
	if p.cfg.Streams == 0 {
		return p.preds
	}
	p.st.Trains++
	p.tick++
	window := pfTrainWindow * p.lineBytes

	// Pass 1: an exact continuation of a trained stream wins over every
	// other association, so interleaved streams don't steal each
	// other's trackers.
	for i := range p.streams {
		s := &p.streams[i]
		if line == s.lastLine {
			s.lru = p.tick
			return p.preds
		}
		if s.stride != 0 && line == s.lastLine+uint64(s.stride) {
			s.lastLine = line
			s.lru = p.tick
			if s.conf < 2 {
				s.conf++
			}
			if s.conf >= 2 {
				p.predict(s)
			}
			return p.preds
		}
	}
	// Pass 2: a miss near a stream retrains its stride (first-to-second
	// miss association, or a stream that changed step).
	for i := range p.streams {
		s := &p.streams[i]
		delta := int64(line - s.lastLine)
		if delta != 0 && delta >= -window && delta <= window {
			s.stride = delta
			s.conf = 1
			s.lastLine = line
			s.ahead = line
			s.lru = p.tick
			return p.preds
		}
	}
	// No association: track a new stream, evicting the LRU tracker.
	p.st.Streams++
	ns := stream{lastLine: line, ahead: line, lru: p.tick}
	if len(p.streams) < p.cfg.Streams {
		p.streams = append(p.streams, ns)
		return p.preds
	}
	victim := 0
	for i := 1; i < len(p.streams); i++ {
		if p.streams[i].lru < p.streams[victim].lru {
			victim = i
		}
	}
	p.streams[victim] = ns
	return p.preds
}

// predict appends the stream's uncovered lines up to Degree ahead of
// its last confirmed miss, advancing the ahead pointer.
func (p *Prefetcher) predict(s *stream) {
	if !further(s.ahead, s.lastLine, s.stride) {
		// The pointer fell behind the demand stream (retrain, or the
		// demands outran the prefetches): restart coverage at the
		// demand point.
		s.ahead = s.lastLine
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		cand := int64(s.lastLine) + int64(i)*s.stride
		if cand < 0 {
			break // the stream ran off the bottom of the address space
		}
		c := uint64(cand)
		if !further(c, s.ahead, s.stride) {
			continue // already requested on an earlier advance
		}
		p.preds = append(p.preds, c)
		s.ahead = c
	}
}
