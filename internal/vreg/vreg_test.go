package vreg

import (
	"math"
	"testing"
)

// TestTable3ExactAreas asserts that the Rixner area model reproduces every
// area figure of Table 3 of the paper exactly (in square wire tracks).
func TestTable3ExactAreas(t *testing.T) {
	mmx := MMX()
	if got := mmx.Files[0].AreaWT(); got != 2_826_240 {
		t.Errorf("MMX RF area = %d, want 2826240", got)
	}
	if got := mmx.Bus.AreaWT(); got != 262_144 {
		t.Errorf("MMX cache buses = %d, want 262144", got)
	}
	if got := mmx.TotalWT(); got != 3_088_384 {
		t.Errorf("MMX total = %d, want 3088384", got)
	}

	mom := MOM()
	if got := mom.Files[0].AreaWT(); got != 2_654_208 {
		t.Errorf("MOM RF area = %d, want 2654208", got)
	}
	if got := mom.Files[1].AreaWT(); got != 23_040 {
		t.Errorf("Accumulator RF area = %d, want 23040", got)
	}
	if got := mom.TotalWT(); got != 2_939_392 {
		t.Errorf("MOM total = %d, want 2939392", got)
	}

	m3d := MOM3D()
	if got := m3d.Files[2].AreaWT(); got != 1_966_080 {
		t.Errorf("3D Vector RF area = %d, want 1966080", got)
	}
	if got := m3d.Files[3].AreaWT(); got != 3_136 {
		t.Errorf("3D Pointer RF area = %d, want 3136", got)
	}
	if m3d.Bus.AreaWT() != 0 {
		t.Error("MOM+3D has no separate cache buses (n/a in Table 3)")
	}
	if got := m3d.TotalWT(); got != 4_646_464 {
		t.Errorf("MOM+3D total = %d, want 4646464", got)
	}
}

// TestTable3Normalized asserts the paper's normalized overall areas:
// 1.00 (MMX), 0.95 (MOM), 1.50 (MOM+3D).
func TestTable3Normalized(t *testing.T) {
	norm := Normalized(MMX(), MOM(), MOM3D())
	want := []float64{1.00, 0.95, 1.50}
	for i, w := range want {
		if math.Abs(norm[i]-w) > 0.005 {
			t.Errorf("normalized[%d] = %.4f, want %.2f", i, norm[i], w)
		}
	}
}

func TestAreaMonotonicInPorts(t *testing.T) {
	base := FileSpec{BitsPerReg: 64, Physical: 16, ReadPorts: 1, WritePorts: 1, Lanes: 1}
	more := base
	more.ReadPorts = 4
	if more.AreaWT() <= base.AreaWT() {
		t.Error("area must grow with port count")
	}
	wider := base
	wider.BitsPerReg = 128
	if wider.AreaWT() != 2*base.AreaWT() {
		t.Error("area must be linear in bits")
	}
}

func TestPortsSum(t *testing.T) {
	s := FileSpec{ReadPorts: 3, WritePorts: 2}
	if s.Ports() != 5 {
		t.Errorf("Ports = %d, want 5", s.Ports())
	}
}

func TestConfigShapes(t *testing.T) {
	if len(MMX().Files) != 1 {
		t.Error("MMX has one register file")
	}
	if len(MOM().Files) != 2 {
		t.Error("MOM has MOM RF + accumulator")
	}
	if len(MOM3D().Files) != 4 {
		t.Error("MOM+3D has four register files")
	}
	// The 3D extension costs about 50% more area than MMX (paper abstract).
	n := Normalized(MOM3D())
	if n[0] < 1.45 || n[0] > 1.55 {
		t.Errorf("MOM+3D normalized area = %.3f, want ~1.50", n[0])
	}
	for _, c := range []Config{MMX(), MOM(), MOM3D()} {
		for _, f := range c.Files {
			if f.String() == "" {
				t.Error("empty FileSpec string")
			}
		}
	}
}
