// Package vreg models the multimedia register files of the three processor
// configurations compared in the paper (MMX-like, MOM, MOM+3D) and
// implements the register-file area model of Rixner et al. ("Register
// Organization for Media Processing", HPCA-6) that the paper uses to
// produce Table 3.
//
// The model charges each register bit cell a width of (3 + p) wire tracks
// and a height of (4 + p) wire tracks, where p is the number of ports
// wired through the cell (each port adds one bit line and one word line).
// With the paper's lane organization — a register file sliced across lanes
// so each lane sees only its share of the bits but all of its ports — this
// model reproduces every area figure of Table 3 exactly; the unit tests
// assert so.
package vreg

import "fmt"

// Wire-track geometry of a single-port-free storage cell.
const (
	cellWidthTracks  = 3
	cellHeightTracks = 4
	// busTrackLength is the modeled wire-track length of one cache bus
	// bit (the "cache buses" rows of Table 3).
	busTrackLength = 1024
)

// FileSpec describes one register file: geometry, replication across
// lanes, and per-lane port counts.
type FileSpec struct {
	Name       string
	BitsPerReg int // total architectural bits per register (all lanes)
	Logical    int
	Physical   int
	ReadPorts  int // per lane
	WritePorts int // per lane
	Lanes      int // 1 if the file is not laned
}

// Ports returns the per-lane port count p used by the area model.
func (s FileSpec) Ports() int { return s.ReadPorts + s.WritePorts }

// AreaWT returns the file's area in square wire tracks under the Rixner
// model: physical registers x bits x (3+p) x (4+p). Lanes partition bits,
// not registers, so the total is independent of the lane count except
// through the per-lane port count.
func (s FileSpec) AreaWT() int64 {
	p := s.Ports()
	cell := int64(cellWidthTracks+p) * int64(cellHeightTracks+p)
	return int64(s.Physical) * int64(s.BitsPerReg) * cell
}

// String summarizes the file.
func (s FileSpec) String() string {
	return fmt.Sprintf("%s: %d/%d regs x %db, %dR/%dW x %d lanes, %d wt",
		s.Name, s.Logical, s.Physical, s.BitsPerReg, s.ReadPorts, s.WritePorts, s.Lanes, s.AreaWT())
}

// BusSpec models the dedicated buses between a register file and the cache
// ports (the "cache buses" rows of Table 3).
type BusSpec struct {
	Buses int // number of independent buses
	Bits  int // width of each bus
}

// AreaWT returns the bus area in square wire tracks.
func (b BusSpec) AreaWT() int64 {
	return int64(b.Buses) * int64(b.Bits) * busTrackLength
}

// Config is the complete multimedia register organization of one processor
// configuration.
type Config struct {
	Name  string
	Files []FileSpec
	Bus   BusSpec // zero value when the configuration has no cache buses
}

// TotalWT returns the configuration's total register area including buses.
func (c Config) TotalWT() int64 {
	var t int64
	for _, f := range c.Files {
		t += f.AreaWT()
	}
	return t + c.Bus.AreaWT()
}

// The three configurations of Table 3.

// MMX returns the MMX-like configuration: 32 logical / 80 physical 64-bit
// registers with 12 read and 8 write ports, plus 4 x 64-bit cache buses.
func MMX() Config {
	return Config{
		Name: "MMX",
		Files: []FileSpec{
			{Name: "MMX RF", BitsPerReg: 64, Logical: 32, Physical: 80, ReadPorts: 12, WritePorts: 8, Lanes: 1},
		},
		Bus: BusSpec{Buses: 4, Bits: 64},
	}
}

// MOM returns the MOM configuration: 16 logical / 36 physical 16x64-bit
// matrix registers laned 4 ways with 3R/2W per lane, plus the 192-bit
// packed accumulator file and 4 x 64-bit cache buses.
func MOM() Config {
	return Config{
		Name: "MOM",
		Files: []FileSpec{
			{Name: "MOM RF", BitsPerReg: 16 * 64, Logical: 16, Physical: 36, ReadPorts: 3, WritePorts: 2, Lanes: 4},
			{Name: "Accumulator RF", BitsPerReg: 192, Logical: 2, Physical: 4, ReadPorts: 1, WritePorts: 1, Lanes: 1},
		},
		Bus: BusSpec{Buses: 4, Bits: 64},
	}
}

// MOM3D returns the MOM + 3D memory vectorization configuration: the MOM
// files plus the 3D vector register file (2 logical / 4 physical registers
// of 16x16x64 bits, 1R/1W per lane over 4 lanes) and its 7-bit pointer
// file. The 3D register file lanes connect directly to the L2 bit lines,
// so no separate cache buses are charged (Table 3 marks them n/a).
func MOM3D() Config {
	return Config{
		Name: "MOM+3D",
		Files: []FileSpec{
			{Name: "MOM RF", BitsPerReg: 16 * 64, Logical: 16, Physical: 36, ReadPorts: 3, WritePorts: 2, Lanes: 4},
			{Name: "Accumulator RF", BitsPerReg: 192, Logical: 2, Physical: 4, ReadPorts: 1, WritePorts: 1, Lanes: 1},
			{Name: "3D Vector RF", BitsPerReg: 16 * 16 * 64, Logical: 2, Physical: 4, ReadPorts: 1, WritePorts: 1, Lanes: 4},
			{Name: "3D Pointer RF", BitsPerReg: 7, Logical: 2, Physical: 8, ReadPorts: 2, WritePorts: 2, Lanes: 1},
		},
	}
}

// Normalized returns each configuration's total area divided by the MMX
// configuration's total, in the order given.
func Normalized(cfgs ...Config) []float64 {
	base := float64(MMX().TotalWT())
	out := make([]float64, len(cfgs))
	for i, c := range cfgs {
		out[i] = float64(c.TotalWT()) / base
	}
	return out
}
