package core

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// This file extends the event tracer into the core pipeline: each
// memory instruction renders as a begin/end span from issue to commit
// (tid = its ROB slot, pid = its tenant), and flow events chain the
// instruction to the work it caused elsewhere — a 's' per fresh MSHR
// entry it allocated (the MSHR and DRAM lanes continue the chain) and
// a 'f' closing the translation-walk chain the vm layer opened when
// the instruction stalled on a TLB miss. Everything is gated on s.tr,
// so the traced hot paths cost one nil check when tracing is off.

// xlatFlowBit disambiguates translation-flow IDs (the instruction's
// sequence number) from MSHR entry IDs in the shared Chrome id space.
const xlatFlowBit = uint64(1) << 63

// SetTracer attaches a cycle-stamped event tracer to the core pipeline
// itself (issue/commit spans and causal flow events), tagging every
// event with the requestor index. The memory-system subsystems attach
// separately via MemSystem.AttachTracer. Nil detaches.
func (s *Sim) SetTracer(tr *stats.Tracer, tenant int) {
	s.tr, s.trTenant = tr, tenant
}

// traceSpans reports whether in gets an issue→commit span: the memory
// instructions are the pipeline's interesting population (and bound
// the ring's growth — ALU traffic would bury them).
func traceSpans(in *isa.Inst) bool {
	return in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem
}

// traceIssue emits the span begin and the outgoing flow events for an
// instruction that just issued at s.now. Callers gate on s.tr != nil.
func (s *Sim) traceIssue(e *robEntry) {
	in := e.in
	if !traceSpans(in) {
		return
	}
	lane := int(e.seq % uint64(s.cfg.Window))
	s.tr.Emit(stats.Event{Cycle: s.now, Cat: "core", Name: in.Op.Name(), Ph: 'B',
		Addr: in.Addr, ID: e.seq, Lane: lane, Tenant: s.trTenant})
	if e.hadWalk {
		// Close the walk chain the vm layer opened when this seq first
		// stalled on translation: the arrow lands on the issue cycle.
		s.tr.Emit(stats.Event{Cycle: s.now, Cat: "xlat", Name: "walk", Ph: 'f',
			ID: e.seq | xlatFlowBit, Lane: lane, Tenant: s.trTenant})
	}
	if e.pend != nil {
		// One chain per fresh MSHR entry this instruction allocated;
		// the MSHR file continues each chain at its alloc cycle and
		// closes it at the fill.
		for _, id := range e.pend.FreshIDs() {
			s.tr.Emit(stats.Event{Cycle: s.now, Cat: "dep", Name: "mem", Ph: 's',
				ID: id, Lane: lane, Tenant: s.trTenant})
		}
	}
}

// traceCommit closes the instruction's span at its commit cycle.
// Callers gate on s.tr != nil.
func (s *Sim) traceCommit(e *robEntry) {
	if !traceSpans(e.in) {
		return
	}
	s.tr.Emit(stats.Event{Cycle: s.now, Cat: "core", Name: e.in.Op.Name(), Ph: 'E',
		ID: e.seq, Lane: int(e.seq % uint64(s.cfg.Window)), Tenant: s.trTenant})
}
