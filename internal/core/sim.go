package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vmem"
)

// Stats is the outcome of one simulation.
type Stats struct {
	Cycles    int64
	Committed uint64
	ByKind    [isa.Kind3DMove + 1]uint64

	Mispredicts uint64

	// Forwarded counts loads served from the store queue (fully covered
	// by an older in-flight store) without touching the cache hierarchy.
	Forwarded uint64

	// Dispatch stall diagnostics (cycles in which dispatch stopped for
	// each reason; a cycle can be charged to at most one reason).
	StallROB, StallLSQ, StallRegs uint64

	// Non-blocking pipeline diagnostics. EarlyRetired counts
	// instructions that graduated while their memory completion was
	// still outstanding in the MSHR file; StallSB counts commit stalls
	// on a full store buffer.
	EarlyRetired uint64
	StallSB      uint64

	// CPI is the cycle-attribution stack (see cpi.go): every cycle the
	// sim executes or skips lands in exactly one bucket, and the
	// buckets sum to Cycles — bit-identically on both engines.
	CPI CPIStack
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

const (
	noProgressLimit = 1 << 20 // cycles without commits before declaring deadlock
)

type dep struct {
	seq    uint64
	usePtr bool // consume the 3dvmov pointer result, not the data result
}

type robEntry struct {
	in      *isa.Inst
	seq     uint64
	valid   bool
	issued  bool
	done    int64
	donePtr int64
	q       queue
	deps    [5]dep
	ndeps   int
	lo, hi  uint64 // memory address range (loads and stores)

	// pend tracks the entry's outstanding line misses in the MSHR file.
	// done then only covers port/bank occupancy and cache hits; the
	// data is architecturally complete when pend reports ready.
	// Always nil under the blocking model.
	pend *vmem.Pending

	// missed records (at issue) that the access filed main-memory
	// traffic, so the CPI stack can blame its wait on DRAM even under
	// the blocking model, where done absorbs the whole latency and
	// pend stays nil. hadWalk records (tracing only) that the access
	// had an in-flight translation transaction when it issued.
	missed  bool
	hadWalk bool

	// Wheel-engine scheduling state (see wheel.go). An unissued entry
	// is either active — on its queue's evaluation list — or asleep
	// with a registered wake-up: a cycle on the sim's issueWake queue,
	// or (enlisted) a link on the blocking entry's waiter chain.
	// waiterHead/waiterNext store seq+1, 0 meaning none; the chain
	// threads through the waiters' own ROB entries.
	active     bool
	enlisted   bool
	waiterHead uint64
	waiterNext uint64
}

type storeRec struct {
	seq    uint64
	lo, hi uint64
}

// pendRec is one scoreboard entry: the outstanding completion handle
// of a graduated instruction and the destination register it will
// eventually fill, so the rename mapping can be released once the data
// arrives.
type pendRec struct {
	h   *vmem.Pending
	dst isa.Reg
}

// Sim is one processor instance bound to a memory system.
type Sim struct {
	cfg Config
	mem *MemSystem

	rob   []robEntry
	count int
	head  int // ROB ring index of the oldest entry

	pend [qCount][]uint64 // unissued entry seqs per queue, program order

	// Rename: last uncommitted writer per (class, index).
	writer [6][32]uint64
	hasW   [6][32]bool

	inflight [6]int // uncommitted writers per register class

	lsqCount int
	stores   []storeRec // uncommitted stores, program order

	simdBusyUntil  int64 // MOM single SIMD unit occupancy
	moverBusyUntil int64 // 3D->MOM register transfer datapath occupancy

	// Scoreboard for the non-blocking memory pipeline: instructions
	// that graduated with their miss still outstanding park their
	// handle here, keyed by sequence number, so younger readers of the
	// destination register keep stalling on the true dependency after
	// the ROB entry is gone. postedStores is the store buffer: retired
	// stores whose line fill is still in flight.
	pendBySeq    map[uint64]pendRec
	postedStores []*vmem.Pending

	// Branch prediction state (gshare ablation).
	history        uint64
	pht            []int8
	mispredictSeq  uint64
	mispredictPend bool
	fetchResumeAt  int64

	// Stepping state, owned by Step so a Sim can be advanced one
	// cycle at a time interleaved with other requestors.
	insts           []isa.Inst
	next            int // next trace index to dispatch
	lastCommitCycle int64

	// Wheel-engine state (see wheel.go). issueWake is the persistent
	// per-sim queue of sleeping entries' timed wake-ups; qActive
	// holds, per issue queue, the seqs that must actually be
	// evaluated this cycle — everything else is asleep with a
	// registered wake-up and is never touched. wheelIssue routes
	// issueQueue to the event-driven scan; issueGen counts issues so
	// Advance can detect no-progress steps.
	issueWake  *engine.Ring
	qActive    [qCount][]uint64
	scanBuf    []uint64 // reusable rebuild buffer for issueQueueWheel
	midBuf     []uint64 // reusable mid-scan wake collector
	extrasBuf  []uint64 // reusable same-cycle merge list
	wheelIssue bool
	issueGen   uint64
	// Issue-side skip verdict, rebuilt by each Step's scans so NextWake
	// needs no walk of its own: issueNoSkip forces a real step next
	// cycle (an active entry needs a per-cycle re-check); issueUnitBound
	// is the earliest cycle a busy unit frees for a ready entry.
	issueNoSkip    bool
	issueUnitBound int64
	// xlatWake is the walk-completion cycle of the memory entry the
	// issue scan just refused for address translation (vm.Space.Ready
	// in the future). noteRefusal folds it into issueUnitBound — the
	// translation resolves at a fixed cycle, so the wheel may sleep
	// until then — and clears it so a later refusal in the same scan
	// cannot misread it.
	xlatWake int64
	// robMask is Window-1 when Window is a power of two, letting
	// entry() mask instead of divide on the hottest path; 0 otherwise.
	robMask uint64

	// tr, when non-nil, receives issue/commit spans and causal flow
	// events (see spans.go); trTenant tags them with the requestor.
	tr       *stats.Tracer
	trTenant int

	now   int64
	stats Stats
}

// limits per class: in-flight writers must not exceed physical - logical.
// Accumulator and 3D-pointer results are tiny (192 and 7 bits) and flow
// through the forwarding network; their Table 3 register files are
// charged for area but do not gate dispatch — modeling them as strictly
// as the wide register files would serialize every accumulate chain on
// commit latency, a behavior the paper's results exclude.
func (s *Sim) classLimit(c isa.RegClass) int {
	switch c {
	case isa.RCVec:
		return s.cfg.PhysVec - s.cfg.LogVec
	case isa.RC3D:
		return s.cfg.Phys3D - s.cfg.Log3D
	}
	return 1 << 30
}

// Simulate runs the dynamic instruction stream to completion and returns
// the statistics. The memory system accumulates its own counters.
func Simulate(cfg Config, mem *MemSystem, insts []isa.Inst) *Stats {
	s := NewSim(cfg, mem, insts)
	for s.Running() {
		s.Step()
	}
	st := s.Finish()
	mem.Drain()
	return st
}

// NewSim builds a simulator that is advanced one cycle at a time via
// Step. Simulate is the single-requestor wrapper; the tenant front end
// steps several Sims in lockstep against a shared memory system.
func NewSim(cfg Config, mem *MemSystem, insts []isa.Inst) *Sim {
	s := &Sim{cfg: cfg, mem: mem, insts: insts,
		rob:       make([]robEntry, cfg.Window),
		pendBySeq: map[uint64]pendRec{}}
	if cfg.Window > 0 && cfg.Window&(cfg.Window-1) == 0 {
		s.robMask = uint64(cfg.Window - 1) // power-of-two window: entry() masks
	}
	if cfg.UseGshare {
		s.pht = make([]int8, 1<<cfg.GshareBits)
	}
	return s
}

// Running reports whether another Step would do work: trace left to
// dispatch or instructions still in the window.
func (s *Sim) Running() bool {
	return s.next < len(s.insts) || s.count > 0
}

// Now returns the core's current cycle — the sampling driver reads it
// to stamp interval rows at the cycle the engine actually reached
// (the wheel can land past a boundary).
func (s *Sim) Now() int64 { return s.now }

// Step advances the pipeline one cycle in the same stage order the
// original monolithic loop used: prune, commit, issue, dispatch — then
// charges the cycle to its CPI bucket before the clock moves.
func (s *Sim) Step() {
	s.prunePending()
	committed := s.commit()
	if committed {
		s.lastCommitCycle = s.now
	}
	s.issue()
	s.next = s.dispatch(s.insts, s.next)
	s.chargeCPI(1, committed)
	s.now++
	if s.now-s.lastCommitCycle > noProgressLimit {
		panic(fmt.Sprintf("core: no commit progress at cycle %d (trace pos %d/%d, rob %d)",
			s.now, s.next, len(s.insts), s.count))
	}
}

// StatsRef exposes the simulator's live counters (the same struct
// Finish returns) so a registry can be wired up before the run.
func (s *Sim) StatsRef() *Stats { return &s.stats }

// Finish settles the end-of-run cycle count once Running is false. The
// window is empty, but the non-blocking pipeline may still have misses
// in flight; the run ends when the last one lands. (The end-of-trace
// acts as the pipeline's only barrier — the ISA has no explicit fence
// instruction.) Finish does NOT drain the memory system: with a shared
// backend the caller drains once after every requestor has finished.
func (s *Sim) Finish() *Stats {
	s.stats.Cycles = s.now
	for _, rec := range s.pendBySeq {
		if d := rec.h.Done(); d > s.stats.Cycles {
			s.stats.Cycles = d
		}
	}
	for _, h := range s.postedStores {
		if d := h.Done(); d > s.stats.Cycles {
			s.stats.Cycles = d
		}
	}
	// The drain tail: cycles between the last executed step and the
	// last fill landing close the CPI stack's conservation invariant.
	if d := s.stats.Cycles - s.now; d > 0 {
		s.stats.CPI.Drain += uint64(d)
	}
	return &s.stats
}

// prunePending clears scoreboard entries whose data has arrived,
// releasing the rename mapping they held. It only consults already
// resolved state (Settled never forces the MSHR file to flush), so
// polling it every cycle does not perturb batch accumulation.
func (s *Sim) prunePending() {
	if len(s.pendBySeq) > 0 {
		for seq, rec := range s.pendBySeq {
			if !rec.h.Settled(s.now) {
				continue
			}
			if r := rec.dst; r.Valid() {
				c, i := r.Class(), r.Index()
				if s.hasW[c][i] && s.writer[c][i] == seq {
					s.hasW[c][i] = false
				}
			}
			delete(s.pendBySeq, seq)
		}
	}
	if len(s.postedStores) > 0 {
		live := s.postedStores[:0]
		for _, h := range s.postedStores {
			if !h.Settled(s.now) {
				live = append(live, h)
			}
		}
		s.postedStores = live
	}
}

func (s *Sim) entry(seq uint64) *robEntry {
	i := seq
	if s.robMask != 0 {
		i &= s.robMask
	} else {
		i %= uint64(s.cfg.Window)
	}
	e := &s.rob[i]
	if e.valid && e.seq == seq {
		return e
	}
	return nil // already committed
}

// commit retires up to CommitWidth completed instructions in order. An
// instruction whose port/bank occupancy is done but whose line miss is
// still outstanding retires early: its destination register stays
// busy on the scoreboard (pendBySeq) so true dependents keep waiting,
// while independent younger instructions stream past — the
// out-of-order memory completion the MSHR file enables. Retired stores
// with outstanding fills occupy the store buffer; commit stalls when
// it is full.
func (s *Sim) commit() bool {
	n := 0
	for n < s.cfg.CommitWidth && s.count > 0 {
		e := &s.rob[s.head]
		if !e.issued || e.done > s.now {
			break
		}
		in := e.in
		outstanding := e.pend != nil && !e.pend.Settled(s.now)
		if outstanding && in.IsStore && s.cfg.StoreBuf > 0 &&
			len(s.postedStores) >= s.cfg.StoreBuf {
			// Store buffer full: force the oldest posted store toward
			// resolution (ReadyBy flushes once its lower bound passes)
			// and retry next cycle.
			s.stats.StallSB++
			s.postedStores[0].ReadyBy(s.now)
			break
		}
		// Release rename state. A destination still waiting on memory
		// keeps its mapping: the scoreboard owns it until the fill
		// lands (prunePending clears it).
		keepDst := outstanding && in.Dst.Valid()
		s.release(in.Dst, e.seq, keepDst)
		if in.Op == isa.Op3DVMov {
			s.release(in.Ptr, e.seq, false)
		}
		if outstanding {
			s.stats.EarlyRetired++
			s.pendBySeq[e.seq] = pendRec{h: e.pend, dst: in.Dst}
			if in.IsStore {
				s.postedStores = append(s.postedStores, e.pend)
			}
		}
		if in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem {
			s.lsqCount--
			if in.IsStore && len(s.stores) > 0 && s.stores[0].seq == e.seq {
				s.stores = s.stores[1:]
			}
		}
		s.stats.Committed++
		s.stats.ByKind[in.Kind]++
		if s.tr != nil {
			s.traceCommit(e)
		}
		e.valid = false
		s.head = (s.head + 1) % s.cfg.Window
		s.count--
		n++
	}
	return n > 0
}

// release frees one rename mapping at commit. keepMapping leaves the
// writer visible (the scoreboard case: the physical register slot is
// recycled for dispatch accounting, but readers must still find the
// in-flight producer).
func (s *Sim) release(r isa.Reg, seq uint64, keepMapping bool) {
	if !r.Valid() {
		return
	}
	c, i := r.Class(), r.Index()
	if !keepMapping && s.hasW[c][i] && s.writer[c][i] == seq {
		s.hasW[c][i] = false
	}
	s.inflight[c]--
}

// ready reports whether every operand of e is available and, for loads,
// whether all older overlapping stores have completed.
func (s *Sim) ready(e *robEntry) bool {
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := s.entry(d.seq)
		if p == nil {
			// Committed — but a producer that retired early may still
			// be filling the register from memory; the scoreboard keeps
			// the true dependency alive. (ReadyBy resolves the MSHR
			// batch lazily: it answers false for free while the
			// minimum-latency bound rules completion out.)
			if rec, ok := s.pendBySeq[d.seq]; ok && !d.usePtr && !rec.h.ReadyBy(s.now) {
				return false
			}
			continue // value in the register file
		}
		if !p.issued {
			return false
		}
		t := p.done
		if d.usePtr {
			t = p.donePtr
		}
		if t > s.now {
			return false
		}
		if !d.usePtr && p.pend != nil && !p.pend.ReadyBy(s.now) {
			return false
		}
	}
	if e.in.Kind.IsMem() && !e.in.IsStore {
		// A load waits only for un-issued older overlapping stores: once
		// a store has issued, the LSQ forwarding/merge network supplies
		// its data to younger loads.
		for _, st := range s.stores {
			if st.seq >= e.seq {
				break
			}
			if st.lo < e.hi && e.lo < st.hi {
				p := s.entry(st.seq)
				if p != nil && !p.issued {
					return false
				}
			}
		}
	}
	return true
}

// issue selects ready instructions oldest-first from each queue, bounded
// by the per-queue issue widths and functional unit structure.
func (s *Sim) issue() {
	if s.wheelIssue {
		// Reset this step's issue-side skip verdict; the scans below,
		// wakeWaiters, and insert re-establish it (see wheel.go).
		s.issueNoSkip = false
		s.issueUnitBound = maxWake
		s.drainWakes() // move entries whose timed wake-up is due back to active
	}
	// Integer pipeline.
	s.issueQueue(qInt, s.cfg.IntIssue, func(e *robEntry) (int64, bool) {
		return s.now + int64(e.in.Op.Class().Latency()), true
	})

	// Multimedia pipeline.
	momStyle := s.cfg.SIMDFUs == 1 && s.cfg.Lanes > 1
	s.issueQueue(qSIMD, s.cfg.SIMDIssue, func(e *robEntry) (int64, bool) {
		lat := int64(e.in.Op.Class().Latency())
		if !momStyle {
			return s.now + lat, true
		}
		if s.simdBusyUntil > s.now {
			return 0, false
		}
		occ := simdOccupancy(e.in, s.cfg.Lanes)
		s.simdBusyUntil = s.now + occ
		return s.now + occ - 1 + lat, true
	})

	// Memory pipeline.
	l1Used := 0
	s.issueQueue(qMem, s.cfg.MemIssue, func(e *robEntry) (int64, bool) {
		if e.in.Op == isa.Op3DVMov {
			// A register-file transfer: Lanes elements/cycle over the
			// dedicated 3D datapath; the pointer update resolves in one
			// cycle.
			if s.moverBusyUntil > s.now {
				return 0, false
			}
			occ := simdOccupancy(e.in, s.cfg.Lanes)
			s.moverBusyUntil = s.now + occ
			e.donePtr = s.now + 1
			return s.now + occ - 1 + int64(e.in.Op.Class().Latency()), true
		}
		if !e.in.IsStore && s.forwardable(e) {
			// Store-to-load forwarding: the load's bytes are entirely
			// covered by an older in-flight store, so the LSQ supplies
			// them without a cache access.
			s.stats.Forwarded++
			return s.now + 2, true
		}
		if e.in.Kind.IsVectorMem() {
			// Address translation gates issue: every page the access
			// touches must resolve before the subsystem may fire. The
			// stall is an idempotent transaction keyed by seq, so the
			// per-cycle retries here and the wheel's sparse retries
			// leave identical TLB state (see internal/vm).
			if sp := s.mem.Tim.VA; sp != nil {
				if s.tr != nil && sp.InFlight(e.seq) {
					e.hadWalk = true // peek before Ready retires the transaction
				}
				if until := sp.Ready(e.in, e.seq, s.now); until > s.now {
					s.xlatWake = until
					return 0, false
				}
			}
			sig := s.missSig()
			done, pend := s.mem.VM.Issue(e.in, s.now)
			e.pend = pend
			e.missed = pend != nil || s.missSig() != sig
			return done, true
		}
		if l1Used >= s.cfg.L1Ports {
			return 0, false
		}
		// Translation after the port check: a translation-stalled access
		// holds no L1 port, and once both pass the access always issues,
		// so the transaction retires exactly once.
		if sp := s.mem.Tim.VA; sp != nil {
			if s.tr != nil && sp.InFlight(e.seq) {
				e.hadWalk = true
			}
			if until := sp.Ready(e.in, e.seq, s.now); until > s.now {
				s.xlatWake = until
				return 0, false
			}
		}
		l1Used++
		sig := s.missSig()
		done, pend := s.mem.ScalarAccess(e.in, s.now)
		e.pend = pend
		e.missed = pend != nil || s.missSig() != sig
		return done, true
	})
}

// forwardable reports whether an older in-flight issued store fully
// covers the load's byte range.
func (s *Sim) forwardable(e *robEntry) bool {
	for _, st := range s.stores {
		if st.seq >= e.seq {
			break
		}
		if st.lo <= e.lo && e.hi <= st.hi {
			p := s.entry(st.seq)
			if p != nil && p.issued {
				return true
			}
		}
	}
	return false
}

// issueQueue scans one pending queue oldest-first, issuing up to width
// entries for which fire() grants a slot and returns a completion cycle.
// Under the wheel engine the scan is event-driven instead (wheel.go):
// only entries with a pending reason to re-evaluate are visited.
func (s *Sim) issueQueue(q queue, width int, fire func(e *robEntry) (int64, bool)) {
	if s.wheelIssue {
		s.issueQueueWheel(q, width, fire)
		return
	}
	pend := s.pend[q]
	kept := pend[:0]
	issued := 0
	for _, seq := range pend {
		e := s.entry(seq)
		if e == nil || e.issued {
			continue
		}
		if issued < width && s.ready(e) {
			done, ok := fire(e)
			if ok {
				e.issued = true
				e.done = done
				if e.donePtr == 0 {
					e.donePtr = done
				}
				if s.tr != nil {
					s.traceIssue(e)
				}
				s.issueGen++
				issued++
				continue
			}
		}
		kept = append(kept, seq)
	}
	s.pend[q] = kept
}

// dispatch brings up to FetchWidth instructions into the window, stopping
// at resource exhaustion or a taken branch (fetch break).
func (s *Sim) dispatch(insts []isa.Inst, next int) int {
	if s.mispredictPend {
		e := s.entry(s.mispredictSeq)
		if e == nil || (e.issued && e.done <= s.now) {
			resolve := s.now
			if e != nil {
				resolve = e.done
			}
			s.fetchResumeAt = resolve + s.cfg.MispredictPenalty
			s.mispredictPend = false
		} else {
			return next
		}
	}
	if s.now < s.fetchResumeAt {
		return next
	}
	for n := 0; n < s.cfg.FetchWidth && next < len(insts); n++ {
		in := &insts[next]
		if s.count == s.cfg.Window {
			s.stats.StallROB++
			break
		}
		isMem := in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem
		if isMem && s.lsqCount == s.cfg.LSQ {
			s.stats.StallLSQ++
			break
		}
		if !s.regsAvailable(in) {
			s.stats.StallRegs++
			break
		}
		s.insert(in)
		next++
		if in.Kind == isa.KindBranch {
			if s.cfg.UseGshare && s.predict(in) != in.Taken {
				s.stats.Mispredicts++
				s.mispredictPend = true
				s.mispredictSeq = in.Seq
				break
			}
			if in.Taken {
				break // fetch break on taken branches
			}
		}
	}
	return next
}

func (s *Sim) regsAvailable(in *isa.Inst) bool {
	if in.Dst.Valid() {
		c := in.Dst.Class()
		if s.inflight[c] >= s.classLimit(c) {
			return false
		}
	}
	if in.Op == isa.Op3DVMov && s.inflight[isa.RCPtr] >= s.classLimit(isa.RCPtr) {
		return false
	}
	return true
}

// insert renames and dispatches one instruction into the window.
func (s *Sim) insert(in *isa.Inst) {
	idx := int(in.Seq % uint64(s.cfg.Window))
	e := &s.rob[idx]
	*e = robEntry{in: in, seq: in.Seq, valid: true, q: queueOf(in)}

	addDep := func(r isa.Reg, usePtr bool) {
		if !r.Valid() {
			return
		}
		c, i := r.Class(), r.Index()
		if s.hasW[c][i] {
			e.deps[e.ndeps] = dep{seq: s.writer[c][i], usePtr: usePtr}
			e.ndeps++
		}
	}
	addDep(in.Src1, false)
	addDep(in.Src2, false)
	if in.Ptr.Valid() {
		addDep(in.Ptr, true)
	}
	switch in.Op {
	case isa.OpVSadAcc, isa.OpVMacAcc, isa.OpVAddWAcc:
		addDep(in.Dst, false) // accumulators read-modify-write
	}

	setWriter := func(r isa.Reg) {
		if !r.Valid() {
			return
		}
		c, i := r.Class(), r.Index()
		s.writer[c][i] = in.Seq
		s.hasW[c][i] = true
		s.inflight[c]++
	}
	setWriter(in.Dst)
	if in.Op == isa.Op3DVMov {
		setWriter(in.Ptr)
	}

	if in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem {
		s.lsqCount++
		e.lo, e.hi = memRange(in)
		if in.IsStore {
			s.stores = append(s.stores, storeRec{seq: in.Seq, lo: e.lo, hi: e.hi})
		}
	}

	if s.wheelIssue {
		// Park straight from dispatch when a registered wake-up covers
		// the entry; otherwise it is ready (or needs per-cycle polls)
		// and must be evaluated next cycle.
		if _, asleep := s.issueBoundPark(e); !asleep {
			e.active = true
			s.qActive[e.q] = append(s.qActive[e.q], in.Seq)
			s.issueNoSkip = true
		}
	} else {
		s.pend[e.q] = append(s.pend[e.q], in.Seq)
	}
	s.count++
}

// memRange returns the conservative [lo, hi) byte range an instruction
// touches, used for store-to-load ordering.
func memRange(in *isa.Inst) (lo, hi uint64) {
	switch in.Kind {
	case isa.KindScalarMem:
		return in.Addr, in.Addr + uint64(in.Imm)
	case isa.KindUSIMDMem:
		return in.Addr, in.Addr + 8
	case isa.KindMOMMem, isa.Kind3DLoad:
		size := int64(isa.MOMElemBytes)
		if in.Kind == isa.Kind3DLoad {
			size = int64(in.Width) * 8
		}
		first := int64(in.Addr)
		last := first + int64(in.VL-1)*in.Stride
		if last < first {
			first, last = last, first
		}
		return uint64(first), uint64(last + size)
	}
	return 0, 0
}

// predict consults the gshare pattern history table and updates it with
// the actual outcome (traces carry perfect outcomes; the predictor is an
// ablation of the perfect-prediction default).
func (s *Sim) predict(in *isa.Inst) bool {
	idx := s.history & (uint64(len(s.pht)) - 1)
	ctr := s.pht[idx]
	pred := ctr >= 2
	if in.Taken && ctr < 3 {
		s.pht[idx]++
	}
	if !in.Taken && ctr > 0 {
		s.pht[idx]--
	}
	s.history = s.history<<1 | uint64(boolBit(in.Taken))
	return pred
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
