package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vmem"
)

func idealMem() *MemSystem { return NewMemSystem(MemIdeal, vmem.DefaultTiming(), 4, false) }

// seqify assigns sequence numbers in order.
func seqify(insts []isa.Inst) []isa.Inst {
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	return insts
}

func add(dst, a, b int) isa.Inst {
	return isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar, Dst: isa.R(dst), Src1: isa.R(a), Src2: isa.R(b)}
}

func TestIndependentScalarIPC(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 4000; i++ {
		insts = append(insts, add(i%8, 8+i%8, 16+i%8))
	}
	st := Simulate(MMXCore(), idealMem(), seqify(insts))
	if st.Committed != 4000 {
		t.Fatalf("committed %d", st.Committed)
	}
	// Bound by integer issue width 4.
	if ipc := st.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Errorf("IPC = %.2f, want ~4 (int issue width)", ipc)
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 1000; i++ {
		insts = append(insts, add(1, 1, 2)) // r1 = r1 + r2, serial chain
	}
	st := Simulate(MMXCore(), idealMem(), seqify(insts))
	if st.Cycles < 1000 {
		t.Errorf("cycles = %d, a 1000-deep chain needs >= 1000 cycles", st.Cycles)
	}
}

func TestTakenBranchFetchBreak(t *testing.T) {
	// Pairs of (add, taken branch): fetch breaks every branch, so at most
	// 2 instructions enter per cycle.
	var insts []isa.Inst
	for i := 0; i < 500; i++ {
		insts = append(insts, add(1, 2, 3))
		insts = append(insts, isa.Inst{Op: isa.OpBr, Kind: isa.KindBranch, Src1: isa.R(1), Taken: true})
	}
	st := Simulate(MMXCore(), idealMem(), seqify(insts))
	if ipc := st.IPC(); ipc > 2.05 {
		t.Errorf("IPC = %.2f, fetch breaks must cap it at ~2", ipc)
	}
}

func TestMOMOccupancy(t *testing.T) {
	// Two independent VL=16 vector adds on the 4-lane MOM unit: the
	// second cannot issue until the first's 4 occupancy cycles elapse.
	insts := seqify([]isa.Inst{
		{Op: isa.OpPAddB, Kind: isa.KindMOM, Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(3), VL: 16},
		{Op: isa.OpPAddB, Kind: isa.KindMOM, Dst: isa.V(4), Src1: isa.V(5), Src2: isa.V(6), VL: 16},
	})
	st := Simulate(MOMCore(), idealMem(), insts)
	// First issues at cycle 0 (occ 4, lat 1): done 4. Second issues at 4,
	// done 8; commit at 8 -> ~9-10 cycles total.
	if st.Cycles < 8 || st.Cycles > 12 {
		t.Errorf("cycles = %d, want ~9 (occupancy serialization)", st.Cycles)
	}
}

func TestMMXParallelSIMD(t *testing.T) {
	// Four independent μSIMD adds issue in one cycle on the MMX core.
	var insts []isa.Inst
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpPAddB, Kind: isa.KindUSIMD,
			Dst: isa.V(i), Src1: isa.V(8 + i), Src2: isa.V(16 + i)})
	}
	st := Simulate(MMXCore(), idealMem(), seqify(insts))
	if st.Cycles > 5 {
		t.Errorf("cycles = %d, four independent μSIMD ops should finish in ~3", st.Cycles)
	}
}

func TestStoreLoadOrdering(t *testing.T) {
	// A load overlapping an older store may not issue before the store
	// does (forwarding supplies the data once the store has issued). Make
	// the store's data late with a long dependence chain; the overlapping
	// load must be delayed by it, the disjoint load must not.
	mkVec := func(overlap bool) []isa.Inst {
		loadAddr := uint64(0x9000)
		if overlap {
			loadAddr = 0x1040
		}
		var insts []isa.Inst
		// Warm both lines so misses don't mask the ordering effect.
		insts = append(insts,
			isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(5), VL: 4, Stride: 8, Addr: 0x1000},
			isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(6), VL: 4, Stride: 8, Addr: 0x9000},
		)
		for i := 0; i < 30; i++ { // serial chain producing the store data
			insts = append(insts, isa.Inst{Op: isa.OpPAddB, Kind: isa.KindMOM,
				Dst: isa.V(1), Src1: isa.V(1), Src2: isa.V(2), VL: 16})
		}
		insts = append(insts,
			isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Src2: isa.V(1), VL: 16, Stride: 8, Addr: 0x1000, IsStore: true},
			isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(3), VL: 4, Stride: 8, Addr: loadAddr},
			// Scalar consumer chain (independent of the busy SIMD unit).
			isa.Inst{Op: isa.OpVMovV2I, Kind: isa.KindScalar, Dst: isa.R(1), Src1: isa.V(3)},
		)
		for i := 0; i < 30; i++ {
			insts = append(insts, isa.Inst{Op: isa.OpIAddImm, Kind: isa.KindScalar,
				Dst: isa.R(1), Src1: isa.R(1), Imm: 1})
		}
		return seqify(insts)
	}
	cfg := MOMCore()
	a := Simulate(cfg, NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false), mkVec(true))
	b := Simulate(cfg, NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false), mkVec(false))
	if a.Cycles <= b.Cycles {
		t.Errorf("overlapping load (%d cycles) must be delayed past the disjoint case (%d)", a.Cycles, b.Cycles)
	}
}

func TestRenameLimitStalls(t *testing.T) {
	// More in-flight MOM register writers than physical registers allow
	// (36 - 16 = 20): a long chain of independent vector loads through a
	// slow memory keeps writers in flight; dispatch must stall, not break.
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem,
			Dst: isa.V(i % 16), VL: 16, Stride: 176, Addr: uint64(0x10000 + i*4096)})
	}
	st := Simulate(MOMCore(), NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false), seqify(insts))
	if st.Committed != 64 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallRegs == 0 {
		t.Error("expected rename stalls with 64 in-flight vector writers")
	}
}

func TestVectorMemoryCompletes(t *testing.T) {
	insts := seqify([]isa.Inst{
		{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0), VL: 16, Width: 16, Stride: 176, Addr: 0x2000},
		{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1), Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 1, VL: 16},
		{Op: isa.OpVSadAcc, Kind: isa.KindMOM, Dst: isa.A(0), Src1: isa.V(1), Src2: isa.V(2), VL: 16},
	})
	mem := NewMemSystem(MemVectorCache3D, vmem.DefaultTiming(), 4, false)
	st := Simulate(MOMCore(), mem, insts)
	if st.Committed != 3 {
		t.Fatalf("committed %d", st.Committed)
	}
	if mem.VM.Stats().Accesses != 16 {
		t.Errorf("3D load accesses = %d, want 16", mem.VM.Stats().Accesses)
	}
	// The dvmov depends on the dvload's data: total time must include the
	// memory latency and the transfer occupancy.
	if st.Cycles < 40 {
		t.Errorf("cycles = %d, expected the L2+miss latency to show", st.Cycles)
	}
}

func TestPointerChainFasterThanData(t *testing.T) {
	// Successive 3dvmovs depend on each other's pointer (1 cycle), not
	// the 3-cycle data path. With VL=4 (occupancy 1), a chain of N dvmovs
	// should run ~1 cycle apart, not 3.
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad,
		Dst: isa.D(0), VL: 4, Width: 4, Stride: 64, Addr: 0x3000})
	for i := 0; i < 40; i++ {
		insts = append(insts, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove,
			Dst: isa.V(1 + i%8), Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 1, VL: 4})
	}
	mem := NewMemSystem(MemIdeal, vmem.DefaultTiming(), 4, false)
	st := Simulate(MOMCore(), mem, seqify(insts))
	// 40 dvmovs at ~1/cycle plus setup; data-serialized would be ~120+.
	if st.Cycles > 80 {
		t.Errorf("cycles = %d, pointer chain must not serialize on data latency", st.Cycles)
	}
}

func TestGshareAblation(t *testing.T) {
	// Alternating taken/not-taken branches: gshare learns the pattern,
	// so mispredicts must be far below 50%.
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, add(1, 2, 3))
		insts = append(insts, isa.Inst{Op: isa.OpBr, Kind: isa.KindBranch, Src1: isa.R(1), Taken: i%2 == 0})
	}
	cfg := MMXCore()
	cfg.UseGshare = true
	st := Simulate(cfg, idealMem(), seqify(insts))
	if st.Mispredicts > 400 {
		t.Errorf("mispredicts = %d on a learnable pattern", st.Mispredicts)
	}
	// And the penalty must cost cycles relative to perfect prediction.
	st2 := Simulate(MMXCore(), idealMem(), seqify(insts))
	if st.Cycles <= st2.Cycles {
		t.Errorf("gshare (%d cycles) must not beat perfect prediction (%d)", st.Cycles, st2.Cycles)
	}
}

func TestMemKindStrings(t *testing.T) {
	kinds := []MemKind{MemIdeal, MemMultiBanked, MemVectorCache, MemVectorCache3D}
	for _, k := range kinds {
		if k.String() == "?" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestL2ActivityAccounting(t *testing.T) {
	mem := NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false)
	insts := seqify([]isa.Inst{
		{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(1), VL: 16, Stride: 176, Addr: 0x2000},
		{Op: isa.OpLoad, Kind: isa.KindScalarMem, Dst: isa.R(1), Imm: 8, Addr: 0x80000},
	})
	Simulate(MOMCore(), mem, insts)
	if mem.L2Activity() != mem.VM.Stats().Accesses+mem.ScalarL2Accesses {
		t.Error("activity must be vector + scalar-miss accesses")
	}
	if mem.ScalarL2Accesses != 1 {
		t.Errorf("scalar L2 accesses = %d, want 1 (cold miss)", mem.ScalarL2Accesses)
	}
}
