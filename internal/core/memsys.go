package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// MemKind selects the memory system configuration of an experiment.
type MemKind int

const (
	// MemIdeal is the idealistic memory of §3.1: one cycle, unbounded
	// bandwidth, for both the scalar and vector sides.
	MemIdeal MemKind = iota
	// MemMultiBanked attaches the 4-port, 8-bank vector cache design
	// (Fig 2-a) to L2; in the MMX configuration the banking applies to
	// the L1 data cache ports instead.
	MemMultiBanked
	// MemVectorCache attaches the single-wide-port vector cache
	// (Fig 2-b).
	MemVectorCache
	// MemVectorCache3D is the vector cache plus the 3D register file
	// datapath (Fig 8-c).
	MemVectorCache3D
)

// String names the memory system as the figures do.
func (k MemKind) String() string {
	switch k {
	case MemIdeal:
		return "ideal"
	case MemMultiBanked:
		return "multi-banked"
	case MemVectorCache:
		return "vector cache"
	case MemVectorCache3D:
		return "vector cache + 3D"
	}
	return "?"
}

// MemSystem bundles the cache hierarchy, the vector memory subsystem and
// the scalar access path for one simulation.
type MemSystem struct {
	Kind MemKind
	Tim  vmem.Timing
	L1   *cache.Cache // nil when ideal
	L2   *cache.Cache // nil when ideal
	VM   vmem.System

	// ScalarL2Accesses counts L2 activity caused by L1 load misses
	// (write-through store traffic is assumed coalesced by the write
	// buffer and is not charged as activity).
	ScalarL2Accesses uint64

	l1Banks []int64 // MMX multi-banked configuration: L1 bank free cycles

	scalarBatch []dram.Request // reused one-miss batch for the scalar path
	scalarPF    []vmem.PFTouch // reused prefetched-touch list for the scalar path
}

// NewMemSystem builds a memory system. lanes is the processor's lane
// count (the vector cache port width in words); bankL1 enables L1 port
// banking (the MMX multi-banked configuration).
func NewMemSystem(kind MemKind, tim vmem.Timing, lanes int, bankL1 bool) *MemSystem {
	m := &MemSystem{Kind: kind, Tim: tim}
	if kind == MemIdeal {
		// The ideal memory bypasses the cache hierarchy the translation
		// layer models; the CLIs reject -va with ideal memory, and the
		// guard keeps a stray space from charging stalls here.
		m.Tim.VA = nil
		m.VM = vmem.NewIdeal()
		return m
	}
	m.L1 = cache.New(cache.L1Config())
	m.L2 = cache.New(cache.L2Config(tim.L2Latency))
	// Every L2 miss becomes one backend request per L2 line, so the
	// backend must agree on the transfer granularity.
	if tim.Backend != nil && tim.Backend.LineBytes() != m.L2.Config().LineSize {
		panic(fmt.Sprintf("dram line bytes %d != L2 line size %d",
			tim.Backend.LineBytes(), m.L2.Config().LineSize))
	}
	if tim.MSHRs >= 1 {
		// One MSHR file serves the vector subsystem and the scalar miss
		// path: both sit behind the same L2, so their misses share the
		// same outstanding-line budget and the same Submit batches.
		m.Tim.MSHR = vmem.NewMSHRFile(tim, tim.MSHRs)
	}
	if tim.PFStreams > 0 {
		// The stream prefetcher needs the lazy batch to ride: reject
		// configurations the CLIs should already have screened out.
		if tim.MSHRs < 2 {
			panic("core: the stream prefetcher (PFStreams > 0) requires a non-blocking MSHR file (MSHRs >= 2)")
		}
		pf := vmem.NewPrefetcher(vmem.PrefetchConfig{Streams: tim.PFStreams, Degree: tim.PFDegree},
			m.L2.Config().LineSize)
		m.Tim.MSHR.AttachPrefetcher(pf, m.L2)
	}
	switch kind {
	case MemMultiBanked:
		m.VM = vmem.NewMultiBanked(m.L2, m.L1, m.Tim, 4, 8)
	case MemVectorCache:
		m.VM = vmem.NewVectorCache(m.L2, m.L1, m.Tim, lanes, false)
	case MemVectorCache3D:
		m.VM = vmem.NewVectorCache(m.L2, m.L1, m.Tim, lanes, true)
	}
	if bankL1 {
		m.l1Banks = make([]int64, 8)
	}
	return m
}

// NewTenantMemSystems builds n front-end views of ONE shared memory
// system: a single L2, MSHR file, prefetcher and DRAM backend serve
// every tenant, while each tenant keeps its own L1, vector subsystem
// and scalar path (mirroring one core per requestor). Tenant i's
// Timing carries Tenant=i, so every miss it files is requestor-tagged
// on the opaque ID path all the way into the backend. Tenant 0's view
// is constructed by NewMemSystem itself, so a 1-tenant system is the
// single-requestor system, bit for bit.
//
// vmsys, when non-nil, gives tenant i the virtual address space
// vmsys.Space(i): real per-tenant address spaces over one shared
// physical pool, replacing the tenant<<32 window rebasing.
func NewTenantMemSystems(kind MemKind, tim vmem.Timing, lanes int, bankL1 bool, n int, vmsys *vm.VM) []*MemSystem {
	if n < 1 {
		panic("core: tenant count must be at least 1")
	}
	if vmsys != nil {
		if vmsys.N() < n {
			panic(fmt.Sprintf("core: %d tenants over a %d-space VM", n, vmsys.N()))
		}
		tim.VA = vmsys.Space(0)
	}
	mems := make([]*MemSystem, n)
	mems[0] = NewMemSystem(kind, tim, lanes, bankL1)
	for i := 1; i < n; i++ {
		m := &MemSystem{Kind: kind, Tim: mems[0].Tim}
		m.Tim.Tenant = i
		if vmsys != nil {
			m.Tim.VA = vmsys.Space(i)
		}
		if kind == MemIdeal {
			m.Tim.VA = nil
			m.VM = vmem.NewIdeal()
			mems[i] = m
			continue
		}
		m.L1 = cache.New(cache.L1Config())
		m.L2 = mems[0].L2 // shared: all tenants contend for the same lines
		switch kind {
		case MemMultiBanked:
			m.VM = vmem.NewMultiBanked(m.L2, m.L1, m.Tim, 4, 8)
		case MemVectorCache:
			m.VM = vmem.NewVectorCache(m.L2, m.L1, m.Tim, lanes, false)
		case MemVectorCache3D:
			m.VM = vmem.NewVectorCache(m.L2, m.L1, m.Tim, lanes, true)
		}
		if bankL1 {
			m.l1Banks = make([]int64, 8)
		}
		mems[i] = m
	}
	return mems
}

// NewVM builds the address-translation layer for n requestors: the
// default 4-level/4 KiB configuration under the named placement policy
// ("first", "color" or "colo"), colored by the backend's channel
// decode when it exposes one (the SDRAM controller does; the flat
// backend degrades coloring to first-fit).
func NewVM(policy string, n int, backend dram.Backend) (*vm.VM, error) {
	pol, err := vm.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg := vm.DefaultConfig()
	cfg.Policy = pol
	var cm vm.ChannelMapper
	if sd, ok := backend.(vm.ChannelMapper); ok {
		cm = sd
	}
	return vm.New(cfg, n, cm), nil
}

// ScalarAccess schedules one scalar or μSIMD memory access issued at
// cycle t. The int64 is the cycle the access clears the L1/L2 pipeline
// (final for hits and stores); the Pending handle, when non-nil,
// tracks a main-memory line fill still outstanding in the MSHR file.
func (m *MemSystem) ScalarAccess(in *isa.Inst, t int64) (int64, *vmem.Pending) {
	if m.Kind == MemIdeal {
		return t + 1, nil
	}
	// The whole scalar access (at most 8 bytes on this path) translates
	// by its first byte; the issue stage already charged any TLB stall.
	addr := m.Tim.Xl(in.Addr)
	if m.l1Banks != nil {
		bank := (addr >> 3) % uint64(len(m.l1Banks))
		if m.l1Banks[bank] > t {
			t = m.l1Banks[bank]
		}
		m.l1Banks[bank] = t + 1
	}
	if in.IsStore {
		// Write-through, no-allocate; the write buffer hides latency.
		m.L1.Access(addr, true, false)
		return t + 1, nil
	}
	if m.L1.Access(addr, false, false).Hit {
		return t + m.L1.Config().Latency, nil
	}
	m.ScalarL2Accesses++
	done := t + m.L1.Config().Latency + m.Tim.L2Latency
	res := m.L2.Access(addr, false, true)
	if res.Hit {
		if res.Prefetched {
			// The line was prefetched: the load may still be waiting on
			// the in-flight fill, and the touch trains the stream table.
			m.scalarPF = append(m.scalarPF[:0],
				vmem.PFTouch{Line: m.L2.LineAddr(addr), At: done})
			return m.Tim.Complete(nil, m.scalarPF, done)
		}
		return done, nil
	}
	// A scalar miss is a one-request batch; a dirty victim evicted
	// by the fill rides along as a posted write-back that never
	// gates the load.
	m.scalarBatch = m.scalarBatch[:0]
	m.scalarBatch = append(m.scalarBatch, dram.Request{Addr: addr, At: done})
	if res.Writeback && m.Tim.Backend != nil {
		m.scalarBatch = append(m.scalarBatch, dram.Request{Addr: res.VictimAddr, Write: true, At: done})
	}
	return m.Tim.Complete(m.scalarBatch, m.scalarPF[:0], done)
}

// L2Activity returns total L2 accesses: vector subsystem activity plus
// scalar-side misses (the Table 4 metric).
func (m *MemSystem) L2Activity() uint64 {
	return m.VM.Stats().Accesses + m.ScalarL2Accesses
}

// DRAM returns the main-memory backend shared by the vector and scalar
// paths, or nil when the flat MemLatency model is in use.
func (m *MemSystem) DRAM() dram.Backend {
	return m.Tim.Backend
}

// MSHR returns the miss-status holding register file, or nil when the
// blocking model is in use.
func (m *MemSystem) MSHR() *vmem.MSHRFile {
	return m.Tim.MSHR
}

// Prefetcher returns the stream prefetcher attached to the MSHR file,
// or nil when prefetching is off.
func (m *MemSystem) Prefetcher() *vmem.Prefetcher {
	if m.Tim.MSHR == nil {
		return nil
	}
	return m.Tim.MSHR.Prefetcher()
}

// PrefetchStats returns the prefetcher's counters (with the useless-
// eviction count folded in), or the zero value when prefetching is off.
func (m *MemSystem) PrefetchStats() vmem.PrefetchStats {
	if m.Tim.MSHR == nil {
		return vmem.PrefetchStats{}
	}
	return m.Tim.MSHR.PrefetchStats()
}

// Drain submits any misses and write-backs still sitting in the MSHR
// file's pending batch, so end-of-run statistics (and the dram write
// queue) account for all traffic the run generated.
func (m *MemSystem) Drain() {
	if m.Tim.MSHR != nil {
		m.Tim.MSHR.Drain()
	}
}
