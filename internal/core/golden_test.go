package core

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// The golden-stats regression net: a pinned table of
// (kernel × ISA × backend spec) → cycle / miss / traffic counts over the
// small benchmark registry, so a future PR cannot silently shift the
// baseline timing model. The table was generated from the tree as of
// PR 3 (before the stream prefetcher landed), which makes it double as
// the prefetch-off equivalence check: every configuration below runs
// with the prefetcher disabled and must keep reproducing the pre-
// prefetcher counts bit for bit.
//
// Update procedure — ONLY when a PR intentionally changes the timing
// model (new scheduler behaviour, a core-model fix, a kernel change):
//
//	go test ./internal/core -run TestGoldenStats -update-golden
//
// then eyeball the diff of internal/core/testdata/golden_stats.txt in
// the PR: every changed row is a baseline shift you are claiming on
// purpose, and the PR description should say why. A row that changed
// when you did not expect it to is the regression this net exists to
// catch — fix the code, not the table.

var updateGolden = flag.Bool("update-golden", false,
	"rewrite internal/core/testdata/golden_stats.txt from the current model")

const goldenPath = "testdata/golden_stats.txt"

// goldenSpecs are the backend configurations the table crosses: the
// seed-equivalent flat backend, the banked SDRAM, and the SDRAM behind
// an 8-entry MSHR file (the non-blocking pipeline).
var goldenSpecs = []string{
	"fixed",
	"sdram/line/frfcfs",
	"sdram/line/frfcfs/mshr8",
}

// goldenRow is one measured configuration.
type goldenRow struct {
	Cycles    int64
	Committed uint64
	VMMisses  uint64
	DRAMReqs  uint64
}

func (g goldenRow) String() string {
	return fmt.Sprintf("cycles=%d committed=%d vmisses=%d dramreqs=%d",
		g.Cycles, g.Committed, g.VMMisses, g.DRAMReqs)
}

// goldenKey names one configuration the way the table file spells it.
func goldenKey(bench string, v kernels.Variant, spec string) string {
	return fmt.Sprintf("%s/%s/%s", bench, v, spec)
}

// measureGolden runs the whole golden matrix and returns key → row.
func measureGolden(t *testing.T) map[string]goldenRow {
	return measureGoldenSpecs(t, func(spec string) string { return spec })
}

// measureGoldenSpecs is measureGolden with the backend spec of each
// configuration passed through transform; rows stay keyed by the
// untransformed spec so the result compares against the checked-in
// table (or a plain measureGolden run) row for row.
func measureGoldenSpecs(t *testing.T, transform func(string) string) map[string]goldenRow {
	t.Helper()
	return measureGoldenEngine(t, transform, engine.Step)
}

// measureGoldenEngine additionally selects the simulation engine, so
// the wheel can regenerate the same table through the same registry
// read-out path.
func measureGoldenEngine(t *testing.T, transform func(string) string, mode engine.Mode) map[string]goldenRow {
	t.Helper()
	variants := []struct {
		v    kernels.Variant
		kind MemKind
	}{
		{kernels.MOM3D, MemVectorCache3D},
		{kernels.MOM, MemVectorCache},
		{kernels.MMX, MemMultiBanked},
	}
	out := map[string]goldenRow{}
	for _, bm := range equivBenches() {
		for _, vk := range variants {
			tr := &trace.Trace{}
			bm.Run(vk.v, tr)
			for _, spec := range goldenSpecs {
				backend, knobs, err := dram.ParseSpecFull(transform(spec), 100)
				if err != nil {
					t.Fatalf("spec %q: %v", transform(spec), err)
				}
				cfg := MOMCore()
				if vk.v == kernels.MMX {
					cfg = MMXCore()
				}
				tim := vmem.Timing{L2Latency: 20, MemLatency: 100,
					Backend: backend, MSHRs: knobs.MSHRs}
				ms := NewMemSystem(vk.kind, tim, cfg.Lanes, vk.v == kernels.MMX)
				st := SimulateMode(cfg, ms, tr.Insts, mode)
				if sd, ok := backend.(*dram.SDRAM); ok {
					sd.Flush()
				}
				// The rows are read through the stats registry rather
				// than the structs directly: the golden table doubles as
				// the proof that registration is complete and the
				// registered names resolve to the hand-threaded counters
				// bit for bit.
				reg := stats.NewRegistry()
				st.Register(reg)
				ms.Register(reg)
				snap := reg.Snapshot()
				for _, name := range []string{"core.cycles", "core.committed",
					"vmem.misses", "dram.accesses"} {
					if !snap.Has(name) {
						t.Fatalf("registry snapshot missing %q", name)
					}
				}
				out[goldenKey(bm.Name, vk.v, spec)] = goldenRow{
					Cycles:    snap.Gauge("core.cycles"),
					Committed: snap.Counter("core.committed"),
					VMMisses:  snap.Counter("vmem.misses"),
					DRAMReqs:  snap.Counter("dram.accesses"),
				}
			}
		}
	}
	return out
}

func renderGolden(rows map[string]goldenRow) string {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Golden simulation statistics — see golden_test.go for the update procedure.\n")
	b.WriteString("# key = bench/ISA/backend-spec; every row is a pinned baseline.\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, rows[k])
	}
	return b.String()
}

func loadGolden(t *testing.T) map[string]goldenRow {
	t.Helper()
	fh, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden table missing (%v); generate it with -update-golden", err)
	}
	defer fh.Close()
	out := map[string]goldenRow{}
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var g goldenRow
		if _, err := fmt.Sscanf(line, "%s cycles=%d committed=%d vmisses=%d dramreqs=%d",
			&key, &g.Cycles, &g.Committed, &g.VMMisses, &g.DRAMReqs); err != nil {
			t.Fatalf("golden table line %q: %v", line, err)
		}
		out[key] = g
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading golden table: %v", err)
	}
	return out
}

// TestGoldenStats measures the whole matrix and compares it against the
// checked-in table row by row.
func TestGoldenStats(t *testing.T) {
	got := measureGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(renderGolden(got)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d rows", goldenPath, len(got))
		return
	}
	want := loadGolden(t)
	if len(want) != len(got) {
		t.Errorf("golden table has %d rows, the matrix measured %d — regenerate with -update-golden", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: configuration no longer measured", key)
			continue
		}
		if g != w {
			t.Errorf("%s:\n  golden   %s\n  measured %s", key, w, g)
		}
	}
}

// TestRowPolicyOpenMatchesGolden pins the rpopen spec token bit-
// identical to the PR 4 model across the whole golden-stats matrix:
// naming the default row policy explicitly must reproduce every pinned
// cycle, commit, miss and request count of the table the sdram rows
// were generated against. (The policy subsystem running its default is
// already covered by TestGoldenStats; this adds the spec-token path.)
func TestRowPolicyOpenMatchesGolden(t *testing.T) {
	want := loadGolden(t)
	got := measureGoldenSpecs(t, func(spec string) string {
		if !strings.HasPrefix(spec, "sdram") {
			return spec // rp tokens are controller knobs; fixed has no banks
		}
		return spec + "/rpopen"
	})
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: configuration not measured", key)
			continue
		}
		if g != w {
			t.Errorf("%s: rpopen diverged from the golden table:\n  golden   %s\n  measured %s", key, w, g)
		}
	}
}
