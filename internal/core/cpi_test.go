package core

import (
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// The CPI stack's two hard invariants, checked over the full golden
// matrix (every bench × ISA × backend spec the pinned table crosses):
//
//  1. Conservation: the buckets sum to the run's cycle count exactly —
//     every cycle is charged to exactly one stall reason, none twice,
//     none dropped. Asserted through the registry (sum of the
//     core.cpi.* counters against the core.cycles gauge), so the test
//     doubles as proof the stack registers completely.
//  2. Engine identity: the step and wheel engines produce bit-identical
//     stacks. The wheel bulk-charges skip windows off frozen
//     predicates; any predicate that could flip mid-window would show
//     up here as a diverged bucket.

// measureCPIEngine runs the golden matrix under one engine and returns
// key → (cycles, stack), asserting conservation on every row via the
// registered names.
func measureCPIEngine(t *testing.T, mode engine.Mode) map[string]CPIStack {
	t.Helper()
	variants := []struct {
		v    kernels.Variant
		kind MemKind
	}{
		{kernels.MOM3D, MemVectorCache3D},
		{kernels.MOM, MemVectorCache},
		{kernels.MMX, MemMultiBanked},
	}
	out := map[string]CPIStack{}
	for _, bm := range equivBenches() {
		for _, vk := range variants {
			tr := &trace.Trace{}
			bm.Run(vk.v, tr)
			for _, spec := range goldenSpecs {
				backend, knobs, err := dram.ParseSpecFull(spec, 100)
				if err != nil {
					t.Fatalf("spec %q: %v", spec, err)
				}
				cfg := MOMCore()
				if vk.v == kernels.MMX {
					cfg = MMXCore()
				}
				tim := vmem.Timing{L2Latency: 20, MemLatency: 100,
					Backend: backend, MSHRs: knobs.MSHRs}
				ms := NewMemSystem(vk.kind, tim, cfg.Lanes, vk.v == kernels.MMX)
				st := SimulateMode(cfg, ms, tr.Insts, mode)
				key := goldenKey(bm.Name, vk.v, spec)

				if got, want := st.CPI.Sum(), uint64(st.Cycles); got != want {
					t.Errorf("%s [%v]: CPI stack sums to %d, run took %d cycles (diff %+d)",
						key, mode, got, want, int64(got)-int64(want))
				}
				// The same invariant through the registry: the stack's
				// counters are the only core.cpi.* names, and they must
				// resolve to the live fields bit for bit.
				reg := stats.NewRegistry()
				st.Register(reg)
				snap := reg.Snapshot()
				var sum uint64
				var buckets int
				for name, v := range snap.Counters {
					if strings.HasPrefix(name, "core.cpi.") {
						sum += v
						buckets++
					}
				}
				if buckets == 0 {
					t.Fatalf("%s [%v]: no core.cpi.* counters registered", key, mode)
				}
				if sum != uint64(snap.Gauge("core.cycles")) {
					t.Errorf("%s [%v]: registered core.cpi.* sum %d != core.cycles %d",
						key, mode, sum, snap.Gauge("core.cycles"))
				}
				out[key] = st.CPI
			}
		}
	}
	return out
}

func TestCPIConservationAndEngineIdentity(t *testing.T) {
	step := measureCPIEngine(t, engine.Step)
	wheel := measureCPIEngine(t, engine.Wheel)
	if len(step) != len(wheel) {
		t.Fatalf("engines measured different matrices: %d vs %d rows", len(step), len(wheel))
	}
	for key, s := range step {
		w, ok := wheel[key]
		if !ok {
			t.Errorf("%s: missing from the wheel run", key)
			continue
		}
		if s != w {
			t.Errorf("%s: CPI stacks diverged across engines:\n  step  %+v\n  wheel %+v", key, s, w)
		}
	}
}

// TestCPIBucketsPlausible guards against a degenerate stack that is
// conserved but vacuous (everything in one bucket): a memory-bound
// kernel behind the blocking flat backend must show main-memory wait,
// and the non-blocking MSHR pipeline must show commit progress.
func TestCPIBucketsPlausible(t *testing.T) {
	tr := &trace.Trace{}
	MPEG2Dec().Run(kernels.MOM3D, tr)

	blocking := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, "fixed", 0)
	if blocking.CPI.DRAMWait == 0 {
		t.Errorf("blocking flat backend: DRAMWait bucket empty: %+v", blocking.CPI)
	}
	if blocking.CPI.Busy == 0 {
		t.Errorf("blocking flat backend: Busy bucket empty: %+v", blocking.CPI)
	}

	mshr := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, "sdram/line/frfcfs", 8)
	if mshr.CPI.Busy == 0 {
		t.Errorf("mshr8 pipeline: Busy bucket empty: %+v", mshr.CPI)
	}
	if mshr.CPI.DRAMWait == 0 {
		t.Errorf("mshr8 pipeline: DRAMWait bucket empty: %+v", mshr.CPI)
	}
}
