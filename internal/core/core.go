package core
