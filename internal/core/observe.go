package core

// This file is the observability seam between the simulator's
// stat-bearing subsystems and internal/stats: one call registers every
// Stats struct a configured memory system owns, and one call fans an
// event tracer out to every subsystem with trace hooks. The registry
// prefixes form the stable naming scheme every exporter shares:
//
//	core.*          pipeline counters (cycles, committed, stalls)
//	cache.l1.*      L1 cache counters
//	cache.l2.*      L2 cache counters
//	vmem.*          vector memory subsystem counters
//	vmem.mshr.*     MSHR file counters + the miss-to-fill histogram
//	vmem.prefetch.* stream prefetcher counters
//	dram.*          main-memory counters + read wait/service histograms
//	vm.tlb.*        TLB counters (l1_* private, l2_* shared) + paging
//	vm.walk.*       page-table walk counters + walk-latency histogram
//
// TestRegistryCoversAllStats (internal/stats) reflects over the Stats
// types and fails if a field ever goes unregistered, so the scheme
// cannot silently drift.

import (
	"repro/internal/dram"
	"repro/internal/stats"
)

// Register wires the core pipeline counters into reg under "core".
func (s *Stats) Register(reg *stats.Registry) {
	reg.AddStruct("core", s)
}

// Register wires every stat struct the memory system owns into reg
// under the package naming scheme. Subsystems the configuration does
// not instantiate (no caches under MemIdeal, no MSHR file in blocking
// mode, no prefetcher, flat memory) simply contribute no names.
func (m *MemSystem) Register(reg *stats.Registry) {
	if m.L1 != nil {
		reg.AddStruct("cache.l1", &m.L1.Stats)
	}
	if m.L2 != nil {
		reg.AddStruct("cache.l2", &m.L2.Stats)
	}
	reg.AddStruct("vmem", m.VM.Stats())
	reg.Counter("vmem.scalar_l2_accesses", func() uint64 { return m.ScalarL2Accesses })
	if f := m.MSHR(); f != nil {
		reg.AddStruct("vmem.mshr", f.Stats())
		if pf := f.Prefetcher(); pf != nil {
			reg.AddStruct("vmem.prefetch", pf.Stats())
			// Useless is derived from the L2's eviction accounting at
			// read time; sync it into the live struct on every snapshot.
			reg.OnSnapshot(func() { m.PrefetchStats() })
		}
	}
	if b := m.DRAM(); b != nil {
		reg.AddStruct("dram", b.Stats())
	}
	if sp := m.Tim.VA; sp != nil {
		// Single-requestor view: the shared L2 TLB/walk counters and
		// this space's private L1/fault counters share the vm.tlb
		// prefix (the field names split l1_* from l2_*). Multi-tenant
		// registration lives in internal/tenant, which prefixes each
		// space with its tenant name.
		sp.VM().RegisterShared(reg)
		sp.Register(reg, "vm.tlb")
	}
}

// AttachTracer fans one event tracer out to every subsystem with trace
// hooks (the DRAM backend and the MSHR file). A nil tracer detaches —
// the zero-cost default.
func (m *MemSystem) AttachTracer(tr *stats.Tracer) {
	if b, ok := m.DRAM().(dram.Traceable); ok {
		b.SetTracer(tr)
	}
	if f := m.MSHR(); f != nil {
		f.SetTracer(tr)
	}
	if sp := m.Tim.VA; sp != nil {
		sp.VM().SetTracer(tr)
	}
}
