package core

import (
	"fmt"
	"testing"

	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// equivBenches is the full benchmark suite at test scale: the five
// paper kernels plus the HD motionsearch stream.
func equivBenches() []kernels.Benchmark {
	return []kernels.Benchmark{
		JPEGEnc(), JPEGDec(), MPEG2Dec(), MPEG2Enc(), GSMEnc(),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
}

func JPEGEnc() kernels.Benchmark  { return kernels.JPEGEncode(kernels.SmallJPEGEncConfig()) }
func JPEGDec() kernels.Benchmark  { return kernels.JPEGDecode(kernels.SmallJPEGDecConfig()) }
func MPEG2Dec() kernels.Benchmark { return kernels.MPEG2Decode(kernels.SmallMPEG2DecConfig()) }
func MPEG2Enc() kernels.Benchmark { return kernels.MPEG2Encode(kernels.SmallMPEG2EncConfig()) }
func GSMEnc() kernels.Benchmark   { return kernels.GSMEncode(kernels.SmallGSMEncConfig()) }

// simBench runs one benchmark trace through one memory configuration.
func simBench(t *testing.T, tr *trace.Trace, v kernels.Variant, kind MemKind, spec string, mshrs int) *Stats {
	st, _ := simBenchPF(t, tr, v, kind, spec, mshrs, 0, 0)
	return st
}

// simBenchPF is simBench with a stream prefetcher configured; it also
// returns the memory system for stat inspection.
func simBenchPF(t *testing.T, tr *trace.Trace, v kernels.Variant, kind MemKind, spec string, mshrs, pfStreams, pfDegree int) (*Stats, *MemSystem) {
	t.Helper()
	cfg := MOMCore()
	if v == kernels.MMX {
		cfg = MMXCore()
	}
	var backend dram.Backend
	if spec != "" {
		b, err := dram.ParseSpec(spec, 100)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		backend = b
	}
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend, MSHRs: mshrs,
		PFStreams: pfStreams, PFDegree: pfDegree}
	ms := NewMemSystem(kind, tim, cfg.Lanes, v == kernels.MMX && kind != MemIdeal)
	return Simulate(cfg, ms, tr.Insts), ms
}

// TestMSHR1MatchesBlockingAllBenchmarks is the refactor's safety net:
// with a 1-entry MSHR file the decoupled machinery must reproduce the
// blocking model's cycle counts bit-identically on every benchmark,
// over both the flat backend and the banked SDRAM.
func TestMSHR1MatchesBlockingAllBenchmarks(t *testing.T) {
	variants := []struct {
		v    kernels.Variant
		kind MemKind
	}{
		{kernels.MOM3D, MemVectorCache3D},
		{kernels.MOM, MemVectorCache},
		{kernels.MMX, MemMultiBanked},
	}
	for _, bm := range equivBenches() {
		for _, vk := range variants {
			tr := &trace.Trace{}
			bm.Run(vk.v, tr)
			for _, spec := range []string{"fixed", "sdram/line/frfcfs"} {
				name := fmt.Sprintf("%s/%v/%s", bm.Name, vk.v, spec)
				blocking := simBench(t, tr, vk.v, vk.kind, spec, 0)
				mshr1 := simBench(t, tr, vk.v, vk.kind, spec, 1)
				if blocking.Cycles != mshr1.Cycles {
					t.Errorf("%s: -mshr 1 cycles %d != blocking %d", name, mshr1.Cycles, blocking.Cycles)
				}
				if blocking.Committed != mshr1.Committed {
					t.Errorf("%s: committed %d != %d", name, mshr1.Committed, blocking.Committed)
				}
				if mshr1.EarlyRetired != 0 {
					t.Errorf("%s: blocking-mode file early-retired %d instructions", name, mshr1.EarlyRetired)
				}
			}
		}
	}
}

// TestPrefetchOffMatchesNoPrefetcher extends the equivalence net over
// the prefetch-off path: a Timing with PFStreams 0 must run the exact
// code the pre-prefetcher model ran, so cycles and commits match a
// configuration that never mentions the prefetcher, on the blocking
// model, the blocking-mode file and the decoupled file alike. (The
// absolute pre-PR baselines are pinned separately by TestGoldenStats.)
func TestPrefetchOffMatchesNoPrefetcher(t *testing.T) {
	bm := kernels.MotionSearch(kernels.SmallMotionSearchConfig())
	tr := &trace.Trace{}
	bm.Run(kernels.MOM3D, tr)
	for _, mshrs := range []int{0, 1, 8} {
		for _, spec := range []string{"fixed", "sdram/line/frfcfs"} {
			base := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, spec, mshrs)
			off, ms := simBenchPF(t, tr, kernels.MOM3D, MemVectorCache3D, spec, mshrs, 0, 0)
			if base.Cycles != off.Cycles || base.Committed != off.Committed {
				t.Errorf("%s/mshr%d: pf-off cycles %d (commits %d) != baseline %d (%d)",
					spec, mshrs, off.Cycles, off.Committed, base.Cycles, base.Committed)
			}
			if ms.Prefetcher() != nil {
				t.Fatalf("%s/mshr%d: PFStreams 0 built a prefetcher", spec, mshrs)
			}
			if st := ms.PrefetchStats(); st != (vmem.PrefetchStats{}) {
				t.Errorf("%s/mshr%d: pf-off run accumulated prefetch stats %+v", spec, mshrs, st)
			}
		}
	}
}

// TestPrefetchPipelineEndToEnd: with the prefetcher on, a streaming
// kernel still commits every instruction, issues prefetches, and the
// prefetch traffic is visible in the DRAM statistics.
func TestPrefetchPipelineEndToEnd(t *testing.T) {
	bm := GSMEnc()
	tr := &trace.Trace{}
	bm.Run(kernels.MOM3D, tr)
	base := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, "sdram/line/frfcfs", 16)
	pf, ms := simBenchPF(t, tr, kernels.MOM3D, MemVectorCache3D, "sdram/line/frfcfs", 16, 8, 2)
	if pf.Committed != base.Committed {
		t.Fatalf("committed %d != baseline %d", pf.Committed, base.Committed)
	}
	st := ms.PrefetchStats()
	if st.Issued == 0 {
		t.Fatal("the sequential gsmencode miss stream must trigger prefetches")
	}
	if got := ms.DRAM().Stats().PrefetchReads; got != st.Issued {
		// Every issued prefetch read reaches the backend by end-of-run
		// (Simulate drains the file).
		t.Errorf("dram prefetch reads %d != issued %d", got, st.Issued)
	}
	if st.Hits+st.Late+st.Useless > st.Issued {
		t.Errorf("outcome counts exceed issues: %+v", st)
	}
}

// TestPrefetchRequiresNonBlockingFile: building a memory system with
// the prefetcher over a blocking pipeline must panic — the CLIs reject
// it, and the model layer backstops them.
func TestPrefetchRequiresNonBlockingFile(t *testing.T) {
	for _, mshrs := range []int{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PFStreams with MSHRs=%d must panic", mshrs)
				}
			}()
			tim := vmem.Timing{L2Latency: 20, MemLatency: 100, MSHRs: mshrs, PFStreams: 8}
			NewMemSystem(MemVectorCache3D, tim, 4, false)
		}()
	}
}

// TestDecoupledPipelineCompletes: the non-blocking pipeline must commit
// every instruction, overlap misses (early retirement observed), and
// never lose a completion — final cycles cover the last outstanding
// fill.
func TestDecoupledPipelineCompletes(t *testing.T) {
	bm := kernels.MotionSearch(kernels.SmallMotionSearchConfig())
	tr := &trace.Trace{}
	bm.Run(kernels.MOM3D, tr)
	blocking := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, "sdram/line/frfcfs", 0)
	dec := simBench(t, tr, kernels.MOM3D, MemVectorCache3D, "sdram/line/frfcfs", 16)
	if dec.Committed != blocking.Committed {
		t.Fatalf("committed %d != blocking %d", dec.Committed, blocking.Committed)
	}
	if dec.EarlyRetired == 0 {
		t.Error("a streaming kernel over a 16-entry file must retire instructions under outstanding misses")
	}
}

// TestScoreboardStallsOnTrueDependency: a consumer of a missing load's
// register must wait for the fill, while a run whose tail is
// independent of the load streams past it. The two traces differ only
// in whether the add chain reads the loaded register.
func TestScoreboardStallsOnTrueDependency(t *testing.T) {
	const chain = 100
	mk := func(dependent bool) []isa.Inst {
		var insts []isa.Inst
		// One cold scalar load: L1 miss + L2 miss + 100-cycle memory.
		insts = append(insts, isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem,
			Dst: isa.R(1), Imm: 8, Addr: 0x80000})
		src := 2
		if dependent {
			src = 1
		}
		insts = append(insts, isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar,
			Dst: isa.R(3), Src1: isa.R(src), Src2: isa.R(4)})
		for i := 0; i < chain; i++ {
			insts = append(insts, isa.Inst{Op: isa.OpIAddImm, Kind: isa.KindScalar,
				Dst: isa.R(3), Src1: isa.R(3), Imm: 1})
		}
		for i := range insts {
			insts[i].Seq = uint64(i)
		}
		return insts
	}
	run := func(dependent bool) *Stats {
		tim := vmem.Timing{L2Latency: 20, MemLatency: 100, MSHRs: 8}
		ms := NewMemSystem(MemVectorCache, tim, 4, false)
		return Simulate(MMXCore(), ms, mk(dependent))
	}
	dep := run(true)
	indep := run(false)
	// The dependent chain serializes behind the ~120-cycle miss; the
	// independent chain only pays the drain (the fill completes under
	// the adds).
	if dep.Cycles < 120+chain {
		t.Errorf("dependent chain finished in %d cycles; the consumer must wait for the fill", dep.Cycles)
	}
	if indep.Cycles >= dep.Cycles {
		t.Errorf("independent chain (%d cycles) must beat the dependent chain (%d)", indep.Cycles, dep.Cycles)
	}
	if indep.EarlyRetired == 0 {
		t.Error("the independent run must retire the load before its fill")
	}
}

// TestStoreBufferBounds: with a 1-entry store buffer, back-to-back
// missing stores must stall commit.
func TestStoreBufferBounds(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 16; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem,
			Src2: isa.V(1), VL: 4, Stride: 8, Addr: uint64(0x10000 + i*4096), IsStore: true})
	}
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	cfg := MOMCore()
	cfg.StoreBuf = 1
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, MSHRs: 8}
	ms := NewMemSystem(MemVectorCache, tim, 4, false)
	st := Simulate(cfg, ms, insts)
	if st.Committed != 16 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallSB == 0 {
		t.Error("a 1-entry store buffer must stall commit under missing stores")
	}
}
