package core

import "repro/internal/vmem"

// This file is the CPI stack: whole-pipeline cycle attribution. Every
// cycle a Sim executes (or skips) is charged to exactly one bucket, so
// the buckets sum to the run's cycle count — the conservation
// invariant the golden-matrix tests assert bit-identically on both
// engines.
//
// Attribution is head-of-window blame, the classic CPI-stack
// methodology: a cycle with a commit is productive (Busy); otherwise
// the oldest instruction is the pipeline's bottleneck and the cycle is
// charged to whatever blocks it. The classifier is a pure function of
// the same state the issue/commit predicates read — it performs no
// lazy ReadyBy polls (only the poll-free Settled/Bound/StallUntil
// peeks), so classification never perturbs MSHR batch accumulation or
// TLB state, and the step and wheel engines observe identical charges:
// executed cycles classify on bit-identical state, and a SkipTo window
// bulk-charges its frozen verdict — every predicate the classifier
// consults is piecewise-constant across a skip window, because any
// cycle at which one could flip is itself a registered wake-up.
//
// Memory-blocked cycles split three ways through the blocking
// instruction's Pending handle: cycles the handle absorbed waiting for
// a free MSHR (the full-stall budget RegisterFor accumulated), cycles
// the channel scheduler spent yielding the requests to other tenants
// under QoS (the per-entry yield budget the controller stamped on the
// completion), and the remainder — the DRAM wait proper. The budgets
// are consumed through per-handle cursors, so n per-cycle charges and
// one n-cycle bulk charge drain them identically.

// CPIStack decomposes the core's cycles by stall reason. All fields
// are uint64 counters; stats.AddStruct registers them as core.cpi.*.
type CPIStack struct {
	// Busy: a commit retired at least one instruction this cycle (plus
	// the issue-edge sliver where the head completed this very cycle
	// and retires next).
	Busy uint64
	// Issue: the head is ready but lost issue bandwidth or found its
	// functional unit (SIMD datapath, 3D mover, L1 port) busy.
	Issue uint64
	// Exec: the head has issued and is completing in a unit or cache
	// occupancy, with no recorded main-memory miss.
	Exec uint64
	// Dep: the head waits on a scoreboard register dependence (or an
	// older overlapping store) that is not itself memory-blocked.
	Dep uint64
	// MSHRFull: the blocking access absorbed a full MSHR file before it
	// could even allocate its miss.
	MSHRFull uint64
	// StoreBuf: commit stalled on a full store buffer.
	StoreBuf uint64
	// TLBWalk: the head is stalled in issue on address translation (L2
	// TLB latency or a page-table walk).
	TLBWalk uint64
	// DRAMWait: the head (or the producer it depends on) waits on a
	// main-memory line fill.
	DRAMWait uint64
	// QosYield: the fill's wait was extended by QoS credit yields to
	// other tenants in the channel scheduler.
	QosYield uint64
	// Frontend: the window is empty — a taken-branch fetch break,
	// a mispredict resume, or the trace's tail.
	Frontend uint64
	// Drain: end-of-run cycles between the last commit and the last
	// outstanding fill landing.
	Drain uint64
}

// Sum is the total of every bucket; conservation demands it equal the
// run's cycle count exactly.
func (c *CPIStack) Sum() uint64 {
	return c.Busy + c.Issue + c.Exec + c.Dep + c.MSHRFull + c.StoreBuf +
		c.TLBWalk + c.DRAMWait + c.QosYield + c.Frontend + c.Drain
}

// chargeCPI attributes n cycles starting at s.now. Step calls it once
// per executed cycle (n=1, committed from this cycle's commit);
// SkipTo bulk-charges its window (committed is always false there — a
// retiring head is a wake-up, never skipped).
func (s *Sim) chargeCPI(n uint64, committed bool) {
	c := &s.stats.CPI
	if committed {
		c.Busy += n
		return
	}
	if s.count == 0 {
		c.Frontend += n
		return
	}
	e := &s.rob[s.head]
	if e.issued {
		if e.done > s.now {
			if e.missed {
				s.chargeMem(e.pend, n)
			} else {
				c.Exec += n
			}
			return
		}
		// Completed but not committed. The store-buffer stall is the one
		// steady state here (commit evaluated it this cycle); the only
		// other way in is the issue edge — the head issued after commit
		// ran, with a same-cycle completion — which retires next cycle.
		if e.pend != nil && !e.pend.Settled(s.now) && e.in.IsStore &&
			s.cfg.StoreBuf > 0 && len(s.postedStores) >= s.cfg.StoreBuf {
			c.StoreBuf += n
			return
		}
		c.Busy += n
		return
	}
	s.classifyUnissued(e, n)
}

// classifyUnissued blames an unissued head on its first blocker,
// walking the dependence list exactly as issueBoundPark does — the
// poll-free mirror of ready(), so classification cannot flush the MSHR
// file or touch TLB state.
func (s *Sim) classifyUnissued(e *robEntry, n uint64) {
	c := &s.stats.CPI
	at := s.now
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := s.entry(d.seq)
		if p == nil {
			rec, ok := s.pendBySeq[d.seq]
			if !ok || d.usePtr {
				continue // value in the register file
			}
			if t, exact := rec.h.Bound(); !exact || t > at {
				s.chargeMem(rec.h, n)
				return
			}
			continue
		}
		if !p.issued {
			c.Dep += n
			return
		}
		t := p.done
		if d.usePtr {
			t = p.donePtr
		}
		if t > at {
			if p.missed {
				s.chargeMem(p.pend, n)
			} else {
				c.Dep += n
			}
			return
		}
		if !d.usePtr && p.pend != nil {
			if t, exact := p.pend.Bound(); !exact || t > at {
				s.chargeMem(p.pend, n)
				return
			}
		}
	}
	if e.in.Kind.IsMem() && !e.in.IsStore {
		for _, st := range s.stores {
			if st.seq >= e.seq {
				break
			}
			if st.lo < e.hi && e.lo < st.hi {
				if p := s.entry(st.seq); p != nil && !p.issued {
					c.Dep += n
					return
				}
			}
		}
	}
	// Operands ready: the head is either stalled in issue on address
	// translation (an in-flight transaction with a future ready cycle)
	// or contending for issue bandwidth / a busy unit.
	if sp := s.mem.Tim.VA; sp != nil {
		if until, ok := sp.StallUntil(e.seq); ok && until > at {
			c.TLBWalk += n
			return
		}
	}
	c.Issue += n
}

// missSig is a cheap monotonic fingerprint of the memory system's miss
// traffic (vector subsystem misses plus L2 misses). Diffing it around
// an access's issue call detects "this access filed main-memory
// traffic" without widening any interface — the counters increment
// synchronously at access time, never at flush time, so the flag is
// engine-identical.
func (s *Sim) missSig() uint64 {
	m := s.mem
	if m.L2 == nil {
		return 0
	}
	return m.VM.Stats().Misses + m.L2.Stats.Misses
}

// chargeMem splits n memory-blocked cycles across the handle's stall
// budgets: QoS yield first (the scheduler stamped those cycles
// precisely, and the loose full-stall budget would swallow them
// otherwise), MSHR full-stall next, DRAM wait for the rest. A nil
// handle is the blocking model, where the whole wait is main memory.
func (s *Sim) chargeMem(p *vmem.Pending, n uint64) {
	c := &s.stats.CPI
	if p == nil {
		c.DRAMWait += n
		return
	}
	q := p.TakeQoSYield(n)
	c.QosYield += q
	f := p.TakeFullStall(n - q)
	c.MSHRFull += f
	c.DRAMWait += n - q - f
}
