package core

import (
	"fmt"
	"testing"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// The wheel engine's correctness bar is absolute: not "close", but
// bit-identical to per-cycle stepping on every statistic the registry
// exports — including stall-cycle charges and the MSHR flush/occupancy
// counters that observe WHEN lazy batches were flushed, not just what
// they contained. These tests hold the wheel to that bar.

// TestWheelMatchesStepGolden regenerates the entire checked-in
// golden-stats table (all 54 rows) through the wheel engine. Any
// divergence from the pinned table is a wheel bug by definition.
func TestWheelMatchesStepGolden(t *testing.T) {
	want := loadGolden(t)
	got := measureGoldenEngine(t, func(spec string) string { return spec }, engine.Wheel)
	if len(want) != len(got) {
		t.Errorf("golden table has %d rows, wheel measured %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: configuration not measured", key)
			continue
		}
		if g != w {
			t.Errorf("%s: wheel diverged from the golden table:\n  golden %s\n  wheel  %s", key, w, g)
		}
	}
}

// engineSnapshot runs one configuration under one engine and returns
// the full registry snapshot rendered to its deterministic listing.
func engineSnapshot(t *testing.T, bm kernels.Benchmark, v kernels.Variant,
	kind MemKind, spec string, mut func(*Config), mode engine.Mode) string {
	t.Helper()
	tr := &trace.Trace{}
	bm.Run(v, tr)
	cfg := MOMCore()
	if v == kernels.MMX {
		cfg = MMXCore()
	}
	if mut != nil {
		mut(&cfg)
	}
	var backend dram.Backend
	var knobs dram.Knobs
	if spec != "" {
		b, k, err := dram.ParseSpecFull(spec, 100)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		backend, knobs = b, k
	}
	tim := vmem.Timing{L2Latency: 20, MemLatency: 100, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	if knobs.VA != "" {
		vmsys, err := NewVM(knobs.VA, 1, backend)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		tim.VA = vmsys.Space(0)
	}
	ms := NewMemSystem(kind, tim, cfg.Lanes, v == kernels.MMX && kind != MemIdeal)
	st := SimulateMode(cfg, ms, tr.Insts, mode)
	if sd, ok := backend.(*dram.SDRAM); ok {
		sd.Flush()
	}
	reg := stats.NewRegistry()
	st.Register(reg)
	ms.Register(reg)
	return reg.Snapshot().String()
}

// requireEngineMatch asserts wheel == step on the full snapshot.
func requireEngineMatch(t *testing.T, name string, bm kernels.Benchmark,
	v kernels.Variant, kind MemKind, spec string, mut func(*Config)) {
	t.Helper()
	step := engineSnapshot(t, bm, v, kind, spec, mut, engine.Step)
	wheel := engineSnapshot(t, bm, v, kind, spec, mut, engine.Wheel)
	if step != wheel {
		t.Errorf("%s: wheel snapshot diverged from step\n--- step ---\n%s--- wheel ---\n%s",
			name, step, wheel)
	}
}

// TestWheelMatchesStepSnapshots crosses benchmarks × backends × vmem
// knobs (mshr, prefetch, row policies, timing profiles) and requires
// every registered counter, gauge and histogram to match bit for bit.
func TestWheelMatchesStepSnapshots(t *testing.T) {
	specs := []string{
		"", // flat latency, nil backend
		"fixed",
		"sdram/line/frfcfs",
		"sdram/bank/fcfs/ddr",
		"sdram/line/frfcfs/hbm",
		"sdram/line/frfcfs/mshr1",
		"sdram/line/frfcfs/mshr8",
		"sdram/line/frfcfs/hbm/mshr16/pf8d2",
		"sdram/line/frfcfs/mshr16/rphistory/pf8",
		"sdram/line/frfcfs/ddr/mshr8/rptimer:150",
		"sdram/line/frfcfs/rpclose",
	}
	benches := []kernels.Benchmark{
		GSMEnc(),
		MPEG2Enc(),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
	for _, bm := range benches {
		for _, spec := range specs {
			name := fmt.Sprintf("%s/mom3d/%s", bm.Name, spec)
			requireEngineMatch(t, name, bm, kernels.MOM3D, MemVectorCache3D, spec, nil)
		}
		// The other ISA pipelines on a representative backend each.
		requireEngineMatch(t, bm.Name+"/mom", bm, kernels.MOM, MemVectorCache,
			"sdram/line/frfcfs/mshr8", nil)
		requireEngineMatch(t, bm.Name+"/mmx", bm, kernels.MMX, MemMultiBanked,
			"sdram/line/frfcfs", nil)
	}
	// Ideal memory: dispatch/issue-only dead time.
	requireEngineMatch(t, "gsmencode/ideal", GSMEnc(), kernels.MOM, MemIdeal, "", nil)
}

// TestWheelMatchesStepVA pins the address-translation issue path under
// the wheel: TLB-miss stalls park the issue stage on a walk-completion
// bound (xlatWake), and under mshr the walk's lazy completion races the
// MSHR fill wake-ups — the step oracle observes both every cycle, the
// wheel only at event boundaries, so every registered counter matching
// bit for bit proves the translation transactions retire identically.
func TestWheelMatchesStepVA(t *testing.T) {
	specs := []string{
		"sdram/bank/frfcfs/va",
		"sdram/bank/frfcfs/vacolor",
		"sdram/bank/frfcfs/vacolo",
		"sdram/bank/frfcfs/mshr8/va",
		"sdram/bank/frfcfs/hbm/mshr16/pf8d2/vacolor",
		"fixed/mshr8/va",
	}
	benches := []kernels.Benchmark{
		GSMEnc(),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
	for _, bm := range benches {
		for _, spec := range specs {
			name := fmt.Sprintf("%s/mom3d/%s", bm.Name, spec)
			requireEngineMatch(t, name, bm, kernels.MOM3D, MemVectorCache3D, spec, nil)
		}
		// The scalar issue path charges the TLB stall after the L1 port
		// check; MMX exercises it with banked L1 ports, MOM without 3D.
		requireEngineMatch(t, bm.Name+"/mom/va", bm, kernels.MOM, MemVectorCache,
			"sdram/bank/frfcfs/mshr8/vacolor", nil)
		requireEngineMatch(t, bm.Name+"/mmx/va", bm, kernels.MMX, MemMultiBanked,
			"sdram/bank/frfcfs/va", nil)
	}
}

// TestWheelMatchesStepGshare covers the mispredict-pending and
// fetch-resume wake-ups, which only the gshare ablation exercises.
func TestWheelMatchesStepGshare(t *testing.T) {
	gshare := func(c *Config) { c.UseGshare = true }
	for _, bm := range []kernels.Benchmark{GSMEnc(), JPEGEnc(),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig())} {
		requireEngineMatch(t, bm.Name+"/gshare/flat", bm, kernels.MOM3D,
			MemVectorCache3D, "", gshare)
		requireEngineMatch(t, bm.Name+"/gshare/mshr8", bm, kernels.MOM3D,
			MemVectorCache3D, "sdram/line/frfcfs/mshr8", gshare)
	}
}

// TestWheelMatchesStepStoreBuffer pins the store-buffer-full skip path
// (bulk StallSB charging plus the oldest-posted-store flush poll) with
// a 1-entry buffer, the configuration TestStoreBufferBounds uses.
func TestWheelMatchesStepStoreBuffer(t *testing.T) {
	sb1 := func(c *Config) { c.StoreBuf = 1 }
	for _, bm := range []kernels.Benchmark{GSMEnc(), MPEG2Enc()} {
		requireEngineMatch(t, bm.Name+"/sb1", bm, kernels.MOM3D,
			MemVectorCache3D, "sdram/line/frfcfs/mshr8", sb1)
		requireEngineMatch(t, bm.Name+"/sb1/pf", bm, kernels.MOM3D,
			MemVectorCache3D, "sdram/line/frfcfs/hbm/mshr16/pf8d2", sb1)
	}
}
