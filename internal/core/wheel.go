package core

import (
	"math"
	"slices"

	"repro/internal/engine"
	"repro/internal/isa"
)

// This file is the event-wheel engine: the machinery that lets a Sim
// jump over cycles in which Step would provably do nothing, while
// staying bit-identical to per-cycle stepping — including the stall
// counters Step charges every idle cycle and the exact cycles at
// which ready()'s ReadyBy polls force MSHR batch flushes.
//
// Two structures carry the engine. First, the issue side is event-
// driven: each queue only evaluates its active list — entries with a
// pending reason to re-check. A blocked entry parks with a registered
// wake-up: a cycle bound on the sim's persistent issueWake queue (the
// blocker's completion or flush bound), or a link on the blocking
// entry's waiter chain when only that entry's own issue can unblock
// it. Sleeping entries are never touched, which is what makes the
// executed steps cheap. Second, after a Step that made no progress,
// NextWake collects a conservative wake-up from every pollable
// subsystem (commit head, store buffer, dispatch gates, active
// entries, the earliest sleeping entry) and SkipTo jumps the clock
// there in one move, bulk-charging the stall reasons Step would have
// charged cycle by cycle. Every predicate SkipTo consults is frozen
// across the window by construction: any cycle at which it could flip
// is itself a scheduled wake-up.
//
// Why parking is sound — a parked verdict can only flip at its
// registered wake-up:
//
//   - A time bound is immune to everything but time. The walk's first
//     blocker had issued with a fixed completion time, or was a fill
//     handle whose bound only grows as accesses merge in (every fill
//     completes no earlier than arrival plus the backend's minimum
//     latency, which is exactly what the bound maximized — so flushes,
//     including other tenants', cannot undercut it). The satisfied
//     dependences before the blocker stay satisfied: done times are
//     fixed and a ready handle stays ready.
//   - A chain link waits on one specific unissued entry (a producer or
//     an overlapping older store). While it has not issued, the walk
//     re-derives the same blocker, and its issue walks the chain. The
//     chain cannot dangle: waiters are younger than their blocker, and
//     in-order commit cannot retire past an unissued entry, so no
//     chained slot is recycled while the chain is live. (There is no
//     squash path — mispredicts only stall fetch.)
//
// The skipped ready() polls are unobservable: every handle before the
// first blocker is resolved (its polls mutate nothing), and the
// blocker's own poll first flushes at its lower bound — exactly the
// registered wake-up, where a real Step performs the poll so the MSHR
// occupancy/flush statistics match the oracle bit for bit.

// SimulateMode is Simulate with an explicit engine selection: Step is
// the cycle-stepped oracle, Wheel skips dead cycles between scheduled
// wake-ups. Both produce bit-identical statistics.
func SimulateMode(cfg Config, mem *MemSystem, insts []isa.Inst, mode engine.Mode) *Stats {
	s := NewSim(cfg, mem, insts)
	s.SetEngine(mode)
	if mode == engine.Wheel {
		for s.Running() {
			s.Advance()
		}
	} else {
		for s.Running() {
			s.Step()
		}
	}
	st := s.Finish()
	mem.Drain()
	return st
}

// SetEngine selects the engine for a hand-stepped Sim. Under Wheel,
// the issue scan switches to the event-driven active lists and the
// caller drives the clock with Advance — or, in a lockstep group,
// with NextWake/SkipTo around shared Step rounds. Switching to Wheel
// mid-run adopts already-dispatched entries; switching back to Step
// mid-run is not supported.
func (s *Sim) SetEngine(mode engine.Mode) {
	s.wheelIssue = mode == engine.Wheel
	if s.wheelIssue && s.issueWake == nil {
		// Spans the common wake distance (memory latency plus queueing);
		// rarer far-future bounds overflow to the ring's small heap.
		s.issueWake = engine.NewRing(1024)
		for i := range s.rob {
			e := &s.rob[i]
			if e.valid && !e.issued && !e.active {
				e.active = true
				s.qActive[e.q] = append(s.qActive[e.q], e.seq)
			}
		}
		// No scan has evaluated the adopted entries yet: the first
		// NextWake must not skip until a real step computes a verdict.
		s.issueNoSkip = true
		s.issueUnitBound = maxWake
	}
}

// maxWake marks an entry blocked on another entry's issue rather than
// on a cycle bound.
const maxWake = math.MaxInt64

// drainWakes moves every entry whose timed wake-up is due back onto
// its queue's active list. Spurious wakes (the entry re-parked with a
// later bound, or already issued) are filtered here.
func (s *Sim) drainWakes() {
	for {
		seq, ok := s.issueWake.PopUpTo(s.now)
		if !ok {
			return
		}
		if e := s.entry(seq); e != nil && !e.issued && !e.active {
			e.active = true
			s.qActive[e.q] = append(s.qActive[e.q], e.seq)
		}
	}
}

// park puts e to sleep until the given cycle bound — or, for maxWake,
// until the entry at wseq issues — and reports whether it did. A
// bound not in the future keeps the entry active (the next real Step
// must re-evaluate it, performing any poll the oracle would).
func (s *Sim) park(e *robEntry, wake int64, wseq uint64) bool {
	if wake == maxWake {
		if !e.enlisted {
			p := s.entry(wseq)
			if p == nil || p.issued {
				return false // blocker vanished under us: recheck next cycle
			}
			e.waiterNext = p.waiterHead
			p.waiterHead = e.seq + 1
			e.enlisted = true
		}
		// Already enlisted: while the blocker is unissued the walk
		// re-derives the same blocker, so the existing link stands.
		e.active = false
		return true
	}
	if wake <= s.now {
		return false
	}
	s.issueWake.Schedule(wake, e.seq)
	e.active = false
	return true
}

// wakeWaiters re-activates every entry chained on p, called when p
// issues from queue q's scan. Waiters on q or a later queue activate —
// their scan runs (or is running) this very cycle, exactly when the
// oracle would re-evaluate them. A waiter on an already-scanned queue
// cannot issue this cycle (its blocker's completion lies in the
// future), so it re-parks immediately — typically on the blocker's
// completion time — instead of burning a step on a doomed re-check.
func (s *Sim) wakeWaiters(p *robEntry, q queue) {
	h := p.waiterHead
	p.waiterHead = 0
	for h != 0 {
		e := s.entry(h - 1)
		if e == nil {
			return // unreachable: waiters cannot commit past their blocker
		}
		h = e.waiterNext
		e.waiterNext = 0
		e.enlisted = false
		if e.issued || e.active {
			continue
		}
		if e.q >= q {
			e.active = true
			s.qActive[e.q] = append(s.qActive[e.q], e.seq)
			continue
		}
		if _, asleep := s.issueBoundPark(e); !asleep {
			e.active = true
			s.qActive[e.q] = append(s.qActive[e.q], e.seq)
			s.issueNoSkip = true // evaluated next cycle; its scan already ran
		}
	}
}

// noteRefusal records why fire refused a ready entry: a busy single
// unit contributes its free time as a wake-up bound; anything else
// (port or width contention — other entries issued) conservatively
// forces a real step next cycle.
func (s *Sim) noteRefusal(q queue, e *robEntry) {
	switch {
	case q == qSIMD && s.cfg.SIMDFUs == 1 && s.cfg.Lanes > 1 && s.simdBusyUntil > s.now:
		if s.simdBusyUntil < s.issueUnitBound {
			s.issueUnitBound = s.simdBusyUntil
		}
	case q == qMem && e.in.Op == isa.Op3DVMov && s.moverBusyUntil > s.now:
		if s.moverBusyUntil < s.issueUnitBound {
			s.issueUnitBound = s.moverBusyUntil
		}
	case q == qMem && s.xlatWake > s.now:
		// A translation stall: the TLB miss resolves at a fixed walk
		// (or L2 TLB) completion cycle, so the entry needs no per-cycle
		// re-check — sleeping until the bound is sound because a
		// transaction's ready cycle never moves earlier.
		if s.xlatWake < s.issueUnitBound {
			s.issueUnitBound = s.xlatWake
		}
		s.xlatWake = 0
	default:
		s.issueNoSkip = true
	}
}

// issueQueueWheel is issueQueue over the queue's active list only.
// The list is sorted so width goes to the oldest ready entries, as
// the oracle's in-order scan allocates it. Entries woken mid-scan by
// a blocker issuing are merged back into the scan in seq order: a
// waiter is always younger than its blocker, so the oracle's single
// in-order pass evaluates it after the blocker issues — in the same
// cycle — and the wheel must too.
func (s *Sim) issueQueueWheel(q queue, width int, fire func(e *robEntry) (int64, bool)) {
	act := s.qActive[q]
	if len(act) == 0 {
		return
	}
	s.qActive[q] = s.midBuf[:0] // detach: mid-scan wakes collect separately
	slices.Sort(act)
	issued := 0

	// Fast path: no mid-scan wakes yet, so survivors compact in place
	// (k never passes i) and nothing is copied.
	k, i := 0, 0
	merged := false
	for ; i < len(act); i++ {
		seq := act[i]
		e := s.entry(seq)
		if e == nil || e.issued {
			continue
		}
		if issued >= width {
			// The oracle stops evaluating (and polling) once width is
			// spent, so the poll-free walk is exact here: park if a
			// registered wake-up covers the entry, else re-check next
			// cycle.
			if _, asleep := s.issueBoundPark(e); !asleep {
				act[k] = seq
				k++
				s.issueNoSkip = true
			}
			continue
		}
		ok, wake, wseq := s.readyBound(e)
		if !ok {
			if !s.park(e, wake, wseq) {
				act[k] = seq
				k++
				s.issueNoSkip = true // bound not in the future: re-poll next cycle
			}
			continue
		}
		done, ok := fire(e)
		if !ok {
			act[k] = seq // ready, but the unit refused the grant
			k++
			s.noteRefusal(q, e)
			continue
		}
		e.issued = true
		e.done = done
		if e.donePtr == 0 {
			e.donePtr = done
		}
		if s.tr != nil {
			s.traceIssue(e)
		}
		s.issueGen++
		issued++
		if s.wakeWaiters(e, q); len(s.qActive[q]) > 0 {
			i++
			merged = true
			break // same-cycle waiters woke: switch to the merge scan
		}
	}
	if !merged {
		s.midBuf = s.qActive[q][:0]
		s.qActive[q] = act[:k]
		return
	}

	// Merge path: waiters woken mid-scan are always younger than their
	// blocker, hence younger than every already-kept survivor, so a
	// two-cursor merge over the remaining act entries and the woken
	// extras preserves the oracle's in-order evaluation.
	extras := append(s.extrasBuf[:0], s.qActive[q]...)
	s.qActive[q] = s.qActive[q][:0]
	slices.Sort(extras)
	out := append(s.scanBuf[:0], act[:k]...)
	j := 0
	for i < len(act) || j < len(extras) {
		var seq uint64
		if j < len(extras) && (i >= len(act) || extras[j] < act[i]) {
			seq = extras[j]
			j++
		} else {
			seq = act[i]
			i++
		}
		e := s.entry(seq)
		if e == nil || e.issued {
			continue
		}
		if issued >= width {
			if _, asleep := s.issueBoundPark(e); !asleep {
				out = append(out, seq)
				s.issueNoSkip = true
			}
			continue
		}
		ok, wake, wseq := s.readyBound(e)
		if !ok {
			if !s.park(e, wake, wseq) {
				out = append(out, seq)
				s.issueNoSkip = true
			}
			continue
		}
		done, ok := fire(e)
		if !ok {
			out = append(out, seq)
			s.noteRefusal(q, e)
			continue
		}
		e.issued = true
		e.done = done
		if e.donePtr == 0 {
			e.donePtr = done
		}
		if s.tr != nil {
			s.traceIssue(e)
		}
		s.issueGen++
		issued++
		if s.wakeWaiters(e, q); len(s.qActive[q]) > 0 {
			extras = append(extras, s.qActive[q]...)
			s.qActive[q] = s.qActive[q][:0]
			slices.Sort(extras[j:])
		}
	}
	// Recycle all three detached backings for the next scan.
	s.midBuf = s.qActive[q][:0]
	s.extrasBuf = extras[:0]
	s.scanBuf = act[:0]
	s.qActive[q] = out
}

// readyBound is ready() extended with the first-blocker wake-up. It
// performs the identical short-circuit walk and the identical lazy
// ReadyBy polls (so MSHR flushes fire at the same cycles the oracle
// fires them); on a blocked verdict it reports the first cycle the
// verdict could flip on its own — the blocker's completion or flush
// bound — or maxWake plus the seq of the unissued entry whose issue
// is the only event that can unblock it.
func (s *Sim) readyBound(e *robEntry) (bool, int64, uint64) {
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := s.entry(d.seq)
		if p == nil {
			if rec, ok := s.pendBySeq[d.seq]; ok && !d.usePtr && !rec.h.ReadyBy(s.now) {
				b, _ := rec.h.Bound()
				return false, b, 0
			}
			continue
		}
		if !p.issued {
			return false, maxWake, d.seq
		}
		t := p.done
		if d.usePtr {
			t = p.donePtr
		}
		if t > s.now {
			return false, t, 0
		}
		if !d.usePtr && p.pend != nil && !p.pend.ReadyBy(s.now) {
			b, _ := p.pend.Bound()
			return false, b, 0
		}
	}
	if e.in.Kind.IsMem() && !e.in.IsStore {
		for _, st := range s.stores {
			if st.seq >= e.seq {
				break
			}
			if st.lo < e.hi && e.lo < st.hi {
				if p := s.entry(st.seq); p != nil && !p.issued {
					return false, maxWake, st.seq
				}
			}
		}
	}
	return true, 0, 0
}

// issueBoundPark is readyBound without the polls — NextWake must not
// flush — parking the entry on its first blocking condition. For
// unresolved fill handles it uses the poll-free lower bound, which is
// exactly the cycle a per-cycle poll would first flush, so the wake-up
// lands the real Step (and its flush) on the oracle's cycle. It
// returns (ready, asleep): ready means nothing blocks at now; asleep
// means the entry parked with a registered wake-up. Neither means the
// bound was not in the future — the caller keeps the entry active.
func (s *Sim) issueBoundPark(e *robEntry) (bool, bool) {
	now := s.now
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := s.entry(d.seq)
		if p == nil {
			rec, ok := s.pendBySeq[d.seq]
			if !ok || d.usePtr {
				continue // value in the register file
			}
			t, exact := rec.h.Bound()
			if !exact || t > now {
				return false, s.park(e, t, 0)
			}
			continue
		}
		if !p.issued {
			return false, s.park(e, maxWake, d.seq)
		}
		t := p.done
		if d.usePtr {
			t = p.donePtr
		}
		if t > now {
			return false, s.park(e, t, 0)
		}
		if !d.usePtr && p.pend != nil {
			t, exact := p.pend.Bound()
			if !exact || t > now {
				return false, s.park(e, t, 0)
			}
		}
	}
	if e.in.Kind.IsMem() && !e.in.IsStore {
		for _, st := range s.stores {
			if st.seq >= e.seq {
				break
			}
			if st.lo < e.hi && e.lo < st.hi {
				if p := s.entry(st.seq); p != nil && !p.issued {
					return false, s.park(e, maxWake, st.seq)
				}
			}
		}
	}
	return true, false
}

// Advance is the wheel engine's Step: one real pipeline step, then a
// jump over the cycles no subsystem can act in. The wake-up scan runs
// after every step — it costs a fraction of a Step, and about a
// quarter of productive steps are followed by a dead cycle, which the
// scan converts into a jump instead of an executed no-op step.
func (s *Sim) Advance() {
	s.Step()
	if !s.Running() || s.issueNoSkip {
		// An issue-side verdict of "re-check next cycle" already rules
		// out a skip, so the wake-up scan isn't even worth its call.
		return
	}
	if t := s.NextWake(); t > s.now {
		s.SkipTo(t)
	}
}

// NextWake returns the earliest cycle >= now at which a Step might do
// something a skipped cycle would not (commit, issue, dispatch, an
// MSHR flush triggered by a poll, the no-progress panic). Returning
// now means the next cycle cannot be skipped. As a side effect it
// parks any still-active entry that has a future wake-up, pruning the
// active lists down to entries that genuinely need per-cycle checks.
func (s *Sim) NextWake() int64 {
	if s.issueWake == nil {
		s.SetEngine(engine.Wheel) // hand-stepped caller skipped SetEngine
	}
	now := s.now
	if s.issueNoSkip {
		return now // an active entry needs a per-cycle re-check
	}

	// NextWake only ever needs the earliest candidate, so wake-ups
	// accumulate into a plain minimum rather than a heap. Seeded with
	// the watchdog fence: the no-progress panic in Step must fire at
	// the identical cycle it would under per-cycle stepping.
	best := s.lastCommitCycle + noProgressLimit
	sched := func(t int64) {
		if t < best {
			best = t
		}
	}

	// Commit side. A completed head is progress unless the store
	// buffer blocks it; then the ways out are fills landing — the
	// head's own and any posted store's (freeing a slot) — plus the
	// per-cycle ReadyBy poll of the oldest posted store, which flushes
	// the MSHR file at its lower bound. All of those bounds stop the
	// skip.
	if s.count > 0 {
		e := &s.rob[s.head]
		if e.issued {
			if e.done > now {
				sched(e.done)
			} else {
				outstanding := e.pend != nil && !e.pend.Settled(now)
				if outstanding && e.in.IsStore && s.cfg.StoreBuf > 0 &&
					len(s.postedStores) >= s.cfg.StoreBuf {
					b, _ := e.pend.Bound()
					sched(b)
					for _, h := range s.postedStores {
						b, _ := h.Bound()
						sched(b)
					}
				} else {
					return now // head retires next cycle
				}
			}
		}
		// An unissued head is covered by the issue scan below.
	}

	// Dispatch side.
	if s.mispredictPend {
		// Dispatch resolves the mispredict the cycle the branch's done
		// time passes (the resume time is computed from e.done, so the
		// resolution Step must not be skipped past). An unissued branch
		// is covered by the issue scan.
		if e := s.entry(s.mispredictSeq); e != nil && e.issued {
			sched(e.done)
		}
	} else if s.next < len(s.insts) {
		if now < s.fetchResumeAt {
			sched(s.fetchResumeAt)
		} else {
			in := &s.insts[s.next]
			isMem := in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem
			if s.count != s.cfg.Window &&
				!(isMem && s.lsqCount == s.cfg.LSQ) &&
				s.regsAvailable(in) {
				return now // dispatch inserts next cycle
			}
			// Resource-stalled: only a commit frees the window / LSQ /
			// rename registers, and the commit candidates above (or the
			// issue scan, for an unissued head) already cover that.
		}
	}

	// Issue side: the verdict was computed by this step's own scans
	// (and by insert and wakeWaiters, which park new or woken entries
	// or flag them for a next-cycle re-check — issueNoSkip, handled at
	// the top), so no walk is needed here: every entry still on an
	// active list has already flagged itself or contributed a unit
	// bound.
	if s.issueUnitBound != maxWake {
		sched(s.issueUnitBound)
	}
	// The earliest sleeping entry's timed wake-up.
	if t, ok := s.issueWake.NextCycle(); ok {
		sched(t)
	}

	if best <= now {
		return now
	}
	return best
}

// SkipTo advances the clock to cycle t without stepping, charging the
// per-cycle stall statistics the skipped Steps would have charged. The
// caller must have established via NextWake that every cycle in
// (s.now, t) is a no-op; the predicates below are then frozen across
// the window, because any cycle at which one could flip is itself a
// NextWake candidate.
func (s *Sim) SkipTo(t int64) {
	n := t - s.now
	if n <= 0 {
		return
	}
	// Bulk-charge the window's CPI bucket under the same frozen-
	// predicate argument: the classifier's verdict at s.now holds for
	// every skipped cycle, and the per-handle budget cursors drain
	// identically whether consumed 1×n or n×1. A commit is never
	// skipped, so committed is false by construction.
	s.chargeCPI(uint64(n), false)
	if s.count > 0 {
		e := &s.rob[s.head]
		outstanding := e.issued && e.done <= s.now &&
			e.pend != nil && !e.pend.Settled(s.now)
		if outstanding && e.in.IsStore && s.cfg.StoreBuf > 0 &&
			len(s.postedStores) >= s.cfg.StoreBuf {
			s.stats.StallSB += uint64(n)
		}
	}
	if !s.mispredictPend && s.now >= s.fetchResumeAt && s.next < len(s.insts) {
		in := &s.insts[s.next]
		isMem := in.Kind.IsMem() || in.Kind == isa.KindUSIMDMem
		switch {
		case s.count == s.cfg.Window:
			s.stats.StallROB += uint64(n)
		case isMem && s.lsqCount == s.cfg.LSQ:
			s.stats.StallLSQ += uint64(n)
		case !s.regsAvailable(in):
			s.stats.StallRegs += uint64(n)
		}
	}
	s.now = t
}
