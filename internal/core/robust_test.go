package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// TestEmptyTrace: simulating nothing is zero cycles and doesn't hang.
func TestEmptyTrace(t *testing.T) {
	st := Simulate(MOMCore(), idealMem(), nil)
	if st.Committed != 0 {
		t.Error("nothing to commit")
	}
}

// TestROBStallCounted: a window-filling burst of long-latency loads must
// report ROB pressure without deadlocking.
func TestROBStallCounted(t *testing.T) {
	var insts []isa.Inst
	// One very long latency load then hundreds of cheap scalar ops: the
	// window fills behind the load's in-order commit.
	insts = append(insts, isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem,
		Dst: isa.V(1), VL: 16, Stride: 4096, Addr: 0x100000})
	for i := 0; i < 400; i++ {
		insts = append(insts, add(1+i%4, 5, 6))
	}
	st := Simulate(MOMCore(), NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false), seqify(insts))
	if st.Committed != 401 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallROB == 0 {
		t.Error("expected ROB stalls behind the long load")
	}
}

// TestLSQStallCounted: more in-flight memory operations than LSQ entries.
func TestLSQStallCounted(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem,
			Dst: isa.R(1 + i%8), Imm: 8, Addr: uint64(0x200000 + i*4096)})
	}
	cfg := MMXCore()
	st := Simulate(cfg, NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, true), seqify(insts))
	if st.Committed != 64 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.StallLSQ == 0 {
		t.Error("expected LSQ stalls with 64 cold-missing loads")
	}
}

// TestCommitWidthBounds: cycles can never be fewer than instructions
// divided by the commit width.
func TestCommitWidthBounds(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 1600; i++ {
		insts = append(insts, add(i%8, 8+i%8, 16+i%8))
	}
	cfg := MMXCore()
	st := Simulate(cfg, idealMem(), seqify(insts))
	if st.Cycles < int64(len(insts)/cfg.CommitWidth) {
		t.Errorf("cycles %d below the commit-width bound", st.Cycles)
	}
}

// TestIdealNeverSlower: for every benchmark and variant, ideal memory is
// at least as fast as both realistic memories (a global sanity ordering).
func TestIdealNeverSlower(t *testing.T) {
	bms := []kernels.Benchmark{
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.JPEGDecode(kernels.SmallJPEGDecConfig()),
	}
	for _, bm := range bms {
		for _, v := range []kernels.Variant{kernels.MOM, kernels.MOM3D} {
			tr := &trace.Trace{}
			bm.Run(v, tr)
			cfg := MOMCore()
			run := func(k MemKind) int64 {
				return Simulate(cfg, NewMemSystem(k, vmem.DefaultTiming(), 4, false), tr.Insts).Cycles
			}
			ideal := run(MemIdeal)
			for _, k := range []MemKind{MemMultiBanked, MemVectorCache, MemVectorCache3D} {
				if real := run(k); real < ideal {
					t.Errorf("%s/%v: %v (%d cycles) beat ideal (%d)", bm.Name, v, k, real, ideal)
				}
			}
		}
	}
}

// TestLatencyMonotonic: execution time must not decrease when L2 latency
// grows (failure injection for the timing composition).
func TestLatencyMonotonic(t *testing.T) {
	tr := &trace.Trace{}
	kernels.GSMEncode(kernels.SmallGSMEncConfig()).Run(kernels.MOM, tr)
	prev := int64(0)
	for _, lat := range []int64{10, 20, 40, 80} {
		tim := vmem.Timing{L2Latency: lat, MemLatency: 100}
		c := Simulate(MOMCore(), NewMemSystem(MemVectorCache, tim, 4, false), tr.Insts).Cycles
		if c < prev {
			t.Errorf("latency %d: %d cycles < previous %d", lat, c, prev)
		}
		prev = c
	}
}

// TestDeterminism: identical inputs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	tr := &trace.Trace{}
	kernels.MPEG2Decode(kernels.SmallMPEG2DecConfig()).Run(kernels.MOM3D, tr)
	run := func() int64 {
		return Simulate(MOMCore(),
			NewMemSystem(MemVectorCache3D, vmem.DefaultTiming(), 4, false), tr.Insts).Cycles
	}
	if run() != run() {
		t.Error("simulation must be deterministic")
	}
}

// TestWindowScalingHelps: a larger window never hurts the 3D build (it
// feeds the prefetch effect).
func TestWindowScalingHelps(t *testing.T) {
	tr := &trace.Trace{}
	kernels.MPEG2Encode(kernels.SmallMPEG2EncConfig()).Run(kernels.MOM3D, tr)
	cfgSmall := MOMCore()
	cfgSmall.Window = 32
	cfgBig := MOMCore()
	cfgBig.Window = 256
	small := Simulate(cfgSmall, NewMemSystem(MemVectorCache3D, vmem.DefaultTiming(), 4, false), tr.Insts).Cycles
	big := Simulate(cfgBig, NewMemSystem(MemVectorCache3D, vmem.DefaultTiming(), 4, false), tr.Insts).Cycles
	if big > small {
		t.Errorf("window 256 (%d cycles) worse than window 32 (%d)", big, small)
	}
}

// TestForwardingCounted: the DCT-heavy kernels must exercise the LSQ
// forwarding path.
func TestForwardingCounted(t *testing.T) {
	tr := &trace.Trace{}
	kernels.JPEGEncode(kernels.SmallJPEGEncConfig()).Run(kernels.MOM, tr)
	st := Simulate(MOMCore(), NewMemSystem(MemVectorCache, vmem.DefaultTiming(), 4, false), tr.Insts)
	if st.Forwarded == 0 {
		t.Error("expected store-to-load forwarding in the DCT pipeline")
	}
}
