// Package core implements the trace-driven, cycle-level out-of-order
// superscalar processor model of the paper's evaluation (§5.3, Table 2):
// an 8-way machine with an independent multimedia pipeline, in MMX-like
// and MOM flavors, over the cache hierarchy and vector memory subsystems
// of internal/cache and internal/vmem.
//
// It is the repository's substitute for the authors' Jinks simulator.
package core

import "repro/internal/isa"

// Config holds the processor parameters of Table 2 plus the register-file
// capacities of Table 3.
type Config struct {
	Name string

	// Front end and windows.
	FetchWidth  int // instructions fetched/dispatched per cycle
	CommitWidth int // graduations per cycle
	Window      int // graduation window (ROB) entries
	LSQ         int // load/store queue entries

	// Integer pipeline.
	IntIssue int
	IntFUs   int

	// Multimedia pipeline. The MMX flavor has SIMDFUs independent
	// single-op units; the MOM flavor has one unit of Lanes lanes that
	// processes Lanes vector elements per cycle.
	SIMDIssue int
	SIMDFUs   int
	Lanes     int

	// Memory pipeline.
	MemIssue int // memory instructions issued per cycle
	L1Ports  int // scalar-side L1 ports

	// StoreBuf bounds stores that have retired from the window while
	// their line fill is still outstanding in the MSHR file (the
	// non-blocking pipeline lets stores graduate underneath in-flight
	// misses); commit stalls when it is full. 0 means unbounded. Only
	// meaningful with MSHRs >= 2 — the blocking model never retires a
	// store before its memory completes.
	StoreBuf int

	// Physical register capacities (Table 3). In-flight writers per
	// class are bounded by physical - logical.
	PhysVec, LogVec int
	PhysAcc, LogAcc int
	Phys3D, Log3D   int
	PhysPtr, LogPtr int

	// Branch handling: perfect prediction when UseGshare is false
	// (trace-driven, loop-dominated media codes); otherwise a gshare
	// predictor with a fixed redirect penalty.
	UseGshare         bool
	GshareBits        int
	MispredictPenalty int64
}

// MMXCore returns the MMX-like configuration of Table 2.
func MMXCore() Config {
	return Config{
		Name:       "MMX",
		FetchWidth: 8, CommitWidth: 8, Window: 128, LSQ: 32,
		IntIssue: 4, IntFUs: 4,
		SIMDIssue: 4, SIMDFUs: 4, Lanes: 1,
		MemIssue: 4, L1Ports: 4, StoreBuf: 16,
		PhysVec: 80, LogVec: 32,
		PhysAcc: 4, LogAcc: 2,
		Phys3D: 4, Log3D: 2,
		PhysPtr: 8, LogPtr: 2,
		GshareBits: 12, MispredictPenalty: 8,
	}
}

// MOMCore returns the MOM configuration of Table 2 (also used for MOM+3D;
// the 3D register files are present but only exercised by 3D code).
func MOMCore() Config {
	return Config{
		Name:       "MOM",
		FetchWidth: 8, CommitWidth: 8, Window: 128, LSQ: 32,
		IntIssue: 4, IntFUs: 4,
		SIMDIssue: 1, SIMDFUs: 1, Lanes: 4,
		MemIssue: 2, L1Ports: 2, StoreBuf: 16,
		PhysVec: 36, LogVec: 16,
		PhysAcc: 4, LogAcc: 2,
		Phys3D: 4, Log3D: 2,
		PhysPtr: 8, LogPtr: 2,
		GshareBits: 12, MispredictPenalty: 8,
	}
}

// queue identifies the issue pipeline an instruction dispatches to.
type queue uint8

const (
	qInt queue = iota
	qSIMD
	qMem
	qCount
)

// queueOf maps an instruction to its issue pipeline. 3dvmov is a register
// file transfer over the dedicated 3D datapath (Fig 8-c); it issues from
// the memory pipeline, not the SIMD ALU slot.
func queueOf(in *isa.Inst) queue {
	switch in.Kind {
	case isa.KindScalar, isa.KindBranch:
		return qInt
	case isa.KindUSIMD, isa.KindMOM:
		return qSIMD
	default:
		return qMem
	}
}

// simdOccupancy is the number of cycles an instruction holds the MOM SIMD
// unit: Lanes elements per cycle.
func simdOccupancy(in *isa.Inst, lanes int) int64 {
	vl := in.VL
	if vl < 1 {
		vl = 1
	}
	return int64((vl + lanes - 1) / lanes)
}
