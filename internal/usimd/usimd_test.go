package usimd

import (
	"testing"
	"testing/quick"
)

// Scalar references used by the property tests.

func refBytes(a, b uint64, f func(x, y uint8) uint8) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		r = SetByte(r, i, f(Byte(a, i), Byte(b, i)))
	}
	return r
}

func refWords(a, b uint64, f func(x, y uint16) uint16) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, f(Word(a, i), Word(b, i)))
	}
	return r
}

func check2(t *testing.T, name string, got, want func(a, b uint64) uint64) {
	t.Helper()
	f := func(a, b uint64) bool { return got(a, b) == want(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestLaneAccessors(t *testing.T) {
	x := uint64(0x0807060504030201)
	for i := 0; i < 8; i++ {
		if Byte(x, i) != uint8(i+1) {
			t.Fatalf("Byte(%d) = %#x", i, Byte(x, i))
		}
	}
	if Word(x, 0) != 0x0201 || Word(x, 3) != 0x0807 {
		t.Fatal("Word lanes wrong")
	}
	if Dword(x, 0) != 0x04030201 || Dword(x, 1) != 0x08070605 {
		t.Fatal("Dword lanes wrong")
	}
	if SetByte(0, 7, 0xff) != 0xff00000000000000 {
		t.Fatal("SetByte wrong")
	}
	if SetWord(0, 2, 0xabcd) != 0x0000abcd00000000 {
		t.Fatal("SetWord wrong")
	}
	if SetDword(0, 1, 0xdeadbeef) != 0xdeadbeef00000000 {
		t.Fatal("SetDword wrong")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return PackBytes(UnpackBytes(x)) == x && PackWords(UnpackWords(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrappingAddsSubs(t *testing.T) {
	check2(t, "paddb", PAddB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 { return x + y })
	})
	check2(t, "paddw", PAddW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 { return x + y })
	})
	check2(t, "psubb", PSubB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 { return x - y })
	})
	check2(t, "psubw", PSubW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 { return x - y })
	})
	check2(t, "paddd", PAddD, func(a, b uint64) uint64 {
		lo := Dword(a, 0) + Dword(b, 0)
		hi := Dword(a, 1) + Dword(b, 1)
		return uint64(lo) | uint64(hi)<<32
	})
	check2(t, "psubd", PSubD, func(a, b uint64) uint64 {
		lo := Dword(a, 0) - Dword(b, 0)
		hi := Dword(a, 1) - Dword(b, 1)
		return uint64(lo) | uint64(hi)<<32
	})
}

func TestSaturatingOps(t *testing.T) {
	check2(t, "paddsw", PAddSW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 {
			s := int32(int16(x)) + int32(int16(y))
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			return uint16(int16(s))
		})
	})
	check2(t, "psubsw", PSubSW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 {
			s := int32(int16(x)) - int32(int16(y))
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			return uint16(int16(s))
		})
	})
	check2(t, "paddusb", PAddUSB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 {
			s := int(x) + int(y)
			if s > 255 {
				s = 255
			}
			return uint8(s)
		})
	})
	check2(t, "psubusb", PSubUSB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 {
			if y > x {
				return 0
			}
			return x - y
		})
	})
}

func TestSaturationBoundaries(t *testing.T) {
	// 0x7fff + 1 saturates, not wraps.
	a := PackWords([4]uint16{0x7fff, 0x8000, 0xffff, 1})
	b := PackWords([4]uint16{1, 0xffff /* -1 */, 1, 0x7fff})
	got := UnpackWords(PAddSW(a, b))
	want := [4]uint16{0x7fff, 0x8000, 0, 0x7fff}
	if got != want {
		t.Errorf("paddsw boundaries: got %x want %x", got, want)
	}
	if PAddUSB(PackBytes([8]uint8{250, 250, 250, 250, 250, 250, 250, 250}),
		PackBytes([8]uint8{10, 10, 10, 10, 10, 10, 10, 10})) != ^uint64(0) {
		t.Error("paddusb must saturate to 0xff lanes")
	}
}

func TestMultiplies(t *testing.T) {
	check2(t, "pmullw", PMullW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 {
			return uint16(int32(int16(x)) * int32(int16(y)))
		})
	})
	check2(t, "pmulhw", PMulhW, func(a, b uint64) uint64 {
		return refWords(a, b, func(x, y uint16) uint16 {
			return uint16((int32(int16(x)) * int32(int16(y))) >> 16)
		})
	})
	check2(t, "pmaddwd", PMAddWD, func(a, b uint64) uint64 {
		lo := int32(int16(Word(a, 0)))*int32(int16(Word(b, 0))) + int32(int16(Word(a, 1)))*int32(int16(Word(b, 1)))
		hi := int32(int16(Word(a, 2)))*int32(int16(Word(b, 2))) + int32(int16(Word(a, 3)))*int32(int16(Word(b, 3)))
		return uint64(uint32(lo)) | uint64(uint32(hi))<<32
	})
}

func TestByteOps(t *testing.T) {
	check2(t, "pavgb", PAvgB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 {
			return uint8((uint16(x) + uint16(y) + 1) >> 1)
		})
	})
	check2(t, "pminub", PMinUB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 {
			if x < y {
				return x
			}
			return y
		})
	})
	check2(t, "pmaxub", PMaxUB, func(a, b uint64) uint64 {
		return refBytes(a, b, func(x, y uint8) uint8 {
			if x > y {
				return x
			}
			return y
		})
	})
}

func TestPSadBW(t *testing.T) {
	check2(t, "psadbw", PSadBW, func(a, b uint64) uint64 {
		var s uint64
		for i := 0; i < 8; i++ {
			x, y := int(Byte(a, i)), int(Byte(b, i))
			if x > y {
				s += uint64(x - y)
			} else {
				s += uint64(y - x)
			}
		}
		return s
	})
	// Max possible SAD is 8*255.
	if got := PSadBW(0, ^uint64(0)); got != 8*255 {
		t.Errorf("max SAD = %d, want %d", got, 8*255)
	}
	if PSadBW(0x1234567890abcdef, 0x1234567890abcdef) != 0 {
		t.Error("SAD of identical values must be 0")
	}
}

func TestLogicals(t *testing.T) {
	check2(t, "pandn", PAndN, func(a, b uint64) uint64 { return ^a & b })
	if PAnd(0xf0f0, 0xff00) != 0xf000 || POr(0xf0f0, 0x0f0f) != 0xffff || PXor(0xffff, 0xf0f0) != 0x0f0f {
		t.Error("basic logicals wrong")
	}
}

func TestShifts(t *testing.T) {
	a := PackWords([4]uint16{0x8001, 0x4002, 0x2003, 0x1004})
	if got := UnpackWords(PSllW(a, 4)); got != [4]uint16{0x0010, 0x0020, 0x0030, 0x0040} {
		t.Errorf("psllw: %x", got)
	}
	if got := UnpackWords(PSrlW(a, 4)); got != [4]uint16{0x0800, 0x0400, 0x0200, 0x0100} {
		t.Errorf("psrlw: %x", got)
	}
	if got := UnpackWords(PSraW(a, 4)); got != [4]uint16{0xf800, 0x0400, 0x0200, 0x0100} {
		t.Errorf("psraw: %x", got)
	}
	// Out-of-range counts.
	if PSllW(a, 16) != 0 || PSrlW(a, 16) != 0 || PSllD(a, 32) != 0 || PSrlD(a, 32) != 0 {
		t.Error("out-of-range logical shifts must produce 0")
	}
	if got := UnpackWords(PSraW(a, 100)); got != [4]uint16{0xffff, 0, 0, 0} {
		t.Errorf("psraw saturating count: %x", got)
	}
	if PSllQ(1, 63) != 1<<63 || PSrlQ(1<<63, 63) != 1 || PSllQ(1, 64) != 0 || PSrlQ(1, 64) != 0 {
		t.Error("quad shifts wrong")
	}
	d := uint64(0x80000000_00000001)
	if PSraD(d, 31) != 0xffffffff_00000000 {
		t.Errorf("psrad: %x", PSraD(d, 31))
	}
}

func TestPacks(t *testing.T) {
	a := PackWords([4]uint16{0x0012, 0xffff /* -1 */, 0x0100 /* 256 */, 0x8000 /* min */})
	b := PackWords([4]uint16{0x007f, 0x0080, 0x7fff, 0xff80 /* -128 */})
	gotU := UnpackBytes(PackUSWB(a, b))
	wantU := [8]uint8{0x12, 0, 0xff, 0, 0x7f, 0x80, 0xff, 0}
	if gotU != wantU {
		t.Errorf("packuswb: got %x want %x", gotU, wantU)
	}
	gotS := UnpackBytes(PackSSWB(a, b))
	wantS := [8]uint8{0x12, 0xff, 0x7f, 0x80, 0x7f, 0x7f, 0x7f, 0x80}
	if gotS != wantS {
		t.Errorf("packsswb: got %x want %x", gotS, wantS)
	}
}

func TestUnpacks(t *testing.T) {
	a := PackBytes([8]uint8{0, 1, 2, 3, 4, 5, 6, 7})
	b := PackBytes([8]uint8{10, 11, 12, 13, 14, 15, 16, 17})
	if got := UnpackBytes(PUnpckLBW(a, b)); got != [8]uint8{0, 10, 1, 11, 2, 12, 3, 13} {
		t.Errorf("punpcklbw: %v", got)
	}
	if got := UnpackBytes(PUnpckHBW(a, b)); got != [8]uint8{4, 14, 5, 15, 6, 16, 7, 17} {
		t.Errorf("punpckhbw: %v", got)
	}
	wa := PackWords([4]uint16{100, 101, 102, 103})
	wb := PackWords([4]uint16{200, 201, 202, 203})
	if got := UnpackWords(PUnpckLWD(wa, wb)); got != [4]uint16{100, 200, 101, 201} {
		t.Errorf("punpcklwd: %v", got)
	}
	if got := UnpackWords(PUnpckHWD(wa, wb)); got != [4]uint16{102, 202, 103, 203} {
		t.Errorf("punpckhwd: %v", got)
	}
}

func TestPShufW(t *testing.T) {
	a := PackWords([4]uint16{10, 11, 12, 13})
	// control 0b00_01_10_11 = reverse
	if got := UnpackWords(PShufW(a, 0x1b)); got != [4]uint16{13, 12, 11, 10} {
		t.Errorf("pshufw reverse: %v", got)
	}
	// broadcast lane 2: control 0b10_10_10_10 = 0xaa
	if got := UnpackWords(PShufW(a, 0xaa)); got != [4]uint16{12, 12, 12, 12} {
		t.Errorf("pshufw broadcast: %v", got)
	}
}

func TestSplatW(t *testing.T) {
	if SplatW(0x1234) != 0x1234123412341234 {
		t.Errorf("SplatW: %x", SplatW(0x1234))
	}
	if SplatW(0xffff1234) != 0x1234123412341234 {
		t.Error("SplatW must only use low 16 bits")
	}
}

// Unpack(L/H) used together must be a permutation of input bytes.
func TestUnpackIsPermutation(t *testing.T) {
	f := func(a, b uint64) bool {
		count := map[uint8]int{}
		for i := 0; i < 8; i++ {
			count[Byte(a, i)]++
			count[Byte(b, i)]++
		}
		lo, hi := PUnpckLBW(a, b), PUnpckHBW(a, b)
		for i := 0; i < 8; i++ {
			count[Byte(lo, i)]--
			count[Byte(hi, i)]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackSSDW(t *testing.T) {
	a := uint64(uint32(40000)) | uint64(uint32(0xffffffff))<<32 // 40000, -1
	b := uint64(uint32(0x80000000)) | uint64(uint32(7))<<32     // min32, 7
	got := UnpackWords(PackSSDW(a, b))
	want := [4]uint16{0x7fff, 0xffff, 0x8000, 7}
	if got != want {
		t.Errorf("packssdw: got %x want %x", got, want)
	}
}

func TestUnpackDQ(t *testing.T) {
	a := uint64(0x1111111122222222)
	b := uint64(0x3333333344444444)
	if PUnpckLDQ(a, b) != 0x4444444422222222 {
		t.Errorf("punpckldq: %x", PUnpckLDQ(a, b))
	}
	if PUnpckHDQ(a, b) != 0x3333333311111111 {
		t.Errorf("punpckhdq: %x", PUnpckHDQ(a, b))
	}
}
