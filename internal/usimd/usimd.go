// Package usimd implements the packed (sub-word SIMD) arithmetic that the
// MMX-like μSIMD instructions and the per-element MOM vector operations
// share. All operations work on 64-bit little-endian packed values:
// 8x8-bit bytes, 4x16-bit words, or 2x32-bit doublewords.
//
// The functions are pure and allocation-free; they are the single source
// of truth for packed semantics, used by the functional emulator and
// property-tested against scalar references.
package usimd

// Byte lane helpers.

// Byte extracts byte lane i (0 = least significant) of x.
func Byte(x uint64, i int) uint8 { return uint8(x >> (8 * uint(i))) }

// SetByte returns x with byte lane i replaced by v.
func SetByte(x uint64, i int, v uint8) uint64 {
	sh := 8 * uint(i)
	return x&^(0xff<<sh) | uint64(v)<<sh
}

// Word extracts 16-bit lane i (0..3) of x.
func Word(x uint64, i int) uint16 { return uint16(x >> (16 * uint(i))) }

// SetWord returns x with 16-bit lane i replaced by v.
func SetWord(x uint64, i int, v uint16) uint64 {
	sh := 16 * uint(i)
	return x&^(0xffff<<sh) | uint64(v)<<sh
}

// Dword extracts 32-bit lane i (0..1) of x.
func Dword(x uint64, i int) uint32 { return uint32(x >> (32 * uint(i))) }

// SetDword returns x with 32-bit lane i replaced by v.
func SetDword(x uint64, i int, v uint32) uint64 {
	sh := 32 * uint(i)
	return x&^(0xffffffff<<sh) | uint64(v)<<sh
}

// PackBytes packs 8 bytes (b[0] least significant) into a uint64.
func PackBytes(b [8]uint8) uint64 {
	var x uint64
	for i, v := range b {
		x |= uint64(v) << (8 * uint(i))
	}
	return x
}

// UnpackBytes splits x into its 8 byte lanes.
func UnpackBytes(x uint64) [8]uint8 {
	var b [8]uint8
	for i := range b {
		b[i] = Byte(x, i)
	}
	return b
}

// PackWords packs 4 words (w[0] least significant) into a uint64.
func PackWords(w [4]uint16) uint64 {
	var x uint64
	for i, v := range w {
		x |= uint64(v) << (16 * uint(i))
	}
	return x
}

// UnpackWords splits x into its 4 word lanes.
func UnpackWords(x uint64) [4]uint16 {
	var w [4]uint16
	for i := range w {
		w[i] = Word(x, i)
	}
	return w
}

// Wrapping lane adds/subtracts.

// PAddB adds byte lanes with wraparound.
func PAddB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		r = SetByte(r, i, Byte(a, i)+Byte(b, i))
	}
	return r
}

// PAddW adds 16-bit lanes with wraparound.
func PAddW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, Word(a, i)+Word(b, i))
	}
	return r
}

// PAddD adds 32-bit lanes with wraparound.
func PAddD(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetDword(r, i, Dword(a, i)+Dword(b, i))
	}
	return r
}

// PSubB subtracts byte lanes with wraparound.
func PSubB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		r = SetByte(r, i, Byte(a, i)-Byte(b, i))
	}
	return r
}

// PSubW subtracts 16-bit lanes with wraparound.
func PSubW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, Word(a, i)-Word(b, i))
	}
	return r
}

// PSubD subtracts 32-bit lanes with wraparound.
func PSubD(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetDword(r, i, Dword(a, i)-Dword(b, i))
	}
	return r
}

// Saturating arithmetic.

func satI16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

func satU8(v int32) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

func satI8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// PAddSW adds 16-bit lanes with signed saturation.
func PAddSW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		s := int32(int16(Word(a, i))) + int32(int16(Word(b, i)))
		r = SetWord(r, i, uint16(satI16(s)))
	}
	return r
}

// PSubSW subtracts 16-bit lanes with signed saturation.
func PSubSW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		s := int32(int16(Word(a, i))) - int32(int16(Word(b, i)))
		r = SetWord(r, i, uint16(satI16(s)))
	}
	return r
}

// PAddUSB adds byte lanes with unsigned saturation.
func PAddUSB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		s := int32(Byte(a, i)) + int32(Byte(b, i))
		r = SetByte(r, i, satU8(s))
	}
	return r
}

// PSubUSB subtracts byte lanes with unsigned saturation (floor at zero).
func PSubUSB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		s := int32(Byte(a, i)) - int32(Byte(b, i))
		r = SetByte(r, i, satU8(s))
	}
	return r
}

// Multiplies.

// PMullW multiplies 16-bit lanes, keeping the low 16 bits of each product.
func PMullW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		p := int32(int16(Word(a, i))) * int32(int16(Word(b, i)))
		r = SetWord(r, i, uint16(p))
	}
	return r
}

// PMulhW multiplies signed 16-bit lanes, keeping the high 16 bits.
func PMulhW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		p := int32(int16(Word(a, i))) * int32(int16(Word(b, i)))
		r = SetWord(r, i, uint16(p>>16))
	}
	return r
}

// PMAddWD multiplies signed 16-bit lanes and adds adjacent pairs into two
// signed 32-bit results.
func PMAddWD(a, b uint64) uint64 {
	lo := int32(int16(Word(a, 0)))*int32(int16(Word(b, 0))) +
		int32(int16(Word(a, 1)))*int32(int16(Word(b, 1)))
	hi := int32(int16(Word(a, 2)))*int32(int16(Word(b, 2))) +
		int32(int16(Word(a, 3)))*int32(int16(Word(b, 3)))
	return uint64(uint32(lo)) | uint64(uint32(hi))<<32
}

// Byte min/max/average.

// PAvgB averages unsigned byte lanes with rounding: (a+b+1)>>1.
func PAvgB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		v := (uint16(Byte(a, i)) + uint16(Byte(b, i)) + 1) >> 1
		r = SetByte(r, i, uint8(v))
	}
	return r
}

// PMinUB takes the unsigned minimum of byte lanes.
func PMinUB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		x, y := Byte(a, i), Byte(b, i)
		if y < x {
			x = y
		}
		r = SetByte(r, i, x)
	}
	return r
}

// PMaxUB takes the unsigned maximum of byte lanes.
func PMaxUB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		x, y := Byte(a, i), Byte(b, i)
		if y > x {
			x = y
		}
		r = SetByte(r, i, x)
	}
	return r
}

// PSadBW computes the sum of absolute differences of the 8 unsigned byte
// lanes, returned as a small scalar in the low bits.
func PSadBW(a, b uint64) uint64 {
	var sum uint64
	for i := 0; i < 8; i++ {
		x, y := int32(Byte(a, i)), int32(Byte(b, i))
		d := x - y
		if d < 0 {
			d = -d
		}
		sum += uint64(d)
	}
	return sum
}

// Logicals.

// PAnd is bitwise AND.
func PAnd(a, b uint64) uint64 { return a & b }

// POr is bitwise OR.
func POr(a, b uint64) uint64 { return a | b }

// PXor is bitwise XOR.
func PXor(a, b uint64) uint64 { return a ^ b }

// PAndN is MMX pandn: NOT(a) AND b.
func PAndN(a, b uint64) uint64 { return ^a & b }

// Shifts. Counts larger than the lane width zero the lane (or replicate
// the sign bit for arithmetic right shifts), matching MMX semantics.

// PSllW shifts 16-bit lanes left.
func PSllW(a uint64, n int) uint64 {
	if n >= 16 || n < 0 {
		return 0
	}
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, Word(a, i)<<uint(n))
	}
	return r
}

// PSrlW shifts 16-bit lanes right logically.
func PSrlW(a uint64, n int) uint64 {
	if n >= 16 || n < 0 {
		return 0
	}
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, Word(a, i)>>uint(n))
	}
	return r
}

// PSraW shifts 16-bit lanes right arithmetically.
func PSraW(a uint64, n int) uint64 {
	if n < 0 {
		n = 0
	}
	if n > 15 {
		n = 15
	}
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetWord(r, i, uint16(int16(Word(a, i))>>uint(n)))
	}
	return r
}

// PSllD shifts 32-bit lanes left.
func PSllD(a uint64, n int) uint64 {
	if n >= 32 || n < 0 {
		return 0
	}
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetDword(r, i, Dword(a, i)<<uint(n))
	}
	return r
}

// PSrlD shifts 32-bit lanes right logically.
func PSrlD(a uint64, n int) uint64 {
	if n >= 32 || n < 0 {
		return 0
	}
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetDword(r, i, Dword(a, i)>>uint(n))
	}
	return r
}

// PSraD shifts 32-bit lanes right arithmetically.
func PSraD(a uint64, n int) uint64 {
	if n < 0 {
		n = 0
	}
	if n > 31 {
		n = 31
	}
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetDword(r, i, uint32(int32(Dword(a, i))>>uint(n)))
	}
	return r
}

// PSllQ shifts the whole 64-bit register left.
func PSllQ(a uint64, n int) uint64 {
	if n >= 64 || n < 0 {
		return 0
	}
	return a << uint(n)
}

// PSrlQ shifts the whole 64-bit register right logically.
func PSrlQ(a uint64, n int) uint64 {
	if n >= 64 || n < 0 {
		return 0
	}
	return a >> uint(n)
}

// Packs and unpacks.

// PackUSWB packs the four signed words of a (low result bytes) and b (high
// result bytes) into eight unsigned saturated bytes.
func PackUSWB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetByte(r, i, satU8(int32(int16(Word(a, i)))))
		r = SetByte(r, i+4, satU8(int32(int16(Word(b, i)))))
	}
	return r
}

// PackSSWB packs the four signed words of a and b into eight signed
// saturated bytes.
func PackSSWB(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetByte(r, i, uint8(satI8(int32(int16(Word(a, i))))))
		r = SetByte(r, i+4, uint8(satI8(int32(int16(Word(b, i))))))
	}
	return r
}

// PackSSDW packs the two signed dwords of a (low result words) and b (high
// result words) into four signed saturated 16-bit words.
func PackSSDW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetWord(r, i, uint16(satI16(int32(Dword(a, i)))))
		r = SetWord(r, i+2, uint16(satI16(int32(Dword(b, i)))))
	}
	return r
}

// PUnpckLDQ interleaves the low dwords of a and b: result = a0 b0.
func PUnpckLDQ(a, b uint64) uint64 {
	return uint64(Dword(a, 0)) | uint64(Dword(b, 0))<<32
}

// PUnpckHDQ interleaves the high dwords of a and b: result = a1 b1.
func PUnpckHDQ(a, b uint64) uint64 {
	return uint64(Dword(a, 1)) | uint64(Dword(b, 1))<<32
}

// PUnpckLBW interleaves the low four bytes of a and b:
// result bytes = a0 b0 a1 b1 a2 b2 a3 b3.
func PUnpckLBW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetByte(r, 2*i, Byte(a, i))
		r = SetByte(r, 2*i+1, Byte(b, i))
	}
	return r
}

// PUnpckHBW interleaves the high four bytes of a and b.
func PUnpckHBW(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		r = SetByte(r, 2*i, Byte(a, i+4))
		r = SetByte(r, 2*i+1, Byte(b, i+4))
	}
	return r
}

// PUnpckLWD interleaves the low two words of a and b:
// result words = a0 b0 a1 b1.
func PUnpckLWD(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetWord(r, 2*i, Word(a, i))
		r = SetWord(r, 2*i+1, Word(b, i))
	}
	return r
}

// PUnpckHWD interleaves the high two words of a and b.
func PUnpckHWD(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		r = SetWord(r, 2*i, Word(a, i+2))
		r = SetWord(r, 2*i+1, Word(b, i+2))
	}
	return r
}

// PShufW shuffles the four 16-bit lanes of a by the 8-bit control imm:
// result word i = a word (imm >> 2i) & 3.
func PShufW(a uint64, imm int) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		sel := (imm >> (2 * uint(i))) & 3
		r = SetWord(r, i, Word(a, sel))
	}
	return r
}

// SplatW broadcasts the low 16 bits of v to all four word lanes.
func SplatW(v uint64) uint64 {
	w := v & 0xffff
	return w | w<<16 | w<<32 | w<<48
}
