package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/usimd"
)

func newM() *Machine { return New(mmem.New()) }

func mustExec(t *testing.T, m *Machine, in isa.Inst) {
	t.Helper()
	if err := m.Exec(&in); err != nil {
		t.Fatalf("exec %s: %v", in.String(), err)
	}
}

func TestScalarALU(t *testing.T) {
	m := newM()
	mustExec(t, m, isa.Inst{Op: isa.OpIMovImm, Kind: isa.KindScalar, Dst: isa.R(1), Imm: 40})
	mustExec(t, m, isa.Inst{Op: isa.OpIMovImm, Kind: isa.KindScalar, Dst: isa.R(2), Imm: -2})
	mustExec(t, m, isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if m.IntVal(isa.R(3)) != 38 {
		t.Errorf("add: %d", m.IntVal(isa.R(3)))
	}
	mustExec(t, m, isa.Inst{Op: isa.OpIMul, Kind: isa.KindScalar, Dst: isa.R(4), Src1: isa.R(1), Src2: isa.R(2)})
	if m.IntVal(isa.R(4)) != -80 {
		t.Errorf("mul: %d", m.IntVal(isa.R(4)))
	}
	mustExec(t, m, isa.Inst{Op: isa.OpISlt, Kind: isa.KindScalar, Dst: isa.R(5), Src1: isa.R(2), Src2: isa.R(1)})
	if m.IntVal(isa.R(5)) != 1 {
		t.Error("slt must be signed")
	}
	mustExec(t, m, isa.Inst{Op: isa.OpIMin, Kind: isa.KindScalar, Dst: isa.R(6), Src1: isa.R(1), Src2: isa.R(2)})
	mustExec(t, m, isa.Inst{Op: isa.OpIMax, Kind: isa.KindScalar, Dst: isa.R(7), Src1: isa.R(1), Src2: isa.R(2)})
	if m.IntVal(isa.R(6)) != -2 || m.IntVal(isa.R(7)) != 40 {
		t.Error("min/max wrong")
	}
}

func TestScalarMemory(t *testing.T) {
	m := newM()
	m.SetInt(isa.R(1), 0x1234567890)
	mustExec(t, m, isa.Inst{Op: isa.OpStore, Kind: isa.KindScalarMem, Src2: isa.R(1), Imm: 8, Addr: 0x100, IsStore: true})
	mustExec(t, m, isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem, Dst: isa.R(2), Imm: 8, Addr: 0x100})
	if m.IntVal(isa.R(2)) != 0x1234567890 {
		t.Error("64-bit round trip failed")
	}
	// Sign extension.
	m.Mem.WriteU8(0x200, 0xff)
	mustExec(t, m, isa.Inst{Op: isa.OpLoadS, Kind: isa.KindScalarMem, Dst: isa.R(3), Imm: 1, Addr: 0x200})
	if m.IntVal(isa.R(3)) != -1 {
		t.Errorf("sign-extended byte = %d, want -1", m.IntVal(isa.R(3)))
	}
	mustExec(t, m, isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem, Dst: isa.R(4), Imm: 1, Addr: 0x200})
	if m.IntVal(isa.R(4)) != 255 {
		t.Errorf("zero-extended byte = %d, want 255", m.IntVal(isa.R(4)))
	}
	// Bad size is an error.
	in := isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem, Dst: isa.R(5), Imm: 3, Addr: 0}
	if err := m.Exec(&in); err == nil {
		t.Error("load size 3 must fail")
	}
}

func TestUSIMDOps(t *testing.T) {
	m := newM()
	m.Vec[1][0] = 0x0102030405060708
	m.Vec[2][0] = 0x1010101010101010
	mustExec(t, m, isa.Inst{Op: isa.OpPAddB, Kind: isa.KindUSIMD, Dst: isa.V(3), Src1: isa.V(1), Src2: isa.V(2)})
	if m.Vec[3][0] != usimd.PAddB(0x0102030405060708, 0x1010101010101010) {
		t.Error("usimd paddb mismatch")
	}
	mustExec(t, m, isa.Inst{Op: isa.OpPSllW, Kind: isa.KindUSIMD, Dst: isa.V(4), Src1: isa.V(1), Imm: 4})
	if m.Vec[4][0] != usimd.PSllW(0x0102030405060708, 4) {
		t.Error("usimd shift mismatch")
	}
	// Missing second source on a two-source op is an error.
	in := isa.Inst{Op: isa.OpPAddB, Kind: isa.KindUSIMD, Dst: isa.V(3), Src1: isa.V(1)}
	if err := m.Exec(&in); err == nil {
		t.Error("paddb without src2 must fail")
	}
}

func TestMOMElementwise(t *testing.T) {
	m := newM()
	for e := 0; e < 8; e++ {
		m.Vec[1][e] = uint64(e) * 0x0101010101010101
		m.Vec[2][e] = 0x0202020202020202
	}
	m.Vec[1][9] = 0xdead // beyond VL, must not be touched
	mustExec(t, m, isa.Inst{Op: isa.OpPAddB, Kind: isa.KindMOM, Dst: isa.V(1), Src1: isa.V(1), Src2: isa.V(2), VL: 8})
	for e := 0; e < 8; e++ {
		want := usimd.PAddB(uint64(e)*0x0101010101010101, 0x0202020202020202)
		if m.Vec[1][e] != want {
			t.Errorf("elem %d: got %x want %x", e, m.Vec[1][e], want)
		}
	}
	if m.Vec[1][9] != 0xdead {
		t.Error("elements beyond VL must be untouched")
	}
	// VL out of range.
	in := isa.Inst{Op: isa.OpPAddB, Kind: isa.KindMOM, Dst: isa.V(1), Src1: isa.V(1), Src2: isa.V(2), VL: 17}
	if err := m.Exec(&in); err == nil {
		t.Error("VL=17 must fail")
	}
}

func TestMOMMemoryStrided(t *testing.T) {
	m := newM()
	const stride = 176
	for e := 0; e < 8; e++ {
		m.Mem.WriteU64(0x1000+uint64(e*stride), uint64(e)+1)
	}
	mustExec(t, m, isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(1),
		VL: 8, Stride: stride, Addr: 0x1000})
	for e := 0; e < 8; e++ {
		if m.Vec[1][e] != uint64(e)+1 {
			t.Errorf("elem %d = %d", e, m.Vec[1][e])
		}
	}
	mustExec(t, m, isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Src2: isa.V(1),
		VL: 8, Stride: 8, Addr: 0x8000, IsStore: true})
	for e := 0; e < 8; e++ {
		if m.Mem.ReadU64(0x8000+uint64(e*8)) != uint64(e)+1 {
			t.Errorf("stored elem %d wrong", e)
		}
	}
}

func TestAccumulators(t *testing.T) {
	m := newM()
	for e := 0; e < 4; e++ {
		m.Vec[1][e] = usimd.PackBytes([8]uint8{10, 10, 10, 10, 10, 10, 10, 10})
		m.Vec[2][e] = usimd.PackBytes([8]uint8{7, 13, 7, 13, 7, 13, 7, 13})
	}
	mustExec(t, m, isa.Inst{Op: isa.OpAccClr, Kind: isa.KindScalar, Dst: isa.A(0)})
	mustExec(t, m, isa.Inst{Op: isa.OpVSadAcc, Kind: isa.KindMOM, Dst: isa.A(0), Src1: isa.V(1), Src2: isa.V(2), VL: 4})
	// per element SAD = 8 * 3 = 24; 4 elements = 96
	if m.AccVal(isa.A(0)) != 96 {
		t.Errorf("vsadacc = %d, want 96", m.AccVal(isa.A(0)))
	}
	// Accumulation continues without clear.
	mustExec(t, m, isa.Inst{Op: isa.OpVSadAcc, Kind: isa.KindMOM, Dst: isa.A(0), Src1: isa.V(1), Src2: isa.V(2), VL: 1})
	if m.AccVal(isa.A(0)) != 120 {
		t.Errorf("accumulate = %d, want 120", m.AccVal(isa.A(0)))
	}
	mustExec(t, m, isa.Inst{Op: isa.OpAccMov, Kind: isa.KindScalar, Dst: isa.R(1), Src1: isa.A(0)})
	if m.IntVal(isa.R(1)) != 120 {
		t.Error("accmov wrong")
	}

	// Dot product accumulate: elements of (1,2,3,4)·(2,2,2,2) = 20 each.
	m.Vec[5][0] = usimd.PackWords([4]uint16{1, 2, 3, 4})
	m.Vec[5][1] = usimd.PackWords([4]uint16{0xffff /* -1 */, 1, 0, 0})
	m.Vec[6][0] = usimd.PackWords([4]uint16{2, 2, 2, 2})
	m.Vec[6][1] = usimd.PackWords([4]uint16{5, 5, 0, 0})
	mustExec(t, m, isa.Inst{Op: isa.OpAccClr, Kind: isa.KindScalar, Dst: isa.A(1)})
	mustExec(t, m, isa.Inst{Op: isa.OpVMacAcc, Kind: isa.KindMOM, Dst: isa.A(1), Src1: isa.V(5), Src2: isa.V(6), VL: 2})
	if m.AccVal(isa.A(1)) != 20 { // 20 + (-5 + 5)
		t.Errorf("vmacacc = %d, want 20", m.AccVal(isa.A(1)))
	}
}

func TestD3LoadAndMove(t *testing.T) {
	m := newM()
	// Lay out 4 rows of 128 consecutive bytes 0..127, row base 0x1000+r*256.
	for r := 0; r < 4; r++ {
		for i := 0; i < 128; i++ {
			m.Mem.WriteU8(0x1000+uint64(r*256+i), uint8(i))
		}
	}
	mustExec(t, m, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0),
		VL: 4, Stride: 256, Width: 16, Addr: 0x1000})
	if m.PtrVal(isa.P(0)) != 0 {
		t.Errorf("pointer after front load = %d", m.PtrVal(isa.P(0)))
	}
	// First slice: bytes 0..7 of each row.
	mustExec(t, m, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1),
		Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 1, VL: 4})
	want := usimd.PackBytes([8]uint8{0, 1, 2, 3, 4, 5, 6, 7})
	for e := 0; e < 4; e++ {
		if m.Vec[1][e] != want {
			t.Errorf("slice0 elem %d = %x, want %x", e, m.Vec[1][e], want)
		}
	}
	if m.PtrVal(isa.P(0)) != 1 {
		t.Errorf("pointer after move = %d, want 1", m.PtrVal(isa.P(0)))
	}
	// Second slice at byte offset 1 (unaligned; shift&mask path).
	mustExec(t, m, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(2),
		Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 1, VL: 4})
	want = usimd.PackBytes([8]uint8{1, 2, 3, 4, 5, 6, 7, 8})
	if m.Vec[2][0] != want {
		t.Errorf("slice1 = %x, want %x", m.Vec[2][0], want)
	}
}

func TestD3BackPointerAndNegativeStep(t *testing.T) {
	m := newM()
	for i := 0; i < 32; i++ {
		m.Mem.WriteU8(0x100+uint64(i), uint8(i))
	}
	// Width 4 words = 32 bytes; back pointer starts at last sub-block (24).
	mustExec(t, m, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(1),
		VL: 1, Stride: 0, Width: 4, Back: true, Addr: 0x100})
	if m.PtrVal(isa.P(1)) != 24 {
		t.Fatalf("back pointer = %d, want 24", m.PtrVal(isa.P(1)))
	}
	mustExec(t, m, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1),
		Src1: isa.D(1), Ptr: isa.P(1), PtrStep: -8, VL: 1})
	if m.Vec[1][0] != usimd.PackBytes([8]uint8{24, 25, 26, 27, 28, 29, 30, 31}) {
		t.Errorf("back slice = %x", m.Vec[1][0])
	}
	if m.PtrVal(isa.P(1)) != 16 {
		t.Errorf("pointer after -8 = %d, want 16", m.PtrVal(isa.P(1)))
	}
}

func TestD3LoadClearsStaleWords(t *testing.T) {
	m := newM()
	m.D3[0][0][15] = 0xdeadbeef
	mustExec(t, m, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0),
		VL: 1, Stride: 0, Width: 2, Addr: 0})
	if m.D3[0][0][15] != 0 {
		t.Error("partial-width load must clear stale high words")
	}
}

func TestD3SliceAtRegisterEnd(t *testing.T) {
	m := newM()
	for i := 0; i < 128; i++ {
		m.Mem.WriteU8(uint64(i), uint8(i))
	}
	mustExec(t, m, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0),
		VL: 1, Stride: 0, Width: 16, Addr: 0})
	// Move the pointer to offset 124: the slice spans past the end and the
	// missing bytes read as zero.
	m.Ptr[0] = 124
	mustExec(t, m, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1),
		Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 0, VL: 1})
	want := usimd.PackBytes([8]uint8{124, 125, 126, 127, 0, 0, 0, 0})
	if m.Vec[1][0] != want {
		t.Errorf("end slice = %x, want %x", m.Vec[1][0], want)
	}
}

func TestD3PointerWraps(t *testing.T) {
	m := newM()
	mustExec(t, m, isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0),
		VL: 1, Stride: 0, Width: 16, Addr: 0})
	m.Ptr[0] = 127
	mustExec(t, m, isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1),
		Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 2, VL: 1})
	if m.PtrVal(isa.P(0)) != 1 {
		t.Errorf("pointer wrap: %d, want 1", m.PtrVal(isa.P(0)))
	}
}

func TestExecErrors(t *testing.T) {
	m := newM()
	bad := []isa.Inst{
		{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.V(0), VL: 1, Width: 1},                     // dst not 3D
		{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0), VL: 1, Width: 17},                    // width too large
		{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0), VL: 0, Width: 1},                     // VL 0
		{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(0), Src1: isa.V(1), VL: 1},                // src not 3D
		{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(0), Src1: isa.D(0), Ptr: isa.P(1), VL: 1}, // ptr mismatch
		{Op: isa.OpVSadAcc, Kind: isa.KindMOM, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2), VL: 1},  // dst not acc
		{Op: isa.OpIAdd, Kind: isa.KindScalar, Dst: isa.V(0), Src1: isa.R(0), Src2: isa.R(0)},         // dst not int
		{Op: isa.OpPAddB, Kind: isa.KindUSIMD, Dst: isa.R(0), Src1: isa.V(0), Src2: isa.V(1)},         // dst not vec
	}
	for i := range bad {
		if err := m.Exec(&bad[i]); err == nil {
			t.Errorf("case %d (%s): expected error", i, bad[i].String())
		}
	}
}

func TestSplatAndMoves(t *testing.T) {
	m := newM()
	m.SetInt(isa.R(1), 0xabcd)
	mustExec(t, m, isa.Inst{Op: isa.OpVSplatW, Kind: isa.KindMOM, Dst: isa.V(1), Src1: isa.R(1), VL: 3})
	for e := 0; e < 3; e++ {
		if m.Vec[1][e] != 0xabcdabcdabcdabcd {
			t.Errorf("splat elem %d = %x", e, m.Vec[1][e])
		}
	}
	mustExec(t, m, isa.Inst{Op: isa.OpVMovI2V, Kind: isa.KindUSIMD, Dst: isa.V(2), Src1: isa.R(1)})
	if m.Vec[2][0] != 0xabcd {
		t.Error("vmovi2v wrong")
	}
	m.Vec[3][5] = 777
	mustExec(t, m, isa.Inst{Op: isa.OpVMovV2I, Kind: isa.KindScalar, Dst: isa.R(2), Src1: isa.V(3), Imm: 5})
	if m.IntVal(isa.R(2)) != 777 {
		t.Error("vmovv2i wrong")
	}
}
