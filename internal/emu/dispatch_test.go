package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/usimd"
)

// refPacked mirrors the emulator's packed dispatch table against the
// usimd functions directly, so every opcode's wiring is verified.
var packedRef = map[isa.Op]func(a, b uint64) uint64{
	isa.OpPAddB:     usimd.PAddB,
	isa.OpPAddW:     usimd.PAddW,
	isa.OpPAddD:     usimd.PAddD,
	isa.OpPAddSW:    usimd.PAddSW,
	isa.OpPAddUSB:   usimd.PAddUSB,
	isa.OpPSubB:     usimd.PSubB,
	isa.OpPSubW:     usimd.PSubW,
	isa.OpPSubD:     usimd.PSubD,
	isa.OpPSubSW:    usimd.PSubSW,
	isa.OpPSubUSB:   usimd.PSubUSB,
	isa.OpPMullW:    usimd.PMullW,
	isa.OpPMulhW:    usimd.PMulhW,
	isa.OpPMAddWD:   usimd.PMAddWD,
	isa.OpPAvgB:     usimd.PAvgB,
	isa.OpPMinUB:    usimd.PMinUB,
	isa.OpPMaxUB:    usimd.PMaxUB,
	isa.OpPSadBW:    usimd.PSadBW,
	isa.OpPAnd:      usimd.PAnd,
	isa.OpPOr:       usimd.POr,
	isa.OpPXor:      usimd.PXor,
	isa.OpPAndN:     usimd.PAndN,
	isa.OpPackUSWB:  usimd.PackUSWB,
	isa.OpPackSSWB:  usimd.PackSSWB,
	isa.OpPackSSDW:  usimd.PackSSDW,
	isa.OpPUnpckLBW: usimd.PUnpckLBW,
	isa.OpPUnpckHBW: usimd.PUnpckHBW,
	isa.OpPUnpckLWD: usimd.PUnpckLWD,
	isa.OpPUnpckHWD: usimd.PUnpckHWD,
	isa.OpPUnpckLDQ: usimd.PUnpckLDQ,
	isa.OpPUnpckHDQ: usimd.PUnpckHDQ,
}

var packedImmRef = map[isa.Op]func(a uint64, n int) uint64{
	isa.OpPSllW:  usimd.PSllW,
	isa.OpPSrlW:  usimd.PSrlW,
	isa.OpPSraW:  usimd.PSraW,
	isa.OpPSllD:  usimd.PSllD,
	isa.OpPSrlD:  usimd.PSrlD,
	isa.OpPSraD:  usimd.PSraD,
	isa.OpPSllQ:  usimd.PSllQ,
	isa.OpPSrlQ:  usimd.PSrlQ,
	isa.OpPShufW: func(a uint64, n int) uint64 { return usimd.PShufW(a, n) },
}

// TestPackedDispatchUSIMD checks every two-source packed opcode under the
// μSIMD kind against its usimd implementation with random operands.
func TestPackedDispatchUSIMD(t *testing.T) {
	m := New(mmem.New())
	for op, ref := range packedRef {
		f := func(a, b uint64) bool {
			m.Vec[1][0], m.Vec[2][0] = a, b
			in := isa.Inst{Op: op, Kind: isa.KindUSIMD, Dst: isa.V(3), Src1: isa.V(1), Src2: isa.V(2)}
			if err := m.Exec(&in); err != nil {
				return false
			}
			return m.Vec[3][0] == ref(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
}

// TestPackedDispatchMOM checks the same opcodes applied per element under
// the MOM kind: every element must match, untouched elements must stay.
func TestPackedDispatchMOM(t *testing.T) {
	m := New(mmem.New())
	for op, ref := range packedRef {
		f := func(a, b uint64, vlRaw uint8) bool {
			vl := int(vlRaw%16) + 1
			for e := 0; e < isa.MOMElems; e++ {
				m.Vec[1][e] = a + uint64(e)
				m.Vec[2][e] = b ^ uint64(e)<<8
				m.Vec[3][e] = 0xdead
			}
			in := isa.Inst{Op: op, Kind: isa.KindMOM, Dst: isa.V(3), Src1: isa.V(1), Src2: isa.V(2), VL: vl}
			if err := m.Exec(&in); err != nil {
				return false
			}
			for e := 0; e < vl; e++ {
				if m.Vec[3][e] != ref(a+uint64(e), b^uint64(e)<<8) {
					return false
				}
			}
			for e := vl; e < isa.MOMElems; e++ {
				if m.Vec[3][e] != 0xdead {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
}

// TestPackedDispatchImmediates checks the shift/shuffle opcodes.
func TestPackedDispatchImmediates(t *testing.T) {
	m := New(mmem.New())
	for op, ref := range packedImmRef {
		f := func(a uint64, nRaw uint8) bool {
			n := int(nRaw % 70)
			if op == isa.OpPShufW {
				n = int(nRaw) // full 8-bit control
			}
			m.Vec[1][0] = a
			in := isa.Inst{Op: op, Kind: isa.KindUSIMD, Dst: isa.V(2), Src1: isa.V(1), Imm: int64(n)}
			if err := m.Exec(&in); err != nil {
				return false
			}
			return m.Vec[2][0] == ref(a, n)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
}

// TestMOMLoadStoreRoundTripProperty: strided store then strided load of
// random data restores the register contents.
func TestMOMLoadStoreRoundTripProperty(t *testing.T) {
	m := New(mmem.New())
	f := func(vals [16]uint64, strideRaw uint8, vlRaw uint8) bool {
		vl := int(vlRaw%16) + 1
		stride := int64(strideRaw%7+1) * 8 // multiples of 8 up to 56
		for e, v := range vals {
			m.Vec[1][e] = v
		}
		st := isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Src2: isa.V(1),
			VL: vl, Stride: stride, Addr: 0x40000, IsStore: true}
		ld := isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(2),
			VL: vl, Stride: stride, Addr: 0x40000}
		if m.Exec(&st) != nil || m.Exec(&ld) != nil {
			return false
		}
		for e := 0; e < vl; e++ {
			if m.Vec[2][e] != vals[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestD3SliceEquivalence: a 3dvmov slice at pointer p equals a MOM load
// of the same memory at base+p — the architectural equivalence that makes
// 3D memory vectorization a pure memory-system optimization.
func TestD3SliceEquivalence(t *testing.T) {
	m := New(mmem.New())
	f := func(seed uint64, pRaw uint8, vlRaw uint8) bool {
		vl := int(vlRaw%16) + 1
		p := int(pRaw % 120)
		const base, stride = 0x50000, 256
		x := seed | 1
		for i := 0; i < stride*16; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			m.Mem.WriteU8(base+uint64(i), uint8(x))
		}
		dv := isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: isa.D(0),
			VL: vl, Stride: stride, Width: 16, Addr: base}
		if m.Exec(&dv) != nil {
			return false
		}
		m.Ptr[0] = p
		mv := isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: isa.V(1),
			Src1: isa.D(0), Ptr: isa.P(0), PtrStep: 0, VL: vl}
		ld := isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: isa.V(2),
			VL: vl, Stride: stride, Addr: base + uint64(p)}
		if m.Exec(&mv) != nil || m.Exec(&ld) != nil {
			return false
		}
		for e := 0; e < vl; e++ {
			if m.Vec[1][e] != m.Vec[2][e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
