// Package emu implements the functional (architectural) emulator for the
// combined scalar + μSIMD + MOM + 3D instruction set defined in
// internal/isa. It executes dynamic instructions against an architectural
// state and a byte-addressable memory image, with bit-exact packed
// semantics provided by internal/usimd.
//
// The emulator plays the role the ATOM-based emulation libraries played in
// the paper's methodology (§5.1): it gives the hand-vectorized kernels
// their semantics, so the traces fed to the cycle simulator correspond to
// a real execution whose outputs can be checked against scalar references.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/usimd"
)

// Machine is the architectural state of the emulated processor.
type Machine struct {
	// Mem is the architectural memory image.
	Mem *mmem.Memory
	// Int is the scalar integer register file.
	Int [isa.NumIntRegs]uint64
	// Vec is the multimedia register file. MMX-style instructions use
	// element 0 of a register only; MOM instructions use up to MOMElems.
	Vec [isa.NumVecRegsMMX][isa.MOMElems]uint64
	// Acc is the packed accumulator register file (192-bit accumulators;
	// the value ranges exercised here fit comfortably in 64 bits).
	Acc [isa.NumAccRegs]int64
	// D3 is the 3D vector register file: per register, D3Elems elements
	// of D3ElemWords 64-bit words each.
	D3 [isa.Num3DRegs][isa.D3Elems][isa.D3ElemWords]uint64
	// Ptr is the 3D pointer register file: byte offsets within a 3D
	// register element, wrapped to PtrBits bits.
	Ptr [isa.Num3DRegs]int
}

// New returns a machine with zeroed registers over the given memory image.
func New(mem *mmem.Memory) *Machine {
	if mem == nil {
		mem = mmem.New()
	}
	return &Machine{Mem: mem}
}

const ptrMask = 1<<isa.PtrBits - 1

// IntVal returns the value of a scalar integer register, interpreted as a
// signed 64-bit integer.
func (m *Machine) IntVal(r isa.Reg) int64 { return int64(m.Int[r.Index()]) }

// SetInt sets a scalar integer register.
func (m *Machine) SetInt(r isa.Reg, v int64) { m.Int[r.Index()] = uint64(v) }

// VecElem returns element e of multimedia register r.
func (m *Machine) VecElem(r isa.Reg, e int) uint64 { return m.Vec[r.Index()][e] }

// AccVal returns the value of an accumulator register.
func (m *Machine) AccVal(r isa.Reg) int64 { return m.Acc[r.Index()] }

// PtrVal returns the current byte offset held in a 3D pointer register.
func (m *Machine) PtrVal(r isa.Reg) int { return m.Ptr[r.Index()] }

// Exec executes one dynamic instruction, updating the architectural state.
// It returns an error for malformed instructions (wrong register class,
// out-of-range vector length); such errors indicate kernel bugs, not data
// conditions.
func (m *Machine) Exec(in *isa.Inst) error {
	switch in.Kind {
	case isa.KindScalar, isa.KindBranch:
		return m.execScalar(in)
	case isa.KindScalarMem:
		return m.execScalarMem(in)
	case isa.KindUSIMD:
		return m.execPacked(in, 1)
	case isa.KindMOM:
		return m.execMOM(in)
	case isa.KindUSIMDMem:
		return m.execUSIMDMem(in)
	case isa.KindMOMMem:
		return m.execMOMMem(in)
	case isa.Kind3DLoad:
		return m.exec3DLoad(in)
	case isa.Kind3DMove:
		return m.exec3DMove(in)
	}
	return fmt.Errorf("emu: unknown kind %v", in.Kind)
}

func (m *Machine) execScalar(in *isa.Inst) error {
	a := int64(m.Int[in.Src1.Index()])
	b := int64(m.Int[in.Src2.Index()])
	var r int64
	switch in.Op {
	case isa.OpNop, isa.OpBr, isa.OpJump:
		return nil // control flow outcome is recorded in the trace
	case isa.OpIMovImm:
		r = in.Imm
	case isa.OpIMov:
		r = a
	case isa.OpIAdd:
		r = a + b
	case isa.OpIAddImm:
		r = a + in.Imm
	case isa.OpISub:
		r = a - b
	case isa.OpIMul:
		r = a * b
	case isa.OpIAnd:
		r = a & b
	case isa.OpIOr:
		r = a | b
	case isa.OpIXor:
		r = a ^ b
	case isa.OpIShl:
		r = int64(uint64(a) << uint(in.Imm&63))
	case isa.OpIShr:
		r = int64(uint64(a) >> uint(in.Imm&63))
	case isa.OpISra:
		r = a >> uint(in.Imm&63)
	case isa.OpISltI:
		if a < in.Imm {
			r = 1
		}
	case isa.OpISlt:
		if a < b {
			r = 1
		}
	case isa.OpIMin:
		r = a
		if b < a {
			r = b
		}
	case isa.OpIMax:
		r = a
		if b > a {
			r = b
		}
	case isa.OpAccMov:
		if in.Src1.Class() != isa.RCAcc {
			return fmt.Errorf("emu: accmov source %v is not an accumulator", in.Src1)
		}
		r = m.Acc[in.Src1.Index()]
	case isa.OpAccClr:
		if in.Dst.Class() != isa.RCAcc {
			return fmt.Errorf("emu: accclr destination %v is not an accumulator", in.Dst)
		}
		m.Acc[in.Dst.Index()] = 0
		return nil
	case isa.OpVMovV2I:
		if in.Src1.Class() != isa.RCVec {
			return fmt.Errorf("emu: vmovv2i source %v is not a vector register", in.Src1)
		}
		e := int(in.Imm)
		if e < 0 || e >= isa.MOMElems {
			return fmt.Errorf("emu: vmovv2i element %d out of range", e)
		}
		r = int64(m.Vec[in.Src1.Index()][e])
	default:
		return fmt.Errorf("emu: op %s is not scalar", in.Op.Name())
	}
	if in.Dst.Class() != isa.RCInt {
		return fmt.Errorf("emu: scalar destination %v is not an integer register", in.Dst)
	}
	m.Int[in.Dst.Index()] = uint64(r)
	return nil
}

func (m *Machine) execScalarMem(in *isa.Inst) error {
	size := int(in.Imm)
	switch in.Op {
	case isa.OpLoad, isa.OpLoadS:
		var v uint64
		switch size {
		case 1:
			v = uint64(m.Mem.ReadU8(in.Addr))
			if in.Op == isa.OpLoadS {
				v = uint64(int64(int8(v)))
			}
		case 2:
			v = uint64(m.Mem.ReadU16(in.Addr))
			if in.Op == isa.OpLoadS {
				v = uint64(int64(int16(v)))
			}
		case 4:
			v = uint64(m.Mem.ReadU32(in.Addr))
			if in.Op == isa.OpLoadS {
				v = uint64(int64(int32(v)))
			}
		case 8:
			v = m.Mem.ReadU64(in.Addr)
		default:
			return fmt.Errorf("emu: scalar load size %d", size)
		}
		m.Int[in.Dst.Index()] = v
		return nil
	case isa.OpStore:
		v := m.Int[in.Src2.Index()]
		switch size {
		case 1:
			m.Mem.WriteU8(in.Addr, uint8(v))
		case 2:
			m.Mem.WriteU16(in.Addr, uint16(v))
		case 4:
			m.Mem.WriteU32(in.Addr, uint32(v))
		case 8:
			m.Mem.WriteU64(in.Addr, v)
		default:
			return fmt.Errorf("emu: scalar store size %d", size)
		}
		return nil
	}
	return fmt.Errorf("emu: op %s is not scalar memory", in.Op.Name())
}

// packedUnary lists packed opcodes that take an immediate instead of a
// second register source.
func packedImmOperand(op isa.Op) bool {
	switch op {
	case isa.OpPSllW, isa.OpPSrlW, isa.OpPSraW, isa.OpPSllD, isa.OpPSrlD,
		isa.OpPSraD, isa.OpPSllQ, isa.OpPSrlQ, isa.OpPShufW:
		return true
	}
	return false
}

// evalPacked applies one packed operation to 64-bit lanes a, b.
func evalPacked(op isa.Op, a, b uint64, imm int64) (uint64, error) {
	switch op {
	case isa.OpPAddB:
		return usimd.PAddB(a, b), nil
	case isa.OpPAddW:
		return usimd.PAddW(a, b), nil
	case isa.OpPAddD:
		return usimd.PAddD(a, b), nil
	case isa.OpPAddSW:
		return usimd.PAddSW(a, b), nil
	case isa.OpPAddUSB:
		return usimd.PAddUSB(a, b), nil
	case isa.OpPSubB:
		return usimd.PSubB(a, b), nil
	case isa.OpPSubW:
		return usimd.PSubW(a, b), nil
	case isa.OpPSubD:
		return usimd.PSubD(a, b), nil
	case isa.OpPSubSW:
		return usimd.PSubSW(a, b), nil
	case isa.OpPSubUSB:
		return usimd.PSubUSB(a, b), nil
	case isa.OpPMullW:
		return usimd.PMullW(a, b), nil
	case isa.OpPMulhW:
		return usimd.PMulhW(a, b), nil
	case isa.OpPMAddWD:
		return usimd.PMAddWD(a, b), nil
	case isa.OpPAvgB:
		return usimd.PAvgB(a, b), nil
	case isa.OpPMinUB:
		return usimd.PMinUB(a, b), nil
	case isa.OpPMaxUB:
		return usimd.PMaxUB(a, b), nil
	case isa.OpPSadBW:
		return usimd.PSadBW(a, b), nil
	case isa.OpPAnd:
		return usimd.PAnd(a, b), nil
	case isa.OpPOr:
		return usimd.POr(a, b), nil
	case isa.OpPXor:
		return usimd.PXor(a, b), nil
	case isa.OpPAndN:
		return usimd.PAndN(a, b), nil
	case isa.OpPSllW:
		return usimd.PSllW(a, int(imm)), nil
	case isa.OpPSrlW:
		return usimd.PSrlW(a, int(imm)), nil
	case isa.OpPSraW:
		return usimd.PSraW(a, int(imm)), nil
	case isa.OpPSllD:
		return usimd.PSllD(a, int(imm)), nil
	case isa.OpPSrlD:
		return usimd.PSrlD(a, int(imm)), nil
	case isa.OpPSraD:
		return usimd.PSraD(a, int(imm)), nil
	case isa.OpPSllQ:
		return usimd.PSllQ(a, int(imm)), nil
	case isa.OpPSrlQ:
		return usimd.PSrlQ(a, int(imm)), nil
	case isa.OpPackUSWB:
		return usimd.PackUSWB(a, b), nil
	case isa.OpPackSSWB:
		return usimd.PackSSWB(a, b), nil
	case isa.OpPackSSDW:
		return usimd.PackSSDW(a, b), nil
	case isa.OpPUnpckLDQ:
		return usimd.PUnpckLDQ(a, b), nil
	case isa.OpPUnpckHDQ:
		return usimd.PUnpckHDQ(a, b), nil
	case isa.OpPUnpckLBW:
		return usimd.PUnpckLBW(a, b), nil
	case isa.OpPUnpckHBW:
		return usimd.PUnpckHBW(a, b), nil
	case isa.OpPUnpckLWD:
		return usimd.PUnpckLWD(a, b), nil
	case isa.OpPUnpckHWD:
		return usimd.PUnpckHWD(a, b), nil
	case isa.OpPShufW:
		return usimd.PShufW(a, int(imm)), nil
	}
	return 0, fmt.Errorf("emu: op %s is not packed", op.Name())
}

// execPacked executes a packed ALU operation over the first vl elements of
// the operand registers (vl = 1 for μSIMD instructions).
func (m *Machine) execPacked(in *isa.Inst, vl int) error {
	switch in.Op {
	case isa.OpVMovI2V:
		if in.Dst.Class() != isa.RCVec || in.Src1.Class() != isa.RCInt {
			return fmt.Errorf("emu: vmovi2v operand classes %v, %v", in.Dst, in.Src1)
		}
		m.Vec[in.Dst.Index()][0] = m.Int[in.Src1.Index()]
		return nil
	case isa.OpVSplatW:
		if in.Dst.Class() != isa.RCVec || in.Src1.Class() != isa.RCInt {
			return fmt.Errorf("emu: vsplatw operand classes %v, %v", in.Dst, in.Src1)
		}
		v := usimd.SplatW(m.Int[in.Src1.Index()])
		for e := 0; e < vl; e++ {
			m.Vec[in.Dst.Index()][e] = v
		}
		return nil
	}
	if in.Dst.Class() != isa.RCVec || in.Src1.Class() != isa.RCVec {
		return fmt.Errorf("emu: packed operand classes %v, %v", in.Dst, in.Src1)
	}
	s2 := 0
	if in.Src2.Valid() {
		if in.Src2.Class() != isa.RCVec {
			return fmt.Errorf("emu: packed source %v is not a vector register", in.Src2)
		}
		s2 = in.Src2.Index()
	} else if !packedImmOperand(in.Op) {
		return fmt.Errorf("emu: packed op %s missing second source", in.Op.Name())
	}
	for e := 0; e < vl; e++ {
		a := m.Vec[in.Src1.Index()][e]
		var b uint64
		if in.Src2.Valid() {
			b = m.Vec[s2][e]
		}
		r, err := evalPacked(in.Op, a, b, in.Imm)
		if err != nil {
			return err
		}
		m.Vec[in.Dst.Index()][e] = r
	}
	return nil
}

func (m *Machine) checkVL(vl int) error {
	if vl < 1 || vl > isa.MOMElems {
		return fmt.Errorf("emu: vector length %d out of range [1,%d]", vl, isa.MOMElems)
	}
	return nil
}

func (m *Machine) execMOM(in *isa.Inst) error {
	if err := m.checkVL(in.VL); err != nil {
		return err
	}
	switch in.Op {
	case isa.OpVSadAcc, isa.OpVMacAcc, isa.OpVAddWAcc:
		return m.execAccumulate(in)
	}
	return m.execPacked(in, in.VL)
}

// execAccumulate implements the MOM packed-accumulator reductions.
func (m *Machine) execAccumulate(in *isa.Inst) error {
	if in.Dst.Class() != isa.RCAcc {
		return fmt.Errorf("emu: accumulate destination %v is not an accumulator", in.Dst)
	}
	if in.Src1.Class() != isa.RCVec {
		return fmt.Errorf("emu: accumulate source %v is not a vector register", in.Src1)
	}
	var sum int64
	for e := 0; e < in.VL; e++ {
		a := m.Vec[in.Src1.Index()][e]
		switch in.Op {
		case isa.OpVSadAcc:
			if in.Src2.Class() != isa.RCVec {
				return fmt.Errorf("emu: vsadacc source %v is not a vector register", in.Src2)
			}
			sum += int64(usimd.PSadBW(a, m.Vec[in.Src2.Index()][e]))
		case isa.OpVMacAcc:
			if in.Src2.Class() != isa.RCVec {
				return fmt.Errorf("emu: vmacacc source %v is not a vector register", in.Src2)
			}
			b := m.Vec[in.Src2.Index()][e]
			for w := 0; w < 4; w++ {
				sum += int64(int16(usimd.Word(a, w))) * int64(int16(usimd.Word(b, w)))
			}
		case isa.OpVAddWAcc:
			for w := 0; w < 4; w++ {
				sum += int64(int16(usimd.Word(a, w)))
			}
		}
	}
	m.Acc[in.Dst.Index()] += sum
	return nil
}

func (m *Machine) execUSIMDMem(in *isa.Inst) error {
	switch in.Op {
	case isa.OpVLoad:
		if in.Dst.Class() != isa.RCVec {
			return fmt.Errorf("emu: μSIMD load destination %v", in.Dst)
		}
		m.Vec[in.Dst.Index()][0] = m.Mem.ReadU64(in.Addr)
		return nil
	case isa.OpVStore:
		if in.Src2.Class() != isa.RCVec {
			return fmt.Errorf("emu: μSIMD store source %v", in.Src2)
		}
		m.Mem.WriteU64(in.Addr, m.Vec[in.Src2.Index()][0])
		return nil
	}
	return fmt.Errorf("emu: op %s is not μSIMD memory", in.Op.Name())
}

func (m *Machine) execMOMMem(in *isa.Inst) error {
	if err := m.checkVL(in.VL); err != nil {
		return err
	}
	switch in.Op {
	case isa.OpVLoad:
		if in.Dst.Class() != isa.RCVec {
			return fmt.Errorf("emu: MOM load destination %v", in.Dst)
		}
		for e := 0; e < in.VL; e++ {
			addr := in.Addr + uint64(int64(e)*in.Stride)
			m.Vec[in.Dst.Index()][e] = m.Mem.ReadU64(addr)
		}
		return nil
	case isa.OpVStore:
		if in.Src2.Class() != isa.RCVec {
			return fmt.Errorf("emu: MOM store source %v", in.Src2)
		}
		for e := 0; e < in.VL; e++ {
			addr := in.Addr + uint64(int64(e)*in.Stride)
			m.Mem.WriteU64(addr, m.Vec[in.Src2.Index()][e])
		}
		return nil
	}
	return fmt.Errorf("emu: op %s is not MOM memory", in.Op.Name())
}

// exec3DLoad implements dvload DRi <- Rj, Rk, W, b (paper §4.1): starting
// at the base address, load W 64-bit words into element 0 of the 3D
// register, then repeat at stride offsets for the remaining VL-1 elements.
// The pointer register is initialized to the beginning of the element
// (b = false) or to the last loaded 64-bit sub-block (b = true), allowing
// the third dimension to be walked in either direction.
func (m *Machine) exec3DLoad(in *isa.Inst) error {
	if in.Dst.Class() != isa.RC3D {
		return fmt.Errorf("emu: dvload destination %v is not a 3D register", in.Dst)
	}
	if err := m.checkVL(in.VL); err != nil {
		return err
	}
	if in.Width < 1 || in.Width > isa.D3ElemWords {
		return fmt.Errorf("emu: dvload width %d out of range [1,%d]", in.Width, isa.D3ElemWords)
	}
	d := in.Dst.Index()
	for e := 0; e < in.VL; e++ {
		base := in.Addr + uint64(int64(e)*in.Stride)
		for w := 0; w < in.Width; w++ {
			m.D3[d][e][w] = m.Mem.ReadU64(base + uint64(w*8))
		}
		for w := in.Width; w < isa.D3ElemWords; w++ {
			m.D3[d][e][w] = 0
		}
	}
	if in.Back {
		m.Ptr[d] = (in.Width - 1) * 8
	} else {
		m.Ptr[d] = 0
	}
	return nil
}

// exec3DMove implements 3dvmov MRi <- DRj, Ps (paper §4.1): for each of VL
// elements, extract the 64-bit sub-block at the current pointer offset
// (byte-aligned; the hardware shift&mask network reads the two containing
// quadwords) into the MOM register, then advance the pointer by Ps. The
// pointer wraps modulo 2^PtrBits, matching its 7-bit storage.
func (m *Machine) exec3DMove(in *isa.Inst) error {
	if in.Dst.Class() != isa.RCVec {
		return fmt.Errorf("emu: 3dvmov destination %v is not a vector register", in.Dst)
	}
	if in.Src1.Class() != isa.RC3D {
		return fmt.Errorf("emu: 3dvmov source %v is not a 3D register", in.Src1)
	}
	if in.Ptr.Class() != isa.RCPtr || in.Ptr.Index() != in.Src1.Index() {
		return fmt.Errorf("emu: 3dvmov pointer %v does not match 3D register %v", in.Ptr, in.Src1)
	}
	if err := m.checkVL(in.VL); err != nil {
		return err
	}
	d := in.Src1.Index()
	off := m.Ptr[d] & ptrMask
	for e := 0; e < in.VL; e++ {
		m.Vec[in.Dst.Index()][e] = m.d3Slice(d, e, off)
	}
	m.Ptr[d] = (off + in.PtrStep) & ptrMask
	return nil
}

// d3Slice extracts the 64-bit value at byte offset off within element e of
// 3D register d, emulating the byte-alignment shift&mask network. Reads
// past the end of the 128-byte element return zero bytes.
func (m *Machine) d3Slice(d, e, off int) uint64 {
	w := off >> 3
	sh := uint(off&7) * 8
	lo := m.D3[d][e][w]
	var hi uint64
	if sh != 0 && w+1 < isa.D3ElemWords {
		hi = m.D3[d][e][w+1]
	}
	if sh == 0 {
		return lo
	}
	return lo>>sh | hi<<(64-sh)
}
