// Package mmem provides the architectural (functional) memory image used by
// the emulator and the trace builder: a sparse, paged, byte-addressable
// 64-bit address space with little-endian multi-byte accessors.
//
// This is the "real machine memory" whose addresses drive the cache
// models; it has no timing of its own.
package mmem

import "encoding/binary"

const (
	pageShift = 16
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse byte-addressable memory image. The zero value is
// ready to use; unwritten bytes read as zero.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// New returns an empty memory image.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ReadU8 returns the byte at addr (zero if never written).
func (m *Memory) ReadU8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// WriteU8 stores one byte at addr.
func (m *Memory) WriteU8(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr uint64) uint16 {
	var b [2]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	m.Write(addr, b[:])
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// Footprint returns the number of bytes of backing store currently
// allocated (a multiple of the page size).
func (m *Memory) Footprint() int {
	return len(m.pages) * pageSize
}

// Allocator hands out non-overlapping address ranges from a memory image,
// mimicking a bump allocator in the traced program's address space.
type Allocator struct {
	next uint64
}

// NewAllocator starts allocating at base.
func NewAllocator(base uint64) *Allocator {
	return &Allocator{next: base}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address of the reservation.
func (a *Allocator) Alloc(size int, align int) uint64 {
	if align <= 0 {
		align = 1
	}
	mask := uint64(align - 1)
	a.next = (a.next + mask) &^ mask
	addr := a.next
	a.next += uint64(size)
	return addr
}
