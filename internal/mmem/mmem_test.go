package mmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroValueReads(t *testing.T) {
	m := New()
	if m.ReadU8(0) != 0 || m.ReadU64(1<<40) != 0 {
		t.Error("unwritten memory must read as zero")
	}
	buf := make([]byte, 64)
	m.Read(0xdeadbeef, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("bulk read of unwritten memory must be zero")
		}
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.WriteU8(42, 0xab)
	if m.ReadU8(42) != 0xab {
		t.Error("byte round trip failed")
	}
	if m.ReadU8(43) != 0 {
		t.Error("adjacent byte must stay zero")
	}
}

func TestWideRoundTrips(t *testing.T) {
	m := New()
	m.WriteU16(100, 0x1234)
	m.WriteU32(200, 0xdeadbeef)
	m.WriteU64(300, 0x0123456789abcdef)
	if m.ReadU16(100) != 0x1234 {
		t.Error("u16")
	}
	if m.ReadU32(200) != 0xdeadbeef {
		t.Error("u32")
	}
	if m.ReadU64(300) != 0x0123456789abcdef {
		t.Error("u64")
	}
	// Little-endian byte order.
	if m.ReadU8(100) != 0x34 || m.ReadU8(101) != 0x12 {
		t.Error("u16 must be little-endian")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.Write(addr, src)
	dst := make([]byte, 8)
	m.Read(addr, dst)
	if !bytes.Equal(src, dst) {
		t.Errorf("cross-page: got %v want %v", dst, src)
	}
	m.WriteU64(addr, 0x1122334455667788)
	if m.ReadU64(addr) != 0x1122334455667788 {
		t.Error("cross-page u64 round trip failed")
	}
}

func TestBulkRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := uint64(addr)
		m.Write(a, data)
		got := make([]byte, len(data))
		m.Read(a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroValueMemoryUsable(t *testing.T) {
	var m Memory // zero value, no New
	m.WriteU32(16, 7)
	if m.ReadU32(16) != 7 {
		t.Error("zero-value Memory must be usable")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Error("empty memory footprint must be 0")
	}
	m.WriteU8(0, 1)
	m.WriteU8(pageSize*10, 1)
	if m.Footprint() != 2*pageSize {
		t.Errorf("footprint = %d, want %d", m.Footprint(), 2*pageSize)
	}
	// Reads must not allocate.
	m.ReadU8(pageSize * 20)
	if m.Footprint() != 2*pageSize {
		t.Error("reads must not allocate pages")
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(0x1000)
	p1 := a.Alloc(100, 64)
	p2 := a.Alloc(10, 64)
	p3 := a.Alloc(1, 1)
	if p1 != 0x1000 {
		t.Errorf("p1 = %#x", p1)
	}
	if p2%64 != 0 || p2 < p1+100 {
		t.Errorf("p2 = %#x not aligned past p1", p2)
	}
	if p3 < p2+10 {
		t.Errorf("p3 = %#x overlaps p2", p3)
	}
	// Alignment must be respected for any power of two.
	for _, al := range []int{1, 2, 4, 8, 16, 4096} {
		p := a.Alloc(3, al)
		if p%uint64(al) != 0 {
			t.Errorf("alloc align %d: %#x", al, p)
		}
	}
}
