package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

// smallRunner builds a runner over test-scale benchmarks so the full
// experiment matrix stays fast.
func smallRunner() *Runner {
	return NewRunnerWith([]kernels.Benchmark{
		kernels.JPEGEncode(kernels.SmallJPEGEncConfig()),
		kernels.JPEGDecode(kernels.SmallJPEGDecConfig()),
		kernels.MPEG2Decode(kernels.SmallMPEG2DecConfig()),
		kernels.MPEG2Encode(kernels.SmallMPEG2EncConfig()),
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
	})
}

func TestSimMemoization(t *testing.T) {
	r := smallRunner()
	calls := 0
	r.Progress = func(SimKey) { calls++ }
	a := r.MOMIdeal("gsmencode")
	b := r.MOMIdeal("gsmencode")
	if a != b {
		t.Error("identical keys must return the memoized result")
	}
	if calls != 1 {
		t.Errorf("progress calls = %d, want 1", calls)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := smallRunner()
	f := Figure3(r)
	if len(f.Series) != 2 || len(f.Series[0].Values) != 5 {
		t.Fatalf("figure shape: %d series", len(f.Series))
	}
	for _, s := range f.Series {
		for i, v := range s.Values {
			if v < 0.99 {
				t.Errorf("%s/%s: slowdown %.3f < 1 (realistic memory beat ideal)",
					s.Name, f.Benchmarks[i], v)
			}
		}
	}
	if !strings.Contains(f.Render(), "Figure 3") {
		t.Error("render must carry the figure id")
	}
}

func TestFigure6Shape(t *testing.T) {
	r := smallRunner()
	f := Figure6(r)
	// Multi-banked delivers exactly one word per access by construction.
	for _, v := range f.Series[0].Values {
		if v != 1 {
			t.Errorf("multi-banked effective bandwidth = %v, want 1", v)
		}
	}
	// 3D must match or beat the plain vector cache everywhere.
	for i := range f.Benchmarks {
		if f.Series[2].Values[i]+1e-9 < f.Series[1].Values[i] {
			t.Errorf("%s: 3D bandwidth %.2f below vector cache %.2f",
				f.Benchmarks[i], f.Series[2].Values[i], f.Series[1].Values[i])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	r := smallRunner()
	f := Figure7(r)
	vals := f.Series[0].Values
	for i, bench := range f.Benchmarks {
		switch bench {
		case "jpegdecode":
			if vals[i] != 0 {
				t.Errorf("jpegdecode traffic reduction = %.1f%%, want 0", vals[i])
			}
		case "mpeg2encode", "gsmencode":
			if vals[i] <= 20 {
				t.Errorf("%s: traffic reduction %.1f%%, want the overlap benchmarks well above 20%%",
					bench, vals[i])
			}
		}
		if vals[i] < -1 || vals[i] > 100 {
			t.Errorf("%s: reduction %.1f%% out of range", bench, vals[i])
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	r := smallRunner()
	f := Figure9(r)
	if len(f.Series) != 5 {
		t.Fatal("figure 9 has five configurations")
	}
	idx := map[string]int{}
	for i, b := range f.Benchmarks {
		idx[b] = i
	}
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Values
	}
	// The paper's central claims, as orderings:
	// (1) 3D solves mpeg2encode's memory problem.
	me := idx["mpeg2encode"]
	if series["MOM+3D vcache"][me] >= series["MOM vector cache"][me] {
		t.Error("3D must improve mpeg2encode over the plain vector cache")
	}
	// (2) jpegdecode gains nothing from 3D.
	jd := idx["jpegdecode"]
	if series["MOM+3D vcache"][jd] != series["MOM vector cache"][jd] {
		t.Error("jpegdecode must be unaffected by 3D")
	}
	// (3) On average, 3D beats both realistic MOM memories.
	if mean(series["MOM+3D vcache"]) >= mean(series["MOM vector cache"]) {
		t.Error("3D must beat the vector cache on average")
	}
}

func TestFigure10Shape(t *testing.T) {
	r := smallRunner()
	f := Figure10(r)
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Values
	}
	// Execution time must not decrease with L2 latency.
	for i := range f.Benchmarks {
		if series["MOM @60"][i] < series["MOM @40"][i] || series["MOM @40"][i] < series["MOM @20"][i] {
			t.Errorf("%s: MOM times not monotone in latency", f.Benchmarks[i])
		}
	}
	// The latency-robustness claim on the flagship benchmark: at 60
	// cycles of L2 latency, the 3D build remains faster in absolute
	// terms (both series share the MOM@20 normalization).
	for i, b := range f.Benchmarks {
		if b != "mpeg2encode" {
			continue
		}
		if series["MOM+3D @60"][i] >= series["MOM @60"][i] {
			t.Errorf("mpeg2encode @60: 3D time %.2f not below MOM %.2f",
				series["MOM+3D @60"][i], series["MOM @60"][i])
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	r := smallRunner()
	f := Figure11(r)
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Values
	}
	for i, bench := range f.Benchmarks {
		if series["MOM multi-banked"][i] <= 0 {
			t.Errorf("%s: zero power", bench)
		}
		// The 3D RF share must be a small fraction of its total.
		if series["(3D RF share)"][i] > 0.25*series["MOM+3D vcache"][i] {
			t.Errorf("%s: 3D RF power share too large", bench)
		}
	}
	// Average: vector cache below multi-banked; 3D below vector cache.
	if mean(series["MOM vector cache"]) >= mean(series["MOM multi-banked"]) {
		t.Error("vector cache must consume less than multi-banked on average")
	}
	if mean(series["MOM+3D vcache"]) >= mean(series["MOM vector cache"]) {
		t.Error("3D must consume less than the vector cache on average")
	}
}

func TestTable1Shape(t *testing.T) {
	r := smallRunner()
	rows := Table1(r)
	if len(rows) != 5 {
		t.Fatal("five benchmarks")
	}
	for _, row := range rows {
		if row.MOMDim1 < 1 || row.MOMDim1 > 8 || row.MOMDim2 < 1 || row.MOMDim2 > 16 {
			t.Errorf("%s: implausible dims %+v", row.Bench, row)
		}
		if row.Bench == "jpegdecode" && row.Has3D {
			t.Error("jpegdecode must have no third dimension")
		}
		if row.Bench == "gsmencode" && (!row.Has3D || row.D3Dim3 < 2) {
			t.Errorf("gsmencode: third dimension %.1f, want the deepest reuse", row.D3Dim3)
		}
	}
	if !strings.Contains(RenderTable1(rows), "gsmencode") {
		t.Error("render must list benchmarks")
	}
}

func TestTable2And3Render(t *testing.T) {
	t2 := Table2()
	for _, want := range []string{"fetch rate", "graduation window", "1x4", "n/a"} {
		if !strings.Contains(t2, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
	t3 := Table3()
	for _, want := range []string{"2654208", "1966080", "4646464", "1.50"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	r := smallRunner()
	rows := Table4(r)
	var sumVC, sum3D uint64
	for _, row := range rows {
		if row.MultiBanked < row.VectorCache {
			t.Errorf("%s: multi-banked activity (%d) below vector cache (%d)",
				row.Bench, row.MultiBanked, row.VectorCache)
		}
		if row.VC3D > row.VectorCache {
			t.Errorf("%s: 3D activity (%d) above vector cache (%d)",
				row.Bench, row.VC3D, row.VectorCache)
		}
		sumVC += row.VectorCache
		sum3D += row.VC3D
	}
	if sum3D >= sumVC {
		t.Error("3D must reduce total L2 activity")
	}
	if !strings.Contains(RenderTable4(rows), "Table 4") {
		t.Error("render header missing")
	}
}

func TestHeadline(t *testing.T) {
	r := smallRunner()
	h := ComputeHeadline(r)
	if h.AvgSpeedupPct <= 0 {
		t.Errorf("3D average speedup %.1f%%, must be positive", h.AvgSpeedupPct)
	}
	if h.AvgL2PowerSavePct <= 0 {
		t.Errorf("L2 power saving %.1f%%, must be positive", h.AvgL2PowerSavePct)
	}
	if h.AreaOverheadPct < 45 || h.AreaOverheadPct > 55 {
		t.Errorf("area overhead %.1f%%, want ~50%%", h.AreaOverheadPct)
	}
	if !strings.Contains(h.Render(), "speedup") {
		t.Error("headline render")
	}
}
