// Package experiments regenerates every table and figure of the paper's
// evaluation (§3.1, §5.2, §6): it generates benchmark traces, drives the
// cycle simulator across the ISA and memory-system configurations, and
// renders the same rows and series the paper reports.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// SimKey identifies one simulation configuration. DRAM is the
// main-memory backend spec ("" for the seed's flat latency, "fixed",
// or "sdram/<mapping>/<scheduler>").
type SimKey struct {
	Bench   string
	Variant kernels.Variant
	Mem     core.MemKind
	L2Lat   int64
	DRAM    string
}

// SimResult is the outcome of one simulation, with the memory-system
// counters copied out.
type SimResult struct {
	Key      SimKey
	Core     *core.Stats
	VM       vmem.Stats
	ScalarL2 uint64
	Activity uint64 // total L2 accesses (Table 4)
	Trace    *trace.Stats
	DRAM     dram.Stats         // zero-valued under the flat model
	MSHR     vmem.MSHRStats     // zero-valued under the blocking model
	PF       vmem.PrefetchStats // zero-valued with the prefetcher off

	// Snap is the stats-registry snapshot of the run: every registered
	// counter, gauge and histogram under the unified naming scheme
	// (core.*, cache.*, vmem.*, dram.*). The struct copies above remain
	// for the figure builders; exporters should prefer the snapshot.
	Snap stats.Snapshot

	// HostNs is the wall-clock cost of the simulation loop alone (trace
	// generation and stat collection excluded). It is NOT part of Snap:
	// the golden-matrix snapshots must stay byte-stable across hosts.
	HostNs int64
}

// Cycles is shorthand for the simulated execution time.
func (r *SimResult) Cycles() int64 { return r.Core.Cycles }

// Runner generates traces and runs simulations, memoizing results so the
// figures can share configurations. Traces are cached per benchmark and
// dropped when the runner moves on, bounding memory.
type Runner struct {
	benches map[string]kernels.Benchmark
	order   []string

	results map[SimKey]*SimResult

	traceBench string
	traces     map[kernels.Variant]*tracePair

	// Progress, if non-nil, is called before each new simulation.
	Progress func(key SimKey)

	// DRAMSpec is the main-memory backend every Sim call uses unless a
	// caller overrides it with SimDRAM: "" (the seed's flat latency),
	// "fixed", or "sdram/<mapping>/<scheduler>".
	DRAMSpec string

	// Engine selects the simulation engine for every run: the per-cycle
	// oracle (the zero value) or the event-wheel engine. Results are
	// bit-identical either way; only HostNs changes.
	Engine engine.Mode

	// Workers caps the goroutines the sweep prewarmers fan cells across;
	// 0 or 1 keeps every sweep serial.
	Workers int

	tenantResults map[string]*TenantResult
}

type tracePair struct {
	tr *trace.Trace
	st *trace.Stats
}

// NewRunner builds a runner over the default benchmark suite.
func NewRunner() *Runner {
	r := &Runner{
		benches: map[string]kernels.Benchmark{},
		results: map[SimKey]*SimResult{},
	}
	for _, bm := range kernels.All() {
		r.benches[bm.Name] = bm
		r.order = append(r.order, bm.Name)
	}
	return r
}

// NewRunnerWith builds a runner over a custom suite (tests use scaled-down
// benchmarks).
func NewRunnerWith(bms []kernels.Benchmark) *Runner {
	r := &Runner{
		benches: map[string]kernels.Benchmark{},
		results: map[SimKey]*SimResult{},
	}
	for _, bm := range bms {
		r.benches[bm.Name] = bm
		r.order = append(r.order, bm.Name)
	}
	return r
}

// Benchmarks lists the suite in presentation order.
func (r *Runner) Benchmarks() []string { return r.order }

func (r *Runner) traceFor(bench string, v kernels.Variant) *tracePair {
	if r.traceBench != bench {
		r.traces = map[kernels.Variant]*tracePair{}
		r.traceBench = bench
	}
	if tp, ok := r.traces[v]; ok {
		return tp
	}
	bm, ok := r.benches[bench]
	if !ok {
		// Workloads outside the paper's five-benchmark presentation
		// order (the MSHR sweep's motionsearch stream) resolve from the
		// extended registry on demand without joining Benchmarks().
		if bm, ok = kernels.ByName(bench); !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", bench))
		}
		r.benches[bench] = bm
	}
	tr := &trace.Trace{}
	st := trace.NewStats()
	bm.Run(v, trace.Multi{tr, st})
	tp := &tracePair{tr: tr, st: st}
	r.traces[v] = tp
	return tp
}

// coreConfigFor maps an ISA variant to its processor configuration.
func coreConfigFor(v kernels.Variant) core.Config {
	if v == kernels.MMX {
		return core.MMXCore()
	}
	return core.MOMCore()
}

// Sim runs (or recalls) one simulation over the runner's default DRAM
// backend.
func (r *Runner) Sim(bench string, v kernels.Variant, mem core.MemKind, l2lat int64) *SimResult {
	return r.SimDRAM(bench, v, mem, l2lat, r.DRAMSpec)
}

// flatMemLatency is the seed's main-memory latency beyond L2. The
// "fixed" spec and the nil-backend Timing must use the same value or
// `-dram fixed` stops being bit-identical to the seed model.
const flatMemLatency = 100

// buildBackend constructs a fresh backend from a spec string; each
// simulation needs its own because backends are stateful. The returned
// knobs carry the vmem-level mshr<n> setting the backend itself does
// not consume.
func buildBackend(spec string) (dram.Backend, dram.Knobs, error) {
	if spec == "" {
		return nil, dram.Knobs{}, nil
	}
	return dram.ParseSpecFull(spec, flatMemLatency)
}

// SimDRAM runs (or recalls) one simulation over an explicit DRAM
// backend spec.
func (r *Runner) SimDRAM(bench string, v kernels.Variant, mem core.MemKind, l2lat int64, spec string) *SimResult {
	key := SimKey{Bench: bench, Variant: v, Mem: mem, L2Lat: l2lat, DRAM: spec}
	if res, ok := r.results[key]; ok {
		return res
	}
	if r.Progress != nil {
		r.Progress(key)
	}
	backend, knobs, err := buildBackend(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	tp := r.traceFor(bench, v)
	cfg := coreConfigFor(v)
	tim := vmem.Timing{L2Latency: l2lat, MemLatency: flatMemLatency, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	if knobs.VA != "" {
		vmsys, err := core.NewVM(knobs.VA, 1, backend)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		tim.VA = vmsys.Space(0)
	}
	// In the MMX configuration the "multi-banked" realistic memory banks
	// the L1 data cache ports (there is no vector subsystem to bank).
	bankL1 := v == kernels.MMX && mem != core.MemIdeal
	ms := core.NewMemSystem(mem, tim, cfg.Lanes, bankL1)
	start := time.Now()
	st := core.SimulateMode(cfg, ms, tp.tr.Insts, r.Engine)
	hostNs := time.Since(start).Nanoseconds()
	res := &SimResult{
		Key:      key,
		Core:     st,
		VM:       *ms.VM.Stats(),
		ScalarL2: ms.ScalarL2Accesses,
		Activity: ms.L2Activity(),
		Trace:    tp.st,
	}
	if backend != nil {
		// Drain any posted writes so the copied statistics account for
		// all traffic the run generated.
		if sd, ok := backend.(*dram.SDRAM); ok {
			sd.Flush()
		}
		res.DRAM = *backend.Stats()
	}
	if f := ms.MSHR(); f != nil {
		res.MSHR = *f.Stats()
		res.PF = f.PrefetchStats()
	}
	reg := stats.NewRegistry()
	st.Register(reg)
	ms.Register(reg)
	res.Snap = reg.Snapshot()
	res.HostNs = hostNs
	r.results[key] = res
	return res
}

// HostPerf sums the simulation wall clock and simulated cycles across
// every memoized run — single-requestor and multi-tenant — for the
// front end's host-performance summary line. Multi-tenant runs count
// the slowest tenant's cycles: the group runs in lockstep, so that is
// the simulated time the host paid for.
func (r *Runner) HostPerf() (ns, cycles int64) {
	for _, res := range r.results {
		ns += res.HostNs
		cycles += res.Core.Cycles
	}
	for _, res := range r.tenantResults {
		ns += res.HostNs
		var maxCyc int64
		for _, c := range res.Cycles {
			maxCyc = max(maxCyc, c)
		}
		cycles += maxCyc
	}
	return ns, cycles
}

// Convenience configuration accessors used by the figures.

const baseLat = 20

// Shorthand aliases used by the figure builders.
var (
	momVariant   = kernels.MOM
	mom3DVariant = kernels.MOM3D
	momVCKind    = core.MemVectorCache
	mom3DVCKind  = core.MemVectorCache3D
)

// MOMIdeal is the normalization baseline of Figs 3 and 9.
func (r *Runner) MOMIdeal(bench string) *SimResult {
	return r.Sim(bench, kernels.MOM, core.MemIdeal, baseLat)
}

// MOMMultiBanked is the MOM processor over the 4-port, 8-bank cache.
func (r *Runner) MOMMultiBanked(bench string) *SimResult {
	return r.Sim(bench, kernels.MOM, core.MemMultiBanked, baseLat)
}

// MOMVectorCache is the MOM processor over the vector cache.
func (r *Runner) MOMVectorCache(bench string) *SimResult {
	return r.Sim(bench, kernels.MOM, core.MemVectorCache, baseLat)
}

// MOM3DVectorCache is the 3D-extended processor over the vector cache
// with the 3D register file datapath.
func (r *Runner) MOM3DVectorCache(bench string) *SimResult {
	return r.Sim(bench, kernels.MOM3D, core.MemVectorCache3D, baseLat)
}

// MMXIdeal is the MMX-like processor with idealistic memory.
func (r *Runner) MMXIdeal(bench string) *SimResult {
	return r.Sim(bench, kernels.MMX, core.MemIdeal, baseLat)
}

// MMXMultiBanked is the MMX-like processor with banked L1 ports.
func (r *Runner) MMXMultiBanked(bench string) *SimResult {
	return r.Sim(bench, kernels.MMX, core.MemMultiBanked, baseLat)
}
