package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
)

// DRAMMappings lists the SDRAM address-mapping schemes the sweep
// compares, in presentation order.
var DRAMMappings = []string{"line", "bank", "row"}

// DRAMSweepRow summarizes one benchmark under the fixed backend and the
// SDRAM backend in every mapping scheme (FR-FCFS), plus the FCFS
// scheduler under the default line mapping.
type DRAMSweepRow struct {
	Bench       string
	FixedCycles int64

	Cycles  []int64   // per DRAMMappings entry, FR-FCFS
	RowHit  []float64 // per DRAMMappings entry
	BLP     []float64 // per DRAMMappings entry
	BW      []float64 // per DRAMMappings entry, bytes/cycle
	FCFSCyc int64     // line mapping, FCFS
}

// DRAMSweep runs the fixed-vs-SDRAM comparison across the runner's
// suite on the paper's best configuration (MOM+3D over the vector
// cache with the 3D register file).
func DRAMSweep(r *Runner) []DRAMSweepRow {
	var rows []DRAMSweepRow
	for _, bench := range r.Benchmarks() {
		row := DRAMSweepRow{Bench: bench}
		row.FixedCycles = r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "").Cycles()
		for _, m := range DRAMMappings {
			res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "sdram/"+m+"/frfcfs")
			row.Cycles = append(row.Cycles, res.Cycles())
			row.RowHit = append(row.RowHit, res.DRAM.RowHitRate())
			row.BLP = append(row.BLP, res.DRAM.BankLevelParallelism())
			row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
		}
		row.FCFSCyc = r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "sdram/line/fcfs").Cycles()
		rows = append(rows, row)
	}
	return rows
}

// RenderDRAMSweep formats the sweep as a fixed-width text table.
func RenderDRAMSweep(rows []DRAMSweepRow) string {
	var b strings.Builder
	b.WriteString("DRAM sweep — fixed 100-cycle latency vs banked SDRAM (MOM+3D, vector cache + 3D)\n")
	fmt.Fprintf(&b, "%-14s %10s", "benchmark", "fixed cyc")
	for _, m := range DRAMMappings {
		fmt.Fprintf(&b, " %10s %8s", m+" cyc", "rowhit")
	}
	fmt.Fprintf(&b, " %10s\n", "fcfs cyc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d", r.Bench, r.FixedCycles)
		for i := range DRAMMappings {
			fmt.Fprintf(&b, " %10d %8.3f", r.Cycles[i], r.RowHit[i])
		}
		fmt.Fprintf(&b, " %10d\n", r.FCFSCyc)
	}
	b.WriteString("note: sdram columns use FR-FCFS; fcfs column uses the line mapping.\n")
	b.WriteString("achieved bandwidth (bytes/cycle) and bank-level parallelism per mapping:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s", r.Bench)
		for i, m := range DRAMMappings {
			fmt.Fprintf(&b, "  %s %.2f B/c blp %.2f", m, r.BW[i], r.BLP[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
