package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/kernels"
)

// DRAMMappings lists the SDRAM address-mapping schemes the sweep
// compares, in presentation order.
var DRAMMappings = []string{"line", "bank", "row"}

// DRAMSweepRow summarizes one benchmark under the fixed backend and the
// SDRAM backend in every mapping scheme (FR-FCFS), plus the FCFS
// scheduler under the default line mapping.
type DRAMSweepRow struct {
	Bench       string
	FixedCycles int64

	Cycles  []int64   // per DRAMMappings entry, FR-FCFS
	RowHit  []float64 // per DRAMMappings entry
	BLP     []float64 // per DRAMMappings entry
	BW      []float64 // per DRAMMappings entry, bytes/cycle
	FCFSCyc int64     // line mapping, FCFS
}

// DRAMSweep runs the fixed-vs-SDRAM comparison across the runner's
// suite on the paper's best configuration (MOM+3D over the vector
// cache with the 3D register file).
func DRAMSweep(r *Runner) []DRAMSweepRow {
	var rows []DRAMSweepRow
	for _, bench := range r.Benchmarks() {
		row := DRAMSweepRow{Bench: bench}
		row.FixedCycles = r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "").Cycles()
		for _, m := range DRAMMappings {
			res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "sdram/"+m+"/frfcfs")
			row.Cycles = append(row.Cycles, res.Cycles())
			row.RowHit = append(row.RowHit, res.DRAM.RowHitRate())
			row.BLP = append(row.BLP, res.DRAM.BankLevelParallelism())
			row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
		}
		row.FCFSCyc = r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, "sdram/line/fcfs").Cycles()
		rows = append(rows, row)
	}
	return rows
}

// DRAMChannels lists the channel counts the scaling sweep crosses.
var DRAMChannels = []int{1, 2, 4, 8}

// ChannelScalingRow summarizes one benchmark across channel counts
// under the line-interleaved mapping (the one that spreads a stream
// over every channel) with FR-FCFS.
type ChannelScalingRow struct {
	Bench   string
	Cycles  []int64   // per DRAMChannels entry
	BW      []float64 // achieved bytes/cycle per DRAMChannels entry
	BusUtil []float64 // bus utilization (sums over channels)
}

// DRAMChannelScaling runs the channel-count sweep the batched
// transaction API unlocks: an instruction's misses fan out across
// per-channel controller shards, so bandwidth should scale with the
// channel count on streaming kernels.
func DRAMChannelScaling(r *Runner) []ChannelScalingRow {
	var rows []ChannelScalingRow
	for _, bench := range r.Benchmarks() {
		row := ChannelScalingRow{Bench: bench}
		for _, ch := range DRAMChannels {
			// The default channel count uses the knob-free spec so the
			// result is shared with DRAMSweep's memoized simulations.
			spec := "sdram/line/frfcfs"
			if ch != dram.DefaultConfig().Channels {
				spec = fmt.Sprintf("sdram/line/frfcfs/%dch", ch)
			}
			res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, spec)
			row.Cycles = append(row.Cycles, res.Cycles())
			row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
			row.BusUtil = append(row.BusUtil, res.DRAM.BusUtilization())
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderChannelScaling formats the channel sweep as a fixed-width text
// table.
func RenderChannelScaling(rows []ChannelScalingRow) string {
	var b strings.Builder
	b.WriteString("DRAM channel scaling — sdram/line/frfcfs, batched misses fanned out per channel\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, ch := range DRAMChannels {
		fmt.Fprintf(&b, " %9dch %8s %6s", ch, "B/cyc", "util")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Bench)
		for i := range DRAMChannels {
			fmt.Fprintf(&b, " %11d %8.2f %6.2f", r.Cycles[i], r.BW[i], r.BusUtil[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("note: B/cyc is achieved DRAM bandwidth over the active window; util\n")
	b.WriteString("is data-bus busy time summed over channels (an n-channel part tops out at n).\n")
	return b.String()
}

// RenderDRAMSweep formats the sweep as a fixed-width text table.
func RenderDRAMSweep(rows []DRAMSweepRow) string {
	var b strings.Builder
	b.WriteString("DRAM sweep — fixed 100-cycle latency vs banked SDRAM (MOM+3D, vector cache + 3D)\n")
	fmt.Fprintf(&b, "%-14s %10s", "benchmark", "fixed cyc")
	for _, m := range DRAMMappings {
		fmt.Fprintf(&b, " %10s %8s", m+" cyc", "rowhit")
	}
	fmt.Fprintf(&b, " %10s\n", "fcfs cyc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d", r.Bench, r.FixedCycles)
		for i := range DRAMMappings {
			fmt.Fprintf(&b, " %10d %8.3f", r.Cycles[i], r.RowHit[i])
		}
		fmt.Fprintf(&b, " %10d\n", r.FCFSCyc)
	}
	b.WriteString("note: sdram columns use FR-FCFS; fcfs column uses the line mapping.\n")
	b.WriteString("achieved bandwidth (bytes/cycle) and bank-level parallelism per mapping:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s", r.Bench)
		for i, m := range DRAMMappings {
			fmt.Fprintf(&b, "  %s %.2f B/c blp %.2f", m, r.BW[i], r.BLP[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
