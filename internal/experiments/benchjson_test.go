package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// goldenTablePath reaches the pinned table internal/core regenerates
// with -update-golden; the benchmark report must agree with it row for
// row, which is what makes BENCH_PR6.json trustworthy as a published
// artifact.
const goldenTablePath = "../core/testdata/golden_stats.txt"

type goldenCounts struct {
	Cycles    int64
	Committed uint64
	VMMisses  uint64
	DRAMReqs  uint64
}

func loadGoldenTable(t *testing.T) map[string]goldenCounts {
	t.Helper()
	fh, err := os.Open(goldenTablePath)
	if err != nil {
		t.Fatalf("golden table: %v", err)
	}
	defer fh.Close()
	out := map[string]goldenCounts{}
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var g goldenCounts
		if _, err := fmt.Sscanf(line, "%s cycles=%d committed=%d vmisses=%d dramreqs=%d",
			&key, &g.Cycles, &g.Committed, &g.VMMisses, &g.DRAMReqs); err != nil {
			t.Fatalf("golden table line %q: %v", line, err)
		}
		out[key] = g
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// benchReportKeys is the pinned key set every configuration snapshot
// must expose — the contract CI checks on the emitted BENCH_PR6.json.
var benchReportKeys = struct {
	counters []string
	gauges   []string
}{
	counters: []string{"core.committed", "vmem.misses", "vmem.accesses", "dram.accesses"},
	gauges:   []string{"core.cycles"},
}

// TestBenchReportMatchesGolden is the acceptance net for the exported
// benchmark report: every golden-table row must appear in the report,
// and the registry-snapshot counters must reproduce the pinned counts
// bit for bit.
func TestBenchReportMatchesGolden(t *testing.T) {
	rep := ComputeBenchReport(nil)
	want := loadGoldenTable(t)
	if len(rep.Configs) != len(want) {
		t.Errorf("report has %d configurations, golden table has %d rows", len(rep.Configs), len(want))
	}
	for key, g := range want {
		snap, ok := rep.Configs[key]
		if !ok {
			t.Errorf("%s: missing from the report", key)
			continue
		}
		if got := snap.Gauge("core.cycles"); got != g.Cycles {
			t.Errorf("%s: cycles = %d, golden %d", key, got, g.Cycles)
		}
		if got := snap.Counter("core.committed"); got != g.Committed {
			t.Errorf("%s: committed = %d, golden %d", key, got, g.Committed)
		}
		if got := snap.Counter("vmem.misses"); got != g.VMMisses {
			t.Errorf("%s: vmem.misses = %d, golden %d", key, got, g.VMMisses)
		}
		if got := snap.Counter("dram.accesses"); got != g.DRAMReqs {
			t.Errorf("%s: dram.accesses = %d, golden %d", key, got, g.DRAMReqs)
		}
		for _, name := range benchReportKeys.counters {
			if _, ok := snap.Counters[name]; !ok {
				t.Errorf("%s: snapshot lacks pinned counter %q", key, name)
			}
		}
		for _, name := range benchReportKeys.gauges {
			if _, ok := snap.Gauges[name]; !ok {
				t.Errorf("%s: snapshot lacks pinned gauge %q", key, name)
			}
		}
	}
	// The mshr8 configurations must additionally carry the latency
	// histograms the observability layer adds.
	for key, snap := range rep.Configs {
		if !strings.HasSuffix(key, "/mshr8") {
			continue
		}
		for _, h := range []string{"dram.read_wait", "dram.read_service", "vmem.mshr.fill"} {
			if _, ok := snap.Hists[h]; !ok {
				t.Errorf("%s: snapshot lacks histogram %q", key, h)
			}
		}
	}
}

// TestBenchReportJSONRoundTrips pins the document shape: valid JSON,
// deterministic bytes, and the suite/configs envelope a consumer joins
// against the golden table.
func TestBenchReportJSONRoundTrips(t *testing.T) {
	rep := ComputeBenchReport(nil)
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteJSON is not deterministic")
	}
	var back struct {
		Suite   string `json:"suite"`
		Configs map[string]struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"configs"`
	}
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Suite != "golden-small" || len(back.Configs) != len(rep.Configs) {
		t.Errorf("round trip lost the envelope: suite %q, %d configs", back.Suite, len(back.Configs))
	}
}
