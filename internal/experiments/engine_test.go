package experiments

import (
	"testing"

	"repro/internal/engine"
)

// The sweeps must render byte-identically no matter which engine runs
// them and no matter how many workers shard their cells: the wheel is
// bit-identical to the step oracle per run, each cell is a pure
// function of its key, and the prewarmers install results into the
// same memo the serial loop reads.

func TestIFSweepWheelMatchesStep(t *testing.T) {
	step := mshrRunner()
	wheel := mshrRunner()
	wheel.Engine = engine.Wheel
	want := RenderIFSweep(IFSweep(step))
	got := RenderIFSweep(IFSweep(wheel))
	if got != want {
		t.Fatalf("ifsweep diverged between engines\nstep:\n%s\nwheel:\n%s", want, got)
	}
}

func TestMSHRSweepParallelMatchesSerial(t *testing.T) {
	serial := mshrRunner()
	par := mshrRunner()
	par.Engine = engine.Wheel
	par.Workers = 4
	want := RenderMSHRSweep(MSHRSweep(serial))
	got := RenderMSHRSweep(MSHRSweep(par))
	if got != want {
		t.Fatalf("mshrsweep diverged under -j 4 wheel\nserial step:\n%s\nparallel wheel:\n%s", want, got)
	}
}

func TestIFSweepParallelMatchesSerial(t *testing.T) {
	serial := mshrRunner()
	par := mshrRunner()
	par.Workers = 4
	want := RenderIFSweep(IFSweep(serial))
	got := RenderIFSweep(IFSweep(par))
	if got != want {
		t.Fatalf("ifsweep diverged under -j 4\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestPFSweepParallelMatchesSerial(t *testing.T) {
	serial := mshrRunner()
	par := mshrRunner()
	par.Engine = engine.Wheel
	par.Workers = 4
	want := RenderPFSweep(PFSweep(serial))
	got := RenderPFSweep(PFSweep(par))
	if got != want {
		t.Fatalf("pfsweep diverged under -j 4 wheel\nserial step:\n%s\nparallel wheel:\n%s", want, got)
	}
}

// TestEngineBenchSmallShape holds the report generator's shape on a
// 1-rep run: one row per motionsearch ISA variant plus the golden
// aggregate, every row with identical cycles under both engines (the
// generator panics on divergence) and positive timings.
func TestEngineBenchSmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full-size motionsearch rows twice per engine")
	}
	rep := EngineBench(1, nil)
	if len(rep.Rows) != len(benchVariants)+1 {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(benchVariants)+1)
	}
	for _, row := range rep.Rows {
		if row.Cycles <= 0 || row.StepNs <= 0 || row.WheelNs <= 0 {
			t.Errorf("%s: non-positive measurement %+v", row.Config, row)
		}
		if row.Speedup <= 0 {
			t.Errorf("%s: speedup %f", row.Config, row.Speedup)
		}
	}
}
