package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/tenant"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// IFMixes are the tenant mixes the interference sweep runs: the
// symmetric four-way motionsearch storm (the bandwidth-saturation
// case), the latency-vs-streaming pairing of the issue — gsmencode's
// sparse row-friendly stream sharing the part with motionsearch's
// conflict-heavy one — and the four-way version of the same pairing
// where three streaming tenants crowd the sparse one.
var IFMixes = [][]string{
	{"motionsearch", "motionsearch", "motionsearch", "motionsearch"},
	{"motionsearch", "gsmencode"},
	{"motionsearch", "motionsearch", "motionsearch", "gsmencode"},
}

// ifBaseSpec is the shared-backend configuration the sweep contends
// on: the banked commodity-DDR part under demand FR-FCFS. The
// blocking pipeline keeps each tenant's in-flight demand small, so
// the interference measured is the controller's, not the MSHR file's.
const ifBaseSpec = "sdram/line/frfcfs"

// ifSpec composes the multi-tenant backend spec for one mix size.
func ifSpec(tenants int, qos bool) string {
	s := fmt.Sprintf("%s/tn%d", ifBaseSpec, tenants)
	if qos {
		s += "/qos"
	}
	return s
}

// TenantResult is the outcome of one multi-tenant simulation.
type TenantResult struct {
	Mix    []string // tenant i ran Mix[i]
	Cycles []int64  // tenant i's execution time
	Shards []dram.TenantStats
	DRAM   dram.Stats
	HostNs int64 // wall clock of the lockstep run alone
}

// SimTenants runs one multi-tenant simulation: mix[i] is tenant i's
// benchmark, all on the MOM+3D vector-cache configuration, through the
// shared backend the spec describes (which must carry a tn<len(mix)>
// token so the controller shards its stats and, with /qos, schedules
// per tenant).
func (r *Runner) SimTenants(mix []string, l2lat int64, spec string) *TenantResult {
	key := tenantKey(mix, l2lat, spec)
	if res, ok := r.tenantResults[key]; ok {
		return res
	}
	if r.Progress != nil {
		r.Progress(SimKey{Bench: strings.Join(mix, "+"), Variant: mom3DVariant,
			Mem: mom3DVCKind, L2Lat: l2lat, DRAM: spec})
	}
	backend, knobs, err := buildBackend(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	if knobs.Tenants != len(mix) {
		panic(fmt.Sprintf("experiments: spec %q carries tn%d for a %d-tenant mix", spec, knobs.Tenants, len(mix)))
	}
	// Collect every tenant's trace first: traceFor caches one benchmark
	// at a time, but the returned instruction slices stay valid.
	traces := make([][]isa.Inst, len(mix))
	for i, bench := range mix {
		traces[i] = r.traceFor(bench, mom3DVariant).tr.Insts
	}
	cfg := coreConfigFor(mom3DVariant)
	tim := vmem.Timing{L2Latency: l2lat, MemLatency: flatMemLatency, Backend: backend,
		MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
	var vmsys *vm.VM
	if knobs.VA != "" {
		if vmsys, err = core.NewVM(knobs.VA, len(mix), backend); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	}
	g := tenant.New(tenant.Options{Core: cfg, Kind: mom3DVCKind, Tim: tim,
		Lanes: cfg.Lanes, Traces: traces, Engine: r.Engine, VM: vmsys})
	start := time.Now()
	g.Run()
	res := &TenantResult{Mix: mix, Cycles: make([]int64, g.N()),
		HostNs: time.Since(start).Nanoseconds()}
	for i := 0; i < g.N(); i++ {
		res.Cycles[i] = g.Stats(i).Cycles
		if ts := g.TenantStatsOf(i); ts != nil {
			res.Shards = append(res.Shards, *ts)
		}
	}
	if sd, ok := backend.(*dram.SDRAM); ok {
		sd.Flush()
	}
	res.DRAM = *backend.Stats()
	if r.tenantResults == nil {
		r.tenantResults = map[string]*TenantResult{}
	}
	r.tenantResults[key] = res
	return res
}

// tenantKey memoizes multi-tenant runs the way SimKey memoizes
// single-requestor ones; "+" cannot appear in a benchmark name or spec.
func tenantKey(mix []string, l2lat int64, spec string) string {
	return fmt.Sprintf("%s|%d|%s", strings.Join(mix, "+"), l2lat, spec)
}

// IFSweepRow compares one tenant mix with and without QoS scheduling
// against each tenant's solo run on the same backend configuration.
type IFSweepRow struct {
	Mix   []string
	Solo  []int64 // tenant i's cycles alone on a private part
	Base  *TenantResult
	QoS   *TenantResult
	Defer uint64 // scheduling turns yielded under QoS
}

// Slowdowns is cycles-under-contention over cycles-solo per tenant.
func slowdowns(contended, solo []int64) []float64 {
	out := make([]float64, len(contended))
	for i := range contended {
		out[i] = float64(contended[i]) / float64(solo[i])
	}
	return out
}

// maxOf returns the largest slowdown — the worst tenant's experience,
// the figure QoS exists to bound.
func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// jain is Jain's fairness index over per-tenant slowdowns: 1 when every
// tenant suffers equally, approaching 1/n as one tenant absorbs all the
// interference.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// IFSweep runs the interference sweep: every mix solo, shared without
// QoS, and shared with QoS on the same banked backend. The experiment
// behind the multi-tenant subsystem: the shared part must slow every
// tenant (no free lunch), and QoS must pull the worst tenant's
// slowdown below the plain FR-FCFS baseline — by yielding over-share
// scheduling turns and picking ready banks first — without giving the
// bandwidth back.
func IFSweep(r *Runner) []IFSweepRow {
	var solo []SimKey
	var shared []tenantCell
	for _, mix := range IFMixes {
		for _, bench := range mix {
			solo = append(solo, SimKey{Bench: bench, Variant: mom3DVariant,
				Mem: mom3DVCKind, L2Lat: baseLat, DRAM: ifBaseSpec})
		}
		shared = append(shared,
			tenantCell{mix: mix, l2lat: baseLat, spec: ifSpec(len(mix), false)},
			tenantCell{mix: mix, l2lat: baseLat, spec: ifSpec(len(mix), true)})
	}
	r.prewarm(solo)
	r.prewarmTenants(shared)
	var rows []IFSweepRow
	for _, mix := range IFMixes {
		row := IFSweepRow{Mix: mix, Solo: make([]int64, len(mix))}
		for i, bench := range mix {
			row.Solo[i] = r.SimDRAM(bench, mom3DVariant, mom3DVCKind, baseLat, ifBaseSpec).Cycles()
		}
		row.Base = r.SimTenants(mix, baseLat, ifSpec(len(mix), false))
		row.QoS = r.SimTenants(mix, baseLat, ifSpec(len(mix), true))
		row.Defer = row.QoS.DRAM.QoSDeferred
		rows = append(rows, row)
	}
	return rows
}

// mixLabel compresses a tenant mix into "3x motionsearch + gsmencode"
// form, run-length encoding adjacent repeats.
func mixLabel(mix []string) string {
	var parts []string
	for i := 0; i < len(mix); {
		j := i
		for j < len(mix) && mix[j] == mix[i] {
			j++
		}
		if j-i > 1 {
			parts = append(parts, fmt.Sprintf("%dx %s", j-i, mix[i]))
		} else {
			parts = append(parts, mix[i])
		}
		i = j
	}
	return strings.Join(parts, " + ")
}

// RenderIFSweep formats the sweep as a fixed-width text table.
func RenderIFSweep(rows []IFSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interference sweep — tenant mixes on one shared part, FR-FCFS vs QoS credit scheduling (MOM+3D, vector cache + 3D, %s/tn<m>[/qos])\n", ifBaseSpec)
	fmt.Fprintf(&b, "%-38s %-24s %6s %6s %6s %6s\n",
		"mix", "tenant slowdowns vs solo", "max", "jain", "B/cyc", "defer")
	for _, r := range rows {
		for pass, tr := range []*TenantResult{r.Base, r.QoS} {
			name := mixLabel(r.Mix)
			label := name + " (frfcfs)"
			if pass == 1 {
				label = name + " (qos)"
			}
			sl := slowdowns(tr.Cycles, r.Solo)
			var cells []string
			for _, s := range sl {
				cells = append(cells, fmt.Sprintf("%.2f", s))
			}
			def := uint64(0)
			if pass == 1 {
				def = r.Defer
			}
			fmt.Fprintf(&b, "%-38s %-24s %6.3f %6.3f %6.2f %6d\n",
				label, strings.Join(cells, " "), maxOf(sl), jain(sl), tr.DRAM.AchievedBandwidth(), def)
		}
	}
	b.WriteString("slowdown = shared-part cycles / solo cycles on the same backend; max is the worst\n")
	b.WriteString("tenant (the QoS target), jain is Jain's fairness index over the slowdowns, defer\n")
	b.WriteString("counts scheduling turns over-share tenants yielded. QoS must beat the frfcfs max\n")
	b.WriteString("in every mix while holding bandwidth; tenants are address-disjoint, so slowdowns\n")
	b.WriteString("measure pure controller and bus contention.\n")
	return b.String()
}
