package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/vreg"
)

// Table1Row is one benchmark's memory-instruction vector lengths per
// dimension, for MOM and MOM+3D (the paper's Table 1).
type Table1Row struct {
	Bench string
	// MOM build.
	MOMDim1, MOMDim2 float64
	// MOM+3D build.
	D3Dim1, D3Dim2, D3Dim3 float64
	D3Dim3Max              int
	Has3D                  bool
}

// Table1 reproduces "Memory instruction vector length for each of the
// three dimensions".
func Table1(r *Runner) []Table1Row {
	var rows []Table1Row
	for _, bench := range r.Benchmarks() {
		mom := r.MOMVectorCache(bench).Trace
		d3 := r.MOM3DVectorCache(bench).Trace
		row := Table1Row{Bench: bench}
		row.MOMDim1, row.MOMDim2, _, _, _ = mom.Dims()
		row.D3Dim1, row.D3Dim2, row.D3Dim3, row.D3Dim3Max, row.Has3D = d3.Dims()
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — memory instruction vector length per dimension\n")
	fmt.Fprintf(&b, "%-14s %21s %31s\n", "", "MOM (1st/2nd)", "MOM+3D (1st/2nd/3rd (max))")
	for _, r := range rows {
		third := "      —"
		if r.Has3D {
			third = fmt.Sprintf("%.1f (%d)", r.D3Dim3, r.D3Dim3Max)
		}
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %10.1f %10.1f %9s\n",
			r.Bench, r.MOMDim1, r.MOMDim2, r.D3Dim1, r.D3Dim2, third)
	}
	return b.String()
}

// Table2 renders the processor configurations (the paper's Table 2).
func Table2() string {
	mmx, mom := core.MMXCore(), core.MOMCore()
	var b strings.Builder
	b.WriteString("Table 2 — processor configurations\n")
	row := func(name string, a, c any) {
		fmt.Fprintf(&b, "%-24s %12v %12v\n", name, a, c)
	}
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "", "MMX", "MOM")
	row("fetch rate", mmx.FetchWidth, mom.FetchWidth)
	row("graduation window", mmx.Window, mom.Window)
	row("load/store queue", mmx.LSQ, mom.LSQ)
	row("INTEGER issue", mmx.IntIssue, mom.IntIssue)
	row("INTEGER FUs", mmx.IntFUs, mom.IntFUs)
	row("SIMD issue", mmx.SIMDIssue, mom.SIMDIssue)
	row("SIMD FUs", fmt.Sprintf("%d", mmx.SIMDFUs), fmt.Sprintf("%dx%d", mom.SIMDFUs, mom.Lanes))
	row("memory issue", mmx.MemIssue, mom.MemIssue)
	row("L1 memory ports", mmx.L1Ports, mom.L1Ports)
	row("L2 vector ports", "n/a", fmt.Sprintf("1x%d", mom.Lanes))
	return b.String()
}

// Table3 renders the register file configurations and areas (the paper's
// Table 3, reproduced exactly by the vreg area model).
func Table3() string {
	var b strings.Builder
	b.WriteString("Table 3 — multimedia register file configurations (areas in square wire tracks)\n")
	cfgs := []vreg.Config{vreg.MMX(), vreg.MOM(), vreg.MOM3D()}
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%s:\n", c.Name)
		for _, f := range c.Files {
			fmt.Fprintf(&b, "  %-18s %3d/%3d regs x %5d b, %dR/%dW x%d lanes  %12d wt\n",
				f.Name, f.Logical, f.Physical, f.BitsPerReg, f.ReadPorts, f.WritePorts, f.Lanes, f.AreaWT())
		}
		if c.Bus.Buses > 0 {
			fmt.Fprintf(&b, "  %-18s %dx%d bits %38d wt\n", "cache buses", c.Bus.Buses, c.Bus.Bits, c.Bus.AreaWT())
		}
		fmt.Fprintf(&b, "  %-18s %51d wt\n", "total", c.TotalWT())
	}
	norm := vreg.Normalized(cfgs...)
	fmt.Fprintf(&b, "normalized areas: MMX %.2f, MOM %.2f, MOM+3D %.2f\n", norm[0], norm[1], norm[2])
	return b.String()
}

// Table4Row is one benchmark's L2 activity per memory system.
type Table4Row struct {
	Bench                          string
	MultiBanked, VectorCache, VC3D uint64
}

// Table4 reproduces "L2 cache activity (accesses to L2)".
func Table4(r *Runner) []Table4Row {
	var rows []Table4Row
	for _, bench := range r.Benchmarks() {
		rows = append(rows, Table4Row{
			Bench:       bench,
			MultiBanked: r.MOMMultiBanked(bench).Activity,
			VectorCache: r.MOMVectorCache(bench).Activity,
			VC3D:        r.MOM3DVectorCache(bench).Activity,
		})
	}
	return rows
}

// RenderTable4 formats Table 4 (thousands of accesses; the paper reports
// millions over its full-size inputs).
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4 — L2 cache activity (thousands of accesses)\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %18s\n", "benchmark", "multi-banked", "vector cache", "vcache + 3D RF")
	var sumMB, sumVC, sum3D float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14.1f %14.1f %18.1f\n",
			r.Bench, float64(r.MultiBanked)/1e3, float64(r.VectorCache)/1e3, float64(r.VC3D)/1e3)
		sumMB += float64(r.MultiBanked)
		sumVC += float64(r.VectorCache)
		sum3D += float64(r.VC3D)
	}
	if sumMB > 0 && sumVC > 0 {
		fmt.Fprintf(&b, "vector cache vs multi-banked: %.0f%% fewer accesses; +3D RF vs vector cache: %.0f%% fewer\n",
			100*(1-sumVC/sumMB), 100*(1-sum3D/sumVC))
	}
	return b.String()
}

// Headline summarizes the paper's abstract-level claims from the measured
// data: average 3D speedup over the MOM vector cache and L2 power saving.
type Headline struct {
	AvgSpeedupPct     float64 // MOM+3D vs MOM on the vector cache
	AvgL2PowerSavePct float64 // L2 power, MOM+3D vs MOM vector cache
	AreaOverheadPct   float64 // register file area vs MMX
}

// ComputeHeadline derives the abstract's three numbers.
func ComputeHeadline(r *Runner) Headline {
	p := power.DefaultParams()
	var speedups, powerSaves []float64
	for _, bench := range r.Benchmarks() {
		mom := r.MOMVectorCache(bench)
		d3 := r.MOM3DVectorCache(bench)
		speedups = append(speedups, float64(mom.Cycles())/float64(d3.Cycles())-1)
		pm := power.Estimate(p, mom.Cycles(), &mom.VM, mom.ScalarL2, 0).L2Watts
		pd := power.Estimate(p, d3.Cycles(), &d3.VM, d3.ScalarL2, d3.Trace.D3MoveElems).L2Watts
		if pm > 0 {
			powerSaves = append(powerSaves, 1-pd/pm)
		}
	}
	norm := vreg.Normalized(vreg.MOM3D())
	return Headline{
		AvgSpeedupPct:     100 * mean(speedups),
		AvgL2PowerSavePct: 100 * mean(powerSaves),
		AreaOverheadPct:   100 * (norm[0] - 1),
	}
}

// Render formats the headline summary.
func (h Headline) Render() string {
	return fmt.Sprintf(
		"Headline (paper: +13%% speed, -30%% L2 power, +50%% area):\n"+
			"  avg speedup MOM+3D vs MOM vector cache: %+.1f%%\n"+
			"  avg L2 power saving:                    %.1f%%\n"+
			"  register file area overhead vs MMX:     %+.1f%%\n",
		h.AvgSpeedupPct, h.AvgL2PowerSavePct, h.AreaOverheadPct)
}
