package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
)

// PFConfigs are the prefetcher shapes the stream-prefetch sweep
// crosses, as (streams, degree) pairs; (0, 0) is prefetch-off. The
// stream counts bracket the two streaming kernels' needs: gsmencode
// runs a handful of dense sequential streams, while motionsearch's
// macroblock sweep advances 40+ per-pixel-row streams at once (16 rows
// each of the current block, the reference window and the
// reconstruction store stream), so a small table thrashes before it
// can confirm a stride.
var PFConfigs = []struct{ Streams, Degree int }{
	{0, 0},
	{8, 2},
	{8, 4},
	{48, 2},
	{48, 4},
}

// PFBenches are the streaming kernels the sweep runs — the two
// workloads whose working sets outgrow the 2MB L2 at full size.
var PFBenches = []string{"gsmencode", "motionsearch"}

// PFProfiles are the SDRAM timing profiles crossed with the prefetch
// shapes ("" is the default DDR profile).
var PFProfiles = []string{"", "hbm"}

// PFMSHRs is the MSHR file size the sweep fixes: large enough that a
// 16-line dvload never self-stalls and the prefetch quota (a quarter
// of the file) covers a useful number of speculative lines.
const PFMSHRs = 64

// PFSweepRow summarizes one benchmark × profile across the prefetcher
// shapes on the paper's best configuration (MOM+3D over the vector
// cache with the 3D register file).
type PFSweepRow struct {
	Bench   string
	Profile string // "ddr" or "hbm"

	Cycles []int64   // per PFConfigs entry
	BW     []float64 // achieved DRAM bytes/cycle per PFConfigs entry

	// Prefetch outcome at each config (zero for the off column).
	Hits    []uint64
	Late    []uint64
	Useless []uint64
	Issued  []uint64
}

// pfSpec composes the sweep's backend spec for one profile and
// prefetcher shape.
func pfSpec(profile string, streams, degree int) string {
	s := "sdram/line/frfcfs"
	if profile != "" {
		s += "/" + profile
	}
	s += fmt.Sprintf("/mshr%d", PFMSHRs)
	if streams > 0 {
		s += fmt.Sprintf("/pf%dd%d", streams, degree)
	}
	return s
}

// PFSweep runs the stream-prefetch sweep: for each streaming kernel
// and timing profile, prefetch-off against the table shapes of
// PFConfigs, all over the non-blocking pipeline. It is the experiment
// behind the prefetcher: predicted lines riding the MSHR batch should
// raise achieved bandwidth on kernels whose misses form dense streams,
// and the off column doubles as the equivalence anchor (it must match
// the plain mshr64 configuration exactly).
func PFSweep(r *Runner) []PFSweepRow {
	var cells []SimKey
	for _, bench := range PFBenches {
		for _, prof := range PFProfiles {
			for _, c := range PFConfigs {
				cells = append(cells, SimKey{Bench: bench, Variant: kernels.MOM3D,
					Mem: mom3DVCKind, L2Lat: baseLat, DRAM: pfSpec(prof, c.Streams, c.Degree)})
			}
		}
	}
	r.prewarm(cells)
	var rows []PFSweepRow
	for _, bench := range PFBenches {
		for _, prof := range PFProfiles {
			name := prof
			if name == "" {
				name = "ddr"
			}
			row := PFSweepRow{Bench: bench, Profile: name}
			for _, c := range PFConfigs {
				res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, pfSpec(prof, c.Streams, c.Degree))
				row.Cycles = append(row.Cycles, res.Cycles())
				row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
				row.Hits = append(row.Hits, res.PF.Hits)
				row.Late = append(row.Late, res.PF.Late)
				row.Useless = append(row.Useless, res.PF.Useless)
				row.Issued = append(row.Issued, res.PF.Issued)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderPFSweep formats the sweep as a fixed-width text table.
func RenderPFSweep(rows []PFSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream-prefetch sweep — prefetch off vs pf<streams>d<degree> (MOM+3D, vector cache + 3D, sdram/line/frfcfs/mshr%d)\n", PFMSHRs)
	fmt.Fprintf(&b, "%-14s %-4s", "benchmark", "prof")
	for _, c := range PFConfigs {
		label := "off"
		if c.Streams > 0 {
			label = fmt.Sprintf("pf%dd%d", c.Streams, c.Degree)
		}
		fmt.Fprintf(&b, " %9s %6s", label, "B/cyc")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-4s", r.Bench, r.Profile)
		for i := range PFConfigs {
			fmt.Fprintf(&b, " %9d %6.2f", r.Cycles[i], r.BW[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("prefetch outcome at each shape (issued: hit/late/useless):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %-4s", r.Bench, r.Profile)
		for i, c := range PFConfigs {
			if c.Streams == 0 {
				continue
			}
			fmt.Fprintf(&b, "  pf%dd%d: %d: %d/%d/%d", c.Streams, c.Degree,
				r.Issued[i], r.Hits[i], r.Late[i], r.Useless[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("note: the off column must match the plain mshr64 pipeline exactly — prefetch-off\n")
	b.WriteString("is equivalence-tested against the pre-prefetcher model per benchmark and backend.\n")
	return b.String()
}
