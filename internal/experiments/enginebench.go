package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/vmem"
)

// This file emits the engine throughput report (BENCH_PR8.json):
// wheel-vs-step host performance on the full-size motionsearch rows
// over the die-stacked HBM backend — the workload the event-wheel
// engine exists for — plus the whole 54-cell golden matrix as one
// aggregate row. Cycle counts are asserted identical between engines
// before any timing is reported; the numbers differ only in host time.

// EngineBenchRow compares the two engines on one configuration.
// Timings are best-of-reps wall clock of the simulation loop alone.
type EngineBenchRow struct {
	Config   string  `json:"config"` // bench/ISA/backend-spec
	Cycles   int64   `json:"cycles"` // identical under both engines
	StepNs   int64   `json:"host.step_wall_ns"`
	WheelNs  int64   `json:"host.wheel_wall_ns"`
	StepCPS  int64   `json:"host.step_cycles_per_sec"`
	WheelCPS int64   `json:"host.wheel_cycles_per_sec"`
	Speedup  float64 `json:"speedup"` // step wall / wheel wall
}

// EngineBenchReport is the exported document.
type EngineBenchReport struct {
	Suite string           `json:"suite"`
	Reps  int              `json:"reps"`
	Rows  []EngineBenchRow `json:"rows"`
}

// engineBenchSpec is the backend of the headline rows: the banked
// die-stacked profile under FR-FCFS, where bank timing leaves the most
// dead cycles for the wheel to skip.
const engineBenchSpec = "sdram/line/frfcfs/hbm"

// row fills in the derived columns from the two raw timings.
func engineBenchRow(config string, cycles, stepNs, wheelNs int64) EngineBenchRow {
	r := EngineBenchRow{Config: config, Cycles: cycles, StepNs: stepNs, WheelNs: wheelNs}
	if stepNs > 0 {
		r.StepCPS = int64(float64(cycles) / (float64(stepNs) / 1e9))
	}
	if wheelNs > 0 {
		r.WheelCPS = int64(float64(cycles) / (float64(wheelNs) / 1e9))
		r.Speedup = float64(stepNs) / float64(wheelNs)
	}
	return r
}

// EngineBench measures both engines. reps runs each cell per engine
// and keeps the fastest wall clock (the usual best-of discipline for
// host timing); progress, if non-nil, is called before each
// configuration's measurement.
func EngineBench(reps int, progress func(SimKey)) *EngineBenchReport {
	if reps < 1 {
		reps = 1
	}
	rep := &EngineBenchReport{Suite: "motionsearch-full + golden-small", Reps: reps}

	// Headline rows: full-size motionsearch, each ISA × memory-system
	// variant of the golden matrix, on the HBM backend.
	bm, ok := kernels.ByName("motionsearch")
	if !ok {
		panic("experiments: motionsearch missing from the kernel registry")
	}
	for _, vk := range benchVariants {
		key := SimKey{Bench: bm.Name, Variant: vk.v, Mem: vk.kind, L2Lat: baseLat, DRAM: engineBenchSpec}
		if progress != nil {
			progress(key)
		}
		tr := &trace.Trace{}
		bm.Run(vk.v, tr)
		cfg := coreConfigFor(vk.v)
		var cycles int64
		best := [2]int64{} // per engine.Mode
		for _, mode := range []engine.Mode{engine.Step, engine.Wheel} {
			for i := 0; i < reps; i++ {
				backend, knobs, err := buildBackend(engineBenchSpec)
				if err != nil {
					panic(fmt.Sprintf("experiments: %v", err))
				}
				tim := vmem.Timing{L2Latency: baseLat, MemLatency: flatMemLatency, Backend: backend,
					MSHRs: knobs.MSHRs, PFStreams: knobs.PFStreams, PFDegree: knobs.PFDegree}
				ms := core.NewMemSystem(vk.kind, tim, cfg.Lanes, vk.v == kernels.MMX && vk.kind != core.MemIdeal)
				start := time.Now()
				st := core.SimulateMode(cfg, ms, tr.Insts, mode)
				ns := time.Since(start).Nanoseconds()
				if best[mode] == 0 || ns < best[mode] {
					best[mode] = ns
				}
				if cycles == 0 {
					cycles = st.Cycles
				} else if st.Cycles != cycles {
					panic(fmt.Sprintf("experiments: engine bench %s/%s/%s: %v cycles %d != %d — engines diverged",
						bm.Name, vk.v, engineBenchSpec, mode, st.Cycles, cycles))
				}
			}
		}
		rep.Rows = append(rep.Rows,
			engineBenchRow(fmt.Sprintf("%s/%s/%s", bm.Name, vk.v, engineBenchSpec),
				cycles, best[engine.Step], best[engine.Wheel]))
	}

	// Aggregate row: the full golden matrix (the 54 pinned rows) under
	// each engine, summing per-cell simulation wall clock.
	var cycles int64
	best := [2]int64{}
	for _, mode := range []engine.Mode{engine.Step, engine.Wheel} {
		for i := 0; i < reps; i++ {
			r := NewRunnerWith(GoldenSuite())
			r.Engine = mode
			var total, cyc int64
			for _, bench := range r.Benchmarks() {
				for _, vk := range benchVariants {
					for _, spec := range BenchSpecs {
						res := r.SimDRAM(bench, vk.v, vk.kind, baseLat, spec)
						total += res.HostNs
						cyc += res.Cycles()
					}
				}
			}
			if best[mode] == 0 || total < best[mode] {
				best[mode] = total
			}
			if cycles == 0 {
				cycles = cyc
			} else if cyc != cycles {
				panic(fmt.Sprintf("experiments: engine bench golden matrix: %v cycles %d != %d — engines diverged",
					mode, cyc, cycles))
			}
		}
	}
	rep.Rows = append(rep.Rows,
		engineBenchRow("golden-matrix/54-rows", cycles, best[engine.Step], best[engine.Wheel]))
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *EngineBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
