package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestPFSweepShape(t *testing.T) {
	r := mshrRunner() // test-scale gsmencode + motionsearch
	rows := PFSweep(r)
	if want := len(PFBenches) * len(PFProfiles); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		if len(row.Cycles) != len(PFConfigs) || len(row.BW) != len(PFConfigs) ||
			len(row.Hits) != len(PFConfigs) || len(row.Issued) != len(PFConfigs) {
			t.Fatalf("%s/%s: per-config columns missing", row.Bench, row.Profile)
		}
		for i, c := range PFConfigs {
			if row.Cycles[i] <= 0 {
				t.Errorf("%s/%s/pf%dd%d: cycles %d", row.Bench, row.Profile, c.Streams, c.Degree, row.Cycles[i])
			}
			if c.Streams == 0 && row.Issued[i] != 0 {
				t.Errorf("%s/%s: prefetch-off column issued %d prefetches", row.Bench, row.Profile, row.Issued[i])
			}
		}
		// The off column is the equivalence anchor: it must match the
		// plain (no pf segment) configuration of the same pipeline.
		plain := r.SimDRAM(row.Bench, kernels.MOM3D, mom3DVCKind, baseLat, pfSpec(profOf(row.Profile), 0, 0))
		if row.Cycles[0] != plain.Cycles() {
			t.Errorf("%s/%s: off column %d != plain mshr pipeline %d",
				row.Bench, row.Profile, row.Cycles[0], plain.Cycles())
		}
	}
	out := RenderPFSweep(rows)
	if !strings.Contains(out, "Stream-prefetch sweep") || !strings.Contains(out, "motionsearch") {
		t.Error("render missing header or benchmark rows")
	}
}

// profOf maps the row's display profile back to the spec segment.
func profOf(display string) string {
	if display == "ddr" {
		return ""
	}
	return display
}

// TestPFSweepPrefetchesOnStreamingKernel: at test scale the sequential
// gsmencode miss stream must actually trigger prefetches in at least
// one configuration — the sweep is not allowed to be a table of zeros.
func TestPFSweepPrefetchesOnStreamingKernel(t *testing.T) {
	r := mshrRunner()
	issued := uint64(0)
	for _, row := range PFSweep(r) {
		for _, n := range row.Issued {
			issued += n
		}
	}
	if issued == 0 {
		t.Error("no configuration issued a single prefetch on the streaming kernels")
	}
}
