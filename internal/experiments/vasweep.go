package experiments

import (
	"fmt"
	"strings"
)

// VAPolicies are the physical placement policies the virtual-address
// sweep compares, in presentation order: naive first-fit (tenants'
// demand faults interleave in the shared pool), per-tenant page
// coloring (each tenant's pages round-robin the DRAM channels from a
// tenant-specific start), and deliberate co-location (each tenant's
// pages packed contiguously for row-hit locality).
var VAPolicies = []struct {
	Token string // spec token ("va", "vacolor", "vacolo")
	Name  string // display name
}{
	{"va", "first-fit"},
	{"vacolor", "color"},
	{"vacolo", "colo"},
}

// vaBaseSpec is the backend the placement sweep contends on. Unlike
// the interference sweep's line interleaving, the bank mapping puts
// the channel-select bits ABOVE the 4 KiB page offset, so each page
// maps wholly to one channel and the allocator's placement decisions
// are visible to the controller at all.
const vaBaseSpec = "sdram/bank/frfcfs"

// vaSpec composes the sweep's backend spec: the banked part, a tenant
// count (multi-tenant cells only), and the placement-policy token that
// turns translation on.
func vaSpec(tenants int, token string) string {
	s := vaBaseSpec
	if tenants > 1 {
		s += fmt.Sprintf("/tn%d", tenants)
	}
	return s + "/" + token
}

// VASweepRow is one (mix, policy) cell of the placement matrix.
type VASweepRow struct {
	Mix    []string
	Policy string  // display name from VAPolicies
	Solo   []int64 // tenant i alone on a private translated part, same policy
	Shared *TenantResult
}

// VASweep runs the placement-policy × kernel-mix interference matrix:
// every interference mix under every placement policy, against solo
// runs on the same translated backend. The experiment behind the
// address-translation subsystem: with real page tables the tenants'
// physical footprints are no longer disjoint-by-construction, so WHERE
// the allocator puts each tenant's pages decides how much they collide
// in the channels and row buffers — coloring should pull the worst
// tenant's slowdown below first-fit, and co-location should trade
// isolation for row-hit locality.
func VASweep(r *Runner) []VASweepRow {
	var solo []SimKey
	var shared []tenantCell
	for _, p := range VAPolicies {
		for _, mix := range IFMixes {
			for _, bench := range mix {
				solo = append(solo, SimKey{Bench: bench, Variant: mom3DVariant,
					Mem: mom3DVCKind, L2Lat: baseLat, DRAM: vaSpec(1, p.Token)})
			}
			shared = append(shared, tenantCell{mix: mix, l2lat: baseLat,
				spec: vaSpec(len(mix), p.Token)})
		}
	}
	r.prewarm(solo)
	r.prewarmTenants(shared)
	var rows []VASweepRow
	for _, mix := range IFMixes {
		for _, p := range VAPolicies {
			row := VASweepRow{Mix: mix, Policy: p.Name, Solo: make([]int64, len(mix))}
			for i, bench := range mix {
				row.Solo[i] = r.SimDRAM(bench, mom3DVariant, mom3DVCKind, baseLat,
					vaSpec(1, p.Token)).Cycles()
			}
			row.Shared = r.SimTenants(mix, baseLat, vaSpec(len(mix), p.Token))
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderVASweep formats the placement matrix as a fixed-width text
// table, one row per (mix, policy) cell.
func RenderVASweep(rows []VASweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement sweep — tenant mixes over shared physical memory under real address translation (MOM+3D, vector cache + 3D, %s/tn<m>/va*)\n", vaBaseSpec)
	fmt.Fprintf(&b, "%-38s %-24s %6s %6s %6s %6s\n",
		"mix (policy)", "tenant slowdowns vs solo", "max", "jain", "B/cyc", "row%")
	for _, r := range rows {
		label := fmt.Sprintf("%s (%s)", mixLabel(r.Mix), r.Policy)
		sl := slowdowns(r.Shared.Cycles, r.Solo)
		var cells []string
		for _, s := range sl {
			cells = append(cells, fmt.Sprintf("%.2f", s))
		}
		fmt.Fprintf(&b, "%-38s %-24s %6.3f %6.3f %6.2f %6.1f\n",
			label, strings.Join(cells, " "), maxOf(sl), jain(sl),
			r.Shared.DRAM.AchievedBandwidth(), 100*r.Shared.DRAM.RowHitRate())
	}
	b.WriteString("slowdown = shared-pool cycles / solo cycles under the same placement policy; the\n")
	b.WriteString("bank mapping keeps each 4 KiB page on one channel, so placement is the whole\n")
	b.WriteString("story: first-fit interleaves tenants' demand faults wherever the buddy allocator\n")
	b.WriteString("has room, color round-robins each tenant's pages across channels from a\n")
	b.WriteString("tenant-specific start, colo packs each tenant contiguously for row locality.\n")
	return b.String()
}
