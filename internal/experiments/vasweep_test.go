package experiments

import (
	"strings"
	"testing"
)

func TestVASweepShape(t *testing.T) {
	r := mshrRunner() // test-scale gsmencode + motionsearch
	rows := VASweep(r)
	if want := len(IFMixes) * len(VAPolicies); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		n := len(row.Mix)
		if len(row.Solo) != n || len(row.Shared.Cycles) != n {
			t.Fatalf("%v (%s): per-tenant columns missing", row.Mix, row.Policy)
		}
		if len(row.Shared.Shards) != n {
			t.Fatalf("%v (%s): backend stat shards missing", row.Mix, row.Policy)
		}
		for i := 0; i < n; i++ {
			if row.Solo[i] <= 0 {
				t.Errorf("%v (%s) tenant %d: solo cycles %d", row.Mix, row.Policy, i, row.Solo[i])
			}
			// Contending for the shared pool, channels and rows can never
			// beat running alone under the same placement policy.
			if row.Shared.Cycles[i] < row.Solo[i] {
				t.Errorf("%v (%s) tenant %d: shared run faster than solo (%d vs %d)",
					row.Mix, row.Policy, i, row.Shared.Cycles[i], row.Solo[i])
			}
			if row.Shared.Shards[i].Reads == 0 {
				t.Errorf("%v (%s) tenant %d: shard saw no reads", row.Mix, row.Policy, i)
			}
		}
		sl := slowdowns(row.Shared.Cycles, row.Solo)
		if j := jain(sl); j <= 0 || j > 1.0000001 {
			t.Errorf("%v (%s): Jain index %f out of (0,1]", row.Mix, row.Policy, j)
		}
	}
	// The matrix must actually discriminate: some mix must time
	// differently across placement policies, or the allocator is not
	// reaching the controller.
	differs := false
	for i := 0; i+len(VAPolicies) <= len(rows); i += len(VAPolicies) {
		base := rows[i] // first-fit cell of this mix
		for _, other := range rows[i+1 : i+len(VAPolicies)] {
			for j := range base.Shared.Cycles {
				if base.Shared.Cycles[j] != other.Shared.Cycles[j] {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Error("placement policy never changed any tenant's cycles")
	}
	out := RenderVASweep(rows)
	for _, want := range []string{"Placement sweep", "max", "jain", "row%", "(first-fit)", "(color)", "(colo)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
