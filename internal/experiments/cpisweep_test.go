package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/kernels"
)

// cpiSweepRunner keeps the sweep test fast: two scaled-down kernels
// with opposite memory behavior — the compute-dense GSM encoder and
// the streaming motion searcher.
func cpiSweepRunner() *Runner {
	return NewRunnerWith([]kernels.Benchmark{
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	})
}

func TestCPISweepShape(t *testing.T) {
	rep := CPISweep(cpiSweepRunner(), "test-small")
	if want := 2 * len(CPISweepSpecs); len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}
	for _, r := range rep.Rows {
		var sum uint64
		for _, n := range r.Stack {
			sum += n
		}
		if sum != uint64(r.Cycles) {
			t.Errorf("%s: exported stack sums to %d, run took %d cycles", r.Config, sum, r.Cycles)
		}
		if r.Stack["busy"] == 0 {
			t.Errorf("%s: no busy cycles — the run retired nothing?", r.Config)
		}
	}
	// The blocking flat-latency rows serialize every miss, so the
	// memory share of the stack must shrink when the MSHR file lands.
	memShare := func(cfg string) float64 {
		for _, r := range rep.Rows {
			if r.Config == cfg {
				mem := r.Stack["dram_wait"] + r.Stack["mshr_full"] + r.Stack["qos_yield"]
				return float64(mem) / float64(r.Cycles)
			}
		}
		t.Fatalf("row %q missing", cfg)
		return 0
	}
	blocking := memShare("motionsearch/MOM+3D/fixed")
	mshr := memShare("motionsearch/MOM+3D/sdram/line/frfcfs/mshr8")
	if blocking == 0 {
		t.Error("blocking motionsearch row shows no memory wait at all")
	}
	if mshr >= blocking {
		t.Errorf("mshr8 memory share %.2f >= blocking %.2f — overlap bought nothing?", mshr, blocking)
	}
}

func TestCPISweepRenderAndJSON(t *testing.T) {
	rep := CPISweep(cpiSweepRunner(), "test-small")
	out := RenderCPISweep(rep)
	for _, want := range []string{"CPI stacks", "busy", "dram_wait", "gsmencode", "motionsearch", "conservation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back CPISweepReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not parse back: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Suite != rep.Suite {
		t.Errorf("round trip lost rows: got %d/%q, want %d/%q",
			len(back.Rows), back.Suite, len(rep.Rows), rep.Suite)
	}
}
