package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/kernels"
)

// This file is the parallel sweep runner: sweeps enumerate their cells
// up front, a worker pool simulates the not-yet-memoized ones on
// per-worker runner clones, and the results land in the parent memo in
// input order. Every cell is a pure function of its key (the simulator
// is deterministic and each run owns its backend), so the serial sweep
// that follows reads identical values no matter how the pool scheduled
// them — tables and -statsjson output stay byte-stable.

// AutoWorkers resolves a -j flag value: 0 asks for one worker per CPU.
func AutoWorkers(j int) int {
	if j <= 0 {
		return runtime.NumCPU()
	}
	return j
}

// child clones the runner for one worker: shared immutable benchmark
// descriptors, private trace cache and memo, same backend and engine.
func (r *Runner) child() *Runner {
	c := &Runner{
		benches:  make(map[string]kernels.Benchmark, len(r.benches)),
		results:  map[SimKey]*SimResult{},
		order:    append([]string(nil), r.order...),
		DRAMSpec: r.DRAMSpec,
		Engine:   r.Engine,
	}
	for name, bm := range r.benches {
		c.benches[name] = bm
	}
	return c
}

// prewarm simulates the given cells across r.Workers goroutines and
// installs the results into the memo, so a sweep's serial loop replays
// from cache. With Workers <= 1 it is a no-op: the sweep computes each
// cell lazily, exactly as before the pool existed.
func (r *Runner) prewarm(cells []SimKey) {
	if r.Workers <= 1 {
		return
	}
	var todo []SimKey
	seen := map[SimKey]bool{}
	for _, k := range cells {
		if seen[k] || r.results[k] != nil {
			continue
		}
		seen[k] = true
		todo = append(todo, k)
		if r.Progress != nil {
			r.Progress(k)
		}
	}
	if len(todo) < 2 {
		return
	}
	out := make([]*SimResult, len(todo))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(r.Workers, len(todo)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.child()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(todo) {
					return
				}
				k := todo[i]
				out[i] = c.SimDRAM(k.Bench, k.Variant, k.Mem, k.L2Lat, k.DRAM)
			}
		}()
	}
	wg.Wait()
	for i, k := range todo {
		r.results[k] = out[i]
	}
}

// tenantCell is one multi-tenant prewarm request.
type tenantCell struct {
	mix   []string
	l2lat int64
	spec  string
}

// prewarmTenants is prewarm for the multi-tenant cells of the
// interference sweep.
func (r *Runner) prewarmTenants(cells []tenantCell) {
	if r.Workers <= 1 {
		return
	}
	var todo []tenantCell
	seen := map[string]bool{}
	for _, c := range cells {
		k := tenantKey(c.mix, c.l2lat, c.spec)
		if seen[k] || r.tenantResults[k] != nil {
			continue
		}
		seen[k] = true
		todo = append(todo, c)
		if r.Progress != nil {
			r.Progress(SimKey{Bench: strings.Join(c.mix, "+"), Variant: mom3DVariant,
				Mem: mom3DVCKind, L2Lat: c.l2lat, DRAM: c.spec})
		}
	}
	if len(todo) < 2 {
		return
	}
	out := make([]*TenantResult, len(todo))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(r.Workers, len(todo)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.child()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(todo) {
					return
				}
				t := todo[i]
				out[i] = c.SimTenants(t.mix, t.l2lat, t.spec)
			}
		}()
	}
	wg.Wait()
	if r.tenantResults == nil {
		r.tenantResults = map[string]*TenantResult{}
	}
	for i, t := range todo {
		r.tenantResults[tenantKey(t.mix, t.l2lat, t.spec)] = out[i]
	}
}
