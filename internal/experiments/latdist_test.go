package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

// latDistRunner keeps the distribution test fast: motionsearch is the
// only benchmark -latdist simulates.
func latDistRunner() *Runner {
	return NewRunnerWith([]kernels.Benchmark{
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	})
}

func TestLatDistShape(t *testing.T) {
	rows := LatDist(latDistRunner())
	if len(rows) != len(LatDistProfiles) {
		t.Fatalf("rows = %d, want %d", len(rows), len(LatDistProfiles))
	}
	for i, r := range rows {
		if r.Profile != LatDistProfiles[i] {
			t.Errorf("row %d profile = %q, want %q", i, r.Profile, LatDistProfiles[i])
		}
		if r.Wait.Count == 0 || r.Service.Count == 0 || r.Fill.Count == 0 {
			t.Errorf("%s: empty distribution (wait %d, service %d, fill %d) — the streaming kernel must miss",
				r.Profile, r.Wait.Count, r.Service.Count, r.Fill.Count)
		}
		// Translation is on in the spec, so the walk distribution must be
		// live too: a streaming working set cannot fit the L2 TLB.
		if r.Walk.Count == 0 {
			t.Errorf("%s: walk-latency distribution is empty with /va in the spec", r.Profile)
		}
		// Wait and service see the same reads; fills cover at least the
		// demand misses (prefetch fills would only add to them).
		if r.Wait.Count != r.Service.Count {
			t.Errorf("%s: wait n=%d != service n=%d", r.Profile, r.Wait.Count, r.Service.Count)
		}
		// The end-to-end fill time includes the L2 round trip, so its
		// mean cannot undercut the controller's service time.
		if r.Fill.Mean() < r.Service.Mean() {
			t.Errorf("%s: fill mean %.1f < service mean %.1f", r.Profile, r.Fill.Mean(), r.Service.Mean())
		}
	}
	// The die-stacked profile's banks are faster than the commodity
	// DIMM's; the service distribution must reflect that.
	if rows[1].Service.Mean() >= rows[0].Service.Mean() {
		t.Errorf("hbm service mean %.1f >= ddr %.1f", rows[1].Service.Mean(), rows[0].Service.Mean())
	}
}

func TestLatDistRender(t *testing.T) {
	out := RenderLatDist(LatDist(latDistRunner()))
	for _, want := range []string{"read-latency distributions", "queue-wait", "service", "miss-to-fill", "tlb-walk", "ddr", "hbm"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 4 {
		t.Errorf("render has %d lines, want a table", lines)
	}
}
