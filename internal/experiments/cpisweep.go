package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/stats"
)

// This file emits the CPI-stack report (BENCH_PR10.json): whole-pipeline
// cycle attribution for every benchmark across the backend ladder the
// golden matrix pins — the blocking flat-latency model, the banked SDRAM
// channel, and the non-blocking MSHR file on top of it. Each row's
// buckets are checked against the conservation invariant (they sum to
// the run's cycle count exactly) before the report is rendered, so a
// published table can never silently leak cycles.

// CPISweepSpecs is the backend ladder the sweep climbs; it mirrors
// BenchSpecs so every row joins against the golden table and the
// BENCH_PR6 snapshot by key.
var CPISweepSpecs = BenchSpecs

// CPISweepRow is one configuration's cycle attribution. Stack keys are
// the registry's core.cpi.* suffixes (busy, dram_wait, qos_yield, ...),
// so consumers can cross-check the report against a -statsjson snapshot.
type CPISweepRow struct {
	Config string            `json:"config"` // bench/ISA/backend-spec
	Cycles int64             `json:"cycles"`
	Stack  map[string]uint64 `json:"cpi"`
}

// CPISweepReport is the exported document.
type CPISweepReport struct {
	Suite string        `json:"suite"`
	Rows  []CPISweepRow `json:"rows"`
}

// cpiBuckets lists the stack's buckets in presentation order (pipeline
// first, memory system last), with the snake_case registry suffix each
// field registers under.
var cpiBuckets = func() []struct{ field, key string } {
	typ := reflect.TypeOf(core.CPIStack{})
	out := make([]struct{ field, key string }, typ.NumField())
	for i := range out {
		name := typ.Field(i).Name
		out[i] = struct{ field, key string }{name, stats.SnakeCase(name)}
	}
	return out
}()

// stackMap flattens a CPI stack into registry-suffix keys.
func stackMap(c core.CPIStack) map[string]uint64 {
	v := reflect.ValueOf(c)
	m := make(map[string]uint64, len(cpiBuckets))
	for i, b := range cpiBuckets {
		m[b.key] = v.Field(i).Uint()
	}
	return m
}

// CPISweep attributes every cycle of the MOM+3D suite across the
// backend ladder, panicking if any row violates conservation — a
// corrupted attribution must never render as a plausible table.
func CPISweep(r *Runner, suite string) *CPISweepReport {
	rep := &CPISweepReport{Suite: suite}
	for _, bench := range r.Benchmarks() {
		for _, spec := range CPISweepSpecs {
			res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, spec)
			if got, want := res.Core.CPI.Sum(), uint64(res.Core.Cycles); got != want {
				panic(fmt.Sprintf("experiments: cpi sweep %s/%s: stack sums to %d, run took %d cycles",
					bench, spec, got, want))
			}
			rep.Rows = append(rep.Rows, CPISweepRow{
				Config: fmt.Sprintf("%s/%s/%s", bench, kernels.MOM3D, spec),
				Cycles: res.Core.Cycles,
				Stack:  stackMap(res.Core.CPI),
			})
		}
	}
	return rep
}

// RenderCPISweep formats the report as a fixed-width text table: one
// row per configuration, one percentage column per bucket. Buckets the
// whole sweep leaves at zero are dropped so the blocking rows don't
// drag eleven columns of zeros through the table.
func RenderCPISweep(rep *CPISweepReport) string {
	live := make([]struct{ field, key string }, 0, len(cpiBuckets))
	for _, b := range cpiBuckets {
		for _, r := range rep.Rows {
			if r.Stack[b.key] > 0 {
				live = append(live, b)
				break
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stacks — MOM+3D, vector cache + 3D, percent of run cycles per bucket (suite %s)\n", rep.Suite)
	fmt.Fprintf(&b, "%-14s %-24s %9s |", "bench", "backend", "cycles")
	for _, col := range live {
		fmt.Fprintf(&b, " %9s", col.key)
	}
	b.WriteByte('\n')
	for _, r := range rep.Rows {
		parts := strings.SplitN(r.Config, "/", 3)
		fmt.Fprintf(&b, "%-14s %-24s %9d |", parts[0], parts[2], r.Cycles)
		for _, col := range live {
			fmt.Fprintf(&b, " %8.1f%%", 100*float64(r.Stack[col.key])/float64(r.Cycles))
		}
		b.WriteByte('\n')
	}
	b.WriteString("every row's buckets sum to its cycle count exactly (conservation is asserted, not rounded).\n")
	return b.String()
}

// WriteJSON writes the report as indented, deterministically-ordered
// JSON (encoding/json sorts map keys).
func (rep *CPISweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
