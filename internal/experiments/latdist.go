package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/stats"
)

// LatDistProfiles are the SDRAM timing profiles the latency-distribution
// table compares: the commodity DIMM against the die-stacked part.
var LatDistProfiles = []string{"ddr", "hbm"}

// LatDistBench is the workload the table runs: the streaming kernel
// whose working set defeats the L2, so every distribution below is over
// real main-memory traffic rather than a handful of cold misses.
const LatDistBench = "motionsearch"

// latDistMSHRs sizes the MSHR file behind the distributions; the
// non-blocking pipeline is what makes queue-wait distinct from service
// time (a blocking pipeline never queues more than one read).
const latDistMSHRs = 8

// LatDistRow holds the four per-request latency distributions of one
// timing profile: where a read waited (queue), how long the banks took
// (service), the end-to-end miss-to-fill time the pipeline saw, and
// how long address translation stalled issue on a page-table walk.
type LatDistRow struct {
	Profile string
	Spec    string
	Cycles  int64
	Wait    stats.HistSnapshot // dram.read_wait: admission to first service
	Service stats.HistSnapshot // dram.read_service: service start to data
	Fill    stats.HistSnapshot // vmem.mshr.fill: miss allocation to fill
	Walk    stats.HistSnapshot // vm.walk.latency: TLB miss to translation
}

// latDistSpec composes the backend spec for one profile. Translation is
// on (first-touch placement) so the walk-latency distribution sits next
// to the DRAM ones it feeds.
func latDistSpec(profile string) string {
	return fmt.Sprintf("sdram/line/frfcfs/%s/mshr%d/va", profile, latDistMSHRs)
}

// LatDist measures the read-latency distributions of each timing
// profile on the streaming kernel, read straight from the registry
// snapshot the runner takes after every simulation.
func LatDist(r *Runner) []LatDistRow {
	var rows []LatDistRow
	for _, prof := range LatDistProfiles {
		spec := latDistSpec(prof)
		res := r.SimDRAM(LatDistBench, kernels.MOM3D, mom3DVCKind, baseLat, spec)
		rows = append(rows, LatDistRow{
			Profile: prof,
			Spec:    spec,
			Cycles:  res.Cycles(),
			Wait:    res.Snap.Hists["dram.read_wait"],
			Service: res.Snap.Hists["dram.read_service"],
			Fill:    res.Snap.Hists["vmem.mshr.fill"],
			Walk:    res.Snap.Hists["vm.walk.latency"],
		})
	}
	return rows
}

// RenderLatDist formats the distributions as a fixed-width text table,
// one row per profile and one column group per distribution.
func RenderLatDist(rows []LatDistRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory read-latency distributions — %s, MOM+3D, vector cache + 3D, sdram/line/frfcfs/<prof>/mshr%d/va\n",
		LatDistBench, latDistMSHRs)
	fmt.Fprintf(&b, "%-5s %9s %6s |", "prof", "cycles", "reads")
	for _, g := range []string{"queue-wait", "service", "miss-to-fill", "tlb-walk"} {
		fmt.Fprintf(&b, " %25s |", g)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s %9s %6s |", "", "", "")
	for range 4 {
		fmt.Fprintf(&b, " %6s %5s %5s %6s |", "mean", "p50", "p95", "max")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %9d %6d |", r.Profile, r.Cycles, r.Wait.Count)
		for _, h := range []stats.HistSnapshot{r.Wait, r.Service, r.Fill, r.Walk} {
			fmt.Fprintf(&b, " %6.1f %5d %5d %6d |",
				h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max)
		}
		b.WriteByte('\n')
	}
	b.WriteString("latencies in cycles; p50/p95 are log2-bucket upper bounds. queue-wait + service = per-read\n")
	b.WriteString("controller latency; miss-to-fill adds the L2 round trip and any MSHR batching delay;\n")
	b.WriteString("tlb-walk is the translation stall an L2-TLB miss imposed on issue.\n")
	return b.String()
}
