package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

// mshrRunner registers test-scale versions of the sweep's two
// streaming kernels under their canonical names, so MSHRSweep never
// falls back to the full-size registry in a unit test.
func mshrRunner() *Runner {
	return NewRunnerWith([]kernels.Benchmark{
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	})
}

func TestMSHRSweepShape(t *testing.T) {
	r := mshrRunner()
	rows := MSHRSweep(r)
	if want := len(MSHRBenches) * len(MSHRProfiles); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		if len(row.Cycles) != len(MSHRCounts) || len(row.BW) != len(MSHRCounts) ||
			len(row.MLP) != len(MSHRCounts) || len(row.Span) != len(MSHRCounts) {
			t.Fatalf("%s/%s: per-count columns missing", row.Bench, row.Profile)
		}
		if row.BlockCycles <= 0 {
			t.Errorf("%s/%s: blocking cycles %d", row.Bench, row.Profile, row.BlockCycles)
		}
		for i, n := range MSHRCounts {
			if row.Cycles[i] <= 0 {
				t.Errorf("%s/%s/mshr%d: cycles %d", row.Bench, row.Profile, n, row.Cycles[i])
			}
		}
		// The refactor's equivalence net, as seen by the sweep itself:
		// the 1-entry file reproduces the blocking model exactly.
		if MSHRCounts[0] == 1 && row.Cycles[0] != row.BlockCycles {
			t.Errorf("%s/%s: mshr1 cycles %d != blocking %d",
				row.Bench, row.Profile, row.Cycles[0], row.BlockCycles)
		}
	}
	out := RenderMSHRSweep(rows)
	if !strings.Contains(out, "MSHR sweep") || !strings.Contains(out, "motionsearch") {
		t.Error("render missing header or benchmark rows")
	}
}

// TestRunnerResolvesExtendedBenchmarks: a bench outside the paper's
// five resolves on demand without joining the presentation order.
func TestRunnerResolvesExtendedBenchmarks(t *testing.T) {
	r := mshrRunner()
	for _, b := range r.Benchmarks() {
		if b != "gsmencode" && b != "motionsearch" {
			t.Fatalf("unexpected benchmark %q in order", b)
		}
	}
	res := r.SimDRAM("motionsearch", kernels.MOM3D, mom3DVCKind, baseLat, "sdram/line/frfcfs/mshr8")
	if res.Cycles() <= 0 {
		t.Fatal("extended benchmark did not simulate")
	}
	if res.MSHR.Allocs == 0 {
		t.Error("mshr8 spec did not reach the MSHR file")
	}
}
