package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
)

// MSHRCounts lists the MSHR file sizes the non-blocking-pipeline sweep
// crosses. 1 is the bit-exact blocking compatibility mode, so its
// column doubles as the refactor's equivalence check against the
// legacy blocking column.
var MSHRCounts = []int{1, 4, 8, 16}

// MSHRBenches are the streaming kernels the sweep runs: the two
// workloads that still generate main-memory traffic at full size
// (everything else fits the 2MB L2 after warmup).
var MSHRBenches = []string{"gsmencode", "motionsearch"}

// MSHRProfiles are the SDRAM timing profiles crossed with the MSHR
// counts ("" is the default DDR profile).
var MSHRProfiles = []string{"", "hbm"}

// MSHRSweepRow summarizes one benchmark × profile across MSHR counts
// on the paper's best configuration (MOM+3D over the vector cache with
// the 3D register file).
type MSHRSweepRow struct {
	Bench   string
	Profile string // "ddr" or "hbm"

	BlockCycles int64   // legacy blocking path (no MSHR file)
	BlockBW     float64 // achieved bytes/cycle under blocking

	Cycles []int64   // per MSHRCounts entry
	BW     []float64 // achieved bytes/cycle per MSHRCounts entry
	MLP    []float64 // mean outstanding misses at allocation
	Span   []float64 // mean instructions per Submit batch
}

// mshrSpec composes the sweep's backend spec for one profile and MSHR
// count (0 = no mshr segment: the legacy blocking path).
func mshrSpec(profile string, mshrs int) string {
	s := "sdram/line/frfcfs"
	if profile != "" {
		s += "/" + profile
	}
	if mshrs > 0 {
		s += fmt.Sprintf("/mshr%d", mshrs)
	}
	return s
}

// MSHRSweep runs the non-blocking-pipeline sweep: for each streaming
// kernel and timing profile, the blocking model against MSHR files of
// increasing size. It is the experiment behind the issue/completion
// split: achieved bandwidth should rise once the file covers an
// instruction's intrinsic line-level parallelism (a dvload spans up to
// 16 lines) and keeps rising as batches span multiple instructions.
func MSHRSweep(r *Runner) []MSHRSweepRow {
	var cells []SimKey
	for _, bench := range MSHRBenches {
		for _, prof := range MSHRProfiles {
			for _, n := range append([]int{0}, MSHRCounts...) {
				cells = append(cells, SimKey{Bench: bench, Variant: kernels.MOM3D,
					Mem: mom3DVCKind, L2Lat: baseLat, DRAM: mshrSpec(prof, n)})
			}
		}
	}
	r.prewarm(cells)
	var rows []MSHRSweepRow
	for _, bench := range MSHRBenches {
		for _, prof := range MSHRProfiles {
			name := prof
			if name == "" {
				name = "ddr"
			}
			row := MSHRSweepRow{Bench: bench, Profile: name}
			blk := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, mshrSpec(prof, 0))
			row.BlockCycles = blk.Cycles()
			row.BlockBW = blk.DRAM.AchievedBandwidth()
			for _, n := range MSHRCounts {
				res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, mshrSpec(prof, n))
				row.Cycles = append(row.Cycles, res.Cycles())
				row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
				row.MLP = append(row.MLP, res.MSHR.MLP())
				row.Span = append(row.Span, res.MSHR.AvgSpan())
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderMSHRSweep formats the sweep as a fixed-width text table.
func RenderMSHRSweep(rows []MSHRSweepRow) string {
	var b strings.Builder
	b.WriteString("MSHR sweep — blocking model vs non-blocking memory pipeline (MOM+3D, vector cache + 3D, sdram/line/frfcfs)\n")
	fmt.Fprintf(&b, "%-14s %-4s %10s", "benchmark", "prof", "block cyc")
	for _, n := range MSHRCounts {
		fmt.Fprintf(&b, " %7s %6s", fmt.Sprintf("mshr%d", n), "B/cyc")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-4s %10d", r.Bench, r.Profile, r.BlockCycles)
		for i := range MSHRCounts {
			fmt.Fprintf(&b, " %7d %6.2f", r.Cycles[i], r.BW[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("note: mshr1 is the blocking compatibility mode — its cycles must equal the block column\n")
	b.WriteString("(the refactor's equivalence net). MLP and batch spans at the largest file:\n")
	last := len(MSHRCounts) - 1
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %-4s mshr%d: MLP %.2f, %.2f instructions/batch (blocking bw %.2f B/cyc)\n",
			r.Bench, r.Profile, MSHRCounts[last], r.MLP[last], r.Span[last], r.BlockBW)
	}
	return b.String()
}
