package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

func TestDRAMSweepShape(t *testing.T) {
	r := smallRunner()
	rows := DRAMSweep(r)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	sawDiff := false
	bestHit := 0.0
	for _, row := range rows {
		if len(row.Cycles) != len(DRAMMappings) || len(row.RowHit) != len(DRAMMappings) {
			t.Fatalf("%s: per-mapping columns missing", row.Bench)
		}
		for i, m := range DRAMMappings {
			if row.Cycles[i] <= 0 {
				t.Errorf("%s/%s: cycles %d", row.Bench, m, row.Cycles[i])
			}
			if row.RowHit[i] < 0 || row.RowHit[i] > 1 {
				t.Errorf("%s/%s: row hit rate %f out of range", row.Bench, m, row.RowHit[i])
			}
			if row.Cycles[i] != row.FixedCycles {
				sawDiff = true
			}
			if row.RowHit[i] > bestHit {
				bestHit = row.RowHit[i]
			}
		}
	}
	if !sawDiff {
		t.Error("SDRAM and fixed backends produced identical cycles everywhere")
	}
	// The streaming kernels must keep rows open under at least one
	// mapping (the acceptance bar for the banked model).
	if bestHit < 0.5 {
		t.Errorf("best row hit rate = %f, want > 0.5", bestHit)
	}
	out := RenderDRAMSweep(rows)
	if !strings.Contains(out, "DRAM sweep") || !strings.Contains(out, "gsmencode") {
		t.Error("render missing header or benchmark rows")
	}
}

func TestFixedSpecMatchesSeedModel(t *testing.T) {
	// The explicit fixed backend must reproduce the flat-latency seed
	// model cycle-for-cycle.
	r := smallRunner()
	for _, bench := range r.Benchmarks() {
		seed := r.SimDRAM(bench, kernels.MOM3D, core.MemVectorCache3D, baseLat, "")
		fixed := r.SimDRAM(bench, kernels.MOM3D, core.MemVectorCache3D, baseLat, "fixed")
		if seed.Cycles() != fixed.Cycles() {
			t.Errorf("%s: fixed backend %d cycles vs seed model %d", bench, fixed.Cycles(), seed.Cycles())
		}
	}
}

func TestRunnerDRAMSpecAppliesToSim(t *testing.T) {
	r := smallRunner()
	r.DRAMSpec = "sdram/bank/frfcfs"
	res := r.Sim("gsmencode", kernels.MOM3D, core.MemVectorCache3D, baseLat)
	if res.Key.DRAM != "sdram/bank/frfcfs" {
		t.Fatalf("key DRAM spec = %q", res.Key.DRAM)
	}
	if res.DRAM.Accesses == 0 {
		t.Fatal("sdram stats empty: backend was not threaded through")
	}
}
