package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

func TestDRAMSweepShape(t *testing.T) {
	r := smallRunner()
	rows := DRAMSweep(r)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	sawDiff := false
	bestHit := 0.0
	for _, row := range rows {
		if len(row.Cycles) != len(DRAMMappings) || len(row.RowHit) != len(DRAMMappings) {
			t.Fatalf("%s: per-mapping columns missing", row.Bench)
		}
		for i, m := range DRAMMappings {
			if row.Cycles[i] <= 0 {
				t.Errorf("%s/%s: cycles %d", row.Bench, m, row.Cycles[i])
			}
			if row.RowHit[i] < 0 || row.RowHit[i] > 1 {
				t.Errorf("%s/%s: row hit rate %f out of range", row.Bench, m, row.RowHit[i])
			}
			if row.Cycles[i] != row.FixedCycles {
				sawDiff = true
			}
			if row.RowHit[i] > bestHit {
				bestHit = row.RowHit[i]
			}
		}
	}
	if !sawDiff {
		t.Error("SDRAM and fixed backends produced identical cycles everywhere")
	}
	// The streaming kernels must keep rows open under at least one
	// mapping (the acceptance bar for the banked model).
	if bestHit < 0.5 {
		t.Errorf("best row hit rate = %f, want > 0.5", bestHit)
	}
	out := RenderDRAMSweep(rows)
	if !strings.Contains(out, "DRAM sweep") || !strings.Contains(out, "gsmencode") {
		t.Error("render missing header or benchmark rows")
	}
}

func TestChannelScalingSweepShape(t *testing.T) {
	// The test-scale benchmarks touch DRAM too rarely (a few dozen cold
	// misses over the whole run) to exhibit bandwidth scaling, so this
	// only checks the sweep's shape; TestChannelScalingFullGSM asserts
	// the scaling itself on a full-size streaming kernel.
	r := smallRunner()
	rows := DRAMChannelScaling(r)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, row := range rows {
		if len(row.BW) != len(DRAMChannels) || len(row.Cycles) != len(DRAMChannels) {
			t.Fatalf("%s: missing columns", row.Bench)
		}
		for i := range DRAMChannels {
			if row.Cycles[i] <= 0 || row.BW[i] <= 0 {
				t.Errorf("%s/%dch: cycles %d bw %f", row.Bench, DRAMChannels[i], row.Cycles[i], row.BW[i])
			}
		}
	}
	out := RenderChannelScaling(rows)
	if !strings.Contains(out, "channel scaling") || !strings.Contains(out, "gsmencode") {
		t.Error("render missing header or benchmark rows")
	}
}

func TestChannelScalingFullGSM(t *testing.T) {
	// The acceptance bar for the per-channel-sharded controller: on a
	// full-size streaming kernel, 4 channels achieve more DRAM
	// bandwidth than 1. gsmencode is the densest DRAM client of the
	// suite and the simulation is deterministic, so the comparison is
	// exact.
	r := NewRunnerWith([]kernels.Benchmark{kernels.GSMEncode(kernels.DefaultGSMEncConfig())})
	one := r.SimDRAM("gsmencode", kernels.MOM3D, core.MemVectorCache3D, baseLat, "sdram/line/frfcfs/1ch")
	four := r.SimDRAM("gsmencode", kernels.MOM3D, core.MemVectorCache3D, baseLat, "sdram/line/frfcfs/4ch")
	if b1, b4 := one.DRAM.AchievedBandwidth(), four.DRAM.AchievedBandwidth(); b4 <= b1 {
		t.Errorf("4-channel bandwidth %.2f B/cyc not above 1-channel %.2f", b4, b1)
	}
	if four.Cycles() > one.Cycles() {
		t.Errorf("4-channel run slower: %d vs %d cycles", four.Cycles(), one.Cycles())
	}
}

func TestFixedSpecMatchesSeedModel(t *testing.T) {
	// The explicit fixed backend must reproduce the flat-latency seed
	// model cycle-for-cycle.
	r := smallRunner()
	for _, bench := range r.Benchmarks() {
		seed := r.SimDRAM(bench, kernels.MOM3D, core.MemVectorCache3D, baseLat, "")
		fixed := r.SimDRAM(bench, kernels.MOM3D, core.MemVectorCache3D, baseLat, "fixed")
		if seed.Cycles() != fixed.Cycles() {
			t.Errorf("%s: fixed backend %d cycles vs seed model %d", bench, fixed.Cycles(), seed.Cycles())
		}
	}
}

func TestRunnerDRAMSpecAppliesToSim(t *testing.T) {
	r := smallRunner()
	r.DRAMSpec = "sdram/bank/frfcfs"
	res := r.Sim("gsmencode", kernels.MOM3D, core.MemVectorCache3D, baseLat)
	if res.Key.DRAM != "sdram/bank/frfcfs" {
		t.Fatalf("key DRAM spec = %q", res.Key.DRAM)
	}
	if res.DRAM.Accesses == 0 {
		t.Fatal("sdram stats empty: backend was not threaded through")
	}
}
