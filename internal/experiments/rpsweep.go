package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
)

// RPPolicies are the per-bank row policies the sweep crosses, as
// rp<name> spec tokens: the static open page (the default and the
// PR 4 behaviour), static close (auto-precharge), the idle-timer close
// at the default gap, and the 2-bit history live/dead predictor.
var RPPolicies = []string{"open", "close", "timer:200", "history"}

// RPBenches are the streaming kernels the sweep runs — the same two
// full-size workloads the MSHR and prefetch sweeps use, which bracket
// the policy space: gsmencode streams at 0.9+ row-hit rates (open
// pages pay), while motionsearch on the commodity profile conflicts on
// nearly every access (0.02 row-hit rate — closed pages pay).
var RPBenches = []string{"gsmencode", "motionsearch"}

// RPProfiles are the SDRAM timing profiles crossed with the policies
// ("" is the default DDR profile).
var RPProfiles = []string{"", "hbm"}

// rpPFShape returns the PR 4 best prefetcher shape for one benchmark ×
// profile — the configuration whose motionsearch/ddr regression the
// demand-priority scheduler exists to close — so the sweep's prefetch
// matrix measures each row policy under live speculative traffic.
func rpPFShape(bench, profile string) (streams, degree int) {
	if bench == "gsmencode" {
		if profile == "hbm" {
			return 8, 4
		}
		return 8, 2
	}
	return 48, 2
}

// rpSpec composes the sweep's backend spec for one profile, prefetch
// shape (0 streams = demand-only) and row policy.
func rpSpec(profile string, streams, degree int, rp string) string {
	s := "sdram/line/frfcfs"
	if profile != "" {
		s += "/" + profile
	}
	if rp != "" {
		s += "/rp" + rp
	}
	s += fmt.Sprintf("/mshr%d", PFMSHRs)
	if streams > 0 {
		s += fmt.Sprintf("/pf%dd%d", streams, degree)
	}
	return s
}

// RPSweepRow summarizes one benchmark × profile × traffic mix across
// the row policies on the paper's best configuration (MOM+3D over the
// vector cache with the 3D register file, 64-entry MSHR file). Each
// benchmark × profile appears twice: once demand-only, once with its
// PR 4 best prefetcher shape riding the batch.
type RPSweepRow struct {
	Bench   string
	Profile string // "ddr" or "hbm"
	Streams int    // prefetcher shape of the row (0 = demand-only)
	Degree  int

	Cycles []int64   // per RPPolicies entry
	BW     []float64 // achieved DRAM bytes/cycle per RPPolicies entry
	RowHit []float64 // row-buffer hit rate per RPPolicies entry

	// Policy internals per RPPolicies entry.
	ClosedEarly []uint64
	Reopened    []uint64
	Flips       []uint64
	Deferred    []uint64 // prefetch reads held back by the pfq cap
}

// Traffic names the row's traffic mix.
func (r *RPSweepRow) Traffic() string {
	if r.Streams == 0 {
		return "demand"
	}
	return fmt.Sprintf("pf%dd%d", r.Streams, r.Degree)
}

// RPSweep runs the row-policy sweep: for each streaming kernel and
// timing profile, the four per-bank policies over demand-only traffic
// and again under the kernel's PR 4 prefetcher shape with the
// demand-priority scheduler. It is the experiment behind the policy
// subsystem: the history predictor should converge to open-page
// behaviour where rows pay (gsmencode — zero flips, bit-identical to
// rpopen) and to close-page where they thrash (motionsearch/ddr
// demand traffic), while the prefetch matrix shows demand-priority
// closing the PR 4 motionsearch/ddr regression with gsmencode's
// bandwidth intact.
func RPSweep(r *Runner) []RPSweepRow {
	var cells []SimKey
	for _, bench := range RPBenches {
		for _, prof := range RPProfiles {
			name := prof
			if name == "" {
				name = "ddr"
			}
			pfStreams, pfDegree := rpPFShape(bench, name)
			for _, shape := range [][2]int{{0, 0}, {pfStreams, pfDegree}} {
				for _, rp := range RPPolicies {
					cells = append(cells, SimKey{Bench: bench, Variant: kernels.MOM3D,
						Mem: mom3DVCKind, L2Lat: baseLat, DRAM: rpSpec(prof, shape[0], shape[1], rp)})
				}
			}
		}
	}
	r.prewarm(cells)
	var rows []RPSweepRow
	for _, bench := range RPBenches {
		for _, prof := range RPProfiles {
			name := prof
			if name == "" {
				name = "ddr"
			}
			pfStreams, pfDegree := rpPFShape(bench, name)
			for _, shape := range [][2]int{{0, 0}, {pfStreams, pfDegree}} {
				row := RPSweepRow{Bench: bench, Profile: name, Streams: shape[0], Degree: shape[1]}
				for _, rp := range RPPolicies {
					res := r.SimDRAM(bench, kernels.MOM3D, mom3DVCKind, baseLat, rpSpec(prof, shape[0], shape[1], rp))
					row.Cycles = append(row.Cycles, res.Cycles())
					row.BW = append(row.BW, res.DRAM.AchievedBandwidth())
					row.RowHit = append(row.RowHit, res.DRAM.RowHitRate())
					row.ClosedEarly = append(row.ClosedEarly, res.DRAM.RowClosedEarly)
					row.Reopened = append(row.Reopened, res.DRAM.RowReopened)
					row.Flips = append(row.Flips, res.DRAM.PredictorFlips)
					row.Deferred = append(row.Deferred, res.DRAM.PrefetchDeferred)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// RenderRPSweep formats the sweep as a fixed-width text table.
func RenderRPSweep(rows []RPSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Row-policy sweep — per-bank policies × traffic mix under demand-priority scheduling (MOM+3D, vector cache + 3D, sdram/line/frfcfs/rp<p>/mshr%d[/pf<n>d<m>])\n", PFMSHRs)
	fmt.Fprintf(&b, "%-14s %-4s %-7s", "benchmark", "prof", "traffic")
	for _, p := range RPPolicies {
		fmt.Fprintf(&b, " %9s %6s %6s", "rp"+p, "B/cyc", "rowhit")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-4s %-7s", r.Bench, r.Profile, r.Traffic())
		for i := range RPPolicies {
			fmt.Fprintf(&b, " %9d %6.2f %6.3f", r.Cycles[i], r.BW[i], r.RowHit[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("policy internals at each point (closed early / reopened / predictor flips; pfq-deferred prefetches):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %-4s %-7s", r.Bench, r.Profile, r.Traffic())
		for i, p := range RPPolicies {
			fmt.Fprintf(&b, "  rp%s: %d/%d/%d (%d def)", p, r.ClosedEarly[i], r.Reopened[i], r.Flips[i], r.Deferred[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("note: rpopen is the PR 4 model's policy — with prefetch off it is pinned bit-identical\n")
	b.WriteString("to the golden-stats table; the history predictor should match rpopen where rows pay\n")
	b.WriteString("(gsmencode) and converge to rpclose where they thrash (motionsearch demand traffic).\n")
	return b.String()
}
