package experiments

import (
	"fmt"
	"strings"

	"repro/internal/power"
)

// Series is one named data series over the benchmark list of a figure.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a regenerated paper figure: one value per (series, benchmark).
type Figure struct {
	ID         string
	Title      string
	Benchmarks []string
	Series     []Series
	Unit       string
	Note       string
}

// Render formats the figure as a fixed-width text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", f.ID, f.Title)
	if f.Unit != "" {
		fmt.Fprintf(&b, " (%s)", f.Unit)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	b.WriteByte('\n')
	for i, bench := range f.Benchmarks {
		fmt.Fprintf(&b, "%-14s", bench)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %18.3f", s.Values[i])
		}
		b.WriteByte('\n')
	}
	if len(f.Benchmarks) > 1 {
		fmt.Fprintf(&b, "%-14s", "average")
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %18.3f", mean(s.Values))
		}
		b.WriteByte('\n')
	}
	if f.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Note)
	}
	return b.String()
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Figure3 reproduces "Performance slowdown for realistic memory system
// configurations": MOM over the multi-banked cache and the vector cache,
// relative to MOM over idealistic memory.
func Figure3(r *Runner) *Figure {
	f := &Figure{
		ID:         "Figure 3",
		Title:      "performance slowdown vs idealistic memory (MOM)",
		Benchmarks: r.Benchmarks(),
		Unit:       "x",
		Note:       "paper: slowdowns range from ~1.07x to ~1.58x; vector cache close to multi-banked",
	}
	mb := Series{Name: "MOM multi-banked"}
	vc := Series{Name: "MOM vector cache"}
	for _, bench := range f.Benchmarks {
		ideal := float64(r.MOMIdeal(bench).Cycles())
		mb.Values = append(mb.Values, float64(r.MOMMultiBanked(bench).Cycles())/ideal)
		vc.Values = append(vc.Values, float64(r.MOMVectorCache(bench).Cycles())/ideal)
	}
	f.Series = []Series{mb, vc}
	return f
}

// Figure6 reproduces "Effective memory bandwidth (words per access)".
func Figure6(r *Runner) *Figure {
	f := &Figure{
		ID:         "Figure 6",
		Title:      "effective memory bandwidth",
		Benchmarks: r.Benchmarks(),
		Unit:       "64-bit words / access",
		Note:       "paper: 3D vectorization on the vector cache beats even the multi-banked design",
	}
	mb := Series{Name: "MOM multi-banked"}
	vc := Series{Name: "MOM vector cache"}
	d3 := Series{Name: "MOM+3D vcache"}
	for _, bench := range f.Benchmarks {
		mb.Values = append(mb.Values, r.MOMMultiBanked(bench).VM.EffectiveBandwidth())
		vc.Values = append(vc.Values, r.MOMVectorCache(bench).VM.EffectiveBandwidth())
		d3.Values = append(d3.Values, r.MOM3DVectorCache(bench).VM.EffectiveBandwidth())
	}
	f.Series = []Series{mb, vc, d3}
	return f
}

// Figure7 reproduces "Vector cache traffic reduction when using 3D
// vectorization (in 64-bit words transferred)".
func Figure7(r *Runner) *Figure {
	f := &Figure{
		ID:         "Figure 7",
		Title:      "vector cache traffic reduction from 3D register reuse",
		Benchmarks: r.Benchmarks(),
		Unit:       "%",
		Note:       "jpegdecode has no 3D patterns (0%); gsmencode's overlapped lag windows reduce most",
	}
	s := Series{Name: "traffic reduction"}
	for _, bench := range f.Benchmarks {
		mom := float64(r.MOMVectorCache(bench).VM.Words)
		d3 := float64(r.MOM3DVectorCache(bench).VM.Words)
		red := 0.0
		if mom > 0 {
			red = 100 * (1 - d3/mom)
		}
		s.Values = append(s.Values, red)
	}
	f.Series = []Series{s}
	return f
}

// Figure9 reproduces "Performance slowdown for the different ISA and
// memory sub-system configurations" (all relative to MOM with idealistic
// memory).
func Figure9(r *Runner) *Figure {
	f := &Figure{
		ID:         "Figure 9",
		Title:      "performance slowdown vs idealistic-memory MOM",
		Benchmarks: r.Benchmarks(),
		Unit:       "x",
		Note:       "paper averages: MMX-ideal 1.31x, MOM-mb 1.19x, MOM-vc 1.22x, MOM+3D 1.08x",
	}
	mmxMB := Series{Name: "MMX multi-banked"}
	mmxID := Series{Name: "MMX ideal"}
	momMB := Series{Name: "MOM multi-banked"}
	momVC := Series{Name: "MOM vector cache"}
	d3VC := Series{Name: "MOM+3D vcache"}
	for _, bench := range f.Benchmarks {
		ideal := float64(r.MOMIdeal(bench).Cycles())
		mmxMB.Values = append(mmxMB.Values, float64(r.MMXMultiBanked(bench).Cycles())/ideal)
		mmxID.Values = append(mmxID.Values, float64(r.MMXIdeal(bench).Cycles())/ideal)
		momMB.Values = append(momMB.Values, float64(r.MOMMultiBanked(bench).Cycles())/ideal)
		momVC.Values = append(momVC.Values, float64(r.MOMVectorCache(bench).Cycles())/ideal)
		d3VC.Values = append(d3VC.Values, float64(r.MOM3DVectorCache(bench).Cycles())/ideal)
	}
	f.Series = []Series{mmxMB, mmxID, momMB, momVC, d3VC}
	return f
}

// Figure10Benchmarks are the four benchmarks of the latency study.
var Figure10Benchmarks = []string{"jpegencode", "mpeg2decode", "mpeg2encode", "gsmencode"}

// Figure10 reproduces "Normalized execution time for different L2 cache
// latencies with and without 3D memory instructions": L2 latency 20, 40,
// 60 cycles; each benchmark normalized to MOM at 20 cycles.
func Figure10(r *Runner) *Figure {
	lats := []int64{20, 40, 60}
	var benches []string
	for _, b := range Figure10Benchmarks {
		if _, ok := r.benches[b]; ok {
			benches = append(benches, b)
		}
	}
	f := &Figure{
		ID:         "Figure 10",
		Title:      "normalized execution time vs L2 latency",
		Benchmarks: benches,
		Unit:       "relative to MOM @ 20 cycles",
		Note:       "paper: MOM slows ~1.27x at 40 cycles; MOM+3D only ~1.18x",
	}
	for _, variant := range []struct {
		name string
		sim  func(bench string, lat int64) *SimResult
	}{
		{"MOM", func(b string, l int64) *SimResult {
			return r.Sim(b, momVariant, momVCKind, l)
		}},
		{"MOM+3D", func(b string, l int64) *SimResult {
			return r.Sim(b, mom3DVariant, mom3DVCKind, l)
		}},
	} {
		for _, lat := range lats {
			s := Series{Name: fmt.Sprintf("%s @%d", variant.name, lat)}
			for _, bench := range benches {
				base := float64(r.Sim(bench, momVariant, momVCKind, 20).Cycles())
				s.Values = append(s.Values, float64(variant.sim(bench, lat).Cycles())/base)
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}

// Figure11 reproduces "Memory sub-system (L2 cache + 3D RF) average power
// consumption for the different configurations".
func Figure11(r *Runner) *Figure {
	p := power.DefaultParams()
	f := &Figure{
		ID:         "Figure 11",
		Title:      "memory subsystem average power (L2 + 3D RF)",
		Benchmarks: r.Benchmarks(),
		Unit:       "W",
		Note:       "paper: ~30% L2 power saving from 3D vectorization; 3D RF power negligible",
	}
	mb := Series{Name: "MOM multi-banked"}
	vc := Series{Name: "MOM vector cache"}
	d3 := Series{Name: "MOM+3D vcache"}
	d3rf := Series{Name: "(3D RF share)"}
	for _, bench := range f.Benchmarks {
		rm := r.MOMMultiBanked(bench)
		mb.Values = append(mb.Values, power.Estimate(p, rm.Cycles(), &rm.VM, rm.ScalarL2, 0).Total())
		rv := r.MOMVectorCache(bench)
		vc.Values = append(vc.Values, power.Estimate(p, rv.Cycles(), &rv.VM, rv.ScalarL2, 0).Total())
		rd := r.MOM3DVectorCache(bench)
		bd := power.Estimate(p, rd.Cycles(), &rd.VM, rd.ScalarL2, rd.Trace.D3MoveElems)
		d3.Values = append(d3.Values, bd.Total())
		d3rf.Values = append(d3rf.Values, bd.D3Watts)
	}
	f.Series = []Series{mb, vc, d3, d3rf}
	return f
}
