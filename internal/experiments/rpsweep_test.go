package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestRPSweepShape(t *testing.T) {
	r := mshrRunner() // test-scale gsmencode + motionsearch
	rows := RPSweep(r)
	// Two traffic mixes per benchmark × profile.
	if want := len(RPBenches) * len(RPProfiles) * 2; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	openIdx := -1
	for i, p := range RPPolicies {
		if p == "open" {
			openIdx = i
		}
	}
	if openIdx < 0 {
		t.Fatal("the sweep must include the static open policy (the PR 4 baseline)")
	}
	for _, row := range rows {
		if len(row.Cycles) != len(RPPolicies) || len(row.BW) != len(RPPolicies) ||
			len(row.ClosedEarly) != len(RPPolicies) || len(row.Deferred) != len(RPPolicies) {
			t.Fatalf("%s/%s/%s: per-policy columns missing", row.Bench, row.Profile, row.Traffic())
		}
		for i, p := range RPPolicies {
			if row.Cycles[i] <= 0 {
				t.Errorf("%s/%s/%s/rp%s: cycles %d", row.Bench, row.Profile, row.Traffic(), p, row.Cycles[i])
			}
		}
		// The open policy never closes a row early and never flips.
		if row.ClosedEarly[openIdx] != 0 || row.Flips[openIdx] != 0 {
			t.Errorf("%s/%s/%s: rpopen closed %d rows early (%d flips)",
				row.Bench, row.Profile, row.Traffic(), row.ClosedEarly[openIdx], row.Flips[openIdx])
		}
		// Demand-only rows carry no speculative traffic to defer.
		if row.Streams == 0 {
			for i, p := range RPPolicies {
				if row.Deferred[i] != 0 {
					t.Errorf("%s/%s/demand/rp%s: %d prefetches deferred without a prefetcher",
						row.Bench, row.Profile, p, row.Deferred[i])
				}
			}
		}
		// The demand-only rpopen point is the equivalence anchor: it
		// must match the plain (no rp token) mshr pipeline exactly.
		if row.Streams == 0 {
			plain := r.SimDRAM(row.Bench, kernels.MOM3D, mom3DVCKind, baseLat, rpSpec(profOf(row.Profile), 0, 0, ""))
			if row.Cycles[openIdx] != plain.Cycles() {
				t.Errorf("%s/%s: rpopen demand column %d != plain mshr pipeline %d",
					row.Bench, row.Profile, row.Cycles[openIdx], plain.Cycles())
			}
		}
	}
	out := RenderRPSweep(rows)
	if !strings.Contains(out, "Row-policy sweep") || !strings.Contains(out, "motionsearch") ||
		!strings.Contains(out, "rphistory") {
		t.Error("render missing header, benchmark rows or policy columns")
	}
}

// TestRPSweepPoliciesDiverge: at test scale the policies must actually
// reach the controller — the static close policy closes rows on every
// kernel that touches DRAM, so the sweep is not allowed to be four
// copies of the same column.
func TestRPSweepPoliciesDiverge(t *testing.T) {
	r := mshrRunner()
	closeIdx := -1
	for i, p := range RPPolicies {
		if p == "close" {
			closeIdx = i
		}
	}
	if closeIdx < 0 {
		t.Fatal("the sweep must include the static close policy")
	}
	closed := uint64(0)
	for _, row := range RPSweep(r) {
		closed += row.ClosedEarly[closeIdx]
	}
	if closed == 0 {
		t.Error("no configuration closed a single row under the static close policy")
	}
}
