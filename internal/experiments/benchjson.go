package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/stats"
)

// This file emits the machine-readable benchmark report (BENCH_PR6.json):
// the full stats-registry snapshot of every configuration in the golden
// matrix — the same bench × ISA × backend cross internal/core pins in
// testdata/golden_stats.txt. Keys are spelled identically to the golden
// table's ("bench/ISA/backend-spec"), so any consumer can join the two,
// and TestBenchReportMatchesGolden holds the JSON's counters to the
// pinned rows bit for bit.

// BenchSpecs are the backend configurations the report crosses; they
// mirror goldenSpecs in internal/core/golden_test.go.
var BenchSpecs = []string{
	"fixed",
	"sdram/line/frfcfs",
	"sdram/line/frfcfs/mshr8",
}

// BenchReport is the exported document: one registry snapshot per
// golden-matrix configuration.
type BenchReport struct {
	Suite   string                    `json:"suite"`
	Configs map[string]stats.Snapshot `json:"configs"`
}

// GoldenSuite is the scaled-down benchmark set the golden table was
// measured over (the full-size kernels would take minutes in CI).
func GoldenSuite() []kernels.Benchmark {
	return []kernels.Benchmark{
		kernels.JPEGEncode(kernels.SmallJPEGEncConfig()),
		kernels.JPEGDecode(kernels.SmallJPEGDecConfig()),
		kernels.MPEG2Decode(kernels.SmallMPEG2DecConfig()),
		kernels.MPEG2Encode(kernels.SmallMPEG2EncConfig()),
		kernels.GSMEncode(kernels.SmallGSMEncConfig()),
		kernels.MotionSearch(kernels.SmallMotionSearchConfig()),
	}
}

// benchVariants is the ISA × memory-system cross of the golden matrix.
var benchVariants = []struct {
	v    kernels.Variant
	kind core.MemKind
}{
	{kernels.MOM3D, core.MemVectorCache3D},
	{kernels.MOM, core.MemVectorCache},
	{kernels.MMX, core.MemMultiBanked},
}

// ComputeBenchReport runs the golden matrix over the scaled-down suite
// and collects every configuration's registry snapshot. progress, if
// non-nil, is called before each simulation.
func ComputeBenchReport(progress func(SimKey)) *BenchReport {
	r := NewRunnerWith(GoldenSuite())
	r.Progress = progress
	rep := &BenchReport{Suite: "golden-small", Configs: map[string]stats.Snapshot{}}
	for _, bench := range r.Benchmarks() {
		for _, vk := range benchVariants {
			for _, spec := range BenchSpecs {
				res := r.SimDRAM(bench, vk.v, vk.kind, baseLat, spec)
				key := fmt.Sprintf("%s/%s/%s", bench, vk.v, spec)
				rep.Configs[key] = res.Snap
			}
		}
	}
	return rep
}

// WriteJSON writes the report as indented, deterministically-ordered
// JSON (encoding/json sorts map keys).
func (rep *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
