package experiments

import (
	"strings"
	"testing"
)

func TestIFSweepShape(t *testing.T) {
	r := mshrRunner() // test-scale gsmencode + motionsearch
	rows := IFSweep(r)
	if len(rows) != len(IFMixes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(IFMixes))
	}
	for _, row := range rows {
		n := len(row.Mix)
		if len(row.Solo) != n || len(row.Base.Cycles) != n || len(row.QoS.Cycles) != n {
			t.Fatalf("%v: per-tenant columns missing", row.Mix)
		}
		if len(row.Base.Shards) != n || len(row.QoS.Shards) != n {
			t.Fatalf("%v: backend stat shards missing", row.Mix)
		}
		for i := 0; i < n; i++ {
			if row.Solo[i] <= 0 {
				t.Errorf("%v tenant %d: solo cycles %d", row.Mix, i, row.Solo[i])
			}
			// Sharing the part can never beat running alone on it: the
			// lockstep group adds contention, nothing else.
			if row.Base.Cycles[i] < row.Solo[i] || row.QoS.Cycles[i] < row.Solo[i] {
				t.Errorf("%v tenant %d: shared run faster than solo (%d/%d vs %d)",
					row.Mix, i, row.Base.Cycles[i], row.QoS.Cycles[i], row.Solo[i])
			}
			if row.Base.Shards[i].Reads == 0 || row.QoS.Shards[i].Reads == 0 {
				t.Errorf("%v tenant %d: a shard saw no reads", row.Mix, i)
			}
		}
		// QoS reorders the same traffic: both passes serve every request.
		if a, b := row.Base.DRAM.Accesses, row.QoS.DRAM.Accesses; a != b {
			t.Errorf("%v: accesses diverged between passes: %d vs %d", row.Mix, a, b)
		}
		if row.Base.DRAM.QoSDeferred != 0 {
			t.Errorf("%v: the no-QoS pass counted %d deferrals", row.Mix, row.Base.DRAM.QoSDeferred)
		}
		sl := slowdowns(row.Base.Cycles, row.Solo)
		if j := jain(sl); j <= 0 || j > 1.0000001 {
			t.Errorf("%v: Jain index %f out of (0,1]", row.Mix, j)
		}
		if m := maxOf(sl); m < 1 {
			t.Errorf("%v: max slowdown %f below 1", row.Mix, m)
		}
	}
	out := RenderIFSweep(rows)
	for _, want := range []string{"Interference sweep", "max", "jain", "(frfcfs)", "(qos)", "4x motionsearch"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMixLabel(t *testing.T) {
	cases := []struct {
		mix  []string
		want string
	}{
		{[]string{"a"}, "a"},
		{[]string{"a", "a", "a"}, "3x a"},
		{[]string{"a", "a", "b"}, "2x a + b"},
		{[]string{"a", "b", "a"}, "a + b + a"},
	}
	for _, c := range cases {
		if got := mixLabel(c.mix); got != c.want {
			t.Errorf("mixLabel(%v) = %q, want %q", c.mix, got, c.want)
		}
	}
}
