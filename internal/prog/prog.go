// Package prog provides the trace builder: a typed assembler whose every
// emitted instruction is immediately executed on the functional emulator
// and appended to the dynamic trace.
//
// This replaces the paper's ATOM-based methodology (§5.1): the authors
// rewrote Mediabench kernels with MOM intrinsics and traced instrumented
// executions; here the kernels are written directly against this builder,
// so data-dependent control flow (e.g. the running-minimum update in
// full-search motion estimation) follows exactly the path a native
// execution would take, and the resulting stream carries real addresses
// and real register dependences.
//
// Builder methods panic on malformed instructions (wrong register class,
// out-of-range vector length): these are assembly-time programming errors
// in a kernel, never data-dependent conditions.
package prog

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// ScratchReg is the scalar register the builder reserves for loop-control
// temporaries (Loop / DownLoop). Kernels must not use it.
var ScratchReg = isa.R(31)

// Builder assembles, executes and records one dynamic instruction stream.
type Builder struct {
	m    *emu.Machine
	sink trace.Sink
	seq  uint64
}

// New returns a builder over machine m that sends the stream to sink.
// Use trace.Multi to attach several sinks.
func New(m *emu.Machine, sink trace.Sink) *Builder {
	return &Builder{m: m, sink: sink}
}

// Machine exposes the underlying emulator (for reading results back).
func (b *Builder) Machine() *emu.Machine { return b.m }

// Count returns the number of instructions emitted so far.
func (b *Builder) Count() uint64 { return b.seq }

func (b *Builder) emit(in isa.Inst) {
	in.Seq = b.seq
	if err := b.m.Exec(&in); err != nil {
		panic(fmt.Sprintf("prog: instruction %d (%s): %v", in.Seq, in.String(), err))
	}
	b.seq++
	if b.sink != nil {
		b.sink.Emit(in)
	}
}

// addr computes the effective address base+off from the emulated value of
// the base register.
func (b *Builder) addr(base isa.Reg, off int64) uint64 {
	return uint64(b.m.IntVal(base) + off)
}

// Scalar operations.

// MovImm sets dst = imm.
func (b *Builder) MovImm(dst isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIMovImm, Kind: isa.KindScalar, Dst: dst, Imm: imm})
}

// Mov copies src to dst.
func (b *Builder) Mov(dst, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIMov, Kind: isa.KindScalar, Dst: dst, Src1: src})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIAdd, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// AddImm emits dst = s1 + imm.
func (b *Builder) AddImm(dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIAddImm, Kind: isa.KindScalar, Dst: dst, Src1: s1, Imm: imm})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpISub, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIMul, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// Shl emits dst = s1 << imm.
func (b *Builder) Shl(dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIShl, Kind: isa.KindScalar, Dst: dst, Src1: s1, Imm: imm})
}

// Shr emits dst = s1 >> imm (logical).
func (b *Builder) Shr(dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIShr, Kind: isa.KindScalar, Dst: dst, Src1: s1, Imm: imm})
}

// Sra emits dst = s1 >> imm (arithmetic).
func (b *Builder) Sra(dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpISra, Kind: isa.KindScalar, Dst: dst, Src1: s1, Imm: imm})
}

// Slt emits dst = (s1 < s2).
func (b *Builder) Slt(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpISlt, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// SltI emits dst = (s1 < imm).
func (b *Builder) SltI(dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpISltI, Kind: isa.KindScalar, Dst: dst, Src1: s1, Imm: imm})
}

// Min emits dst = min(s1, s2).
func (b *Builder) Min(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIMin, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// Max emits dst = max(s1, s2).
func (b *Builder) Max(dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIMax, Kind: isa.KindScalar, Dst: dst, Src1: s1, Src2: s2})
}

// Control flow.

// BrNZ emits a conditional branch on cond != 0 and returns the outcome so
// the kernel's Go control flow can follow the same path.
func (b *Builder) BrNZ(cond isa.Reg) bool {
	taken := b.m.IntVal(cond) != 0
	b.emit(isa.Inst{Op: isa.OpBr, Kind: isa.KindBranch, Src1: cond, Taken: taken})
	return taken
}

// Jump emits an unconditional control transfer.
func (b *Builder) Jump() {
	b.emit(isa.Inst{Op: isa.OpJump, Kind: isa.KindBranch, Taken: true})
}

// Loop runs body(i) for i in [0,n) with realistic loop overhead: the
// counter lives in ctr and each iteration ends with an increment, a
// compare into ScratchReg and a backward branch.
func (b *Builder) Loop(ctr isa.Reg, n int, body func(i int)) {
	b.MovImm(ctr, 0)
	for i := 0; i < n; i++ {
		body(i)
		b.AddImm(ctr, ctr, 1)
		b.SltI(ScratchReg, ctr, int64(n))
		b.BrNZ(ScratchReg)
	}
}

// Scalar memory. size is the access width in bytes (1, 2, 4, 8).

// Load emits a zero-extending load of size bytes from base+off.
func (b *Builder) Load(dst, base isa.Reg, off int64, size int) {
	b.emit(isa.Inst{Op: isa.OpLoad, Kind: isa.KindScalarMem, Dst: dst, Src1: base,
		Imm: int64(size), Addr: b.addr(base, off)})
}

// LoadS emits a sign-extending load of size bytes from base+off.
func (b *Builder) LoadS(dst, base isa.Reg, off int64, size int) {
	b.emit(isa.Inst{Op: isa.OpLoadS, Kind: isa.KindScalarMem, Dst: dst, Src1: base,
		Imm: int64(size), Addr: b.addr(base, off)})
}

// Store emits a store of the low size bytes of src to base+off.
func (b *Builder) Store(base isa.Reg, off int64, src isa.Reg, size int) {
	b.emit(isa.Inst{Op: isa.OpStore, Kind: isa.KindScalarMem, Src1: base, Src2: src,
		Imm: int64(size), Addr: b.addr(base, off), IsStore: true})
}

// μSIMD (MMX-like) operations.

// U emits a two-source packed μSIMD operation.
func (b *Builder) U(op isa.Op, dst, s1, s2 isa.Reg) {
	b.emit(isa.Inst{Op: op, Kind: isa.KindUSIMD, Dst: dst, Src1: s1, Src2: s2})
}

// UImm emits a packed μSIMD operation with an immediate (shifts,
// shuffles).
func (b *Builder) UImm(op isa.Op, dst, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: op, Kind: isa.KindUSIMD, Dst: dst, Src1: s1, Imm: imm})
}

// MovI2V moves a scalar register into the low word of a vector register.
func (b *Builder) MovI2V(dst, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpVMovI2V, Kind: isa.KindUSIMD, Dst: dst, Src1: src})
}

// MovV2I moves element elem of vector register src to a scalar register.
func (b *Builder) MovV2I(dst, src isa.Reg, elem int) {
	b.emit(isa.Inst{Op: isa.OpVMovV2I, Kind: isa.KindScalar, Dst: dst, Src1: src, Imm: int64(elem)})
}

// SplatW broadcasts the low 16 bits of scalar src across a μSIMD register.
func (b *Builder) SplatW(dst, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpVSplatW, Kind: isa.KindUSIMD, Dst: dst, Src1: src})
}

// MMXLoad emits a 64-bit μSIMD load from base+off. pack is the subword
// packing (8 for byte data, 4 for 16-bit data) recorded for Table 1.
func (b *Builder) MMXLoad(dst, base isa.Reg, off int64, pack int) {
	b.emit(isa.Inst{Op: isa.OpVLoad, Kind: isa.KindUSIMDMem, Dst: dst, Src1: base,
		Imm: int64(pack), Addr: b.addr(base, off)})
}

// MMXStore emits a 64-bit μSIMD store of src to base+off.
func (b *Builder) MMXStore(base isa.Reg, off int64, src isa.Reg, pack int) {
	b.emit(isa.Inst{Op: isa.OpVStore, Kind: isa.KindUSIMDMem, Src1: base, Src2: src,
		Imm: int64(pack), Addr: b.addr(base, off), IsStore: true})
}

// MOM 2D operations.

// M emits a two-source MOM vector operation over vl elements.
func (b *Builder) M(op isa.Op, dst, s1, s2 isa.Reg, vl int) {
	b.emit(isa.Inst{Op: op, Kind: isa.KindMOM, Dst: dst, Src1: s1, Src2: s2, VL: vl})
}

// MImm emits a MOM vector operation with an immediate over vl elements.
func (b *Builder) MImm(op isa.Op, dst, s1 isa.Reg, imm int64, vl int) {
	b.emit(isa.Inst{Op: op, Kind: isa.KindMOM, Dst: dst, Src1: s1, Imm: imm, VL: vl})
}

// MSplatW broadcasts the low 16 bits of scalar src across vl elements of a
// MOM register.
func (b *Builder) MSplatW(dst, src isa.Reg, vl int) {
	b.emit(isa.Inst{Op: isa.OpVSplatW, Kind: isa.KindMOM, Dst: dst, Src1: src, VL: vl})
}

// MOMLoad emits a MOM 2D vector load: vl 64-bit elements starting at
// base+off with stride bytes between elements. pack is the subword packing
// recorded for Table 1.
func (b *Builder) MOMLoad(dst, base isa.Reg, off, stride int64, vl, pack int) {
	b.emit(isa.Inst{Op: isa.OpVLoad, Kind: isa.KindMOMMem, Dst: dst, Src1: base,
		VL: vl, Stride: stride, Imm: int64(pack), Addr: b.addr(base, off)})
}

// MOMStore emits a MOM 2D vector store of vl elements of src.
func (b *Builder) MOMStore(base isa.Reg, off, stride int64, src isa.Reg, vl, pack int) {
	b.emit(isa.Inst{Op: isa.OpVStore, Kind: isa.KindMOMMem, Src1: base, Src2: src,
		VL: vl, Stride: stride, Imm: int64(pack), Addr: b.addr(base, off), IsStore: true})
}

// Packed accumulator reductions.

// VSadAcc emits acc += Σ_e SAD(s1[e], s2[e]) over vl elements.
func (b *Builder) VSadAcc(acc, s1, s2 isa.Reg, vl int) {
	b.emit(isa.Inst{Op: isa.OpVSadAcc, Kind: isa.KindMOM, Dst: acc, Src1: s1, Src2: s2, VL: vl})
}

// VMacAcc emits acc += Σ_e dot16(s1[e], s2[e]) over vl elements.
func (b *Builder) VMacAcc(acc, s1, s2 isa.Reg, vl int) {
	b.emit(isa.Inst{Op: isa.OpVMacAcc, Kind: isa.KindMOM, Dst: acc, Src1: s1, Src2: s2, VL: vl})
}

// VAddWAcc emits acc += Σ_e Σ_w signed-word(s1[e][w]) over vl elements.
func (b *Builder) VAddWAcc(acc, s1 isa.Reg, vl int) {
	b.emit(isa.Inst{Op: isa.OpVAddWAcc, Kind: isa.KindMOM, Dst: acc, Src1: s1, VL: vl})
}

// AccClr clears an accumulator register.
func (b *Builder) AccClr(acc isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpAccClr, Kind: isa.KindScalar, Dst: acc})
}

// AccMov reads an accumulator into a scalar register.
func (b *Builder) AccMov(dst, acc isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpAccMov, Kind: isa.KindScalar, Dst: dst, Src1: acc})
}

// 3D memory vectorization.

// DVLoad emits the paper's dvload: vl elements of widthWords 64-bit words
// each, from base+off with stride bytes between elements, into 3D register
// d3. back initializes the element pointer at the last loaded sub-block
// instead of the first. pack is the subword packing recorded for Table 1.
func (b *Builder) DVLoad(d3, base isa.Reg, off, stride int64, vl, widthWords int, back bool, pack int) {
	b.emit(isa.Inst{Op: isa.Op3DVLoad, Kind: isa.Kind3DLoad, Dst: d3, Src1: base,
		VL: vl, Stride: stride, Width: widthWords, Back: back, Imm: int64(pack),
		Addr: b.addr(base, off)})
}

// DVMov emits the paper's 3dvmov: for each of vl elements, the 64-bit
// sub-block at the current pointer offset of d3 moves into dst; the
// pointer then advances by ptrStep bytes.
func (b *Builder) DVMov(dst, d3 isa.Reg, ptrStep, vl int) {
	b.emit(isa.Inst{Op: isa.Op3DVMov, Kind: isa.Kind3DMove, Dst: dst, Src1: d3,
		Ptr: isa.P(d3.Index()), PtrStep: ptrStep, VL: vl})
}
