package prog

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/trace"
)

func newB() (*Builder, *trace.Trace, *emu.Machine) {
	m := emu.New(mmem.New())
	tr := &trace.Trace{}
	return New(m, tr), tr, m
}

func TestSequenceNumbers(t *testing.T) {
	b, tr, _ := newB()
	b.MovImm(isa.R(1), 1)
	b.MovImm(isa.R(2), 2)
	b.Add(isa.R(3), isa.R(1), isa.R(2))
	if b.Count() != 3 || tr.Len() != 3 {
		t.Fatalf("count = %d, trace = %d", b.Count(), tr.Len())
	}
	for i, in := range tr.Insts {
		if in.Seq != uint64(i) {
			t.Errorf("inst %d has seq %d", i, in.Seq)
		}
	}
}

func TestEffectiveAddresses(t *testing.T) {
	b, tr, m := newB()
	b.MovImm(isa.R(1), 0x1000)
	b.MovImm(isa.R(9), 42)
	b.Store(isa.R(1), 8, isa.R(9), 4)
	b.Load(isa.R(2), isa.R(1), 8, 4)
	if m.IntVal(isa.R(2)) != 42 {
		t.Fatal("store/load round trip failed")
	}
	st := tr.Insts[2]
	if st.Addr != 0x1008 || !st.IsStore || st.Kind != isa.KindScalarMem {
		t.Errorf("store inst: %+v", st)
	}
}

func TestBranchOutcome(t *testing.T) {
	b, tr, _ := newB()
	b.MovImm(isa.R(1), 0)
	if b.BrNZ(isa.R(1)) {
		t.Error("branch on zero must not be taken")
	}
	b.MovImm(isa.R(1), -5)
	if !b.BrNZ(isa.R(1)) {
		t.Error("branch on nonzero must be taken")
	}
	if !tr.Insts[1].Taken == false || tr.Insts[1].Kind != isa.KindBranch {
		t.Error("first branch must be recorded not-taken")
	}
	if tr.Insts[3].Taken != true {
		t.Error("second branch must be recorded taken")
	}
}

func TestLoopOverheadAndTrip(t *testing.T) {
	b, tr, m := newB()
	sum := isa.R(5)
	b.MovImm(sum, 0)
	n := 0
	b.Loop(isa.R(6), 4, func(i int) {
		n++
		b.AddImm(sum, sum, int64(i))
	})
	if n != 4 {
		t.Fatalf("body ran %d times", n)
	}
	if m.IntVal(sum) != 0+1+2+3 {
		t.Errorf("sum = %d", m.IntVal(sum))
	}
	// Overhead: 1 init + per-iteration (body 1 + addi + slti + br) = 1+4*4.
	if tr.Len() != 1+1+4*4 {
		t.Errorf("trace len = %d", tr.Len())
	}
	// Last branch is the fall-through (not taken).
	last := tr.Insts[tr.Len()-1]
	if last.Kind != isa.KindBranch || last.Taken {
		t.Error("final loop branch must be not-taken")
	}
}

func TestMOMLoadTraceFields(t *testing.T) {
	b, tr, m := newB()
	for e := 0; e < 8; e++ {
		m.Mem.WriteU64(uint64(0x2000+e*176), uint64(e))
	}
	b.MovImm(isa.R(1), 0x2000)
	b.MOMLoad(isa.V(1), isa.R(1), 0, 176, 8, 8)
	in := tr.Insts[1]
	if in.Kind != isa.KindMOMMem || in.VL != 8 || in.Stride != 176 || in.Imm != 8 {
		t.Errorf("MOM load fields: %+v", in)
	}
	if m.VecElem(isa.V(1), 7) != 7 {
		t.Error("MOM load execution failed")
	}
}

func TestDVLoadDVMovRoundTrip(t *testing.T) {
	b, tr, m := newB()
	// 8 rows at stride 64, 16 bytes each of recognizable content.
	for r := 0; r < 8; r++ {
		for i := 0; i < 16; i++ {
			m.Mem.WriteU8(uint64(0x3000+r*64+i), uint8(r*16+i))
		}
	}
	b.MovImm(isa.R(1), 0x3000)
	b.DVLoad(isa.D(0), isa.R(1), 0, 64, 8, 2, false, 8)
	b.DVMov(isa.V(2), isa.D(0), 1, 8)
	if got := m.VecElem(isa.V(2), 3); got != 0x3736353433323130 {
		t.Errorf("slice elem 3 = %x", got)
	}
	ld, mv := tr.Insts[1], tr.Insts[2]
	if ld.Kind != isa.Kind3DLoad || ld.Width != 2 || ld.VL != 8 {
		t.Errorf("dvload fields: %+v", ld)
	}
	if mv.Kind != isa.Kind3DMove || mv.Ptr != isa.P(0) || mv.PtrStep != 1 {
		t.Errorf("3dvmov fields: %+v", mv)
	}
}

func TestAccumulatorHelpers(t *testing.T) {
	b, _, m := newB()
	b.AccClr(isa.A(0))
	for e := 0; e < 2; e++ {
		m.Vec[1][e] = 0x0a0a0a0a0a0a0a0a
		m.Vec[2][e] = 0x0505050505050505
	}
	b.VSadAcc(isa.A(0), isa.V(1), isa.V(2), 2)
	b.AccMov(isa.R(3), isa.A(0))
	if m.IntVal(isa.R(3)) != 2*8*5 {
		t.Errorf("SAD total = %d, want 80", m.IntVal(isa.R(3)))
	}
}

func TestBuilderPanicsOnMalformed(t *testing.T) {
	b, _, _ := newB()
	defer func() {
		if recover() == nil {
			t.Error("malformed instruction must panic")
		}
	}()
	b.MOMLoad(isa.V(1), isa.R(1), 0, 8, 99, 8) // VL out of range
}

func TestStatsSinkIntegration(t *testing.T) {
	m := emu.New(mmem.New())
	st := trace.NewStats()
	tr := &trace.Trace{}
	b := New(m, trace.Multi{tr, st})
	b.MovImm(isa.R(1), 0x100)
	b.MOMLoad(isa.V(1), isa.R(1), 0, 8, 4, 8)
	b.DVLoad(isa.D(0), isa.R(1), 0, 16, 2, 2, false, 8)
	b.DVMov(isa.V(2), isa.D(0), 1, 2)
	b.DVMov(isa.V(3), isa.D(0), 1, 2)
	if st.Total != 5 || tr.Len() != 5 {
		t.Fatalf("fanout: stats %d, trace %d", st.Total, tr.Len())
	}
	d1, d2, d3, mx, has3 := st.Dims()
	if !has3 {
		t.Fatal("stream has 3D instructions")
	}
	if d1 != 8 {
		t.Errorf("dim1 = %v", d1)
	}
	if d2 != 3 { // (4+2)/2
		t.Errorf("dim2 = %v", d2)
	}
	if d3 != 1.5 { // (1 + 2)/2
		t.Errorf("dim3 = %v", d3)
	}
	if mx != 2 {
		t.Errorf("dim3 max = %d", mx)
	}
}
