package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// MotionSearchConfig sizes the motionsearch workload: horizontal
// full-search motion estimation over an HD-scale luminance frame pair,
// followed by a motion-compensated copy of every winning candidate into
// a reconstruction frame. Unlike the five Mediabench-derived
// benchmarks, whose scaled-down inputs live comfortably inside the 2MB
// L2, the default configuration streams three ~2MB frames (current,
// reference, reconstruction), so the kernel actually reaches main
// memory: it is the workload that exercises DRAM channels, write
// queues and the MSHR file at full size.
type MotionSearchConfig struct {
	W, H  int    // luminance frame dimensions (multiples of 16)
	Cands int    // horizontal search candidates per macroblock (≤ 8)
	Step  int    // macroblock sampling stride (1 = every macroblock)
	Seed  uint64 // content seed
}

// DefaultMotionSearchConfig is the full-size HD workload: 1920x1088
// frames, every third macroblock in each dimension searched. The
// sampled blocks still sweep the whole frame pair (the reads touch
// nearly every cache line of the rows they cross), so the memory
// system sees an HD stream while the trace stays simulation-sized.
func DefaultMotionSearchConfig() MotionSearchConfig {
	return MotionSearchConfig{W: 1920, H: 1088, Cands: 8, Step: 3, Seed: 0x5EA4C}
}

// SmallMotionSearchConfig is a fast configuration for unit tests.
func SmallMotionSearchConfig() MotionSearchConfig {
	return MotionSearchConfig{W: 128, H: 32, Cands: 8, Step: 1, Seed: 0xBEEF}
}

// MotionSearch builds the motionsearch benchmark.
func MotionSearch(cfg MotionSearchConfig) Benchmark {
	return Benchmark{
		Name:  "motionsearch",
		Has3D: true,
		run:   func(v Variant, sink trace.Sink) []byte { return motionSearchRun(cfg, v, sink) },
		ref:   func() []byte { return motionSearchRef(cfg) },
	}
}

func motionSearchFrames(cfg MotionSearchConfig) (cur, ref *media.Frame) {
	fr := media.VideoSequence(cfg.W, cfg.H, 2, 5, 1, cfg.Seed)
	ref, cur = fr[0], fr[1]
	media.AddNoise(cur, 4, cfg.Seed^0x5eed)
	return cur, ref
}

// motionSearchRange clips the candidate displacement window [lo, hi]
// for a macroblock at x0 so every candidate block stays in the frame.
func motionSearchRange(cfg MotionSearchConfig, x0 int) (lo, hi int) {
	lo = -cfg.Cands / 2
	hi = lo + cfg.Cands - 1
	if lo < -x0 {
		lo = -x0
	}
	if hi > cfg.W-16-x0 {
		hi = cfg.W - 16 - x0
	}
	return lo, hi
}

func motionSearchRun(cfg MotionSearchConfig, v Variant, sink trace.Sink) []byte {
	cur, ref := motionSearchFrames(cfg)
	e := newEnv(v, sink)

	curA := e.alloc(len(cur.Pix), 64)
	refA := e.alloc(len(ref.Pix), 64)
	reconA := e.alloc(cfg.W*cfg.H, 64)
	e.m.Mem.Write(curA, cur.Pix)
	e.m.Mem.Write(refA, ref.Pix)

	var (
		rCur   = isa.R(1)
		rRef   = isa.R(2)
		rRecon = isa.R(3)
		rRefB  = isa.R(4)
		rSad   = isa.R(6)
		rMin   = isa.R(7)
		rPos   = isa.R(8)
		rCond  = isa.R(9)
	)
	b := e.b
	W := int64(cfg.W)

	dg := &digest{}
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 * cfg.Step {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 * cfg.Step {
			lo, hi := motionSearchRange(cfg, x0)
			e.setBase(rCur, curA+uint64(y0*cfg.W+x0))
			e.setBase(rRef, refA+uint64(y0*cfg.W+x0+lo))
			b.MovImm(rMin, 1<<30)
			b.MovImm(rPos, int64(lo))

			if v != MMX {
				b.MOMLoad(vW0, rCur, 0, W, 16, 8)
				b.MOMLoad(vW1, rCur, 8, W, 16, 8)
			}
			switch v {
			case MMX:
				for dx := lo; dx <= hi; dx++ {
					i := int64(dx - lo)
					b.U(isa.OpPXor, vT0, vT0, vT0)
					for y := 0; y < 16; y++ {
						o := int64(y) * W
						b.MMXLoad(vB01, rCur, o, 8)
						b.MMXLoad(vB23, rCur, o+8, 8)
						b.MMXLoad(vB45, rRef, o+i, 8)
						b.MMXLoad(vB67, rRef, o+i+8, 8)
						b.U(isa.OpPSadBW, vB45, vB01, vB45)
						b.U(isa.OpPSadBW, vB67, vB23, vB67)
						b.U(isa.OpPAddD, vT0, vT0, vB45)
						b.U(isa.OpPAddD, vT0, vT0, vB67)
					}
					b.MovV2I(rSad, vT0, 0)
					motionSearchUpdateMin(e, rSad, rMin, rPos, rCond, dx)
				}
			case MOM:
				for dx := lo; dx <= hi; dx++ {
					i := int64(dx - lo)
					b.MOMLoad(vB01, rRef, i, W, 16, 8)
					b.MOMLoad(vB23, rRef, i+8, W, 16, 8)
					b.AccClr(isa.A(0))
					b.VSadAcc(isa.A(0), vW0, vB01, 16)
					b.VSadAcc(isa.A(0), vW1, vB23, 16)
					b.AccMov(rSad, isa.A(0))
					motionSearchUpdateMin(e, rSad, rMin, rPos, rCond, dx)
				}
			case MOM3D:
				// One dvload of 24-byte-wide overlapped elements covers
				// the whole horizontal window: candidate dx slices the
				// 3D register at byte offset dx-lo (≤ 7), and the two
				// 8-byte dvmov slices of each candidate reach at most
				// byte 7+16 = 23.
				b.DVLoad(isa.D(0), rRef, 0, W, 16, 3, false, 8)
				for dx := lo; dx <= hi; dx++ {
					b.DVMov(vB01, isa.D(0), 8, 16)  // slice at p, ptr -> p+8
					b.DVMov(vB23, isa.D(0), -7, 16) // slice at p+8, ptr -> p+1
					b.AccClr(isa.A(0))
					b.VSadAcc(isa.A(0), vW0, vB01, 16)
					b.VSadAcc(isa.A(0), vW1, vB23, 16)
					b.AccMov(rSad, isa.A(0))
					motionSearchUpdateMin(e, rSad, rMin, rPos, rCond, dx)
				}
			}

			// Motion compensation: copy the winning candidate block into
			// the reconstruction frame — the store stream that pushes
			// dirty lines (and later their write-backs) through the
			// memory system.
			best := int(e.m.IntVal(rPos))
			e.setBase(rRefB, refA+uint64(y0*cfg.W+x0+best))
			e.setBase(rRecon, reconA+uint64(y0*cfg.W+x0))
			if v == MMX {
				for y := 0; y < 16; y++ {
					o := int64(y) * W
					b.MMXLoad(vT0, rRefB, o, 8)
					b.MMXLoad(vT1, rRefB, o+8, 8)
					b.MMXStore(rRecon, o, vT0, 8)
					b.MMXStore(rRecon, o+8, vT1, 8)
				}
			} else {
				b.MOMLoad(vT0, rRefB, 0, W, 16, 8)
				b.MOMLoad(vT1, rRefB, 8, W, 16, 8)
				b.MOMStore(rRecon, 0, W, vT0, 16, 8)
				b.MOMStore(rRecon, 8, W, vT1, 16, 8)
			}

			dg.u32(uint32(int32(e.m.IntVal(rMin))))
			dg.u32(uint32(int32(best)))
		}
	}
	dg.bytes(e.readBytes(reconA, cfg.W*cfg.H))
	return dg.buf
}

// motionSearchUpdateMin emits the running-minimum update of the
// full-search kernel.
func motionSearchUpdateMin(e *env, rSad, rMin, rPos, rCond isa.Reg, dx int) {
	e.b.Slt(rCond, rSad, rMin)
	if e.b.BrNZ(rCond) {
		e.b.Mov(rMin, rSad)
		e.b.MovImm(rPos, int64(dx))
	}
}

func motionSearchRef(cfg MotionSearchConfig) []byte {
	cur, ref := motionSearchFrames(cfg)
	recon := make([]byte, cfg.W*cfg.H)
	dg := &digest{}
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 * cfg.Step {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 * cfg.Step {
			lo, hi := motionSearchRange(cfg, x0)
			min, pos := int32(1<<30), lo
			for dx := lo; dx <= hi; dx++ {
				var sad int32
				for y := 0; y < 16; y++ {
					for x := 0; x < 16; x++ {
						a := int32(cur.Pix[(y0+y)*cfg.W+x0+x])
						b := int32(ref.Pix[(y0+y)*cfg.W+x0+dx+x])
						if a > b {
							sad += a - b
						} else {
							sad += b - a
						}
					}
				}
				if sad < min {
					min, pos = sad, dx
				}
			}
			for y := 0; y < 16; y++ {
				copy(recon[(y0+y)*cfg.W+x0:(y0+y)*cfg.W+x0+16],
					ref.Pix[(y0+y)*cfg.W+x0+pos:(y0+y)*cfg.W+x0+pos+16])
			}
			dg.u32(uint32(min))
			dg.u32(uint32(int32(pos)))
		}
	}
	dg.bytes(recon)
	return dg.buf
}
