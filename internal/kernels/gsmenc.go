package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// GSMEncConfig sizes the gsmencode workload: per-frame autocorrelation and
// per-subframe long-term-prediction (LTP) lag search, the benchmark where
// successive 40-sample correlation windows overlap by 39 samples — the
// paper's strongest case for third-dimension register reuse (Table 1
// reports an average third-dimension length of 7.7 for gsm).
type GSMEncConfig struct {
	Frames int    // 160-sample speech frames to encode
	Seed   uint64 // content seed
}

// LTP search constants (GSM 06.10 long-term predictor).
const (
	ltpMinLag   = 40
	ltpMaxLag   = 120
	subframeLen = 40
	frameLen    = 160
	acfMaxLag   = 8
	acfSpan     = 152 // correlation span, a multiple of 8 samples
)

// DefaultGSMEncConfig is the experiment-scale workload.
func DefaultGSMEncConfig() GSMEncConfig {
	return GSMEncConfig{Frames: 24, Seed: 0x95195}
}

// SmallGSMEncConfig is a fast configuration for unit tests.
func SmallGSMEncConfig() GSMEncConfig {
	return GSMEncConfig{Frames: 2, Seed: 0x95195}
}

// GSMEncode builds the gsmencode benchmark.
func GSMEncode(cfg GSMEncConfig) Benchmark {
	return Benchmark{
		Name:  "gsmencode",
		Has3D: true,
		run:   func(v Variant, sink trace.Sink) []byte { return gsmencRun(cfg, v, sink) },
		ref:   func() []byte { return gsmencRef(cfg) },
	}
}

// gsmencSamples returns the speech input: one frame of history (so every
// LTP window is in range) plus the frames to encode.
func gsmencSamples(cfg GSMEncConfig) []int16 {
	return media.Speech(frameLen*(cfg.Frames+1), cfg.Seed)
}

func gsmencRun(cfg GSMEncConfig, v Variant, sink trace.Sink) []byte {
	raw := gsmencSamples(cfg)
	e := newEnv(v, sink)

	n := len(raw)
	rawA := e.alloc(2*n, 64)
	e.write16(rawA, raw)
	scaledA := e.alloc(2*n, 64)

	var (
		rRaw    = isa.R(1)
		rScaled = isa.R(2)
		rD      = isa.R(3)
		rDp     = isa.R(4)
		rCorr   = isa.R(5)
		rMax    = isa.R(6)
		rLag    = isa.R(7)
		rCond   = isa.R(8)
		rA      = isa.R(9)
	)
	b := e.b
	e.setBase(rRaw, rawA)
	e.setBase(rScaled, scaledA)

	// Preprocessing: scale samples down 2 bits so 40-sample dot products
	// fit 32-bit μSIMD accumulation (the GSM coder's own scaling stage).
	qwords := n / 4 // 4 samples per 64-bit word; n is a multiple of 4
	if v == MMX {
		for q := 0; q < qwords; q++ {
			b.MMXLoad(vT0, rRaw, int64(8*q), 4)
			b.UImm(isa.OpPSraW, vT0, vT0, 2)
			b.MMXStore(rScaled, int64(8*q), vT0, 4)
		}
	} else {
		for q := 0; q < qwords; q += 16 {
			vl := qwords - q
			if vl > 16 {
				vl = 16
			}
			b.MOMLoad(vT0, rRaw, int64(8*q), 8, vl, 4)
			b.MImm(isa.OpPSraW, vT0, vT0, 2, vl)
			b.MOMStore(rScaled, int64(8*q), 8, vT0, vl, 4)
		}
	}

	dg := &digest{}
	for f := 0; f < cfg.Frames; f++ {
		fb := frameLen + f*frameLen // absolute sample index of the frame

		// Autocorrelation acf[k] = Σ_{i<acfSpan} s[fb+i]*s[fb+i+k].
		e.setBase(rA, scaledA+uint64(2*fb))
		for k := 0; k <= acfMaxLag; k++ {
			b.AccClr(isa.A(1))
			if v == MMX {
				b.U(isa.OpPXor, vT0, vT0, vT0)
				for q := 0; q < acfSpan/4; q++ {
					b.MMXLoad(vB01, rA, int64(8*q), 4)
					b.MMXLoad(vB23, rA, int64(8*q+2*k), 4)
					b.U(isa.OpPMAddWD, vB01, vB01, vB23)
					b.U(isa.OpPAddD, vT0, vT0, vB01)
				}
				gsmencExtractDot(e, rCorr, vT0)
			} else {
				for q := 0; q < acfSpan/4; q += 16 {
					vl := acfSpan/4 - q
					if vl > 16 {
						vl = 16
					}
					b.MOMLoad(vB01, rA, int64(8*q), 8, vl, 4)
					b.MOMLoad(vB23, rA, int64(8*q+2*k), 8, vl, 4)
					b.VMacAcc(isa.A(1), vB01, vB23, vl)
				}
				b.AccMov(rCorr, isa.A(1))
			}
			dg.u64(uint64(e.m.IntVal(rCorr)))
		}

		// LTP lag search per subframe, lags descending 120..40.
		for sf := 0; sf < 4; sf++ {
			sb := fb + sf*subframeLen
			e.setBase(rD, scaledA+uint64(2*sb))
			b.MovImm(rMax, -(1 << 40))
			b.MovImm(rLag, ltpMaxLag)

			switch v {
			case MMX:
				// d resident in v16..v25.
				for w := 0; w < 10; w++ {
					b.MMXLoad(isa.V(16+w), rD, int64(8*w), 4)
				}
				e.setBase(rDp, scaledA+uint64(2*(sb-ltpMaxLag)))
				for lag := ltpMaxLag; lag >= ltpMinLag; lag-- {
					off := int64(2 * (ltpMaxLag - lag))
					b.U(isa.OpPXor, vT0, vT0, vT0)
					for w := 0; w < 10; w++ {
						b.MMXLoad(vT1, rDp, off+int64(8*w), 4)
						b.U(isa.OpPMAddWD, vT1, vT1, isa.V(16+w))
						b.U(isa.OpPAddD, vT0, vT0, vT1)
					}
					gsmencExtractDot(e, rCorr, vT0)
					gsmencUpdateMax(e, rCorr, rMax, rLag, rCond, lag)
				}
			case MOM:
				b.MOMLoad(vW0, rD, 0, 8, 10, 4)
				e.setBase(rDp, scaledA+uint64(2*(sb-ltpMaxLag)))
				for lag := ltpMaxLag; lag >= ltpMinLag; lag-- {
					off := int64(2 * (ltpMaxLag - lag))
					b.MOMLoad(vB01, rDp, off, 8, 10, 4)
					b.AccClr(isa.A(0))
					b.VMacAcc(isa.A(0), vW0, vB01, 10)
					b.AccMov(rCorr, isa.A(0))
					gsmencUpdateMax(e, rCorr, rMax, rLag, rCond, lag)
				}
			case MOM3D:
				b.MOMLoad(vW0, rD, 0, 8, 10, 4)
				// Lag groups: one dvload of 40-byte-wide overlapped
				// elements serves every lag whose window starts within
				// the first 32 bytes (16 lags at 2 bytes per lag). The
				// group is sized so the next group's dvload dispatches
				// within the 128-entry window, preserving the prefetch
				// effect under long L2 latencies (§6.2).
				lag := ltpMaxLag
				for lag >= ltpMinLag {
					gLo := lag - 15
					if gLo < ltpMinLag {
						gLo = ltpMinLag
					}
					e.setBase(rDp, scaledA+uint64(2*(sb-lag)))
					b.DVLoad(isa.D(0), rDp, 0, 8, 10, 5, false, 4)
					for l := lag; l >= gLo; l-- {
						b.DVMov(vB01, isa.D(0), 2, 10)
						b.AccClr(isa.A(0))
						b.VMacAcc(isa.A(0), vW0, vB01, 10)
						b.AccMov(rCorr, isa.A(0))
						gsmencUpdateMax(e, rCorr, rMax, rLag, rCond, l)
					}
					lag = gLo - 1
				}
			}
			dg.u32(uint32(int32(e.m.IntVal(rLag))))
			dg.u64(uint64(e.m.IntVal(rMax)))
		}
	}
	return dg.buf
}

// gsmencExtractDot folds the two dword partial sums of vAcc and moves the
// sign-extended 32-bit total into rDst (the MMX reduction tail).
func gsmencExtractDot(e *env, rDst isa.Reg, vAcc isa.Reg) {
	b := e.b
	b.UImm(isa.OpPSrlQ, vT1, vAcc, 32)
	b.U(isa.OpPAddD, vT1, vAcc, vT1)
	b.MovV2I(rDst, vT1, 0)
	b.Shl(rDst, rDst, 32)
	b.Sra(rDst, rDst, 32)
}

// gsmencUpdateMax emits the running-maximum update of the lag search.
func gsmencUpdateMax(e *env, rCorr, rMax, rLag, rCond isa.Reg, lag int) {
	e.b.Slt(rCond, rMax, rCorr)
	if e.b.BrNZ(rCond) {
		e.b.Mov(rMax, rCorr)
		e.b.MovImm(rLag, int64(lag))
	}
}

func gsmencRef(cfg GSMEncConfig) []byte {
	raw := gsmencSamples(cfg)
	scaled := make([]int16, len(raw))
	for i, s := range raw {
		scaled[i] = s >> 2
	}
	dot := func(a, b []int16, n int) int64 {
		var sum int64
		for i := 0; i < n; i++ {
			sum += int64(a[i]) * int64(b[i])
		}
		return sum
	}
	dg := &digest{}
	for f := 0; f < cfg.Frames; f++ {
		fb := frameLen + f*frameLen
		for k := 0; k <= acfMaxLag; k++ {
			dg.u64(uint64(dot(scaled[fb:], scaled[fb+k:], acfSpan)))
		}
		for sf := 0; sf < 4; sf++ {
			sb := fb + sf*subframeLen
			max, best := int64(-(1 << 40)), ltpMaxLag
			for lag := ltpMaxLag; lag >= ltpMinLag; lag-- {
				c := dot(scaled[sb:], scaled[sb-lag:], subframeLen)
				if max < c {
					max, best = c, lag
				}
			}
			dg.u32(uint32(int32(best)))
			dg.u64(uint64(max))
		}
	}
	return dg.buf
}
