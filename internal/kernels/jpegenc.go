package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// JPEGEncConfig sizes the jpegencode workload: per-8x8-block level shift,
// forward DCT and quantization of a grayscale image. The third memory
// dimension is the row of horizontally adjacent blocks: one 128-byte-wide
// dvload captures up to 16 blocks' pixel rows at once (the paper's Table 1
// reports a maximum third-dimension length of 16 for jpeg encode).
type JPEGEncConfig struct {
	W, H int    // image dimensions (W a multiple of 128, H of 8)
	Seed uint64 // content seed
}

// DefaultJPEGEncConfig is the experiment-scale workload.
func DefaultJPEGEncConfig() JPEGEncConfig {
	return JPEGEncConfig{W: 128, H: 64, Seed: 0x1baba}
}

// SmallJPEGEncConfig is a fast configuration for unit tests.
func SmallJPEGEncConfig() JPEGEncConfig {
	return JPEGEncConfig{W: 128, H: 16, Seed: 0x1baba}
}

// JPEGEncode builds the jpegencode benchmark.
func JPEGEncode(cfg JPEGEncConfig) Benchmark {
	return Benchmark{
		Name:  "jpegencode",
		Has3D: true,
		run:   func(v Variant, sink trace.Sink) []byte { return jpegencRun(cfg, v, sink) },
		ref:   func() []byte { return jpegencRef(cfg) },
	}
}

func jpegencRun(cfg JPEGEncConfig, v Variant, sink trace.Sink) []byte {
	img := media.Gray(cfg.W, cfg.H, cfg.Seed)
	e := newEnv(v, sink)

	imgA := e.alloc(len(img.Pix), 64)
	e.m.Mem.Write(imgA, img.Pix)
	shiftA := e.alloc(blockBytes, 64) // level-shifted 16-bit block
	coefA := e.alloc(blockBytes, 64)
	nBlocks := (cfg.W / 8) * (cfg.H / 8)
	outA := e.alloc(nBlocks*blockBytes, 64)

	e.zeroVec()
	d := e.prepareDCT()
	e.prepareQuant(&jpegQuantTable)

	var (
		rImg   = isa.R(1)
		rShift = isa.R(2)
		rCoef  = isa.R(3)
		rOut   = isa.R(4)
		rBias  = isa.R(5)
	)
	e.setBase(rShift, shiftA)
	e.setBase(rCoef, coefA)
	e.b.MovImm(rBias, 128)

	W := int64(cfg.W)
	b := e.b
	blk := 0
	for y0 := 0; y0+8 <= cfg.H; y0 += 8 {
		if v == MOM3D {
			// One dvload per 128-byte span of the stripe covers 16
			// horizontally adjacent blocks' rows.
			for x0 := 0; x0 < cfg.W; x0 += 128 {
				e.setBase(rImg, imgA+uint64(y0*cfg.W+x0))
				b.DVLoad(isa.D(0), rImg, 0, W, 8, 16, false, 8)
				span := 16
				if cfg.W-x0 < 128 {
					span = (cfg.W - x0) / 8
				}
				for s := 0; s < span; s++ {
					b.DVMov(vB01, isa.D(0), 8, 8) // block s's rows, ptr += 8
					jpegencBlockBody(e, d, rShift, rCoef, rOut, rBias,
						outA+uint64(blk*blockBytes))
					blk++
				}
			}
			continue
		}
		for x0 := 0; x0 < cfg.W; x0 += 8 {
			e.setBase(rImg, imgA+uint64(y0*cfg.W+x0))
			if v == MOM {
				b.MOMLoad(vB01, rImg, 0, W, 8, 8)
				jpegencBlockBody(e, d, rShift, rCoef, rOut, rBias,
					outA+uint64(blk*blockBytes))
			} else {
				// MMX: per-row level shift straight from the image.
				b.SplatW(vB67, rBias)
				for y := 0; y < 8; y++ {
					b.MMXLoad(vB01, rImg, int64(y)*W, 8)
					b.U(isa.OpPUnpckLBW, vT0, vB01, vZero)
					b.U(isa.OpPUnpckHBW, vT1, vB01, vZero)
					b.U(isa.OpPSubW, vT0, vT0, vB67)
					b.U(isa.OpPSubW, vT1, vT1, vB67)
					b.MMXStore(rShift, int64(y*16), vT0, 4)
					b.MMXStore(rShift, int64(y*16+8), vT1, 4)
				}
				d.fdct(rShift, rCoef)
				e.setBase(rOut, outA+uint64(blk*blockBytes))
				e.quant(rCoef, rOut)
			}
			blk++
		}
	}

	dg := &digest{}
	dg.bytes(e.readBytes(outA, nBlocks*blockBytes))
	return dg.buf
}

// jpegencBlockBody emits level shift, FDCT and quantization for the MOM
// variants, starting from the block's pixel rows already in vB01.
func jpegencBlockBody(e *env, d *dctGen, rShift, rCoef, rOut, rBias isa.Reg, outAddr uint64) {
	b := e.b
	b.MSplatW(vB67, rBias, 8)
	b.M(isa.OpPUnpckLBW, vT0, vB01, vZero, 8)
	b.M(isa.OpPUnpckHBW, vT1, vB01, vZero, 8)
	b.M(isa.OpPSubW, vT0, vT0, vB67, 8)
	b.M(isa.OpPSubW, vT1, vT1, vB67, 8)
	b.MOMStore(rShift, 0, 16, vT0, 8, 4)
	b.MOMStore(rShift, 8, 16, vT1, 8, 4)
	d.fdct(rShift, rCoef)
	e.setBase(rOut, outAddr)
	e.quant(rCoef, rOut)
}

func jpegencRef(cfg JPEGEncConfig) []byte {
	img := media.Gray(cfg.W, cfg.H, cfg.Seed)
	recips := quantRecips(&jpegQuantTable)
	var stream []int16
	for y0 := 0; y0+8 <= cfg.H; y0 += 8 {
		for x0 := 0; x0 < cfg.W; x0 += 8 {
			var blk [64]int16
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int16(img.Pix[(y0+y)*cfg.W+x0+x]) - 128
				}
			}
			f := RefFDCT(&blk)
			q := refQuant(&f, &recips)
			stream = append(stream, q[:]...)
		}
	}
	dg := &digest{}
	dg.u16s(stream)
	return dg.buf
}
