package kernels

import "math"

// Fixed-point 8x8 DCT machinery shared by the MPEG-2 and JPEG kernels.
//
// The transform matrix is the orthonormal DCT-II basis
//
//	M[u][x] = c(u)/2 * cos((2x+1) u π / 16),  c(0)=1/√2, c(u>0)=1,
//
// quantized to Q12 (x4096). One pass computes dst = src · Mᵀ with
// per-coefficient rounding ((Σ + 2048) >> 12) and 16-bit saturation —
// exactly what the packed pmaddwd/paddd/psrad/packssdw sequence the
// code generators emit computes. Pass + transpose applied twice yields
// M·A·Mᵀ (the 2D DCT); with the transposed table it yields Mᵀ·A·M (the
// 2D IDCT). The scalar references below share every rounding step with
// the emitted code, so kernel outputs match bit for bit.

const (
	dctScaleBits = 12
	dctRound     = 1 << (dctScaleBits - 1)
	blockBytes   = 128 // 8x8 int16
)

// fdctCoef is the Q12 forward transform matrix; idctCoef its transpose.
var fdctCoef, idctCoef [8][8]int16

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			v := cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			fdctCoef[u][x] = int16(math.Round(v * 4096))
		}
	}
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			idctCoef[u][x] = fdctCoef[x][u]
		}
	}
}

func sat16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// refDCTPass computes dst[y*8+u] = sat16((Σ_x src[y*8+x]*T[u][x] + 2048) >> 12).
func refDCTPass(src *[64]int16, T *[8][8]int16) [64]int16 {
	var dst [64]int16
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var sum int32
			for x := 0; x < 8; x++ {
				sum += int32(src[y*8+x]) * int32(T[u][x])
			}
			dst[y*8+u] = sat16((sum + dctRound) >> dctScaleBits)
		}
	}
	return dst
}

// refTranspose transposes an 8x8 block.
func refTranspose(a *[64]int16) [64]int16 {
	var t [64]int16
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			t[x*8+y] = a[y*8+x]
		}
	}
	return t
}

func refTransform(block *[64]int16, T *[8][8]int16) [64]int16 {
	p1 := refDCTPass(block, T)
	t1 := refTranspose(&p1)
	p2 := refDCTPass(&t1, T)
	return refTranspose(&p2)
}

// RefFDCT is the scalar fixed-point forward 8x8 DCT.
func RefFDCT(block *[64]int16) [64]int16 { return refTransform(block, &fdctCoef) }

// RefIDCT is the scalar fixed-point inverse 8x8 DCT.
func RefIDCT(block *[64]int16) [64]int16 { return refTransform(block, &idctCoef) }

// packedCoefLayout lays a transform table out for the pmaddwd group
// schedule: for u-group g (u = 2g, 2g+1) and x-pair p (x = 2p, 2p+1), the
// quadword at offset (g*4+p)*8 holds words
//
//	[T[2g][2p], T[2g][2p+1], T[2g+1][2p], T[2g+1][2p+1]].
func packedCoefLayout(T *[8][8]int16) []int16 {
	out := make([]int16, 64)
	for g := 0; g < 4; g++ {
		for p := 0; p < 4; p++ {
			base := (g*4 + p) * 4
			out[base+0] = T[2*g][2*p]
			out[base+1] = T[2*g][2*p+1]
			out[base+2] = T[2*g+1][2*p]
			out[base+3] = T[2*g+1][2*p+1]
		}
	}
	return out
}

// Quantization. quant = (coef * recip) >> 16 (pmulhw semantics); dequant =
// low 16 bits of coef * qstep (pmullw semantics). Reciprocals are
// floor(65536/step), which keeps |quant| small enough that dequantization
// never wraps for the value ranges our DCT produces.

// jpegQuantTable is the ISO JPEG Annex K luminance quantization table.
var jpegQuantTable = [64]int16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// mpeg2QuantTable is a flat quantizer (the MPEG-2 non-intra default).
var mpeg2QuantTable = func() [64]int16 {
	var t [64]int16
	for i := range t {
		t[i] = 16
	}
	return t
}()

// quantRecips returns floor(65536/step) per coefficient.
func quantRecips(steps *[64]int16) [64]int16 {
	var r [64]int16
	for i, s := range steps {
		r[i] = int16(65536 / int32(s))
	}
	return r
}

// refQuant applies pmulhw-style quantization.
func refQuant(coefs *[64]int16, recips *[64]int16) [64]int16 {
	var q [64]int16
	for i := range q {
		q[i] = int16((int32(coefs[i]) * int32(recips[i])) >> 16)
	}
	return q
}

// refDequant applies pmullw-style dequantization.
func refDequant(q *[64]int16, steps *[64]int16) [64]int16 {
	var c [64]int16
	for i := range c {
		c[i] = int16(int32(q[i]) * int32(steps[i])) // low 16 bits, as pmullw
	}
	return c
}
