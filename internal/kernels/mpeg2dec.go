package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// MPEG2DecConfig sizes the mpeg2decode workload: per-macroblock coefficient
// dequantization, inverse DCT, and motion compensation (with half-pel
// horizontal interpolation) against a reference frame.
type MPEG2DecConfig struct {
	W, H int    // frame dimensions (multiples of 16)
	Seed uint64 // content seed
}

// DefaultMPEG2DecConfig is the experiment-scale workload.
func DefaultMPEG2DecConfig() MPEG2DecConfig {
	return MPEG2DecConfig{W: 176, H: 96, Seed: 0xDEC0DE}
}

// SmallMPEG2DecConfig is a fast configuration for unit tests.
func SmallMPEG2DecConfig() MPEG2DecConfig {
	return MPEG2DecConfig{W: 48, H: 32, Seed: 0xDEC0DE}
}

// MPEG2Decode builds the mpeg2decode benchmark.
func MPEG2Decode(cfg MPEG2DecConfig) Benchmark {
	return Benchmark{
		Name:  "mpeg2decode",
		Has3D: true,
		run:   func(v Variant, sink trace.Sink) []byte { return mpeg2decRun(cfg, v, sink) },
		ref:   func() []byte { return mpeg2decRef(cfg) },
	}
}

// mv is one macroblock's synthetic motion vector.
type mv struct {
	dx      int
	halfpel bool
}

// mpeg2decInput builds the decoder's input: the reference frame, per-MB
// motion vectors, and the quantized coefficient stream a front-end parser
// would have produced (computed by reference-encoding a noisy successor
// frame).
func mpeg2decInput(cfg MPEG2DecConfig) (ref *media.Frame, mvs []mv, stream []int16) {
	fr := media.VideoSequence(cfg.W, cfg.H, 2, 2, 0, cfg.Seed)
	ref = fr[0]
	cur := fr[1]
	media.AddNoise(cur, 4, cfg.Seed^0x5eed)

	r := media.NewRand(cfg.Seed ^ 0xabcd)
	recips := quantRecips(&mpeg2QuantTable)
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 {
			m := mv{dx: r.Intn(9) - 4, halfpel: r.Intn(2) == 1}
			// Keep the (possibly +1 for half-pel) window inside the frame.
			if x0+m.dx < 0 {
				m.dx = -x0
			}
			limit := cfg.W - 16 - x0
			if m.halfpel {
				limit--
			}
			if m.dx > limit {
				m.dx = limit
			}
			mvs = append(mvs, m)
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					var resid [64]int16
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							p := mcPredict(ref, x0+8*bx+x, y0+8*by+y, m)
							c := int16(cur.Pix[(y0+8*by+y)*cfg.W+x0+8*bx+x])
							resid[y*8+x] = c - int16(p)
						}
					}
					f := RefFDCT(&resid)
					q := refQuant(&f, &recips)
					stream = append(stream, q[:]...)
				}
			}
		}
	}
	return ref, mvs, stream
}

// mcPredict is the half-pel prediction sample: avg rounding up, as pavgb.
func mcPredict(ref *media.Frame, x, y int, m mv) uint8 {
	a := ref.Pix[y*ref.Stride+x+m.dx]
	if !m.halfpel {
		return a
	}
	b := ref.Pix[y*ref.Stride+x+m.dx+1]
	return uint8((uint16(a) + uint16(b) + 1) >> 1)
}

func mpeg2decRun(cfg MPEG2DecConfig, v Variant, sink trace.Sink) []byte {
	ref, mvs, stream := mpeg2decInput(cfg)
	e := newEnv(v, sink)

	refA := e.alloc(len(ref.Pix), 64)
	e.m.Mem.Write(refA, ref.Pix)
	streamA := e.alloc(len(stream)*2, 64)
	e.write16(streamA, stream)
	dqA := e.alloc(blockBytes, 64)    // dequantized coefficients
	residA := e.alloc(blockBytes, 64) // IDCT output
	outA := e.alloc(cfg.W*cfg.H, 64)  // decoded frame

	e.zeroVec()
	d := e.prepareDCT()
	e.prepareQuant(&mpeg2QuantTable)

	var (
		rStream = isa.R(1)
		rDq     = isa.R(2)
		rRes    = isa.R(3)
		rPred   = isa.R(4)
		rOut    = isa.R(5)
	)
	e.setBase(rDq, dqA)
	e.setBase(rRes, residA)

	W := int64(cfg.W)
	mb := 0
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 {
			m := mvs[mb]
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					blk := (mb*4 + by*2 + bx) * 64
					e.setBase(rStream, streamA+uint64(blk*2))
					e.dequant(rStream, rDq)
					d.idct(rDq, rRes)
					e.setBase(rPred, refA+uint64((y0+8*by)*cfg.W+x0+8*bx+m.dx))
					e.setBase(rOut, outA+uint64((y0+8*by)*cfg.W+x0+8*bx))
					emitMCAdd(e, rPred, rRes, rOut, W, m.halfpel)
				}
			}
			mb++
		}
	}

	dg := &digest{}
	dg.bytes(e.readBytes(outA, cfg.W*cfg.H))
	return dg.buf
}

// emitMCAdd emits prediction (optionally half-pel averaged), residual add
// with unsigned saturation, and the store of one reconstructed 8x8 block.
func emitMCAdd(e *env, rPred, rRes, rOut isa.Reg, W int64, halfpel bool) {
	b := e.b
	if e.v == MMX {
		for y := 0; y < 8; y++ {
			o := int64(y) * W
			b.MMXLoad(vB01, rPred, o, 8)
			if halfpel {
				b.MMXLoad(vB23, rPred, o+1, 8)
				b.U(isa.OpPAvgB, vB01, vB01, vB23)
			}
			b.U(isa.OpPUnpckLBW, vT0, vB01, vZero)
			b.U(isa.OpPUnpckHBW, vT1, vB01, vZero)
			b.MMXLoad(vB45, rRes, int64(y*16), 4)
			b.MMXLoad(vB67, rRes, int64(y*16+8), 4)
			b.U(isa.OpPAddW, vT0, vT0, vB45)
			b.U(isa.OpPAddW, vT1, vT1, vB67)
			b.U(isa.OpPackUSWB, vT0, vT0, vT1)
			b.MMXStore(rOut, o, vT0, 8)
		}
		return
	}
	switch {
	case e.v == MOM3D && halfpel:
		// The two half-pel streams (offsets 0 and +1) overlap: one dvload
		// of 16-byte rows serves both slices.
		b.DVLoad(isa.D(0), rPred, 0, W, 8, 2, false, 8)
		b.DVMov(vB01, isa.D(0), 1, 8)  // slice at 0, ptr -> 1
		b.DVMov(vB23, isa.D(0), -1, 8) // slice at 1, ptr -> 0
		b.M(isa.OpPAvgB, vB01, vB01, vB23, 8)
	case halfpel:
		b.MOMLoad(vB01, rPred, 0, W, 8, 8)
		b.MOMLoad(vB23, rPred, 1, W, 8, 8)
		b.M(isa.OpPAvgB, vB01, vB01, vB23, 8)
	default:
		b.MOMLoad(vB01, rPred, 0, W, 8, 8)
	}
	b.M(isa.OpPUnpckLBW, vT0, vB01, vZero, 8)
	b.M(isa.OpPUnpckHBW, vT1, vB01, vZero, 8)
	b.MOMLoad(vB45, rRes, 0, 16, 8, 4)
	b.MOMLoad(vB67, rRes, 8, 16, 8, 4)
	b.M(isa.OpPAddW, vT0, vT0, vB45, 8)
	b.M(isa.OpPAddW, vT1, vT1, vB67, 8)
	b.M(isa.OpPackUSWB, vT0, vT0, vT1, 8)
	b.MOMStore(rOut, 0, W, vT0, 8, 8)
}

func mpeg2decRef(cfg MPEG2DecConfig) []byte {
	ref, mvs, stream := mpeg2decInput(cfg)
	out := make([]byte, cfg.W*cfg.H)
	mb := 0
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 {
			m := mvs[mb]
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					blk := (mb*4 + by*2 + bx) * 64
					var q [64]int16
					copy(q[:], stream[blk:blk+64])
					dq := refDequant(&q, &mpeg2QuantTable)
					resid := RefIDCT(&dq)
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							p := mcPredict(ref, x0+8*bx+x, y0+8*by+y, m)
							s := int32(p) + int32(resid[y*8+x])
							if s < 0 {
								s = 0
							}
							if s > 255 {
								s = 255
							}
							out[(y0+8*by+y)*cfg.W+x0+8*bx+x] = uint8(s)
						}
					}
				}
			}
			mb++
		}
	}
	dg := &digest{}
	dg.bytes(out)
	return dg.buf
}
