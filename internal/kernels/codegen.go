package kernels

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// cg dispatches the μSIMD-style code shared between variants: under MMX it
// emits KindUSIMD operations and L1 μSIMD memory accesses; under MOM and
// MOM3D it emits the same operations as VL=1 MOM instructions, whose
// memory accesses travel through the L2 vector port (the MOM cache
// hierarchy of §5.3 routes all multimedia memory around the L1).
type cg struct {
	b *prog.Builder
	v Variant
}

// ld emits a 64-bit multimedia load from base+off.
func (c *cg) ld(dst, base isa.Reg, off int64, pack int) {
	if c.v == MMX {
		c.b.MMXLoad(dst, base, off, pack)
	} else {
		c.b.MOMLoad(dst, base, off, 8, 1, pack)
	}
}

// st emits a 64-bit multimedia store to base+off.
func (c *cg) st(base isa.Reg, off int64, src isa.Reg, pack int) {
	if c.v == MMX {
		c.b.MMXStore(base, off, src, pack)
	} else {
		c.b.MOMStore(base, off, 8, src, 1, pack)
	}
}

// op emits a two-source packed operation.
func (c *cg) op(op isa.Op, dst, s1, s2 isa.Reg) {
	if c.v == MMX {
		c.b.U(op, dst, s1, s2)
	} else {
		c.b.M(op, dst, s1, s2, 1)
	}
}

// opi emits a packed operation with an immediate.
func (c *cg) opi(op isa.Op, dst, s1 isa.Reg, imm int64) {
	if c.v == MMX {
		c.b.UImm(op, dst, s1, imm)
	} else {
		c.b.MImm(op, dst, s1, imm, 1)
	}
}

// splat broadcasts the low 16 bits of a scalar register.
func (c *cg) splat(dst, src isa.Reg) {
	if c.v == MMX {
		c.b.SplatW(dst, src)
	} else {
		c.b.MSplatW(dst, src, isa.MOMElems)
	}
}

// Vector register assignments for the shared code generators (see the
// package comment for the full convention).
var (
	vZero  = isa.V(0)
	vB01   = isa.V(1)
	vB23   = isa.V(2)
	vB45   = isa.V(3)
	vB67   = isa.V(4)
	vT0    = isa.V(5)
	vT1    = isa.V(6)
	vRound = isa.V(7)
	vC0    = isa.V(8)
	vC1    = isa.V(9)
	vC2    = isa.V(10)
	vC3    = isa.V(11)
	vW0    = isa.V(12)
	vW1    = isa.V(13)
	vQTab  = isa.V(14) // MOM variants: resident quant reciprocal table
	vDQTab = isa.V(15) // MOM variants: resident dequant step table
)

// Scalar register assignments for the table bases.
var (
	rFCoef  = isa.R(20) // packed FDCT coefficient table
	rICoef  = isa.R(21) // packed IDCT coefficient table
	rRound  = isa.R(22) // dword-pair rounding constant
	rTmpA   = isa.R(23) // DCT intermediate block A
	rTmpB   = isa.R(24) // DCT intermediate block B
	rQuant  = isa.R(25) // quant reciprocal table
	rDQuant = isa.R(26) // dequant step table
)

// mmxCoefBase is the first of the 16 resident coefficient registers used
// by the MMX DCT pass (v16..v31).
const mmxCoefBase = 16

// dctGen emits 8x8 block transforms. One instance serves a whole kernel
// run; prepare must be called once before the first transform.
type dctGen struct {
	e *env
	// mmxResident identifies which packed table currently occupies
	// v16..v31 under the MMX variant (0 none, 'f' fdct, 'i' idct).
	mmxResident byte
}

// prepareDCT allocates and initializes the table storage shared by all
// DCT users: packed coefficient layouts, the rounding constant, and the
// two intermediate block buffers. It loads the rounding constant into
// vRound, where it stays resident.
func (e *env) prepareDCT() *dctGen {
	fc := packedCoefLayout(&fdctCoef)
	ic := packedCoefLayout(&idctCoef)
	fAddr := e.alloc(blockBytes, 8)
	iAddr := e.alloc(blockBytes, 8)
	e.write16(fAddr, fc)
	e.write16(iAddr, ic)
	rAddr := e.alloc(8, 8)
	e.m.Mem.WriteU32(rAddr, dctRound)
	e.m.Mem.WriteU32(rAddr+4, dctRound)
	tA := e.alloc(blockBytes, 8)
	tB := e.alloc(blockBytes, 8)

	e.setBase(rFCoef, fAddr)
	e.setBase(rICoef, iAddr)
	e.setBase(rRound, rAddr)
	e.setBase(rTmpA, tA)
	e.setBase(rTmpB, tB)

	if e.v == MMX {
		e.b.MMXLoad(vRound, rRound, 0, 2)
	} else {
		// Broadcast the rounding pair across all elements.
		e.b.MOMLoad(vRound, rRound, 0, 0, isa.MOMElems, 2)
	}
	return &dctGen{e: e}
}

// loadMMXCoefs makes the packed table at rCoef resident in v16..v31.
func (d *dctGen) loadMMXCoefs(rCoef isa.Reg, tag byte) {
	if d.mmxResident == tag {
		return
	}
	for i := 0; i < 16; i++ {
		d.e.b.MMXLoad(isa.V(mmxCoefBase+i), rCoef, int64(8*i), 4)
	}
	d.mmxResident = tag
}

// pass emits one transform pass: dst[y][u] = sat16((Σ_x src[y][x]*T[u][x]
// + 2048) >> 12) for the 8x8 int16 block at rSrc (row stride 16 bytes),
// writing rDst. The MMX form iterates rows; the MOM form vectorizes the
// row dimension with VL=8.
func (d *dctGen) pass(rSrc, rDst, rCoef isa.Reg) {
	c := d.e.c
	if d.e.v == MMX {
		for y := 0; y < 8; y++ {
			off := int64(y * 16)
			c.ld(vT0, rSrc, off, 4)
			c.ld(vT1, rSrc, off+8, 4)
			c.opi(isa.OpPShufW, vB01, vT0, 0x44)
			c.opi(isa.OpPShufW, vB23, vT0, 0xee)
			c.opi(isa.OpPShufW, vB45, vT1, 0x44)
			c.opi(isa.OpPShufW, vB67, vT1, 0xee)
			for g := 0; g < 4; g++ {
				cr := func(p int) isa.Reg { return isa.V(mmxCoefBase + g*4 + p) }
				acc := vW0
				if g%2 == 1 {
					acc = vW1
				}
				c.op(isa.OpPMAddWD, acc, vB01, cr(0))
				c.op(isa.OpPMAddWD, vT0, vB23, cr(1))
				c.op(isa.OpPAddD, acc, acc, vT0)
				c.op(isa.OpPMAddWD, vT0, vB45, cr(2))
				c.op(isa.OpPAddD, acc, acc, vT0)
				c.op(isa.OpPMAddWD, vT0, vB67, cr(3))
				c.op(isa.OpPAddD, acc, acc, vT0)
				c.op(isa.OpPAddD, acc, acc, vRound)
				c.opi(isa.OpPSraD, acc, acc, dctScaleBits)
				if g%2 == 1 {
					c.op(isa.OpPackSSDW, vW0, vW0, vW1)
					c.st(rDst, off+int64(g/2)*8, vW0, 4)
				}
			}
		}
		return
	}
	// MOM form: elements are rows.
	b := d.e.b
	b.MOMLoad(vT0, rSrc, 0, 16, 8, 4)
	b.MOMLoad(vT1, rSrc, 8, 16, 8, 4)
	b.MImm(isa.OpPShufW, vB01, vT0, 0x44, 8)
	b.MImm(isa.OpPShufW, vB23, vT0, 0xee, 8)
	b.MImm(isa.OpPShufW, vB45, vT1, 0x44, 8)
	b.MImm(isa.OpPShufW, vB67, vT1, 0xee, 8)
	for g := 0; g < 4; g++ {
		// Broadcast the four coefficient quadwords for this u-group.
		for p := 0; p < 4; p++ {
			b.MOMLoad(isa.V(vC0.Index()+p), rCoef, int64((g*4+p)*8), 0, 8, 4)
		}
		acc := vW0
		if g%2 == 1 {
			acc = vW1
		}
		b.M(isa.OpPMAddWD, acc, vB01, vC0, 8)
		b.M(isa.OpPMAddWD, vT0, vB23, vC1, 8)
		b.M(isa.OpPAddD, acc, acc, vT0, 8)
		b.M(isa.OpPMAddWD, vT0, vB45, vC2, 8)
		b.M(isa.OpPAddD, acc, acc, vT0, 8)
		b.M(isa.OpPMAddWD, vT0, vB67, vC3, 8)
		b.M(isa.OpPAddD, acc, acc, vT0, 8)
		b.M(isa.OpPAddD, acc, acc, vRound, 8)
		b.MImm(isa.OpPSraD, acc, acc, dctScaleBits, 8)
		if g%2 == 1 {
			b.M(isa.OpPackSSDW, vW0, vW0, vW1, 8)
			b.MOMStore(rDst, int64(g/2)*8, 16, vW0, 8, 4)
		}
	}
}

// transpose emits an 8x8 int16 transpose from rSrc to rDst (distinct
// buffers). The MMX form uses four 4x4 punpck tile networks on the four
// parallel μSIMD units. Under MOM, where μSIMD-style work issues one per
// cycle on the single vector unit and every 64-bit temporary would cross
// the L2 vector port, the better schedule moves the 64 halfwords through
// the otherwise idle scalar pipes and the L1 (a standard strength
// reduction for this ISA; four rotating temporaries keep the loads
// pipelined).
func (d *dctGen) transpose(rSrc, rDst isa.Reg) {
	if d.e.v != MMX {
		b := d.e.b
		tmp := [4]isa.Reg{isa.R(11), isa.R(12), isa.R(13), isa.R(14)}
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				r := tmp[(y*8+x)%4]
				b.LoadS(r, rSrc, int64(y*16+x*2), 2)
				b.Store(rDst, int64(x*16+y*2), r, 2)
			}
		}
		return
	}
	c := d.e.c
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for r := 0; r < 4; r++ {
				c.ld(isa.V(1+r), rSrc, int64((4*i+r)*16+j*8), 4)
			}
			c.op(isa.OpPUnpckLWD, vT0, vB01, vB23)
			c.op(isa.OpPUnpckHWD, vT1, vB01, vB23)
			c.op(isa.OpPUnpckLWD, vB01, vB45, vB67)
			c.op(isa.OpPUnpckHWD, vB23, vB45, vB67)
			c.op(isa.OpPUnpckLDQ, vB45, vT0, vB01)
			c.op(isa.OpPUnpckHDQ, vB67, vT0, vB01)
			c.op(isa.OpPUnpckLDQ, vT0, vT1, vB23)
			c.op(isa.OpPUnpckHDQ, vT1, vT1, vB23)
			outs := [4]isa.Reg{vB45, vB67, vT0, vT1}
			for r := 0; r < 4; r++ {
				c.st(rDst, int64((4*j+r)*16+i*8), outs[r], 4)
			}
		}
	}
}

// fdct emits the full forward transform of the block at rSrc into rDst.
func (d *dctGen) fdct(rSrc, rDst isa.Reg) { d.transform(rSrc, rDst, rFCoef, 'f') }

// idct emits the full inverse transform of the block at rSrc into rDst.
func (d *dctGen) idct(rSrc, rDst isa.Reg) { d.transform(rSrc, rDst, rICoef, 'i') }

func (d *dctGen) transform(rSrc, rDst, rCoef isa.Reg, tag byte) {
	if d.e.v == MMX {
		d.loadMMXCoefs(rCoef, tag)
	}
	d.pass(rSrc, rTmpA, rCoef)
	d.transpose(rTmpA, rTmpB)
	d.pass(rTmpB, rTmpA, rCoef)
	d.transpose(rTmpA, rDst)
}

// prepareQuant installs the quantization tables: reciprocals at rQuant,
// steps at rDQuant; under MOM variants both become resident MOM registers
// (a whole 8x8 table fits one 16-element register).
func (e *env) prepareQuant(steps *[64]int16) {
	recips := quantRecips(steps)
	qAddr := e.alloc(blockBytes, 8)
	dqAddr := e.alloc(blockBytes, 8)
	e.write16(qAddr, recips[:])
	e.write16(dqAddr, steps[:])
	e.setBase(rQuant, qAddr)
	e.setBase(rDQuant, dqAddr)
	if e.v != MMX {
		e.b.MOMLoad(vQTab, rQuant, 0, 8, 16, 4)
		e.b.MOMLoad(vDQTab, rDQuant, 0, 8, 16, 4)
	}
}

// quant emits pmulhw quantization of the block at rSrc into rDst.
func (e *env) quant(rSrc, rDst isa.Reg) {
	if e.v == MMX {
		for i := 0; i < 16; i++ {
			off := int64(8 * i)
			e.b.MMXLoad(vT0, rSrc, off, 4)
			e.b.MMXLoad(vT1, rQuant, off, 4)
			e.b.U(isa.OpPMulhW, vT0, vT0, vT1)
			e.b.MMXStore(rDst, off, vT0, 4)
		}
		return
	}
	e.b.MOMLoad(vT0, rSrc, 0, 8, 16, 4)
	e.b.M(isa.OpPMulhW, vT0, vT0, vQTab, 16)
	e.b.MOMStore(rDst, 0, 8, vT0, 16, 4)
}

// dequant emits pmullw dequantization of the block at rSrc into rDst.
func (e *env) dequant(rSrc, rDst isa.Reg) {
	if e.v == MMX {
		for i := 0; i < 16; i++ {
			off := int64(8 * i)
			e.b.MMXLoad(vT0, rSrc, off, 4)
			e.b.MMXLoad(vT1, rDQuant, off, 4)
			e.b.U(isa.OpPMullW, vT0, vT0, vT1)
			e.b.MMXStore(rDst, off, vT0, 4)
		}
		return
	}
	e.b.MOMLoad(vT0, rSrc, 0, 8, 16, 4)
	e.b.M(isa.OpPMullW, vT0, vT0, vDQTab, 16)
	e.b.MOMStore(rDst, 0, 8, vT0, 16, 4)
}

// zeroVec clears v0 across all elements; kernels that use unpacking call
// it once at the start.
func (e *env) zeroVec() {
	if e.v == MMX {
		e.b.U(isa.OpPXor, vZero, vZero, vZero)
	} else {
		e.b.M(isa.OpPXor, vZero, vZero, vZero, isa.MOMElems)
	}
}
