package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// MPEG2EncConfig sizes the mpeg2encode workload: full-search motion
// estimation over horizontal candidates (the paper's Figure 1/4 kernel),
// followed by residual computation, forward DCT and quantization of every
// macroblock.
type MPEG2EncConfig struct {
	W, H  int    // luminance frame dimensions (multiples of 16)
	Cands int    // number of horizontal search candidates per row (≤ 25)
	Rows  int    // number of candidate rows (vertical refinement)
	Seed  uint64 // content seed
}

// DefaultMPEG2EncConfig is the experiment-scale workload.
func DefaultMPEG2EncConfig() MPEG2EncConfig {
	return MPEG2EncConfig{W: 176, H: 80, Cands: 20, Rows: 2, Seed: 0xC0FFEE}
}

// SmallMPEG2EncConfig is a fast configuration for unit tests. It keeps
// the full-width candidate search so motion estimation still dominates,
// as it does at experiment scale.
func SmallMPEG2EncConfig() MPEG2EncConfig {
	return MPEG2EncConfig{W: 64, H: 32, Cands: 20, Rows: 2, Seed: 0xC0FFEE}
}

// MPEG2Encode builds the mpeg2encode benchmark.
func MPEG2Encode(cfg MPEG2EncConfig) Benchmark {
	return Benchmark{
		Name:  "mpeg2encode",
		Has3D: true,
		run:   func(v Variant, sink trace.Sink) []byte { return mpeg2encRun(cfg, v, sink) },
		ref:   func() []byte { return mpeg2encRef(cfg) },
	}
}

func mpeg2encFrames(cfg MPEG2EncConfig) (cur, ref *media.Frame) {
	fr := media.VideoSequence(cfg.W, cfg.H, 2, 3, 0, cfg.Seed)
	ref, cur = fr[0], fr[1]
	media.AddNoise(cur, 5, cfg.Seed^0x5eed)
	return cur, ref
}

// searchRange returns the candidate displacement window [lo, hi] for a
// macroblock at x0, clipped so every candidate block stays in the frame.
func searchRange(cfg MPEG2EncConfig, x0 int) (lo, hi int) {
	lo = -cfg.Cands / 2
	hi = lo + cfg.Cands - 1
	if lo < -x0 {
		lo = -x0
	}
	if hi > cfg.W-16-x0 {
		hi = cfg.W - 16 - x0
	}
	return lo, hi
}

func mpeg2encRun(cfg MPEG2EncConfig, v Variant, sink trace.Sink) []byte {
	cur, ref := mpeg2encFrames(cfg)
	e := newEnv(v, sink)

	curA := e.alloc(len(cur.Pix), 64)
	refA := e.alloc(len(ref.Pix), 64)
	e.m.Mem.Write(curA, cur.Pix)
	e.m.Mem.Write(refA, ref.Pix)
	residA := e.alloc(blockBytes, 64)
	coefA := e.alloc(blockBytes, 64)
	nMB := (cfg.W / 16) * (cfg.H / 16)
	outA := e.alloc(nMB*4*blockBytes, 64)

	e.zeroVec()
	d := e.prepareDCT()
	e.prepareQuant(&mpeg2QuantTable)

	var (
		rCur  = isa.R(1)
		rRef  = isa.R(2)
		rRes  = isa.R(3)
		rCoef = isa.R(4)
		rOut  = isa.R(5)
		rSad  = isa.R(6)
		rMin  = isa.R(7)
		rPos  = isa.R(8)
		rCond = isa.R(9)
		rPosY = isa.R(10)
	)
	e.setBase(rRes, residA)
	e.setBase(rCoef, coefA)

	dg := &digest{}
	W := int64(cfg.W)
	b := e.b
	mb := 0
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 {
			lo, hi := searchRange(cfg, x0)
			maxDy := cfg.Rows - 1
			if y0+16+maxDy > cfg.H {
				maxDy = cfg.H - 16 - y0
			}
			e.setBase(rCur, curA+uint64(y0*cfg.W+x0))
			b.MovImm(rMin, 1<<30)
			b.MovImm(rPos, int64(lo))
			b.MovImm(rPosY, 0)

			if v != MMX {
				b.MOMLoad(vW0, rCur, 0, W, 16, 8)
				b.MOMLoad(vW1, rCur, 8, W, 16, 8)
			}
			for dy := 0; dy <= maxDy; dy++ {
				e.setBase(rRef, refA+uint64((y0+dy)*cfg.W+x0+lo))
				switch v {
				case MMX:
					for dx := lo; dx <= hi; dx++ {
						i := int64(dx - lo)
						b.U(isa.OpPXor, vT0, vT0, vT0)
						for y := 0; y < 16; y++ {
							o := int64(y) * W
							b.MMXLoad(vB01, rCur, o, 8)
							b.MMXLoad(vB23, rCur, o+8, 8)
							b.MMXLoad(vB45, rRef, o+i, 8)
							b.MMXLoad(vB67, rRef, o+i+8, 8)
							b.U(isa.OpPSadBW, vB45, vB01, vB45)
							b.U(isa.OpPSadBW, vB67, vB23, vB67)
							b.U(isa.OpPAddD, vT0, vT0, vB45)
							b.U(isa.OpPAddD, vT0, vT0, vB67)
						}
						b.MovV2I(rSad, vT0, 0)
						mpeg2encUpdateMin(e, rSad, rMin, rPos, rPosY, rCond, dx, dy)
					}
				case MOM:
					for dx := lo; dx <= hi; dx++ {
						i := int64(dx - lo)
						b.MOMLoad(vB01, rRef, i, W, 16, 8)
						b.MOMLoad(vB23, rRef, i+8, W, 16, 8)
						b.AccClr(isa.A(0))
						b.VSadAcc(isa.A(0), vW0, vB01, 16)
						b.VSadAcc(isa.A(0), vW1, vB23, 16)
						b.AccMov(rSad, isa.A(0))
						mpeg2encUpdateMin(e, rSad, rMin, rPos, rPosY, rCond, dx, dy)
					}
				case MOM3D:
					// One dvload per candidate row captures the whole
					// horizontal window: 16 rows of 40 bytes cover
					// (hi-lo)+16 <= 35 bytes of block data.
					b.DVLoad(isa.D(0), rRef, 0, W, 16, 5, false, 8)
					for dx := lo; dx <= hi; dx++ {
						b.DVMov(vB01, isa.D(0), 8, 16)  // slice at p, ptr -> p+8
						b.DVMov(vB23, isa.D(0), -7, 16) // slice at p+8, ptr -> p+1
						b.AccClr(isa.A(0))
						b.VSadAcc(isa.A(0), vW0, vB01, 16)
						b.VSadAcc(isa.A(0), vW1, vB23, 16)
						b.AccMov(rSad, isa.A(0))
						mpeg2encUpdateMin(e, rSad, rMin, rPos, rPosY, rCond, dx, dy)
					}
				}
			}

			// Residual coding of the four 8x8 luminance blocks against
			// the best candidate.
			bestDx := int(e.m.IntVal(rPos))
			bestDy := int(e.m.IntVal(rPosY))
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					cb := curA + uint64((y0+8*by)*cfg.W+x0+8*bx)
					rb := refA + uint64((y0+bestDy+8*by)*cfg.W+x0+bestDx+8*bx)
					e.setBase(rCur, cb)
					e.setBase(rRef, rb)
					emitResidual(e, rCur, rRef, rRes, W)
					d.fdct(rRes, rCoef)
					e.setBase(rOut, outA+uint64((mb*4+by*2+bx)*blockBytes))
					e.quant(rCoef, rOut)
				}
			}
			dg.u32(uint32(int32(e.m.IntVal(rMin))))
			dg.u32(uint32(int32(bestDx)))
			dg.u32(uint32(int32(bestDy)))
			mb++
		}
	}
	dg.bytes(e.readBytes(outA, nMB*4*blockBytes))
	return dg.buf
}

// mpeg2encUpdateMin emits the running-minimum update of the paper's
// full-search kernel: a compare, a conditional branch, and (when taken)
// the bookkeeping of the new minimum.
func mpeg2encUpdateMin(e *env, rSad, rMin, rPos, rPosY, rCond isa.Reg, dx, dy int) {
	e.b.Slt(rCond, rSad, rMin)
	if e.b.BrNZ(rCond) {
		e.b.Mov(rMin, rSad)
		e.b.MovImm(rPos, int64(dx))
		e.b.MovImm(rPosY, int64(dy))
	}
}

// emitResidual emits cur - ref of one 8x8 block (byte rows at stride W)
// into the 16-bit residual buffer at rRes.
func emitResidual(e *env, rCur, rRef, rRes isa.Reg, W int64) {
	b := e.b
	if e.v == MMX {
		for y := 0; y < 8; y++ {
			o := int64(y) * W
			b.MMXLoad(vB01, rCur, o, 8)
			b.MMXLoad(vB23, rRef, o, 8)
			b.U(isa.OpPUnpckLBW, vT0, vB01, vZero)
			b.U(isa.OpPUnpckHBW, vT1, vB01, vZero)
			b.U(isa.OpPUnpckLBW, vB45, vB23, vZero)
			b.U(isa.OpPUnpckHBW, vB67, vB23, vZero)
			b.U(isa.OpPSubW, vT0, vT0, vB45)
			b.U(isa.OpPSubW, vT1, vT1, vB67)
			b.MMXStore(rRes, int64(y*16), vT0, 4)
			b.MMXStore(rRes, int64(y*16+8), vT1, 4)
		}
		return
	}
	b.MOMLoad(vB01, rCur, 0, W, 8, 8)
	b.MOMLoad(vB23, rRef, 0, W, 8, 8)
	b.M(isa.OpPUnpckLBW, vT0, vB01, vZero, 8)
	b.M(isa.OpPUnpckHBW, vT1, vB01, vZero, 8)
	b.M(isa.OpPUnpckLBW, vB45, vB23, vZero, 8)
	b.M(isa.OpPUnpckHBW, vB67, vB23, vZero, 8)
	b.M(isa.OpPSubW, vT0, vT0, vB45, 8)
	b.M(isa.OpPSubW, vT1, vT1, vB67, 8)
	b.MOMStore(rRes, 0, 16, vT0, 8, 4)
	b.MOMStore(rRes, 8, 16, vT1, 8, 4)
}

func mpeg2encRef(cfg MPEG2EncConfig) []byte {
	cur, ref := mpeg2encFrames(cfg)
	recips := quantRecips(&mpeg2QuantTable)
	dg := &digest{}
	var stream []int16
	for y0 := 0; y0+16 <= cfg.H; y0 += 16 {
		for x0 := 0; x0+16 <= cfg.W; x0 += 16 {
			lo, hi := searchRange(cfg, x0)
			maxDy := cfg.Rows - 1
			if y0+16+maxDy > cfg.H {
				maxDy = cfg.H - 16 - y0
			}
			min, pos, posY := int32(1<<30), lo, 0
			for dy := 0; dy <= maxDy; dy++ {
				for dx := lo; dx <= hi; dx++ {
					var sad int32
					for y := 0; y < 16; y++ {
						for x := 0; x < 16; x++ {
							a := int32(cur.Pix[(y0+y)*cfg.W+x0+x])
							b := int32(ref.Pix[(y0+dy+y)*cfg.W+x0+dx+x])
							if a > b {
								sad += a - b
							} else {
								sad += b - a
							}
						}
					}
					if sad < min {
						min, pos, posY = sad, dx, dy
					}
				}
			}
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					var resid [64]int16
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							c := int16(cur.Pix[(y0+8*by+y)*cfg.W+x0+8*bx+x])
							r := int16(ref.Pix[(y0+posY+8*by+y)*cfg.W+x0+pos+8*bx+x])
							resid[y*8+x] = c - r
						}
					}
					f := RefFDCT(&resid)
					q := refQuant(&f, &recips)
					stream = append(stream, q[:]...)
				}
			}
			dg.u32(uint32(min))
			dg.u32(uint32(int32(pos)))
			dg.u32(uint32(int32(posY)))
		}
	}
	dg.u16s(stream)
	return dg.buf
}
