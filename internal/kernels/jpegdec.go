package kernels

import (
	"repro/internal/isa"
	"repro/internal/media"
	"repro/internal/trace"
)

// JPEGDecConfig sizes the jpegdecode workload: per-block dequantization,
// inverse DCT, level unshift, and a horizontal 2x upsampling pass over the
// reconstructed image. The memory streams here are wide and consecutive
// (the coefficient stream and the upsampling rows), which is why the paper
// reports the longest second-dimension vector lengths (15.9) and no
// exploitable third dimension for this benchmark: the MOM3D variant is
// identical to MOM.
type JPEGDecConfig struct {
	W, H int    // image dimensions (W a multiple of 8, H of 8)
	Seed uint64 // content seed
}

// DefaultJPEGDecConfig is the experiment-scale workload.
func DefaultJPEGDecConfig() JPEGDecConfig {
	return JPEGDecConfig{W: 128, H: 64, Seed: 0x0dec}
}

// SmallJPEGDecConfig is a fast configuration for unit tests.
func SmallJPEGDecConfig() JPEGDecConfig {
	return JPEGDecConfig{W: 64, H: 16, Seed: 0x0dec}
}

// JPEGDecode builds the jpegdecode benchmark.
func JPEGDecode(cfg JPEGDecConfig) Benchmark {
	return Benchmark{
		Name:  "jpegdecode",
		Has3D: false, // no suitable 3D memory patterns (paper §5.1)
		run:   func(v Variant, sink trace.Sink) []byte { return jpegdecRun(cfg, v, sink) },
		ref:   func() []byte { return jpegdecRef(cfg) },
	}
}

// jpegdecInput reference-encodes a synthetic image into the quantized
// coefficient stream the decoder consumes.
func jpegdecInput(cfg JPEGDecConfig) []int16 {
	img := media.Gray(cfg.W, cfg.H, cfg.Seed)
	recips := quantRecips(&jpegQuantTable)
	var stream []int16
	for y0 := 0; y0+8 <= cfg.H; y0 += 8 {
		for x0 := 0; x0 < cfg.W; x0 += 8 {
			var blk [64]int16
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int16(img.Pix[(y0+y)*cfg.W+x0+x]) - 128
				}
			}
			f := RefFDCT(&blk)
			q := refQuant(&f, &recips)
			stream = append(stream, q[:]...)
		}
	}
	return stream
}

func jpegdecRun(cfg JPEGDecConfig, v Variant, sink trace.Sink) []byte {
	if v == MOM3D {
		v = MOM // no 3D patterns: the MOM3D build is the plain MOM code
	}
	stream := jpegdecInput(cfg)
	e := newEnv(v, sink)

	streamA := e.alloc(len(stream)*2, 64)
	e.write16(streamA, stream)
	dqA := e.alloc(blockBytes, 64)
	pixA := e.alloc(blockBytes, 64) // IDCT output (16-bit)
	imgA := e.alloc(cfg.W*cfg.H, 64)
	e.alloc(64, 64) // guard gap: the upsample +1 stream reads one byte past
	outA := e.alloc(2*cfg.W*cfg.H, 64)

	e.zeroVec()
	d := e.prepareDCT()
	e.prepareQuant(&jpegQuantTable)

	var (
		rStream = isa.R(1)
		rDq     = isa.R(2)
		rPix    = isa.R(3)
		rImg    = isa.R(4)
		rOut    = isa.R(5)
		rBias   = isa.R(6)
	)
	e.setBase(rDq, dqA)
	e.setBase(rPix, pixA)
	e.b.MovImm(rBias, 128)

	W := int64(cfg.W)
	b := e.b
	blk := 0
	for y0 := 0; y0+8 <= cfg.H; y0 += 8 {
		for x0 := 0; x0 < cfg.W; x0 += 8 {
			e.setBase(rStream, streamA+uint64(blk*blockBytes))
			e.dequant(rStream, rDq)
			d.idct(rDq, rPix)
			e.setBase(rImg, imgA+uint64(y0*cfg.W+x0))
			if v == MMX {
				b.SplatW(vB67, rBias)
				for y := 0; y < 8; y++ {
					b.MMXLoad(vT0, rPix, int64(y*16), 4)
					b.MMXLoad(vT1, rPix, int64(y*16+8), 4)
					b.U(isa.OpPAddW, vT0, vT0, vB67)
					b.U(isa.OpPAddW, vT1, vT1, vB67)
					b.U(isa.OpPackUSWB, vT0, vT0, vT1)
					b.MMXStore(rImg, int64(y)*W, vT0, 8)
				}
			} else {
				b.MSplatW(vB67, rBias, 8)
				b.MOMLoad(vT0, rPix, 0, 16, 8, 4)
				b.MOMLoad(vT1, rPix, 8, 16, 8, 4)
				b.M(isa.OpPAddW, vT0, vT0, vB67, 8)
				b.M(isa.OpPAddW, vT1, vT1, vB67, 8)
				b.M(isa.OpPackUSWB, vT0, vT0, vT1, 8)
				b.MOMStore(rImg, 0, W, vT0, 8, 8)
			}
			blk++
		}
	}

	// Horizontal 2x upsampling over the reconstructed image: wide
	// consecutive streams (out[2i] = in[i], out[2i+1] = avg(in[i], in[i+1])).
	n := cfg.W * cfg.H
	e.setBase(rImg, imgA)
	e.setBase(rOut, outA)
	if v == MMX {
		for o := 0; o < n; o += 8 {
			b.MMXLoad(vB01, rImg, int64(o), 8)
			b.MMXLoad(vB23, rImg, int64(o)+1, 8)
			b.U(isa.OpPAvgB, vB23, vB01, vB23)
			b.U(isa.OpPUnpckLBW, vT0, vB01, vB23)
			b.U(isa.OpPUnpckHBW, vT1, vB01, vB23)
			b.MMXStore(rOut, int64(2*o), vT0, 8)
			b.MMXStore(rOut, int64(2*o)+8, vT1, 8)
		}
	} else {
		for o := 0; o < n; o += 128 {
			vl := (n - o) / 8
			if vl > 16 {
				vl = 16
			}
			b.MOMLoad(vB01, rImg, int64(o), 8, vl, 8)
			b.MOMLoad(vB23, rImg, int64(o)+1, 8, vl, 8)
			b.M(isa.OpPAvgB, vB23, vB01, vB23, vl)
			b.M(isa.OpPUnpckLBW, vT0, vB01, vB23, vl)
			b.M(isa.OpPUnpckHBW, vT1, vB01, vB23, vl)
			b.MOMStore(rOut, int64(2*o), 16, vT0, vl, 8)
			b.MOMStore(rOut, int64(2*o)+8, 16, vT1, vl, 8)
		}
	}

	dg := &digest{}
	dg.bytes(e.readBytes(imgA, n))
	dg.bytes(e.readBytes(outA, 2*n))
	return dg.buf
}

func jpegdecRef(cfg JPEGDecConfig) []byte {
	stream := jpegdecInput(cfg)
	img := make([]byte, cfg.W*cfg.H)
	blk := 0
	for y0 := 0; y0+8 <= cfg.H; y0 += 8 {
		for x0 := 0; x0 < cfg.W; x0 += 8 {
			var q [64]int16
			copy(q[:], stream[blk*64:blk*64+64])
			dq := refDequant(&q, &jpegQuantTable)
			pix := RefIDCT(&dq)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					s := int32(pix[y*8+x]) + 128
					if s < 0 {
						s = 0
					}
					if s > 255 {
						s = 255
					}
					img[(y0+y)*cfg.W+x0+x] = uint8(s)
				}
			}
			blk++
		}
	}
	n := cfg.W * cfg.H
	out := make([]byte, 2*n)
	at := func(i int) uint8 {
		if i >= n {
			return 0 // guard gap reads as zero, as in the traced run
		}
		return img[i]
	}
	for i := 0; i < n; i++ {
		out[2*i] = img[i]
		out[2*i+1] = uint8((uint16(img[i]) + uint16(at(i+1)) + 1) >> 1)
	}
	dg := &digest{}
	dg.bytes(img)
	dg.bytes(out)
	return dg.buf
}
