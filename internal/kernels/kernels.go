// Package kernels implements the five Mediabench-derived benchmarks of the
// paper (§5.1) — mpeg2encode, mpeg2decode, jpegencode, jpegdecode,
// gsmencode — each hand-vectorized three ways:
//
//   - MMX: the 1D μSIMD baseline (per-64-bit-word operations),
//   - MOM: the 2D matrix ISA (vector-of-μSIMD with VL and stride),
//   - MOM3D: MOM plus the paper's 3D memory vectorization (dvload/3dvmov).
//
// Every benchmark also has a pure-Go scalar reference using identical
// fixed-point arithmetic; Run and Reference return byte-identical digests,
// which the integration tests assert for all variants. This is the
// repository's ground truth that the new instructions compute the same
// results as the code they replace.
//
// Inputs are deterministic synthetic media from internal/media (see
// DESIGN.md §3 for the substitution rationale). Workload dimensions are
// scaled down from the paper's inputs so cycle simulations finish in
// seconds; ratios between configurations are what the experiments report.
//
// Register conventions (shared by all kernels):
//
//	r31        builder loop scratch (prog.ScratchReg)
//	r0..r19    kernel locals and address bases
//	r20..r26   DCT/quant table bases (codegen.go)
//	v0         packed zero
//	v1..v13    codegen working registers
//	v14, v15   resident quant tables (MOM variants)
//	v16..v31   resident DCT coefficient / d-vector cache (MMX variant only)
package kernels

import (
	"encoding/binary"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mmem"
	"repro/internal/prog"
	"repro/internal/trace"
)

// Variant selects which ISA style a benchmark is generated for.
type Variant int

const (
	// MMX is the 1D μSIMD baseline ISA.
	MMX Variant = iota
	// MOM is the 2D matrix ISA.
	MOM
	// MOM3D is MOM extended with 3D memory vectorization.
	MOM3D
)

// String names the variant as the paper's figures do.
func (v Variant) String() string {
	switch v {
	case MMX:
		return "MMX"
	case MOM:
		return "MOM"
	case MOM3D:
		return "MOM+3D"
	}
	return "?"
}

// Variants lists all ISA variants in presentation order.
var Variants = []Variant{MMX, MOM, MOM3D}

// Benchmark is one traced media workload.
type Benchmark struct {
	// Name is the Mediabench-style benchmark name.
	Name string
	// Has3D reports whether the MOM3D variant actually uses 3D memory
	// instructions (false for jpegdecode, per §5.1 of the paper).
	Has3D bool

	run func(v Variant, sink trace.Sink) []byte
	ref func() []byte
}

// Run generates the dynamic trace for the given variant into sink and
// returns the output digest (the serialized kernel results).
func (bm Benchmark) Run(v Variant, sink trace.Sink) []byte { return bm.run(v, sink) }

// Reference computes the same outputs with the pure-Go scalar reference.
func (bm Benchmark) Reference() []byte { return bm.ref() }

// All returns the five benchmarks at their default (experiment) sizes, in
// the order the paper's figures list them.
func All() []Benchmark {
	return []Benchmark{
		JPEGEncode(DefaultJPEGEncConfig()),
		JPEGDecode(DefaultJPEGDecConfig()),
		MPEG2Decode(DefaultMPEG2DecConfig()),
		MPEG2Encode(DefaultMPEG2EncConfig()),
		GSMEncode(DefaultGSMEncConfig()),
	}
}

// Extended returns the paper's five benchmarks plus the repository's
// own workloads — currently the HD-frame motionsearch stream, whose
// working set outgrows the 2MB L2 and exercises the DRAM path at full
// size. The paper-reproduction figures iterate All; the CLIs resolve
// names against Extended.
func Extended() []Benchmark {
	return append(All(), MotionSearch(DefaultMotionSearchConfig()))
}

// ByName finds a default-size benchmark by name.
func ByName(name string) (Benchmark, bool) {
	for _, bm := range Extended() {
		if bm.Name == name {
			return bm, true
		}
	}
	return Benchmark{}, false
}

// env is the per-run generation environment: a fresh machine, builder and
// address-space allocator.
type env struct {
	b  *prog.Builder
	m  *emu.Machine
	al *mmem.Allocator
	v  Variant
	c  *cg
}

func newEnv(v Variant, sink trace.Sink) *env {
	m := emu.New(mmem.New())
	b := prog.New(m, sink)
	return &env{
		b:  b,
		m:  m,
		al: mmem.NewAllocator(0x1_0000),
		v:  v,
		c:  &cg{b: b, v: v},
	}
}

// alloc reserves a block in the traced program's address space.
func (e *env) alloc(size, align int) uint64 { return e.al.Alloc(size, align) }

// setBase materializes an address constant into a scalar register.
func (e *env) setBase(r isa.Reg, addr uint64) { e.b.MovImm(r, int64(addr)) }

// write16 stores an int16 slice into emulated memory.
func (e *env) write16(addr uint64, vals []int16) {
	for i, v := range vals {
		e.m.Mem.WriteU16(addr+uint64(2*i), uint16(v))
	}
}

// read16 reads n int16 values from emulated memory.
func (e *env) read16(addr uint64, n int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(e.m.Mem.ReadU16(addr + uint64(2*i)))
	}
	return out
}

// readBytes reads n bytes from emulated memory.
func (e *env) readBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	e.m.Mem.Read(addr, out)
	return out
}

// digest is a tiny append-only serializer for kernel outputs.
type digest struct{ buf []byte }

func (d *digest) bytes(b []byte) { d.buf = append(d.buf, b...) }

func (d *digest) u16s(v []int16) {
	for _, x := range v {
		d.buf = append(d.buf, byte(uint16(x)), byte(uint16(x)>>8))
	}
}

func (d *digest) u32(v uint32) {
	d.buf = binary.LittleEndian.AppendUint32(d.buf, v)
}

func (d *digest) u64(v uint64) {
	d.buf = binary.LittleEndian.AppendUint64(d.buf, v)
}
