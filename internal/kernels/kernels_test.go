package kernels

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// small returns test-scale versions of all five paper benchmarks plus
// the HD motionsearch stream.
func small() []Benchmark {
	return []Benchmark{
		JPEGEncode(SmallJPEGEncConfig()),
		JPEGDecode(SmallJPEGDecConfig()),
		MPEG2Decode(SmallMPEG2DecConfig()),
		MPEG2Encode(SmallMPEG2EncConfig()),
		GSMEncode(SmallGSMEncConfig()),
		MotionSearch(SmallMotionSearchConfig()),
	}
}

// TestVariantsMatchReference is the central correctness property of the
// whole kernel layer: the MMX, MOM and MOM+3D compilations of every
// benchmark compute bit-identical outputs to the scalar reference.
func TestVariantsMatchReference(t *testing.T) {
	for _, bm := range small() {
		ref := bm.Reference()
		if len(ref) == 0 {
			t.Fatalf("%s: empty reference digest", bm.Name)
		}
		for _, v := range Variants {
			st := trace.NewStats()
			got := bm.Run(v, st)
			if !bytes.Equal(got, ref) {
				t.Errorf("%s/%v: digest mismatch (got %d bytes, want %d)",
					bm.Name, v, len(got), len(ref))
			}
			if st.Total == 0 {
				t.Errorf("%s/%v: empty trace", bm.Name, v)
			}
		}
	}
}

// TestTraceShapes checks the ISA-level structure of the generated streams.
func TestTraceShapes(t *testing.T) {
	for _, bm := range small() {
		counts := map[Variant]*trace.Stats{}
		for _, v := range Variants {
			st := trace.NewStats()
			bm.Run(v, st)
			counts[v] = st
		}
		mmx, mom, m3d := counts[MMX], counts[MOM], counts[MOM3D]

		// The MMX build must contain no MOM or 3D instructions.
		if mmx.ByKind[isa.KindMOM] != 0 || mmx.ByKind[isa.KindMOMMem] != 0 ||
			mmx.ByKind[isa.Kind3DLoad] != 0 || mmx.ByKind[isa.Kind3DMove] != 0 {
			t.Errorf("%s/MMX: contains MOM instructions", bm.Name)
		}
		// The MOM builds must contain no μSIMD instructions.
		if mom.ByKind[isa.KindUSIMD] != 0 || mom.ByKind[isa.KindUSIMDMem] != 0 {
			t.Errorf("%s/MOM: contains μSIMD instructions", bm.Name)
		}
		// MOM must shrink the dynamic instruction count substantially
		// (the 2D ISA's core claim: more work per instruction).
		if mom.Total >= mmx.Total {
			t.Errorf("%s: MOM trace (%d) not smaller than MMX (%d)",
				bm.Name, mom.Total, mmx.Total)
		}
		// 3D instructions appear exactly when the benchmark has suitable
		// patterns (paper §5.1: all but jpegdecode).
		has3D := m3d.ByKind[isa.Kind3DLoad] > 0
		if has3D != bm.Has3D {
			t.Errorf("%s: 3D loads present=%v, want %v", bm.Name, has3D, bm.Has3D)
		}
		if bm.Has3D {
			if m3d.ByKind[isa.Kind3DMove] == 0 {
				t.Errorf("%s/MOM3D: dvloads without 3dvmovs", bm.Name)
			}
			// 3D vectorization must not inflate memory traffic, and it
			// must pack the same traffic into fewer vector memory
			// instructions (wider accesses, the Fig 6 effect). Strict
			// byte reduction only holds where 2D streams overlap
			// (mpeg2encode, gsmencode).
			if m3d.MemBytes > mom.MemBytes {
				t.Errorf("%s: MOM3D memory bytes (%d) above MOM (%d)",
					bm.Name, m3d.MemBytes, mom.MemBytes)
			}
			if m3d.VecMemInsts >= mom.VecMemInsts {
				t.Errorf("%s: MOM3D vector memory instructions (%d) not below MOM (%d)",
					bm.Name, m3d.VecMemInsts, mom.VecMemInsts)
			}
			if bm.Name == "mpeg2encode" || bm.Name == "gsmencode" || bm.Name == "motionsearch" {
				if m3d.MemBytes >= mom.MemBytes {
					t.Errorf("%s: overlapping streams must cut bytes (%d vs %d)",
						bm.Name, m3d.MemBytes, mom.MemBytes)
				}
			}
		} else if m3d.ByKind[isa.Kind3DMove] != 0 {
			t.Errorf("%s: unexpected 3dvmovs", bm.Name)
		}
	}
}

// TestDimsReported checks Table 1 inputs: packing and vector lengths.
func TestDimsReported(t *testing.T) {
	for _, bm := range small() {
		st := trace.NewStats()
		bm.Run(MOM, st)
		d1, d2, _, _, has3 := st.Dims()
		if has3 {
			t.Errorf("%s/MOM: must not have 3D instructions", bm.Name)
		}
		if d1 < 1 || d1 > 8 {
			t.Errorf("%s: dim1 = %.2f out of range", bm.Name, d1)
		}
		if d2 < 1 || d2 > 16 {
			t.Errorf("%s: dim2 = %.2f out of range", bm.Name, d2)
		}
		st3 := trace.NewStats()
		bm.Run(MOM3D, st3)
		_, _, d3, d3max, has3 := st3.Dims()
		if bm.Has3D {
			if !has3 || d3 <= 1 {
				t.Errorf("%s/MOM3D: dim3 = %.2f, want > 1", bm.Name, d3)
			}
			if d3max < 2 {
				t.Errorf("%s/MOM3D: dim3 max = %d, want >= 2", bm.Name, d3max)
			}
		}
	}
}

// TestDCTRoundTrip: quantized-then-reconstructed blocks stay close to the
// original (sanity of the fixed-point transform pair).
func TestDCTRoundTrip(t *testing.T) {
	var blk [64]int16
	for i := range blk {
		blk[i] = int16((i*37)%255 - 128)
	}
	f := RefFDCT(&blk)
	r := RefIDCT(&f)
	for i := range blk {
		d := int(blk[i]) - int(r[i])
		if d < -8 || d > 8 {
			t.Fatalf("coef %d: %d -> %d (error %d)", i, blk[i], r[i], d)
		}
	}
}

// TestDCTLinearity: the transform of a zero block is zero; DC-only blocks
// reconstruct flat.
func TestDCTZero(t *testing.T) {
	var zero [64]int16
	f := RefFDCT(&zero)
	for i, v := range f {
		if v != 0 {
			t.Fatalf("FDCT(0)[%d] = %d", i, v)
		}
	}
	var flat [64]int16
	for i := range flat {
		flat[i] = 100
	}
	f = RefFDCT(&flat)
	if f[0] < 780 || f[0] > 820 { // 8*100 = 800 expected DC
		t.Errorf("DC of flat block = %d, want ~800", f[0])
	}
	for i := 1; i < 64; i++ {
		if f[i] < -2 || f[i] > 2 {
			t.Errorf("AC[%d] of flat block = %d, want ~0", i, f[i])
		}
	}
}

func TestQuantRoundTrip(t *testing.T) {
	var f [64]int16
	for i := range f {
		f[i] = int16(i*53%2000 - 1000)
	}
	recips := quantRecips(&mpeg2QuantTable)
	q := refQuant(&f, &recips)
	dq := refDequant(&q, &mpeg2QuantTable)
	for i := range f {
		d := int(f[i]) - int(dq[i])
		if d < -40 || d > 40 { // within ~2 quant steps of 16
			t.Errorf("coef %d: %d -> %d", i, f[i], dq[i])
		}
	}
}

func TestPackedCoefLayout(t *testing.T) {
	p := packedCoefLayout(&fdctCoef)
	if len(p) != 64 {
		t.Fatal("layout size")
	}
	// Spot-check group g=1, pair p=2: words [T[2][4], T[2][5], T[3][4], T[3][5]].
	base := (1*4 + 2) * 4
	want := []int16{fdctCoef[2][4], fdctCoef[2][5], fdctCoef[3][4], fdctCoef[3][5]}
	for i, w := range want {
		if p[base+i] != w {
			t.Errorf("packed[%d] = %d, want %d", base+i, p[base+i], w)
		}
	}
}

func TestAllRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, bm := range All() {
		names[bm.Name] = true
	}
	for _, want := range []string{"mpeg2encode", "mpeg2decode", "jpegencode", "jpegdecode", "gsmencode"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
	// The paper suite stays exactly the paper's five; the extra
	// workloads only join the extended registry the CLIs resolve.
	if names["motionsearch"] {
		t.Error("motionsearch must not join the paper's five-benchmark suite")
	}
	if _, ok := ByName("mpeg2encode"); !ok {
		t.Error("ByName failed")
	}
	if bm, ok := ByName("motionsearch"); !ok || bm.Name != "motionsearch" {
		t.Error("ByName must resolve the extended suite")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a ghost")
	}
}

func TestVariantString(t *testing.T) {
	if MMX.String() != "MMX" || MOM.String() != "MOM" || MOM3D.String() != "MOM+3D" {
		t.Error("variant names wrong")
	}
}
