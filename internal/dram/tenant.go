package dram

import "repro/internal/stats"

// Tenant tags ride the opaque Request.ID path: the MSHR file stamps the
// requestor index into the top byte of every ID it hands the backend,
// so the tag survives scheduling, reordering and completion routing
// without widening any interface. The low 56 bits remain the caller's
// entry identity — far beyond any MSHR counter this simulator reaches —
// and tenant 0 tags to the identity, keeping the single-requestor path
// bit-identical.
const TenantShift = 56

// tenantMask covers the tag field: the top byte of the ID.
const tenantMask = uint64(0xff) << TenantShift

// TagTenant stamps a requestor index into an opaque request ID. The
// field is cleared first so re-tagging an already-tagged ID replaces
// the tag instead of OR-merging two tags into garbage, and the index
// must fit the byte — a wider index would silently corrupt the low 56
// entry-identity bits.
func TagTenant(id uint64, tenant int) uint64 {
	if tenant < 0 || tenant > 0xff {
		panic("dram: tenant index out of tag range")
	}
	return id&^tenantMask | uint64(tenant)<<TenantShift
}

// TenantOf recovers the requestor index from a tagged ID (0 for
// untagged single-requestor traffic).
func TenantOf(id uint64) int {
	return int(id >> TenantShift)
}

// TenantStats is one requestor's shard of the backend's activity:
// traffic volume, bandwidth and the full read-latency distribution
// (arrival to data completion, so queue back-pressure and QoS deferral
// are included). Shards are pure observation — recording them never
// changes any timing decision.
type TenantStats struct {
	Reads         uint64
	Writes        uint64 // posted writes absorbed by the write queues
	Bytes         uint64 // bytes transferred for this tenant
	PrefetchReads uint64 // reads the prefetcher injected on this tenant's behalf
	QoSDeferred   uint64 // scheduling turns this tenant's reads yielded at its credit

	// ReadLatency is the tenant's end-to-end read-latency histogram
	// (request arrival to burst completion) — the per-tenant view of
	// the shared part's ReadWait+ReadService.
	ReadLatency *stats.Histogram
}

func (t *TenantStats) init() {
	if t.ReadLatency == nil {
		t.ReadLatency = stats.NewHistogram()
	}
}

func (t *TenantStats) reset() {
	h := t.ReadLatency
	*t = TenantStats{}
	h.Reset()
	t.ReadLatency = h
}

// shardFor routes a tagged ID to its stat shard. A tag outside the
// allocated range is counted in st.TenantMisroute and recorded nowhere:
// the old `TenantOf(id) % len(tst)` wrap silently aliased stray tags
// into another tenant's shard, corrupting that tenant's accounting.
func shardFor(tst []TenantStats, id uint64, st *Stats) *TenantStats {
	if len(tst) == 0 {
		return nil
	}
	if t := TenantOf(id); t < len(tst) {
		return &tst[t]
	}
	st.TenantMisroute++
	return nil
}

// TenantAware is implemented by backends that can shard statistics per
// requestor tag. EnableTenantStats allocates n shards (indexed by
// TenantOf of each request's ID); TenantStatsOf exposes shard i.
type TenantAware interface {
	EnableTenantStats(n int)
	TenantStatsOf(i int) *TenantStats
}
