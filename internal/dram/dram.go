// Package dram models the main memory behind the L2. The seed treated
// every L2 miss as a flat constant; this package replaces that constant
// with a pluggable Backend so the simulator can model a real banked
// SDRAM part: per-bank row-buffer state, open/closed page policies,
// row-hit vs row-miss vs row-conflict timing composed from tRCD/tCAS/tRP
// style parameters, a configurable physical address mapping, a bounded
// per-channel controller queue with FCFS and FR-FCFS scheduling, a
// posted write queue with drain thresholds, and periodic refresh.
//
// Requests reach the controller as transaction batches: a vector memory
// instruction collects all of its L2 line misses (and any dirty-victim
// write-backs) and presents them to Submit together, so the controller
// sees the instruction-level memory parallelism the paper argues media
// kernels expose. Within the visible window (the batch plus anything
// already queued) FR-FCFS genuinely reorders, promoting row hits ahead
// of older row conflicts; batches fan out across channels, each with
// its own queue, scheduler state, write queue and refresh engine, so
// bandwidth scales with channel count. Scheduling remains causal: a
// request is never serviced before its arrival cycle, and requests in
// later batches are never visible to earlier ones.
package dram

import (
	"repro/internal/cache"
	"repro/internal/stats"
)

// lineBytes is the transfer granularity of every backend, tied to the
// L2 line size so the NewMemSystem cross-check can never trip from a
// config drift between the two packages.
const lineBytes = cache.L2LineBytes

// Request is one main-memory transaction: the line fill (Write false)
// or write-back (Write true) of the L2 line containing Addr, arriving
// at the controller at cycle At. ID is an opaque caller tag (the MSHR
// entry the request belongs to); backends carry it through to the
// matching Completion untouched so completions can be routed back to
// their MSHRs even after the scheduler reorders the batch.
type Request struct {
	Addr  uint64
	Write bool
	At    int64
	ID    uint64

	// Prefetch marks a request the stream prefetcher injected (a
	// predicted line fill, or the write-back its fill evicted) rather
	// than one a demand miss generated. The statistics keep the two
	// kinds apart, and the channel scheduler deprioritizes speculative
	// reads: within the FR-FCFS window demands go first, and a
	// per-channel occupancy cap (Config.PFQCap) bounds how many
	// prefetch reads may hold queue slots at once.
	//
	// Demanded marks a prefetch a demand access merged onto before the
	// batch was submitted (a late prefetch): its data is already on an
	// instruction's critical path, so the scheduler treats it with full
	// demand priority while the statistics still count it as a
	// prefetch.
	Prefetch bool
	Demanded bool
}

// speculative reports whether the scheduler should treat the request
// as deprioritizable speculative traffic.
func (r *Request) speculative() bool { return r.Prefetch && !r.Demanded }

// Completion reports the outcome of one Request. Done is the cycle the
// data transfer completes for reads, and the cycle the write is
// accepted into the controller's write queue for writes (posted
// writes: the physical drain happens later and only shows up as bank
// and bus occupancy). Done is always > At. Channel is the channel the
// request decoded to.
type Completion struct {
	Addr    uint64
	Write   bool
	At      int64
	Done    int64
	Channel int
	ID      uint64 // the submitting Request's ID, carried through verbatim

	// QoSDelay is the credit-yield penalty the channel scheduler
	// imposed: cycles this read sat eligible but deferred so an
	// under-share tenant could use the channel. Zero on writes, on the
	// fixed-latency backend, and whenever QoS scheduling is off. The
	// core's CPI stack splits it out of the raw DRAM wait.
	QoSDelay int64
}

// Backend is one main-memory model. Submit schedules a whole batch of
// requests — typically every line miss of one vector instruction — and
// returns their completions in batch order. Backends are stateful:
// bank, queue and write-queue state persists across calls so
// back-to-back batches contend realistically.
//
// The returned slice is owned by the backend and only valid until the
// next Submit or Reset call; callers that retain completions must copy
// them.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Submit services one batch of requests and returns one completion
	// per request, in batch order.
	Submit(batch []Request) []Completion
	// Stats exposes the accumulated counters.
	Stats() *Stats
	// LineBytes is the transfer granularity of one request; callers
	// issue one request per cache line of this size.
	LineBytes() int
	// MinReadLatency is a lower bound on Done-At for any read the
	// backend could ever service: no request completes faster than
	// this, whatever the bank, queue and bus state. MSHR bookkeeping
	// uses it to answer "certainly not done yet" without forcing the
	// pending batch to be scheduled early.
	MinReadLatency() int64
	// WriteRoom reports whether a posted write to addr could enter its
	// channel's write queue without crossing the drain threshold. It is
	// advisory — posted writes reach the backend lazily with the next
	// batch, so the queue may have moved by then — and exists so the
	// prefetcher can drop (never stall on) a prefetch whose dirty
	// victim would land on a saturated write queue. Backends without a
	// write queue always have room.
	WriteRoom(addr uint64) bool
	// Reset clears all timing state and counters.
	Reset()
}

// Access is the one-at-a-time compatibility path over the batch API: it
// submits a single read and returns its completion cycle. The scalar
// miss path and the seed's flat model go through here.
func Access(b Backend, addr uint64, t0 int64) int64 {
	return b.Submit([]Request{{Addr: addr, At: t0}})[0].Done
}

// Stats aggregates a backend's activity.
type Stats struct {
	Accesses     uint64
	Writes       uint64 // posted writes absorbed by the write queues
	RowHits      uint64 // open-page hit: column access only
	RowMisses    uint64 // bank idle: activate + column access
	RowConflicts uint64 // wrong row open: precharge + activate + column
	Refreshes    uint64 // refresh epochs performed (per channel)
	StallCycles  uint64 // cycles requests waited on a full controller queue
	BusyCycles   uint64 // data-bus busy cycles summed over channels
	Bytes        uint64 // bytes transferred

	// Reordered counts FR-FCFS promotions: a row hit — or, under the
	// demand-aware pick, a demand read ahead of an older prefetch — in
	// the visible window serviced ahead of an older request. WriteDrains counts
	// write-queue drain events; PartialDrains counts the subset that
	// stopped at the low watermark instead of emptying the queue, and
	// OppDrains counts writes retired opportunistically on an idle bus
	// ahead of a read they provably could not delay.
	Reordered     uint64
	WriteDrains   uint64
	PartialDrains uint64
	OppDrains     uint64

	// WriteReadStall accumulates data-bus cycles reads spent waiting
	// behind write bursts (including the read↔write turnaround) — the
	// write-induced read latency the drain policy is tuned against.
	WriteReadStall uint64

	// PrefetchReads counts line fills the stream prefetcher injected
	// (the Prefetch-tagged reads); they are included in Accesses like
	// any other read, so demand reads are Reads() - PrefetchReads.
	// PrefetchDeferred counts the subset the per-channel occupancy cap
	// (Config.PFQCap) held back until an earlier speculative read
	// completed — the demand-priority scheduler's pressure valve.
	PrefetchReads    uint64
	PrefetchDeferred uint64

	// DemandFirstLapses counts channels' demand-first latches decaying
	// back to classic FR-FCFS after Config.PFDecay quiet cycles (always
	// 0 under the default sticky latch). QoSDeferred counts scheduling
	// turns an over-share tenant's read yielded to an under-share
	// tenant's in the QoS window pick (Config.QoS) — the same read can
	// yield several turns before it is served.
	DemandFirstLapses uint64
	QoSDeferred       uint64

	// TenantMisroute counts requests whose ID carried a tenant tag
	// outside the allocated stat-shard range. Such requests are still
	// serviced normally but recorded in no shard — routing them into a
	// wrapped shard index would corrupt another tenant's accounting.
	TenantMisroute uint64

	// Row-policy accounting (internal/dram/policy): RowClosedEarly
	// counts rows a policy precharged before a conflict or refresh
	// would have (auto-precharge closes and fired idle timers);
	// RowReopened counts the subset the very next access to the bank
	// re-activated — the wasted closes; PredictorFlips counts history-
	// predictor decision changes (a bank crossing between live and
	// dead).
	RowClosedEarly uint64
	RowReopened    uint64
	PredictorFlips uint64

	// QueueSum accumulates the controller-queue occupancy sampled at
	// each read arrival (counting the arriving request); QueueMax
	// is the high-water mark.
	QueueSum uint64
	QueueMax int

	// BankBusySum accumulates, per read, the number of banks already
	// busy when the request arrives — the bank-level parallelism the
	// access stream achieves.
	BankBusySum uint64

	// FirstArrival and LastDone bound the active window used for the
	// achieved-bandwidth figure.
	FirstArrival int64
	LastDone     int64

	// ReadWait and ReadService split each read's latency at the point
	// queue back-pressure ends: wait is the delay from the request's
	// own arrival until the controller admits it (full read queue,
	// prefetch occupancy cap), service is admission to data-transfer
	// completion (row management, refresh, bus contention, burst).
	// Averages hide the tail the paper's bandwidth argument turns on;
	// these keep the distribution.
	ReadWait    *stats.Histogram
	ReadService *stats.Histogram
}

// initHists allocates the latency histograms once; the Reset paths
// clear them in place so pointers held by a stats registry stay live.
func (s *Stats) initHists() {
	if s.ReadWait == nil {
		s.ReadWait = stats.NewHistogram()
	}
	if s.ReadService == nil {
		s.ReadService = stats.NewHistogram()
	}
}

// reset zeroes every counter while keeping the histogram identities.
func (s *Stats) reset() {
	rw, rs := s.ReadWait, s.ReadService
	*s = Stats{}
	rw.Reset()
	rs.Reset()
	s.ReadWait, s.ReadService = rw, rs
}

// Traceable is implemented by backends that accept a cycle-stamped
// event tracer. A nil tracer disables tracing (the default).
type Traceable interface {
	SetTracer(t *stats.Tracer)
}

// Reads is the number of read (line-fill) requests serviced.
func (s *Stats) Reads() uint64 { return s.Accesses - s.Writes }

// RowHitRate is row hits per access (0 for an untouched backend, and
// for backends that do not model rows).
func (s *Stats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// AvgQueueOccupancy is the mean controller-queue occupancy observed at
// read arrival.
func (s *Stats) AvgQueueOccupancy() float64 {
	if s.Reads() == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.Reads())
}

// BankLevelParallelism is the mean number of banks already busy when a
// read arrives.
func (s *Stats) BankLevelParallelism() float64 {
	if s.Reads() == 0 {
		return 0
	}
	return float64(s.BankBusySum) / float64(s.Reads())
}

// AchievedBandwidth is bytes transferred per cycle over the window from
// the first arrival to the last completion.
func (s *Stats) AchievedBandwidth() float64 {
	if s.LastDone <= s.FirstArrival {
		return 0
	}
	return float64(s.Bytes) / float64(s.LastDone-s.FirstArrival)
}

// BusUtilization is the fraction of the active window the data buses
// spent bursting, summed over channels (so a two-channel part tops out
// at 2.0). Zero for backends that do not model a bus.
func (s *Stats) BusUtilization() float64 {
	if s.LastDone <= s.FirstArrival {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.LastDone-s.FirstArrival)
}

func (s *Stats) observe(t0, done int64, lineBytes int) {
	if s.Accesses == 0 || t0 < s.FirstArrival {
		s.FirstArrival = t0
	}
	if done > s.LastDone {
		s.LastDone = done
	}
	s.Accesses++
	s.Bytes += uint64(lineBytes)
}

// Fixed is the seed's flat-latency memory: every request completes a
// constant number of cycles after it arrives, with unbounded bandwidth.
// Requests in a batch are independent, so Submit is bit-identical to
// the seed's one-at-a-time model.
type Fixed struct {
	Latency   int64
	lineBytes int
	st        Stats
	tst       []TenantStats
	tr        *stats.Tracer
	comps     []Completion
}

// NewFixed returns a flat-latency backend (the seed's 100-cycle DRAM
// when latency is 100). Its line size is the shared L2 line constant.
func NewFixed(latency int64) *Fixed {
	f := &Fixed{Latency: latency, lineBytes: lineBytes}
	f.st.initHists()
	return f
}

// Name implements Backend.
func (f *Fixed) Name() string { return "fixed" }

// Stats implements Backend.
func (f *Fixed) Stats() *Stats { return &f.st }

// LineBytes implements Backend.
func (f *Fixed) LineBytes() int { return f.lineBytes }

// MinReadLatency implements Backend: every request takes exactly
// Latency.
func (f *Fixed) MinReadLatency() int64 { return f.Latency }

// WriteRoom implements Backend: the flat model has no write queue, so
// a posted write always has room.
func (f *Fixed) WriteRoom(uint64) bool { return true }

// Reset implements Backend.
func (f *Fixed) Reset() {
	f.st.reset()
	for i := range f.tst {
		f.tst[i].reset()
	}
}

// SetTracer implements Traceable.
func (f *Fixed) SetTracer(t *stats.Tracer) { f.tr = t }

// EnableTenantStats implements TenantAware.
func (f *Fixed) EnableTenantStats(n int) {
	f.tst = make([]TenantStats, n)
	for i := range f.tst {
		f.tst[i].init()
	}
}

// TenantStatsOf implements TenantAware.
func (f *Fixed) TenantStatsOf(i int) *TenantStats { return &f.tst[i] }

// Submit implements Backend: every completion is At + Latency.
func (f *Fixed) Submit(batch []Request) []Completion {
	f.comps = f.comps[:0]
	for _, r := range batch {
		done := r.At + f.Latency
		if r.Write {
			f.st.Writes++
		} else if r.Prefetch {
			f.st.PrefetchReads++
		}
		if !r.Write {
			f.st.ReadWait.Observe(0)
			f.st.ReadService.Observe(f.Latency)
		}
		if ts := shardFor(f.tst, r.ID, &f.st); ts != nil {
			ts.Bytes += uint64(f.lineBytes)
			if r.Write {
				ts.Writes++
			} else {
				ts.Reads++
				if r.Prefetch {
					ts.PrefetchReads++
				}
				ts.ReadLatency.Observe(f.Latency)
			}
		}
		if f.tr != nil {
			ten := TenantOf(r.ID)
			f.tr.Emit(stats.Event{Cycle: r.At, Cat: "dram", Name: "issue", Addr: r.Addr, ID: r.ID, Tenant: ten})
			f.tr.Emit(stats.Event{Cycle: done, Cat: "dram", Name: "complete", Addr: r.Addr, ID: r.ID, Tenant: ten})
		}
		f.st.observe(r.At, done, f.lineBytes)
		f.comps = append(f.comps, Completion{Addr: r.Addr, Write: r.Write, At: r.At, Done: done, ID: r.ID})
	}
	return f.comps
}

// Access submits a single read (the seed's scalar path).
func (f *Fixed) Access(addr uint64, t0 int64) int64 { return Access(f, addr, t0) }
