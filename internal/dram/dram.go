// Package dram models the main memory behind the L2. The seed treated
// every L2 miss as a flat constant; this package replaces that constant
// with a pluggable Backend so the simulator can model a real banked
// SDRAM part: per-bank row-buffer state, open/closed page policies,
// row-hit vs row-miss vs row-conflict timing composed from tRCD/tCAS/tRP
// style parameters, a configurable physical address mapping, a bounded
// controller queue with FCFS and FR-FCFS scheduling, and periodic
// refresh.
//
// Requests are presented one at a time by the cache hierarchy, in issue
// order, so the controller model is causal: scheduling never looks at
// requests that have not arrived yet. FR-FCFS is modelled to first
// order as the ability to issue row-management commands (precharge,
// activate) to a bank as soon as that bank is free, overlapping them
// with other banks' data transfers; FCFS serializes command issue
// behind the previous request on the channel. The data bus of a channel
// transfers one burst at a time under either scheduler.
package dram

// Backend is one main-memory model. Access schedules the line fill (or
// write-back) containing addr, arriving at the controller at cycle t0,
// and returns the cycle at which the data transfer completes. Backends
// are stateful: bank and queue state persists across calls so
// back-to-back misses contend realistically.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Access services one memory request and returns its completion
	// cycle (always > t0).
	Access(addr uint64, t0 int64) int64
	// Stats exposes the accumulated counters.
	Stats() *Stats
	// LineBytes is the transfer granularity of one request; callers
	// issue one request per cache line of this size.
	LineBytes() int
	// Reset clears all timing state and counters.
	Reset()
}

// Stats aggregates a backend's activity.
type Stats struct {
	Accesses     uint64
	RowHits      uint64 // open-page hit: column access only
	RowMisses    uint64 // bank idle: activate + column access
	RowConflicts uint64 // wrong row open: precharge + activate + column
	Refreshes    uint64 // refresh epochs performed (per channel)
	StallCycles  uint64 // cycles requests waited on a full controller queue
	BusyCycles   uint64 // data-bus busy cycles summed over channels
	Bytes        uint64 // bytes transferred

	// QueueSum accumulates the controller-queue occupancy sampled at
	// each request arrival (counting the arriving request); QueueMax
	// is the high-water mark.
	QueueSum uint64
	QueueMax int

	// BankBusySum accumulates, per request, the number of banks already
	// busy when the request arrives — the bank-level parallelism the
	// access stream achieves.
	BankBusySum uint64

	// FirstArrival and LastDone bound the active window used for the
	// achieved-bandwidth figure.
	FirstArrival int64
	LastDone     int64
}

// RowHitRate is row hits per access (0 for an untouched backend, and
// for backends that do not model rows).
func (s *Stats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// AvgQueueOccupancy is the mean controller-queue occupancy observed at
// request arrival.
func (s *Stats) AvgQueueOccupancy() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.Accesses)
}

// BankLevelParallelism is the mean number of banks already busy when a
// request arrives.
func (s *Stats) BankLevelParallelism() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.BankBusySum) / float64(s.Accesses)
}

// AchievedBandwidth is bytes transferred per cycle over the window from
// the first arrival to the last completion.
func (s *Stats) AchievedBandwidth() float64 {
	if s.LastDone <= s.FirstArrival {
		return 0
	}
	return float64(s.Bytes) / float64(s.LastDone-s.FirstArrival)
}

// BusUtilization is the fraction of the active window the data buses
// spent bursting, summed over channels (so a two-channel part tops out
// at 2.0). Zero for backends that do not model a bus.
func (s *Stats) BusUtilization() float64 {
	if s.LastDone <= s.FirstArrival {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.LastDone-s.FirstArrival)
}

func (s *Stats) observe(t0, done int64, lineBytes int) {
	if s.Accesses == 0 || t0 < s.FirstArrival {
		s.FirstArrival = t0
	}
	if done > s.LastDone {
		s.LastDone = done
	}
	s.Accesses++
	s.Bytes += uint64(lineBytes)
}

// Fixed is the seed's flat-latency memory: every request completes a
// constant number of cycles after it arrives, with unbounded bandwidth.
type Fixed struct {
	Latency   int64
	lineBytes int
	st        Stats
}

// NewFixed returns a flat-latency backend (the seed's 100-cycle DRAM
// when latency is 100).
func NewFixed(latency int64) *Fixed {
	return &Fixed{Latency: latency, lineBytes: 128}
}

// Name implements Backend.
func (f *Fixed) Name() string { return "fixed" }

// Stats implements Backend.
func (f *Fixed) Stats() *Stats { return &f.st }

// LineBytes implements Backend.
func (f *Fixed) LineBytes() int { return f.lineBytes }

// Reset implements Backend.
func (f *Fixed) Reset() { f.st = Stats{} }

// Access implements Backend: completion is always t0 + Latency.
func (f *Fixed) Access(addr uint64, t0 int64) int64 {
	done := t0 + f.Latency
	f.st.observe(t0, done, f.lineBytes)
	return done
}
