package dram

import (
	"fmt"
	"strconv"
	"strings"
)

// Preset selects a timing profile for the SDRAM model: a commodity DDR
// DIMM or a die-stacked / HBM part (short tRCD/tCAS, many narrow
// channels, hot refresh) — the high-bandwidth media-memory organization
// the paper's argument points at.
type Preset int

const (
	// PresetDDR is the commodity-DIMM profile (DefaultConfig).
	PresetDDR Preset = iota
	// PresetHBM is the die-stacked profile: 8 narrow channels, short
	// row-management latencies, longer per-line bursts and a hotter
	// refresh cadence.
	PresetHBM
)

// String names the preset as the -dprof flag spells it.
func (p Preset) String() string {
	if p == PresetHBM {
		return "hbm"
	}
	return "ddr"
}

// ParsePreset resolves a -dprof flag value.
func ParsePreset(s string) (Preset, error) {
	switch strings.ToLower(s) {
	case "ddr", "commodity":
		return PresetDDR, nil
	case "hbm", "stacked", "3d":
		return PresetHBM, nil
	}
	return 0, fmt.Errorf("unknown timing profile %q (ddr, hbm)", s)
}

// Config returns the preset's controller configuration.
func (p Preset) Config() Config {
	if p == PresetHBM {
		return Config{
			Channels: 8, Ranks: 1, Banks: 8,
			RowBytes: 2 << 10, RowsPerBank: 1 << 14, LineBytes: lineBytes,
			TRCD: 14, TCAS: 16, TRP: 14, TBurst: 16, TTurn: 2,
			TREFI: 3900, TRFC: 140,
			QueueDepth: 16, ReorderWindow: 8, WQDepth: 16, WQDrain: 12,
			Mapping: MapLine, Scheduler: FRFCFS, Policy: OpenPage,
		}
	}
	return DefaultConfig()
}

// Knobs are the controller overrides the CLIs and spec strings expose
// on top of a preset; zero values mean "keep the preset's setting".
type Knobs struct {
	Channels int // -dchan / "<n>ch": channel count (power of two)
	WQDrain  int // -dwq / "wq<n>": write-queue drain threshold
	Window   int // -dwin / "win<n>": FR-FCFS reorder window
}

func (k Knobs) apply(cfg Config) Config {
	if k.Channels > 0 {
		cfg.Channels = k.Channels
	}
	if k.WQDrain > 0 {
		cfg.WQDrain = k.WQDrain
		if cfg.WQDepth < cfg.WQDrain {
			cfg.WQDepth = cfg.WQDrain
		}
	}
	if k.Window > 0 {
		cfg.ReorderWindow = k.Window
	}
	return cfg
}

// Build constructs a backend from flag-level strings: kind is "fixed"
// or "sdram"; mapping and sched configure the SDRAM variants;
// fixedLatency is the flat latency of the fixed backend. The default
// DDR profile and preset knobs apply; BuildOpts exposes them.
func Build(kind, mapping, sched string, fixedLatency int64) (Backend, error) {
	return BuildOpts(kind, mapping, sched, "", Knobs{}, fixedLatency)
}

// BuildOpts is Build plus the timing profile and controller knobs.
func BuildOpts(kind, mapping, sched, prof string, knobs Knobs, fixedLatency int64) (Backend, error) {
	// Mapping, scheduler and profile are validated for every kind so a
	// typo is diagnosed even when the fixed backend would ignore the
	// value (empty strings mean "unspecified" and stay legal for fixed).
	kind = strings.ToLower(kind)
	var m Mapping
	var sc Scheduler
	var p Preset
	var err error
	if mapping != "" || kind == "sdram" {
		if m, err = ParseMapping(mapping); err != nil {
			return nil, err
		}
	}
	if sched != "" || kind == "sdram" {
		if sc, err = ParseScheduler(sched); err != nil {
			return nil, err
		}
	}
	if prof != "" {
		if p, err = ParsePreset(prof); err != nil {
			return nil, err
		}
	}
	if knobs.Channels < 0 || knobs.WQDrain < 0 || knobs.Window < 0 {
		return nil, fmt.Errorf("controller knobs must be positive (channels %d, wq drain %d, window %d)",
			knobs.Channels, knobs.WQDrain, knobs.Window)
	}
	switch kind {
	case "fixed":
		return NewFixed(fixedLatency), nil
	case "sdram":
		cfg := knobs.apply(p.Config())
		cfg.Mapping, cfg.Scheduler = m, sc
		if cfg.Channels <= 0 || cfg.Channels&(cfg.Channels-1) != 0 {
			return nil, fmt.Errorf("channel count %d not a power of two", cfg.Channels)
		}
		return NewSDRAM(cfg), nil
	}
	return nil, fmt.Errorf("unknown dram backend %q (fixed, sdram)", kind)
}

// ValidateFlagCombo rejects explicitly-set command-line knobs that the
// selected backend kind would silently ignore: the sdram-only knobs
// (-dmap/-dsched/-dprof/-dchan/-dwq/-dwin) only take effect on the
// sdram backend, -mlat only on the fixed backend. Both simulator
// binaries share this policy so their CLI contracts agree.
func ValidateFlagCombo(kind string, sdramKnobSet, mlatSet bool) error {
	kind = strings.ToLower(kind)
	if sdramKnobSet && kind != "sdram" {
		return fmt.Errorf("-dmap/-dsched/-dprof/-dchan/-dwq/-dwin require -dram sdram")
	}
	if mlatSet && kind == "sdram" {
		return fmt.Errorf("-mlat applies to the fixed backend only; drop it with -dram sdram")
	}
	return nil
}

// FormatSpec renders Build arguments as the compact
// "kind[/mapping/sched]" spec string ParseSpec accepts — the form the
// experiments runner keys simulations by. FormatSpecOpts adds the
// profile and knob segments.
func FormatSpec(kind, mapping, sched string) string {
	return FormatSpecOpts(kind, mapping, sched, "", Knobs{})
}

// FormatSpecOpts renders the full
// "sdram/<mapping>/<sched>[/<profile>][/<n>ch][/wq<n>][/win<n>]" form;
// zero-valued knobs and an empty profile are omitted.
func FormatSpecOpts(kind, mapping, sched, prof string, knobs Knobs) string {
	kind = strings.ToLower(kind)
	if kind != "sdram" {
		return kind
	}
	s := kind + "/" + strings.ToLower(mapping) + "/" + strings.ToLower(sched)
	if prof != "" {
		s += "/" + strings.ToLower(prof)
	}
	if knobs.Channels > 0 {
		s += fmt.Sprintf("/%dch", knobs.Channels)
	}
	if knobs.WQDrain > 0 {
		s += fmt.Sprintf("/wq%d", knobs.WQDrain)
	}
	if knobs.Window > 0 {
		s += fmt.Sprintf("/win%d", knobs.Window)
	}
	return s
}

// parseKnob recognizes the spec knob tokens: "<n>ch", "wq<n>",
// "win<n>".
func parseKnob(tok string, k *Knobs) bool {
	if n, ok := strings.CutSuffix(tok, "ch"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.Channels = v
			return true
		}
		return false
	}
	if n, ok := strings.CutPrefix(tok, "wq"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.WQDrain = v
			return true
		}
		return false
	}
	if n, ok := strings.CutPrefix(tok, "win"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.Window = v
			return true
		}
		return false
	}
	return false
}

// ParseSpec builds a backend from a spec string:
//
//	fixed
//	sdram[/mapping[/sched[/profile]]][/<n>ch][/wq<n>][/win<n>]
//
// Omitted sdram fields default to line/frfcfs/ddr; knob segments may
// appear anywhere after the kind.
func ParseSpec(spec string, fixedLatency int64) (Backend, error) {
	parts := strings.Split(spec, "/")
	kind := strings.ToLower(parts[0])
	mapping, sched, prof := "", "", ""
	var knobs Knobs
	pos := 0 // next positional field: 0 mapping, 1 sched, 2 profile
	for _, tok := range parts[1:] {
		if parseKnob(tok, &knobs) {
			continue
		}
		switch pos {
		case 0:
			mapping = tok
		case 1:
			sched = tok
		case 2:
			prof = tok
		default:
			return nil, fmt.Errorf("unexpected spec segment %q in %q", tok, spec)
		}
		pos++
	}
	if kind == "sdram" {
		if mapping == "" {
			mapping = "line"
		}
		if sched == "" {
			sched = "frfcfs"
		}
	}
	return BuildOpts(kind, mapping, sched, prof, knobs, fixedLatency)
}
