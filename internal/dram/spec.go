package dram

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dram/policy"
)

// Preset selects a timing profile for the SDRAM model: a commodity DDR
// DIMM or a die-stacked / HBM part (short tRCD/tCAS, many narrow
// channels, hot refresh) — the high-bandwidth media-memory organization
// the paper's argument points at.
type Preset int

const (
	// PresetDDR is the commodity-DIMM profile (DefaultConfig).
	PresetDDR Preset = iota
	// PresetHBM is the die-stacked profile: 8 narrow channels, short
	// row-management latencies, longer per-line bursts and a hotter
	// refresh cadence.
	PresetHBM
)

// String names the preset as the -dprof flag spells it.
func (p Preset) String() string {
	if p == PresetHBM {
		return "hbm"
	}
	return "ddr"
}

// ParsePreset resolves a -dprof flag value.
func ParsePreset(s string) (Preset, error) {
	switch strings.ToLower(s) {
	case "ddr", "commodity":
		return PresetDDR, nil
	case "hbm", "stacked", "3d":
		return PresetHBM, nil
	}
	return 0, fmt.Errorf("unknown timing profile %q (ddr, hbm)", s)
}

// Config returns the preset's controller configuration.
func (p Preset) Config() Config {
	if p == PresetHBM {
		return Config{
			Channels: 8, Ranks: 1, Banks: 8,
			RowBytes: 2 << 10, RowsPerBank: 1 << 14, LineBytes: lineBytes,
			TRCD: 14, TCAS: 16, TRP: 14, TBurst: 16, TTurn: 2,
			TREFI: 3900, TRFC: 140,
			QueueDepth: 16, ReorderWindow: 8, WQDepth: 16, WQDrain: 12,
			WQLow: 4, WQIdle: 30,
			Mapping: MapLine, Scheduler: FRFCFS,
		}
	}
	return DefaultConfig()
}

// Knobs are the controller overrides the CLIs and spec strings expose
// on top of a preset; zero values mean "keep the preset's setting".
// MSHRs is the odd one out: it sizes the vmem-level MSHR file, not the
// controller, so spec strings can key whole non-blocking configurations
// — BuildOpts validates it but callers thread it into vmem.Timing
// themselves (ParseSpecFull returns the parsed knobs for that).
type Knobs struct {
	Channels int // -dchan / "<n>ch": channel count (power of two)
	WQDrain  int // -dwq / "wq<n>": write-queue drain threshold
	Window   int // -dwin / "win<n>": FR-FCFS reorder window

	// WQLow (-dwql / "wql<n>") and WQIdle (-dwqi / "wqi<n>") override
	// the partial-drain low watermark and the idle-bus opportunistic-
	// drain gap. Since the presets ship both tuned on, zero means
	// "keep the preset's setting" like every other knob, and -1 (spec
	// "wql0" / "wqi0") explicitly disables the feature.
	WQLow  int
	WQIdle int64

	MSHRs int // -mshr / "mshr<n>": vmem MSHR file size (1 = blocking)

	// RP is the per-bank row policy (-rp / "rp<name>[:<n>]"); the zero
	// value keeps the preset's static open page. PFQ caps per-channel
	// prefetch read-queue occupancy (-pfq / "pfq<n>"; 0 = the
	// controller default of half the queue depth).
	RP  policy.Spec
	PFQ int

	// PFStreams/PFDegree size the vmem-level stream prefetcher
	// (-pf / -pfd, spec "pf<n>" or "pf<n>d<m>"): stream-table entries
	// and lines kept in flight per stream. Like MSHRs they configure
	// the vmem layer, not the controller — and they require a
	// non-blocking file (MSHRs >= 2), because predicted lines ride the
	// lazily-submitted MSHR batch.
	PFStreams int
	PFDegree  int

	// PFDecay (-pfdecay / "pfdec<n>") lets the demand-first latch decay
	// after that many deferral-free cycles (Config.PFDecay); 0 keeps
	// the sticky latch. It needs a prefetcher to matter, so like pfq it
	// requires PFStreams > 0.
	PFDecay int

	// Tenants (-tenants / "tn<n>") is the requestor count of a
	// multi-tenant run. Like MSHRs it mostly configures layers above
	// the controller (the tenant front end), so it is legal on every
	// kind; on sdram it additionally sizes the QoS credit scheduler.
	// QoS (-qos / "qos") turns on per-tenant credit scheduling in the
	// sdram controller and requires Tenants >= 2.
	Tenants int
	QoS     bool

	// VA (-va / "va", "vacolor", "vacolo") turns on per-requestor
	// virtual address translation in the memory front end and names the
	// physical placement policy ("first", "color" or "colo"). Like
	// MSHRs and Tenants it configures layers above the controller, so
	// it is legal on every kind; "" leaves translation off.
	VA string
}

func (k Knobs) apply(cfg Config) Config {
	if k.Channels > 0 {
		cfg.Channels = k.Channels
	}
	if k.WQDrain > 0 {
		cfg.WQDrain = k.WQDrain
		if cfg.WQDepth < cfg.WQDrain {
			cfg.WQDepth = cfg.WQDrain
		}
		// A knob that shrinks the drain threshold below the preset's
		// tuned watermark drops the watermark rather than erroring; an
		// explicit wql knob is applied (and conflict-checked) below.
		if cfg.WQLow >= cfg.WQDrain {
			cfg.WQLow = 0
		}
	}
	if k.Window > 0 {
		cfg.ReorderWindow = k.Window
	}
	if k.WQLow > 0 {
		cfg.WQLow = k.WQLow
	} else if k.WQLow == -1 {
		cfg.WQLow = 0 // explicit off: threshold drains empty the queue
	}
	if k.WQIdle > 0 {
		cfg.WQIdle = k.WQIdle
	} else if k.WQIdle == -1 {
		cfg.WQIdle = 0 // explicit off: no idle-bus drains
	}
	if k.RP != (policy.Spec{}) {
		// An explicit rpopen canonicalizes to the zero spec, so a
		// configuration that names the default compares (and simulates)
		// identically to one that omits it.
		if k.RP.Kind == policy.Open {
			cfg.RowPolicy = policy.Spec{}
		} else {
			cfg.RowPolicy = k.RP
		}
	}
	if k.PFQ > 0 {
		cfg.PFQCap = k.PFQ
	}
	if k.PFDecay > 0 {
		cfg.PFDecay = int64(k.PFDecay)
	}
	if k.Tenants > 0 {
		cfg.Tenants = k.Tenants
	}
	if k.QoS {
		cfg.QoS = true
	}
	return cfg
}

// Build constructs a backend from flag-level strings: kind is "fixed"
// or "sdram"; mapping and sched configure the SDRAM variants;
// fixedLatency is the flat latency of the fixed backend. The default
// DDR profile and preset knobs apply; BuildOpts exposes them.
func Build(kind, mapping, sched string, fixedLatency int64) (Backend, error) {
	return BuildOpts(kind, mapping, sched, "", Knobs{}, fixedLatency)
}

// BuildOpts is Build plus the timing profile and controller knobs.
func BuildOpts(kind, mapping, sched, prof string, knobs Knobs, fixedLatency int64) (Backend, error) {
	// Mapping, scheduler and profile are validated for every kind so a
	// typo is diagnosed even when the fixed backend would ignore the
	// value (empty strings mean "unspecified" and stay legal for fixed).
	kind = strings.ToLower(kind)
	var m Mapping
	var sc Scheduler
	var p Preset
	var err error
	if mapping != "" || kind == "sdram" {
		if m, err = ParseMapping(mapping); err != nil {
			return nil, err
		}
	}
	if sched != "" || kind == "sdram" {
		if sc, err = ParseScheduler(sched); err != nil {
			return nil, err
		}
	}
	if prof != "" {
		if p, err = ParsePreset(prof); err != nil {
			return nil, err
		}
	}
	if knobs.Channels < 0 || knobs.WQDrain < 0 || knobs.Window < 0 ||
		knobs.WQLow < -1 || knobs.WQIdle < -1 || knobs.MSHRs < 0 ||
		knobs.PFStreams < 0 || knobs.PFDegree < 0 || knobs.PFQ < 0 ||
		knobs.PFDecay < 0 || knobs.Tenants < 0 {
		return nil, fmt.Errorf("controller knobs must be positive (channels %d, wq drain %d, window %d, wq low %d, wq idle %d, mshrs %d, pf %d, pfd %d, pfq %d, pfdec %d, tn %d; wq low/idle -1 = explicitly off)",
			knobs.Channels, knobs.WQDrain, knobs.Window, knobs.WQLow, knobs.WQIdle, knobs.MSHRs, knobs.PFStreams, knobs.PFDegree, knobs.PFQ, knobs.PFDecay, knobs.Tenants)
	}
	if knobs.PFDegree > 0 && knobs.PFStreams == 0 {
		return nil, fmt.Errorf("prefetch degree %d needs a stream count (-pf / pf<n>)", knobs.PFDegree)
	}
	if knobs.PFQ > 0 && knobs.PFStreams == 0 {
		return nil, fmt.Errorf("prefetch queue cap %d needs a stream count (-pf / pf<n>)", knobs.PFQ)
	}
	if knobs.PFDecay > 0 && knobs.PFStreams == 0 {
		return nil, fmt.Errorf("demand-first decay %d governs prefetch scheduling and needs a stream count (-pf / pf<n>)", knobs.PFDecay)
	}
	if knobs.QoS && knobs.Tenants < 2 {
		return nil, fmt.Errorf("qos scheduling partitions the channel between requestors and needs a tenant count of at least 2 (-tenants / tn<n>)")
	}
	if knobs.PFStreams > 0 && knobs.MSHRs < 2 {
		return nil, fmt.Errorf("the stream prefetcher rides the MSHR batch: pf %d needs a non-blocking MSHR file (mshr >= 2, have %d)",
			knobs.PFStreams, knobs.MSHRs)
	}
	switch kind {
	case "fixed":
		return NewFixed(fixedLatency), nil
	case "sdram":
		cfg := knobs.apply(p.Config())
		cfg.Mapping, cfg.Scheduler = m, sc
		if cfg.Channels <= 0 || cfg.Channels&(cfg.Channels-1) != 0 {
			return nil, fmt.Errorf("channel count %d not a power of two", cfg.Channels)
		}
		if cfg.WQLow != 0 && cfg.WQLow >= cfg.WQDrain {
			return nil, fmt.Errorf("write-queue low watermark %d must be below the drain threshold %d", cfg.WQLow, cfg.WQDrain)
		}
		return NewSDRAM(cfg), nil
	}
	return nil, fmt.Errorf("unknown dram backend %q (fixed, sdram)", kind)
}

// ValidateFlagCombo rejects explicitly-set command-line knobs that the
// selected backend kind would silently ignore: the sdram-only knobs
// (-dmap/-dsched/-dprof/-dchan/-dwq/-dwql/-dwqi/-dwin/-rp/-pfq) only
// take effect on the sdram backend, -mlat only on the fixed backend.
// -mshr is deliberately absent: the MSHR file sits above the backend
// and applies to every kind. Both simulator binaries share this policy
// so their CLI contracts agree.
func ValidateFlagCombo(kind string, sdramKnobSet, mlatSet bool) error {
	kind = strings.ToLower(kind)
	if sdramKnobSet && kind != "sdram" {
		return fmt.Errorf("-dmap/-dsched/-dprof/-dchan/-dwq/-dwql/-dwqi/-dwin/-rp/-pfq/-pfdecay/-qos require -dram sdram")
	}
	if mlatSet && kind == "sdram" {
		return fmt.Errorf("-mlat applies to the fixed backend only; drop it with -dram sdram")
	}
	return nil
}

// FormatSpec renders Build arguments as the compact
// "kind[/mapping/sched]" spec string ParseSpec accepts — the form the
// experiments runner keys simulations by. FormatSpecOpts adds the
// profile and knob segments.
func FormatSpec(kind, mapping, sched string) string {
	return FormatSpecOpts(kind, mapping, sched, "", Knobs{})
}

// FormatSpecOpts renders the full
// "sdram/<mapping>/<sched>[/<profile>][/<n>ch][/wq<n>][/wql<n>]
// [/wqi<n>][/win<n>][/rp<name>[:<n>]][/pfq<n>][/pfdec<n>][/qos]
// [/mshr<n>][/pf<n>d<m>][/tn<n>]" form; zero-valued knobs and an empty
// profile are omitted. The mshr, pf and tn knobs survive on the fixed
// kind too — they configure layers above the controller.
func FormatSpecOpts(kind, mapping, sched, prof string, knobs Knobs) string {
	kind = strings.ToLower(kind)
	s := kind
	if kind == "sdram" {
		s += "/" + strings.ToLower(mapping) + "/" + strings.ToLower(sched)
		if prof != "" {
			s += "/" + strings.ToLower(prof)
		}
		if knobs.Channels > 0 {
			s += fmt.Sprintf("/%dch", knobs.Channels)
		}
		if knobs.WQDrain > 0 {
			s += fmt.Sprintf("/wq%d", knobs.WQDrain)
		}
		if knobs.WQLow > 0 {
			s += fmt.Sprintf("/wql%d", knobs.WQLow)
		} else if knobs.WQLow == -1 {
			s += "/wql0"
		}
		if knobs.WQIdle > 0 {
			s += fmt.Sprintf("/wqi%d", knobs.WQIdle)
		} else if knobs.WQIdle == -1 {
			s += "/wqi0"
		}
		if knobs.Window > 0 {
			s += fmt.Sprintf("/win%d", knobs.Window)
		}
		if knobs.RP != (policy.Spec{}) {
			s += "/rp" + knobs.RP.String()
		}
		if knobs.PFQ > 0 {
			s += fmt.Sprintf("/pfq%d", knobs.PFQ)
		}
		if knobs.PFDecay > 0 {
			s += fmt.Sprintf("/pfdec%d", knobs.PFDecay)
		}
		if knobs.QoS {
			s += "/qos"
		}
	}
	if knobs.MSHRs > 0 {
		s += fmt.Sprintf("/mshr%d", knobs.MSHRs)
	}
	if knobs.PFStreams > 0 {
		if knobs.PFDegree > 0 {
			s += fmt.Sprintf("/pf%dd%d", knobs.PFStreams, knobs.PFDegree)
		} else {
			s += fmt.Sprintf("/pf%d", knobs.PFStreams)
		}
	}
	if knobs.Tenants > 0 {
		s += fmt.Sprintf("/tn%d", knobs.Tenants)
	}
	switch knobs.VA {
	case "first":
		s += "/va"
	case "color":
		s += "/vacolor"
	case "colo":
		s += "/vacolo"
	}
	return s
}

// parseKnob recognizes the spec knob tokens: "<n>ch", "wq<n>",
// "wql<n>", "wqi<n>", "win<n>", "rp<name>[:<n>]", "pfq<n>", "pfdec<n>",
// "qos", "va"/"vacolor"/"vacolo", "mshr<n>", "tn<n>", "pf<n>" and
// "pf<n>d<m>". Longer prefixes
// are tried first so "wql2" never half-matches "wq" and "pfq8"/"pfdec50"
// never half-match "pf".
func parseKnob(tok string, k *Knobs) bool {
	if n, ok := strings.CutSuffix(tok, "ch"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.Channels = v
			return true
		}
		return false
	}
	if n, ok := strings.CutPrefix(tok, "rp"); ok {
		sp, err := policy.Parse(n)
		if err != nil {
			return false
		}
		k.RP = sp
		return true
	}
	if tok == "qos" {
		k.QoS = true
		return true
	}
	// The va tokens are exact matches (checked before the prefix loop,
	// though no current prefix collides with "va").
	switch tok {
	case "va":
		k.VA = "first"
		return true
	case "vacolor":
		k.VA = "color"
		return true
	case "vacolo":
		k.VA = "colo"
		return true
	}
	if n, ok := strings.CutPrefix(tok, "pfq"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.PFQ = v
			return true
		}
		return false
	}
	if n, ok := strings.CutPrefix(tok, "pfdec"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			k.PFDecay = v
			return true
		}
		return false
	}
	if n, ok := strings.CutPrefix(tok, "pf"); ok {
		// "pf<n>" (default degree) or "pf<n>d<m>" (explicit degree). A
		// "d" separator with nothing behind it ("pf8d") is malformed,
		// not a default: the parser's contract is strict rejection.
		streams, degree := n, ""
		hasDegree := false
		if i := strings.IndexByte(n, 'd'); i >= 0 {
			streams, degree = n[:i], n[i+1:]
			hasDegree = true
		}
		v, err := strconv.Atoi(streams)
		if err != nil || v <= 0 {
			return false
		}
		d := 0
		if hasDegree {
			if d, err = strconv.Atoi(degree); err != nil || d <= 0 {
				return false
			}
		}
		k.PFStreams, k.PFDegree = v, d
		return true
	}
	for _, p := range []struct {
		prefix string
		dst    func(int)
		zeroOK bool // "<prefix>0" is an explicit off (stored as -1)
	}{
		{"mshr", func(v int) { k.MSHRs = v }, false},
		{"tn", func(v int) { k.Tenants = v }, false},
		{"wql", func(v int) { k.WQLow = v }, true},
		{"wqi", func(v int) { k.WQIdle = int64(v) }, true},
		{"wq", func(v int) { k.WQDrain = v }, false},
		{"win", func(v int) { k.Window = v }, false},
	} {
		if n, ok := strings.CutPrefix(tok, p.prefix); ok {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 || (v == 0 && !p.zeroOK) {
				return false
			}
			if v == 0 {
				v = -1 // the presets ship the feature on; 0 turns it off
			}
			p.dst(v)
			return true
		}
	}
	return false
}

// ParseSpec builds a backend from a spec string; ParseSpecFull also
// returns the parsed knobs so callers can pick up the vmem-level mshr
// setting the backend itself does not consume.
func ParseSpec(spec string, fixedLatency int64) (Backend, error) {
	b, _, err := ParseSpecFull(spec, fixedLatency)
	return b, err
}

// ParseSpecFull builds a backend from a spec string:
//
//	fixed[/mshr<n>][/pf<n>[d<m>]][/tn<n>][/va|vacolor|vacolo]
//	sdram[/mapping[/sched[/profile]]][/<n>ch][/wq<n>][/wql<n>]
//	     [/wqi<n>][/win<n>][/rp<name>[:<n>]][/pfq<n>][/pfdec<n>]
//	     [/qos][/mshr<n>][/pf<n>[d<m>]][/tn<n>][/va|vacolor|vacolo]
//
// Omitted sdram fields default to line/frfcfs/ddr; knob segments may
// appear anywhere after the kind. Every segment must parse: an
// unrecognized or misspelled token (say "msrh8") is an error, never
// silently dropped, and controller segments on the fixed kind are
// rejected rather than ignored.
func ParseSpecFull(spec string, fixedLatency int64) (Backend, Knobs, error) {
	parts := strings.Split(spec, "/")
	kind := strings.ToLower(parts[0])
	mapping, sched, prof := "", "", ""
	var knobs Knobs
	pos := 0 // next positional field: 0 mapping, 1 sched, 2 profile
	for _, tok := range parts[1:] {
		if parseKnob(tok, &knobs) {
			continue
		}
		// Positional fields are validated in place so a typo'd token is
		// diagnosed against everything a spec may contain, not just the
		// slot it happened to land in.
		var err error
		switch pos {
		case 0:
			_, err = ParseMapping(tok)
			mapping = tok
		case 1:
			_, err = ParseScheduler(tok)
			sched = tok
		case 2:
			_, err = ParsePreset(tok)
			prof = tok
		default:
			err = fmt.Errorf("all positional fields already set")
		}
		if err != nil {
			return nil, Knobs{}, fmt.Errorf(
				"unknown token %q in spec %q (want mapping line|bank|row, scheduler fcfs|frfcfs, profile ddr|hbm, or a knob: <n>ch wq<n> wql<n> wqi<n> win<n> rp<open|close|timer[:<n>]|history> pfq<n> pfdec<n> qos mshr<n> pf<n>[d<m>] tn<n> va|vacolor|vacolo)",
				tok, spec)
		}
		pos++
	}
	if kind != "sdram" {
		// Everything but the vmem-level mshr and pf knobs configures
		// the banked controller and would be dead weight on other kinds.
		ctrl := knobs
		ctrl.MSHRs, ctrl.PFStreams, ctrl.PFDegree, ctrl.Tenants = 0, 0, 0, 0
		ctrl.VA = ""
		if pos > 0 || ctrl != (Knobs{}) {
			return nil, Knobs{}, fmt.Errorf(
				"spec %q: mapping/scheduler/profile segments and controller knobs apply to the sdram kind only (mshr<n>, pf<n>[d<m>], tn<n> and va* are allowed anywhere)", spec)
		}
	}
	if kind == "sdram" {
		if mapping == "" {
			mapping = "line"
		}
		if sched == "" {
			sched = "frfcfs"
		}
	}
	b, err := BuildOpts(kind, mapping, sched, prof, knobs, fixedLatency)
	if err != nil {
		return nil, Knobs{}, err
	}
	return b, knobs, nil
}
