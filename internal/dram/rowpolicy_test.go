package dram

import (
	"testing"

	"repro/internal/dram/policy"
)

// TestTimerPolicyClosesIdleRows: the idle-timer policy precharges a row
// lazily once the bank has sat idle past the gap — an access inside the
// gap still hits, an access after it pays a plain activate (not a
// conflict), and the wasted-close accounting fires when the same row is
// reopened.
func TestTimerPolicyClosesIdleRows(t *testing.T) {
	cfg := testConfig() // 1 channel, 1 bank; TRCD 10, TCAS 5, TRP 7, TBurst 4
	cfg.RowPolicy = policy.Spec{Kind: policy.Timer, Idle: 20}
	s := NewSDRAM(cfg)

	// Cold activate: done at 19; the timer arms for 19+20 = 39.
	if got := s.Access(0, 0); got != 19 {
		t.Fatalf("cold access done = %d, want 19", got)
	}
	// Inside the gap the row is still open: a same-row access hits.
	if got, want := s.Access(128, 25), int64(25+5+4); got != want {
		t.Fatalf("in-gap access done = %d, want %d (row hit)", got, want)
	}
	// The hit re-arms the timer for 34+20 = 54. Arriving long after, the
	// row was precharged during the idle gap: a plain activate, never a
	// conflict — and reopening the same row counts as a wasted close.
	if got, want := s.Access(256, 100), int64(100+10+5+4); got != want {
		t.Fatalf("post-gap access done = %d, want %d (activate from idle)", got, want)
	}
	st := s.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 || st.RowConflicts != 0 {
		t.Fatalf("stats = hit %d miss %d conflict %d, want 1/2/0", st.RowHits, st.RowMisses, st.RowConflicts)
	}
	if st.RowClosedEarly != 1 || st.RowReopened != 1 {
		t.Fatalf("closed early %d reopened %d, want 1/1", st.RowClosedEarly, st.RowReopened)
	}
}

// TestTimerPolicyPrechargeOccupiesBank: an access landing inside the
// precharge the fired timer started waits for it to finish before
// activating.
func TestTimerPolicyPrechargeOccupiesBank(t *testing.T) {
	cfg := testConfig()
	cfg.RowPolicy = policy.Spec{Kind: policy.Timer, Idle: 20}
	s := NewSDRAM(cfg)
	s.Access(0, 0) // done 19, timer fires at 39, precharge busy until 46
	// Arriving at 40, the precharge (39..46) is still in flight: the
	// activate starts at 46.
	if got, want := s.Access(128, 40), int64(46+10+5+4); got != want {
		t.Fatalf("in-precharge access done = %d, want %d", got, want)
	}
}

// TestTimerPolicyDefeatsConflict: the timer's payoff — a different-row
// access after the gap pays activate only, where open-page would have
// paid precharge + activate.
func TestTimerPolicyDefeatsConflict(t *testing.T) {
	run := func(rp policy.Spec) int64 {
		cfg := testConfig()
		cfg.RowPolicy = rp
		s := NewSDRAM(cfg)
		s.Access(0, 0)
		return s.Access(4096, 200) // row 4: a conflict under open page
	}
	open := run(policy.Spec{})
	timer := run(policy.Spec{Kind: policy.Timer, Idle: 20})
	if want := int64(200 + 7 + 10 + 5 + 4); open != want {
		t.Fatalf("open-page conflict done = %d, want %d", open, want)
	}
	if want := int64(200 + 10 + 5 + 4); timer != want {
		t.Fatalf("timer activate done = %d, want %d (precharge hidden in the idle gap)", timer, want)
	}
}

// TestHistoryPolicyConverges: at the controller level the live/dead
// predictor starts open, turns a conflict-thrashing bank into
// close-page (conflicts become plain activates), and counts its
// decision flips.
func TestHistoryPolicyConverges(t *testing.T) {
	cfg := testConfig()
	cfg.RowPolicy = policy.Spec{Kind: policy.History}
	s := NewSDRAM(cfg)

	// Alternate rows 0 and 1 on the one bank with long gaps. The first
	// access trains nothing; the second (different row) flips the
	// weakly-live counter dead and still pays the full conflict; from
	// the third on the bank auto-precharges, so alternating rows cost
	// activate only.
	t0 := int64(0)
	rows := []uint64{0, 1024, 0, 1024, 0}
	var dones []int64
	for _, addr := range rows {
		t0 += 100
		dones = append(dones, s.Access(addr, t0))
	}
	st := s.Stats()
	if st.RowConflicts != 1 {
		t.Fatalf("conflicts = %d, want exactly the one pre-flip conflict", st.RowConflicts)
	}
	if st.RowMisses != 4 {
		t.Fatalf("misses = %d, want 4 (cold + three auto-precharged activates)", st.RowMisses)
	}
	if st.PredictorFlips != 1 {
		t.Fatalf("flips = %d, want 1 (live→dead)", st.PredictorFlips)
	}
	// The post-convergence accesses pay activate only.
	for i := 2; i < len(dones); i++ {
		arrival := int64(100 * (i + 1))
		if want := arrival + 10 + 5 + 4; dones[i] != want {
			t.Fatalf("access %d done = %d, want %d (activate from auto-precharged bank)", i, dones[i], want)
		}
	}
}

// TestHistoryPolicyMatchesOpenOnStreams: on a row-friendly stream the
// predictor never leaves the open-page behaviour — completions match
// the static open policy bit for bit and no row is ever closed early.
func TestHistoryPolicyMatchesOpenOnStreams(t *testing.T) {
	run := func(rp policy.Spec) ([]int64, Stats) {
		cfg := DefaultConfig()
		cfg.Mapping = MapBank
		cfg.RowPolicy = rp
		s := NewSDRAM(cfg)
		t0 := int64(0)
		var dones []int64
		for i := 0; i < 512; i++ {
			t0 = s.Access(uint64(i*cfg.LineBytes), t0)
			dones = append(dones, t0)
		}
		return dones, *s.Stats()
	}
	openDones, openStats := run(policy.Spec{})
	histDones, histStats := run(policy.Spec{Kind: policy.History})
	for i := range openDones {
		if openDones[i] != histDones[i] {
			t.Fatalf("access %d: history done %d != open done %d", i, histDones[i], openDones[i])
		}
	}
	if histStats.RowHits != openStats.RowHits || histStats.RowClosedEarly != 0 {
		t.Fatalf("history stats diverged on a streaming load: %+v vs %+v", histStats, openStats)
	}
}

// TestRowPolicySpecEquivalence: the explicit rpopen token builds the
// same controller the bare spec does, and every policy token round-
// trips through the knob grammar.
func TestRowPolicySpecEquivalence(t *testing.T) {
	base, err := ParseSpec("sdram/line/frfcfs", 100)
	if err != nil {
		t.Fatal(err)
	}
	open, err := ParseSpec("sdram/line/frfcfs/rpopen", 100)
	if err != nil {
		t.Fatal(err)
	}
	if base.Name() != open.Name() {
		t.Fatalf("rpopen name %q != bare %q", open.Name(), base.Name())
	}
	if a, b := base.(*SDRAM).Config(), open.(*SDRAM).Config(); a != b {
		t.Fatalf("rpopen config diverged:\n%+v\n%+v", a, b)
	}
	for spec, want := range map[string]policy.Spec{
		"sdram/rpclose":                         {Kind: policy.Close},
		"sdram/rptimer:64":                      {Kind: policy.Timer, Idle: 64},
		"sdram/rptimer":                         {Kind: policy.Timer, Idle: policy.DefaultTimerIdle},
		"sdram/bank/fcfs/rphistory":             {Kind: policy.History},
		"sdram/line/frfcfs/hbm/rphistory/mshr8": {Kind: policy.History},
	} {
		b, err := ParseSpec(spec, 100)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if got := b.(*SDRAM).Config().RowPolicy; got != want {
			t.Errorf("%q: row policy %+v, want %+v", spec, got, want)
		}
	}
	for _, bad := range []string{
		"sdram/rplru", "sdram/rptimer:0", "sdram/rpopen:5", "fixed/rpopen",
	} {
		if _, err := ParseSpec(bad, 100); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// pfReq builds a prefetch-tagged read.
func pfReq(addr uint64, at int64) Request {
	return Request{Addr: addr, At: at, Prefetch: true}
}

// TestPrefetchQueueCapDefers: speculative reads beyond the per-channel
// cap wait for an earlier prefetch to complete, and the deferrals are
// counted.
func TestPrefetchQueueCapDefers(t *testing.T) {
	cfg := testConfig()
	cfg.Banks = 4
	cfg.PFQCap = 1
	s := NewSDRAM(cfg)
	// Two same-cycle prefetches to different banks: with a cap of one,
	// the second must wait out the first's completion (19) before it
	// can even occupy a slot.
	comps := s.Submit([]Request{pfReq(0, 0), pfReq(128, 0)})
	if comps[0].Done != 19 {
		t.Fatalf("first prefetch done = %d, want 19", comps[0].Done)
	}
	// Deferred to 19, activate overlapped nothing: 19+10+5+4.
	if want := int64(19 + 10 + 5 + 4); comps[1].Done != want {
		t.Fatalf("capped prefetch done = %d, want %d", comps[1].Done, want)
	}
	if s.Stats().PrefetchDeferred != 1 {
		t.Fatalf("deferred = %d, want 1", s.Stats().PrefetchDeferred)
	}
	// Demand reads never touch the cap.
	s.Reset()
	comps = s.Submit([]Request{{Addr: 0, At: 0}, {Addr: 128, At: 0}})
	if s.Stats().PrefetchDeferred != 0 {
		t.Fatalf("demand reads deferred: %+v", s.Stats())
	}
	if comps[1].Done >= 19+10+5+4 {
		t.Fatalf("demand read throttled like a prefetch: done %d", comps[1].Done)
	}
}

// TestDemandPriorityAfterPressure: once a channel's speculative stream
// has overrun its cap, demand reads are picked ahead of older
// prefetches in the reorder window; prefetches a demand already merged
// onto (Demanded) keep demand standing.
func TestDemandPriorityAfterPressure(t *testing.T) {
	mk := func() *SDRAM {
		cfg := testConfig()
		cfg.Banks = 4
		cfg.PFQCap = 1
		cfg.ReorderWindow = 8
		return NewSDRAM(cfg)
	}
	// Latch the channel into demand-first mode with cap pressure.
	latch := func(s *SDRAM) {
		s.Submit([]Request{pfReq(0, 0), pfReq(128, 0)})
		if s.Stats().PrefetchDeferred == 0 {
			t.Fatal("latch batch did not defer")
		}
	}

	s := mk()
	latch(s)
	// An older prefetch and a younger demand on different idle banks:
	// the demand is serviced first (its burst wins the bus).
	comps := s.Submit([]Request{pfReq(256, 100), {Addr: 384, At: 101}})
	if comps[1].Done >= comps[0].Done {
		t.Fatalf("demand done %d not before older prefetch %d", comps[1].Done, comps[0].Done)
	}

	// The same batch with the prefetch already demanded (a late
	// prefetch merge): arrival order holds again.
	s = mk()
	latch(s)
	comps = s.Submit([]Request{
		{Addr: 256, At: 100, Prefetch: true, Demanded: true},
		{Addr: 384, At: 101},
	})
	if comps[0].Done >= comps[1].Done {
		t.Fatalf("demanded prefetch done %d not before younger demand %d", comps[0].Done, comps[1].Done)
	}

	// Without the latch (no cap pressure), speculative reads keep full
	// FR-FCFS standing: arrival order between the same two requests.
	s = mk()
	comps = s.Submit([]Request{pfReq(256, 100), {Addr: 384, At: 101}})
	if comps[0].Done >= comps[1].Done {
		t.Fatalf("unlatched prefetch done %d not before younger demand %d", comps[0].Done, comps[1].Done)
	}
}

// TestRowPolicyStatsAccounting: close-page closes are RowClosedEarly,
// and a same-row return is RowReopened — the wasted-close signal.
func TestRowPolicyStatsAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.RowPolicy = policy.Spec{Kind: policy.Close}
	s := NewSDRAM(cfg)
	s.Access(0, 0)
	s.Access(128, 50) // same row: the close was wasted
	s.Access(4096, 100)
	st := s.Stats()
	if st.RowClosedEarly != 3 {
		t.Fatalf("closed early = %d, want 3 (every access auto-precharges)", st.RowClosedEarly)
	}
	if st.RowReopened != 1 {
		t.Fatalf("reopened = %d, want 1 (only the same-row return)", st.RowReopened)
	}
}
