package dram

import "testing"

// TagTenant must replace the tag field, not OR into it: re-tagging an
// already-tagged ID previously merged the two tags into garbage.
func TestTagTenantRetag(t *testing.T) {
	id := TagTenant(42, 3)
	if got := TenantOf(id); got != 3 {
		t.Fatalf("TenantOf after first tag = %d, want 3", got)
	}
	re := TagTenant(id, 1)
	if got := TenantOf(re); got != 1 {
		t.Fatalf("TenantOf after re-tag = %d, want 1 (tag fields merged)", got)
	}
	if re&^tenantMask != 42 {
		t.Fatalf("re-tagging corrupted the entry identity: low bits = %d, want 42", re&^tenantMask)
	}
	if TagTenant(42, 0) != 42 {
		t.Fatalf("tenant 0 must tag to the identity")
	}
}

// A tenant index wider than the tag byte must panic instead of
// silently corrupting the low 56 entry-identity bits.
func TestTagTenantBounds(t *testing.T) {
	for _, ten := range []int{-1, 256, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TagTenant(_, %d) did not panic", ten)
				}
			}()
			TagTenant(7, ten)
		}()
	}
}

// An out-of-range tenant tag must land in the TenantMisroute overflow
// counter, not wrap into another tenant's stat shard.
func TestTenantMisrouteFixed(t *testing.T) {
	f := NewFixed(100)
	f.EnableTenantStats(2)
	// Tag 5 on a 2-shard backend: the old %len wrap would alias this
	// into shard 1.
	batch := []Request{{Addr: 0, At: 0, ID: TagTenant(1, 5)}}
	if comps := f.Submit(batch); len(comps) != 1 {
		t.Fatalf("Submit returned %d completions, want 1", len(comps))
	}
	if got := f.Stats().TenantMisroute; got != 1 {
		t.Fatalf("TenantMisroute = %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		ts := f.TenantStatsOf(i)
		if ts.Reads != 0 || ts.Bytes != 0 {
			t.Fatalf("shard %d recorded the misrouted request: %+v", i, ts)
		}
	}
	// An in-range tag still routes normally and counts no misroute.
	f.Submit([]Request{{Addr: 64, At: 10, ID: TagTenant(2, 1)}})
	if got := f.TenantStatsOf(1).Reads; got != 1 {
		t.Fatalf("shard 1 reads = %d, want 1", got)
	}
	if got := f.Stats().TenantMisroute; got != 1 {
		t.Fatalf("TenantMisroute after valid tag = %d, want 1", got)
	}
}

// The SDRAM controller shares the same routing rule.
func TestTenantMisrouteSDRAM(t *testing.T) {
	s := NewSDRAM(DefaultConfig())
	s.EnableTenantStats(2)
	s.Submit([]Request{{Addr: 0, At: 0, ID: TagTenant(1, 7)}})
	s.Flush()
	if got := s.Stats().TenantMisroute; got == 0 {
		t.Fatalf("TenantMisroute = 0, want > 0")
	}
	for i := 0; i < 2; i++ {
		if ts := s.TenantStatsOf(i); ts.Reads != 0 {
			t.Fatalf("shard %d recorded the misrouted read: %+v", i, ts)
		}
	}
}
