package dram

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the spec-string parser with arbitrary input.
// The contract under fuzzing:
//
//   - ParseSpecFull never panics, whatever the bytes;
//   - parsing is deterministic (same spec → same backend name and
//     knobs);
//   - an accepted spec round-trips: rendering the parsed configuration
//     through FormatSpecOpts yields a spec the parser accepts again,
//     with the same backend name and the same knobs;
//   - an accepted backend services a tiny batch without panicking.
//
// The seed corpus below covers every token kind; additional inputs
// live in testdata/fuzz/FuzzParseSpec (checked in, so CI replays them
// as regular test cases).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"fixed",
		"fixed/mshr8",
		"fixed/mshr8/pf4",
		"sdram",
		"sdram/line/frfcfs",
		"sdram/bank/fcfs",
		"sdram/row/frfcfs/hbm",
		"sdram/line/frfcfs/hbm/4ch/wq8/wql2/wqi50/win16/mshr8/pf8d4",
		"sdram/line/frfcfs/mshr16/pf48d2",
		"sdram/8ch",
		"sdram/rpopen",
		"sdram/rpclose/mshr8",
		"sdram/line/frfcfs/rptimer:150",
		"sdram/line/frfcfs/rptimer",
		"sdram/rphistory/mshr64/pf48d2/pfq4",
		"sdram/rphistory:3",   // rejected: only timer takes a parameter
		"sdram/rptimer:0",     // rejected: non-positive idle gap
		"sdram/rplru",         // rejected: unknown policy
		"fixed/rpopen",        // rejected: controller knob on fixed
		"sdram/mshr8/pfq2",    // rejected: pfq without pf
		"sdram/mshr8/pf4/pfq", // rejected: pfq with no count
		"sdram/pf8",           // rejected: pf without mshr >= 2
		"sdram/msrh8",         // rejected: misspelled knob
		"sdram//frfcfs",       // rejected: empty positional token
		"fixed/line",          // rejected: controller segment on fixed
		"sdram/line/frfcfs/pf0d4",
		"",
		"/",
		"sdram/line/frfcfs/pf8d",
		"sdram/line/frfcfs/pf-1d2",
		"sdram/line/frfcfs/mshr99999999999999999999",
		"sdram/line/frfcfs/tn4/qos",
		"sdram/line/frfcfs/mshr8/pf4/pfdec200/tn4/qos",
		"fixed/tn2",
		"sdram/qos",         // rejected: qos without tenants
		"sdram/tn1/qos",     // rejected: qos needs at least 2 tenants
		"sdram/pfdec100",    // rejected: pfdec without pf
		"fixed/qos",         // rejected: controller token on fixed
		"fixed/pfdec50",     // rejected: ditto
		"sdram/tn0",         // rejected: malformed tenant count
		"sdram/tn-3",        // rejected: ditto
		"sdram/mshr8/pfdec", // rejected: pfdec with no count
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		b1, k1, err1 := ParseSpecFull(spec, 100)
		b2, k2, err2 := ParseSpecFull(spec, 100)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic acceptance of %q: %v vs %v", spec, err1, err2)
		}
		if err1 != nil {
			return
		}
		if b1 == nil || b1.Name() == "" {
			t.Fatalf("accepted spec %q produced no backend", spec)
		}
		if b1.Name() != b2.Name() || k1 != k2 {
			t.Fatalf("non-deterministic parse of %q: %s/%+v vs %s/%+v",
				spec, b1.Name(), k1, b2.Name(), k2)
		}
		// Round-trip through the canonical renderer. The profile is not
		// recoverable from the backend (it only shapes the config), so
		// the round-trip holds the backend name and the knobs fixed.
		kind, mapping, sched := "fixed", "", ""
		if sd, ok := b1.(*SDRAM); ok {
			kind = "sdram"
			mapping = sd.Config().Mapping.String()
			sched = sd.Config().Scheduler.String()
		}
		spec2 := FormatSpecOpts(kind, mapping, sched, "", k1)
		b3, k3, err3 := ParseSpecFull(spec2, 100)
		if err3 != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", spec2, spec, err3)
		}
		if b3.Name() != b1.Name() || k3 != k1 {
			t.Fatalf("round-trip of %q via %q drifted: %s/%+v vs %s/%+v",
				spec, spec2, b1.Name(), k1, b3.Name(), k3)
		}
		// An accepted backend must service a batch.
		comps := b1.Submit([]Request{
			{Addr: 0x1000, At: 0},
			{Addr: 0x9000, Write: true, At: 1},
		})
		if len(comps) != 2 {
			t.Fatalf("spec %q: Submit returned %d completions, want 2", spec, len(comps))
		}
		for _, c := range comps {
			if c.Done <= c.At {
				t.Fatalf("spec %q: completion not after arrival: %+v", spec, c)
			}
		}
	})
}

// TestSpecPrefetchKnob pins the pf token grammar the fuzzer explores.
func TestSpecPrefetchKnob(t *testing.T) {
	cases := []struct {
		spec    string
		ok      bool
		streams int
		degree  int
	}{
		{"sdram/line/frfcfs/mshr8/pf8", true, 8, 0},
		{"sdram/line/frfcfs/mshr8/pf8d4", true, 8, 4},
		{"fixed/mshr4/pf2d1", true, 2, 1},
		{"sdram/line/frfcfs/pf8", false, 0, 0},       // pf without mshr
		{"sdram/line/frfcfs/mshr1/pf8", false, 0, 0}, // blocking file
		{"sdram/line/frfcfs/mshr8/pf0", false, 0, 0},
		{"sdram/line/frfcfs/mshr8/pf8d0", false, 0, 0},
		{"sdram/line/frfcfs/mshr8/pf8d", false, 0, 0}, // trailing separator, no degree
		{"sdram/line/frfcfs/mshr8/pfd4", false, 0, 0},
		{"sdram/line/frfcfs/mshr8/pfxd4", false, 0, 0},
		{"sdram/line/frfcfs/mshr8/pf8dx", false, 0, 0},
	}
	for _, c := range cases {
		_, knobs, err := ParseSpecFull(c.spec, 100)
		if c.ok != (err == nil) {
			t.Errorf("%q: accepted=%v, want %v (err %v)", c.spec, err == nil, c.ok, err)
			continue
		}
		if c.ok && (knobs.PFStreams != c.streams || knobs.PFDegree != c.degree) {
			t.Errorf("%q: pf knobs = %d/%d, want %d/%d", c.spec, knobs.PFStreams, knobs.PFDegree, c.streams, c.degree)
		}
	}
	// The formatted form of parsed pf knobs parses back identically.
	for _, spec := range []string{"sdram/line/frfcfs/mshr8/pf8d4", "fixed/mshr4/pf2d1"} {
		_, k, err := ParseSpecFull(spec, 100)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		kind := "fixed"
		if strings.HasPrefix(spec, "sdram") {
			kind = "sdram"
		}
		spec2 := FormatSpecOpts(kind, "line", "frfcfs", "", k)
		if _, k2, err := ParseSpecFull(spec2, 100); err != nil || k2 != k {
			t.Errorf("%q → %q: knobs %+v vs %+v (err %v)", spec, spec2, k, k2, err)
		}
	}
}
