package dram

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/dram/policy"
	"repro/internal/stats"
)

// Mapping selects how a physical address is decomposed into channel,
// bank and row bits (column bits are the line index within a row).
type Mapping int

const (
	// MapLine interleaves consecutive L2 lines across channels and
	// banks (channel and bank bits just above the line offset):
	// streams spread over every bank, each bank walking one row.
	MapLine Mapping = iota
	// MapBank keeps a whole row's worth of consecutive lines in one
	// bank before rotating to the next channel and bank: maximal
	// row-buffer locality while successive rows still spread out.
	MapBank
	// MapRow fills every row of a bank before touching the next bank
	// (channel and bank bits above the bounded row field): a stream
	// smaller than a bank sees one bank at a time.
	MapRow
)

// String names the mapping as the -dmap flag spells it.
func (m Mapping) String() string {
	switch m {
	case MapLine:
		return "line"
	case MapBank:
		return "bank"
	case MapRow:
		return "row"
	}
	return "?"
}

// ParseMapping resolves a -dmap flag value.
func ParseMapping(s string) (Mapping, error) {
	switch strings.ToLower(s) {
	case "line":
		return MapLine, nil
	case "bank":
		return MapBank, nil
	case "row":
		return MapRow, nil
	}
	return 0, fmt.Errorf("unknown address mapping %q (line, bank, row)", s)
}

// Scheduler selects the controller's request-scheduling policy.
type Scheduler int

const (
	// FCFS issues commands strictly in arrival order: a request's row
	// management waits for the previous request on its channel, and the
	// visible batch is never reordered.
	FCFS Scheduler = iota
	// FRFCFS lets row management start as soon as the target bank is
	// free, overlapping precharge/activate with other banks' bursts,
	// and reorders the visible window: a row hit within the first
	// ReorderWindow pending requests of a channel is serviced ahead of
	// older conflicts.
	FRFCFS
)

// String names the scheduler as the -dsched flag spells it.
func (s Scheduler) String() string {
	switch s {
	case FCFS:
		return "fcfs"
	case FRFCFS:
		return "frfcfs"
	}
	return "?"
}

// ParseScheduler resolves a -dsched flag value.
func ParseScheduler(s string) (Scheduler, error) {
	switch strings.ToLower(s) {
	case "fcfs":
		return FCFS, nil
	case "frfcfs", "fr-fcfs":
		return FRFCFS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (fcfs, frfcfs)", s)
}

// Config describes one SDRAM part and its controller. All counts must
// be powers of two (the controller knobs — queue depths and the reorder
// window — may be any positive value) and all latencies are in CPU
// cycles.
type Config struct {
	Channels    int // independent channels, each with its own controller shard
	Ranks       int // ranks per channel
	Banks       int // banks per rank
	RowBytes    int // row-buffer size per bank
	RowsPerBank int // rows per bank (bounds the row field of MapRow)
	LineBytes   int // bytes per request (the L2 line size)

	TRCD   int64 // activate → column command
	TCAS   int64 // column command → first data
	TRP    int64 // precharge
	TBurst int64 // data-bus cycles per line transfer
	TTurn  int64 // bus turnaround penalty when switching read↔write
	TREFI  int64 // refresh interval per channel (0 disables refresh)
	TRFC   int64 // refresh duration (all banks of the channel stall)

	QueueDepth    int // in-flight reads per channel before back-pressure
	ReorderWindow int // FR-FCFS visible window (1 = arrival order only)
	WQDepth       int // write-queue sizing; drain-at-threshold keeps occupancy below it
	WQDrain       int // occupancy that triggers a write drain (≤ WQDepth)

	// WQLow is the low watermark a threshold drain stops at: crossing
	// WQDrain retires writes oldest-first until WQLow remain, instead
	// of emptying the queue (0 keeps the full drain). WQIdle, when
	// positive, enables opportunistic drains: a read arriving after the
	// data bus has been idle for at least WQIdle cycles first retires
	// any queued writes that finish (burst plus turnaround) before the
	// read's arrival, so free bus time absorbs write traffic without
	// ever delaying a read. Both default to off, preserving the
	// drain-everything-at-threshold behaviour.
	WQLow  int
	WQIdle int64

	// PFQCap bounds how many prefetch-tagged reads may occupy one
	// channel's read queue at once: a prefetch arriving at the cap is
	// deferred until the earliest in-flight prefetch on its channel
	// completes, so speculative traffic can never crowd demand reads
	// out of more than its share of the queue. 0 defaults to half the
	// queue depth; QueueDepth or more effectively disables the cap.
	PFQCap int

	// PFDecay, when positive, lets the demand-first latch decay: a
	// channel that admitPrefetch latched into demand-first picking
	// returns speculative reads to full FR-FCFS standing once PFDecay
	// cycles pass without another deferral on that channel, so phased
	// workloads recover speculation after a burst of prefetch pressure.
	// 0 keeps the historical sticky latch.
	PFDecay int64

	// Tenants is the number of requestor tags sharing the part (0 or 1
	// = single requestor; see TagTenant). QoS turns on per-tenant
	// credit scheduling in each channel: a tenant's reads are capped at
	// its share of the read queue (QueueDepth/Tenants, at least 1) and
	// the FR-FCFS pick services the least-loaded tenant first, so one
	// streaming tenant cannot starve the rest. QoS requires Tenants ≥ 2.
	Tenants int
	QoS     bool

	Mapping   Mapping
	Scheduler Scheduler

	// RowPolicy selects the per-bank row-buffer management policy
	// (internal/dram/policy): static open (the zero value, the
	// historical behaviour), static close, idle-timer close, or the
	// 2-bit history live/dead predictor.
	RowPolicy policy.Spec
}

// DefaultConfig is the commodity-DDR preset: a two-channel, two-rank,
// four-bank part whose row-miss service time is comparable to the
// seed's flat 100-cycle DRAM, so row hits run faster than the seed and
// row conflicts slower. The write-drain watermark and idle-bus gap
// ship tuned (WQLow 4, WQIdle 30): on write-heavy motionsearch
// reconstruction they shave ~1.4k cycles (ddr) and ~1.9k cycles with
// all write-induced read stall (hbm) — see the study in
// EXPERIMENTS.md; a zero-valued Config still runs both off.
func DefaultConfig() Config {
	return Config{
		Channels: 2, Ranks: 2, Banks: 4,
		RowBytes: 8 << 10, RowsPerBank: 1 << 15, LineBytes: cache.L2LineBytes,
		TRCD: 30, TCAS: 40, TRP: 30, TBurst: 8, TTurn: 4,
		TREFI: 7800, TRFC: 120,
		QueueDepth: 16, ReorderWindow: 8, WQDepth: 16, WQDrain: 12,
		WQLow: 4, WQIdle: 30,
		Mapping: MapLine, Scheduler: FRFCFS,
	}
}

type bank struct {
	freeAt  int64
	openRow int64
	open    bool

	// closeAt is the pending idle-timer precharge deadline the row
	// policy set after the last access (0 = none). The close is
	// materialized lazily: the next access to the bank (or the pick
	// loop's rowOpenAt consultation) observes whether the deadline
	// passed first.
	closeAt int64
	// lastRow and used feed the policy's training oracle: would the
	// next access have hit the row the bank last used?
	lastRow int64
	used    bool
	// early marks a row the policy precharged before its natural close;
	// the next access checks it to count wasted closes (RowReopened).
	early bool
}

// channel is one controller shard: banks, data bus, command
// serialization point, refresh engine, bounded read queue and posted
// write queue, all independent of every other channel so batches fan
// out and bandwidth scales with channel count.
type channel struct {
	banks       []bank
	busFree     int64   // data bus: one burst at a time
	busWrite    bool    // last burst was a write (turnaround tracking)
	cmdFree     int64   // FCFS: command issue serialization point
	nextRefresh int64   // next refresh epoch boundary
	inflight    []int64 // completion times of queued reads
	pfInflight  []int64 // completion times of queued prefetch reads (PFQCap)
	// demandUntil is the demand-first latch: while a pending read's
	// arrival is below it the pick keeps demands ahead of speculation.
	// 0 = unlatched; math.MaxInt64 = the sticky latch (PFDecay off).
	demandUntil int64
	tenInflight [][]int64 // QoS: completion times of queued reads per tenant
	writeQ      []Request // posted writes awaiting a threshold drain
}

// decoded caches the address decomposition of one batch request.
type decoded struct {
	ch  int
	bk  int
	row int64
}

// SDRAM is the banked controller model.
type SDRAM struct {
	cfg   Config
	chans []channel
	rp    policy.RowPolicy
	st    Stats
	tst   []TenantStats // per-requestor shards (nil = off)

	lineShift, colBits, rowBits, chanBits, bankBits uint

	// Event tracing (nil = off). service runs deep under the
	// schedulers without request identity in scope, so the callers
	// stash the active request's address and ID here — only when a
	// tracer is attached.
	tr           *stats.Tracer
	trAddr, trID uint64

	// Per-Submit scratch, reused across calls.
	comps   []Completion
	dec     []decoded
	perChan [][]int // pending read batch indices per channel
	wOrder  []int   // write batch indices
}

// NewSDRAM builds a controller from its configuration, panicking on an
// invalid geometry (mirroring cache.New).
func NewSDRAM(cfg Config) *SDRAM {
	for _, g := range []struct {
		name string
		n    int
	}{
		{"channels", cfg.Channels}, {"ranks", cfg.Ranks}, {"banks", cfg.Banks},
		{"row bytes", cfg.RowBytes}, {"rows per bank", cfg.RowsPerBank},
		{"line bytes", cfg.LineBytes},
	} {
		if g.n <= 0 || g.n&(g.n-1) != 0 {
			panic(fmt.Sprintf("dram: %s %d not a power of two", g.name, g.n))
		}
	}
	if cfg.RowBytes < cfg.LineBytes {
		panic("dram: row smaller than a line")
	}
	if cfg.QueueDepth <= 0 {
		panic("dram: queue depth must be positive")
	}
	// Zero-valued controller knobs take defaults so configurations
	// written before a knob existed keep their old behaviour.
	if cfg.ReorderWindow == 0 {
		cfg.ReorderWindow = 1 // arrival order only
	}
	if cfg.WQDepth == 0 {
		cfg.WQDepth = cfg.QueueDepth
	}
	if cfg.WQDrain == 0 {
		cfg.WQDrain = (cfg.WQDepth*3 + 3) / 4
	}
	if cfg.ReorderWindow < 0 {
		panic("dram: reorder window must be positive")
	}
	if cfg.WQDepth < 0 || cfg.WQDrain < 0 || cfg.WQDrain > cfg.WQDepth {
		panic("dram: write queue needs 0 < drain threshold <= depth")
	}
	if cfg.WQLow != 0 && (cfg.WQLow < 0 || cfg.WQLow >= cfg.WQDrain) {
		panic("dram: write-queue low watermark needs 0 <= low < drain threshold")
	}
	if cfg.WQIdle < 0 {
		panic("dram: write-queue idle-drain gap must not be negative")
	}
	if cfg.TREFI > 0 && cfg.TRFC >= cfg.TREFI {
		panic("dram: refresh duration must be shorter than the refresh interval")
	}
	if cfg.PFQCap < 0 {
		panic("dram: prefetch queue cap must not be negative")
	}
	if cfg.PFQCap == 0 {
		cfg.PFQCap = cfg.QueueDepth / 2
		if cfg.PFQCap < 1 {
			cfg.PFQCap = 1
		}
	}
	if cfg.RowPolicy.Kind == policy.Timer && cfg.RowPolicy.Idle <= 0 {
		panic("dram: timer row policy needs a positive idle gap")
	}
	if cfg.PFDecay < 0 {
		panic("dram: demand-first decay must not be negative")
	}
	if cfg.Tenants < 0 {
		panic("dram: tenant count must not be negative")
	}
	if cfg.QoS && cfg.Tenants < 2 {
		panic("dram: qos scheduling needs at least two tenants")
	}
	s := &SDRAM{
		cfg:       cfg,
		rp:        cfg.RowPolicy.New(cfg.Channels * cfg.Ranks * cfg.Banks),
		lineShift: log2(cfg.LineBytes),
		colBits:   log2(cfg.RowBytes / cfg.LineBytes),
		rowBits:   log2(cfg.RowsPerBank),
		chanBits:  log2(cfg.Channels),
		bankBits:  log2(cfg.Ranks * cfg.Banks),
	}
	s.chans = make([]channel, cfg.Channels)
	s.perChan = make([][]int, cfg.Channels)
	s.st.initHists()
	s.Reset()
	return s
}

// globalBank is the part-wide bank index the row policy keys its
// per-bank state by.
func (s *SDRAM) globalBank(ch, bk int) int {
	return ch*s.cfg.Ranks*s.cfg.Banks + bk
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// Name implements Backend.
func (s *SDRAM) Name() string {
	return fmt.Sprintf("sdram(%s,%s,%s)", s.cfg.Mapping, s.cfg.Scheduler, s.cfg.RowPolicy)
}

// Stats implements Backend.
func (s *SDRAM) Stats() *Stats { return &s.st }

// LineBytes implements Backend.
func (s *SDRAM) LineBytes() int { return s.cfg.LineBytes }

// MinReadLatency implements Backend: even a row hit on an idle bank
// pays the column access and the data burst.
func (s *SDRAM) MinReadLatency() int64 { return s.cfg.TCAS + s.cfg.TBurst }

// WriteRoom implements Backend: a posted write to addr has room while
// its channel's write queue sits below the drain threshold — posting
// one more would not trigger a drain. Advisory only: posted writes
// arrive with the next lazily-submitted batch, so the queue may have
// drained (or filled) by then.
func (s *SDRAM) WriteRoom(addr uint64) bool {
	ch, _, _ := s.decode(addr)
	return len(s.chans[ch].writeQ)+1 < s.cfg.WQDrain
}

// Config returns the controller's configuration.
func (s *SDRAM) Config() Config { return s.cfg }

// ChannelOf exposes the channel a physical address decodes to under
// the configured mapping; ChannelCount is the part's channel count.
// Together they satisfy vm.ChannelMapper, letting the page-placement
// policies color pages by the channel bits without the vm package
// depending on this one.
func (s *SDRAM) ChannelOf(addr uint64) int {
	ch, _, _ := s.decode(addr)
	return ch
}

// ChannelCount reports the number of independent channels.
func (s *SDRAM) ChannelCount() int { return s.cfg.Channels }

// SetTracer implements Traceable.
func (s *SDRAM) SetTracer(t *stats.Tracer) { s.tr = t }

// Reset implements Backend.
func (s *SDRAM) Reset() {
	s.st.reset()
	for i := range s.tst {
		s.tst[i].reset()
	}
	s.rp.Reset()
	for c := range s.chans {
		s.chans[c] = channel{
			banks:       make([]bank, s.cfg.Ranks*s.cfg.Banks),
			nextRefresh: s.cfg.TREFI,
			inflight:    make([]int64, 0, s.cfg.QueueDepth),
			pfInflight:  make([]int64, 0, s.cfg.QueueDepth),
			writeQ:      make([]Request, 0, s.cfg.WQDepth),
		}
		if s.cfg.QoS {
			s.chans[c].tenInflight = make([][]int64, s.cfg.Tenants)
		}
	}
}

// EnableTenantStats implements TenantAware: allocate n per-requestor
// stat shards. Recording into them is pure observation — it never
// feeds back into scheduling — so enabling shards preserves timing
// bit-for-bit.
func (s *SDRAM) EnableTenantStats(n int) {
	s.tst = make([]TenantStats, n)
	for i := range s.tst {
		s.tst[i].init()
	}
}

// TenantStatsOf implements TenantAware.
func (s *SDRAM) TenantStatsOf(i int) *TenantStats { return &s.tst[i] }

// tenantShard maps a request ID to its stat shard (nil when sharding
// is off or the tag is outside the allocated range; stray tags are
// counted in Stats.TenantMisroute instead of aliasing into another
// tenant's shard, and can never panic the controller).
func (s *SDRAM) tenantShard(id uint64) *TenantStats {
	return shardFor(s.tst, id, &s.st)
}

// decode splits addr into channel, bank and row according to the
// configured mapping. The returned row index folds in every bit above
// the fields the mapping consumes, so distinct rows never alias.
func (s *SDRAM) decode(addr uint64) (ch, bk int, row int64) {
	a := addr >> s.lineShift
	take := func(bits uint) uint64 {
		v := a & ((1 << bits) - 1)
		a >>= bits
		return v
	}
	switch s.cfg.Mapping {
	case MapLine:
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		take(s.colBits)
		row = int64(a)
	case MapBank:
		take(s.colBits)
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		row = int64(a)
	case MapRow:
		take(s.colBits)
		row = int64(take(s.rowBits))
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		// Addresses past the part's capacity wrap; fold the remainder
		// into the row index so distinct rows never alias.
		row |= int64(a) << s.rowBits
	}
	return ch, bk, row
}

// refreshUpTo performs every refresh epoch the channel owes before
// cycle t: all banks close their rows and stall for TRFC.
func (s *SDRAM) refreshUpTo(c *channel, t int64) {
	if s.cfg.TREFI <= 0 || t < c.nextRefresh {
		return
	}
	// All k owed epochs land in closed form rather than one loop pass
	// each — long-idle channels (staggered tenants, drained traces) owe
	// thousands. Stepping epoch i sets freeAt = max(freeAt, epoch_i) +
	// TRFC, so the final free time is whichever is later: every TRFC
	// stacked serially on the bank's current backlog, or the last
	// epoch's own TRFC tail (the steady state once the backlog drains —
	// TRFC <= TREFI — while back-to-back epochs, TRFC > TREFI, keep
	// stacking from the first).
	k := (t-c.nextRefresh)/s.cfg.TREFI + 1
	first := c.nextRefresh
	last := first + (k-1)*s.cfg.TREFI
	for b := range c.banks {
		bk := &c.banks[b]
		bk.open = false
		bk.freeAt = max(max(bk.freeAt, first)+k*s.cfg.TRFC, last+s.cfg.TRFC)
	}
	c.nextRefresh = last + s.cfg.TREFI
	s.st.Refreshes += uint64(k)
}

// rowLatency categorizes the access against the bank's row buffer,
// counts it, and returns the row-management latency it pays.
func (s *SDRAM) rowLatency(bk *bank, row int64) int64 {
	switch {
	case bk.open && bk.openRow == row:
		s.st.RowHits++
		return 0
	case !bk.open:
		s.st.RowMisses++
		return s.cfg.TRCD
	default:
		s.st.RowConflicts++
		return s.cfg.TRP + s.cfg.TRCD
	}
}

// burst schedules one data transfer on the channel bus starting no
// earlier than ready, paying the turnaround penalty when the bus
// switches direction, and returns the completion cycle.
func (s *SDRAM) burst(c *channel, ready int64, write bool) int64 {
	busReady := c.busFree
	if c.busWrite != write {
		busReady += s.cfg.TTurn
	}
	if !write && c.busWrite && busReady > ready {
		// The read's data sat ready while the bus finished a write
		// burst (plus the turnaround): write-induced read latency.
		s.st.WriteReadStall += uint64(busReady - ready)
	}
	dataStart := max(ready, busReady)
	done := dataStart + s.cfg.TBurst
	c.busFree = done
	c.busWrite = write
	s.st.BusyCycles += uint64(s.cfg.TBurst)
	return done
}

// service runs one request through the bank and bus of its channel:
// refresh catch-up, any pending idle-timer precharge, row management,
// column access and data burst, leaving the row buffer per the row
// policy's decision. arrival must already include any queue
// back-pressure.
func (s *SDRAM) service(ci, bi int, row, arrival int64, write bool) int64 {
	c := &s.chans[ci]
	s.refreshUpTo(c, arrival)
	bk := &c.banks[bi]
	serviceStart := func() int64 {
		start := max(arrival, bk.freeAt)
		if s.cfg.Scheduler == FCFS {
			start = max(start, c.cmdFree)
		}
		return start
	}
	// A busy bank can carry the service past refresh boundaries the
	// arrival had not reached; those refreshes still close the rows
	// before the request is served.
	catchUp := func() int64 {
		start := serviceStart()
		for s.cfg.TREFI > 0 && start >= c.nextRefresh {
			s.refreshUpTo(c, start)
			start = serviceStart()
		}
		return start
	}
	start := catchUp()
	// Materialize a pending idle-timer close: the policy's deadline
	// passed while the row sat open, so the precharge fired at closeAt
	// and occupies the bank for TRP from there — an access landing
	// inside that window waits the precharge out, one landing later
	// finds the bank idle and closed.
	if bk.open && bk.closeAt > 0 && start >= bk.closeAt {
		bk.open = false
		bk.early = true
		s.st.RowClosedEarly++
		if s.tr != nil {
			s.tr.Emit(stats.Event{Cycle: bk.closeAt, Cat: "dram", Name: "rp_close", Lane: s.globalBank(ci, bi)})
		}
		if pre := bk.closeAt + s.cfg.TRP; pre > bk.freeAt {
			bk.freeAt = pre
		}
		start = catchUp()
	}
	// Train the policy against the open-page oracle — would this access
	// have hit the row the bank last used? — and account a close the
	// very next access undoes as wasted (the row had to be reopened).
	if bk.used {
		sameRow := row == bk.lastRow
		if bk.early && sameRow {
			s.st.RowReopened++
		}
		if s.rp.Train(s.globalBank(ci, bi), sameRow) {
			s.st.PredictorFlips++
		}
	}

	colIssue := start + s.rowLatency(bk, row)
	if s.cfg.Scheduler == FCFS {
		c.cmdFree = colIssue
	}
	done := s.burst(c, colIssue+s.cfg.TCAS, write)
	if s.tr != nil {
		lane := s.globalBank(ci, bi)
		ten := TenantOf(s.trID)
		if colIssue > start {
			s.tr.Emit(stats.Event{Cycle: start, Dur: colIssue - start, Cat: "dram", Name: "activate",
				Addr: s.trAddr, ID: s.trID, Lane: lane, Tenant: ten})
		}
		s.tr.Emit(stats.Event{Cycle: colIssue, Dur: s.cfg.TCAS, Cat: "dram", Name: "column",
			Addr: s.trAddr, ID: s.trID, Lane: lane, Tenant: ten})
		s.tr.Emit(stats.Event{Cycle: done - s.cfg.TBurst, Dur: s.cfg.TBurst, Cat: "dram", Name: "burst",
			Addr: s.trAddr, ID: s.trID, Lane: lane, Tenant: ten})
	}

	bk.freeAt = done
	bk.lastRow, bk.used = row, true
	bk.closeAt, bk.early = 0, false
	switch gap := s.rp.CloseAfter(s.globalBank(ci, bi)); {
	case gap == policy.KeepOpen:
		bk.open, bk.openRow = true, row
	case gap == 0:
		// Auto-precharge rides the burst: the bank is busy TRP longer
		// and the next access activates from idle.
		bk.freeAt += s.cfg.TRP
		bk.open = false
		bk.early = true
		s.st.RowClosedEarly++
		if s.tr != nil {
			s.tr.Emit(stats.Event{Cycle: done, Cat: "dram", Name: "rp_close", Lane: s.globalBank(ci, bi)})
		}
	default:
		bk.open, bk.openRow = true, row
		bk.closeAt = done + gap
	}
	return done
}

// admitRead applies the bounded read queue: completed entries are
// dropped, occupancy is sampled, and the arrival stalls until a slot
// frees when the queue is full. Returns the (possibly delayed) arrival.
func (s *SDRAM) admitRead(c *channel, t0 int64) int64 {
	arrival := t0
	live := c.inflight[:0]
	for _, done := range c.inflight {
		if done > arrival {
			live = append(live, done)
		}
	}
	c.inflight = live
	occ := len(c.inflight) + 1 // the arriving request occupies a slot
	if occ > s.cfg.QueueDepth {
		occ = s.cfg.QueueDepth
	}
	s.st.QueueSum += uint64(occ)
	if occ > s.st.QueueMax {
		s.st.QueueMax = occ
	}
	if len(c.inflight) >= s.cfg.QueueDepth {
		oldest := 0
		for i := 1; i < len(c.inflight); i++ {
			if c.inflight[i] < c.inflight[oldest] {
				oldest = i
			}
		}
		arrival = c.inflight[oldest]
		c.inflight = append(c.inflight[:oldest], c.inflight[oldest+1:]...)
		s.st.StallCycles += uint64(arrival - t0)
	}
	return arrival
}

// pfUnderCap reports whether the channel could take one more
// speculative read at cycle t without crossing PFQCap — the same
// occupancy bound admitPrefetch enforces, consulted by the pick loop
// before it promotes a speculative row hit over a waiting demand.
func (s *SDRAM) pfUnderCap(c *channel, t int64) bool {
	n := 0
	for _, done := range c.pfInflight {
		if done > t {
			n++
		}
	}
	return n < s.cfg.PFQCap
}

// admitPrefetch applies the per-channel cap on speculative read-queue
// occupancy: a prefetch arriving while PFQCap prefetch reads are still
// in flight on its channel is deferred until the earliest of them
// completes (counted in PrefetchDeferred), so speculative traffic can
// never crowd demand reads out of more than its share of the bounded
// queue. Crossing the cap also latches the channel into demand-first
// picking (see scheduleReads): sticky by default, or for PFDecay
// cycles past the deferral when decay is configured — a channel whose
// speculative stream stays under its share that long earns its full
// FR-FCFS standing back. Demand reads pass through untouched.
func (s *SDRAM) admitPrefetch(c *channel, t0 int64) int64 {
	live := c.pfInflight[:0]
	for _, done := range c.pfInflight {
		if done > t0 {
			live = append(live, done)
		}
	}
	c.pfInflight = live
	if len(c.pfInflight) < s.cfg.PFQCap {
		return t0
	}
	s.st.PrefetchDeferred++
	if s.cfg.PFDecay > 0 {
		if until := t0 + s.cfg.PFDecay; until > c.demandUntil {
			c.demandUntil = until
		}
	} else {
		c.demandUntil = math.MaxInt64
	}
	for len(c.pfInflight) >= s.cfg.PFQCap {
		earliest := 0
		for i := 1; i < len(c.pfInflight); i++ {
			if c.pfInflight[i] < c.pfInflight[earliest] {
				earliest = i
			}
		}
		if d := c.pfInflight[earliest]; d > t0 {
			t0 = d
		}
		c.pfInflight = append(c.pfInflight[:earliest], c.pfInflight[earliest+1:]...)
	}
	return t0
}

// qosCredit is the per-tenant share of a channel's read queue under
// QoS scheduling: an even split, but never below one slot.
func (s *SDRAM) qosCredit() int {
	credit := s.cfg.QueueDepth / s.cfg.Tenants
	if credit < 1 {
		credit = 1
	}
	return credit
}

// tenLive counts one tenant's reads still in flight on the channel at
// cycle t — the load figure both the credit gate and the QoS pick key
// on.
func tenLive(q []int64, t int64) int {
	n := 0
	for _, done := range q {
		if done > t {
			n++
		}
	}
	return n
}

// pruneTenant drops tenant ti's completed reads from its channel
// in-flight list as of cycle t, keeping tenLive cheap for the pick
// loop's repeated scans.
func (s *SDRAM) pruneTenant(c *channel, ti int, t int64) {
	q := c.tenInflight[ti]
	live := q[:0]
	for _, done := range q {
		if done > t {
			live = append(live, done)
		}
	}
	c.tenInflight[ti] = live
}

// serviceRead runs one read through its channel, including queue
// back-pressure (the prefetch occupancy cap for speculative reads)
// and the bank-level-parallelism sample, and returns its completion
// cycle. id is the request's opaque tag, consulted only for tenant
// routing (the per-tenant in-flight bookkeeping the QoS pick keys on).
func (s *SDRAM) serviceRead(ch int, bi int, row int64, t0 int64, prefetch bool, id uint64) int64 {
	c := &s.chans[ch]
	req := t0 // the request's own arrival, before any back-pressure
	if prefetch {
		t0 = s.admitPrefetch(c, t0)
	}
	ti := 0
	if c.tenInflight != nil {
		ti = TenantOf(id) % len(c.tenInflight)
		s.pruneTenant(c, ti, t0)
	}
	arrival := s.admitRead(c, t0)
	s.opportunisticDrain(ch, bi, arrival)
	// Bank-level parallelism: banks already busy at arrival, across the
	// whole part.
	for ci := range s.chans {
		for b := range s.chans[ci].banks {
			if s.chans[ci].banks[b].freeAt > arrival {
				s.st.BankBusySum++
			}
		}
	}
	done := s.service(ch, bi, row, arrival, false)
	c.inflight = append(c.inflight, done)
	if prefetch {
		c.pfInflight = append(c.pfInflight, done)
	}
	if c.tenInflight != nil {
		c.tenInflight[ti] = append(c.tenInflight[ti], done)
	}
	s.st.ReadWait.Observe(arrival - req)
	s.st.ReadService.Observe(done - arrival)
	if ts := s.tenantShard(id); ts != nil {
		ts.Reads++
		ts.Bytes += uint64(s.cfg.LineBytes)
		if prefetch {
			ts.PrefetchReads++
		}
		ts.ReadLatency.Observe(done - req)
	}
	if s.tr != nil {
		s.tr.Emit(stats.Event{Cycle: done, Cat: "dram", Name: "complete",
			Addr: s.trAddr, ID: s.trID, Lane: ch, Tenant: TenantOf(id)})
	}
	s.st.observe(t0, done, s.cfg.LineBytes)
	return done
}

// drainWrites retires the channel's queued writes oldest-first starting
// no earlier than cycle t, stopping when `keep` remain (0 empties the
// queue; the low-watermark policy passes cfg.WQLow so a threshold
// crossing only sheds the queue's head instead of serializing a full
// flush in front of the next reads). Reads keep priority by
// construction: a batch's reads are scheduled before its writes
// enqueue, so drains only delay later traffic through bank and bus
// occupancy.
func (s *SDRAM) drainWrites(ci int, t int64, keep int) {
	c := &s.chans[ci]
	if len(c.writeQ) <= keep {
		return
	}
	s.st.WriteDrains++
	if keep > 0 {
		s.st.PartialDrains++
	}
	n := len(c.writeQ) - keep
	for _, w := range c.writeQ[:n] {
		_, bi, row := s.decode(w.Addr)
		if s.tr != nil {
			s.trAddr, s.trID = w.Addr, w.ID
		}
		done := s.service(ci, bi, row, max(t, w.At), true)
		// The drain's bus time must stay inside the bandwidth window,
		// or drained bytes would report as transferred in zero cycles.
		if done > s.st.LastDone {
			s.st.LastDone = done
		}
	}
	c.writeQ = append(c.writeQ[:0], c.writeQ[n:]...)
}

// peekRowLatency is rowLatency without the statistics side effects,
// used to estimate a write's service time before committing to it. at
// is the cycle the estimate is for: a row whose idle-timer deadline
// passed by then counts as closed.
func (s *SDRAM) peekRowLatency(bk *bank, row, at int64) int64 {
	open := bk.open && (bk.closeAt == 0 || at < bk.closeAt)
	switch {
	case open && bk.openRow == row:
		return 0
	case !open:
		return s.cfg.TRCD
	default:
		return s.cfg.TRP + s.cfg.TRCD
	}
}

// opportunisticDrain retires queued writes on a bus that has sat idle
// for at least WQIdle cycles before a read arriving at `arrival`, but
// only writes that cannot take the read's service slot: a write to the
// read's own bank is never drained here (it would disturb the bank's
// row buffer and turn the read's row hit into a conflict), and every
// drained write's data burst plus the turnaround back to reads must be
// estimated to complete by the arrival (a refresh epoch landing
// between the estimate and the service can still nudge it; that is the
// same exposure the threshold drain accepts). Writes retire
// oldest-first and the scan stops at the first write that does not
// fit, keeping queue order intact.
func (s *SDRAM) opportunisticDrain(ci int, readBank int, arrival int64) {
	c := &s.chans[ci]
	if s.cfg.WQIdle <= 0 || len(c.writeQ) == 0 || c.busFree+s.cfg.WQIdle > arrival {
		return
	}
	kept := c.writeQ[:0]
	for i, w := range c.writeQ {
		_, bi, row := s.decode(w.Addr)
		if bi == readBank {
			kept = append(kept, c.writeQ[i:]...)
			break
		}
		bk := &c.banks[bi]
		colStart := max(w.At, bk.freeAt)
		if s.cfg.Scheduler == FCFS {
			colStart = max(colStart, c.cmdFree)
		}
		colIssue := colStart + s.peekRowLatency(bk, row, colStart)
		busReady := c.busFree
		if !c.busWrite { // switching read→write pays the turnaround
			busReady += s.cfg.TTurn
		}
		dataStart := max(colIssue+s.cfg.TCAS, busReady)
		if dataStart+s.cfg.TBurst+s.cfg.TTurn > arrival {
			kept = append(kept, c.writeQ[i:]...)
			break
		}
		if s.tr != nil {
			s.trAddr, s.trID = w.Addr, w.ID
		}
		done := s.service(ci, bi, row, w.At, true)
		if done > s.st.LastDone {
			s.st.LastDone = done
		}
		s.st.OppDrains++
	}
	c.writeQ = kept
}

// postWrite absorbs one write into the channel's write queue and
// returns its acceptance cycle. Crossing the drain threshold retires
// writes down to the low watermark (the whole queue when WQLow is 0).
func (s *SDRAM) postWrite(ci int, w Request) int64 {
	c := &s.chans[ci]
	ack := w.At + 1 // posted: the queue accepts it next cycle
	c.writeQ = append(c.writeQ, w)
	s.st.Writes++
	if ts := s.tenantShard(w.ID); ts != nil {
		ts.Writes++
		ts.Bytes += uint64(s.cfg.LineBytes)
	}
	s.st.observe(w.At, ack, s.cfg.LineBytes)
	if len(c.writeQ) >= s.cfg.WQDrain {
		s.drainWrites(ci, ack, s.cfg.WQLow)
	}
	return ack
}

// rowOpenAt reports whether the bank's row buffer still holds row when
// a request arriving at cycle at reaches it: the row must be open, no
// refresh epoch may close it first, and a pending idle-timer precharge
// must not have fired — the pick loop's consultation of the row policy
// when it decides what a bank going idle is worth.
func (s *SDRAM) rowOpenAt(c *channel, bk *bank, row, at int64) bool {
	if !bk.open || bk.openRow != row {
		return false
	}
	if s.cfg.TREFI > 0 && at >= c.nextRefresh {
		return false
	}
	return bk.closeAt == 0 || at < bk.closeAt
}

// scheduleReads services one channel's pending reads through the
// demand-aware FR-FCFS reorder window. While the channel's speculative
// occupancy sits below PFQCap, speculation is harmless and the classic
// pick runs unchanged: the oldest row hit in the first ReorderWindow
// pending requests (still a hit under the row policy's pending
// closes), demand or prefetch alike, else the oldest request. Once
// prefetch reads hold their whole PFQCap share of the queue — the same
// occupancy bound admitPrefetch enforces — the pick turns demand-first:
// a demand row hit, then the oldest demand, and a speculative read
// only when the window holds no demand at all. Prefetches a demand has
// already merged onto (Request.Demanded — the late prefetches whose
// fills gate instructions) count as demands throughout:
// deprioritizing them would push back the very completions the
// pipeline is waiting on. FCFS keeps strict arrival order. pend must
// be sorted by arrival and is consumed.
func (s *SDRAM) scheduleReads(ch int, batch []Request, pend []int) {
	c := &s.chans[ch]
	for len(pend) > 0 {
		pick := 0
		switch {
		case s.cfg.QoS && s.cfg.Scheduler == FRFCFS && s.cfg.ReorderWindow > 1:
			pick = s.qosPick(c, batch, pend)
		case s.cfg.Scheduler == FRFCFS && s.cfg.ReorderWindow > 1:
			w := len(pend)
			if w > s.cfg.ReorderWindow {
				w = s.cfg.ReorderWindow
			}
			// Speculative reads keep full FR-FCFS standing until the
			// channel's speculative stream overruns its PFQCap share
			// (the admitPrefetch deferral latch), and win it back once
			// the latch decays: PFDecay quiet cycles with no further
			// deferral unlatch the channel.
			if c.demandUntil != 0 && batch[pend[0]].At >= c.demandUntil {
				c.demandUntil = 0
				s.st.DemandFirstLapses++
			}
			classic := c.demandUntil == 0
			pick = -1
			demandHit, demand, pfHit := -1, -1, -1
			for i := 0; i < w; i++ {
				d := s.dec[pend[i]]
				hit := s.rowOpenAt(c, &c.banks[d.bk], d.row, batch[pend[i]].At)
				if batch[pend[i]].speculative() && !classic {
					if hit && pfHit < 0 && s.pfUnderCap(c, batch[pend[i]].At) {
						pfHit = i
					}
					continue
				}
				if hit {
					demandHit = i
					break
				}
				if demand < 0 {
					demand = i
				}
			}
			switch {
			case demandHit >= 0:
				pick = demandHit
			case demand >= 0:
				pick = demand
			case pfHit >= 0:
				pick = pfHit
			default:
				pick = 0
			}
		}
		if pick != 0 {
			s.st.Reordered++
		}
		i := pend[pick]
		pend = append(pend[:pick], pend[pick+1:]...)
		d := s.dec[i]
		if s.tr != nil {
			s.trAddr, s.trID = batch[i].Addr, batch[i].ID
		}
		s.comps[i].Done = s.serviceRead(ch, d.bk, d.row, batch[i].At, batch[i].speculative(), batch[i].ID)
	}
}

// qosPick is the tenant-aware window pick, a pure reordering of the
// classic FR-FCFS service — it never delays a picked request, so the
// channel stays work-conserving. The key, most significant first:
//
//   - credit: a read whose tenant already holds its full queue share
//     in flight (see qosCredit) yields to any under-share candidate,
//     so a flooding tenant cannot monopolize the part while a sparse
//     tenant has work waiting. Each yield counts as a QoSDeferred
//     scheduling turn against the heavy tenant.
//   - demand beats speculation; over-cap speculative reads wait unless
//     the window holds nothing else (mirroring the demand-first pick).
//   - readiness: the request whose data will be ready soonest goes
//     first, estimated as bank-free time plus the row overhead the
//     access would pay. This matters under multi-tenant interleaving:
//     lockstep requestors at the same kernel position hit the SAME
//     bank with different rows, and serving those conflicts
//     back-to-back in arrival order reserves the channel bus for data
//     that is not ready while other banks sit idle. Picking ready
//     banks first overlaps the conflict streaks instead.
//   - tenant load (fewest reads in flight), then arrival order, break
//     the remaining ties.
func (s *SDRAM) qosPick(c *channel, batch []Request, pend []int) int {
	w := len(pend)
	if w > s.cfg.ReorderWindow {
		w = s.cfg.ReorderWindow
	}
	credit := s.qosCredit()
	pick, bestOver, bestSpec, bestLoad := -1, 0, 0, 0
	var bestReady int64
	for i := 0; i < w; i++ {
		r := batch[pend[i]]
		spec := 0
		if r.speculative() {
			if !s.pfUnderCap(c, r.At) {
				continue
			}
			spec = 1
		}
		load := 0
		if c.tenInflight != nil {
			load = tenLive(c.tenInflight[TenantOf(r.ID)%len(c.tenInflight)], r.At)
		}
		over := 0
		if load >= credit {
			over = 1
		}
		d := s.dec[pend[i]]
		bk := &c.banks[d.bk]
		start := r.At
		if bk.freeAt > start {
			start = bk.freeAt
		}
		ready := start + s.peekRowLatency(bk, d.row, start)
		if pick < 0 || over < bestOver || (over == bestOver && (spec < bestSpec ||
			(spec == bestSpec && (ready < bestReady || (ready == bestReady && load < bestLoad))))) {
			pick, bestOver, bestSpec, bestReady, bestLoad = i, over, spec, ready, load
		}
	}
	if pick < 0 {
		return 0
	}
	// Account the yields: every over-share read that arrived before the
	// winner gave up this scheduling turn to it.
	if bestOver == 0 {
		for i := 0; i < pick; i++ {
			r := batch[pend[i]]
			if r.speculative() && !s.pfUnderCap(c, r.At) {
				continue
			}
			if c.tenInflight == nil {
				continue
			}
			ti := TenantOf(r.ID) % len(c.tenInflight)
			if tenLive(c.tenInflight[ti], r.At) >= credit {
				s.st.QoSDeferred++
				if ts := s.tenantShard(r.ID); ts != nil {
					ts.QoSDeferred++
				}
				// Stamp the yielded read's completion with one transfer
				// slot — the turn it gave up — so the requestor's CPI
				// stack can attribute the added wait to QoS rather than
				// raw DRAM service.
				s.comps[pend[i]].QoSDelay += s.cfg.TBurst
			}
		}
	}
	return pick
}

// Submit implements Backend. The batch fans out across channels; each
// channel schedules its reads through the demand-aware FR-FCFS reorder
// window (demand row hits, then demands, then prefetch row hits, then
// arrival order — and speculative reads are additionally capped by
// PFQCap), then posts the batch's writes into its write queue.
func (s *SDRAM) Submit(batch []Request) []Completion {
	s.comps = s.comps[:0]
	if len(batch) == 0 {
		return s.comps
	}
	if cap(s.comps) < len(batch) {
		s.comps = make([]Completion, len(batch))
	} else {
		s.comps = s.comps[:len(batch)]
	}
	s.dec = s.dec[:0]
	s.wOrder = s.wOrder[:0]
	for c := range s.perChan {
		s.perChan[c] = s.perChan[c][:0]
	}

	// Decode every request once and split it per channel: reads into
	// the channel's pending list, writes into a deferred list. Stable
	// sorting by arrival keeps "oldest" well-defined even when the
	// caller's batch is not time-ordered.
	for i, r := range batch {
		ch, bk, row := s.decode(r.Addr)
		s.dec = append(s.dec, decoded{ch: ch, bk: bk, row: row})
		s.comps[i] = Completion{Addr: r.Addr, Write: r.Write, At: r.At, Channel: ch, ID: r.ID}
		if s.tr != nil {
			s.tr.Emit(stats.Event{Cycle: r.At, Cat: "dram", Name: "issue",
				Addr: r.Addr, ID: r.ID, Lane: ch, Tenant: TenantOf(r.ID)})
		}
		switch {
		case r.Write:
			s.wOrder = append(s.wOrder, i)
		default:
			if r.Prefetch {
				s.st.PrefetchReads++
			}
			s.perChan[ch] = append(s.perChan[ch], i)
		}
	}

	// Reads first (read priority), each channel independent.
	for ch := range s.perChan {
		pend := s.perChan[ch]
		sort.SliceStable(pend, func(a, b int) bool { return batch[pend[a]].At < batch[pend[b]].At })
		s.scheduleReads(ch, batch, pend)
	}

	// Then the batch's writes, in arrival order.
	sort.SliceStable(s.wOrder, func(a, b int) bool { return batch[s.wOrder[a]].At < batch[s.wOrder[b]].At })
	for _, i := range s.wOrder {
		s.comps[i].Done = s.postWrite(s.dec[i].ch, batch[i])
	}
	return s.comps
}

// Access submits a single read — the one-at-a-time compatibility path
// the pre-batch API exposed; unit tests and the scalar adapter use it.
func (s *SDRAM) Access(addr uint64, t0 int64) int64 { return Access(s, addr, t0) }

// Flush drains every channel's write queue at its current bus-free
// cycle, so end-of-run statistics account for all posted traffic.
func (s *SDRAM) Flush() {
	for ci := range s.chans {
		s.drainWrites(ci, s.chans[ci].busFree, 0)
	}
}
