package dram

import (
	"fmt"
	"strings"
)

// Mapping selects how a physical address is decomposed into channel,
// bank and row bits (column bits are the line index within a row).
type Mapping int

const (
	// MapLine interleaves consecutive L2 lines across channels and
	// banks (channel and bank bits just above the line offset):
	// streams spread over every bank, each bank walking one row.
	MapLine Mapping = iota
	// MapBank keeps a whole row's worth of consecutive lines in one
	// bank before rotating to the next channel and bank: maximal
	// row-buffer locality while successive rows still spread out.
	MapBank
	// MapRow fills every row of a bank before touching the next bank
	// (channel and bank bits above the bounded row field): a stream
	// smaller than a bank sees one bank at a time.
	MapRow
)

// String names the mapping as the -dmap flag spells it.
func (m Mapping) String() string {
	switch m {
	case MapLine:
		return "line"
	case MapBank:
		return "bank"
	case MapRow:
		return "row"
	}
	return "?"
}

// ParseMapping resolves a -dmap flag value.
func ParseMapping(s string) (Mapping, error) {
	switch strings.ToLower(s) {
	case "line":
		return MapLine, nil
	case "bank":
		return MapBank, nil
	case "row":
		return MapRow, nil
	}
	return 0, fmt.Errorf("unknown address mapping %q (line, bank, row)", s)
}

// Scheduler selects the controller's request-scheduling policy.
type Scheduler int

const (
	// FCFS issues commands strictly in arrival order: a request's row
	// management waits for the previous request on its channel.
	FCFS Scheduler = iota
	// FRFCFS lets row management start as soon as the target bank is
	// free, overlapping precharge/activate with other banks' bursts.
	FRFCFS
)

// String names the scheduler as the -dsched flag spells it.
func (s Scheduler) String() string {
	switch s {
	case FCFS:
		return "fcfs"
	case FRFCFS:
		return "frfcfs"
	}
	return "?"
}

// ParseScheduler resolves a -dsched flag value.
func ParseScheduler(s string) (Scheduler, error) {
	switch strings.ToLower(s) {
	case "fcfs":
		return FCFS, nil
	case "frfcfs", "fr-fcfs":
		return FRFCFS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (fcfs, frfcfs)", s)
}

// PagePolicy selects what a bank does with its row buffer after an
// access.
type PagePolicy int

const (
	// OpenPage leaves the accessed row open, betting on locality.
	OpenPage PagePolicy = iota
	// ClosedPage precharges immediately after every access: no row
	// hits, no row conflicts.
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed"
	}
	return "open"
}

// Config describes one SDRAM part and its controller. All counts must
// be powers of two and all latencies are in CPU cycles.
type Config struct {
	Channels    int // independent channels, each with its own data bus
	Ranks       int // ranks per channel
	Banks       int // banks per rank
	RowBytes    int // row-buffer size per bank
	RowsPerBank int // rows per bank (bounds the row field of MapRow)
	LineBytes   int // bytes per request (the L2 line size)

	TRCD   int64 // activate → column command
	TCAS   int64 // column command → first data
	TRP    int64 // precharge
	TBurst int64 // data-bus cycles per line transfer
	TREFI  int64 // refresh interval per channel (0 disables refresh)
	TRFC   int64 // refresh duration (all banks of the channel stall)

	QueueDepth int // in-flight requests per channel before back-pressure

	Mapping   Mapping
	Scheduler Scheduler
	Policy    PagePolicy
}

// DefaultConfig is a two-channel, two-rank, four-bank part whose
// row-miss service time is comparable to the seed's flat 100-cycle
// DRAM, so row hits run faster than the seed and row conflicts slower.
func DefaultConfig() Config {
	return Config{
		Channels: 2, Ranks: 2, Banks: 4,
		RowBytes: 8 << 10, RowsPerBank: 1 << 15, LineBytes: 128,
		TRCD: 30, TCAS: 40, TRP: 30, TBurst: 8,
		TREFI: 7800, TRFC: 120,
		QueueDepth: 16,
		Mapping:    MapLine, Scheduler: FRFCFS, Policy: OpenPage,
	}
}

type bank struct {
	freeAt  int64
	openRow int64
	open    bool
}

type channel struct {
	banks       []bank
	busFree     int64   // data bus: one burst at a time
	cmdFree     int64   // FCFS: command issue serialization point
	nextRefresh int64   // next refresh epoch boundary
	inflight    []int64 // completion times of queued requests
}

// SDRAM is the banked controller model.
type SDRAM struct {
	cfg   Config
	chans []channel
	st    Stats

	lineShift, colBits, rowBits, chanBits, bankBits uint
}

// NewSDRAM builds a controller from its configuration, panicking on an
// invalid geometry (mirroring cache.New).
func NewSDRAM(cfg Config) *SDRAM {
	for _, g := range []struct {
		name string
		n    int
	}{
		{"channels", cfg.Channels}, {"ranks", cfg.Ranks}, {"banks", cfg.Banks},
		{"row bytes", cfg.RowBytes}, {"rows per bank", cfg.RowsPerBank},
		{"line bytes", cfg.LineBytes},
	} {
		if g.n <= 0 || g.n&(g.n-1) != 0 {
			panic(fmt.Sprintf("dram: %s %d not a power of two", g.name, g.n))
		}
	}
	if cfg.RowBytes < cfg.LineBytes {
		panic("dram: row smaller than a line")
	}
	if cfg.QueueDepth <= 0 {
		panic("dram: queue depth must be positive")
	}
	if cfg.TREFI > 0 && cfg.TRFC >= cfg.TREFI {
		panic("dram: refresh duration must be shorter than the refresh interval")
	}
	s := &SDRAM{
		cfg:       cfg,
		lineShift: log2(cfg.LineBytes),
		colBits:   log2(cfg.RowBytes / cfg.LineBytes),
		rowBits:   log2(cfg.RowsPerBank),
		chanBits:  log2(cfg.Channels),
		bankBits:  log2(cfg.Ranks * cfg.Banks),
	}
	s.chans = make([]channel, cfg.Channels)
	s.Reset()
	return s
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// Name implements Backend.
func (s *SDRAM) Name() string {
	return fmt.Sprintf("sdram(%s,%s,%s)", s.cfg.Mapping, s.cfg.Scheduler, s.cfg.Policy)
}

// Stats implements Backend.
func (s *SDRAM) Stats() *Stats { return &s.st }

// LineBytes implements Backend.
func (s *SDRAM) LineBytes() int { return s.cfg.LineBytes }

// Config returns the controller's configuration.
func (s *SDRAM) Config() Config { return s.cfg }

// Reset implements Backend.
func (s *SDRAM) Reset() {
	s.st = Stats{}
	for c := range s.chans {
		s.chans[c] = channel{
			banks:       make([]bank, s.cfg.Ranks*s.cfg.Banks),
			nextRefresh: s.cfg.TREFI,
			inflight:    make([]int64, 0, s.cfg.QueueDepth),
		}
	}
}

// decode splits addr into channel, bank and row according to the
// configured mapping. The returned row index folds in every bit above
// the fields the mapping consumes, so distinct rows never alias.
func (s *SDRAM) decode(addr uint64) (ch, bk int, row int64) {
	a := addr >> s.lineShift
	take := func(bits uint) uint64 {
		v := a & ((1 << bits) - 1)
		a >>= bits
		return v
	}
	switch s.cfg.Mapping {
	case MapLine:
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		take(s.colBits)
		row = int64(a)
	case MapBank:
		take(s.colBits)
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		row = int64(a)
	case MapRow:
		take(s.colBits)
		row = int64(take(s.rowBits))
		ch = int(take(s.chanBits))
		bk = int(take(s.bankBits))
		// Addresses past the part's capacity wrap; fold the remainder
		// into the row index so distinct rows never alias.
		row |= int64(a) << s.rowBits
	}
	return ch, bk, row
}

// refreshUpTo performs every refresh epoch the channel owes before
// cycle t: all banks close their rows and stall for TRFC.
func (s *SDRAM) refreshUpTo(c *channel, t int64) {
	if s.cfg.TREFI <= 0 {
		return
	}
	for t >= c.nextRefresh {
		for b := range c.banks {
			bk := &c.banks[b]
			bk.open = false
			if bk.freeAt < c.nextRefresh {
				bk.freeAt = c.nextRefresh
			}
			bk.freeAt += s.cfg.TRFC
		}
		c.nextRefresh += s.cfg.TREFI
		s.st.Refreshes++
	}
}

// Access implements Backend.
func (s *SDRAM) Access(addr uint64, t0 int64) int64 {
	ch, bi, row := s.decode(addr)
	c := &s.chans[ch]

	// Bounded controller queue: drop completed requests, then stall the
	// arrival until a slot frees.
	arrival := t0
	live := c.inflight[:0]
	for _, done := range c.inflight {
		if done > arrival {
			live = append(live, done)
		}
	}
	c.inflight = live
	occ := len(c.inflight) + 1 // the arriving request occupies a slot
	if occ > s.cfg.QueueDepth {
		occ = s.cfg.QueueDepth
	}
	s.st.QueueSum += uint64(occ)
	if occ > s.st.QueueMax {
		s.st.QueueMax = occ
	}
	if len(c.inflight) >= s.cfg.QueueDepth {
		oldest := 0
		for i := 1; i < len(c.inflight); i++ {
			if c.inflight[i] < c.inflight[oldest] {
				oldest = i
			}
		}
		arrival = c.inflight[oldest]
		c.inflight = append(c.inflight[:oldest], c.inflight[oldest+1:]...)
		s.st.StallCycles += uint64(arrival - t0)
	}

	s.refreshUpTo(c, arrival)

	// Bank-level parallelism: banks already busy at arrival, across the
	// whole part.
	for ci := range s.chans {
		for b := range s.chans[ci].banks {
			if s.chans[ci].banks[b].freeAt > arrival {
				s.st.BankBusySum++
			}
		}
	}

	bk := &c.banks[bi]
	serviceStart := func() int64 {
		start := max(arrival, bk.freeAt)
		if s.cfg.Scheduler == FCFS {
			start = max(start, c.cmdFree)
		}
		return start
	}
	start := serviceStart()
	// A busy bank can carry the service past refresh boundaries the
	// arrival had not reached; those refreshes still close the rows
	// before the request is served.
	for s.cfg.TREFI > 0 && start >= c.nextRefresh {
		s.refreshUpTo(c, start)
		start = serviceStart()
	}

	var rowLat int64
	switch {
	case bk.open && bk.openRow == row:
		s.st.RowHits++
	case !bk.open:
		s.st.RowMisses++
		rowLat = s.cfg.TRCD
	default:
		s.st.RowConflicts++
		rowLat = s.cfg.TRP + s.cfg.TRCD
	}

	colIssue := start + rowLat
	if s.cfg.Scheduler == FCFS {
		c.cmdFree = colIssue
	}
	dataStart := max(colIssue+s.cfg.TCAS, c.busFree)
	done := dataStart + s.cfg.TBurst
	c.busFree = done
	s.st.BusyCycles += uint64(s.cfg.TBurst)

	bk.freeAt = done
	if s.cfg.Policy == ClosedPage {
		bk.freeAt += s.cfg.TRP
		bk.open = false
	} else {
		bk.open = true
		bk.openRow = row
	}

	c.inflight = append(c.inflight, done)
	s.st.observe(t0, done, s.cfg.LineBytes)
	return done
}

// Build constructs a backend from flag-level strings: kind is "fixed"
// or "sdram"; mapping and sched configure the SDRAM variants;
// fixedLatency is the flat latency of the fixed backend.
func Build(kind, mapping, sched string, fixedLatency int64) (Backend, error) {
	// Mapping and scheduler are validated for every kind so a typo is
	// diagnosed even when the fixed backend would ignore the value
	// (empty strings mean "unspecified" and stay legal for fixed).
	kind = strings.ToLower(kind)
	var m Mapping
	var sc Scheduler
	var err error
	if mapping != "" || kind == "sdram" {
		if m, err = ParseMapping(mapping); err != nil {
			return nil, err
		}
	}
	if sched != "" || kind == "sdram" {
		if sc, err = ParseScheduler(sched); err != nil {
			return nil, err
		}
	}
	switch kind {
	case "fixed":
		return NewFixed(fixedLatency), nil
	case "sdram":
		cfg := DefaultConfig()
		cfg.Mapping, cfg.Scheduler = m, sc
		return NewSDRAM(cfg), nil
	}
	return nil, fmt.Errorf("unknown dram backend %q (fixed, sdram)", kind)
}

// ValidateFlagCombo rejects explicitly-set command-line knobs that the
// selected backend kind would silently ignore: -dmap/-dsched only take
// effect on the sdram backend, -mlat only on the fixed backend. Both
// simulator binaries share this policy so their CLI contracts agree.
func ValidateFlagCombo(kind string, dmapOrSchedSet, mlatSet bool) error {
	kind = strings.ToLower(kind)
	if dmapOrSchedSet && kind != "sdram" {
		return fmt.Errorf("-dmap/-dsched require -dram sdram")
	}
	if mlatSet && kind == "sdram" {
		return fmt.Errorf("-mlat applies to the fixed backend only; drop it with -dram sdram")
	}
	return nil
}

// FormatSpec renders Build arguments as the compact
// "kind[/mapping/sched]" spec string ParseSpec accepts — the form the
// experiments runner keys simulations by.
func FormatSpec(kind, mapping, sched string) string {
	kind = strings.ToLower(kind)
	if kind != "sdram" {
		return kind
	}
	return kind + "/" + strings.ToLower(mapping) + "/" + strings.ToLower(sched)
}

// ParseSpec builds a backend from a "kind[/mapping[/sched]]" spec
// string; omitted sdram fields default to line/frfcfs.
func ParseSpec(spec string, fixedLatency int64) (Backend, error) {
	parts := strings.SplitN(spec, "/", 3)
	kind, mapping, sched := strings.ToLower(parts[0]), "", ""
	if len(parts) > 1 {
		mapping = parts[1]
	}
	if len(parts) > 2 {
		sched = parts[2]
	}
	if kind == "sdram" {
		if mapping == "" {
			mapping = "line"
		}
		if sched == "" {
			sched = "frfcfs"
		}
	}
	return Build(kind, mapping, sched, fixedLatency)
}
