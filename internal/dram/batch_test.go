package dram

import "testing"

// TestSubmitSingleMatchesOneAtATime: under FCFS, a multi-request batch
// with ordered arrivals must complete exactly like the same requests
// submitted one at a time — the batch API only widens what the
// scheduler can see, it never changes arrival-order service.
func TestSubmitSingleMatchesOneAtATime(t *testing.T) {
	mk := func() *SDRAM {
		cfg := testConfig()
		cfg.Banks = 4
		cfg.Scheduler = FCFS
		return NewSDRAM(cfg)
	}
	// A deterministic pseudo-random stream (LCG) of lines and times.
	var reqs []Request
	seed := uint64(12345)
	at := int64(0)
	for i := 0; i < 64; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		reqs = append(reqs, Request{Addr: (seed >> 33) % (1 << 20) * 128, At: at})
		at += int64(seed % 7)
	}

	one, batched := mk(), mk()
	var oneDones []int64
	for _, r := range reqs {
		oneDones = append(oneDones, one.Access(r.Addr, r.At))
	}
	comps := batched.Submit(reqs)
	for i := range reqs {
		if comps[i].Done != oneDones[i] {
			t.Fatalf("req %d: batched done %d != one-at-a-time done %d",
				i, comps[i].Done, oneDones[i])
		}
	}
	if a, b := one.Stats().RowHits, batched.Stats().RowHits; a != b {
		t.Fatalf("row hits diverged: %d vs %d", a, b)
	}
}

// TestFRFCFSPromotesRowHitInBatch is the acceptance criterion: a batch
// containing a row hit queued behind a row conflict completes the hit
// first under FR-FCFS with a reorder window.
func TestFRFCFSPromotesRowHitInBatch(t *testing.T) {
	cfg := testConfig() // 1 channel, 1 bank, open page
	cfg.ReorderWindow = 8
	s := NewSDRAM(cfg)
	s.Access(0, 0) // opens row 0, done 19

	comps := s.Submit([]Request{
		{Addr: 1024, At: 30}, // row 1: conflict, arrived first
		{Addr: 128, At: 30},  // row 0, next column: hit
	})
	hit, conflict := comps[1], comps[0]
	if hit.Done >= conflict.Done {
		t.Fatalf("row hit done %d not before conflict done %d", hit.Done, conflict.Done)
	}
	// Hit promoted: starts at 30 on the open row (CAS 5 + burst 4).
	if hit.Done != 39 {
		t.Errorf("promoted hit done = %d, want 39", hit.Done)
	}
	// The conflict then waits for the bank (39), pays tRP+tRCD+tCAS+burst.
	if conflict.Done != 39+7+10+5+4 {
		t.Errorf("conflict done = %d, want %d", conflict.Done, 39+7+10+5+4)
	}
	if s.Stats().Reordered != 1 {
		t.Errorf("reordered = %d, want 1", s.Stats().Reordered)
	}

	// The same batch under FCFS services the conflict first and turns
	// the would-be hit into a second conflict: strictly slower.
	cfg.Scheduler = FCFS
	f := NewSDRAM(cfg)
	f.Access(0, 0)
	fc := f.Submit([]Request{{Addr: 1024, At: 30}, {Addr: 128, At: 30}})
	if fc[1].Done <= hit.Done {
		t.Errorf("FCFS done %d not slower than FR-FCFS promoted hit %d", fc[1].Done, hit.Done)
	}
	if f.Stats().Reordered != 0 {
		t.Errorf("FCFS reordered = %d, want 0", f.Stats().Reordered)
	}
}

// TestCompletionsCausal: every completion is strictly after its
// arrival, for reads and posted writes alike, across random batches.
func TestCompletionsCausal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TREFI = 100 // hot refresh to exercise the refresh path too
	cfg.TRFC = 20
	s := NewSDRAM(cfg)
	seed := uint64(99)
	at := int64(0)
	for b := 0; b < 50; b++ {
		var batch []Request
		n := 1 + int(seed%13)
		for i := 0; i < n; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			batch = append(batch, Request{
				Addr:  (seed >> 33) % (1 << 22) * 128,
				Write: seed%4 == 0,
				At:    at + int64(seed%50),
			})
		}
		for _, c := range s.Submit(batch) {
			if c.Done <= c.At {
				t.Fatalf("completion not causal: done %d <= at %d (write=%v)", c.Done, c.At, c.Write)
			}
			if c.Done > at {
				at = c.Done
			}
		}
	}
}

// TestBusOccupancyNeverOverlaps: per channel, the data-bus burst
// intervals of read completions must be disjoint — one burst at a time.
func TestBusOccupancyNeverOverlaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 4
	s := NewSDRAM(cfg)
	bursts := make(map[int][][2]int64)
	seed := uint64(7)
	at := int64(0)
	for b := 0; b < 40; b++ {
		var batch []Request
		for i := 0; i < 8; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			batch = append(batch, Request{Addr: (seed >> 33) % (1 << 22) * 128, At: at})
		}
		for _, c := range s.Submit(batch) {
			bursts[c.Channel] = append(bursts[c.Channel], [2]int64{c.Done - cfg.TBurst, c.Done})
			if c.Done > at {
				at = c.Done
			}
		}
	}
	for ch, iv := range bursts {
		for i := range iv {
			for j := i + 1; j < len(iv); j++ {
				a, b := iv[i], iv[j]
				if a[0] < b[1] && b[0] < a[1] {
					t.Fatalf("channel %d: burst [%d,%d) overlaps [%d,%d)", ch, a[0], a[1], b[0], b[1])
				}
			}
		}
	}
	if len(bursts) < 2 {
		t.Fatalf("stream only reached %d channels; want fan-out", len(bursts))
	}
}

// TestWriteQueuePostsAndDrains: writes are absorbed instantly (posted
// ack at At+1), stay off the bus below the drain threshold, and a
// threshold crossing flushes the whole queue through the banks.
func TestWriteQueuePostsAndDrains(t *testing.T) {
	cfg := testConfig()
	cfg.WQDepth, cfg.WQDrain = 8, 4
	s := NewSDRAM(cfg)

	comps := s.Submit([]Request{
		{Addr: 0, Write: true, At: 0},
		{Addr: 1024, Write: true, At: 1},
		{Addr: 2048, Write: true, At: 2},
	})
	for i, c := range comps {
		if c.Done != c.At+1 {
			t.Fatalf("write %d: ack %d, want %d", i, c.Done, c.At+1)
		}
	}
	st := s.Stats()
	if st.WriteDrains != 0 || st.BusyCycles != 0 {
		t.Fatalf("below threshold: drains %d busy %d, want 0/0", st.WriteDrains, st.BusyCycles)
	}
	// The fourth write crosses the threshold: all four burst.
	s.Submit([]Request{{Addr: 3072, Write: true, At: 3}})
	if st.WriteDrains != 1 {
		t.Fatalf("drains = %d, want 1", st.WriteDrains)
	}
	if want := uint64(4 * 4); st.BusyCycles != want { // 4 writes × TBurst 4
		t.Fatalf("busy cycles = %d, want %d", st.BusyCycles, want)
	}
	if st.Writes != 4 || st.Reads() != 0 {
		t.Fatalf("writes %d reads %d, want 4/0", st.Writes, st.Reads())
	}
}

// TestReadPriorityOverWrites: a posted write in the same batch never
// delays a read — reads schedule first, writes only show up as later
// bank/bus occupancy.
func TestReadPriorityOverWrites(t *testing.T) {
	readOnly := NewSDRAM(testConfig())
	alone := readOnly.Submit([]Request{{Addr: 0, At: 0}})[0].Done

	mixed := NewSDRAM(testConfig())
	comps := mixed.Submit([]Request{
		{Addr: 4096, Write: true, At: 0}, // same bank, different row
		{Addr: 0, At: 0},
	})
	if comps[1].Done != alone {
		t.Fatalf("read with write in batch done %d, want %d (unaffected)", comps[1].Done, alone)
	}
}

// TestFlushDrainsPostedWrites: Flush empties the queues so end-of-run
// statistics include all posted traffic.
func TestFlushDrainsPostedWrites(t *testing.T) {
	s := NewSDRAM(testConfig())
	s.Submit([]Request{{Addr: 0, Write: true, At: 0}})
	if s.Stats().WriteDrains != 0 {
		t.Fatal("premature drain")
	}
	s.Flush()
	if s.Stats().WriteDrains != 1 || s.Stats().BusyCycles == 0 {
		t.Fatalf("flush did not drain: %+v", s.Stats())
	}
}

// TestChannelScalingBandwidth: the same streaming batch load achieves
// higher bandwidth on more channels — the sharding the batch API
// unlocks.
func TestChannelScalingBandwidth(t *testing.T) {
	run := func(channels int) float64 {
		cfg := testConfig()
		cfg.Channels, cfg.Banks = channels, 4
		cfg.ReorderWindow = 8
		s := NewSDRAM(cfg)
		at := int64(0)
		for b := 0; b < 32; b++ {
			var batch []Request
			for i := 0; i < 16; i++ {
				batch = append(batch, Request{Addr: uint64((b*16 + i) * 128), At: at})
			}
			for _, c := range s.Submit(batch) {
				if c.Done > at {
					at = c.Done
				}
			}
		}
		return s.Stats().AchievedBandwidth()
	}
	bw1, bw4 := run(1), run(4)
	if bw4 <= bw1*1.5 {
		t.Fatalf("4-channel bandwidth %.2f not scaling over 1-channel %.2f", bw4, bw1)
	}
}

// TestFixedSubmitBatch: the flat backend treats batch requests
// independently — bit-identical to the seed's one-at-a-time model.
func TestFixedSubmitBatch(t *testing.T) {
	f := NewFixed(100)
	comps := f.Submit([]Request{
		{Addr: 0, At: 10},
		{Addr: 128, Write: true, At: 20},
	})
	if comps[0].Done != 110 || comps[1].Done != 120 {
		t.Fatalf("fixed batch dones = %d/%d, want 110/120", comps[0].Done, comps[1].Done)
	}
	if f.Stats().Writes != 1 || f.Stats().Accesses != 2 {
		t.Fatalf("fixed stats = %+v", f.Stats())
	}
}

// TestPresetsAndSpecKnobs covers the profile and knob grammar.
func TestPresetsAndSpecKnobs(t *testing.T) {
	if PresetHBM.Config().Channels != 8 {
		t.Fatalf("hbm channels = %d, want 8", PresetHBM.Config().Channels)
	}
	if p, err := ParsePreset("stacked"); err != nil || p != PresetHBM {
		t.Fatalf("ParsePreset(stacked) = %v, %v", p, err)
	}
	NewSDRAM(PresetHBM.Config()) // must not panic

	b, err := ParseSpec("sdram/bank/fcfs/hbm/4ch/wq4/win2", 100)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cfg := b.(*SDRAM).Config()
	if cfg.Mapping != MapBank || cfg.Scheduler != FCFS || cfg.Channels != 4 ||
		cfg.WQDrain != 4 || cfg.ReorderWindow != 2 || cfg.TRCD != PresetHBM.Config().TRCD {
		t.Fatalf("spec config = %+v", cfg)
	}

	if got := FormatSpecOpts("sdram", "line", "frfcfs", "hbm", Knobs{Channels: 4}); got != "sdram/line/frfcfs/hbm/4ch" {
		t.Fatalf("FormatSpecOpts = %q", got)
	}
	// Round trip through ParseSpec.
	if _, err := ParseSpec(FormatSpecOpts("sdram", "line", "frfcfs", "hbm", Knobs{Channels: 4, WQDrain: 3, Window: 5}), 100); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	// A drain threshold beyond the preset's depth grows the queue to fit.
	if b, err := ParseSpec("sdram/line/frfcfs/ddr/wq99", 100); err != nil {
		t.Fatalf("ParseSpec(wq99): %v", err)
	} else if cfg := b.(*SDRAM).Config(); cfg.WQDrain != 99 || cfg.WQDepth != 99 {
		t.Fatalf("wq99 config = drain %d depth %d, want 99/99", cfg.WQDrain, cfg.WQDepth)
	}

	for _, bad := range []string{
		"sdram/line/frfcfs/ddr/3ch",   // channels not a power of two
		"sdram/line/frfcfs/ddr/extra", // trailing junk
		"sdram/line/frfcfs/lpddr",     // unknown profile
	} {
		if _, err := ParseSpec(bad, 100); err == nil {
			t.Errorf("ParseSpec(%q) did not error", bad)
		}
	}
}
