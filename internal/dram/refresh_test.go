package dram

import (
	"math/rand"
	"testing"
)

// refreshUpToRef is the per-epoch reference the closed form replaced:
// each owed epoch closes every row and stacks TRFC on the bank's free
// time.
func refreshUpToRef(cfg Config, c *channel, st *Stats, t int64) {
	if cfg.TREFI <= 0 {
		return
	}
	for t >= c.nextRefresh {
		for b := range c.banks {
			bk := &c.banks[b]
			bk.open = false
			if bk.freeAt < c.nextRefresh {
				bk.freeAt = c.nextRefresh
			}
			bk.freeAt += cfg.TRFC
		}
		c.nextRefresh += cfg.TREFI
		st.Refreshes++
	}
}

// TestRefreshClosedForm drives random channel states through the
// closed-form refreshUpTo and the per-epoch reference, including the
// deep-idle case (thousands of owed epochs) the closed form exists
// for, and the TRFC > TREFI stacking regime the constructor forbids
// but the formula still covers.
func TestRefreshClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct{ trefi, trfc int64 }{
		{7800, 120},
		{100, 99},
		{100, 1},
		{64, 64},  // TRFC == TREFI: back-to-back epochs
		{50, 170}, // TRFC > TREFI: epochs stack past their interval
		{1, 1},
	}
	for _, cs := range cases {
		for trial := 0; trial < 200; trial++ {
			cfg := Config{TREFI: cs.trefi, TRFC: cs.trfc}
			s := &SDRAM{cfg: cfg}
			nBanks := 1 + rng.Intn(4)
			mk := func() *channel {
				c := &channel{banks: make([]bank, nBanks), nextRefresh: cfg.TREFI}
				c.nextRefresh += rng.Int63n(1000)
				for b := range c.banks {
					c.banks[b].freeAt = rng.Int63n(3 * cs.trefi)
					c.banks[b].open = rng.Intn(2) == 0
					c.banks[b].openRow = int64(b)
				}
				return c
			}
			c1 := mk()
			c2 := &channel{banks: append([]bank(nil), c1.banks...), nextRefresh: c1.nextRefresh}
			// Mix short catch-ups with deep-idle jumps.
			span := cs.trefi * 4
			if trial%4 == 0 {
				span = cs.trefi * 5000
			}
			at := c1.nextRefresh + rng.Int63n(span) - cs.trefi
			var stRef Stats
			refreshUpToRef(cfg, c2, &stRef, at)
			s.refreshUpTo(c1, at)
			if s.st.Refreshes != stRef.Refreshes {
				t.Fatalf("trefi=%d trfc=%d at=%d: refreshes %d, want %d",
					cs.trefi, cs.trfc, at, s.st.Refreshes, stRef.Refreshes)
			}
			if c1.nextRefresh != c2.nextRefresh {
				t.Fatalf("trefi=%d trfc=%d at=%d: nextRefresh %d, want %d",
					cs.trefi, cs.trfc, at, c1.nextRefresh, c2.nextRefresh)
			}
			for b := range c1.banks {
				got, want := c1.banks[b], c2.banks[b]
				if got.freeAt != want.freeAt || got.open != want.open {
					t.Fatalf("trefi=%d trfc=%d at=%d bank %d: freeAt=%d open=%v, want freeAt=%d open=%v",
						cs.trefi, cs.trfc, at, b, got.freeAt, got.open, want.freeAt, want.open)
				}
			}
		}
	}
}
