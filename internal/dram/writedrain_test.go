package dram

import (
	"strings"
	"testing"
)

// TestPartialDrainStopsAtLowWatermark: with WQLow set, a threshold
// crossing only retires the queue's head down to the watermark —
// observable as fewer bursts than a full drain.
func TestPartialDrainStopsAtLowWatermark(t *testing.T) {
	cfg := testConfig()
	cfg.WQDepth, cfg.WQDrain, cfg.WQLow = 8, 4, 2
	s := NewSDRAM(cfg)
	for i := 0; i < 4; i++ {
		s.Submit([]Request{{Addr: uint64(i) * 1024, Write: true, At: int64(i)}})
	}
	st := s.Stats()
	if st.WriteDrains != 1 || st.PartialDrains != 1 {
		t.Fatalf("drains = %d (%d partial), want 1/1", st.WriteDrains, st.PartialDrains)
	}
	// Only 4-2 = 2 of the queued writes burst; the rest wait.
	if want := uint64(2 * cfg.TBurst); st.BusyCycles != want {
		t.Fatalf("busy cycles = %d, want %d (two bursts)", st.BusyCycles, want)
	}
	// Flush retires the remaining two, and counts as a full drain.
	s.Flush()
	if want := uint64(4 * cfg.TBurst); st.BusyCycles != want {
		t.Fatalf("after flush busy cycles = %d, want %d", st.BusyCycles, want)
	}
	if st.PartialDrains != 1 {
		t.Fatalf("flush must not count as partial (partial = %d)", st.PartialDrains)
	}
}

// TestOpportunisticDrainUsesIdleBus: writes queued long before a read
// arrives retire on the idle bus without delaying the read; with the
// gap disabled they stay queued.
func TestOpportunisticDrainUsesIdleBus(t *testing.T) {
	run := func(idle int64) (readDone int64, opp uint64) {
		cfg := testConfig()
		cfg.Banks = 4
		cfg.WQDepth, cfg.WQDrain = 8, 8
		cfg.WQIdle = idle
		s := NewSDRAM(cfg)
		// Two writes to banks 1 and 2, then a read to bank 0 arriving
		// much later than their bursts plus turnaround: the drain can
		// only touch the shared bus, which has long gone idle again.
		s.Submit([]Request{
			{Addr: 128, Write: true, At: 0},
			{Addr: 256, Write: true, At: 1},
		})
		done := s.Submit([]Request{{Addr: 0, At: 400}})[0].Done
		return done, s.Stats().OppDrains
	}
	baseline, opp0 := run(0)
	drained, opp := run(50)
	if opp0 != 0 {
		t.Fatalf("idle drain disabled but %d opportunistic drains", opp0)
	}
	if opp != 2 {
		t.Fatalf("opportunistic drains = %d, want 2", opp)
	}
	if drained != baseline {
		t.Fatalf("opportunistic drain delayed the read: %d vs %d", drained, baseline)
	}
}

// TestOpportunisticDrainSparesReadBank: a queued write to the arriving
// read's own bank is never drained opportunistically — it would turn
// the read's row hit into a row conflict, delaying the very read the
// drain was sized against.
func TestOpportunisticDrainSparesReadBank(t *testing.T) {
	run := func(idle int64) int64 {
		cfg := testConfig() // 1 channel, 1 bank, open page
		cfg.TTurn = 2
		cfg.WQDepth, cfg.WQDrain = 8, 8
		cfg.WQIdle = idle
		s := NewSDRAM(cfg)
		s.Access(0, 0)                                         // opens row 0
		s.Submit([]Request{{Addr: 4096, Write: true, At: 30}}) // row 4, same bank
		return s.Submit([]Request{{Addr: 0, At: 500}})[0].Done
	}
	hit, drained := run(0), run(200)
	if drained != hit {
		t.Fatalf("idle drain on the read's bank delayed the read: %d vs %d", drained, hit)
	}
}

// TestWriteReadStallCounted: a read whose data is ready while the bus
// is still finishing a write drain (plus the turnaround back to reads)
// waits, and the stat records the wait.
func TestWriteReadStallCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Banks = 4
	cfg.TTurn = 20
	cfg.WQDepth, cfg.WQDrain = 4, 2
	s := NewSDRAM(cfg)
	// Two writes on banks 1 and 2 cross the threshold and drain; the
	// read on idle bank 0 has its column data ready before the bus
	// clears the second write burst plus the 20-cycle turnaround.
	s.Submit([]Request{
		{Addr: 128, Write: true, At: 0},
		{Addr: 256, Write: true, At: 1},
	})
	done := s.Submit([]Request{{Addr: 0, At: 18}})[0].Done
	st := s.Stats()
	if st.WriteReadStall == 0 {
		t.Fatalf("write-induced read stall not recorded: %+v", st)
	}
	// The drain pays the read→write turnaround (bursts 20..24, 24..28);
	// the read's data is ready at 18+tRCD+tCAS = 33 but the bus only
	// turns back at 28+20 = 48: burst 48..52, 15 stall cycles.
	if done != 52 {
		t.Fatalf("read done = %d, want 52", done)
	}
	if st.WriteReadStall != 15 {
		t.Fatalf("write-induced stall = %d cycles, want 15", st.WriteReadStall)
	}
}

// TestWriteDrainKnobValidation: the spec/flag layer rejects nonsense
// watermark combinations instead of panicking later.
func TestWriteDrainKnobValidation(t *testing.T) {
	if _, err := ParseSpec("sdram/line/frfcfs/wq4/wql6", 100); err == nil ||
		!strings.Contains(err.Error(), "watermark") {
		t.Errorf("wql above wq accepted: %v", err)
	}
	b, err := ParseSpec("sdram/line/frfcfs/wq8/wql2/wqi50", 100)
	if err != nil {
		t.Fatalf("valid drain knobs rejected: %v", err)
	}
	cfg := b.(*SDRAM).Config()
	if cfg.WQDrain != 8 || cfg.WQLow != 2 || cfg.WQIdle != 50 {
		t.Errorf("knobs not applied: %+v", cfg)
	}
}

// TestWriteDrainExplicitOff: the presets ship the tuned drains on, so
// "wql0"/"wqi0" (flags -dwql -1 / -dwqi -1) must explicitly disable
// them — and an unset knob must keep the preset's values.
func TestWriteDrainExplicitOff(t *testing.T) {
	def, err := ParseSpec("sdram/line/frfcfs", 100)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := def.(*SDRAM).Config(); cfg.WQLow != 4 || cfg.WQIdle != 30 {
		t.Fatalf("preset drains not on by default: %+v", cfg)
	}
	off, err := ParseSpec("sdram/line/frfcfs/wql0/wqi0", 100)
	if err != nil {
		t.Fatalf("explicit off rejected: %v", err)
	}
	if cfg := off.(*SDRAM).Config(); cfg.WQLow != 0 || cfg.WQIdle != 0 {
		t.Fatalf("wql0/wqi0 did not disable the drains: %+v", cfg)
	}
	// The off form round-trips through the canonical renderer.
	if got := FormatSpecOpts("sdram", "line", "frfcfs", "", Knobs{WQLow: -1, WQIdle: -1}); got != "sdram/line/frfcfs/wql0/wqi0" {
		t.Fatalf("FormatSpecOpts(off) = %q", got)
	}
	// Zero on other count knobs stays invalid.
	for _, bad := range []string{"sdram/wq0", "sdram/win0", "sdram/mshr0"} {
		if _, err := ParseSpec(bad, 100); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
