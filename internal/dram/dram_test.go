package dram

import (
	"testing"

	"repro/internal/dram/policy"
)

// testConfig is a tiny single-channel part with refresh disabled so
// individual command latencies are exactly predictable. The zero-valued
// RowPolicy is the static open page.
func testConfig() Config {
	return Config{
		Channels: 1, Ranks: 1, Banks: 1,
		RowBytes: 1 << 10, RowsPerBank: 1 << 15, LineBytes: 128,
		TRCD: 10, TCAS: 5, TRP: 7, TBurst: 4,
		TREFI: 0, TRFC: 0,
		QueueDepth: 16,
		Mapping:    MapLine, Scheduler: FRFCFS,
	}
}

func TestRowMissHitConflictTiming(t *testing.T) {
	s := NewSDRAM(testConfig())

	// Bank idle: activate (tRCD) + CAS + burst.
	if got, want := s.Access(0, 0), int64(10+5+4); got != want {
		t.Fatalf("row miss: done = %d, want %d", got, want)
	}
	// Same row open: CAS + burst only.
	if got, want := s.Access(128, 19), int64(19+5+4); got != want {
		t.Fatalf("row hit: done = %d, want %d", got, want)
	}
	// Different row: precharge + activate + CAS + burst.
	if got, want := s.Access(1024, 28), int64(28+7+10+5+4); got != want {
		t.Fatalf("row conflict: done = %d, want %d", got, want)
	}

	st := s.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 || st.RowConflicts != 1 {
		t.Fatalf("stats = miss %d hit %d conflict %d, want 1/1/1",
			st.RowMisses, st.RowHits, st.RowConflicts)
	}
	if st.Accesses != 3 || st.Bytes != 3*128 {
		t.Fatalf("accesses %d bytes %d, want 3 and 384", st.Accesses, st.Bytes)
	}
	if hr := st.RowHitRate(); hr != 1.0/3 {
		t.Fatalf("row hit rate = %f, want 1/3", hr)
	}
}

func TestClosedPagePolicy(t *testing.T) {
	cfg := testConfig()
	cfg.RowPolicy = policy.Spec{Kind: policy.Close}
	s := NewSDRAM(cfg)

	if got, want := s.Access(0, 0), int64(19); got != want {
		t.Fatalf("first access: done = %d, want %d", got, want)
	}
	// The bank auto-precharges (tRP after the burst), so the second
	// access to the same row is another activate, not a hit.
	if got, want := s.Access(128, 19), int64(19+7+10+5+4); got != want {
		t.Fatalf("second access: done = %d, want %d", got, want)
	}
	st := s.Stats()
	if st.RowHits != 0 || st.RowMisses != 2 || st.RowConflicts != 0 {
		t.Fatalf("closed page stats = hit %d miss %d conflict %d, want 0/2/0",
			st.RowHits, st.RowMisses, st.RowConflicts)
	}
}

func TestMappingDecode(t *testing.T) {
	cfg := testConfig()
	// colBits=2, rowBits=2, chanBits=1, bankBits=1
	cfg.Channels, cfg.Banks, cfg.RowBytes, cfg.RowsPerBank = 2, 2, 512, 4

	type triple struct {
		ch, bk int
		row    int64
	}
	cases := []struct {
		mapping Mapping
		addr    uint64
		want    triple
	}{
		// MapLine: consecutive lines rotate channel, then bank.
		{MapLine, 0, triple{0, 0, 0}},
		{MapLine, 128, triple{1, 0, 0}},
		{MapLine, 256, triple{0, 1, 0}},
		{MapLine, 512, triple{0, 0, 0}},  // back to ch0/bk0, col 1
		{MapLine, 2048, triple{0, 0, 1}}, // 16 lines on: next row
		// MapBank: a row's worth of lines stays put, then channel/bank
		// rotate, rows last.
		{MapBank, 0, triple{0, 0, 0}},
		{MapBank, 128, triple{0, 0, 0}},
		{MapBank, 512, triple{1, 0, 0}},
		{MapBank, 1024, triple{0, 1, 0}},
		{MapBank, 2048, triple{0, 0, 1}},
		// MapRow: rows advance first; channel and bank only change once
		// a whole bank's worth of rows is exhausted.
		{MapRow, 0, triple{0, 0, 0}},
		{MapRow, 512, triple{0, 0, 1}},
		{MapRow, 2048, triple{1, 0, 0}},      // past bank capacity: next channel
		{MapRow, 4096, triple{0, 1, 0}},      // then the next bank
		{MapRow, 1 << 20, triple{0, 0, 512}}, // past the part: rows fold, no alias
	}
	for _, c := range cases {
		cfg.Mapping = c.mapping
		s := NewSDRAM(cfg)
		ch, bk, row := s.decode(c.addr)
		if ch != c.want.ch || bk != c.want.bk || row != c.want.row {
			t.Errorf("%s decode(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.mapping, c.addr, ch, bk, row, c.want.ch, c.want.bk, c.want.row)
		}
	}
}

func TestSchedulerOverlap(t *testing.T) {
	// Two same-cycle misses to different banks: FR-FCFS overlaps the
	// second bank's activate with the first burst; FCFS serializes
	// command issue and finishes later.
	run := func(sched Scheduler) int64 {
		cfg := testConfig()
		cfg.Banks = 2
		cfg.Scheduler = sched
		s := NewSDRAM(cfg)
		s.Access(0, 0)          // bank 0
		return s.Access(128, 0) // bank 1 under MapLine
	}
	fr, fc := run(FRFCFS), run(FCFS)
	if fr >= fc {
		t.Fatalf("FR-FCFS done = %d, FCFS done = %d; want FR-FCFS sooner", fr, fc)
	}
	// The second request arrives while bank 0 is busy, so the observed
	// bank-level parallelism over the two requests is 1/2.
	cfg := testConfig()
	cfg.Banks = 2
	s := NewSDRAM(cfg)
	s.Access(0, 0)
	s.Access(128, 0)
	if blp := s.Stats().BankLevelParallelism(); blp != 0.5 {
		t.Fatalf("bank-level parallelism = %f, want 0.5", blp)
	}
	// FR-FCFS: activate overlaps, burst queues behind the bus: 19 + 4.
	if want := int64(19 + 4); fr != want {
		t.Fatalf("FR-FCFS done = %d, want %d", fr, want)
	}
	// FCFS: commands wait for the first request's CAS issue at 10.
	if want := int64(10 + 10 + 5 + 4); fc != want {
		t.Fatalf("FCFS done = %d, want %d", fc, want)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := testConfig()
	cfg.TREFI, cfg.TRFC = 100, 20
	s := NewSDRAM(cfg)

	s.Access(0, 0) // opens the row, done at 19
	// Arriving after the 100-cycle refresh boundary: the row was closed
	// and the bank stalled until 120, so this is a miss, not a hit.
	if got, want := s.Access(128, 150), int64(150+10+5+4); got != want {
		t.Fatalf("post-refresh access: done = %d, want %d", got, want)
	}
	st := s.Stats()
	if st.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", st.Refreshes)
	}
	if st.RowHits != 0 || st.RowMisses != 2 {
		t.Fatalf("stats = hit %d miss %d, want 0/2", st.RowHits, st.RowMisses)
	}
	// A request landing inside the refresh window waits it out and then
	// re-activates the (closed) row.
	s.Reset()
	s.Access(0, 0)
	if got, want := s.Access(128, 105), int64(120+10+5+4); got != want {
		t.Fatalf("in-refresh access: done = %d, want %d", got, want)
	}
}

func TestRefreshDuringBusyBank(t *testing.T) {
	// The request arrives before the refresh boundary, but the bank is
	// busy past it: the refresh still closes the row, so service is a
	// miss at the post-refresh bank-free time, not a hit at 109.
	cfg := testConfig()
	cfg.TREFI, cfg.TRFC = 100, 20
	s := NewSDRAM(cfg)
	s.Access(0, 90) // row miss, bank busy until 109
	if got, want := s.Access(128, 95), int64(129+10+5+4); got != want {
		t.Fatalf("refresh-crossing access: done = %d, want %d", got, want)
	}
	st := s.Stats()
	if st.Refreshes != 1 || st.RowHits != 0 || st.RowMisses != 2 {
		t.Fatalf("stats = refresh %d hit %d miss %d, want 1/0/2",
			st.Refreshes, st.RowHits, st.RowMisses)
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	if m, err := ParseMapping("Bank"); err != nil || m != MapBank {
		t.Errorf("ParseMapping(Bank) = %v, %v", m, err)
	}
	if sc, err := ParseScheduler("FR-FCFS"); err != nil || sc != FRFCFS {
		t.Errorf("ParseScheduler(FR-FCFS) = %v, %v", sc, err)
	}
	if b, err := Build("SDRAM", "line", "frfcfs", 100); err != nil || b == nil {
		t.Errorf("Build(SDRAM) = %v, %v", b, err)
	}
	// FormatSpec must normalize too, or an upper-case kind would drop
	// the mapping and scheduler from the spec.
	if got := FormatSpec("SDRAM", "Bank", "FCFS"); got != "sdram/bank/fcfs" {
		t.Errorf("FormatSpec(SDRAM,Bank,FCFS) = %q, want sdram/bank/fcfs", got)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	s := NewSDRAM(cfg)

	s.Access(0, 0) // done at 19, occupies the only queue slot
	// The second request cannot enter the controller until cycle 19.
	if got, want := s.Access(128, 0), int64(19+5+4); got != want {
		t.Fatalf("queued access: done = %d, want %d", got, want)
	}
	st := s.Stats()
	if st.StallCycles != 19 {
		t.Fatalf("stall cycles = %d, want 19", st.StallCycles)
	}
	// A saturated depth-1 queue must report as full, not idle.
	if st.QueueMax != 1 || st.AvgQueueOccupancy() != 1 {
		t.Fatalf("queue max %d avg %f, want 1 and 1", st.QueueMax, st.AvgQueueOccupancy())
	}
}

func TestStreamingRowHitRate(t *testing.T) {
	// A sequential line stream under the bank-interleaved mapping keeps
	// rows open: the hit rate must be near 1.
	cfg := DefaultConfig()
	cfg.Mapping = MapBank
	s := NewSDRAM(cfg)
	t0 := int64(0)
	for i := 0; i < 1024; i++ {
		t0 = s.Access(uint64(i*cfg.LineBytes), t0)
	}
	if hr := s.Stats().RowHitRate(); hr < 0.9 {
		t.Fatalf("streaming row hit rate = %f, want >= 0.9", hr)
	}
	if bw := s.Stats().AchievedBandwidth(); bw <= 0 {
		t.Fatalf("achieved bandwidth = %f, want > 0", bw)
	}
}

func TestFixedBackend(t *testing.T) {
	f := NewFixed(100)
	if got := f.Access(0x1234, 50); got != 150 {
		t.Fatalf("fixed access: done = %d, want 150", got)
	}
	if st := f.Stats(); st.Accesses != 1 || st.Bytes != 128 {
		t.Fatalf("fixed stats = %+v", st)
	}
	f.Reset()
	if f.Stats().Accesses != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestBuild(t *testing.T) {
	if b, err := Build("fixed", "", "", 100); err != nil || b.Name() != "fixed" {
		t.Fatalf("Build fixed = %v, %v", b, err)
	}
	b, err := Build("sdram", "row", "fcfs", 100)
	if err != nil {
		t.Fatalf("Build sdram: %v", err)
	}
	sd, ok := b.(*SDRAM)
	if !ok || sd.Config().Mapping != MapRow || sd.Config().Scheduler != FCFS {
		t.Fatalf("Build sdram = %#v", b)
	}
	for _, bad := range [][3]string{
		{"hbm", "line", "fcfs"},
		{"sdram", "diag", "fcfs"},
		{"sdram", "line", "rr"},
		// Typos are diagnosed even when the fixed backend ignores them.
		{"fixed", "diag", "fcfs"},
		{"fixed", "line", "rr"},
	} {
		if _, err := Build(bad[0], bad[1], bad[2], 100); err == nil {
			t.Errorf("Build(%q,%q,%q) did not error", bad[0], bad[1], bad[2])
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		kind, mapping, sched string
		spec                 string
		name                 string
	}{
		{"fixed", "line", "frfcfs", "fixed", "fixed"},
		{"sdram", "bank", "fcfs", "sdram/bank/fcfs", "sdram(bank,fcfs,open)"},
	}
	for _, c := range cases {
		spec := FormatSpec(c.kind, c.mapping, c.sched)
		if spec != c.spec {
			t.Errorf("FormatSpec(%s,%s,%s) = %q, want %q", c.kind, c.mapping, c.sched, spec, c.spec)
		}
		b, err := ParseSpec(spec, 100)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if b.Name() != c.name {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", spec, b.Name(), c.name)
		}
	}
	// Bare "sdram" gets the default mapping and scheduler.
	if b, err := ParseSpec("sdram", 100); err != nil || b.Name() != "sdram(line,frfcfs,open)" {
		t.Errorf("ParseSpec(sdram) = %v, %v", b, err)
	}
	if _, err := ParseSpec("sdram/diag/fcfs", 100); err == nil {
		t.Error("ParseSpec accepted an unknown mapping")
	}
}

func TestValidateFlagCombo(t *testing.T) {
	cases := []struct {
		kind             string
		knobSet, mlatSet bool
		ok               bool
	}{
		{"fixed", false, false, true},
		{"fixed", false, true, true},
		{"fixed", true, false, false},
		{"sdram", true, false, true},
		{"SDRAM", true, false, true}, // case-insensitive like Build
		{"sdram", false, true, false},
	}
	for _, c := range cases {
		err := ValidateFlagCombo(c.kind, c.knobSet, c.mlatSet)
		if (err == nil) != c.ok {
			t.Errorf("ValidateFlagCombo(%q,%v,%v) = %v, want ok=%v",
				c.kind, c.knobSet, c.mlatSet, err, c.ok)
		}
	}
}

func TestResetClearsTimingState(t *testing.T) {
	s := NewSDRAM(testConfig())
	s.Access(0, 0)
	s.Reset()
	// After reset the bank is idle again: same latency as a cold start.
	if got := s.Access(0, 0); got != 19 {
		t.Fatalf("post-reset access: done = %d, want 19", got)
	}
}
