package policy

import "testing"

// TestParseAndString pins the rp<name>[:<n>] grammar and its canonical
// rendering.
func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		spec Spec
		out  string
	}{
		{"open", true, Spec{Kind: Open}, "open"},
		{"OPEN", true, Spec{Kind: Open}, "open"},
		{"close", true, Spec{Kind: Close}, "close"},
		{"history", true, Spec{Kind: History}, "history"},
		{"timer", true, Spec{Kind: Timer, Idle: DefaultTimerIdle}, "timer:200"},
		{"timer:64", true, Spec{Kind: Timer, Idle: 64}, "timer:64"},
		{"timer:0", false, Spec{}, ""},
		{"timer:-7", false, Spec{}, ""},
		{"timer:x", false, Spec{}, ""},
		{"open:5", false, Spec{}, ""}, // only the timer takes a parameter
		{"history:2", false, Spec{}, ""},
		{"lru", false, Spec{}, ""},
		{"", false, Spec{}, ""},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q): accepted=%v, want %v (err %v)", c.in, err == nil, c.ok, err)
			continue
		}
		if !c.ok {
			continue
		}
		if got != c.spec {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.spec)
		}
		if got.String() != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got.String(), c.out)
		}
		// The canonical form parses back to the same spec.
		if again, err := Parse(got.String()); err != nil || again != got {
			t.Errorf("round trip of %q via %q: %+v (err %v)", c.in, got.String(), again, err)
		}
	}
}

// seq drives one policy over a per-bank sequence of same-row(true) /
// different-row(false) observations and returns the CloseAfter
// decision after each, plus the flips observed.
func seq(t *testing.T, p RowPolicy, bank int, obs []bool) (decisions []int64, flips int) {
	t.Helper()
	for _, same := range obs {
		if p.Train(bank, same) {
			flips++
		}
		decisions = append(decisions, p.CloseAfter(bank))
	}
	return decisions, flips
}

// TestOpenNeverCloses: the static open policy keeps every row open
// whatever the training says — it is the controller's historical
// behaviour and the bit-identical default.
func TestOpenNeverCloses(t *testing.T) {
	p := Spec{Kind: Open}.New(4)
	dec, flips := seq(t, p, 0, []bool{true, false, false, false, true})
	for i, d := range dec {
		if d != KeepOpen {
			t.Fatalf("open policy decision %d = %d, want KeepOpen", i, d)
		}
	}
	if flips != 0 {
		t.Fatalf("open policy flipped %d times", flips)
	}
}

// TestCloseAlwaysCloses: static close auto-precharges after every
// access, training notwithstanding.
func TestCloseAlwaysCloses(t *testing.T) {
	p := Spec{Kind: Close}.New(4)
	dec, flips := seq(t, p, 1, []bool{true, true, true, false})
	for i, d := range dec {
		if d != 0 {
			t.Fatalf("close policy decision %d = %d, want 0", i, d)
		}
	}
	if flips != 0 {
		t.Fatalf("close policy flipped %d times", flips)
	}
}

// TestTimerReturnsIdleGap: the timer policy always answers its
// configured gap.
func TestTimerReturnsIdleGap(t *testing.T) {
	p := Spec{Kind: Timer, Idle: 123}.New(4)
	if d := p.CloseAfter(2); d != 123 {
		t.Fatalf("timer decision = %d, want 123", d)
	}
	if p.Train(2, false) {
		t.Fatal("timer policy must not flip")
	}
	if d := p.CloseAfter(2); d != 123 {
		t.Fatalf("timer decision after training = %d, want 123", d)
	}
}

// TestHistorySaturatingCounter walks the 2-bit predictor through a
// synthetic hit/conflict sequence: it starts weakly live (open-page
// default), two conflicts drive it dead, hits bring it back, and the
// counter saturates at both ends.
func TestHistorySaturatingCounter(t *testing.T) {
	p := Spec{Kind: History}.New(2)
	// Untrained: weakly live.
	if d := p.CloseAfter(0); d != KeepOpen {
		t.Fatalf("untrained decision = %d, want KeepOpen", d)
	}
	// conflict, conflict → dead (one flip at the threshold crossing);
	// conflict again → saturated dead, no further flip.
	dec, flips := seq(t, p, 0, []bool{false, false, false})
	if dec[0] != 0 || dec[1] != 0 || dec[2] != 0 {
		t.Fatalf("conflict run decisions = %v, want all 0 (init is weakly live: one conflict kills it)", dec)
	}
	if flips != 1 {
		t.Fatalf("conflict run flips = %d, want 1", flips)
	}
	// hit, hit → live again (one flip); two more hits saturate.
	dec, flips = seq(t, p, 0, []bool{true, true, true, true})
	if dec[0] != 0 {
		t.Fatalf("first hit already reopened the bank: %v", dec)
	}
	if dec[1] != KeepOpen || dec[2] != KeepOpen || dec[3] != KeepOpen {
		t.Fatalf("hit run decisions = %v, want live from the second hit", dec)
	}
	if flips != 1 {
		t.Fatalf("hit run flips = %d, want 1", flips)
	}
	// Saturated live survives a single conflict (hysteresis).
	if p.Train(0, false) {
		t.Fatal("single conflict must not flip a saturated live counter")
	}
	if d := p.CloseAfter(0); d != KeepOpen {
		t.Fatalf("decision after one conflict = %d, want KeepOpen", d)
	}
}

// TestHistoryPerBankIsolation: training one bank never moves another's
// counter.
func TestHistoryPerBankIsolation(t *testing.T) {
	p := Spec{Kind: History}.New(2)
	seq(t, p, 0, []bool{false, false, false}) // bank 0 goes dead
	if d := p.CloseAfter(1); d != KeepOpen {
		t.Fatalf("bank 1 decision = %d, want KeepOpen (untouched)", d)
	}
}

// TestHistoryReset: Reset restores the weakly-live initial state.
func TestHistoryReset(t *testing.T) {
	p := Spec{Kind: History}.New(1)
	seq(t, p, 0, []bool{false, false, false})
	if d := p.CloseAfter(0); d != 0 {
		t.Fatalf("trained-dead decision = %d, want 0", d)
	}
	p.Reset()
	if d := p.CloseAfter(0); d != KeepOpen {
		t.Fatalf("post-reset decision = %d, want KeepOpen", d)
	}
}

// TestSpecNew: every kind constructs and reports itself.
func TestSpecNew(t *testing.T) {
	for _, s := range []Spec{
		{Kind: Open}, {Kind: Close}, {Kind: Timer, Idle: 10}, {Kind: History},
	} {
		p := s.New(8)
		if p.Kind() != s.Kind {
			t.Errorf("%+v: Kind() = %v", s, p.Kind())
		}
	}
}
