// Package policy implements per-bank DRAM row-buffer management: the
// decision, taken after every bank access, of how long the accessed row
// stays open. The controller in internal/dram keeps the mechanics (when
// a precharge actually occupies the bank, how a pending idle-timer
// close interacts with refresh) and consults a RowPolicy for the
// decision itself, so the policies stay pure prediction state and can
// be table-tested on synthetic access sequences.
//
// Four policies are provided:
//
//   - open: the static open-page policy — rows stay open until a
//     conflict or a refresh closes them (the controller's historical
//     behaviour, and the default).
//   - close: static close-page — every access auto-precharges after its
//     burst. No row hits, no row conflicts.
//   - timer: keep the row open, but precharge once the bank has sat
//     idle for a configurable number of cycles — the middle ground that
//     converts an eventual conflict into a plain activate while still
//     serving temporally-dense hits.
//   - history: a live/dead predictor — one 2-bit saturating counter per
//     bank, trained on whether the next access to the bank would have
//     hit or conflicted on the row the previous access used. Banks
//     whose streams reward open pages keep them; banks that thrash
//     (motionsearch's 0.02 row-hit rate on ddr is the motivating data)
//     converge to close-page.
//
// Training is against the open-page oracle — "would this access have
// hit the row the bank last used?" — which makes the predictor's inputs
// independent of its own decisions: a policy that closes a row still
// learns whether keeping it open would have paid.
package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the row policies. The zero Kind is "unset" and
// behaves as the static open page — the controller's historical
// default — while the explicit Open constant marks a policy the user
// actually named (so spec validation can reject an rpopen token on a
// backend that has no banks, even though it would change nothing).
type Kind int

const (
	// Open is the static open-page policy (explicitly selected).
	Open Kind = iota + 1
	// Close is the static close-page policy (auto-precharge).
	Close
	// Timer precharges after a fixed number of idle cycles.
	Timer
	// History is the per-bank 2-bit live/dead predictor.
	History
)

// DefaultTimerIdle is the idle gap the timer policy uses when the spec
// does not choose one ("rptimer" with no :<n>). Roughly two row-miss
// service times on the commodity profile: long enough that the dense
// phase of a stream keeps its row, short enough that a row abandoned
// between macroblocks is precharged before the conflicting return.
const DefaultTimerIdle = 200

// KeepOpen is the CloseAfter result that leaves the row open until a
// conflict or refresh closes it.
const KeepOpen int64 = -1

// Spec selects a policy by name, plus the timer's idle gap. The zero
// value is the unset spec, which builds the static open policy — the
// controller's default.
type Spec struct {
	Kind Kind
	// Idle is the timer policy's idle gap in cycles; zero on every
	// other kind.
	Idle int64
}

// String renders the spec the way the -rp flag and the rp<name>[:<n>]
// spec token spell it.
func (s Spec) String() string {
	switch s.Kind {
	case Close:
		return "close"
	case Timer:
		return fmt.Sprintf("timer:%d", s.Idle)
	case History:
		return "history"
	}
	return "open"
}

// Parse resolves a policy name: "open", "close", "history", or
// "timer[:<idle>]" (the idle gap defaults to DefaultTimerIdle). Only
// the timer takes a parameter.
func Parse(s string) (Spec, error) {
	name, arg, hasArg := strings.Cut(strings.ToLower(s), ":")
	if hasArg && name != "timer" {
		return Spec{}, fmt.Errorf("row policy %q takes no parameter (only timer:<idle>)", s)
	}
	switch name {
	case "open":
		return Spec{Kind: Open}, nil
	case "close":
		return Spec{Kind: Close}, nil
	case "history":
		return Spec{Kind: History}, nil
	case "timer":
		idle := int64(DefaultTimerIdle)
		if hasArg {
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || v <= 0 {
				return Spec{}, fmt.Errorf("timer idle gap %q must be a positive cycle count", arg)
			}
			idle = v
		}
		return Spec{Kind: Timer, Idle: idle}, nil
	}
	return Spec{}, fmt.Errorf("unknown row policy %q (open, close, timer[:<idle>], history)", s)
}

// RowPolicy is the per-bank row-management decision consulted by the
// SDRAM controller. Implementations hold all per-bank state, indexed by
// the controller's global bank number; the controller calls the hooks
// in bank-access order. Implementations are not safe for concurrent
// use, matching the rest of the simulator.
type RowPolicy interface {
	// Kind identifies the policy.
	Kind() Kind
	// Train observes the next access to a bank before it is serviced:
	// sameRow reports whether it targets the row the bank's previous
	// access used (the open-page oracle). It returns true when the
	// observation flipped a predictor's decision for the bank — the
	// controller's PredictorFlips stat. Called once per access after
	// the bank's first.
	Train(bank int, sameRow bool) bool
	// CloseAfter is consulted as an access's burst completes: KeepOpen
	// leaves the row open, 0 precharges immediately after the burst
	// (auto-precharge), and a positive n precharges once the bank has
	// sat idle n cycles.
	CloseAfter(bank int) int64
	// Reset clears all per-bank state.
	Reset()
}

// New builds the spec's policy over a part with the given number of
// banks (summed over all channels and ranks).
func (s Spec) New(banks int) RowPolicy {
	switch s.Kind {
	case Close:
		return closePolicy{}
	case Timer:
		return timerPolicy{idle: s.Idle}
	case History:
		h := &historyPolicy{ctr: make([]uint8, banks)}
		h.Reset()
		return h
	}
	return openPolicy{}
}

// openPolicy is the static open page: never close, nothing to learn.
type openPolicy struct{}

func (openPolicy) Kind() Kind           { return Open }
func (openPolicy) Train(int, bool) bool { return false }
func (openPolicy) CloseAfter(int) int64 { return KeepOpen }
func (openPolicy) Reset()               {}

// closePolicy is the static close page: auto-precharge after every
// burst.
type closePolicy struct{}

func (closePolicy) Kind() Kind           { return Close }
func (closePolicy) Train(int, bool) bool { return false }
func (closePolicy) CloseAfter(int) int64 { return 0 }
func (closePolicy) Reset()               {}

// timerPolicy keeps rows open for a fixed idle gap.
type timerPolicy struct{ idle int64 }

func (timerPolicy) Kind() Kind             { return Timer }
func (timerPolicy) Train(int, bool) bool   { return false }
func (t timerPolicy) CloseAfter(int) int64 { return t.idle }
func (timerPolicy) Reset()                 {}

// historyPolicy is the live/dead predictor: a 2-bit saturating counter
// per bank. Counters at or above historyLive predict "live" (keep the
// row open); below it, "dead" (auto-precharge). A same-row observation
// increments, a different-row observation decrements.
type historyPolicy struct{ ctr []uint8 }

// historyLive is the decision threshold, and historyInit the reset
// state: weakly live, so an untrained bank behaves like the open-page
// default until its stream says otherwise.
const (
	historyLive = 2
	historyInit = 2
	historyMax  = 3
)

func (*historyPolicy) Kind() Kind { return History }

func (h *historyPolicy) Train(bank int, sameRow bool) bool {
	c := h.ctr[bank]
	was := c >= historyLive
	if sameRow {
		if c < historyMax {
			c++
		}
	} else if c > 0 {
		c--
	}
	h.ctr[bank] = c
	return (c >= historyLive) != was
}

func (h *historyPolicy) CloseAfter(bank int) int64 {
	if h.ctr[bank] >= historyLive {
		return KeepOpen
	}
	return 0
}

func (h *historyPolicy) Reset() {
	for i := range h.ctr {
		h.ctr[i] = historyInit
	}
}
