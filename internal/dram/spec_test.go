package dram

import (
	"strings"
	"testing"
)

// TestSpecRejectsUnknownTokens: every spec segment must parse; a
// misspelled knob (the motivating bug: a typo'd "msrh8" silently
// dropped) or a segment on the wrong backend kind is an error with a
// diagnosable message, never ignored.
func TestSpecRejectsUnknownTokens(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must mention
	}{
		{"sdram/line/frfcfs/ddr/msrh8", "msrh8"},    // typo'd mshr knob, all positionals taken
		{"sdram/msrh8", "msrh8"},                    // typo'd knob landing in the mapping slot
		{"sdram/line/frfcfs/msrh8", "msrh8"},        // typo'd knob landing in the profile slot
		{"sdram/line/frfcfs/ddr/hbm", "hbm"},        // duplicate positional past the last slot
		{"sdram/line/frfcfs/wq0", "wq0"},            // malformed knob value
		{"sdram/line/frfcfs/mshr0", "mshr0"},        // mshr must be positive in a spec
		{"sdram/line/frfcfs/ch", "\"ch\""},          // knob suffix without a number
		{"fixed/line", "sdram"},                     // controller segment on the fixed kind
		{"fixed/8ch", "sdram"},                      // controller knob on the fixed kind
		{"fixed/wq8", "sdram"},                      // ditto
		{"bogus", "unknown dram backend"},           // unknown kind
		{"sdram/line/rr", "rr"},                     // unknown scheduler
		{"sdram/line/frfcfs/lpddr", "lpddr"},        // unknown profile
		{"sdram/line/frfcfs/wq4/wql9", "watermark"}, // low watermark above the threshold
	}
	for _, c := range cases {
		if _, _, err := ParseSpecFull(c.spec, 100); err == nil {
			t.Errorf("ParseSpecFull(%q) accepted an invalid spec", c.spec)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpecFull(%q) error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestSpecMSHRKnob: mshr<n> parses on both kinds (it configures the
// vmem layer, not the controller) and round-trips through
// FormatSpecOpts.
func TestSpecMSHRKnob(t *testing.T) {
	for _, spec := range []string{"fixed/mshr8", "sdram/line/frfcfs/mshr8", "sdram/mshr8"} {
		b, knobs, err := ParseSpecFull(spec, 100)
		if err != nil {
			t.Errorf("ParseSpecFull(%q): %v", spec, err)
			continue
		}
		if b == nil || knobs.MSHRs != 8 {
			t.Errorf("ParseSpecFull(%q): MSHRs = %d, want 8", spec, knobs.MSHRs)
		}
	}
	spec := FormatSpecOpts("sdram", "line", "frfcfs", "hbm",
		Knobs{Channels: 4, WQDrain: 8, WQLow: 2, WQIdle: 50, Window: 4, MSHRs: 16})
	if want := "sdram/line/frfcfs/hbm/4ch/wq8/wql2/wqi50/win4/mshr16"; spec != want {
		t.Fatalf("FormatSpecOpts = %q, want %q", spec, want)
	}
	b, knobs, err := ParseSpecFull(spec, 100)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	cfg := b.(*SDRAM).Config()
	if cfg.Channels != 4 || cfg.WQDrain != 8 || cfg.WQLow != 2 || cfg.WQIdle != 50 ||
		cfg.ReorderWindow != 4 || knobs.MSHRs != 16 {
		t.Fatalf("round trip lost knobs: cfg %+v, mshrs %d", cfg, knobs.MSHRs)
	}
	if FormatSpecOpts("fixed", "", "", "", Knobs{MSHRs: 4}) != "fixed/mshr4" {
		t.Fatal("fixed kind must keep the mshr segment")
	}
}

// TestSpecTenantKnobs: tn<n> is a front-end knob like mshr — allowed on
// every kind — while qos and pfdec<n> configure the SDRAM controller
// and carry their own preconditions (qos needs tn≥2, pfdec needs pf).
func TestSpecTenantKnobs(t *testing.T) {
	// tn parses anywhere.
	for _, spec := range []string{"fixed/tn2", "sdram/tn4", "sdram/line/frfcfs/tn4"} {
		if _, knobs, err := ParseSpecFull(spec, 100); err != nil {
			t.Errorf("ParseSpecFull(%q): %v", spec, err)
		} else if knobs.Tenants < 2 {
			t.Errorf("ParseSpecFull(%q): Tenants = %d", spec, knobs.Tenants)
		}
	}

	// The full multi-tenant spec lands in the controller config.
	b, knobs, err := ParseSpecFull("sdram/line/frfcfs/mshr8/pf4/pfdec200/tn4/qos", 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.(*SDRAM).Config()
	if !cfg.QoS || cfg.Tenants != 4 || cfg.PFDecay != 200 {
		t.Errorf("cfg QoS=%v Tenants=%d PFDecay=%d, want true/4/200", cfg.QoS, cfg.Tenants, cfg.PFDecay)
	}
	if knobs.Tenants != 4 || !knobs.QoS || knobs.PFDecay != 200 {
		t.Errorf("knobs = %+v, want Tenants 4, QoS, PFDecay 200", knobs)
	}

	// FormatSpecOpts round-trips the new segments.
	spec := FormatSpecOpts("sdram", "line", "frfcfs", "",
		Knobs{MSHRs: 8, PFStreams: 4, PFDecay: 200, Tenants: 4, QoS: true})
	if want := "sdram/line/frfcfs/pfdec200/qos/mshr8/pf4/tn4"; spec != want {
		t.Fatalf("FormatSpecOpts = %q, want %q", spec, want)
	}
	if _, k2, err := ParseSpecFull(spec, 100); err != nil {
		t.Fatalf("round trip: %v", err)
	} else if k2 != knobs {
		t.Fatalf("round trip lost knobs: %+v vs %+v", k2, knobs)
	}

	// Preconditions and kind restrictions reject with diagnosable errors.
	rejects := []struct {
		spec string
		want string
	}{
		{"sdram/line/frfcfs/qos", "tenant count"},        // qos without tn
		{"sdram/line/frfcfs/tn1/qos", "at least 2"},      // qos on one tenant
		{"sdram/line/frfcfs/pfdec200", "stream count"},   // pfdec without pf
		{"fixed/qos", "sdram"},                           // controller token on fixed
		{"fixed/pfdec100", "sdram"},                      // ditto
		{"sdram/line/frfcfs/tn0", "tn0"},                 // malformed value
		{"sdram/line/frfcfs/mshr8/pf4/pfdec0", "pfdec0"}, // ditto
	}
	for _, c := range rejects {
		if _, _, err := ParseSpecFull(c.spec, 100); err == nil {
			t.Errorf("ParseSpecFull(%q) accepted an invalid spec", c.spec)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpecFull(%q) error %q does not mention %q", c.spec, err, c.want)
		}
	}
}
