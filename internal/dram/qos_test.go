package dram

import "testing"

// qosTestConfig is the two-tenant contention part: single channel,
// single bank (so every request contends), an 8-deep reorder window and
// a 16-deep queue, giving each of the two tenants an 8-request credit.
func qosTestConfig(qos bool) Config {
	cfg := testConfig()
	cfg.ReorderWindow = 8
	cfg.Tenants = 2
	cfg.QoS = qos
	return cfg
}

// starvationBatch is a flooding tenant 0 — a dozen sequential reads
// down one row streak, all arrived at once — with sparse tenant 1's
// single read (a different row) queued behind them. The batch FR-FCFS
// serves worst: every tenant-0 read is a row hit, tenant 1's is the
// lone conflict, so hit-first scheduling starves it.
func starvationBatch() []Request {
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{
			Addr: uint64(i) * 128,
			At:   0,
			ID:   TagTenant(uint64(i), 0),
		})
	}
	reqs = append(reqs, Request{
		Addr: 1 << 20, // its own row, a guaranteed conflict
		At:   0,
		ID:   TagTenant(100, 1),
	})
	return reqs
}

// TestQoSUnstarvesSparseTenant: on the starvation batch, the credit
// pick must serve the sparse tenant's read earlier than plain FR-FCFS
// does — once the flooding tenant is past its queue share, its reads
// yield — and the yields must be visible in both the global counter and
// the flooding tenant's shard.
func TestQoSUnstarvesSparseTenant(t *testing.T) {
	batch := starvationBatch()
	sparse := len(batch) - 1

	base := NewSDRAM(qosTestConfig(false))
	baseComps := base.Submit(batch)

	qos := NewSDRAM(qosTestConfig(true))
	qos.EnableTenantStats(2)
	qosComps := qos.Submit(batch)

	if qosComps[sparse].Done >= baseComps[sparse].Done {
		t.Errorf("sparse tenant done at %d under QoS, %d under plain FR-FCFS — QoS must serve it earlier",
			qosComps[sparse].Done, baseComps[sparse].Done)
	}
	if qos.Stats().QoSDeferred == 0 {
		t.Error("no scheduling turns yielded: the credit pick never engaged")
	}
	if got := qos.TenantStatsOf(0).QoSDeferred; got == 0 {
		t.Error("the flooding tenant's shard recorded no yields")
	}
	if got := qos.TenantStatsOf(1).QoSDeferred; got != 0 {
		t.Errorf("the sparse tenant's shard recorded %d yields; it was never over its credit", got)
	}

	// QoS reorders service, it never drops or duplicates it: both runs
	// complete every request and move the same bytes.
	if a, b := base.Stats().Accesses, qos.Stats().Accesses; a != b {
		t.Errorf("accesses diverged: %d vs %d", a, b)
	}
	if a, b := base.Stats().Bytes, qos.Stats().Bytes; a != b {
		t.Errorf("bytes diverged: %d vs %d", a, b)
	}
	for i, c := range qosComps {
		if c.Done <= batch[i].At {
			t.Errorf("req %d: done %d not after arrival %d", i, c.Done, batch[i].At)
		}
	}
}

// TestQoSOffIsBitIdentical: a Tenants-tagged part with QoS off must
// time exactly like the untagged single-requestor part — tagging and
// stat sharding are pure observation.
func TestQoSOffIsBitIdentical(t *testing.T) {
	batch := starvationBatch()

	plain := NewSDRAM(func() Config { c := testConfig(); c.ReorderWindow = 8; return c }())
	var untagged []Request
	for _, r := range batch {
		r.ID &= (1 << TenantShift) - 1
		untagged = append(untagged, r)
	}
	plainComps := plain.Submit(untagged)

	tagged := NewSDRAM(qosTestConfig(false))
	tagged.EnableTenantStats(2)
	taggedComps := tagged.Submit(batch)

	for i := range batch {
		if plainComps[i].Done != taggedComps[i].Done {
			t.Errorf("req %d: tagged done %d != untagged done %d", i, taggedComps[i].Done, plainComps[i].Done)
		}
	}
	if a, b := plain.Stats().RowHits, tagged.Stats().RowHits; a != b {
		t.Errorf("row hits diverged: %d vs %d", a, b)
	}
	if tagged.Stats().QoSDeferred != 0 {
		t.Error("QoS-off part counted deferrals")
	}
	// The shards still observed the split.
	if tagged.TenantStatsOf(0).Reads != 12 || tagged.TenantStatsOf(1).Reads != 1 {
		t.Errorf("shard reads = %d/%d, want 12/1",
			tagged.TenantStatsOf(0).Reads, tagged.TenantStatsOf(1).Reads)
	}
}
