// Package repro is a from-scratch reproduction of "Three-Dimensional
// Memory Vectorization for High Bandwidth Media Memory Systems" (Corbal,
// Espasa, Valero — MICRO-35, 2002).
//
// The repository contains the complete system the paper evaluates:
//
//   - the MOM 2D matrix ISA, an MMX-like μSIMD baseline, and the paper's
//     3D memory vectorization extension (internal/isa, internal/usimd);
//   - a functional emulator and trace builder (internal/emu,
//     internal/prog) standing in for the authors' ATOM methodology;
//   - five Mediabench-derived benchmarks, each hand-vectorized for the
//     three ISAs and verified bit-exact against scalar references
//     (internal/kernels, internal/media);
//   - the cache hierarchy and the three vector memory subsystems —
//     multi-banked, vector cache, vector cache + 3D register file
//     (internal/cache, internal/vmem);
//   - a banked SDRAM main-memory controller behind the L2 with
//     row-buffer timing, configurable address mappings, FCFS/FR-FCFS
//     scheduling and refresh, alongside the paper's flat-latency model
//     (internal/dram);
//   - an 8-way out-of-order cycle simulator in MMX and MOM
//     configurations (internal/core), standing in for Jinks;
//   - the Rixner register-file area model reproducing Table 3 exactly
//     (internal/vreg) and a calibrated power model (internal/power);
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation (internal/experiments, cmd/momexp);
//   - whole-pipeline observability (internal/stats): a registered-stats
//     registry behind momsim -statsjson, CPI-stack cycle attribution
//     (momsim -cpistack, momexp -cpisweep) whose buckets sum to the
//     cycle count exactly on both engines, causal span/flow tracing to
//     Chrome trace JSON (momsim -trace, ring sized by -tracebuf, drops
//     surfaced via the trace.dropped gauge), an interval time-series
//     sampler (momsim -sample/-samplejson), and a machine-readable
//     instruction-mix export (momtrace -json).
//
// The benchmarks in bench_test.go regenerate each table and figure; see
// EXPERIMENTS.md for paper-vs-measured values and DESIGN.md for the
// system inventory and substitutions.
package repro
